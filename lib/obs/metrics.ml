type counter = { mutable count : int }
type gauge = { mutable level : float }

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; gauges = Hashtbl.create 16 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { count = 0 } in
    Hashtbl.add t.counters name c;
    c

let incr c n =
  if n < 0 then invalid_arg "Metrics.incr: negative increment";
  c.count <- c.count + n

let value c = c.count
let add t name n = incr (counter t name) n

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { level = 0. } in
    Hashtbl.add t.gauges name g;
    g

let set g v = g.level <- v
let gauge_value g = g.level
let set_gauge t name v = set (gauge t name) v

let reset t =
  Hashtbl.iter (fun _ c -> c.count <- 0) t.counters;
  Hashtbl.iter (fun _ g -> g.level <- 0.) t.gauges

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
}

let sorted_bindings table value =
  Hashtbl.fold (fun name cell acc -> (name, value cell) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let snapshot (t : t) =
  {
    counters = sorted_bindings t.counters (fun c -> c.count);
    gauges = sorted_bindings t.gauges (fun g -> g.level);
  }

let diff ~before ~after =
  {
    counters =
      List.map
        (fun (name, v) ->
          let prior =
            match List.assoc_opt name before.counters with
            | Some p -> p
            | None -> 0
          in
          (name, max 0 (v - prior)))
        after.counters;
    gauges = after.gauges;
  }

let find_counter s name = List.assoc_opt name s.counters
let find_gauge s name = List.assoc_opt name s.gauges

let to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
    ]

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let to_prometheus ?(namespace = "tfapprox") s =
  let buf = Buffer.create 256 in
  let emit kind name line =
    let full = sanitize (namespace ^ "_" ^ name) in
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" full kind);
    Buffer.add_string buf (Printf.sprintf "%s %s\n" full line)
  in
  List.iter (fun (name, v) -> emit "counter" name (string_of_int v)) s.counters;
  List.iter
    (fun (name, v) -> emit "gauge" name (Printf.sprintf "%.9g" v))
    s.gauges;
  Buffer.contents buf

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf ppf "%-24s %d@," name v) s.counters;
  List.iter (fun (name, v) -> Format.fprintf ppf "%-24s %.4g@," name v) s.gauges;
  Format.fprintf ppf "@]"
