lib/quant/range.ml: Ax_tensor Float Format
