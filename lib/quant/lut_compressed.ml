(* Compressed representation of an approximate-multiplier LUT.

   The paper keeps the full 128 kB truth table fast by binding it to the
   GPU texture cache; on a CPU the analogue is making the table small
   enough to *live* in L1/L2.  Most catalogued approximate multipliers
   are structured errors on top of the exact product, so instead of the
   product itself we encode the per-entry delta

     delta(ca, cb) = lut(ca, cb) - value(ca) * value(cb)

   and pick, per LUT, the cheapest encoding that reproduces every one of
   the 65,536 entries exactly.  Every candidate below is verified
   exhaustively at construction time — the mode lattice is a size
   optimisation, never a semantics change — and when nothing pays we
   fall back to the raw table rather than lie about the footprint. *)

type table16 =
  (int, Bigarray.int16_signed_elt, Bigarray.c_layout) Bigarray.Array1.t

type bytes8 =
  (int, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type index16 =
  (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type view =
  | Exact_view
  | Masked_view of { mask : int; decode_correction : int }
  | Low_view of { shift : int; amask : int; bmask : int; tbl : table16 }
  | Split_view of {
      s : int;
      low_mask : int;  (* 2^s - 1 *)
      high_mask : int;  (* 2^(8-s) - 1 *)
      high_shift : int;  (* 8 - s *)
      d1 : table16;
      d2 : table16;
    }
  | Nibble_view of { hi : table16; lo : table16 }
  | Sparse_view of {
      sym : bool;
      bitmap : bytes8;
      bases : index16;
      pop : bytes8;
      corr : table16;
    }
  | Raw_view of
      (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

type mode =
  | Exact_product
  | Masked of int
  | Low_factored of { ka : int; kb : int }
  | Split_factored of { s : int }
  | Nibble_split
  | Sparse of { sym : bool; nnz : int }
  | Raw

type t = {
  lut : Ax_arith.Lut.t;
  mode : mode;
  view : view;
  bytes : int;
  values : int array;  (* code -> operand value, 256 entries *)
}

let lut t = t.lut
let mode t = t.mode
let view t = t.view
let bytes t = t.bytes
let values t = t.values
let ratio t = float_of_int Ax_arith.Lut.size_bytes /. float_of_int (max 1 t.bytes)

let mode_name t =
  match t.mode with
  | Exact_product -> "exact"
  | Masked _ -> "masked"
  | Low_factored _ -> "low-factored"
  | Split_factored _ -> "split-factored"
  | Nibble_split -> "nibble-split"
  | Sparse _ -> "sparse"
  | Raw -> "raw"

let budget_bytes = 16384
let in_int16 d = d >= -32768 && d <= 32767

let make16 n = Bigarray.Array1.create Bigarray.int16_signed Bigarray.c_layout n
let make16u n =
  Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout n
let make8 n = Bigarray.Array1.create Bigarray.int8_unsigned Bigarray.c_layout n

(* ---------- construction ---------- *)

(* [delta] is indexed by the stitched code [(ca lsl 8) lor cb]. *)

let try_masked lut values delta =
  let dcorr = Ax_arith.Lut.decode_correction lut in
  (* A result-masking multiplier satisfies raw = raw_exact land m.  Bits
     the LUT ever sets must be kept (and present in the exact raw); bits
     it drops while the exact raw has them must be cleared — a conflict
     between the two kills the candidate.  [m] is then forced, and the
     exhaustive re-check below covers entries the bit argument missed. *)
  let keep = ref 0 and drop = ref 0 in
  (try
     for ca = 0 to 255 do
       for cb = 0 to 255 do
         let exact_raw = values.(ca) * values.(cb) land 0xffff in
         let raw = (delta.((ca lsl 8) lor cb) + (values.(ca) * values.(cb)))
                   land 0xffff in
         if raw land lnot exact_raw land 0xffff <> 0 then raise_notrace Exit;
         keep := !keep lor raw;
         drop := !drop lor (exact_raw land lnot raw)
       done
     done
   with Exit -> drop := -1);
  if !drop < 0 || !keep land !drop <> 0 then None
  else begin
    let m = !keep in
    let ok = ref true in
    for ca = 0 to 255 do
      for cb = 0 to 255 do
        let r = values.(ca) * values.(cb) land m in
        let v = r - ((r lsr 15) * dcorr) in
        if v - (values.(ca) * values.(cb)) <> delta.((ca lsl 8) lor cb) then
          ok := false
      done
    done;
    if !ok then
      Some (Masked m, Masked_view { mask = m; decode_correction = dcorr }, 2)
    else None
  end

let try_low_factored delta =
  (* Minimal ka: delta ignores the high [8-ka] bits of [ca] for every
     [cb]; dually for kb.  Independence in each operand separately
    implies joint independence, so the minimal pair needs no second
    exhaustive pass, but we range-check while filling the table. *)
  let depends_only_low_a k =
    let m = (1 lsl k) - 1 in
    let ok = ref true in
    for ca = 0 to 255 do
      let rep = (ca land m) lsl 8 in
      let row = ca lsl 8 in
      for cb = 0 to 255 do
        if delta.(row lor cb) <> delta.(rep lor cb) then ok := false
      done
    done;
    !ok
  in
  let depends_only_low_b k =
    let m = (1 lsl k) - 1 in
    let ok = ref true in
    for ca = 0 to 255 do
      let row = ca lsl 8 in
      for cb = 0 to 255 do
        if delta.(row lor cb) <> delta.(row lor (cb land m)) then ok := false
      done
    done;
    !ok
  in
  let rec minimal f k = if k >= 8 then 8 else if f k then k else minimal f (k + 1) in
  let ka = minimal depends_only_low_a 0 in
  let kb = minimal depends_only_low_b 0 in
  let size = 1 lsl (ka + kb) in
  if ka >= 8 && kb >= 8 then None
  else if 2 * size > budget_bytes then None
  else begin
    let tbl = make16 size in
    let ok = ref true in
    for al = 0 to (1 lsl ka) - 1 do
      for bl = 0 to (1 lsl kb) - 1 do
        let d = delta.((al lsl 8) lor bl) in
        if not (in_int16 d) then ok := false
        else tbl.{(al lsl kb) lor bl} <- d
      done
    done;
    if !ok then
      Some
        ( Low_factored { ka; kb },
          Low_view
            {
              shift = kb;
              amask = (1 lsl ka) - 1;
              bmask = (1 lsl kb) - 1;
              tbl;
            },
          2 * size )
    else None
  end

let try_split delta s =
  let nl = 1 lsl s and nh = 1 lsl (8 - s) in
  let low_mask = nl - 1 and high_mask = nh - 1 in
  let d1 = make16 (256 * nl) and d2 = make16 (nh * nh) in
  let ok = ref true in
  for ca = 0 to 255 do
    for bl = 0 to nl - 1 do
      let d = delta.((ca lsl 8) lor bl) in
      if not (in_int16 d) then ok := false else d1.{(ca lsl s) lor bl} <- d
    done
  done;
  for al = 0 to nh - 1 do
    let base = delta.(al lsl 8) in
    for bh = 0 to nh - 1 do
      let d = delta.((al lsl 8) lor (bh lsl s)) - base in
      if not (in_int16 d) then ok := false
      else d2.{(al lsl (8 - s)) lor bh} <- d
    done
  done;
  if not !ok then None
  else begin
    let verified = ref true in
    for ca = 0 to 255 do
      let row = ca lsl 8 in
      let a1 = ca lsl s and a2 = (ca land high_mask) lsl (8 - s) in
      for cb = 0 to 255 do
        let got = d1.{a1 lor (cb land low_mask)} + d2.{a2 lor (cb lsr s)} in
        if got <> delta.(row lor cb) then verified := false
      done
    done;
    if !verified then
      Some
        ( Split_factored { s },
          Split_view { s; low_mask; high_mask; high_shift = 8 - s; d1; d2 },
          2 * ((256 * nl) + (nh * nh)) )
    else None
  end

let try_nibble delta =
  let hi = make16 (16 * 256) and lo = make16 (16 * 256) in
  let ok = ref true in
  for ah = 0 to 15 do
    for cb = 0 to 255 do
      let d = delta.((ah lsl 4) lsl 8 lor cb) in
      if not (in_int16 d) then ok := false else hi.{(ah lsl 8) lor cb} <- d
    done
  done;
  for al = 0 to 15 do
    for cb = 0 to 255 do
      let d = delta.((al lsl 8) lor cb) in
      if not (in_int16 d) then ok := false else lo.{(al lsl 8) lor cb} <- d
    done
  done;
  if not !ok then None
  else begin
    let verified = ref true in
    for ca = 0 to 255 do
      let row = ca lsl 8 in
      let h = (ca lsr 4) lsl 8 and l = (ca land 15) lsl 8 in
      for cb = 0 to 255 do
        if hi.{h lor cb} + lo.{l lor cb} <> delta.(row lor cb) then
          verified := false
      done
    done;
    if !verified then
      Some (Nibble_split, Nibble_view { hi; lo }, 2 * 2 * 16 * 256)
    else None
  end

let popcount_table =
  lazy
    (let pop = make8 256 in
     for b = 0 to 255 do
       let rec count x = if x = 0 then 0 else (x land 1) + count (x lsr 1) in
       pop.{b} <- count b
     done;
     pop)

let try_sparse delta =
  (* Sign symmetry: negating both operand codes negates both values, so
     the exact product — and for many signed designs the whole entry —
    is unchanged.  When delta inherits that symmetry only rows
    [ca <= 128] need storing (row 128 is its own image). *)
  let sym = ref true in
  (try
     for ca = 0 to 255 do
       for cb = 0 to 255 do
         let m_ca = (256 - ca) land 0xff and m_cb = (256 - cb) land 0xff in
         if delta.((ca lsl 8) lor cb) <> delta.((m_ca lsl 8) lor m_cb) then begin
           sym := false;
           raise_notrace Exit
         end
       done
     done
   with Exit -> ());
  let sym = !sym in
  let rows = if sym then 129 else 256 in
  let total = rows * 256 in
  let nnz = ref 0 and fits = ref true in
  for ca = 0 to rows - 1 do
    for cb = 0 to 255 do
      let d = delta.((ca lsl 8) lor cb) in
      if d <> 0 then begin
        incr nnz;
        if not (in_int16 d) then fits := false
      end
    done
  done;
  let nnz = !nnz in
  let bitmap_bytes = (total + 7) / 8 in
  let groups = (total + 31) / 32 in
  let size = bitmap_bytes + (2 * groups) + 256 + (2 * nnz) in
  if (not !fits) || nnz = 0 || size > budget_bytes then None
  else begin
    let bitmap = make8 bitmap_bytes in
    Bigarray.Array1.fill bitmap 0;
    let bases = make16u groups in
    let corr = make16 (max 1 nnz) in
    let rank = ref 0 in
    for idx = 0 to total - 1 do
      if idx land 31 = 0 then bases.{idx lsr 5} <- !rank;
      let d = delta.(idx) in
      if d <> 0 then begin
        bitmap.{idx lsr 3} <- bitmap.{idx lsr 3} lor (1 lsl (idx land 7));
        corr.{!rank} <- d;
        incr rank
      end
    done;
    Some
      ( Sparse { sym; nnz },
        Sparse_view
          { sym; bitmap; bases; pop = Lazy.force popcount_table; corr },
        size )
  end

let sparse_delta ~sym ~(bitmap : bytes8) ~(bases : index16) ~(pop : bytes8)
    ~(corr : table16) ca cb =
  let ca, cb =
    if sym && ca > 128 then (256 - ca, (256 - cb) land 0xff) else (ca, cb)
  in
  let idx = (ca lsl 8) lor cb in
  let byte = Bigarray.Array1.unsafe_get bitmap (idx lsr 3) in
  let bit = idx land 7 in
  if (byte lsr bit) land 1 = 0 then 0
  else begin
    let g = idx lsr 5 in
    let j = (idx land 31) lsr 3 in
    let base = ref (Bigarray.Array1.unsafe_get bases g) in
    for t = 0 to j - 1 do
      base :=
        !base
        + Bigarray.Array1.unsafe_get pop
            (Bigarray.Array1.unsafe_get bitmap ((g lsl 2) + t))
    done;
    Bigarray.Array1.unsafe_get corr
      (!base + Bigarray.Array1.unsafe_get pop (byte land ((1 lsl bit) - 1)))
  end

let build lut =
  let sgn = Ax_arith.Lut.signedness lut in
  let values = Array.init 256 (Ax_arith.Signedness.value_of_code sgn) in
  let delta = Array.make Ax_arith.Lut.entries 0 in
  let zero = ref true in
  for ca = 0 to 255 do
    let va = values.(ca) in
    let row = ca lsl 8 in
    for cb = 0 to 255 do
      let d = Ax_arith.Lut.lookup_code lut ca cb - (va * values.(cb)) in
      delta.(row lor cb) <- d;
      if d <> 0 then zero := false
    done
  done;
  let mode, view, bytes =
    if !zero then (Exact_product, Exact_view, 0)
    else
      let candidates =
        List.filter_map
          (fun f -> f ())
          [
            (fun () -> try_masked lut values delta);
            (fun () -> try_low_factored delta);
            (fun () -> try_split delta 3);
            (fun () -> try_split delta 4);
            (fun () -> try_split delta 2);
            (fun () -> try_nibble delta);
            (fun () -> try_sparse delta);
          ]
      in
      match
        List.sort (fun (_, _, a) (_, _, b) -> compare a b) candidates
      with
      | (m, v, b) :: _ when b <= budget_bytes -> (m, v, b)
      | _ -> (Raw, Raw_view (Ax_arith.Lut.table lut), Ax_arith.Lut.size_bytes)
  in
  { lut; mode; view; bytes; values }

(* ---------- memo cache ---------- *)

(* Keyed by physical identity: [Registry.lut] already memoises one table
   per multiplier name, so configs sharing a multiplier share the
   compression.  Bounded so adversarial churn (fault-injected copies)
   cannot leak. *)
let cache : (Ax_arith.Lut.t * t) list ref = ref []
let cache_limit = 32
let cache_mutex = Mutex.create ()

let of_lut lut_ =
  Mutex.lock cache_mutex;
  let hit = List.find_opt (fun (l, _) -> l == lut_) !cache in
  Mutex.unlock cache_mutex;
  match hit with
  | Some (_, t) -> t
  | None ->
    let t = build lut_ in
    Mutex.lock cache_mutex;
    let result =
      match List.find_opt (fun (l, _) -> l == lut_) !cache with
      | Some (_, t') -> t'
      | None ->
        let kept =
          if List.length !cache >= cache_limit then
            List.filteri (fun i _ -> i < cache_limit - 1) !cache
          else !cache
        in
        cache := (lut_, t) :: kept;
        t
    in
    Mutex.unlock cache_mutex;
    result

(* ---------- generic accessor ---------- *)

let lookup_code t ca cb =
  let ca = ca land 0xff and cb = cb land 0xff in
  let e = t.values.(ca) * t.values.(cb) in
  match t.view with
  | Exact_view -> e
  | Masked_view { mask; decode_correction } ->
    let r = e land mask in
    r - ((r lsr 15) * decode_correction)
  | Low_view { shift; amask; bmask; tbl } ->
    e + tbl.{((ca land amask) lsl shift) lor (cb land bmask)}
  | Split_view { s; low_mask; high_mask; high_shift; d1; d2 } ->
    e
    + d1.{(ca lsl s) lor (cb land low_mask)}
    + d2.{((ca land high_mask) lsl high_shift) lor (cb lsr s)}
  | Nibble_view { hi; lo } ->
    e + hi.{((ca lsr 4) lsl 8) lor cb} + lo.{((ca land 15) lsl 8) lor cb}
  | Sparse_view { sym; bitmap; bases; pop; corr } ->
    e + sparse_delta ~sym ~bitmap ~bases ~pop ~corr ca cb
  | Raw_view table ->
    let raw = Bigarray.Array1.unsafe_get table ((ca lsl 8) lor cb) in
    raw - ((raw lsr 15) * Ax_arith.Lut.decode_correction t.lut)
