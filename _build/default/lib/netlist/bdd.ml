type node = int

(* Nodes 0 and 1 are the terminals; every other node is a triple
   (variable, low child, high child) stored in growable arrays. *)
type manager = {
  mutable var_of : int array;
  mutable low : int array;
  mutable high : int array;
  mutable len : int;
  unique : (int * int * int, node) Hashtbl.t;
  apply_cache : (int * node * node, node) Hashtbl.t;
  count_cache : (node, float) Hashtbl.t;
}

let zero = 0
let one = 1

let manager () =
  let cap = 1024 in
  let m =
    {
      var_of = Array.make cap max_int;
      low = Array.make cap 0;
      high = Array.make cap 0;
      len = 2;
      unique = Hashtbl.create 4096;
      apply_cache = Hashtbl.create 4096;
      count_cache = Hashtbl.create 256;
    }
  in
  (* Terminals carry an out-of-range variable so they sort last. *)
  m.var_of.(0) <- max_int;
  m.var_of.(1) <- max_int;
  m

let grow m =
  let cap = Array.length m.var_of in
  if m.len = cap then begin
    let bigger_var = Array.make (2 * cap) max_int in
    let bigger_low = Array.make (2 * cap) 0 in
    let bigger_high = Array.make (2 * cap) 0 in
    Array.blit m.var_of 0 bigger_var 0 cap;
    Array.blit m.low 0 bigger_low 0 cap;
    Array.blit m.high 0 bigger_high 0 cap;
    m.var_of <- bigger_var;
    m.low <- bigger_low;
    m.high <- bigger_high
  end

let mk m v lo hi =
  if lo = hi then lo
  else begin
    let key = (v, lo, hi) in
    match Hashtbl.find_opt m.unique key with
    | Some n -> n
    | None ->
      grow m;
      let n = m.len in
      m.var_of.(n) <- v;
      m.low.(n) <- lo;
      m.high.(n) <- hi;
      m.len <- m.len + 1;
      Hashtbl.add m.unique key n;
      n
  end

let var m i =
  if i < 0 then invalid_arg "Bdd.var: negative index";
  mk m i zero one

let node_count m = m.len

(* Binary apply over an operation id (0=and, 1=or, 2=xor). *)
let rec apply m op a b =
  let terminal =
    match op with
    | 0 -> (
      match (a, b) with
      | 0, _ | _, 0 -> Some zero
      | 1, x | x, 1 -> Some x
      | _ -> if a = b then Some a else None)
    | 1 -> (
      match (a, b) with
      | 1, _ | _, 1 -> Some one
      | 0, x | x, 0 -> Some x
      | _ -> if a = b then Some a else None)
    | _ -> (
      match (a, b) with
      | 0, x | x, 0 -> Some x
      | _ -> if a = b then Some zero else None)
  in
  match terminal with
  | Some r -> r
  | None ->
    (* Normalise commutative argument order for the cache. *)
    let a, b = if a <= b then (a, b) else (b, a) in
    let key = (op, a, b) in
    (match Hashtbl.find_opt m.apply_cache key with
    | Some r -> r
    | None ->
      let va = m.var_of.(a) and vb = m.var_of.(b) in
      let v = min va vb in
      let a_lo, a_hi = if va = v then (m.low.(a), m.high.(a)) else (a, a) in
      let b_lo, b_hi = if vb = v then (m.low.(b), m.high.(b)) else (b, b) in
      let lo = apply m op a_lo b_lo in
      let hi = apply m op a_hi b_hi in
      let r = mk m v lo hi in
      Hashtbl.add m.apply_cache key r;
      r)

let and_ m a b = apply m 0 a b
let or_ m a b = apply m 1 a b
let xor_ m a b = apply m 2 a b

(* NOT via XOR with the constant-1 function keeps a single cache. *)
let not_ m a = xor_ m a one

let of_circuit m c =
  let values = Array.make (Circuit.node_count c) zero in
  let next_input = ref 0 in
  Circuit.iter_gates c (fun i g ->
      values.(i) <-
        (match g with
        | Gate.Input _ ->
          let v = var m !next_input in
          incr next_input;
          v
        | Gate.Const true -> one
        | Gate.Const false -> zero
        | Gate.Buf a -> values.(a)
        | Gate.Not a -> not_ m values.(a)
        | Gate.And2 (a, b) -> and_ m values.(a) values.(b)
        | Gate.Or2 (a, b) -> or_ m values.(a) values.(b)
        | Gate.Xor2 (a, b) -> xor_ m values.(a) values.(b)
        | Gate.Nand2 (a, b) -> not_ m (and_ m values.(a) values.(b))
        | Gate.Nor2 (a, b) -> not_ m (or_ m values.(a) values.(b))
        | Gate.Xnor2 (a, b) -> not_ m (xor_ m values.(a) values.(b))));
  List.map
    (fun (label, s) -> (label, values.(Circuit.index s)))
    (Circuit.outputs c)

let equivalent a b =
  if Circuit.input_count a <> Circuit.input_count b then
    invalid_arg "Bdd.equivalent: input counts differ";
  let labels c = List.map fst (Circuit.outputs c) in
  if List.sort compare (labels a) <> List.sort compare (labels b) then
    invalid_arg "Bdd.equivalent: output labels differ";
  let m = manager () in
  let fa = of_circuit m a and fb = of_circuit m b in
  List.for_all
    (fun (label, na) -> List.assoc label fb = na)
    fa

(* Satisfying assignments: weight each edge skip by the number of
   variables jumped over. *)
let satisfy_count m ~vars root =
  if vars <= 0 then invalid_arg "Bdd.satisfy_count: vars must be positive";
  Hashtbl.reset m.count_cache;
  (* count n = satisfying assignments of the sub-BDD over the variables
     strictly below var(n)'s level... handled via explicit level calc. *)
  let level n = if n < 2 then vars else m.var_of.(n) in
  let rec count n =
    if n = zero then 0.
    else if n = one then 1.
    else
      match Hashtbl.find_opt m.count_cache n with
      | Some c -> c
      | None ->
        let lo = count m.low.(n) and hi = count m.high.(n) in
        let scale child =
          2. ** float_of_int (level child - level n - 1)
        in
        let c = (lo *. scale m.low.(n)) +. (hi *. scale m.high.(n)) in
        Hashtbl.add m.count_cache n c;
        c
  in
  count root *. (2. ** float_of_int (level root))

let probability_one m ~vars root =
  satisfy_count m ~vars root /. (2. ** float_of_int vars)
