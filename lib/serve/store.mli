(** Hot artefact cache of the inference daemon.

    Every served model is loaded, integrity-checked and statically
    verified {e once}, at daemon start-up: steady-state requests touch
    no disk, no CRC and no analyzer — they look up a [Ready] entry and
    run it.  Failures degrade instead of killing the process:

    - a corrupt LUT artefact ([Bad_checksum], truncation, ...) first
      goes through the {!Ax_resilience.Artefact.load_lut} repair path
      (re-tabulating the named registry multiplier and rewriting the
      file); only when repair is impossible does the model degrade to
      {!Unavailable};
    - a corrupt model artefact degrades directly (weights are not
      re-derivable);
    - a model the static verifier rejects ({!Ax_analysis.Check})
      degrades with the findings as the reason.

    An [Unavailable] model stays addressable — requests for it get a
    typed [Model_unavailable] response with the reason, and
    [List_models] reports it — so one bad artefact never takes the
    daemon or its healthy models down. *)

type arch = Lenet | Resnet of int | Mobilenet

type source =
  | Builtin of {
      arch : arch;
      multiplier : string option;  (** registry name to transform with *)
      lut_file : string option;
          (** load the LUT from an "AXLUT1" artefact instead of
              tabulating [multiplier]; [multiplier] then doubles as the
              repair generator for a corrupt file *)
    }
  | Model_file of {
      path : string;  (** a serialized "AXMDL1" artefact *)
      input : Ax_tensor.Shape.t option;
          (** single-image input geometry ([n = 1]).  The "AXMDL1"
              format stores no geometry (the graph IR is
              shape-polymorphic until its Dense layer), so the spec
              carries it: [None] assumes the 32x32x3 CIFAR default and
              relies on the load-time pre-flight to degrade the model —
              with a hint to spec [\@HxWxC] — when that assumption is
              wrong, rather than serving a wrong advertised geometry. *)
    }

type spec = { name : string; source : source }

val parse_spec : string -> spec
(** Parse a CLI model spec — [NAME=WHAT] or bare [WHAT], where [WHAT]
    is a path ending in [.axmdl] with an optional [\@HxWxC] input
    geometry (e.g. [m=model.axmdl\@28x28x1]), or
    [ARCH\[+MULTIPLIER\]\[\@LUTFILE\]] with [ARCH] one of [lenet],
    [mobilenet], [resnetD] (e.g. [resnet8+mul8u_trunc8],
    [m=resnet8+mul8u_trunc8\@table.axlut]).  Raises [Failure] on bad
    syntax — a usage error. *)

val spec_to_string : spec -> string

type ready = {
  graph : Ax_nn.Graph.t;
  input : Ax_tensor.Shape.t;  (** expected single-image geometry, n = 1 *)
  classes : int;
}

type status = Ready of ready | Unavailable of string

type entry = { spec : spec; status : status }

type t

val load :
  ?metrics:Ax_obs.Metrics.t ->
  ?domains:int ->
  spec list ->
  t
(** Load every spec (duplicate names raise [Invalid_argument] — a
    configuration error, not a degradation).  [domains] is threaded to
    {!Tfapprox.Emulator.approximate_model} so the AxConv2D row loops
    match the daemon's pool geometry.  Publishes
    [serve_models_ready] / [serve_models_unavailable] gauges and the
    [serve_lut_repaired] counter when [metrics] is given.  An unknown
    registry multiplier name raises [Failure] (usage error); artefact
    and verifier failures degrade to {!Unavailable}. *)

val find : t -> string -> entry option
(** Lookup by name; a hit also bumps the model's hit counter (under
    the store's cache lock — safe from concurrent connection
    threads). *)

val hit_counts : t -> (string * int) list
(** Per-model {!find}-hit counts, sorted by name. *)

val list : t -> entry list
(** In spec order. *)

val statuses : t -> (string * [ `Ready | `Unavailable of string ]) list
(** The [List_models] response body. *)
