test/test_train.ml: Alcotest Array Ax_arith Ax_data Ax_models Ax_nn Ax_tensor Ax_train Float List Option Printf Tfapprox
