module Device = Ax_gpusim.Device
module Cost = Ax_gpusim.Cost
module Graph = Ax_nn.Graph
module Profile = Ax_nn.Profile
module Resnet = Ax_models.Resnet
module Cifar = Ax_data.Cifar
module Tensor = Ax_tensor.Tensor
module Shape = Ax_tensor.Shape
module Q = Ax_quant.Quantization
module Round = Ax_quant.Round
module Lut = Ax_arith.Lut
module S = Ax_arith.Signedness

type timing = { t_init : float; t_comp : float }

type table1_row = {
  depth : int;
  layers : int;
  macs_per_image : int;
  cpu_accurate : timing;
  gpu_accurate : timing;
  cpu_approx : timing;
  gpu_approx : timing;
  approx_overhead_cpu : float;
  approx_overhead_gpu : float;
  speedup_accurate : float;
  speedup_approx : float;
  lut_hit_rate : float;
}

let wall f =
  let start = Unix.gettimeofday () in
  let result = f () in
  (Unix.gettimeofday () -. start, result)

let total t = t.t_init +. t.t_comp

(* First convolution layer of the graph, its input being the graph
   input: enough to sample a realistic LUT access stream. *)
let measured_lut_hit_rate ?metrics ~device ~graph ~sample () =
  let conv =
    match Graph.conv_layers graph with
    | [] -> invalid_arg "Experiments.measured_lut_hit_rate: no conv layer"
    | c :: _ -> c
  in
  let filter, spec, config =
    match conv.Graph.op with
    | Graph.Conv2d { filter; spec; _ } ->
      (filter, spec, Ax_nn.Axconv.make_config (Lut.exact S.Unsigned))
    | Graph.Ax_conv2d { filter; spec; config; _ } -> (filter, spec, config)
    | _ -> assert false
  in
  let signedness = Lut.signedness config.Ax_nn.Axconv.lut in
  let mn, mx = Tensor.min_max sample in
  let coeffs = Q.compute_coeffs signedness ~rmin:mn ~rmax:mx in
  let plan =
    Ax_nn.Im2col.make (Tensor.shape sample) ~kh:(Ax_nn.Filter.kh filter)
      ~kw:(Ax_nn.Filter.kw filter) ~spec
  in
  let mp, _ =
    Ax_nn.Im2col.to_codes plan sample ~coeffs
      ~round_mode:config.Ax_nn.Axconv.round_mode ~signedness
  in
  let fmin, fmax = Ax_nn.Filter.min_max filter in
  let fcoeffs = Q.compute_coeffs signedness ~rmin:fmin ~rmax:fmax in
  let mf_t, _ =
    Ax_nn.Axconv.quantize_filters signedness fcoeffs
      config.Ax_nn.Axconv.round_mode filter
  in
  Cost.measure_hit_rate ?metrics device ~mp ~mf_t ~rows:plan.Ax_nn.Im2col.rows
    ~taps:(Ax_nn.Filter.taps filter) ~out_c:(Ax_nn.Filter.out_c filter)
    ~sample_rows:128

let default_multiplier = "mul8u_trunc8"

let table1_row ~device ~multiplier ~images_measured ~dataset_images depth =
  let scale = float_of_int dataset_images /. float_of_int images_measured in
  let build_time, graph = wall (fun () -> Resnet.build ~depth ()) in
  let _, sample = wall (fun () -> Cifar.generate ~n:images_measured ()) in
  let images = sample.Cifar.images in
  let transform_time, approx_graph =
    wall (fun () ->
        Emulator.approximate_model ~multiplier ~chunk_size:250 graph)
  in
  (* CPU accurate: measured float inference, scaled to the dataset. *)
  let t_acc, _ = wall (fun () -> Emulator.run ~backend:Emulator.Cpu_accurate graph images) in
  let cpu_accurate = { t_init = build_time; t_comp = t_acc *. scale } in
  (* CPU approximate: the direct nested-loop baseline of ref. [12]. *)
  let t_apx, _ =
    wall (fun () -> Emulator.run ~backend:Emulator.Cpu_direct approx_graph images)
  in
  let cpu_approx =
    { t_init = build_time +. transform_time; t_comp = t_apx *. scale }
  in
  (* GPU columns: the execution model over the same per-layer geometry. *)
  let workloads =
    Cost.workloads_of_graph graph ~input:(Resnet.input_shape ~batch:1)
      ~images:dataset_images
  in
  let dataset_bytes = float_of_int (dataset_images * Cifar.image_bytes) in
  let weight_bytes =
    float_of_int
      (List.fold_left
         (fun acc w -> acc + (w.Cost.filter_elems * 4))
         0 workloads)
  in
  let init = Cost.transfer_init device ~dataset_bytes ~weight_bytes in
  let gpu_acc = Cost.accurate_network device workloads in
  let hit_rate = measured_lut_hit_rate ~device ~graph ~sample:images () in
  let gpu_apx =
    Cost.approx_network device ~lut_hit_rate:hit_rate ~chunk_size:250
      workloads
  in
  let gpu_accurate =
    { t_init = init.Cost.init_s; t_comp = Cost.total gpu_acc }
  in
  let gpu_approx = { t_init = init.Cost.init_s; t_comp = Cost.total gpu_apx } in
  {
    depth;
    layers = Resnet.conv_layer_count depth;
    macs_per_image = Resnet.macs_per_image ~depth;
    cpu_accurate;
    gpu_accurate;
    cpu_approx;
    gpu_approx;
    approx_overhead_cpu = total cpu_approx -. total cpu_accurate;
    approx_overhead_gpu = total gpu_approx -. total gpu_accurate;
    speedup_accurate = total cpu_accurate /. total gpu_accurate;
    speedup_approx = total cpu_approx /. total gpu_approx;
    lut_hit_rate = hit_rate;
  }

let table1 ?(device = Device.gtx_1080) ?(multiplier = default_multiplier)
    ?(depths = Resnet.table1_depths) ?(images_measured = 4)
    ?(dataset_images = 10_000) () =
  if images_measured <= 0 then invalid_arg "Experiments.table1: images_measured";
  List.map
    (table1_row ~device ~multiplier ~images_measured ~dataset_images)
    depths

type fig2_config = { label : string; depth : int }

type fig2_row = {
  config : fig2_config;
  cpu : Profile.breakdown;
  gpu : Profile.breakdown;
}

let fig2_row ?trace ~device ~multiplier ~images_measured ~dataset_images depth
    =
  let graph = Resnet.build ~depth () in
  let approx_graph =
    Emulator.approximate_model ~multiplier ~chunk_size:250 graph
  in
  let sample = Cifar.generate ~n:images_measured () in
  (* CPU: measured phase attribution of the direct baseline, plus a
     scaled share of the initialization (model build) time. *)
  let profile = Profile.create ?trace () in
  let build_time, _ = wall (fun () -> Resnet.build ~depth ()) in
  ignore
    (Emulator.run ~profile ~backend:Emulator.Cpu_direct approx_graph
       sample.Cifar.images);
  (* Scale the measured phases to the dataset; init does not scale. *)
  let scale = float_of_int dataset_images /. float_of_int images_measured in
  let scaled = Profile.create () in
  Profile.add_seconds scaled Profile.Init build_time;
  List.iter
    (fun phase ->
      Profile.add_seconds scaled phase (scale *. Profile.seconds profile phase))
    [ Profile.Quantization; Profile.Lut; Profile.Other ];
  Profile.add_seconds scaled Profile.Other
    (scale *. Profile.seconds profile Profile.Init);
  let cpu = Profile.breakdown scaled in
  (* GPU: the cost model's phase attribution. *)
  let workloads =
    Cost.workloads_of_graph graph ~input:(Resnet.input_shape ~batch:1)
      ~images:dataset_images
  in
  let hit_rate =
    measured_lut_hit_rate ~device ~graph ~sample:sample.Cifar.images ()
  in
  let init =
    Cost.transfer_init device
      ~dataset_bytes:(float_of_int (dataset_images * Cifar.image_bytes))
      ~weight_bytes:1e6
  in
  let gpu =
    Cost.breakdown
      (Cost.add init
         (Cost.approx_network device ~lut_hit_rate:hit_rate ~chunk_size:250
            workloads))
  in
  { config = { label = Printf.sprintf "ResNet-%d" depth; depth }; cpu; gpu }

let fig2 ?trace ?(device = Device.gtx_1080) ?(multiplier = default_multiplier)
    ?(depths = [ 8; 32; 50; 62 ]) ?(images_measured = 2)
    ?(dataset_images = 10_000) () =
  List.map
    (fig2_row ?trace ~device ~multiplier ~images_measured ~dataset_images)
    depths

type accuracy_row = {
  multiplier : string;
  emulated_accuracy : float;
  fidelity : float;
  lut_mae : float;
}

let accuracy_sweep ?(depth = 8) ?(images = 40) ?multipliers () =
  let multipliers =
    match multipliers with
    | Some m -> m
    | None ->
      [
        "mul8s_exact"; "mul8s_trunc6"; "mul8s_drum4"; "mul8s_drum6";
        "mul8s_mitchell";
      ]
  in
  let graph = Resnet.build ~depth () in
  let dataset = Cifar.generate ~n:images () in
  let reference =
    Emulator.predictions graph ~backend:Emulator.Cpu_accurate
      dataset.Cifar.images
  in
  List.map
    (fun name ->
      let entry = Ax_arith.Registry.find_exn name in
      let metrics = Ax_arith.Error_metrics.compute_lut (Ax_arith.Registry.lut entry) in
      let approx = Emulator.approximate_model ~multiplier:name graph in
      let preds =
        Emulator.predictions approx ~backend:Emulator.Cpu_gemm
          dataset.Cifar.images
      in
      let correct = ref 0 in
      Array.iteri
        (fun i p -> if p = dataset.Cifar.labels.(i) then incr correct)
        preds;
      {
        multiplier = name;
        emulated_accuracy =
          float_of_int !correct /. float_of_int (Array.length preds);
        fidelity = Emulator.agreement reference preds;
        lut_mae = metrics.Ax_arith.Error_metrics.mae;
      })
    multipliers
