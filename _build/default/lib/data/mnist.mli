(** Synthetic MNIST-like digit data.

    28x28x1 images rendered as seven-segment digits with per-image
    position jitter, stroke-intensity variation and pixel noise — a
    second, structurally different workload domain (single-channel,
    sparse strokes) from the CIFAR stand-in, and genuinely learnable:
    the ten classes are the ten digit shapes. *)

type t = Dataset.t = { images : Ax_tensor.Tensor.t; labels : int array }

val classes : int
val height : int
val width : int
val channels : int

val generate : ?seed:int -> n:int -> unit -> t
(** [n] images, labels cycling 0..9; values in [0, 1]. *)

val normalize : t -> t
(** Zero-centred variant for gradient-based training. *)

val segments_of_digit : int -> bool array
(** The seven-segment encoding (a..g) used by the renderer; exposed for
    tests.  Raises [Invalid_argument] outside 0..9. *)
