lib/core/experiments.mli: Ax_gpusim Ax_nn Ax_tensor
