type level = Debug | Info | Warn | Error

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

type event = {
  level : level;
  message : string;
  fields : (string * Json.t) list;
  time : float;  (* Unix seconds *)
}

type sink = event -> unit

let event_to_json e =
  Json.Obj
    (("ts", Json.Float e.time)
    :: ("level", Json.String (level_name e.level))
    :: ("msg", Json.String e.message)
    :: e.fields)

let text_sink ?(channel = stderr) () e =
  Printf.fprintf channel "[%s] %s" (level_name e.level) e.message;
  List.iter
    (fun (k, v) -> Printf.fprintf channel " %s=%s" k (Json.to_string v))
    e.fields;
  Printf.fprintf channel "\n%!"

let json_sink ?(channel = stderr) () e =
  Printf.fprintf channel "%s\n%!" (Json.to_string (event_to_json e))

(* One process-wide logger: libraries and CLI share the threshold and
   sink so TFAPPROX_LOG / --quiet govern everything uniformly.  Emission
   is mutex-guarded — worker domains may warn concurrently. *)
let emit_mutex = Mutex.create ()
let threshold : level option ref = ref (Some Info)
let current_sink : sink ref = ref (text_sink ())

let set_threshold l = threshold := l
let get_threshold () = !threshold
let set_sink s = current_sink := s

let enabled l =
  match !threshold with
  | None -> false
  | Some t -> level_rank l >= level_rank t

let log l ?(fields = []) message =
  if enabled l then begin
    let e = { level = l; message; fields; time = Unix.gettimeofday () } in
    Mutex.lock emit_mutex;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock emit_mutex)
      (fun () -> !current_sink e)
  end

let debug ?fields msg = log Debug ?fields msg
let info ?fields msg = log Info ?fields msg
let warn ?fields msg = log Warn ?fields msg
let error ?fields msg = log Error ?fields msg

let logf l fmt = Printf.ksprintf (fun msg -> log l msg) fmt

let env_var = "TFAPPROX_LOG"

(* "warn", "debug,json", "off", "json" — comma-separated tokens, each
   either a level name, "off"/"silent"/"quiet", or a format selector.
   Unknown tokens are ignored so a typo degrades to defaults rather
   than crashing at startup. *)
let configure spec =
  String.split_on_char ',' spec
  |> List.iter (fun tok ->
         let tok = String.lowercase_ascii (String.trim tok) in
         match tok with
         | "" -> ()
         | "off" | "silent" | "quiet" | "none" -> set_threshold None
         | "json" -> set_sink (json_sink ())
         | "text" -> set_sink (text_sink ())
         | tok -> (
           match level_of_string tok with
           | Some l -> set_threshold (Some l)
           | None -> ()))

let init_from_env () =
  match Sys.getenv_opt env_var with
  | Some spec -> configure spec
  | None -> ()
