lib/tensor/matrix.ml: Array Printf
