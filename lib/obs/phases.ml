type t = {
  table : (string, float ref) Hashtbl.t;
  mutable active : string option;  (* innermost running phase *)
}

let create () = { table = Hashtbl.create 8; active = None }

let reset t =
  Hashtbl.iter (fun _ cell -> cell := 0.) t.table;
  t.active <- None

let cell t name =
  match Hashtbl.find_opt t.table name with
  | Some c -> c
  | None ->
    let c = ref 0. in
    Hashtbl.add t.table name c;
    c

let add_seconds t name s =
  let c = cell t name in
  c := !c +. s

let time t name f =
  let outer = t.active in
  t.active <- Some name;
  let start = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let elapsed = Unix.gettimeofday () -. start in
      add_seconds t name elapsed;
      (match outer with
      | Some p -> add_seconds t p (-.elapsed)
      | None -> ());
      t.active <- outer)
    f

let seconds t name =
  match Hashtbl.find_opt t.table name with Some c -> !c | None -> 0.

let total t = Hashtbl.fold (fun _ c acc -> acc +. !c) t.table 0.

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t.table []
  |> List.sort compare

let to_json t =
  Json.Obj (List.map (fun name -> (name, Json.Float (seconds t name))) (names t))
