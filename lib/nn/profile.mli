(** Phase-attributed wall-clock accounting, matching the four categories
    of the paper's Fig. 2: initialization, quantization (including
    dequantization and min/max), LUT lookups, and everything else
    (Im2Cols, GEMM bookkeeping, pooling, ...).

    Since the observability PR this is a thin view over {!Ax_obs}: the
    four phases live in an {!Ax_obs.Phases} partition, the counters in
    an {!Ax_obs.Metrics} registry, and an optional {!Ax_obs.Trace}
    tracer receives the per-node / per-chunk spans opened by the
    executor and convolution kernels. *)

type phase = Init | Quantization | Lut | Other

val phase_name : phase -> string
(** Stable lower-case name used as the {!Ax_obs.Phases} key
    (["init"], ["quantization"], ["lut"], ["other"]). *)

type t

val create : ?trace:Ax_obs.Trace.t -> unit -> t
(** A fresh profile; [trace] attaches a tracer so instrumented code
    records spans alongside the phase totals. *)

val reset : t -> unit
(** Zero phases and counters and clear the attached tracer (if any). *)

val time : t -> phase -> (unit -> 'a) -> 'a
(** Run a thunk and charge its wall-clock time to a phase.  Nested calls
    charge the inner phase and subtract from the outer one, so phases
    never double-count. *)

val add_seconds : t -> phase -> float -> unit
(** Charge time measured externally (used by the GPU timeline import). *)

val count_lut_lookups : t -> int -> unit
val count_macs : t -> int -> unit

val count : t -> string -> int -> unit
(** Increment an arbitrary named counter in {!metrics} (im2col bytes,
    chunk count, ...). *)

val observe : t -> string -> float -> unit
(** Record one observation into a named latency histogram in {!metrics}
    ([gemm_chunk_seconds], [emulator_image_seconds],
    [exec_node_seconds]). *)

val seconds : t -> phase -> float
val total_seconds : t -> float
val lut_lookups : t -> int
val macs : t -> int

val metrics : t -> Ax_obs.Metrics.t
(** The counter/gauge registry backing this profile ("lut_lookups" and
    "macs" plus whatever instrumented code added). *)

val phases : t -> Ax_obs.Phases.t
(** The phase partition backing {!time} / {!seconds} — exposed for
    shard merging and per-phase GC readouts. *)

val publish_gc : t -> unit
(** Export the per-phase GC deltas ([Phases.publish_gc]) and the
    process-lifetime GC readings ([Metrics.observe_gc]) into
    {!metrics} as gauges. *)

val trace : t -> Ax_obs.Trace.t option
val set_trace : t -> Ax_obs.Trace.t -> unit

val span :
  t -> name:string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
(** Record a span on the attached tracer; just runs the thunk when no
    tracer is attached, so instrumentation stays behavior-neutral. *)

type breakdown = {
  init_pct : float;
  quantization_pct : float;
  lut_pct : float;
  other_pct : float;
}

val breakdown : t -> breakdown
(** Percentages of the total (all zero when nothing was recorded).
    Phases driven negative by {!add_seconds} refunds are clamped to 0
    before shares are computed. *)

val pp_breakdown : Format.formatter -> breakdown -> unit
