module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Matrix = Ax_tensor.Matrix

let relu t = Tensor.map (fun v -> if v > 0. then v else 0.) t

let max_pool ~size ~stride input =
  if size <= 0 || stride <= 0 then invalid_arg "Layers.max_pool: bad params";
  let s = Tensor.shape input in
  if Shape.(s.h) < size || Shape.(s.w) < size then
    invalid_arg "Layers.max_pool: window larger than input";
  let out_h = ((Shape.(s.h) - size) / stride) + 1 in
  let out_w = ((Shape.(s.w) - size) / stride) + 1 in
  let out =
    Tensor.create (Shape.make ~n:Shape.(s.n) ~h:out_h ~w:out_w ~c:Shape.(s.c))
  in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to out_h - 1 do
      for ow = 0 to out_w - 1 do
        for c = 0 to Shape.(s.c) - 1 do
          let best = ref neg_infinity in
          for dh = 0 to size - 1 do
            for dw = 0 to size - 1 do
              let v =
                Tensor.get input ~n ~h:((oh * stride) + dh)
                  ~w:((ow * stride) + dw) ~c
              in
              if v > !best then best := v
            done
          done;
          Tensor.set out ~n ~h:oh ~w:ow ~c !best
        done
      done
    done
  done;
  out

let global_avg_pool input =
  let s = Tensor.shape input in
  let out = Tensor.create (Shape.make ~n:Shape.(s.n) ~h:1 ~w:1 ~c:Shape.(s.c)) in
  let cells = float_of_int (Shape.(s.h) * Shape.(s.w)) in
  for n = 0 to Shape.(s.n) - 1 do
    for c = 0 to Shape.(s.c) - 1 do
      let acc = ref 0. in
      for h = 0 to Shape.(s.h) - 1 do
        for w = 0 to Shape.(s.w) - 1 do
          acc := !acc +. Tensor.get input ~n ~h ~w ~c
        done
      done;
      Tensor.set out ~n ~h:0 ~w:0 ~c (!acc /. cells)
    done
  done;
  out

let batch_norm ~scale ~shift input =
  let s = Tensor.shape input in
  if Array.length scale <> Shape.(s.c) || Array.length shift <> Shape.(s.c)
  then invalid_arg "Layers.batch_norm: parameter length differs from channels";
  let out = Tensor.copy input in
  let buf = Tensor.buffer out in
  let c_count = Shape.(s.c) in
  for i = 0 to Tensor.num_elements out - 1 do
    let c = i mod c_count in
    buf.{i} <- (buf.{i} *. scale.(c)) +. shift.(c)
  done;
  out

let fold_batch_norm ~gamma ~beta ~mean ~variance ~epsilon =
  let n = Array.length gamma in
  if
    Array.length beta <> n || Array.length mean <> n
    || Array.length variance <> n
  then invalid_arg "Layers.fold_batch_norm: length mismatch";
  let scale = Array.make n 0. and shift = Array.make n 0. in
  for c = 0 to n - 1 do
    let inv_std = 1. /. sqrt (variance.(c) +. epsilon) in
    scale.(c) <- gamma.(c) *. inv_std;
    shift.(c) <- beta.(c) -. (gamma.(c) *. mean.(c) *. inv_std)
  done;
  (scale, shift)

let dense ~weights ~bias input =
  let s = Tensor.shape input in
  let features = Shape.(s.h) * Shape.(s.w) * Shape.(s.c) in
  if weights.Matrix.rows <> features then
    invalid_arg
      (Printf.sprintf "Layers.dense: %d features but weights have %d rows"
         features weights.Matrix.rows);
  if Array.length bias <> weights.Matrix.cols then
    invalid_arg "Layers.dense: bias length differs from output width";
  let classes = weights.Matrix.cols in
  let out = Tensor.create (Shape.make ~n:Shape.(s.n) ~h:1 ~w:1 ~c:classes) in
  let in_buf = Tensor.buffer input and out_buf = Tensor.buffer out in
  for n = 0 to Shape.(s.n) - 1 do
    let in_base = n * features and out_base = n * classes in
    for k = 0 to classes - 1 do
      let acc = ref bias.(k) in
      for f = 0 to features - 1 do
        acc :=
          !acc +. (in_buf.{in_base + f} *. weights.Matrix.data.((f * classes) + k))
      done;
      out_buf.{out_base + k} <- !acc
    done
  done;
  out

let softmax input =
  let s = Tensor.shape input in
  let out = Tensor.copy input in
  let c_count = Shape.(s.c) in
  let buf = Tensor.buffer out in
  let positions = Tensor.num_elements input / c_count in
  for p = 0 to positions - 1 do
    let base = p * c_count in
    let mx = ref buf.{base} in
    for c = 1 to c_count - 1 do
      if buf.{base + c} > !mx then mx := buf.{base + c}
    done;
    let sum = ref 0. in
    for c = 0 to c_count - 1 do
      let e = exp (buf.{base + c} -. !mx) in
      buf.{base + c} <- e;
      sum := !sum +. e
    done;
    for c = 0 to c_count - 1 do
      buf.{base + c} <- buf.{base + c} /. !sum
    done
  done;
  out

let argmax_channels input =
  let s = Tensor.shape input in
  if Shape.(s.h) <> 1 || Shape.(s.w) <> 1 then
    invalid_arg "Layers.argmax_channels: expected Nx1x1xC tensor";
  Array.init Shape.(s.n) (fun n ->
      let best = ref 0 and best_v = ref (Tensor.get input ~n ~h:0 ~w:0 ~c:0) in
      for c = 1 to Shape.(s.c) - 1 do
        let v = Tensor.get input ~n ~h:0 ~w:0 ~c in
        if v > !best_v then begin
          best_v := v;
          best := c
        end
      done;
      !best)

let shortcut_pad ~stride ~out_c input =
  if stride <= 0 then invalid_arg "Layers.shortcut_pad: stride";
  let s = Tensor.shape input in
  if out_c < Shape.(s.c) then
    invalid_arg "Layers.shortcut_pad: cannot shrink channels";
  let out_h = (Shape.(s.h) + stride - 1) / stride in
  let out_w = (Shape.(s.w) + stride - 1) / stride in
  let out = Tensor.create (Shape.make ~n:Shape.(s.n) ~h:out_h ~w:out_w ~c:out_c) in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to out_h - 1 do
      for ow = 0 to out_w - 1 do
        for c = 0 to Shape.(s.c) - 1 do
          Tensor.set out ~n ~h:oh ~w:ow ~c
            (Tensor.get input ~n ~h:(oh * stride) ~w:(ow * stride) ~c)
        done
      done
    done
  done;
  out
