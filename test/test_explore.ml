(* Tests for the certified design-space exploration layer (lib/explore):
   genome round-trips preserve the multiplier function, qcheck mutation
   validity (every mutant structurally sound and strip-dead idempotent),
   the certification rejection path, seeded end-to-end search
   determinism across reruns and pool sizes, and NaN-safe Pareto
   bookkeeping. *)

module Multipliers = Ax_netlist.Multipliers
module Circuit = Ax_netlist.Circuit
module Sim = Ax_netlist.Sim
module Opt = Ax_netlist.Opt
module Genome = Ax_explore.Genome
module Srng = Ax_explore.Srng
module Pareto = Ax_explore.Pareto
module Search = Ax_explore.Search

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  go 0

(* --- srng --- *)

let test_srng_deterministic () =
  let stream seed = List.init 32 (fun _ -> Srng.int (Srng.create seed) 1000) in
  let stream2 seed =
    let r = Srng.create seed in
    List.init 32 (fun _ -> Srng.int r 1000)
  in
  check_bool "same seed, same stream" true (stream2 5 = stream2 5);
  check_bool "different seeds diverge" true (stream2 5 <> stream2 6);
  check_bool "fresh state per create" true (stream 5 = stream 5);
  Alcotest.check_raises "bound must be positive"
    (Invalid_argument "Srng.int: bound must be positive") (fun () ->
      ignore (Srng.int (Srng.create 0) 0))

(* --- genome round trip --- *)

let round_trip_subjects () =
  [
    ("exact", Multipliers.unsigned_array ~bits:8);
    ("trunc8", Multipliers.truncated ~bits:8 ~cut:8);
    ("bam_h3v8", Multipliers.broken_array ~bits:8 ~hbl:3 ~vbl:8);
  ]

let test_genome_round_trip () =
  List.iter
    (fun (tag, m) ->
      let g = Genome.of_multiplier m in
      check_bool (tag ^ ": extracted genome valid") true (Genome.valid g);
      let m' = Genome.to_multiplier g in
      check_int (tag ^ ": width_a") m.Multipliers.width_a
        m'.Multipliers.width_a;
      check_int (tag ^ ": width_b") m.Multipliers.width_b
        m'.Multipliers.width_b;
      check_int (tag ^ ": product bits") m.Multipliers.product_bits
        m'.Multipliers.product_bits;
      (* Exhaustive: the replayed, dead-stripped circuit computes the
         identical function on all 65536 operand pairs. *)
      let f = Sim.truth_table_2x m.Multipliers.circuit ~width_a:8 ~width_b:8 in
      let f' =
        Sim.truth_table_2x m'.Multipliers.circuit ~width_a:8 ~width_b:8
      in
      let ok = ref true in
      for a = 0 to 255 do
        for b = 0 to 255 do
          if f a b <> f' a b then ok := false
        done
      done;
      check_bool (tag ^ ": function preserved") true !ok)
    (round_trip_subjects ())

(* --- mutation validity (qcheck) --- *)

(* Whatever the seed and mutation count, a mutant must stay structurally
   valid, rebuild into an 8x8 -> 16 multiplier, and be a fixed point of
   a second dead-logic sweep (Opt.strip_dead idempotence on the search's
   actual candidate path). *)
let mutation_validity =
  QCheck.Test.make ~name:"mutants valid, 8x8 interface, strip-dead idempotent"
    ~count:40
    QCheck.(pair (int_bound 10_000) (int_bound 3))
    (fun (seed, extra_ops) ->
      let rng = Srng.create seed in
      let g0 = Genome.of_multiplier (Multipliers.truncated ~bits:8 ~cut:6) in
      let g = Genome.mutate ~rng ~operations:(1 + extra_ops) g0 in
      Genome.valid g
      &&
      let m = Genome.to_multiplier g in
      m.Multipliers.width_a = 8
      && m.Multipliers.width_b = 8
      && m.Multipliers.product_bits = 16
      &&
      let c = m.Multipliers.circuit in
      let c' = Opt.strip_dead c in
      Circuit.node_count c' = Circuit.node_count c)

let mutation_leaves_parent_intact =
  QCheck.Test.make ~name:"mutation does not modify the parent genome"
    ~count:20
    QCheck.(int_bound 10_000)
    (fun seed ->
      let g0 = Genome.of_multiplier (Multipliers.truncated ~bits:8 ~cut:8) in
      let snapshot = Array.copy g0.Genome.genes in
      let rng = Srng.create seed in
      ignore (Genome.mutate ~rng ~operations:3 g0);
      g0.Genome.genes = snapshot)

(* --- certification rejection path --- *)

let test_certification_rejects_wrong_lut () =
  let exact = Multipliers.unsigned_array ~bits:8 in
  let trunc = Multipliers.truncated ~bits:8 ~cut:8 in
  (* The exact netlist against the truncated multiplier's LUT: the BDD
     proof must refute it, and the search must surface the rule name. *)
  (match Search.certify_candidate exact ~lut:(Search.tabulate trunc) with
  | Ok () -> Alcotest.fail "mismatched LUT must not certify"
  | Error reason ->
    check_bool "mismatch rule named" true (contains reason "net/lut-mismatch"));
  check_bool "matching LUT certifies" true
    (Search.certify_candidate exact ~lut:(Search.tabulate exact) = Ok ())

let test_tabulate_guards_interface () =
  Alcotest.check_raises "4x4 rejected"
    (Invalid_argument
       "Search.tabulate: candidate is not an unsigned 8x8 -> 16-bit multiplier")
    (fun () -> ignore (Search.tabulate (Multipliers.unsigned_array ~bits:4)))

(* --- end-to-end seeded search --- *)

let tiny_config =
  {
    Search.default_config with
    Search.seed = 7;
    generations = 1;
    population = 3;
    images = 2;
    model = Search.Lenet;
  }

let test_seeded_search_deterministic () =
  let r = Search.run tiny_config in
  check_bool "front non-empty" true (r.Search.front <> []);
  List.iter
    (fun p -> check_bool ("certified: " ^ p.Pareto.name) true p.Pareto.certified)
    r.Search.front;
  check_bool "every evaluation within budget" true
    (r.Search.evaluated
    <= tiny_config.Search.population * (tiny_config.Search.generations + 1));
  check_bool "counters add up" true
    (r.Search.rejected = List.length r.Search.rejections);
  let json = Search.front_json_string r in
  let csv = Search.front_csv_string r in
  (* Same config, fresh run: byte-identical artefacts. *)
  let r2 = Search.run tiny_config in
  check_string "rerun JSON byte-identical" json (Search.front_json_string r2);
  check_string "rerun CSV byte-identical" csv (Search.front_csv_string r2);
  (* Same config on an explicit 2-domain pool: the fan-out width must
     not leak into the result. *)
  let r3 =
    Ax_pool.Pool.with_pool ~domains:2 (fun pool -> Search.run ~pool tiny_config)
  in
  check_string "2-domain pool JSON byte-identical" json
    (Search.front_json_string r3)

let test_search_validates_config () =
  Alcotest.check_raises "population must be positive"
    (Invalid_argument "Search.run: population must be positive") (fun () ->
      ignore (Search.run { tiny_config with Search.population = 0 }));
  Alcotest.check_raises "unknown model name" (Failure
    "unknown model resnet9 (have: resnet8, lenet)") (fun () ->
      ignore (Search.model_of_string "resnet9"))

(* --- pareto bookkeeping --- *)

let pt ?(name = "p") ?(acc = 0.5) ?(energy = 0.5) () =
  {
    Pareto.name;
    generation = 0;
    accuracy = acc;
    energy;
    area = 1.;
    delay = 1.;
    power = 1.;
    pdp = 1.;
    gates = 1;
    mae = 0.;
    wce = 0;
    certified = true;
  }

let test_pareto_dominance () =
  let strong = pt ~name:"strong" ~acc:0.8 ~energy:0.5 () in
  let weak = pt ~name:"weak" ~acc:0.7 ~energy:0.6 () in
  let cheap = pt ~name:"cheap" ~acc:0.2 ~energy:0.1 () in
  check_bool "better on both dominates" true (Pareto.dominates strong weak);
  check_bool "dominance is not symmetric" false (Pareto.dominates weak strong);
  check_bool "trade-off does not dominate" false
    (Pareto.dominates strong cheap);
  check_bool "equal point does not dominate itself" false
    (Pareto.dominates strong strong);
  Alcotest.(check (list string))
    "front keeps trade-offs, energy-ascending" [ "cheap"; "strong" ]
    (List.map
       (fun p -> p.Pareto.name)
       (Pareto.front [ strong; weak; cheap ]))

let test_pareto_nan_safety () =
  let good = pt ~name:"good" ~acc:0.8 ~energy:0.5 () in
  let nan_acc = pt ~name:"nan_acc" ~acc:Float.nan ~energy:0.0 () in
  let inf_energy = pt ~name:"inf_e" ~acc:1.0 ~energy:Float.infinity () in
  (* A poisoned point must neither eat the archive nor survive into the
     front, whichever side of the comparison it lands on. *)
  check_bool "nan never dominates" false (Pareto.dominates nan_acc good);
  check_bool "nan never blocks" false (Pareto.dominates good nan_acc);
  Alcotest.(check (list string))
    "non-finite points filtered" [ "good" ]
    (List.map
       (fun p -> p.Pareto.name)
       (Pareto.front [ good; nan_acc; inf_energy ]))

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [ mutation_validity; mutation_leaves_parent_intact ]
  in
  Alcotest.run "ax_explore"
    [
      ( "srng",
        [ Alcotest.test_case "seeded stream" `Quick test_srng_deterministic ] );
      ( "genome",
        [
          Alcotest.test_case "round trip preserves function" `Slow
            test_genome_round_trip;
        ] );
      ("mutation", qsuite);
      ( "certification",
        [
          Alcotest.test_case "wrong LUT rejected" `Slow
            test_certification_rejects_wrong_lut;
          Alcotest.test_case "tabulate interface guard" `Quick
            test_tabulate_guards_interface;
        ] );
      ( "search",
        [
          Alcotest.test_case "seeded determinism across pools" `Slow
            test_seeded_search_deterministic;
          Alcotest.test_case "config validation" `Quick
            test_search_validates_config;
        ] );
      ( "pareto",
        [
          Alcotest.test_case "dominance and front" `Quick test_pareto_dominance;
          Alcotest.test_case "nan safety" `Quick test_pareto_nan_safety;
        ] );
    ]
