lib/arith/faults.ml: Int64
