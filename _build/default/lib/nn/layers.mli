(** Non-convolutional layers of the CIFAR ResNets: activations, pooling,
    batch norm (folded to per-channel affine), dense head, softmax, and
    the option-A residual shortcut. *)

val relu : Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t

val max_pool :
  size:int -> stride:int -> Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t
(** Valid-padded spatial max pooling. *)

val global_avg_pool : Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t
(** NHWC -> Nx1x1xC spatial mean. *)

val batch_norm :
  scale:float array -> shift:float array -> Ax_tensor.Tensor.t ->
  Ax_tensor.Tensor.t
(** Per-channel [x*scale + shift] (inference-time folded form). *)

val fold_batch_norm :
  gamma:float array -> beta:float array -> mean:float array ->
  variance:float array -> epsilon:float -> float array * float array
(** Fold training-time statistics into the (scale, shift) pair. *)

val dense :
  weights:Ax_tensor.Matrix.t -> bias:float array -> Ax_tensor.Tensor.t ->
  Ax_tensor.Tensor.t
(** Flatten each image and multiply: input features must equal
    [weights.rows]; output is Nx1x1x[weights.cols]. *)

val softmax : Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t
(** Numerically-stabilised softmax over the channel axis. *)

val argmax_channels : Ax_tensor.Tensor.t -> int array
(** Per-image arg-max over channels of an Nx1x1xC tensor (class id). *)

val shortcut_pad :
  stride:int -> out_c:int -> Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t
(** ResNet option-A identity shortcut: spatial subsampling by [stride]
    and zero-padding the channel dimension up to [out_c].  Raises
    [Invalid_argument] if [out_c] is smaller than the input channels. *)
