(** Reverse-mode differentiation over the graph IR.

    The forward pass is an ordinary {!Ax_nn.Exec.run_all} — so
    approximate layers genuinely emulate during training, exactly as the
    transformed TensorFlow graph does in the paper.  The backward pass
    treats [Ax_conv2d] / [Ax_depthwise_conv2d] with the straight-through
    estimator: their gradient is that of the underlying float
    convolution with the same (shared) weights, while the Min/Max range
    nodes and range constants receive no gradient — matching the
    paper's "minimum and maximum values ... determined once per batch"
    semantics where ranges are batch statistics, not trainables. *)

type param_grad =
  | Conv_grad of { filter : float array; bias : float array option }
      (** HWCK-flat filter gradient (both conv flavours). *)
  | Dense_grad of { weights : float array; bias : float array }
  | Bn_grad of { scale : float array; shift : float array }

val loss_and_gradients :
  ?strategy:Ax_nn.Exec.strategy ->
  Ax_nn.Graph.t ->
  input:Ax_tensor.Tensor.t ->
  labels:int array ->
  float * (Ax_nn.Graph.node_id * param_grad) list
(** Mean softmax cross-entropy and per-node parameter gradients.  The
    graph's output node must be [Softmax] over Nx1x1xC logits; raises
    [Invalid_argument] otherwise. *)
