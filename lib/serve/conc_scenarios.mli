(** Serve-side concurrency check units for
    [tfapprox check --suite concurrency] — the counterpart of
    [Ax_analysis.Conc_check.suite].

    Real-code units (record-mode discipline soaks of the admission
    queue and model store, deterministic exploration of the real
    {!Admission} module, the guarded repair-path model) must come back
    clean; the seeded unguarded repair race must be flagged, else it
    is reported as a [conc/blind-detector] error. *)

val suite : unit -> (string * Ax_analysis.Diagnostic.t list) list
