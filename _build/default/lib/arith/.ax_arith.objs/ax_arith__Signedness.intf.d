lib/arith/signedness.mli: Format
