lib/train/optimizer.ml: Array Ax_nn Ax_tensor Backprop Hashtbl List Printf
