type t =
  | Unknown_input of { op : string; node : string; input : int }
  | Arity_mismatch of { op : string; node : string; expected : int; got : int }
  | Unknown_output of { output : int; size : int }
  | No_such_layer of { context : string; name : string }
  | Not_a_conv of { context : string; name : string; op : string }
  | Op_rewrite of { node : string; from_op : string; to_op : string }

exception Error of t

let to_string = function
  | Unknown_input { op; node; input } ->
    Printf.sprintf "%s: %s references unknown input node %d" node op input
  | Arity_mismatch { op; node; expected; got } ->
    Printf.sprintf "%s: %s takes %d inputs, %d given" node op expected got
  | Unknown_output { output; size } ->
    Printf.sprintf "output node %d does not exist (graph has %d nodes)" output
      size
  | No_such_layer { context; name } ->
    Printf.sprintf "%s: no node named %s" context name
  | Not_a_conv { context; name; op } ->
    Printf.sprintf "%s: %s is a %s, not a convolution" context name op
  | Op_rewrite { node; from_op; to_op } ->
    Printf.sprintf "%s: cannot rewrite %s as %s (arity differs)" node from_op
      to_op

let error e = raise (Error e)

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Ax_nn.Nn_error.Error(%s)" (to_string e))
    | _ -> None)
