(** Kulkarni's underdesigned multiplier (Kulkarni et al., VLSI'11).

    A 2x2 block that computes every product exactly except [3*3], which
    yields [7] instead of [9] (saving gates), composed recursively into
    wider multipliers by the standard four-quadrant decomposition. *)

val mul2x2 : int -> int -> int
(** The underdesigned 2x2 block; operands in [0..3]. *)

val multiply : bits:int -> int -> int -> int
(** [multiply ~bits a b]: recursive composition down to the 2x2 block.
    [bits] must be a power of two and at least 2. *)
