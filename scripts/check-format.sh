#!/usr/bin/env bash
# Formatting gate: runs `dune build @fmt` when ocamlformat is available,
# and degrades to a no-op (with a visible notice) when it is not, so the
# check never blocks environments without the formatter installed.
set -euo pipefail

cd "$(dirname "$0")/.."

if command -v ocamlformat >/dev/null 2>&1; then
  echo "ocamlformat $(ocamlformat --version) found; checking formatting"
  dune build @fmt
else
  echo "ocamlformat not installed; skipping format check"
fi
