lib/netlist/opt.ml: Array Circuit Gate List
