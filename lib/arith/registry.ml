type provenance = Behavioural | Netlist_derived

type entry = {
  name : string;
  description : string;
  signedness : Signedness.t;
  provenance : provenance;
  multiply : int -> int -> int;
  netlist : (unit -> Ax_netlist.Multipliers.t) option;
}

let behavioural name description signedness multiply =
  {
    name;
    description;
    signedness;
    provenance = Behavioural;
    multiply;
    netlist = None;
  }

(* Netlist-backed entries: the gate-level circuit is built and
   exhaustively simulated on first use, then memoised inside
   [Multipliers.behavioural]'s lazy table. *)
let netlist_unsigned name description make =
  let f =
    let table = lazy (Ax_netlist.Multipliers.behavioural (make ())) in
    fun a b -> (Lazy.force table) a b
  in
  {
    name;
    description;
    signedness = Signedness.Unsigned;
    provenance = Netlist_derived;
    multiply = f;
    netlist = Some make;
  }

let netlist_signed name description make =
  let f =
    let table = lazy (Ax_netlist.Multipliers.behavioural (make ())) in
    fun a b ->
      let raw =
        (Lazy.force table)
          (Signedness.code_of_value Signedness.Signed a)
          (Signedness.code_of_value Signedness.Signed b)
      in
      if raw >= 32768 then raw - 65536 else raw
  in
  {
    name;
    description;
    signedness = Signedness.Signed;
    provenance = Netlist_derived;
    multiply = f;
    netlist = Some make;
  }

let truncated_u cut =
  behavioural
    (Printf.sprintf "mul8u_trunc%d" cut)
    (Printf.sprintf "array multiplier, partial products below 2^%d dropped"
       cut)
    Signedness.Unsigned
    (Truncation.truncated ~bits:8 ~cut)

let drum_u k =
  behavioural
    (Printf.sprintf "mul8u_drum%d" k)
    (Printf.sprintf "DRUM with %d-bit leading-one windows" k)
    Signedness.Unsigned
    (Drum.multiply ~k)

let drum_s k =
  behavioural
    (Printf.sprintf "mul8s_drum%d" k)
    (Printf.sprintf "sign-magnitude DRUM, %d-bit windows" k)
    Signedness.Signed
    (Exact.signed_of_unsigned (Drum.multiply ~k))

let catalogue =
  lazy
    [
      behavioural "mul8u_exact" "exact unsigned product" Signedness.Unsigned
        Exact.mul8u;
      behavioural "mul8s_exact" "exact signed product" Signedness.Signed
        Exact.mul8s;
      truncated_u 4;
      truncated_u 6;
      truncated_u 8;
      truncated_u 10;
      behavioural "mul8u_bam_h2_v6"
        "broken-array multiplier, hbl=2 vbl=6" Signedness.Unsigned
        (Truncation.broken_array ~bits:8 ~hbl:2 ~vbl:6);
      behavioural "mul8u_bam_h3_v8"
        "broken-array multiplier, hbl=3 vbl=8" Signedness.Unsigned
        (Truncation.broken_array ~bits:8 ~hbl:3 ~vbl:8);
      drum_u 3;
      drum_u 4;
      drum_u 6;
      drum_s 4;
      drum_s 6;
      behavioural "mul8u_mitchell" "Mitchell logarithmic multiplier"
        Signedness.Unsigned Mitchell.multiply;
      behavioural "mul8s_mitchell"
        "sign-magnitude Mitchell logarithmic multiplier" Signedness.Signed
        (Exact.signed_of_unsigned Mitchell.multiply);
      behavioural "mul8u_kulkarni"
        "Kulkarni underdesigned 2x2 blocks, recursive" Signedness.Unsigned
        (Kulkarni.multiply ~bits:8);
      behavioural "mul8s_trunc6"
        "sign-magnitude truncated array multiplier, cut=6" Signedness.Signed
        (Exact.signed_of_unsigned (Truncation.truncated ~bits:8 ~cut:6));
      behavioural "mul8u_flip14_1e-3"
        "exact product with deterministic 0.1% per-bit output faults"
        Signedness.Unsigned
        (Faults.random_flip ~probability:0.001 ~seed:42 ~bits:14 Exact.mul8u);
      netlist_unsigned "mul8u_nl_exact"
        "gate-level carry-save array multiplier (exhaustively simulated)"
        (fun () -> Ax_netlist.Multipliers.unsigned_array ~bits:8);
      netlist_unsigned "mul8u_nl_trunc8"
        "gate-level truncated array multiplier, cut=8"
        (fun () -> Ax_netlist.Multipliers.truncated ~bits:8 ~cut:8);
      netlist_unsigned "mul8u_nl_bam_h2_v6"
        "gate-level broken-array multiplier, hbl=2 vbl=6"
        (fun () -> Ax_netlist.Multipliers.broken_array ~bits:8 ~hbl:2 ~vbl:6);
      netlist_signed "mul8s_nl_exact"
        "gate-level Baugh-Wooley signed multiplier"
        (fun () -> Ax_netlist.Multipliers.baugh_wooley_signed ~bits:8);
    ]

let registered : entry list ref = ref []

let all () = Lazy.force catalogue @ List.rev !registered
let names () = List.map (fun e -> e.name) (all ())

let register entry =
  if List.exists (fun e -> e.name = entry.name) (all ()) then
    invalid_arg
      (Printf.sprintf "Registry.register: duplicate name %s" entry.name);
  registered := entry :: !registered
let find name = List.find_opt (fun e -> e.name = name) (all ())

let find_exn name =
  match find name with
  | Some e -> e
  | None ->
    failwith
      (Printf.sprintf "Registry.find_exn: unknown multiplier %s (have: %s)"
         name
         (String.concat ", " (names ())))

let lut_cache : (string, Lut.t) Hashtbl.t = Hashtbl.create 16

let lut entry =
  match Hashtbl.find_opt lut_cache entry.name with
  | Some t -> t
  | None ->
    let t = Lut.make ~signedness:entry.signedness entry.multiply in
    Hashtbl.add lut_cache entry.name t;
    t

let exact_for = function
  | Signedness.Unsigned -> find_exn "mul8u_exact"
  | Signedness.Signed -> find_exn "mul8s_exact"
