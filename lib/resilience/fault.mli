(** Fault models over emulator state.

    TFApprox keeps the approximate multiplier as a 128 kB truth table in
    GPU texture memory, the network parameters in device global memory,
    and inter-layer activations in reused device buffers.  This module
    models radiation-style upsets in each of those memories — single-bit
    flips (SEU) and stuck-at cells — as pure, seeded transformations of
    the corresponding emulator state, so a resilience campaign is
    exactly reproducible from [(seed, site)] with no hidden RNG state.

    Faults never mutate shared state: {!corrupt_lut} edits a
    {!Ax_arith.Lut.copy}, {!corrupt_graph} rebuilds parameter arrays,
    and {!tap} copies each activation tensor before writing. *)

type kind =
  | Bit_flip          (** SEU: toggle the bit once *)
  | Stuck_at of bool  (** permanent cell fault: force the bit *)

type site =
  | Lut_entry of { index : int; bit : int }
      (** a bit of raw 16-bit truth-table entry [index] (texture
          memory); [bit] in 0..15, [index] in [0, {!Ax_arith.Lut.entries}) *)
  | Weight of { node : string; index : int; bit : int }
      (** a bit of the IEEE-754 pattern of flat parameter [index] of the
          named graph node (filter banks in HWCK order, dense matrices
          row-major); [bit] in 0..31 *)
  | Activation of { node : string; index : int; bit : int }
      (** a faulty cell of the named node's output buffer, at per-image
          offset [index mod (h*w*c)] — hit once per image, mirroring a
          persistent bad cell in a reused device buffer; [bit] in 0..31 *)

type t = { site : site; kind : kind }

val kind_name : kind -> string
val pp_site : Format.formatter -> site -> unit
val pp : Format.formatter -> t -> unit

(** {1 Deterministic site selection}

    SplitMix64-style mixing of [(seed, salts)]; exposed so tests can pin
    the exact sites a seed denotes. *)

val hash : seed:int -> int list -> int
(** Non-negative 62-bit mix, a pure function of its arguments. *)

val uniform : seed:int -> int list -> int -> int
(** [uniform ~seed salts n] in [\[0, n)].  Raises [Invalid_argument]
    when [n <= 0]. *)

val bernoulli : seed:int -> int list -> float -> bool
(** True with probability [rate] over the salt space.  Raises
    [Invalid_argument] outside [0, 1]. *)

(** {1 Bit surgery} *)

val apply_int : kind -> bit:int -> int -> int
(** Apply the fault to one bit of an integer word. *)

val apply_float32 : kind -> bit:int -> float -> float
(** Apply the fault to one bit of the float32 pattern
    ([Int32.bits_of_float] domain — flips of exponent/sign bits can
    legitimately produce infinities, as on real hardware).  Raises
    [Invalid_argument] when [bit] is outside 0..31. *)

(** {1 Applying fault lists}

    Each function consumes the sites of its own kind from the list and
    ignores the rest, so one mixed campaign trial can be threaded
    through all three. *)

val corrupt_lut : Ax_arith.Lut.t -> t list -> Ax_arith.Lut.t
(** Fresh table with every [Lut_entry] fault applied.  Raises
    [Invalid_argument] on a bit outside 0..15 or an index outside the
    table. *)

val corrupt_graph : Ax_nn.Graph.t -> t list -> Ax_nn.Graph.t
(** Graph with every [Weight] fault applied to a private copy of the
    named node's parameters (topology, ids and all other state shared).
    Raises [Invalid_argument] when a fault names a missing node, a node
    without weight memory, or an out-of-range index. *)

val tap : t list -> Ax_nn.Graph.node -> Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t
(** Activation-fault hook for {!Ax_nn.Exec.run}'s [?tap] (also reachable
    through {!Tfapprox.Emulator.run}): applies every [Activation] fault
    addressed to the node, returning the input tensor unchanged (and
    uncopied) for unaffected nodes. *)

(** {1 Seeded site generators} *)

val random_lut_sites : seed:int -> count:int -> site list
(** [count] uniform (entry, bit) texture-memory sites (collisions
    possible, as in repeated physical upsets). *)

val random_flip : seed:int -> rate:float -> Ax_arith.Lut.t -> Ax_arith.Lut.t
(** Independently flip each of the [entries * 16] table bits with
    probability [rate] — the rate-sweep fault model.  The empirical flip
    fraction (see {!flip_count}) concentrates around [rate]. *)

val flip_count : Ax_arith.Lut.t -> Ax_arith.Lut.t -> int
(** Hamming distance between two tables' raw entries. *)

val random_weight_sites :
  seed:int -> count:int -> bit:int -> Ax_nn.Graph.t -> site list
(** [count] parameter sites, nodes weighted by their parameter count so
    every weight in the model is equally likely.  Raises
    [Invalid_argument] on a weightless graph. *)

val random_activation_sites :
  seed:int -> count:int -> bit:int -> Ax_nn.Graph.t -> site list
(** [count] activation sites over the tensor-valued nodes (scalar range
    nodes and the input placeholder excluded); offsets are reduced
    modulo each buffer's per-image size at injection time. *)
