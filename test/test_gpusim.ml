(* GPU execution model: texture-cache simulator invariants, cost-model
   sanity and monotonicity, workload extraction. *)

module Device = Ax_gpusim.Device
module Texcache = Ax_gpusim.Texcache
module Cost = Ax_gpusim.Cost
module Energy = Ax_gpusim.Energy
module Multipliers = Ax_netlist.Multipliers
module Netlist_circuit = Ax_netlist.Circuit
module Shape = Ax_tensor.Shape
module Rng = Ax_tensor.Rng
module Resnet = Ax_models.Resnet

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-9))

(* --- texcache --- *)

let test_cache_geometry_validation () =
  Alcotest.check_raises "line size"
    (Invalid_argument "Texcache.create: line size must be a power of two")
    (fun () -> ignore (Texcache.create ~size_bytes:1024 ~line_bytes:24 ~ways:2));
  Alcotest.check_raises "divisibility"
    (Invalid_argument "Texcache.create: size not divisible by line*ways")
    (fun () -> ignore (Texcache.create ~size_bytes:1000 ~line_bytes:32 ~ways:2))

let test_zero_capacity_always_misses () =
  let c = Texcache.create ~size_bytes:0 ~line_bytes:32 ~ways:1 in
  for i = 0 to 99 do
    if Texcache.access c (i mod 4) then Alcotest.fail "zero cache hit"
  done;
  check_float "hit rate 0" 0. (Texcache.hit_rate c)

let test_repeated_address_hits () =
  let c = Texcache.create ~size_bytes:1024 ~line_bytes:32 ~ways:2 in
  ignore (Texcache.access c 100);
  for _ = 1 to 10 do
    check_bool "same line hits" true (Texcache.access c 100)
  done;
  check_bool "same line other byte hits" true (Texcache.access c 101)

let test_cache_large_enough_never_misses_after_warmup () =
  (* A cache holding the whole 128 kB LUT: after one pass over every
     line, everything hits — the paper's dedicated-cache argument. *)
  let c = Texcache.create ~size_bytes:(128 * 1024) ~line_bytes:32 ~ways:4 in
  let rng = Rng.create 1 in
  (* warmup: touch every line *)
  for line = 0 to (128 * 1024 / 32) - 1 do
    ignore (Texcache.access c (line * 32))
  done;
  Texcache.reset_stats c;
  for _ = 1 to 10_000 do
    let ca = Rng.int rng 256 and cb = Rng.int rng 256 in
    ignore (Texcache.access c (Texcache.lut_address ca cb))
  done;
  check_float "100% hits after warmup" 1. (Texcache.hit_rate c)

let test_small_cache_thrashes_on_uniform_traffic () =
  let c = Texcache.create ~size_bytes:2048 ~line_bytes:32 ~ways:2 in
  let rng = Rng.create 2 in
  let pairs =
    Array.init 20_000 (fun _ -> (Rng.int rng 256, Rng.int rng 256))
  in
  let rate = Texcache.simulate_lut_stream c pairs in
  (* 2 kB of 128 kB resident: hit rate must be poor. *)
  check_bool (Printf.sprintf "thrashing (%.3f)" rate) true (rate < 0.2)

let test_narrow_value_range_caches_well () =
  (* Quantized CNN values cluster; a narrow code range fits the cache.
     This is why the texture cache works so well in practice. *)
  let c = Texcache.create ~size_bytes:(16 * 1024) ~line_bytes:32 ~ways:4 in
  let rng = Rng.create 3 in
  let pairs =
    Array.init 20_000 (fun _ -> (64 + Rng.int rng 32, 96 + Rng.int rng 32))
  in
  ignore (Texcache.simulate_lut_stream c pairs);
  let rate = Texcache.simulate_lut_stream c pairs in
  check_bool (Printf.sprintf "narrow range cached (%.3f)" rate) true
    (rate > 0.9)

let test_lru_eviction_order () =
  (* 2 ways, 1 set of 2 lines: A B A C -> C evicts B, so A still hits. *)
  let c = Texcache.create ~size_bytes:64 ~line_bytes:32 ~ways:2 in
  check_bool "A miss" false (Texcache.access c 0);
  check_bool "B miss" false (Texcache.access c 32);
  check_bool "A hit" true (Texcache.access c 0);
  check_bool "C miss" false (Texcache.access c 64);
  check_bool "A survives (B was LRU)" true (Texcache.access c 0);
  check_bool "B evicted" false (Texcache.access c 32)

let test_flush () =
  let c = Texcache.create ~size_bytes:1024 ~line_bytes:32 ~ways:2 in
  ignore (Texcache.access c 0);
  Texcache.flush c;
  check_int "stats cleared" 0 (Texcache.accesses c);
  check_bool "contents cleared" false (Texcache.access c 0)

(* --- cost model --- *)

let resnet_workloads depth images =
  let g = Resnet.build ~with_batch_norm:false ~depth () in
  Cost.workloads_of_graph g ~input:(Resnet.input_shape ~batch:1) ~images

let test_workload_counts () =
  let ws = resnet_workloads 8 100 in
  check_int "one workload per conv" 7 (List.length ws);
  let macs = Cost.total_macs ws in
  check_bool "macs = images * per-image" true
    (abs_float (macs -. (100. *. float_of_int (Resnet.macs_per_image ~depth:8)))
     < 1.)

let test_approx_time_linear_in_depth () =
  (* Table I: t_comp grows linearly with MACs.  The model must preserve
     monotone, near-proportional growth. *)
  let t depth =
    Cost.total
      (Cost.approx_network Device.gtx_1080 ~chunk_size:250
         (resnet_workloads depth 1000))
  in
  let t8 = t 8 and t32 = t 32 and t62 = t 62 in
  check_bool "monotone" true (t8 < t32 && t32 < t62);
  let m8 = float_of_int (Resnet.macs_per_image ~depth:8) in
  let m62 = float_of_int (Resnet.macs_per_image ~depth:62) in
  let ratio_time = t62 /. t8 and ratio_macs = m62 /. m8 in
  check_bool
    (Printf.sprintf "near-proportional (time x%.1f, macs x%.1f)" ratio_time
       ratio_macs)
    true
    (ratio_time > 0.5 *. ratio_macs && ratio_time < 1.5 *. ratio_macs)

let test_approx_slower_than_accurate_on_gpu () =
  (* Table I: GPU AxConv2D is roughly 10x the accurate GPU time. *)
  let ws = resnet_workloads 32 1000 in
  let acc = Cost.total (Cost.accurate_network Device.gtx_1080 ws) in
  let apx =
    Cost.total (Cost.approx_network Device.gtx_1080 ~chunk_size:250 ws)
  in
  check_bool
    (Printf.sprintf "emulation overhead (acc %.3f apx %.3f)" acc apx)
    true
    (apx > 3. *. acc && apx < 40. *. acc)

let test_lut_hit_rate_affects_time () =
  let ws = resnet_workloads 20 1000 in
  let slow =
    Cost.total
      (Cost.approx_network Device.gtx_1080 ~lut_hit_rate:0. ~chunk_size:250 ws)
  in
  let fast =
    Cost.total
      (Cost.approx_network Device.gtx_1080 ~lut_hit_rate:1. ~chunk_size:250 ws)
  in
  check_bool "misses cost time" true (slow > fast)

let test_phases_accounting () =
  let ws = resnet_workloads 20 1000 in
  let p = Cost.approx_network Device.gtx_1080 ~chunk_size:250 ws in
  check_bool "all phases positive" true
    (p.Cost.quantization_s > 0. && p.Cost.lut_s > 0. && p.Cost.other_s > 0.);
  check_float "init charged separately" 0. p.Cost.init_s;
  let init =
    Cost.transfer_init Device.gtx_1080 ~dataset_bytes:3e7 ~weight_bytes:1e6
  in
  check_bool "init dominated by context setup" true
    (init.Cost.init_s >= Device.gtx_1080.Device.context_setup_s);
  let whole = Cost.add p init in
  let b = Cost.breakdown whole in
  let sum =
    b.Ax_nn.Profile.init_pct +. b.Ax_nn.Profile.quantization_pct
    +. b.Ax_nn.Profile.lut_pct +. b.Ax_nn.Profile.other_pct
  in
  check_bool "breakdown sums to 100" true (abs_float (sum -. 100.) < 1e-6)

let test_measure_hit_rate_on_real_codes () =
  (* Quantize a real layer's data and replay its GEMM access stream. *)
  let module Tensor = Ax_tensor.Tensor in
  let module Filter = Ax_nn.Filter in
  let module Q = Ax_quant.Quantization in
  let input = Tensor.create (Shape.make ~n:1 ~h:16 ~w:16 ~c:8) in
  Tensor.fill_uniform ~lo:0. ~hi:1. (Rng.create 4) input;
  let filter = Filter.create ~kh:3 ~kw:3 ~in_c:8 ~out_c:16 in
  Filter.fill_he_normal (Rng.create 5) filter;
  let spec = Ax_nn.Conv_spec.default in
  let plan = Ax_nn.Im2col.make (Tensor.shape input) ~kh:3 ~kw:3 ~spec in
  let coeffs = Q.compute_coeffs Ax_arith.Signedness.Unsigned ~rmin:0. ~rmax:1. in
  let mp, _ =
    Ax_nn.Im2col.to_codes plan input ~coeffs
      ~round_mode:Ax_quant.Round.Nearest_even
      ~signedness:Ax_arith.Signedness.Unsigned
  in
  let fmin, fmax = Filter.min_max filter in
  let fcoeffs =
    Q.compute_coeffs Ax_arith.Signedness.Unsigned ~rmin:fmin ~rmax:fmax
  in
  let mf_t, _ =
    Ax_nn.Axconv.quantize_filters Ax_arith.Signedness.Unsigned fcoeffs
      Ax_quant.Round.Nearest_even filter
  in
  let rate =
    Cost.measure_hit_rate Device.gtx_1080 ~mp ~mf_t ~rows:plan.Ax_nn.Im2col.rows
      ~taps:72 ~out_c:16 ~sample_rows:64
  in
  check_bool (Printf.sprintf "plausible hit rate (%.3f)" rate) true
    (rate > 0.5 && rate <= 1.)

let test_per_layer_report () =
  let g = Resnet.build ~with_batch_norm:false ~depth:8 () in
  let ws =
    Cost.workloads_of_graph g ~input:(Resnet.input_shape ~batch:1)
      ~images:1000
  in
  let report = Cost.per_layer Device.gtx_1080 ~chunk_size:250 ws in
  check_int "one entry per conv" 7 (List.length report);
  (* Labels come from the graph node names. *)
  check_bool "stem labelled" true (List.mem_assoc "conv0" report);
  check_bool "block conv labelled" true
    (List.mem_assoc "stage0/block0/conv1" report);
  (* Per-layer kernel times sum to the network body (no transfers). *)
  let sum =
    List.fold_left (fun acc (_, p) -> acc +. Cost.total p) 0. report
  in
  let whole =
    Cost.total (Cost.approx_network Device.gtx_1080 ~chunk_size:250 ws)
  in
  check_bool
    (Printf.sprintf "per-layer sums to network (%.4f vs %.4f)" sum whole)
    true
    (abs_float (sum -. whole) < 1e-9)

let test_device_peaks () =
  check_bool "gtx1080 peak flops" true
    (abs_float (Device.peak_flops Device.gtx_1080 -. 4.4288e12) < 1e9);
  check_bool "lut rate below flops" true
    (Device.peak_lut_rate Device.gtx_1080 < Device.peak_flops Device.gtx_1080)

let test_smaller_device_is_slower () =
  let ws = resnet_workloads 20 1000 in
  let big =
    Cost.total (Cost.approx_network Device.gtx_1080 ~chunk_size:250 ws)
  in
  let small =
    Cost.total (Cost.approx_network Device.jetson_class ~chunk_size:250 ws)
  in
  let fast =
    Cost.total (Cost.approx_network Device.datacenter_class ~chunk_size:250 ws)
  in
  check_bool "jetson slower than gtx1080" true (small > big);
  check_bool "datacenter faster than gtx1080" true (fast < big)

(* --- energy --- *)

let test_energy_relative_sane () =
  let exact =
    Energy.mac_of_circuit
      (Multipliers.unsigned_array ~bits:8).Multipliers.circuit
  in
  check_bool "exact MAC is the unit" true
    (abs_float (Energy.relative_mac_energy exact -. 1.0) < 1e-9);
  check_float "total is the component sum" 3.0
    (Energy.total { Energy.multiplier_energy = 1.0; accumulator_energy = 2.0 });
  let trunc =
    Energy.mac_of_circuit
      (Multipliers.truncated ~bits:8 ~cut:8).Multipliers.circuit
  in
  let r = Energy.relative_mac_energy trunc in
  check_bool "truncation saves energy" true (r > 0. && r < 1.);
  check_bool "savings percent consistent" true
    (abs_float (Energy.savings_percent trunc -. (100. *. (1. -. r))) < 1e-9)

(* The legitimate edge the guard must NOT reject: an all-constant
   "multiplier" has zero switching power of its own, but the MAC ratio
   stays finite and positive through the accumulator share.  Exactly
   the shape an aggressive const-folding mutation produces in the
   explore search. *)
let test_energy_degenerate_multiplier_ok () =
  let c = Netlist_circuit.create ~name:"all_const" () in
  for i = 0 to 7 do
    ignore (Netlist_circuit.input c (Printf.sprintf "a%d" i))
  done;
  for i = 0 to 7 do
    ignore (Netlist_circuit.input c (Printf.sprintf "b%d" i))
  done;
  let zero = Netlist_circuit.const c false in
  for i = 0 to 15 do
    Netlist_circuit.output c (Printf.sprintf "p%d" i) zero
  done;
  let r = Energy.relative_mac_energy (Energy.mac_of_circuit c) in
  check_bool "finite, positive, below the exact MAC" true
    (Float.is_finite r && r > 0. && r < 1.)

(* A NaN, infinite or negative component must be a typed error at the
   division, never a NaN leaking into Pareto dominance comparisons. *)
let test_energy_rejects_poisoned_profiles () =
  let rejects p =
    match Energy.relative_mac_energy p with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  check_bool "nan multiplier energy" true
    (rejects { Energy.multiplier_energy = Float.nan; accumulator_energy = 0. });
  check_bool "infinite accumulator energy" true
    (rejects
       { Energy.multiplier_energy = 0.; accumulator_energy = Float.infinity });
  check_bool "negative component" true
    (rejects { Energy.multiplier_energy = -1.; accumulator_energy = 1. });
  check_bool "network energy goes through the same guard" true
    (match
       Energy.network_energy
         { Energy.multiplier_energy = Float.nan; accumulator_energy = 0. }
         ~macs:10.
     with
    | _ -> false
    | exception Invalid_argument _ -> true)

let () =
  Alcotest.run "ax_gpusim"
    [
      ( "texcache",
        [
          Alcotest.test_case "geometry validation" `Quick
            test_cache_geometry_validation;
          Alcotest.test_case "zero capacity misses" `Quick
            test_zero_capacity_always_misses;
          Alcotest.test_case "repeated address hits" `Quick
            test_repeated_address_hits;
          Alcotest.test_case "full-LUT cache never misses" `Quick
            test_cache_large_enough_never_misses_after_warmup;
          Alcotest.test_case "small cache thrashes" `Quick
            test_small_cache_thrashes_on_uniform_traffic;
          Alcotest.test_case "narrow range caches well" `Quick
            test_narrow_value_range_caches_well;
          Alcotest.test_case "LRU eviction" `Quick test_lru_eviction_order;
          Alcotest.test_case "flush" `Quick test_flush;
        ] );
      ( "cost",
        [
          Alcotest.test_case "workload extraction" `Quick test_workload_counts;
          Alcotest.test_case "linear in depth" `Quick
            test_approx_time_linear_in_depth;
          Alcotest.test_case "emulation overhead vs accurate" `Quick
            test_approx_slower_than_accurate_on_gpu;
          Alcotest.test_case "hit rate affects time" `Quick
            test_lut_hit_rate_affects_time;
          Alcotest.test_case "phase accounting" `Quick test_phases_accounting;
          Alcotest.test_case "hit rate from real codes" `Quick
            test_measure_hit_rate_on_real_codes;
          Alcotest.test_case "per-layer report" `Quick test_per_layer_report;
          Alcotest.test_case "device peaks" `Quick test_device_peaks;
          Alcotest.test_case "device sweep ordering" `Quick
            test_smaller_device_is_slower;
        ] );
      ( "energy",
        [
          Alcotest.test_case "relative MAC energy sane" `Quick
            test_energy_relative_sane;
          Alcotest.test_case "degenerate multiplier accepted" `Quick
            test_energy_degenerate_multiplier_ok;
          Alcotest.test_case "poisoned profiles rejected" `Quick
            test_energy_rejects_poisoned_profiles;
        ] );
    ]
