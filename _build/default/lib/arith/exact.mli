(** Exact reference multipliers and the sign-magnitude adaptor used to
    derive signed variants of unsigned approximate designs. *)

val mul8u : int -> int -> int
(** Exact product of two unsigned values in [0..255]. *)

val mul8s : int -> int -> int
(** Exact product of two signed values in [-128..127]. *)

val signed_of_unsigned : (int -> int -> int) -> int -> int -> int
(** [signed_of_unsigned mulu a b] lifts an unsigned magnitude multiplier
    to two's-complement operands via sign-magnitude decomposition: the
    result is [sign(a)*sign(b) * mulu |a| |b|].  Magnitudes reach 128, so
    [mulu] must accept operands in [0..128]. *)
