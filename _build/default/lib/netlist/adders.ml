let half_adder c a b = (Circuit.xor_ c a b, Circuit.and_ c a b)

let full_adder c a b cin =
  let axb = Circuit.xor_ c a b in
  let sum = Circuit.xor_ c axb cin in
  let carry = Circuit.or_ c (Circuit.and_ c a b) (Circuit.and_ c axb cin) in
  (sum, carry)

let ripple_carry c ?carry_in a b =
  let n = Bus.width a in
  if Bus.width b <> n then invalid_arg "Adders.ripple_carry: width mismatch";
  let sum = Array.make n (Circuit.const c false) in
  let carry = ref (match carry_in with Some s -> s | None -> Circuit.const c false) in
  for i = 0 to n - 1 do
    let s, co = full_adder c a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := co
  done;
  (sum, !carry)

(* Parallel prefix over (generate, propagate) pairs:
   (g2, p2) o (g1, p1) = (g2 OR (p2 AND g1), p2 AND p1). *)
let kogge_stone c ?carry_in a b =
  let n = Bus.width a in
  if Bus.width b <> n then invalid_arg "Adders.kogge_stone: width mismatch";
  let cin = match carry_in with Some s -> s | None -> Circuit.const c false in
  let p0 = Array.init n (fun i -> Circuit.xor_ c a.(i) b.(i)) in
  let g = Array.init n (fun i -> Circuit.and_ c a.(i) b.(i)) in
  let p = Array.copy p0 in
  (* After the sweep, g.(i) is the carry generated out of bits 0..i
     (ignoring cin) and p.(i) tells whether bits 0..i all propagate. *)
  let stride = ref 1 in
  while !stride < n do
    for i = n - 1 downto !stride do
      let j = i - !stride in
      let new_g = Circuit.or_ c g.(i) (Circuit.and_ c p.(i) g.(j)) in
      let new_p = Circuit.and_ c p.(i) p.(j) in
      g.(i) <- new_g;
      p.(i) <- new_p
    done;
    stride := !stride * 2
  done;
  (* Carry into position i: prefix generate of 0..i-1, plus cin riding
     through a full propagate prefix. *)
  let carry_into i =
    if i = 0 then cin
    else Circuit.or_ c g.(i - 1) (Circuit.and_ c p.(i - 1) cin)
  in
  let sum = Array.init n (fun i -> Circuit.xor_ c p0.(i) (carry_into i)) in
  (sum, carry_into n)

let lower_or c ~approx_bits a b =
  let n = Bus.width a in
  if Bus.width b <> n then invalid_arg "Adders.lower_or: width mismatch";
  if approx_bits < 0 || approx_bits > n then
    invalid_arg "Adders.lower_or: approx_bits out of range";
  let sum = Array.make n (Circuit.const c false) in
  for i = 0 to approx_bits - 1 do
    sum.(i) <- Circuit.or_ c a.(i) b.(i)
  done;
  let carry = ref (Circuit.const c false) in
  for i = approx_bits to n - 1 do
    let s, co = full_adder c a.(i) b.(i) !carry in
    sum.(i) <- s;
    carry := co
  done;
  (sum, !carry)

(* Column compression: repeatedly replace triples (full adder) and pairs
   (half adder) in each column until no column holds more than two bits,
   then finish with one ripple-carry addition over the two remaining
   rows.  Columns at weight >= width are dropped, as is the final
   carry-out, modelling a fixed-width product register. *)
let carry_save_reduce c ~width columns =
  let cols = Array.make width [] in
  Array.iteri
    (fun k bits -> if k < width then cols.(k) <- bits)
    columns;
  let busy () = Array.exists (fun l -> List.length l > 2) cols in
  while busy () do
    let next = Array.make width [] in
    for k = 0 to width - 1 do
      let rec crunch acc = function
        | a :: b :: cin :: rest ->
          let s, co = full_adder c a b cin in
          if k + 1 < width then next.(k + 1) <- co :: next.(k + 1);
          crunch (s :: acc) rest
        | [ a; b ] when List.length cols.(k) > 2 ->
          (* Only fold leftover pairs in columns that were overfull, to
             avoid ping-ponging two-bit columns forever. *)
          let s, co = half_adder c a b in
          if k + 1 < width then next.(k + 1) <- co :: next.(k + 1);
          crunch (s :: acc) []
        | rest -> List.rev_append acc rest
      in
      next.(k) <- crunch [] cols.(k) @ next.(k)
    done;
    Array.blit next 0 cols 0 width
  done;
  let row_a = Array.make width (Circuit.const c false) in
  let row_b = Array.make width (Circuit.const c false) in
  for k = 0 to width - 1 do
    match cols.(k) with
    | [] -> ()
    | [ a ] -> row_a.(k) <- a
    | [ a; b ] ->
      row_a.(k) <- a;
      row_b.(k) <- b
    | _ -> assert false
  done;
  let sum, _carry_out = ripple_carry c row_a row_b in
  sum
