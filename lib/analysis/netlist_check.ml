module Circuit = Ax_netlist.Circuit
module Gate = Ax_netlist.Gate
module Bdd = Ax_netlist.Bdd
module Multipliers = Ax_netlist.Multipliers
module Lut = Ax_arith.Lut
module D = Diagnostic

let signal_loc c idx =
  let label =
    match Circuit.gate_at c idx with
    | Gate.Input l -> l
    | g -> Gate.name g
    | exception Invalid_argument _ -> ""
  in
  D.Netlist_signal { index = idx; label }

let check_circuit c =
  let diags = ref [] in
  let emit ~rule ?location msg = diags := D.make ~rule ?location msg :: !diags in
  let n = Circuit.node_count c in
  if Circuit.output_count c = 0 then
    emit ~rule:"net/no-outputs"
      (Printf.sprintf "circuit %S registers no primary outputs"
         (Circuit.name c));
  (* fan-in ordering: indices double as evaluation order *)
  Circuit.iter_gates c (fun i g ->
      List.iter
        (fun j ->
          if j < 0 || j >= i then
            emit ~rule:"net/fanin-order" ~location:(signal_loc c i)
              (Printf.sprintf "%s at node %d reads node %d" (Gate.name g) i j))
        (Gate.fanin g));
  (* forward use: an input no gate nor output reads drives nothing *)
  let used = Array.make n false in
  Circuit.iter_gates c (fun _ g ->
      List.iter
        (fun j -> if j >= 0 && j < n then used.(j) <- true)
        (Gate.fanin g));
  List.iter
    (fun (_, s) ->
      let i = Circuit.index s in
      if i >= 0 && i < n then used.(i) <- true)
    (Circuit.outputs c);
  List.iter
    (fun (label, s) ->
      let i = Circuit.index s in
      if i >= 0 && i < n && not used.(i) then
        emit ~rule:"net/unused-input"
          ~location:(D.Netlist_signal { index = i; label })
          "primary input drives no gate and no output")
    (Circuit.inputs c);
  (* backward reach: combinational gates no output depends on *)
  let reached = Array.make n false in
  let rec back i =
    if i >= 0 && i < n && not reached.(i) then begin
      reached.(i) <- true;
      List.iter back (Gate.fanin (Circuit.gate_at c i))
    end
  in
  List.iter (fun (_, s) -> back (Circuit.index s)) (Circuit.outputs c);
  Circuit.iter_gates c (fun i g ->
      if Gate.is_combinational g && not reached.(i) then
        emit ~rule:"net/dead-gate" ~location:(signal_loc c i)
          (Printf.sprintf "%s reaches no primary output" (Gate.name g)));
  List.rev !diags

(* --- LUT certification --- *)

(* Compile one bit-column of the truth table into a BDD, bottom-up.
   Variable [v] is the circuit's v-th primary input (Bdd.of_circuit
   orders variables by input creation index), which for the generators
   is a_v for v < 8 and b_(v-8) otherwise; an assignment therefore
   denotes the operand pair (ca, cb) with ca in the low 8 index bits:
   leaf index = (cb << 8) | ca, while the LUT stitches (ca << 8) | cb. *)
let table_bit_bdd m bit_of_leaf =
  let ite v t e =
    Bdd.or_ m (Bdd.and_ m v t) (Bdd.and_ m (Bdd.not_ m v) e)
  in
  let rec build lo p =
    if p < 0 then if bit_of_leaf lo then Bdd.one else Bdd.zero
    else ite (Bdd.var m p) (build (lo + (1 lsl p)) (p - 1)) (build lo (p - 1))
  in
  build 0 15

let interface_findings (m : Multipliers.t) =
  let c = m.Multipliers.circuit in
  let problems = ref [] in
  let bad fmt = Printf.ksprintf (fun s -> problems := s :: !problems) fmt in
  if Circuit.input_count c <> m.Multipliers.width_a + m.Multipliers.width_b
  then
    bad "%d primary inputs for declared widths %d+%d" (Circuit.input_count c)
      m.Multipliers.width_a m.Multipliers.width_b;
  if Circuit.output_count c <> m.Multipliers.product_bits then
    bad "%d primary outputs for a declared %d-bit product"
      (Circuit.output_count c) m.Multipliers.product_bits;
  List.rev_map
    (fun msg ->
      D.make ~rule:"net/width-mismatch"
        ~location:(D.Artefact (Circuit.name c))
        msg)
    !problems

let certify_lut ~lut (m : Multipliers.t) =
  let c = m.Multipliers.circuit in
  if
    m.Multipliers.width_a <> 8 || m.Multipliers.width_b <> 8
    || m.Multipliers.product_bits <> 16
    || Circuit.input_count c <> 16
    || Circuit.output_count c <> 16
  then
    [
      D.make ~rule:"net/width-mismatch"
        ~location:(D.Artefact (Circuit.name c))
        (Printf.sprintf
           "not an 8x8 -> 16-bit multiplier (%dx%d -> %d); cannot certify \
            against a %d-entry LUT"
           m.Multipliers.width_a m.Multipliers.width_b
           m.Multipliers.product_bits Lut.entries);
    ]
  else begin
    let mgr = Bdd.manager () in
    let outs = Bdd.of_circuit mgr c in
    let out_nodes =
      List.map (fun (label, s) -> (label, Circuit.index s)) (Circuit.outputs c)
    in
    (* Precompute the raw entries once; 16 column scans share them. *)
    let raw =
      Array.init Lut.entries (fun leaf ->
          Lut.get_raw lut (Lut.raw_index (leaf land 0xff) (leaf lsr 8)))
    in
    let diags = ref [] in
    for bit = 0 to 15 do
      let label = Printf.sprintf "p_%d" bit in
      match List.assoc_opt label outs with
      | None ->
        diags :=
          D.make ~rule:"net/width-mismatch"
            ~location:(D.Artefact (Circuit.name c))
            (Printf.sprintf "no output labelled %s" label)
          :: !diags
      | Some circuit_bdd ->
        let table_bdd =
          table_bit_bdd mgr (fun leaf -> (raw.(leaf) lsr bit) land 1 = 1)
        in
        if circuit_bdd <> table_bdd then begin
          let diff = Bdd.xor_ mgr circuit_bdd table_bdd in
          let mismatches = Bdd.satisfy_count mgr ~vars:16 diff in
          let index =
            match List.assoc_opt label out_nodes with Some i -> i | None -> -1
          in
          diags :=
            D.make ~rule:"net/lut-mismatch"
              ~location:(D.Netlist_signal { index; label })
              (Printf.sprintf
                 "product bit %d differs from the LUT on %.0f of %d operand \
                  pairs"
                 bit mismatches Lut.entries)
            :: !diags
        end
    done;
    List.rev !diags
  end

let check_multiplier ?lut (m : Multipliers.t) =
  let base = check_circuit m.Multipliers.circuit @ interface_findings m in
  match lut with None -> base | Some lut -> base @ certify_lut ~lut m
