lib/data/mnist.mli: Ax_tensor Dataset
