let rewrite ~config_for g =
  let b = Graph.builder () in
  (* old id -> new id *)
  let remap = Array.make (Graph.size g) (-1) in
  Array.iter
    (fun n ->
      let inputs = List.map (fun i -> remap.(i)) n.Graph.inputs in
      let new_id =
        match (n.Graph.op, config_for n) with
        | Graph.Conv2d { filter; bias; spec }, Some config ->
          let data =
            match inputs with
            | [ d ] -> d
            | [] | _ :: _ -> invalid_arg "Transform: conv arity"
          in
          let mn = Graph.add b ~name:(n.Graph.name ^ "/min") Graph.Min_reduce [ data ] in
          let mx = Graph.add b ~name:(n.Graph.name ^ "/max") Graph.Max_reduce [ data ] in
          let fmin, fmax = Filter.min_max filter in
          let fmn =
            Graph.add b ~name:(n.Graph.name ^ "/filter_min")
              (Graph.Const_scalar fmin) []
          in
          let fmx =
            Graph.add b ~name:(n.Graph.name ^ "/filter_max")
              (Graph.Const_scalar fmax) []
          in
          Graph.add b ~name:n.Graph.name
            (Graph.Ax_conv2d { filter; bias; spec; config })
            [ data; mn; mx; fmn; fmx ]
        | Graph.Depthwise_conv2d { filter; bias; spec }, Some config ->
          let data =
            match inputs with
            | [ d ] -> d
            | [] | _ :: _ -> invalid_arg "Transform: conv arity"
          in
          let mn = Graph.add b ~name:(n.Graph.name ^ "/min") Graph.Min_reduce [ data ] in
          let mx = Graph.add b ~name:(n.Graph.name ^ "/max") Graph.Max_reduce [ data ] in
          let fmin, fmax = Filter.min_max filter in
          let fmn =
            Graph.add b ~name:(n.Graph.name ^ "/filter_min")
              (Graph.Const_scalar fmin) []
          in
          let fmx =
            Graph.add b ~name:(n.Graph.name ^ "/filter_max")
              (Graph.Const_scalar fmax) []
          in
          Graph.add b ~name:n.Graph.name
            (Graph.Ax_depthwise_conv2d { filter; bias; spec; config })
            [ data; mn; mx; fmn; fmx ]
        | op, _ -> Graph.add b ~name:n.Graph.name op inputs
      in
      remap.(n.Graph.id) <- new_id)
    (Graph.nodes g);
  Graph.finalize b ~output:remap.(Graph.output g)

let approximate ?(select = fun _ -> true) ~config g =
  let config_for n =
    match n.Graph.op with
    | (Graph.Conv2d _ | Graph.Depthwise_conv2d _) when select n -> Some config
    | Graph.Conv2d _ | Graph.Depthwise_conv2d _ | Graph.Input
    | Graph.Ax_conv2d _ | Graph.Ax_depthwise_conv2d _ | Graph.Min_reduce
    | Graph.Max_reduce | Graph.Const_scalar _ | Graph.Relu | Graph.Max_pool _
    | Graph.Global_avg_pool | Graph.Dense _ | Graph.Batch_norm _ | Graph.Add
    | Graph.Softmax | Graph.Shortcut_pad _ ->
      None
  in
  rewrite ~config_for g

let per_layer ~configs g =
  List.iter
    (fun (name, _) ->
      match Graph.find_by_name g name with
      | Some { Graph.op = Graph.Conv2d _ | Graph.Depthwise_conv2d _; _ } -> ()
      | Some { Graph.op; _ } ->
        Nn_error.(error
          (Not_a_conv
             {
               context = "Transform.per_layer";
               name;
               op = Graph.op_name op;
             }))
      | None ->
        Nn_error.(error
          (No_such_layer { context = "Transform.per_layer"; name })))
    configs;
  let config_for n =
    match n.Graph.op with
    | Graph.Conv2d _ | Graph.Depthwise_conv2d _ ->
      List.assoc_opt n.Graph.name configs
    | Graph.Input | Graph.Ax_conv2d _ | Graph.Ax_depthwise_conv2d _
    | Graph.Min_reduce | Graph.Max_reduce | Graph.Const_scalar _ | Graph.Relu
    | Graph.Max_pool _ | Graph.Global_avg_pool | Graph.Dense _
    | Graph.Batch_norm _ | Graph.Add | Graph.Softmax | Graph.Shortcut_pad _ ->
      None
  in
  rewrite ~config_for g
