(** Netlist analyzer: structural lint over {!Ax_netlist.Circuit.t} plus
    a formal certification that a multiplier netlist computes exactly
    the function tabulated in a 2{^16}-entry LUT.

    The certification is BDD-based — the truth table is compiled
    bottom-up into one BDD per product bit over the circuit's 16 input
    variables and compared, node for node, against
    {!Ax_netlist.Bdd.of_circuit} — so it shares no code with the
    netlist {e simulator} that produced the LUT in the first place
    (independent evidence, in the spirit of the repo's formal tests). *)

val check_circuit : Ax_netlist.Circuit.t -> Diagnostic.t list
(** Structural findings: no registered outputs, fan-in referencing a
    node at or above its own position, primary inputs driving nothing
    ([net/unused-input], Info — legitimate in truncated multipliers)
    and combinational gates that reach no output ([net/dead-gate],
    Info). *)

val certify_lut :
  lut:Ax_arith.Lut.t -> Ax_netlist.Multipliers.t -> Diagnostic.t list
(** [certify_lut ~lut m] proves or refutes that [m]'s raw product bus
    equals the raw 16-bit entries of [lut] on every operand pair.  One
    [net/lut-mismatch] finding per differing product bit, with the
    exact count of disagreeing operand pairs.  Emits
    [net/width-mismatch] (and skips the proof) when [m] is not an
    8x8 -> 16-bit multiplier. *)

val check_multiplier :
  ?lut:Ax_arith.Lut.t -> Ax_netlist.Multipliers.t -> Diagnostic.t list
(** Circuit structure plus multiplier-interface width checks; when
    [lut] is given, also {!certify_lut}. *)
