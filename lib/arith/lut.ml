type t = {
  signedness : Signedness.t;
  table : (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t;
}

let entries = 65536
let size_bytes = entries * 2
let raw_index ca cb = ((ca land 0xff) lsl 8) lor (cb land 0xff)

let saturate signedness p =
  match signedness with
  | Signedness.Unsigned -> if p < 0 then 0 else if p > 65535 then 65535 else p
  | Signedness.Signed ->
    if p < -32768 then -32768 else if p > 32767 then 32767 else p

let make ~signedness f =
  let table =
    Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout entries
  in
  for ca = 0 to 255 do
    let va = Signedness.value_of_code signedness ca in
    for cb = 0 to 255 do
      let vb = Signedness.value_of_code signedness cb in
      let p = saturate signedness (f va vb) in
      table.{raw_index ca cb} <- p land 0xffff
    done
  done;
  { signedness; table }

let exact signedness =
  match signedness with
  | Signedness.Unsigned -> make ~signedness Exact.mul8u
  | Signedness.Signed -> make ~signedness Exact.mul8s

let signedness t = t.signedness

let decode_product signedness raw =
  match signedness with
  | Signedness.Unsigned -> raw
  | Signedness.Signed -> if raw >= 32768 then raw - 65536 else raw

let lookup_code t ca cb = decode_product t.signedness t.table.{raw_index ca cb}

(* Hot-path accessor pair for the tiled GEMM: the kernel reads operand
   codes back out of quantized byte buffers, so both operands are 8-bit
   by construction and the stitched index is provably in [0, entries) —
   the bounds check is established once per buffer, not per lookup. *)
let unsafe_raw t idx = Bigarray.Array1.unsafe_get t.table idx
let table t = t.table

let decode_correction t =
  match t.signedness with
  | Signedness.Unsigned -> 0
  | Signedness.Signed -> 65536

let lookup_value t a b =
  lookup_code t
    (Signedness.code_of_value t.signedness a)
    (Signedness.code_of_value t.signedness b)

let to_function t a b = lookup_value t a b

let equal a b =
  Signedness.equal a.signedness b.signedness
  &&
  let rec go i = i >= entries || (a.table.{i} = b.table.{i} && go (i + 1)) in
  go 0

let get_raw t i =
  if i < 0 || i >= entries then invalid_arg "Lut.get_raw: index out of range";
  t.table.{i}

let set_raw t i v =
  if i < 0 || i >= entries then invalid_arg "Lut.set_raw: index out of range";
  t.table.{i} <- v land 0xffff

let copy t =
  let table =
    Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout entries
  in
  Bigarray.Array1.blit t.table table;
  { t with table }

let magic = "AXLUT1"
let header_bytes = String.length magic + 1
let serialized_bytes = header_bytes + size_bytes + 4

let to_bytes t =
  let buf = Bytes.create serialized_bytes in
  Bytes.blit_string magic 0 buf 0 (String.length magic);
  Bytes.set buf (String.length magic)
    (match t.signedness with Signedness.Signed -> 's' | Signedness.Unsigned -> 'u');
  let base = header_bytes in
  for i = 0 to entries - 1 do
    let v = t.table.{i} in
    Bytes.set buf (base + (2 * i)) (Char.chr (v land 0xff));
    Bytes.set buf (base + (2 * i) + 1) (Char.chr ((v lsr 8) land 0xff))
  done;
  let crc = Checksum.of_bytes buf ~pos:0 ~len:(header_bytes + size_bytes) in
  Checksum.write_u32_le buf ~pos:(header_bytes + size_bytes) crc;
  buf

let what = "AXLUT1"

let of_bytes_result buf ~pos =
  let available = Bytes.length buf - pos in
  let mlen = String.length magic in
  if pos < 0 || available < mlen then
    Error
      (Load_error.Truncated { what; needed = serialized_bytes; available = max available 0 })
  else if Bytes.sub_string buf pos mlen <> magic then
    Error
      (Load_error.Bad_magic
         { what; expected = magic; actual = Bytes.sub_string buf pos mlen })
  else if available < serialized_bytes then
    Error (Load_error.Truncated { what; needed = serialized_bytes; available })
  else
    match Bytes.get buf (pos + mlen) with
    | exception Invalid_argument _ ->
      Error (Load_error.Truncated { what; needed = serialized_bytes; available })
    | ('s' | 'u') as tag ->
      let stored = Checksum.read_u32_le buf ~pos:(pos + header_bytes + size_bytes) in
      let actual = Checksum.of_bytes buf ~pos ~len:(header_bytes + size_bytes) in
      if stored <> actual then
        Error (Load_error.Bad_checksum { what; expected = stored; actual })
      else begin
        let signedness =
          if tag = 's' then Signedness.Signed else Signedness.Unsigned
        in
        let base = pos + header_bytes in
        let table =
          Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout
            entries
        in
        for i = 0 to entries - 1 do
          table.{i} <-
            Char.code (Bytes.get buf (base + (2 * i)))
            lor (Char.code (Bytes.get buf (base + (2 * i) + 1)) lsl 8)
        done;
        Ok ({ signedness; table }, pos + serialized_bytes)
      end
    | other ->
      Error
        (Load_error.Bad_tag { what; field = "signedness"; tag = Char.code other })

let of_bytes buf ~pos =
  match of_bytes_result buf ~pos with
  | Ok r -> r
  | Error e -> raise (Load_error.Error e)

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes t))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = Bytes.create len in
      really_input ic buf 0 len;
      buf)

let load_result path =
  match of_bytes_result (read_file path) ~pos:0 with
  | Ok (t, _) -> Ok t
  | Error _ as e -> e

let load path =
  match load_result path with
  | Ok t -> t
  | Error e -> raise (Load_error.Error e)
