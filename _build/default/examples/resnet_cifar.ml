(* The paper's workload in miniature: CIFAR-style ResNets whose Conv2D
   layers are swapped for AxConv2D, evaluated for accuracy impact and
   classification fidelity across several approximate multipliers —
   the "quantify the error introduced by approximate circuits" use-case
   of Sec. I.

   Run with: dune exec examples/resnet_cifar.exe *)

module Cifar = Ax_data.Cifar
module Resnet = Ax_models.Resnet
module Emulator = Tfapprox.Emulator

let () =
  let depth = 8 and images = 60 in
  Format.printf
    "ResNet-%d (L=%d convolution layers, %.1fM MACs/image) on %d synthetic CIFAR images@.@."
    depth
    (Resnet.conv_layer_count depth)
    (float_of_int (Resnet.macs_per_image ~depth) /. 1e6)
    images;
  let graph = Resnet.build ~depth () in
  let dataset = Cifar.generate ~n:images () in
  let reference =
    Emulator.predictions graph ~backend:Emulator.Cpu_accurate
      dataset.Cifar.images
  in
  let base_accuracy = Emulator.accuracy graph ~backend:Emulator.Cpu_accurate dataset in
  Format.printf "float32 baseline accuracy: %.1f%% (synthetic labels)@.@."
    (100. *. base_accuracy);
  Format.printf "%-18s %10s %10s %10s@." "multiplier" "accuracy" "delta"
    "fidelity";
  List.iter
    (fun multiplier ->
      let approx = Emulator.approximate_model ~multiplier graph in
      let preds =
        Emulator.predictions approx ~backend:Emulator.Cpu_gemm
          dataset.Cifar.images
      in
      let correct = ref 0 in
      Array.iteri
        (fun i p -> if p = dataset.Cifar.labels.(i) then incr correct)
        preds;
      let acc = float_of_int !correct /. float_of_int images in
      Format.printf "%-18s %9.1f%% %+9.1f%% %9.1f%%@." multiplier
        (100. *. acc)
        (100. *. (acc -. base_accuracy))
        (100. *. Emulator.agreement reference preds))
    [
      "mul8s_exact"; "mul8s_trunc6"; "mul8s_drum6"; "mul8s_drum4";
      "mul8s_mitchell";
    ];
  Format.printf
    "@.fidelity = agreement with the float model's predictions; the exact@.";
  Format.printf
    "LUT isolates pure quantization effects, the others add circuit error.@."
