examples/resnet_cifar.ml: Array Ax_data Ax_models Format List Tfapprox
