lib/netlist/bdd.mli: Circuit
