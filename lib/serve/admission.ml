module Metrics = Ax_obs.Metrics

type outcome =
  | Done of int array
  | Expired
  | Failed of string
  | Cancelled

type job = {
  model : string;
  input : Ax_tensor.Tensor.t;
  images : int;
  enqueued : float;
  deadline : float option;
  deliver : outcome -> unit;
}

type rejection = Queue_full of { retry_after_ms : int } | Closed

type stats = {
  submitted : int;
  rejected : int;
  expired : int;
  batches : int;
  batched_jobs : int;
  max_depth : int;
}

type t = {
  capacity : int;
  max_batch : int;
  retry_after_ms : int;
  clock : unit -> float;
  metrics : Metrics.t option;
  lock : Ax_conc.Mutex.t;
  nonempty : Ax_conc.Condition.t;
  depth_cell : Ax_conc.Race.cell;
      (** race-detector annotation on the queue depth: every queue
          mutation writes it, every inspection reads it — all under
          [lock], which is what the detector verifies *)
  (* every field below is guarded by [lock] *)
  queue : job Queue.t;
  mutable closed : bool;
  mutable submitted : int;
  mutable rejected : int;
  mutable expired : int;
  mutable batches : int;
  mutable batched_jobs : int;
  mutable max_depth : int;
}

let create ?metrics ?(now = Unix.gettimeofday) ?(retry_after_ms = 50)
    ~capacity ~max_batch () =
  if capacity < 1 then invalid_arg "Admission.create: capacity must be >= 1";
  if max_batch < 1 then invalid_arg "Admission.create: max_batch must be >= 1";
  if retry_after_ms < 1 then
    invalid_arg "Admission.create: retry_after_ms must be >= 1";
  (match metrics with
  | Some m -> Metrics.set_gauge m "serve_queue_capacity" (float_of_int capacity)
  | None -> ());
  {
    capacity;
    max_batch;
    retry_after_ms;
    clock = now;
    metrics;
    lock = Ax_conc.Mutex.create ~order:50 ~name:"serve.admission" ();
    nonempty = Ax_conc.Condition.create ~name:"serve.admission.nonempty" ();
    depth_cell = Ax_conc.Race.cell "serve.admission.depth";
    queue = Queue.create ();
    closed = false;
    submitted = 0;
    rejected = 0;
    expired = 0;
    batches = 0;
    batched_jobs = 0;
    max_depth = 0;
  }

let now t = t.clock ()

let locked t f = Ax_conc.Mutex.with_lock t.lock f

let set_depth_gauge t depth =
  match t.metrics with
  | Some m -> Metrics.set_gauge m "serve_queue_depth" (float_of_int depth)
  | None -> ()

let count t name n =
  match t.metrics with Some m -> Metrics.add m name n | None -> ()

let submit t job =
  let verdict =
    locked t @@ fun () ->
    if t.closed then Error Closed
    else begin
      Ax_conc.Race.read t.depth_cell;
      let depth = Queue.length t.queue in
      if depth >= t.capacity then begin
        t.rejected <- t.rejected + 1;
        Error (Queue_full { retry_after_ms = t.retry_after_ms })
      end
      else begin
        Ax_conc.Race.write t.depth_cell;
        Queue.add job t.queue;
        t.submitted <- t.submitted + 1;
        if depth + 1 > t.max_depth then t.max_depth <- depth + 1;
        Ax_conc.Condition.signal t.nonempty;
        Ok (depth + 1)
      end
    end
  in
  match verdict with
  | Ok depth ->
    set_depth_gauge t depth;
    count t "serve_accepted" 1;
    Ok ()
  | Error Closed -> Error Closed
  | Error (Queue_full _ as r) ->
    count t "serve_rejected" 1;
    Error r

let depth t =
  locked t @@ fun () ->
  Ax_conc.Race.read t.depth_cell;
  Queue.length t.queue

let overdue ~at job =
  match job.deadline with None -> false | Some d -> at > d

(* Sweep + pop under the lock; deliver outside it. *)
let form_batch t =
  let at = t.clock () in
  let swept, batch =
    locked t @@ fun () ->
    Ax_conc.Race.write t.depth_cell;
    let keep = Queue.create () in
    let swept = ref [] in
    Queue.iter
      (fun job ->
        if overdue ~at job then swept := job :: !swept else Queue.add job keep)
      t.queue;
    Queue.clear t.queue;
    Queue.transfer keep t.queue;
    t.expired <- t.expired + List.length !swept;
    let batch =
      match Queue.peek_opt t.queue with
      | None -> None
      | Some head ->
        let model = head.model in
        let taken = ref [] in
        let keep = Queue.create () in
        Queue.iter
          (fun job ->
            if job.model = model && List.length !taken < t.max_batch then
              taken := job :: !taken
            else Queue.add job keep)
          t.queue;
        Queue.clear t.queue;
        Queue.transfer keep t.queue;
        let jobs = List.rev !taken in
        t.batches <- t.batches + 1;
        t.batched_jobs <- t.batched_jobs + List.length jobs;
        Some (model, jobs)
    in
    (List.rev !swept, batch)
  in
  set_depth_gauge t (depth t);
  if swept <> [] then count t "serve_expired" (List.length swept);
  List.iter (fun job -> job.deliver Expired) swept;
  match batch with
  | None -> `Empty
  | Some (model, jobs) ->
    (match t.metrics with
    | Some m ->
      Metrics.observe_named m "serve_batch_size"
        (float_of_int (List.length jobs))
    | None -> ());
    `Batch (model, jobs)

let wait_ready t =
  locked t @@ fun () ->
  let rec go () =
    Ax_conc.Race.read t.depth_cell;
    if not (Queue.is_empty t.queue) then `Ready
    else if t.closed then `Closed
    else begin
      Ax_conc.Condition.wait t.nonempty t.lock;
      go ()
    end
  in
  go ()

let close t =
  locked t (fun () ->
      t.closed <- true;
      Ax_conc.Condition.broadcast t.nonempty)

let drain t =
  let jobs =
    locked t @@ fun () ->
    Ax_conc.Race.write t.depth_cell;
    let jobs = List.of_seq (Queue.to_seq t.queue) in
    Queue.clear t.queue;
    jobs
  in
  set_depth_gauge t 0;
  List.iter (fun job -> job.deliver Cancelled) jobs

let stats t =
  locked t @@ fun () ->
  {
    submitted = t.submitted;
    rejected = t.rejected;
    expired = t.expired;
    batches = t.batches;
    batched_jobs = t.batched_jobs;
    max_depth = t.max_depth;
  }
