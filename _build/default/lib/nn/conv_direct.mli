(** The direct (nested-loop) approximate convolution — the CPU baseline
    of ref. [12] (ALWANN) that the paper compares against in Table I's
    "Approximate AxConv2D / CPU" column.

    Functionally identical to {!Axconv.conv} (same quantization, same
    LUT, same Eq. 4 corrections — asserted by tests); structurally the
    naive loop nest over batch, output pixels and output channels, which
    re-quantizes the input window for every output channel it visits.
    Each input element is therefore quantized [kh*kw*out_c] times
    instead of once, which is exactly why the paper's Fig. 2 shows
    quantization dominating (~64%) the CPU implementation's runtime. *)

val conv :
  ?profile:Profile.t ->
  config:Axconv.config ->
  input:Ax_tensor.Tensor.t ->
  input_range:Ax_quant.Range.t ->
  filter:Filter.t ->
  filter_range:Ax_quant.Range.t ->
  ?bias:float array ->
  spec:Conv_spec.t ->
  unit ->
  Ax_tensor.Tensor.t
