lib/nn/conv_direct.ml: Accumulator Array Ax_arith Ax_quant Ax_tensor Axconv Bigarray Bytes Char Conv_spec Filter Im2col Profile
