type t = { n : int; h : int; w : int; c : int }

(* The batch extent may be zero — an empty batch is a legal input (the
   emulator answers it with an empty output of the right shape) — but
   the spatial/channel extents must stay positive: a 0-height image has
   no geometry for a convolution plan to reason about. *)
let make ~n ~h ~w ~c =
  if n < 0 || h <= 0 || w <= 0 || c <= 0 then
    invalid_arg
      (Printf.sprintf "Shape.make: bad extent %dx%dx%dx%d" n h w c);
  { n; h; w; c }

let num_elements s = s.n * s.h * s.w * s.c

let equal a b = a.n = b.n && a.h = b.h && a.w = b.w && a.c = b.c

let to_string s = Printf.sprintf "%dx%dx%dx%d" s.n s.h s.w s.c
let pp ppf s = Format.pp_print_string ppf (to_string s)

let unsafe_offset s ~n ~h ~w ~c = ((((n * s.h) + h) * s.w + w) * s.c) + c

let offset s ~n ~h ~w ~c =
  if n < 0 || n >= s.n || h < 0 || h >= s.h || w < 0 || w >= s.w || c < 0
     || c >= s.c
  then
    invalid_arg
      (Printf.sprintf "Shape.offset: (%d,%d,%d,%d) out of %s" n h w c
         (to_string s));
  unsafe_offset s ~n ~h ~w ~c

let conv_output_dims s ~kh ~kw ~stride ~dilation ~padding =
  if stride <= 0 then invalid_arg "Shape.conv_output_dims: stride";
  if dilation <= 0 then invalid_arg "Shape.conv_output_dims: dilation";
  let eff_kh = ((kh - 1) * dilation) + 1 in
  let eff_kw = ((kw - 1) * dilation) + 1 in
  match padding with
  | `Valid ->
    if s.h < eff_kh || s.w < eff_kw then
      invalid_arg "Shape.conv_output_dims: kernel larger than input";
    let out_h = ((s.h - eff_kh) / stride) + 1 in
    let out_w = ((s.w - eff_kw) / stride) + 1 in
    (out_h, out_w, 0, 0)
  | `Same ->
    let out_h = (s.h + stride - 1) / stride in
    let out_w = (s.w + stride - 1) / stride in
    let pad_h = max 0 (((out_h - 1) * stride) + eff_kh - s.h) in
    let pad_w = max 0 (((out_w - 1) * stride) + eff_kw - s.w) in
    (out_h, out_w, pad_h / 2, pad_w / 2)
