examples/quickstart.mli:
