(** Row-major float matrices and a blocked GEMM — the substrate of the
    GEMM-based convolution (Sec. III: "we selected the General
    Matrix-matrix multiplication (GEMM) approach"). *)

type t = { rows : int; cols : int; data : float array }

val create : rows:int -> cols:int -> t
val get : t -> int -> int -> float
val set : t -> int -> int -> float -> unit
val of_arrays : float array array -> t
val to_arrays : t -> float array array

val matmul : t -> t -> t
(** [matmul a b] with [a.cols = b.rows]; cache-blocked accumulation in
    64-bit floats.  Raises [Invalid_argument] on dimension mismatch. *)

val transpose : t -> t
val approx_equal : ?tolerance:float -> t -> t -> bool
