lib/train/optimizer.mli: Ax_nn Backprop
