lib/tensor/shape.ml: Format Printf
