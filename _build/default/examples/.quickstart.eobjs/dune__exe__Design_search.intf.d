examples/design_search.mli:
