test/test_netlist.ml: Alcotest Array Ax_netlist Ax_nn Int64 List Printf QCheck QCheck_alcotest String
