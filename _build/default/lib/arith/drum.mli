(** DRUM — Dynamic Range Unbiased Multiplier (Hashemi et al., ICCAD'15).

    Each operand is reduced to its [k] most-significant bits starting at
    the leading one; the discarded tail is compensated by forcing the
    lowest retained bit to 1 (the unbiasing trick), and the short
    operands are multiplied exactly and shifted back.  Error is
    relative-magnitude-bounded, which makes DRUM popular for DNN
    workloads. *)

val multiply : k:int -> int -> int -> int
(** [multiply ~k a b] for unsigned operands.  [k] must be at least 2.
    Operands below [2^k] are used exactly. *)

val approximate_operand : k:int -> int -> int
(** The operand reduction step alone (exposed for tests): leading-one
    window of width [k] with the unbiasing LSB set. *)
