(* Ax_resilience: fault models, campaign determinism, artefact repair.

   The load-bearing properties from the resilience design:
   - fault sites are pure functions of (seed, site) — same seed, same
     upsets, forever;
   - a zero-fault campaign trial reproduces the baseline bit-for-bit;
   - a campaign report is bit-identical for every worker-domain count;
   - a checksum-corrupted LUT artefact is repaired from its registry
     generator (or rejected with a typed error when it can't be). *)

module Fault = Ax_resilience.Fault
module Campaign = Ax_resilience.Campaign
module Artefact = Ax_resilience.Artefact
module Lut = Ax_arith.Lut
module Load_error = Ax_arith.Load_error
module Registry = Ax_arith.Registry
module Graph = Ax_nn.Graph
module Tensor = Ax_tensor.Tensor
module Shape = Ax_tensor.Shape
module Emulator = Tfapprox.Emulator

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let trunc8 = lazy (Registry.lut (Registry.find_exn "mul8u_trunc8"))

(* --- bit surgery ------------------------------------------------------ *)

let test_apply_int () =
  check_int "flip sets a clear bit" 0b1010 (Fault.apply_int Fault.Bit_flip ~bit:1 0b1000);
  check_int "flip clears a set bit" 0b1000 (Fault.apply_int Fault.Bit_flip ~bit:1 0b1010);
  check_int "stuck-at-1 forces" 0b0001 (Fault.apply_int (Fault.Stuck_at true) ~bit:0 0b0000);
  check_int "stuck-at-0 forces" 0b0000 (Fault.apply_int (Fault.Stuck_at false) ~bit:0 0b0001);
  check_int "stuck-at idempotent" 0b0001
    (Fault.apply_int (Fault.Stuck_at true) ~bit:0
       (Fault.apply_int (Fault.Stuck_at true) ~bit:0 0b0001))

let test_apply_float32 () =
  (* Flipping the same mantissa bit twice restores the value. *)
  let x = 1.337 in
  let once = Fault.apply_float32 Fault.Bit_flip ~bit:7 x in
  check_bool "flip changes the value" true (once <> x);
  let twice = Fault.apply_float32 Fault.Bit_flip ~bit:7 once in
  check_bool "double flip restores" true
    (Int32.bits_of_float twice = Int32.bits_of_float x);
  (* Sign-bit flip negates. *)
  check_bool "sign flip negates" true
    (Fault.apply_float32 Fault.Bit_flip ~bit:31 2.0 = -2.0);
  (* Exponent-bit upsets may escape to infinity — that is hardware
     truth, not a bug; the result must still be a float. *)
  let blown = Fault.apply_float32 Fault.Bit_flip ~bit:30 1.0 in
  check_bool "exponent flip is a float" true (Float.is_nan blown || not (Float.is_nan blown));
  (match Fault.apply_float32 Fault.Bit_flip ~bit:32 1.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bit 32 accepted")

(* --- seeded site generation ------------------------------------------- *)

let test_sites_deterministic () =
  let a = Fault.random_lut_sites ~seed:7 ~count:64 in
  let b = Fault.random_lut_sites ~seed:7 ~count:64 in
  check_bool "same seed, same LUT sites" true (a = b);
  let c = Fault.random_lut_sites ~seed:8 ~count:64 in
  check_bool "different seed, different sites" true (a <> c);
  List.iter
    (function
      | Fault.Lut_entry { index; bit } ->
        check_bool "index in range" true (index >= 0 && index < Lut.entries);
        check_bool "bit in range" true (bit >= 0 && bit < 16)
      | _ -> Alcotest.fail "LUT generator produced a non-LUT site")
    a;
  let g = Ax_models.Lenet.build () in
  let w = Fault.random_weight_sites ~seed:3 ~count:32 ~bit:23 g in
  check_bool "weight sites deterministic" true
    (w = Fault.random_weight_sites ~seed:3 ~count:32 ~bit:23 g);
  let act = Fault.random_activation_sites ~seed:3 ~count:32 ~bit:23 g in
  check_bool "activation sites deterministic" true
    (act = Fault.random_activation_sites ~seed:3 ~count:32 ~bit:23 g)

let test_random_flip_rate () =
  let lut = Lazy.force trunc8 in
  let total_bits = Lut.entries * 16 in
  List.iter
    (fun rate ->
      let flipped = Fault.random_flip ~seed:11 ~rate lut in
      let empirical = float_of_int (Fault.flip_count lut flipped) /. float_of_int total_bits in
      (* ~1M Bernoulli draws: 3-sigma band around the rate. *)
      let sigma = sqrt (rate *. (1. -. rate) /. float_of_int total_bits) in
      check_bool
        (Printf.sprintf "empirical %.6f within tolerance of %.6f" empirical rate)
        true
        (Float.abs (empirical -. rate) <= (3. *. sigma) +. 1e-9))
    [ 0.0; 0.001; 0.01; 0.1 ];
  check_bool "rate 0 flips nothing" true
    (Fault.flip_count lut (Fault.random_flip ~seed:11 ~rate:0.0 lut) = 0);
  check_bool "flip is seeded" true
    (Lut.equal (Fault.random_flip ~seed:5 ~rate:0.01 lut)
       (Fault.random_flip ~seed:5 ~rate:0.01 lut))

(* --- fault application ------------------------------------------------ *)

let test_corrupt_lut () =
  let lut = Lazy.force trunc8 in
  let fault = { Fault.site = Fault.Lut_entry { index = 1234; bit = 3 }; kind = Fault.Bit_flip } in
  let bad = Fault.corrupt_lut lut [ fault ] in
  check_bool "original untouched" true (Lut.equal lut (Lazy.force trunc8));
  check_int "exactly one bit differs" 1 (Fault.flip_count lut bad);
  check_int "the addressed bit differs" (Lut.get_raw lut 1234 lxor (1 lsl 3))
    (Lut.get_raw bad 1234);
  (* flipping the same site again restores the table *)
  check_bool "self-inverse" true (Lut.equal lut (Fault.corrupt_lut bad [ fault ]));
  (match
     Fault.corrupt_lut lut
       [ { Fault.site = Fault.Lut_entry { index = 0; bit = 16 }; kind = Fault.Bit_flip } ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "bit 16 accepted for a 16-bit entry")

let test_corrupt_graph () =
  let g = Ax_models.Lenet.build () in
  let node = "c1" in
  let fault =
    { Fault.site = Fault.Weight { node; index = 0; bit = 22 }; kind = Fault.Bit_flip }
  in
  let g' = Fault.corrupt_graph g [ fault ] in
  let input = (Ax_data.Mnist.generate ~seed:1 ~n:2 ()).Ax_data.Mnist.images in
  let before = Ax_nn.Exec.run g ~input in
  let after = Ax_nn.Exec.run g' ~input in
  check_bool "weight fault perturbs the output" true
    (Tensor.max_abs_diff before after > 0.);
  check_bool "source graph unchanged" true
    (Tensor.max_abs_diff before (Ax_nn.Exec.run g ~input) = 0.);
  (match
     Fault.corrupt_graph g
       [ { fault with Fault.site = Fault.Weight { node = "no_such_node"; index = 0; bit = 0 } } ]
   with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "unknown node accepted")

let test_tap () =
  let g = Ax_models.Lenet.build () in
  let node = (Graph.nodes g).(Graph.output g).Graph.name in
  let t = Tensor.of_array (Shape.make ~n:2 ~h:1 ~w:1 ~c:4) (Array.init 8 float_of_int) in
  let some_node = Option.get (Graph.find_by_name g node) in
  (* No matching fault: the tensor passes through physically unchanged. *)
  let id_tap = Fault.tap [] in
  check_bool "empty tap is physical identity" true (id_tap some_node t == t);
  let fault =
    { Fault.site = Fault.Activation { node; index = 2; bit = 31 }; kind = Fault.Bit_flip }
  in
  let hit = Fault.tap [ fault ] some_node t in
  check_bool "tap copies before writing" true (hit != t);
  (* per-image offset 2 flipped in sign for BOTH images of the batch *)
  check_bool "image 0 cell negated" true (Tensor.get_flat hit 2 = -2.);
  check_bool "image 1 cell negated" true (Tensor.get_flat hit 6 = -6.);
  check_int "only two cells touched" 2
    (let d = ref 0 in
     Tensor.iteri_flat (fun i v -> if v <> Tensor.get_flat t i then incr d) hit;
     !d)

(* --- campaign --------------------------------------------------------- *)

let lenet_spec ~images =
  let graph =
    Emulator.approximate_model ~multiplier:"mul8u_trunc8"
      (Ax_models.Lenet.build ())
  in
  { Campaign.graph;
    dataset = Ax_data.Mnist.generate ~seed:4 ~n:images ();
    backend = Emulator.Cpu_gemm }

let mixed_trials spec =
  Campaign.zero_fault_trial
  :: Campaign.lut_bit_trials ~seed:42 ~sites:48 ~bits:[ 8; 14 ] ()
  @ Campaign.weight_trials ~seed:42 ~trials:1 ~sites:6 ~bit:23 spec.Campaign.graph
  @ Campaign.activation_trials ~seed:42 ~trials:1 ~sites:4 ~bit:23 spec.Campaign.graph

let test_zero_fault_reproduces_baseline () =
  let spec = lenet_spec ~images:6 in
  let report = Campaign.run spec ~trials:[ Campaign.zero_fault_trial ] in
  match report.Campaign.rows with
  | [ row ] ->
    check_bool "labelled fault_free" true (row.Campaign.label = "fault_free");
    check_int "no faults" 0 row.Campaign.fault_count;
    check_int "no top-1 flips" 0 row.Campaign.top1_flips;
    check_bool "accuracy == baseline (bitwise)" true
      (row.Campaign.accuracy = report.Campaign.baseline_accuracy);
    check_bool "zero degradation (bitwise)" true (row.Campaign.degradation = 0.)
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

let test_campaign_domain_invariance () =
  let spec = lenet_spec ~images:6 in
  let trials = mixed_trials spec in
  let reference = Campaign.run ~domains:1 spec ~trials in
  List.iter
    (fun domains ->
      let r = Campaign.run ~domains spec ~trials in
      check_bool
        (Printf.sprintf "report for %d domains == 1 domain (bitwise)" domains)
        true
        (r = reference))
    [ 2; 4 ];
  (* and the rendering is therefore stable too *)
  check_bool "csv stable" true
    (String.equal (Campaign.csv reference) (Campaign.csv (Campaign.run ~domains:4 spec ~trials)))

let test_campaign_csv_shape () =
  let spec = lenet_spec ~images:4 in
  let report =
    Campaign.run ~domains:2 spec
      ~trials:[ Campaign.zero_fault_trial ]
  in
  let lines =
    String.split_on_char '\n' (String.trim (Campaign.csv report))
  in
  (match lines with
  | header :: rows ->
    check_bool "header names the columns" true
      (header = "label,faults,accuracy,degradation,top1_flips");
    check_int "baseline + one trial" 2 (List.length rows);
    check_bool "baseline row first" true
      (String.length (List.hd rows) >= 8 && String.sub (List.hd rows) 0 8 = "baseline")
  | [] -> Alcotest.fail "empty csv");
  let empty = { spec with Campaign.dataset = { spec.Campaign.dataset with Ax_data.Cifar.labels = [||] } } in
  (match Campaign.run ~domains:1 empty ~trials:[] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "empty dataset accepted")

(* --- artefact repair -------------------------------------------------- *)

let with_temp_lut f =
  let path = Filename.temp_file "axlut" ".bin" in
  Fun.protect ~finally:(fun () -> if Sys.file_exists path then Sys.remove path) (fun () -> f path)

let corrupt_file path =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let b = Bytes.create len in
  really_input ic b 0 len;
  close_in ic;
  let pos = len / 2 in
  Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
  let oc = open_out_bin path in
  output_bytes oc b;
  close_out oc

let test_artefact_detects_corruption () =
  with_temp_lut (fun path ->
      Lut.save path (Lazy.force trunc8);
      corrupt_file path;
      (match Lut.load_result path with
      | Error (Load_error.Bad_checksum _) -> ()
      | Error e -> Alcotest.failf "expected Bad_checksum, got %s" (Load_error.to_string e)
      | Ok _ -> Alcotest.fail "corrupted artefact loaded");
      (* without a repair hint the typed error propagates *)
      match Artefact.load_lut ~on_warning:ignore path with
      | Error (Load_error.Bad_checksum _) -> ()
      | Error e -> Alcotest.failf "expected Bad_checksum, got %s" (Load_error.to_string e)
      | Ok _ -> Alcotest.fail "corrupted artefact loaded without repair")

let test_artefact_repair () =
  with_temp_lut (fun path ->
      Lut.save path (Lazy.force trunc8);
      corrupt_file path;
      let warnings = ref [] in
      (match
         Artefact.load_lut ~repair_with:"mul8u_trunc8"
           ~on_warning:(fun w -> warnings := w :: !warnings)
           path
       with
      | Ok (lut, Artefact.Repaired (Load_error.Bad_checksum _)) ->
        check_bool "repaired table == generator output" true
          (Lut.equal lut (Lazy.force trunc8));
        check_int "one warning emitted" 1 (List.length !warnings)
      | Ok (_, Artefact.Repaired e) ->
        Alcotest.failf "repair carried wrong error %s" (Load_error.to_string e)
      | Ok (_, Artefact.Intact) -> Alcotest.fail "corruption not detected"
      | Error e -> Alcotest.failf "repair failed: %s" (Load_error.to_string e));
      (* the artefact was rewritten in place: a second load is clean *)
      match Artefact.load_lut ~on_warning:ignore path with
      | Ok (lut, Artefact.Intact) ->
        check_bool "rewritten artefact verifies" true (Lut.equal lut (Lazy.force trunc8))
      | Ok (_, Artefact.Repaired _) -> Alcotest.fail "rewrite did not stick"
      | Error e -> Alcotest.failf "rewritten artefact broken: %s" (Load_error.to_string e))

let test_artefact_unknown_generator () =
  with_temp_lut (fun path ->
      Lut.save path (Lazy.force trunc8);
      corrupt_file path;
      match Artefact.load_lut ~repair_with:"mul99_imaginary" ~on_warning:ignore path with
      | Error (Load_error.Bad_checksum _) -> ()
      | Error e -> Alcotest.failf "expected original error, got %s" (Load_error.to_string e)
      | Ok _ -> Alcotest.fail "unknown generator repaired something")

let () =
  Alcotest.run "ax_resilience"
    [
      ( "fault",
        [
          Alcotest.test_case "apply_int" `Quick test_apply_int;
          Alcotest.test_case "apply_float32" `Quick test_apply_float32;
          Alcotest.test_case "seeded sites deterministic" `Quick test_sites_deterministic;
          Alcotest.test_case "random_flip empirical rate" `Quick test_random_flip_rate;
          Alcotest.test_case "corrupt_lut" `Quick test_corrupt_lut;
          Alcotest.test_case "corrupt_graph" `Quick test_corrupt_graph;
          Alcotest.test_case "activation tap" `Quick test_tap;
        ] );
      ( "campaign",
        [
          Alcotest.test_case "zero-fault row == baseline" `Quick
            test_zero_fault_reproduces_baseline;
          Alcotest.test_case "bit-identical across domains" `Quick
            test_campaign_domain_invariance;
          Alcotest.test_case "csv shape + empty dataset" `Quick
            test_campaign_csv_shape;
        ] );
      ( "artefact",
        [
          Alcotest.test_case "corruption detected" `Quick
            test_artefact_detects_corruption;
          Alcotest.test_case "repair from generator" `Quick test_artefact_repair;
          Alcotest.test_case "unknown generator rejected" `Quick
            test_artefact_unknown_generator;
        ] );
    ]
