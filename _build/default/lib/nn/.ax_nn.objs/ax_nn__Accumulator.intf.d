lib/nn/accumulator.mli: Format
