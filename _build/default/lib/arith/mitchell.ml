let fraction_bits = 16
let fraction_mask = (1 lsl fraction_bits) - 1

let leading_one_position x =
  let rec go pos =
    if pos < 0 then -1 else if (x lsr pos) land 1 = 1 then pos else go (pos - 1)
  in
  go 62

let log2_fixed x =
  if x <= 0 then invalid_arg "Mitchell.log2_fixed: non-positive argument";
  let l = leading_one_position x in
  let mantissa = x - (1 lsl l) in
  (l lsl fraction_bits) + ((mantissa lsl fraction_bits) / (1 lsl l))

let multiply a b =
  if a < 0 || b < 0 then invalid_arg "Mitchell.multiply: negative operand";
  if a = 0 || b = 0 then 0
  else begin
    let s = log2_fixed a + log2_fixed b in
    let integer = s lsr fraction_bits in
    let fraction = s land fraction_mask in
    (* antilog: 2^integer * (1 + fraction) *)
    (((1 lsl fraction_bits) + fraction) lsl integer) lsr fraction_bits
  end
