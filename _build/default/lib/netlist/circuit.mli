(** Combinational netlist builder.

    A circuit is a DAG of {!Gate.t} nodes appended in topological order:
    every gate may only reference already-created nodes, so node indices
    double as a valid evaluation order.  Signals are node indices wrapped
    in the abstract type {!signal}.

    The builder performs structural hashing: creating the same gate over
    the same fan-in twice yields the same signal, and trivial identities
    (constant folding, [x AND x = x], ...) are simplified on the fly.
    This keeps generated arithmetic circuits close to what a synthesis
    tool would emit and makes the area metrics meaningful. *)

type t
type signal

val create : ?name:string -> unit -> t
(** [create ()] is an empty circuit.  [name] labels Verilog output. *)

val name : t -> string

val input : t -> string -> signal
(** [input c label] appends a fresh primary input. *)

val const : t -> bool -> signal
(** Constant driver (hash-consed: at most one node per polarity). *)

val buf_ : t -> signal -> signal
val not_ : t -> signal -> signal
val and_ : t -> signal -> signal -> signal
val or_ : t -> signal -> signal -> signal
val xor_ : t -> signal -> signal -> signal
val nand_ : t -> signal -> signal -> signal
val nor_ : t -> signal -> signal -> signal
val xnor_ : t -> signal -> signal -> signal

val mux : t -> sel:signal -> signal -> signal -> signal
(** [mux c ~sel t e] is [t] when [sel] is high, otherwise [e]; built from
    basic gates. *)

val output : t -> string -> signal -> unit
(** [output c label s] registers [s] as a primary output.  Labels must be
    unique within the circuit. *)

val node_count : t -> int
(** Total nodes, including inputs and constants. *)

val gate_count : t -> int
(** Combinational gates only (buffers excluded). *)

val input_count : t -> int
val output_count : t -> int

val inputs : t -> (string * signal) list
(** Primary inputs in creation order. *)

val outputs : t -> (string * signal) list
(** Primary outputs in registration order. *)

val gate_at : t -> int -> Gate.t
(** [gate_at c i] is node [i]; raises [Invalid_argument] out of range. *)

val index : signal -> int
(** Node index backing a signal (for simulators and printers). *)

val signal_of_index : t -> int -> signal
(** Inverse of {!index}; checks bounds. *)

val iter_gates : t -> (int -> Gate.t -> unit) -> unit
(** Iterate nodes in topological (creation) order. *)

val levelize : t -> int array
(** [levelize c] assigns each node its logic depth: inputs and constants
    are level 0, every gate is 1 + max level of its fan-in. *)
