(** Dataflow-graph IR — the stand-in for the TensorFlow graph the paper
    transforms (Fig. 1).

    Nodes are appended in topological order by a builder; every node
    names its operation and its input nodes.  Tensor-valued and
    scalar-valued nodes share one value space, mirroring how the
    AxConv2D op consumes four extra scalar inputs for the quantization
    ranges. *)

type node_id = int

type op =
  | Input
      (** the graph's single tensor placeholder *)
  | Conv2d of {
      filter : Filter.t;
      bias : float array option;
      spec : Conv_spec.t;
    }
  | Ax_conv2d of {
      filter : Filter.t;
      bias : float array option;
      spec : Conv_spec.t;
      config : Axconv.config;
    }
      (** inputs: data, in_min, in_max, filter_min, filter_max *)
  | Depthwise_conv2d of {
      filter : Filter.t;  (** [out_c] is the channel multiplier *)
      bias : float array option;
      spec : Conv_spec.t;
    }
  | Ax_depthwise_conv2d of {
      filter : Filter.t;
      bias : float array option;
      spec : Conv_spec.t;
      config : Axconv.config;
    }
      (** same five inputs as [Ax_conv2d] *)
  | Min_reduce  (** tensor -> scalar minimum (Fig. 1's Min node) *)
  | Max_reduce  (** tensor -> scalar maximum (Fig. 1's Max node) *)
  | Const_scalar of float
  | Relu
  | Max_pool of { size : int; stride : int }
  | Global_avg_pool
  | Dense of { weights : Ax_tensor.Matrix.t; bias : float array }
  | Batch_norm of { scale : float array; shift : float array }
  | Add  (** residual join; two tensor inputs *)
  | Softmax
  | Shortcut_pad of { stride : int; out_c : int }

type node = { id : node_id; name : string; op : op; inputs : node_id list }

type t

val arity : op -> int
(** Number of inputs the op consumes. *)

val op_name : op -> string

(** {1 Building} *)

type builder

val builder : unit -> builder

val add : builder -> name:string -> op -> node_id list -> node_id
(** Appends a node.  Raises {!Nn_error.Error} ([Unknown_input] /
    [Arity_mismatch]) if an input id is unknown (forward references are
    impossible by construction) or the arity is wrong. *)

val finalize : builder -> output:node_id -> t
(** Raises {!Nn_error.Error} ([Unknown_output]) when [output] names no
    node. *)

val of_nodes_unchecked : output:node_id -> node list -> t
(** Assembles a graph from raw nodes with {e no} validation — ids,
    arities and input references are taken as given.  Exists so the
    static verifier (lib/analysis) and fuzzers can be exercised on
    malformed graphs that the builder rightly refuses to construct.  Production code must use the builder; executing an
    unchecked graph can raise anywhere. *)

(** {1 Inspection} *)

val nodes : t -> node array
(** Topologically ordered. *)

val output : t -> node_id
val node : t -> node_id -> node
val size : t -> int

val find_by_name : t -> string -> node option

val map_ops : (node -> op) -> t -> t
(** [map_ops f t] rebuilds the graph with each node's op replaced by
    [f node], keeping ids, names and wiring — the hook fault-injection
    and LUT-swapping tools use to substitute layer parameters (e.g. a
    corrupted multiplier table) without re-deriving the topology.
    Raises {!Nn_error.Error} ([Op_rewrite]) if [f] changes an op's
    arity. *)

val conv_layers : t -> node list
(** All convolution nodes ([Conv2d], [Ax_conv2d] and their depthwise
    variants), in order — the layers Table I counts as [L]. *)

val total_macs : t -> input:Ax_tensor.Shape.t -> int
(** MAC count of all convolution layers for a given input shape,
    propagating shapes through the graph. *)

val infer_shapes : t -> input:Ax_tensor.Shape.t ->
  (node_id * Ax_tensor.Shape.t option) list
(** Static shape of every tensor-valued node ([None] for scalars). *)

val pp_summary : Format.formatter -> t -> unit
(** One line per node: name, op, inputs — a readable rendering of
    Fig. 1-style graphs. *)

val to_dot : t -> string
(** Graphviz rendering in the style of the paper's Fig. 1: approximate
    layers and their range nodes highlighted, the output node marked.
    Feed to [dot -Tsvg] outside the container. *)
