lib/nn/depthwise.mli: Ax_quant Ax_tensor Axconv Conv_spec Filter Profile
