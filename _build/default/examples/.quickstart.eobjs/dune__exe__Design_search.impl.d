examples/design_search.ml: Array Ax_arith Ax_data Ax_models Ax_netlist Format List Tfapprox
