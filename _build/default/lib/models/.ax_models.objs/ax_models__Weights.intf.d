lib/models/weights.mli: Ax_nn Ax_tensor
