module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Matrix = Ax_tensor.Matrix

let check_bias filter = function
  | None -> ()
  | Some b ->
    if Array.length b <> Filter.out_c filter then
      invalid_arg "Conv_float: bias length differs from filter count"

let direct ~input ~filter ?bias ~spec () =
  check_bias filter bias;
  let out_shape = Conv_spec.output_shape spec (Tensor.shape input) filter in
  let out = Tensor.create out_shape in
  let s = Tensor.shape input in
  let plan =
    Im2col.make s ~kh:(Filter.kh filter) ~kw:(Filter.kw filter) ~spec
  in
  let in_c = Shape.(s.c) and out_c = Filter.out_c filter in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to plan.Im2col.out_h - 1 do
      for ow = 0 to plan.Im2col.out_w - 1 do
        let base_h = (oh * spec.Conv_spec.stride) - plan.Im2col.pad_top in
        let base_w = (ow * spec.Conv_spec.stride) - plan.Im2col.pad_left in
        for k = 0 to out_c - 1 do
          let acc = ref 0. in
          for dh = 0 to Filter.kh filter - 1 do
            let h = base_h + (dh * spec.Conv_spec.dilation) in
            if h >= 0 && h < Shape.(s.h) then
              for dw = 0 to Filter.kw filter - 1 do
                let w = base_w + (dw * spec.Conv_spec.dilation) in
                if w >= 0 && w < Shape.(s.w) then
                  for c = 0 to in_c - 1 do
                    acc :=
                      !acc
                      +. Tensor.get input ~n ~h ~w ~c
                         *. Filter.get filter ~h:dh ~w:dw ~c ~k
                  done
              done
          done;
          let acc =
            match bias with Some b -> !acc +. b.(k) | None -> !acc
          in
          Tensor.set out ~n ~h:oh ~w:ow ~c:k acc
        done
      done
    done
  done;
  out

(* Filters as a (patch_len x out_c) matrix: row index runs over HWC taps
   in the same order [Im2col.iter_patch] emits them. *)
let filter_matrix filter =
  let rows = Filter.taps filter and cols = Filter.out_c filter in
  let m = Matrix.create ~rows ~cols in
  Filter.iter filter (fun ~h ~w ~c ~k v ->
      let row = ((h * Filter.kw filter) + w) * Filter.in_c filter + c in
      Matrix.set m row k v);
  m

let gemm ?profile ?scratch ~input ~filter ?bias ~spec () =
  check_bias filter bias;
  let charge phase f =
    match profile with Some p -> Profile.time p phase f | None -> f ()
  in
  let out_shape = Conv_spec.output_shape spec (Tensor.shape input) filter in
  let plan =
    Im2col.make (Tensor.shape input) ~kh:(Filter.kh filter)
      ~kw:(Filter.kw filter) ~spec
  in
  let out, fm =
    charge Profile.Init (fun () ->
        (Tensor.create out_shape, filter_matrix filter))
  in
  let patches =
    charge Profile.Other (fun () -> Im2col.to_matrix ?scratch plan input)
  in
  let product = charge Profile.Other (fun () -> Matrix.matmul patches fm) in
  charge Profile.Other (fun () ->
      let out_c = Filter.out_c filter in
      let buf = Tensor.buffer out in
      for row = 0 to plan.Im2col.rows - 1 do
        let src = row * out_c and dst = row * out_c in
        for k = 0 to out_c - 1 do
          let v = product.Matrix.data.(src + k) in
          let v = match bias with Some b -> v +. b.(k) | None -> v in
          buf.{dst + k} <- v
        done
      done);
  (match profile with
  | Some p -> Profile.count_macs p (Conv_spec.macs spec (Tensor.shape input) filter)
  | None -> ());
  out
