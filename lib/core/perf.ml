module Json = Ax_obs.Json

type sample = { domains : int; seconds : float; images_per_sec : float }

type compression = {
  multiplier : string;
  comp_mode : string;
  comp_bytes : int;
  comp_ratio : float;
}

type record = {
  label : string;
  bench : string;
  images : int;
  throughput : sample list;
  ns_per_mac : float option;
  lut_compression : compression option;
}

let default_bench = "gemm"

let int_field name j = Option.bind (Json.member name j) Json.get_int
let float_field name j = Option.bind (Json.member name j) Json.get_float
let string_field name j = Option.bind (Json.member name j) Json.get_string

let sample_of_json j =
  {
    domains = Option.value ~default:0 (int_field "domains" j);
    seconds = Option.value ~default:0. (float_field "seconds" j);
    images_per_sec = Option.value ~default:0. (float_field "images_per_sec" j);
  }

let record_of_json ?(label = "") j =
  let label = Option.value ~default:label (string_field "label" j) in
  (* Pre-partitioning history lines carry no [bench] member; they were
     all gemm runs, so that is the backward-compatible default. *)
  let bench = Option.value ~default:default_bench (string_field "bench" j) in
  let images = Option.value ~default:0 (int_field "images" j) in
  let throughput =
    match Option.bind (Json.member "throughput" j) Json.get_list with
    | Some l -> List.map sample_of_json l
    | None -> []
  in
  let ns_per_mac =
    Option.bind (Json.member "micro" j) (float_field "ns_per_mac")
  in
  (* Tolerant like everything else here: older history lines have no
     [lut_compression] member and parse to [None]; a present member
     with missing fields degrades field-wise. *)
  let lut_compression =
    Option.map
      (fun c ->
        {
          multiplier = Option.value ~default:"" (string_field "multiplier" c);
          comp_mode = Option.value ~default:"" (string_field "mode" c);
          comp_bytes = Option.value ~default:0 (int_field "bytes" c);
          comp_ratio = Option.value ~default:0. (float_field "ratio" c);
        })
      (Json.member "lut_compression" j)
  in
  { label; bench; images; throughput; ns_per_mac; lut_compression }

let sample_to_json s =
  Json.Obj
    [
      ("domains", Json.Int s.domains);
      ("seconds", Json.Float s.seconds);
      ("images_per_sec", Json.Float s.images_per_sec);
    ]

let record_to_json r =
  Json.Obj
    ([
       ("label", Json.String r.label);
       ("bench", Json.String r.bench);
       ("images", Json.Int r.images);
       ("throughput", Json.List (List.map sample_to_json r.throughput));
     ]
    @ (match r.ns_per_mac with
      | Some v -> [ ("micro", Json.Obj [ ("ns_per_mac", Json.Float v) ]) ]
      | None -> [])
    @
    match r.lut_compression with
    | Some c ->
      [
        ( "lut_compression",
          Json.Obj
            [
              ("multiplier", Json.String c.multiplier);
              ("mode", Json.String c.comp_mode);
              ("bytes", Json.Int c.comp_bytes);
              ("ratio", Json.Float c.comp_ratio);
            ] );
      ]
    | None -> [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let of_file path = record_of_json ~label:(Filename.basename path)
    (Json.parse (read_file path))

(* History is JSON-lines: one record per line, append-only, so CI runs
   and local runs interleave without merge conflicts inside one file.
   Unparseable lines are skipped — a truncated final line from a killed
   run must not wedge every later gate. *)
let load_history path =
  if not (Sys.file_exists path) then []
  else
    read_file path
    |> String.split_on_char '\n'
    |> List.filter_map (fun line ->
           let line = String.trim line in
           if line = "" then None
           else
             match Json.parse line with
             | j -> Some (record_of_json j)
             | exception _ -> None)

let append_history path r =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (Json.to_string (record_to_json r) ^ "\n"))

let utc_label () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

(* ------------------------------------------------------------------ *)
(* Regression gate                                                     *)
(* ------------------------------------------------------------------ *)

type verdict = {
  metric : string;
  baseline : float;
  current : float;
  ratio : float;  (* current / baseline *)
  regressed : bool;
}

let default_threshold = 0.35
let threshold_env_var = "TFAPPROX_PERF_THRESHOLD"

let threshold_from_env () =
  match Sys.getenv_opt threshold_env_var with
  | Some s -> (
    match float_of_string_opt (String.trim s) with
    | Some t when t > 0. -> t
    | Some _ | None -> default_threshold)
  | None -> default_threshold

let throughput_of r d =
  List.find_map
    (fun s -> if s.domains = d then Some s.images_per_sec else None)
    r.throughput

(* Compare one run against a baseline.  Throughput regresses when it
   falls below [1 - threshold] of the baseline, ns/MAC when it rises
   above [1 + threshold]; zero or missing baselines are skipped (no
   division, no false alarm from an empty fixture). *)
let compare_records ~threshold ~baseline ~current =
  let domain_verdicts =
    List.filter_map
      (fun s ->
        match throughput_of baseline s.domains with
        | Some base when base > 0. ->
          let ratio = s.images_per_sec /. base in
          Some
            {
              metric = Printf.sprintf "images_per_sec_d%d" s.domains;
              baseline = base;
              current = s.images_per_sec;
              ratio;
              regressed = ratio < 1. -. threshold;
            }
        | Some _ | None -> None)
      current.throughput
  in
  let mac_verdict =
    match (baseline.ns_per_mac, current.ns_per_mac) with
    | Some base, Some cur when base > 0. ->
      let ratio = cur /. base in
      [
        {
          metric = "ns_per_mac";
          baseline = base;
          current = cur;
          ratio;
          regressed = ratio > 1. +. threshold;
        };
      ]
    | _ -> []
  in
  domain_verdicts @ mac_verdict

(* The baseline for each metric is the best value it ever reached in
   the history — a gate against the trajectory's peak, not just the
   previous (possibly already-regressed) run. *)
let best_of history =
  match history with
  | [] -> None
  | first :: rest ->
    let best_sample acc s =
      match throughput_of acc s.domains with
      | Some existing when existing >= s.images_per_sec -> acc
      | Some _ | None ->
        {
          acc with
          throughput =
            List.map
              (fun t -> if t.domains = s.domains then s else t)
              acc.throughput
            @ (if List.exists (fun t -> t.domains = s.domains) acc.throughput
               then []
               else [ s ]);
        }
    in
    let merge acc r =
      let acc = List.fold_left best_sample acc r.throughput in
      match (acc.ns_per_mac, r.ns_per_mac) with
      | Some a, Some b when b < a -> { acc with ns_per_mac = Some b }
      | None, (Some _ as b) -> { acc with ns_per_mac = b }
      | _ -> acc
    in
    Some (List.fold_left merge { first with label = "best-of-history" } rest)

(* The gate is per benchmark kind: an explore evaluations/s record in
   the shared history file must never become the gemm throughput
   baseline (and vice versa), so only records of the current run's
   [bench] participate in the best-of baseline. *)
let gate ~threshold ~history ~current =
  let history = List.filter (fun r -> r.bench = current.bench) history in
  match best_of history with
  | None -> []
  | Some baseline -> compare_records ~threshold ~baseline ~current

let regressed verdicts = List.exists (fun v -> v.regressed) verdicts

let verdict_to_json v =
  Json.Obj
    [
      ("metric", Json.String v.metric);
      ("baseline", Json.Float v.baseline);
      ("current", Json.Float v.current);
      ("ratio", Json.Float v.ratio);
      ("regressed", Json.Bool v.regressed);
    ]

let report_to_json ~threshold verdicts =
  Json.Obj
    [
      ("threshold", Json.Float threshold);
      ("verdicts", Json.List (List.map verdict_to_json verdicts));
      ("regressed", Json.Bool (regressed verdicts));
    ]

let pp_verdicts ppf verdicts =
  Format.fprintf ppf "@[<v>%-22s %12s %12s %8s  %s@,"
    "metric" "baseline" "current" "ratio" "status";
  List.iter
    (fun v ->
      Format.fprintf ppf "%-22s %12.4g %12.4g %8.3f  %s@," v.metric v.baseline
        v.current v.ratio
        (if v.regressed then "REGRESSED" else "ok"))
    verdicts;
  Format.fprintf ppf "@]"

let pp_history ppf history =
  Format.fprintf ppf "@[<v>%-22s %8s %14s %14s %12s@,"
    "label" "images" "img/s (d1)" "img/s (d4)" "ns/MAC";
  List.iter
    (fun r ->
      let t d =
        match throughput_of r d with
        | Some v -> Printf.sprintf "%.2f" v
        | None -> "-"
      in
      let mac =
        match r.ns_per_mac with
        | Some v -> Printf.sprintf "%.3f" v
        | None -> "-"
      in
      Format.fprintf ppf "%-22s %8d %14s %14s %12s@,"
        (if r.label = "" then "(unlabelled)" else r.label)
        r.images (t 1) (t 4) mac)
    history;
  Format.fprintf ppf "@]"
