(** Behavioural models of partial-product-pruned array multipliers.

    These match the gate-level generators in {!Ax_netlist.Multipliers}
    bit-for-bit (asserted in the test suite), but evaluate in a handful
    of integer operations instead of a netlist sweep. *)

val pruned : bits:int -> keep:(int -> int -> bool) -> int -> int -> int
(** Sum of the partial products [a_i * b_j * 2^(i+j)] retained by
    [keep i j], taken modulo [2^(2*bits)]. *)

val truncated : bits:int -> cut:int -> int -> int -> int
(** Drop all partial products of weight below [2^cut]. *)

val broken_array : bits:int -> hbl:int -> vbl:int -> int -> int -> int
(** Keep the partial product [(i, j)] iff [i + j >= vbl && j >= hbl]. *)
