lib/netlist/gate.ml: Format Int64
