(** Deterministic pseudo-random number generation (SplitMix64).

    Every stochastic choice in the repository — synthetic weights,
    synthetic datasets, stochastic rounding — flows through this module
    with an explicit seed, so all experiments are bit-reproducible. *)

type t

val create : int -> t
(** [create seed] builds an independent generator. *)

val copy : t -> t
val next_int64 : t -> int64

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound); [bound] must be positive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val gaussian : t -> float
(** Standard normal via Box-Muller. *)

val split : t -> t
(** Derive a statistically independent child generator; the parent
    advances by one draw. *)
