(** Exhaustive error characterisation of an 8-bit multiplier against the
    exact product — the standard figure-of-merit set of the approximate
    computing literature (cf. Mittal's survey, ref. [4] of the paper). *)

type t = {
  mae : float;          (** mean absolute error *)
  wce : int;            (** worst-case (maximum) absolute error *)
  mre : float;          (** mean relative error, |e| / max(1, |exact|) *)
  error_probability : float;  (** fraction of input pairs with e <> 0 *)
  mse : float;          (** mean squared error *)
  bias : float;         (** mean signed error *)
  mae_percent : float;  (** MAE normalised by the largest |product|, in % *)
}

val compute : Signedness.t -> (int -> int -> int) -> t
(** [compute s f] sweeps the full 65 536-pair operand space of [f]
    (value domain per [s]) against the exact product. *)

val compute_lut : Lut.t -> t
(** Characterise a tabulated multiplier. *)

val is_exact : t -> bool
(** True iff the multiplier never errs. *)

val pp : Format.formatter -> t -> unit
