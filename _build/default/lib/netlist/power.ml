type report = {
  area : float;
  delay : float;
  power : float;
  gates : int;
  pdp : float;
}

(* Static CMOS transistor counts. *)
let area_of_gate = function
  | Gate.Input _ | Gate.Const _ | Gate.Buf _ -> 0.
  | Gate.Not _ -> 2.
  | Gate.Nand2 _ | Gate.Nor2 _ -> 4.
  | Gate.And2 _ | Gate.Or2 _ -> 6.
  | Gate.Xor2 _ | Gate.Xnor2 _ -> 8.

(* Normalised logical-effort delays (FO4-ish relative units). *)
let delay_of_gate = function
  | Gate.Input _ | Gate.Const _ | Gate.Buf _ -> 0.
  | Gate.Not _ -> 1.
  | Gate.Nand2 _ | Gate.Nor2 _ -> 1.
  | Gate.And2 _ | Gate.Or2 _ -> 1.5
  | Gate.Xor2 _ | Gate.Xnor2 _ -> 2.

let signal_probabilities c =
  let p = Array.make (Circuit.node_count c) 0.5 in
  Circuit.iter_gates c (fun i g ->
      let prob j = p.(j) in
      p.(i) <-
        (match g with
        | Gate.Input _ -> 0.5
        | Gate.Const b -> if b then 1. else 0.
        | Gate.Buf a -> prob a
        | Gate.Not a -> 1. -. prob a
        | Gate.And2 (a, b) -> prob a *. prob b
        | Gate.Or2 (a, b) -> prob a +. prob b -. (prob a *. prob b)
        | Gate.Nand2 (a, b) -> 1. -. (prob a *. prob b)
        | Gate.Nor2 (a, b) -> 1. -. (prob a +. prob b -. (prob a *. prob b))
        | Gate.Xor2 (a, b) ->
          let pa = prob a and pb = prob b in
          (pa *. (1. -. pb)) +. (pb *. (1. -. pa))
        | Gate.Xnor2 (a, b) ->
          let pa = prob a and pb = prob b in
          1. -. ((pa *. (1. -. pb)) +. (pb *. (1. -. pa)))));
  p

let analyze c =
  let probabilities = signal_probabilities c in
  let arrival = Array.make (Circuit.node_count c) 0. in
  let area = ref 0. and power = ref 0. and gates = ref 0 and delay = ref 0. in
  Circuit.iter_gates c (fun i g ->
      let ready =
        List.fold_left (fun acc j -> Float.max acc arrival.(j)) 0.
          (Gate.fanin g)
      in
      arrival.(i) <- ready +. delay_of_gate g;
      if arrival.(i) > !delay then delay := arrival.(i);
      area := !area +. area_of_gate g;
      (match g with
      | Gate.Input _ | Gate.Const _ | Gate.Buf _ -> ()
      | Gate.Not _ | Gate.And2 _ | Gate.Or2 _ | Gate.Xor2 _ | Gate.Nand2 _
      | Gate.Nor2 _ | Gate.Xnor2 _ ->
        incr gates;
        let p = probabilities.(i) in
        let activity = 2. *. p *. (1. -. p) in
        power := !power +. (activity *. area_of_gate g)));
  let d = !delay in
  { area = !area; delay = d; power = !power; gates = !gates;
    pdp = !power *. d }

let pp_report ppf r =
  Format.fprintf ppf
    "area=%.0f delay=%.1f power=%.2f gates=%d pdp=%.2f" r.area r.delay
    r.power r.gates r.pdp
