(* The worker-pool determinism contract, fuzzed and pinned:

   - [Ax_pool.Pool] primitives: exact range coverage for any pool size
     and [max_domains] (including empty ranges and ranges smaller than
     the pool), ascending reduction order, exceptions re-raised exactly
     once with the pool still usable afterwards;
   - bit-identical results across domain counts for [Axconv.conv] and
     for the per-image sharded [Emulator.run]/[Emulator.accuracy],
     including the merged LUT/MAC counters;
   - per-chunk metric accounting: a 3-chunk batch reports exactly the
     summed counters and chunk-timing observations, whatever the row
     split;
   - dynamic claiming: exactly-once coverage, grain alignment,
     bit-identity with static partitioning, deterministic exceptions and
     claim stats under adversarially skewed chunk costs.

   The CI matrix exports TFAPPROX_DOMAINS=4; the suite folds that value
   into the domain counts under test. *)

module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Rng = Ax_tensor.Rng
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec
module Axconv = Ax_nn.Axconv
module Profile = Ax_nn.Profile
module Range = Ax_quant.Range
module Registry = Ax_arith.Registry
module Metrics = Ax_obs.Metrics
module Pool = Ax_pool.Pool
module Emulator = Tfapprox.Emulator
module Resnet = Ax_models.Resnet
module Cifar = Ax_data.Cifar

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Domain counts exercised everywhere below; TFAPPROX_DOMAINS (the CI
   matrix leg) joins the list so the suite really runs at that width. *)
let domain_counts =
  let base = [ 1; 2; 3; 8 ] in
  let env =
    match Sys.getenv_opt Pool.env_var with
    | Some s when String.trim s <> "" -> [ Pool.recommended () ]
    | Some _ | None -> []
  in
  List.sort_uniq compare (base @ env)

(* --- pool primitives --- *)

let test_create_validation () =
  List.iter
    (fun d ->
      Alcotest.check_raises
        (Printf.sprintf "domains=%d rejected" d)
        (Invalid_argument "Pool.create: domains must be in 1..64")
        (fun () -> ignore (Pool.create ~domains:d ())))
    [ 0; -1; 65 ]

let test_parallel_for_covers_range () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          List.iter
            (fun (lo, hi) ->
              let n = max 0 (hi - lo) in
              let hits = Array.make (max n 1) 0 in
              Pool.parallel_for p ~lo ~hi (fun ~lo:slo ~hi:shi ->
                  for i = slo to shi - 1 do
                    (* Sub-ranges are disjoint, so no two domains touch
                       the same cell. *)
                    hits.(i - lo) <- hits.(i - lo) + 1
                  done);
              Array.iteri
                (fun i c ->
                  if i < n then
                    check_int
                      (Printf.sprintf "domains=%d [%d,%d) index %d" domains
                         lo hi i)
                      1 c)
                hits)
            [ (0, 0); (5, 5); (3, 4); (0, 2); (0, 7); (2, 100); (-3, 3) ]))
    domain_counts

let test_rows_fewer_than_workers () =
  Pool.with_pool ~domains:8 (fun p ->
      let hits = Array.make 3 0 in
      Pool.parallel_for p ~lo:0 ~hi:3 (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check (array int)) "3 rows on 8 workers" [| 1; 1; 1 |] hits)

let test_max_domains_caps_split () =
  Pool.with_pool ~domains:4 (fun p ->
      let splits = Atomic.make 0 in
      Pool.parallel_for p ~max_domains:2 ~lo:0 ~hi:100 (fun ~lo:_ ~hi:_ ->
          Atomic.incr splits);
      check_bool "at most 2 sub-ranges" true (Atomic.get splits <= 2))

let test_map_reduce_ascending_order () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          (* Ordered concatenation is order-sensitive, so this fails if
             sub-results are folded in completion order. *)
          let ranges =
            Pool.map_reduce p ~lo:0 ~hi:17
              ~map:(fun ~lo ~hi -> [ (lo, hi) ])
              ~reduce:(fun a b -> a @ b)
              []
          in
          let flat = List.concat_map (fun (lo, hi) -> List.init (hi - lo) (fun i -> lo + i)) ranges in
          Alcotest.(check (list int))
            (Printf.sprintf "domains=%d ascending" domains)
            (List.init 17 Fun.id) flat;
          let sum =
            Pool.map_reduce p ~lo:1 ~hi:101
              ~map:(fun ~lo ~hi ->
                let s = ref 0 in
                for i = lo to hi - 1 do
                  s := !s + i
                done;
                !s)
              ~reduce:( + ) 0
          in
          check_int (Printf.sprintf "domains=%d sum" domains) 5050 sum))
    domain_counts

let test_map_array_preserves_order () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          let items = Array.init 23 (fun i -> i) in
          let out = Pool.map_array p (fun i -> (i * i) + 1) items in
          Alcotest.(check (array int))
            (Printf.sprintf "domains=%d" domains)
            (Array.map (fun i -> (i * i) + 1) items)
            out;
          Alcotest.(check (array int)) "empty" [||] (Pool.map_array p Fun.id [||])))
    domain_counts

exception Boom of int

let test_worker_exception_reraised_once () =
  Pool.with_pool ~domains:4 (fun p ->
      let raised = ref 0 in
      (try
         Pool.parallel_for p ~lo:0 ~hi:40 (fun ~lo ~hi:_ ->
             if lo >= 10 then raise (Boom lo))
       with Boom _ -> incr raised);
      check_int "re-raised exactly once" 1 !raised;
      (* The lowest failing sub-range wins, so the payload is
         deterministic across pool sizes and timings. *)
      (try
         Pool.parallel_for p ~lo:0 ~hi:40 (fun ~lo ~hi:_ -> raise (Boom lo))
       with Boom lo -> check_int "lowest sub-range wins" 0 lo);
      (* The pool survives the failure. *)
      let sum =
        Pool.map_reduce p ~lo:0 ~hi:10
          ~map:(fun ~lo ~hi ->
            let s = ref 0 in
            for i = lo to hi - 1 do
              s := !s + i
            done;
            !s)
          ~reduce:( + ) 0
      in
      check_int "pool reusable after exception" 45 sum)

let test_nested_calls_run_inline () =
  Pool.with_pool ~domains:4 (fun p ->
      let hits = Array.make 64 0 in
      Pool.parallel_for p ~lo:0 ~hi:8 (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            (* A task calling back into its own pool must not deadlock:
               the nested call runs inline on the current domain. *)
            Pool.parallel_for p ~lo:(i * 8) ~hi:((i + 1) * 8)
              (fun ~lo:jlo ~hi:jhi ->
                for j = jlo to jhi - 1 do
                  hits.(j) <- hits.(j) + 1
                done)
          done);
      Alcotest.(check (array int)) "inner ranges all covered"
        (Array.make 64 1) hits)

let test_shutdown_idempotent_and_inline () =
  let p = Pool.create ~domains:3 () in
  Pool.shutdown p;
  Pool.shutdown p;
  let hits = Array.make 5 0 in
  Pool.parallel_for p ~lo:0 ~hi:5 (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        hits.(i) <- hits.(i) + 1
      done);
  Alcotest.(check (array int)) "runs inline after shutdown"
    (Array.make 5 1) hits

(* Two systhreads fanning out at once must never corrupt each other:
   the coordinator role is acquired under the pool lock, so one wins
   the workers and the loser runs inline.  Pure tasks make a clobbered
   [job] surface as a wrong element, not a heisenbug. *)
let test_concurrent_coordinators () =
  Pool.with_pool ~domains:4 (fun p ->
      let errors = Atomic.make 0 in
      let worker seed () =
        for round = 1 to 50 do
          let n = 32 + seed in
          let out =
            Pool.map_array p
              ~schedule:(Pool.Dynamic { grain = 1 })
              (fun i -> (i * seed) + round)
              (Array.init n Fun.id)
          in
          if Array.length out <> n then Atomic.incr errors
          else
            Array.iteri
              (fun i v -> if v <> (i * seed) + round then Atomic.incr errors)
              out
        done
      in
      let ts = List.init 4 (fun i -> Thread.create (worker (i + 1)) ()) in
      List.iter Thread.join ts;
      Alcotest.(check int) "no corrupted fan-outs" 0 (Atomic.get errors))

let test_stats_and_publish () =
  Pool.with_pool ~domains:2 (fun p ->
      Pool.parallel_for p ~lo:0 ~hi:100 (fun ~lo:_ ~hi:_ -> ());
      Pool.parallel_for p ~lo:0 ~hi:0 (fun ~lo:_ ~hi:_ -> ());
      Pool.parallel_for p ~lo:0 ~hi:1 (fun ~lo:_ ~hi:_ -> ());
      let s = Pool.stats p in
      check_bool "a parallel call" true (s.Pool.parallel_calls >= 1);
      check_bool "an inline call" true (s.Pool.inline_calls >= 1);
      check_bool "tasks counted" true (s.Pool.tasks >= 2);
      check_bool "busy time non-negative" true (s.Pool.busy_seconds >= 0.);
      let m = Metrics.create () in
      Pool.publish p m;
      let snap = Metrics.snapshot m in
      Alcotest.(check (option (float 1e-9)))
        "pool_domains gauge" (Some 2.)
        (Metrics.find_gauge snap "pool_domains");
      check_bool "pool_tasks gauge" true
        (Metrics.find_gauge snap "pool_tasks" <> None))

let spin () =
  let acc = ref 0 in
  for i = 1 to 100_000 do
    acc := !acc + i
  done;
  ignore !acc

let test_per_domain_stats_and_imbalance () =
  Pool.with_pool ~domains:3 (fun p ->
      Pool.parallel_for p ~lo:0 ~hi:300 (fun ~lo ~hi ->
          for _ = lo to hi - 1 do
            spin ()
          done);
      let s = Pool.stats p in
      check_int "one busy cell per slot" 3
        (Array.length s.Pool.per_domain_busy_seconds);
      check_bool "fan-out wall clock measured" true
        (s.Pool.fanout_wall_seconds > 0.);
      check_bool "per-slot busy sums to the total" true
        (abs_float
           (Array.fold_left ( +. ) 0. s.Pool.per_domain_busy_seconds
           -. s.Pool.busy_seconds)
        < 1e-9);
      (* Every slot ran a sub-range of this even split. *)
      Array.iteri
        (fun i b ->
          check_bool (Printf.sprintf "slot %d busy" i) true (b > 0.))
        s.Pool.per_domain_busy_seconds;
      let imb = Pool.imbalance s in
      check_bool
        (Printf.sprintf "imbalance %.3f in [0,1)" imb)
        true
        (imb >= 0. && imb < 1.);
      check_bool "no work means no imbalance" true
        (Pool.imbalance
           { s with Pool.per_domain_busy_seconds = [| 0.; 0.; 0. |] }
        = 0.);
      let m = Metrics.create () in
      Pool.publish p m;
      let snap = Metrics.snapshot m in
      check_bool "imbalance gauge" true
        (Metrics.find_gauge snap "pool_imbalance" <> None);
      check_bool "fan-out wall gauge" true
        (match Metrics.find_gauge snap "pool_fanout_wall_seconds" with
        | Some v -> v > 0.
        | None -> false);
      List.iter
        (fun slot ->
          let busy =
            Metrics.find_gauge snap
              (Printf.sprintf "pool_busy_fraction_d%d" slot)
          and idle =
            Metrics.find_gauge snap
              (Printf.sprintf "pool_idle_fraction_d%d" slot)
          in
          match (busy, idle) with
          | Some b, Some i ->
            check_bool
              (Printf.sprintf "slot %d fractions partition (%.3f+%.3f)" slot
                 b i)
              true
              (b >= 0. && i >= 0. && abs_float (b +. i -. 1.) < 1e-9)
          | _ -> Alcotest.failf "slot %d fraction gauges missing" slot)
        [ 0; 1; 2 ])

let test_pool_tracer_attribution () =
  Pool.with_pool ~domains:2 (fun p ->
      let sink = Ax_obs.Trace.create () in
      Pool.set_tracer p (Some sink);
      Pool.parallel_for p ~lo:0 ~hi:20 (fun ~lo ~hi ->
          for _ = lo to hi - 1 do
            spin ()
          done);
      let tasks =
        List.filter
          (fun (s : Ax_obs.Trace.span) -> s.Ax_obs.Trace.name = "pool.task")
          (Ax_obs.Trace.spans sink)
      in
      check_bool "one pool.task span per slot" true (List.length tasks = 2);
      let tids =
        List.sort_uniq compare
          (List.map (fun (s : Ax_obs.Trace.span) -> s.Ax_obs.Trace.tid) tasks)
      in
      Alcotest.(check (list int)) "coordinator and worker rows" [ 0; 1 ] tids;
      (* The slot attribute matches the tid row. *)
      List.iter
        (fun (s : Ax_obs.Trace.span) ->
          check_bool "slot attr = tid" true
            (List.assoc_opt "slot" s.Ax_obs.Trace.attrs
            = Some (string_of_int s.Ax_obs.Trace.tid)))
        tasks;
      (* Inline calls record nothing: a nested fan-out runs inline. *)
      let before = Ax_obs.Trace.span_count sink in
      Pool.parallel_for p ~lo:0 ~hi:4 (fun ~lo:_ ~hi:_ ->
          Pool.parallel_for p ~lo:0 ~hi:4 (fun ~lo:_ ~hi:_ -> ()));
      let after = Ax_obs.Trace.span_count sink in
      check_bool "nested inline calls add no inner spans" true
        (after - before <= 2);
      (* Detaching stops recording. *)
      Pool.set_tracer p None;
      let detached = Ax_obs.Trace.span_count sink in
      Pool.parallel_for p ~lo:0 ~hi:8 (fun ~lo:_ ~hi:_ -> ());
      check_int "detached sink untouched" detached
        (Ax_obs.Trace.span_count sink))

(* The acceptance bar for the whole instrumentation stack: with tracing
   and profiling on, outputs stay bit-identical across domain counts and
   the merged trace is deterministic in the span names it contains.
   Which slot (tid row) a shard lands on is schedule-dependent under
   dynamic claiming — the one trace property work stealing gives up —
   so tids are only checked to be valid slots. *)
let traced_sharded_run ~domains =
  let graph =
    Emulator.approximate_model ~multiplier:"mul8u_trunc8" ~domains
      (Resnet.build ~depth:8 ())
  in
  let data = (Cifar.generate ~n:3 ()).Cifar.images in
  let tracer = Ax_obs.Trace.create () in
  let profile = Profile.create ~trace:tracer () in
  let out =
    Emulator.run ~profile ~domains ~backend:Emulator.Cpu_gemm graph data
  in
  let spans = Ax_obs.Trace.spans tracer in
  let names =
    List.sort compare
      (List.map (fun (s : Ax_obs.Trace.span) -> s.Ax_obs.Trace.name) spans)
  in
  let tids =
    List.sort_uniq compare
      (List.map (fun (s : Ax_obs.Trace.span) -> s.Ax_obs.Trace.tid) spans)
  in
  (out, names, tids)

let test_traced_sharded_deterministic () =
  let reference, _, _ = traced_sharded_run ~domains:1 in
  List.iter
    (fun domains ->
      let out, names, tids = traced_sharded_run ~domains in
      check_bool
        (Printf.sprintf "domains=%d traced output bit-identical" domains)
        true
        (Ax_tensor.Tensor.max_abs_diff reference out = 0.);
      let _, names', _ = traced_sharded_run ~domains in
      check_bool
        (Printf.sprintf "domains=%d trace names deterministic" domains)
        true (names = names');
      check_bool
        (Printf.sprintf "domains=%d tids are valid slots" domains)
        true
        (tids <> [] && List.for_all (fun t -> t >= 0 && t < domains) tids))
    (List.filter (fun d -> d <= 4) domain_counts)

(* --- dynamic claiming --- *)

(* Exactly-once coverage is schedule-independent: under work stealing
   every index is still visited once, whatever the grain, pool size or
   claim/domain interleaving. *)
let prop_dynamic_coverage =
  QCheck.Test.make ~count:60
    ~name:"dynamic parallel_for covers any range exactly once"
    QCheck.(
      quad (int_range 1 8) (int_range (-20) 20) (int_range 0 50)
        (int_range 0 7))
    (fun (domains, lo, len, grain) ->
      Pool.with_pool ~domains (fun p ->
          let hi = lo + len in
          let hits = Array.init (max len 1) (fun _ -> Atomic.make 0) in
          Pool.parallel_for p ~schedule:(Pool.Dynamic { grain }) ~lo ~hi
            (fun ~lo:slo ~hi:shi ->
              for i = slo to shi - 1 do
                Atomic.incr hits.(i - lo)
              done);
          len = 0
          || Array.for_all
               (fun c -> Atomic.get c = 1)
               (Array.init len (fun i -> hits.(i)))))

(* Claimed sub-ranges never straddle a grain boundary, and every claim
   is a sub-range of [lo, hi): the fixed claim->range map the
   determinism argument rests on. *)
let prop_dynamic_grain_alignment =
  QCheck.Test.make ~count:60 ~name:"dynamic claims are grain-aligned"
    QCheck.(triple (int_range 1 6) (int_range 1 40) (int_range 1 9))
    (fun (domains, len, grain) ->
      Pool.with_pool ~domains (fun p ->
          let ok = Atomic.make true in
          Pool.parallel_for p ~schedule:(Pool.Dynamic { grain }) ~lo:3
            ~hi:(3 + len) (fun ~lo ~hi ->
              if
                (lo - 3) mod grain <> 0
                || hi - lo > grain
                || lo < 3
                || hi > 3 + len
              then Atomic.set ok false);
          Atomic.get ok))

(* Ordered-concatenation map_reduce is the strongest determinism probe:
   any fold in completion order (rather than claim order) scrambles the
   list.  Static and dynamic must agree exactly, for every domain count
   and grain. *)
let test_dynamic_matches_static () =
  let run p schedule =
    Pool.map_reduce p ~schedule ~lo:0 ~hi:37
      ~map:(fun ~lo ~hi -> [ (lo, hi) ])
      ~reduce:(fun a b -> a @ b)
      []
  in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          let static = run p Pool.Static in
          let flat =
            List.concat_map
              (fun (lo, hi) -> List.init (hi - lo) (fun i -> lo + i))
              static
          in
          Alcotest.(check (list int))
            (Printf.sprintf "domains=%d static ascending" domains)
            (List.init 37 Fun.id) flat;
          List.iter
            (fun grain ->
              let dyn = run p (Pool.Dynamic { grain }) in
              let flat' =
                List.concat_map
                  (fun (lo, hi) -> List.init (hi - lo) (fun i -> lo + i))
                  dyn
              in
              Alcotest.(check (list int))
                (Printf.sprintf "domains=%d grain=%d dynamic ascending"
                   domains grain)
                (List.init 37 Fun.id) flat')
            [ 0; 1; 2; 5; 100 ];
          (* Exact integer reduction agrees bit-for-bit. *)
          let sum schedule =
            Pool.map_reduce p ~schedule ~lo:1 ~hi:101
              ~map:(fun ~lo ~hi ->
                let s = ref 0 in
                for i = lo to hi - 1 do
                  s := !s + i
                done;
                !s)
              ~reduce:( + ) 0
          in
          check_int
            (Printf.sprintf "domains=%d dynamic sum" domains)
            (sum Pool.Static)
            (sum (Pool.dynamic ()))))
    [ 1; 2; 4 ]

(* Adversarially skewed chunk costs: index i spins i times, so a static
   split gives the last domain almost all the work while dynamic
   claiming rebalances.  Whatever the timing, results stay identical. *)
let test_dynamic_skewed_costs () =
  let weighted_sum p schedule =
    Pool.map_reduce p ~schedule ~lo:0 ~hi:64
      ~map:(fun ~lo ~hi ->
        let s = ref 0 in
        for i = lo to hi - 1 do
          (* Cost grows quadratically with the index. *)
          for _ = 1 to i * i do
            ignore (Sys.opaque_identity i)
          done;
          s := !s + (i * i)
        done;
        !s)
      ~reduce:( + ) 0
  in
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          let want = weighted_sum p Pool.Static in
          List.iter
            (fun grain ->
              check_int
                (Printf.sprintf "domains=%d grain=%d skewed" domains grain)
                want
                (weighted_sum p (Pool.Dynamic { grain })))
            [ 1; 3; 16 ]))
    [ 1; 2; 4 ]

let test_dynamic_exception_deterministic () =
  Pool.with_pool ~domains:4 (fun p ->
      (* Unconditional failure: claim 0 always executes, so the lowest
         failing claim — and with it the payload — is pinned. *)
      let raised = ref 0 in
      (try
         Pool.parallel_for p ~schedule:(Pool.Dynamic { grain = 3 }) ~lo:0
           ~hi:40 (fun ~lo ~hi:_ -> raise (Boom lo))
       with Boom lo ->
         incr raised;
         check_int "lowest claim wins" 0 lo);
      check_int "re-raised exactly once" 1 !raised;
      (* Conditional failure: claims are handed out in ascending order,
         so the first claim whose range crosses the threshold is always
         dispatched before any later one — Boom 12 is deterministic. *)
      (try
         Pool.parallel_for p ~schedule:(Pool.Dynamic { grain = 3 }) ~lo:0
           ~hi:40 (fun ~lo ~hi:_ -> if lo >= 10 then raise (Boom lo))
       with Boom lo -> check_int "lowest failing claim wins" 12 lo);
      (* The pool survives and later dynamic calls still cover fully. *)
      let hits = Array.init 20 (fun _ -> Atomic.make 0) in
      Pool.parallel_for p ~schedule:(Pool.dynamic ()) ~lo:0 ~hi:20
        (fun ~lo ~hi ->
          for i = lo to hi - 1 do
            Atomic.incr hits.(i)
          done);
      check_bool "pool reusable after dynamic failure" true
        (Array.for_all (fun c -> Atomic.get c = 1) hits))

let test_dynamic_map_array_order () =
  List.iter
    (fun domains ->
      Pool.with_pool ~domains (fun p ->
          let items = Array.init 23 (fun i -> i) in
          let out =
            Pool.map_array p ~schedule:(Pool.Dynamic { grain = 1 })
              (fun i -> (i * i) + 1)
              items
          in
          Alcotest.(check (array int))
            (Printf.sprintf "domains=%d dynamic map_array" domains)
            (Array.map (fun i -> (i * i) + 1) items)
            out))
    [ 1; 2; 4 ]

let test_dynamic_stats () =
  Pool.with_pool ~domains:2 (fun p ->
      let before = Pool.stats p in
      Pool.parallel_for p ~schedule:(Pool.Dynamic { grain = 5 }) ~lo:0
        ~hi:40 (fun ~lo:_ ~hi:_ -> ());
      let s = Pool.stats p in
      check_int "one dynamic call" 1
        (s.Pool.dynamic_calls - before.Pool.dynamic_calls);
      check_int "ceil(40/5) claims" 8 (s.Pool.claims - before.Pool.claims);
      let m = Metrics.create () in
      Pool.publish p m;
      let snap = Metrics.snapshot m in
      check_bool "pool_dynamic_calls gauge" true
        (Metrics.find_gauge snap "pool_dynamic_calls" <> None);
      check_bool "pool_claims gauge" true
        (Metrics.find_gauge snap "pool_claims" <> None))

(* qcheck fuzz: coverage holds for arbitrary range/width combinations. *)
let prop_coverage =
  QCheck.Test.make ~count:60 ~name:"parallel_for covers any range"
    QCheck.(triple (int_range 1 8) (int_range (-20) 20) (int_range 0 50))
    (fun (domains, lo, len) ->
      Pool.with_pool ~domains (fun p ->
          let hi = lo + len in
          let hits = Array.make (max len 1) 0 in
          Pool.parallel_for p ~lo ~hi (fun ~lo:slo ~hi:shi ->
              for i = slo to shi - 1 do
                hits.(i - lo) <- hits.(i - lo) + 1
              done);
          Array.for_all (fun c -> c = 1) (Array.sub hits 0 len)
          || len = 0))

(* --- bit-identical convolution across domain counts --- *)

let conv_with ~domains =
  let input = Tensor.create (Shape.make ~n:5 ~h:9 ~w:9 ~c:3) in
  Tensor.fill_uniform ~lo:(-1.) ~hi:1.5 (Rng.create 97) input;
  let filter = Filter.create ~kh:3 ~kw:3 ~in_c:3 ~out_c:6 in
  Filter.fill_he_normal (Rng.create 98) filter;
  let input_range = Range.of_tensor input in
  let fmin, fmax = Filter.min_max filter in
  let filter_range = Range.make ~min:fmin ~max:fmax in
  let lut = Registry.lut (Registry.find_exn "mul8u_trunc8") in
  let config = Axconv.make_config ~chunk_size:2 ~domains lut in
  Pool.with_pool ~domains (fun pool ->
      Axconv.conv ~pool ~config ~input ~input_range ~filter ~filter_range
        ~spec:Conv_spec.default ())

let test_conv_bit_identical_across_domains () =
  let reference = conv_with ~domains:1 in
  List.iter
    (fun domains ->
      let out = conv_with ~domains in
      check_bool
        (Printf.sprintf "domains=%d bit-identical, diff %g" domains
           (Tensor.max_abs_diff reference out))
        true
        (Tensor.max_abs_diff reference out = 0.))
    domain_counts

(* --- sharded emulator: outputs, accuracy and counters --- *)

let sharded_run ~domains =
  let graph =
    Emulator.approximate_model ~multiplier:"mul8u_trunc8" ~domains
      (Resnet.build ~depth:8 ())
  in
  let dataset = Cifar.generate ~n:3 () in
  let profile = Profile.create () in
  let out =
    Emulator.run ~profile ~domains ~backend:Emulator.Cpu_gemm graph
      dataset.Cifar.images
  in
  let acc =
    Emulator.accuracy ~domains graph ~backend:Emulator.Cpu_gemm dataset
  in
  (out, acc, Profile.lut_lookups profile, Profile.macs profile)

let test_emulator_sharded_deterministic () =
  let out1, acc1, lut1, macs1 = sharded_run ~domains:1 in
  check_bool "counters populated" true (lut1 > 0 && macs1 > 0);
  List.iter
    (fun domains ->
      let out, acc, lut, macs = sharded_run ~domains in
      check_bool
        (Printf.sprintf "domains=%d output bit-identical, diff %g" domains
           (Tensor.max_abs_diff out1 out))
        true
        (Tensor.max_abs_diff out1 out = 0.);
      Alcotest.(check (float 0.))
        (Printf.sprintf "domains=%d accuracy" domains)
        acc1 acc;
      check_int (Printf.sprintf "domains=%d lut_lookups" domains) lut1 lut;
      check_int (Printf.sprintf "domains=%d macs" domains) macs1 macs)
    domain_counts

(* --- per-chunk metric accounting --- *)

let test_three_chunk_accounting () =
  List.iter
    (fun domains ->
      let input = Tensor.create (Shape.make ~n:5 ~h:6 ~w:6 ~c:2) in
      Tensor.fill_uniform ~lo:(-1.) ~hi:1. (Rng.create 11) input;
      let filter = Filter.create ~kh:3 ~kw:3 ~in_c:2 ~out_c:4 in
      Filter.fill_he_normal (Rng.create 12) filter;
      let input_range = Range.of_tensor input in
      let fmin, fmax = Filter.min_max filter in
      let filter_range = Range.make ~min:fmin ~max:fmax in
      let lut = Registry.lut (Registry.find_exn "mul8u_exact") in
      (* n=5, chunk_size=2 -> chunks of 2, 2 and 1 images. *)
      let config = Axconv.make_config ~chunk_size:2 ~domains lut in
      let spec = Conv_spec.default in
      let profile = Profile.create () in
      let out =
        Pool.with_pool ~domains (fun pool ->
            Axconv.conv ~profile ~pool ~config ~input ~input_range ~filter
              ~filter_range ~spec ())
      in
      let out_shape = Tensor.shape out in
      let rows = Shape.(out_shape.n * out_shape.h * out_shape.w) in
      let taps = Filter.taps filter in
      let expected = rows * 4 * taps in
      let snap = Metrics.snapshot (Profile.metrics profile) in
      let counter name =
        match Metrics.find_counter snap name with Some v -> v | None -> 0
      in
      let tag = Printf.sprintf "domains=%d" domains in
      check_int (tag ^ " chunks") 3 (counter "chunks");
      check_int (tag ^ " lut_lookups") expected (counter "lut_lookups");
      check_int (tag ^ " macs") expected (counter "macs");
      check_int
        (tag ^ " im2col bytes")
        (rows * taps)
        (counter "im2col_bytes");
      (* Per-chunk timing stays coordinator-side: exactly one
         gemm_chunk_seconds observation per chunk, whatever the domain
         count or claim interleaving. *)
      (match Metrics.find_histogram snap "gemm_chunk_seconds" with
      | Some h -> check_int (tag ^ " chunk timing observations") 3 h.Metrics.count
      | None -> Alcotest.failf "%s gemm_chunk_seconds histogram missing" tag))
    domain_counts

let qsuite =
  List.map
    (QCheck_alcotest.to_alcotest ~long:false)
    [ prop_coverage; prop_dynamic_coverage; prop_dynamic_grain_alignment ]

let () =
  Alcotest.run "tfapprox_pool"
    [
      ( "primitives",
        [
          Alcotest.test_case "create validation" `Quick test_create_validation;
          Alcotest.test_case "parallel_for coverage" `Quick
            test_parallel_for_covers_range;
          Alcotest.test_case "rows < workers" `Quick
            test_rows_fewer_than_workers;
          Alcotest.test_case "max_domains cap" `Quick
            test_max_domains_caps_split;
          Alcotest.test_case "map_reduce ascending" `Quick
            test_map_reduce_ascending_order;
          Alcotest.test_case "map_array order" `Quick
            test_map_array_preserves_order;
          Alcotest.test_case "exception re-raised once" `Quick
            test_worker_exception_reraised_once;
          Alcotest.test_case "nested calls inline" `Quick
            test_nested_calls_run_inline;
          Alcotest.test_case "concurrent coordinators safe" `Quick
            test_concurrent_coordinators;
          Alcotest.test_case "shutdown idempotent" `Quick
            test_shutdown_idempotent_and_inline;
          Alcotest.test_case "stats and publish" `Quick test_stats_and_publish;
          Alcotest.test_case "per-domain stats and imbalance" `Quick
            test_per_domain_stats_and_imbalance;
          Alcotest.test_case "tracer attribution" `Quick
            test_pool_tracer_attribution;
        ] );
      ( "dynamic",
        [
          Alcotest.test_case "matches static partitioning" `Quick
            test_dynamic_matches_static;
          Alcotest.test_case "skewed chunk costs" `Quick
            test_dynamic_skewed_costs;
          Alcotest.test_case "deterministic exception" `Quick
            test_dynamic_exception_deterministic;
          Alcotest.test_case "map_array order under claiming" `Quick
            test_dynamic_map_array_order;
          Alcotest.test_case "claim stats" `Quick test_dynamic_stats;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "conv bit-identical across domains" `Quick
            test_conv_bit_identical_across_domains;
          Alcotest.test_case "sharded emulator deterministic" `Quick
            test_emulator_sharded_deterministic;
          Alcotest.test_case "traced sharded deterministic" `Quick
            test_traced_sharded_deterministic;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "3-chunk batch counters" `Quick
            test_three_chunk_accounting;
        ] );
      ("fuzz", qsuite);
    ]
