test/test_nn_conv.ml: Alcotest Array Ax_arith Ax_nn Ax_quant Ax_tensor Bytes Float List Printf QCheck QCheck_alcotest
