(* Training substrate: analytic gradients vs central finite differences
   for every layer type, optimizer semantics, the minibatch loop, and
   straight-through gradients for approximate layers. *)

module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Matrix = Ax_tensor.Matrix
module Rng = Ax_tensor.Rng
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec
module Graph = Ax_nn.Graph
module Exec = Ax_nn.Exec
module Grad = Ax_train.Grad
module Backprop = Ax_train.Backprop
module Optimizer = Ax_train.Optimizer
module Trainer = Ax_train.Trainer
module Cifar = Ax_data.Cifar
module Registry = Ax_arith.Registry

let check_bool = Alcotest.(check bool)

let random_filter ~seed ~kh ~kw ~in_c ~out_c =
  let f = Filter.create ~kh ~kw ~in_c ~out_c in
  Filter.fill_he_normal (Rng.create seed) f;
  f

let random_input ~seed shape =
  let t = Tensor.create shape in
  Tensor.fill_uniform ~lo:(-1.) ~hi:1. (Rng.create seed) t;
  t

let loss_of g input labels =
  fst (Backprop.loss_and_gradients g ~input ~labels)

(* Central finite difference on one parameter cell. *)
let numeric_gradient ~params ~index ~eps ~loss =
  let saved = params.(index) in
  params.(index) <- saved +. eps;
  let up = loss () in
  params.(index) <- saved -. eps;
  let down = loss () in
  params.(index) <- saved;
  (up -. down) /. (2. *. eps)

let check_close ~label analytic numeric =
  let tolerance = 0.08 *. Float.max (abs_float analytic) (abs_float numeric) in
  let tolerance = Float.max tolerance 2e-3 in
  if abs_float (analytic -. numeric) > tolerance then
    Alcotest.failf "%s: analytic %.6f vs numeric %.6f" label analytic numeric

(* Verify a handful of parameter gradients of a graph by perturbation.
   [pick] selects (params array, indices) pairs after locating the node. *)
let gradcheck ~g ~input ~labels ~samples =
  let _, grads = Backprop.loss_and_gradients g ~input ~labels in
  List.iter
    (fun (node_name, slot, indices) ->
      let node =
        match Graph.find_by_name g node_name with
        | Some n -> n
        | None -> Alcotest.failf "no node %s" node_name
      in
      let params, grad_array =
        let pg =
          match List.assoc_opt node.Graph.id grads with
          | Some pg -> pg
          | None -> Alcotest.failf "no gradient for %s" node_name
        in
        match (node.Graph.op, pg, slot) with
        | ( ( Graph.Conv2d { filter; _ } | Graph.Ax_conv2d { filter; _ }
            | Graph.Depthwise_conv2d { filter; _ }
            | Graph.Ax_depthwise_conv2d { filter; _ } ),
            Backprop.Conv_grad { filter = df; _ },
            `Filter ) ->
          (Filter.raw_data filter, df)
        | Graph.Dense { weights; _ }, Backprop.Dense_grad { weights = dw; _ }, `Weights
          ->
          (weights.Matrix.data, dw)
        | Graph.Dense { bias; _ }, Backprop.Dense_grad { bias = db; _ }, `Bias
          ->
          (bias, db)
        | Graph.Batch_norm { scale; _ }, Backprop.Bn_grad { scale = ds; _ }, `Scale
          ->
          (scale, ds)
        | Graph.Batch_norm { shift; _ }, Backprop.Bn_grad { shift = dsh; _ }, `Shift
          ->
          (shift, dsh)
        | _ -> Alcotest.failf "unexpected node/grad shape for %s" node_name
      in
      List.iter
        (fun index ->
          let numeric =
            numeric_gradient ~params ~index ~eps:2e-3 ~loss:(fun () ->
                loss_of g input labels)
          in
          check_close
            ~label:(Printf.sprintf "%s[%d]" node_name index)
            grad_array.(index) numeric)
        indices)
    samples

let labels_for n = Array.init n (fun i -> i mod 10)

(* --- per-op gradient checks --- *)

let test_gradcheck_conv_gap_dense () =
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let filter = random_filter ~seed:1 ~kh:3 ~kw:3 ~in_c:2 ~out_c:4 in
  let conv =
    Graph.add b ~name:"conv"
      (Graph.Conv2d
         { filter; bias = Some [| 0.1; -0.1; 0.; 0.2 |]; spec = Conv_spec.default })
      [ input ]
  in
  let relu = Graph.add b ~name:"relu" Graph.Relu [ conv ] in
  let gap = Graph.add b ~name:"gap" Graph.Global_avg_pool [ relu ] in
  let weights, bias = (Matrix.create ~rows:4 ~cols:10, Array.make 10 0.) in
  let rng = Rng.create 2 in
  for i = 0 to 3 do
    for j = 0 to 9 do
      Matrix.set weights i j (0.5 *. Rng.gaussian rng)
    done
  done;
  let dense = Graph.add b ~name:"fc" (Graph.Dense { weights; bias }) [ gap ] in
  let softmax = Graph.add b ~name:"softmax" Graph.Softmax [ dense ] in
  let g = Graph.finalize b ~output:softmax in
  let input_t = random_input ~seed:3 (Shape.make ~n:3 ~h:6 ~w:6 ~c:2) in
  gradcheck ~g ~input:input_t ~labels:(labels_for 3)
    ~samples:
      [
        ("conv", `Filter, [ 0; 7; 19; 41; 71 ]);
        ("fc", `Weights, [ 0; 13; 39 ]);
        ("fc", `Bias, [ 0; 5 ]);
      ]

let test_gradcheck_bn_maxpool_strided_conv () =
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let filter = random_filter ~seed:4 ~kh:3 ~kw:3 ~in_c:2 ~out_c:3 in
  let conv =
    Graph.add b ~name:"conv"
      (Graph.Conv2d
         {
           filter;
           bias = None;
           spec = Conv_spec.make ~stride:2 ~padding:Conv_spec.Same ();
         })
      [ input ]
  in
  let scale = [| 1.1; 0.9; 1.05 |] and shift = [| 0.02; -0.03; 0.01 |] in
  let bn = Graph.add b ~name:"bn" (Graph.Batch_norm { scale; shift }) [ conv ] in
  let relu = Graph.add b ~name:"relu" Graph.Relu [ bn ] in
  let pool =
    Graph.add b ~name:"pool" (Graph.Max_pool { size = 2; stride = 2 }) [ relu ]
  in
  let gap = Graph.add b ~name:"gap" Graph.Global_avg_pool [ pool ] in
  let weights, bias = (Matrix.create ~rows:3 ~cols:10, Array.make 10 0.) in
  let rng = Rng.create 5 in
  for i = 0 to 2 do
    for j = 0 to 9 do
      Matrix.set weights i j (0.5 *. Rng.gaussian rng)
    done
  done;
  let dense = Graph.add b ~name:"fc" (Graph.Dense { weights; bias }) [ gap ] in
  let softmax = Graph.add b ~name:"softmax" Graph.Softmax [ dense ] in
  let g = Graph.finalize b ~output:softmax in
  let input_t = random_input ~seed:6 (Shape.make ~n:2 ~h:8 ~w:8 ~c:2) in
  gradcheck ~g ~input:input_t ~labels:(labels_for 2)
    ~samples:
      [
        ("conv", `Filter, [ 2; 23; 50 ]);
        ("bn", `Scale, [ 0; 2 ]);
        ("bn", `Shift, [ 1 ]);
      ]

let test_gradcheck_residual_and_shortcut () =
  let g = Ax_models.Resnet.build ~depth:8 ~seed:9 () in
  let input_t = random_input ~seed:7 (Shape.make ~n:2 ~h:32 ~w:32 ~c:3) in
  gradcheck ~g ~input:input_t ~labels:(labels_for 2)
    ~samples:
      [
        ("conv0", `Filter, [ 5; 100 ]);
        ("stage1/block0/conv1", `Filter, [ 17 ]);
        ("stage2/block0/conv2", `Filter, [ 333 ]);
      ]

let test_gradcheck_depthwise () =
  let g = Ax_models.Mobilenet.build ~seed:11 ~blocks:2 ~width:4 () in
  let input_t = random_input ~seed:8 (Shape.make ~n:2 ~h:32 ~w:32 ~c:3) in
  gradcheck ~g ~input:input_t ~labels:(labels_for 2)
    ~samples:
      [
        ("block0/dw", `Filter, [ 0; 17; 35 ]);
        ("block1/dw", `Filter, [ 9 ]);
        ("stem", `Filter, [ 25 ]);
      ]

let test_straight_through_matches_float_gradient () =
  (* With the exact LUT, straight-through gradients of the transformed
     graph approximate the float graph's gradients (they differ only by
     quantization noise in the activations). *)
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let filter = random_filter ~seed:12 ~kh:3 ~kw:3 ~in_c:2 ~out_c:4 in
  let conv =
    Graph.add b ~name:"conv"
      (Graph.Conv2d { filter; bias = None; spec = Conv_spec.default })
      [ input ]
  in
  let gap = Graph.add b ~name:"gap" Graph.Global_avg_pool [ conv ] in
  let weights, bias = (Matrix.create ~rows:4 ~cols:10, Array.make 10 0.) in
  let rng = Rng.create 13 in
  for i = 0 to 3 do
    for j = 0 to 9 do
      Matrix.set weights i j (0.5 *. Rng.gaussian rng)
    done
  done;
  let dense = Graph.add b ~name:"fc" (Graph.Dense { weights; bias }) [ gap ] in
  let softmax = Graph.add b ~name:"softmax" Graph.Softmax [ dense ] in
  let g = Graph.finalize b ~output:softmax in
  let approx = Tfapprox.Emulator.approximate_model ~multiplier:"mul8s_exact" g in
  let input_t = random_input ~seed:14 (Shape.make ~n:2 ~h:6 ~w:6 ~c:2) in
  let labels = labels_for 2 in
  let _, g_float = Backprop.loss_and_gradients g ~input:input_t ~labels in
  let _, g_approx = Backprop.loss_and_gradients approx ~input:input_t ~labels in
  let filter_grad grads graph =
    let node = Option.get (Graph.find_by_name graph "conv") in
    match List.assoc node.Graph.id grads with
    | Backprop.Conv_grad { filter; _ } -> filter
    | _ -> Alcotest.fail "conv grad kind"
  in
  let a = filter_grad g_float g and b2 = filter_grad g_approx approx in
  let worst = ref 0. and scale = ref 0. in
  Array.iteri
    (fun i v ->
      worst := Float.max !worst (abs_float (v -. b2.(i)));
      scale := Float.max !scale (abs_float v))
    a;
  check_bool
    (Printf.sprintf "straight-through close (%.4f of %.4f)" !worst !scale)
    true
    (!worst < 0.15 *. !scale)

(* --- optimizer --- *)

let tiny_training_graph ~seed =
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let filter = random_filter ~seed ~kh:3 ~kw:3 ~in_c:3 ~out_c:8 in
  let conv =
    Graph.add b ~name:"conv"
      (Graph.Conv2d
         {
           filter;
           bias = Some (Array.make 8 0.);
           spec = Conv_spec.make ~stride:2 ~padding:Conv_spec.Same ();
         })
      [ input ]
  in
  let relu = Graph.add b ~name:"relu" Graph.Relu [ conv ] in
  let gap = Graph.add b ~name:"gap" Graph.Global_avg_pool [ relu ] in
  let weights, bias = Ax_models.Weights.dense ~seed ~name:"fc" ~inputs:8 ~outputs:10 in
  let dense = Graph.add b ~name:"fc" (Graph.Dense { weights; bias }) [ gap ] in
  let softmax = Graph.add b ~name:"softmax" Graph.Softmax [ dense ] in
  Graph.finalize b ~output:softmax

let test_sgd_reduces_loss () =
  let g = tiny_training_graph ~seed:21 in
  let data = Cifar.generate ~seed:22 ~n:20 () in
  let labels = data.Cifar.labels in
  let opt = Optimizer.sgd ~momentum:0. ~learning_rate:0.1 () in
  let first = loss_of g data.Cifar.images labels in
  for _ = 1 to 10 do
    let _, grads =
      Backprop.loss_and_gradients g ~input:data.Cifar.images ~labels
    in
    Optimizer.apply opt g grads
  done;
  let last = loss_of g data.Cifar.images labels in
  check_bool (Printf.sprintf "loss %.4f -> %.4f" first last) true (last < first)

let test_weight_decay_shrinks_weights () =
  let g = tiny_training_graph ~seed:23 in
  let node = Option.get (Graph.find_by_name g "conv") in
  let filter =
    match node.Graph.op with
    | Graph.Conv2d { filter; _ } -> filter
    | _ -> assert false
  in
  let norm () =
    Array.fold_left (fun acc v -> acc +. (v *. v)) 0. (Filter.raw_data filter)
  in
  let before = norm () in
  let opt = Optimizer.sgd ~momentum:0. ~weight_decay:0.5 ~learning_rate:0.1 () in
  (* zero gradients: only decay acts *)
  let zero_grads =
    [
      ( node.Graph.id,
        Backprop.Conv_grad
          {
            filter = Array.make (Filter.num_weights filter) 0.;
            bias = Some (Array.make 8 0.);
          } );
    ]
  in
  Optimizer.apply opt g zero_grads;
  check_bool "decay shrinks" true (norm () < before)

let test_optimizer_validation () =
  let g = tiny_training_graph ~seed:24 in
  let node = Option.get (Graph.find_by_name g "conv") in
  let opt = Optimizer.sgd ~learning_rate:0.1 () in
  Alcotest.check_raises "shape mismatch"
    (Invalid_argument "Optimizer.apply: gradient shape mismatch") (fun () ->
      Optimizer.apply opt g
        [
          ( node.Graph.id,
            Backprop.Conv_grad { filter = [| 1. |]; bias = None } );
        ]);
  match Optimizer.sgd ~learning_rate:(-1.) () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "negative lr accepted"

(* --- trainer --- *)

(* Two stride-2 convolutions + GAP + dense: the smallest net that
   reliably learns the synthetic colour/frequency classes. *)
let learnable_graph ~seed =
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let f1 =
    Ax_models.Weights.conv_filter ~seed ~name:"c1" ~kh:3 ~kw:3 ~in_c:3
      ~out_c:8
  in
  let c1 =
    Graph.add b ~name:"c1"
      (Graph.Conv2d
         {
           filter = f1;
           bias = Some (Array.make 8 0.);
           spec = Conv_spec.make ~stride:2 ~padding:Conv_spec.Same ();
         })
      [ input ]
  in
  let r1 = Graph.add b ~name:"r1" Graph.Relu [ c1 ] in
  let f2 =
    Ax_models.Weights.conv_filter ~seed:(seed + 4) ~name:"c2" ~kh:3 ~kw:3
      ~in_c:8 ~out_c:16
  in
  let c2 =
    Graph.add b ~name:"c2"
      (Graph.Conv2d
         {
           filter = f2;
           bias = Some (Array.make 16 0.);
           spec = Conv_spec.make ~stride:2 ~padding:Conv_spec.Same ();
         })
      [ r1 ]
  in
  let r2 = Graph.add b ~name:"r2" Graph.Relu [ c2 ] in
  let gap = Graph.add b ~name:"gap" Graph.Global_avg_pool [ r2 ] in
  let weights, bias =
    Ax_models.Weights.dense ~seed ~name:"fc" ~inputs:16 ~outputs:10
  in
  let dense = Graph.add b ~name:"fc" (Graph.Dense { weights; bias }) [ gap ] in
  let softmax = Graph.add b ~name:"softmax" Graph.Softmax [ dense ] in
  Graph.finalize b ~output:softmax

let test_training_learns_synthetic_classes () =
  let g = learnable_graph ~seed:25 in
  let data = Cifar.normalize (Cifar.generate ~seed:26 ~n:80 ()) in
  let before = Trainer.evaluate g data in
  let config =
    {
      Trainer.default_config with
      Trainer.epochs = 15;
      learning_rate = 0.1;
      batch_size = 12;
    }
  in
  let history = Trainer.train config g data in
  let best = Array.fold_left Float.max 0. history.Trainer.epoch_accuracies in
  check_bool
    (Printf.sprintf "accuracy improves well above chance (%.2f -> best %.2f)"
       before best)
    true
    (best > 0.5);
  (* Generalization: fresh images from the same classes. *)
  let held_out = Cifar.normalize (Cifar.generate ~seed:99 ~n:40 ()) in
  check_bool "generalizes above chance" true
    (Trainer.evaluate g held_out > 0.3);
  check_bool "loss decreases" true
    (history.Trainer.epoch_losses.(config.Trainer.epochs - 1)
     < history.Trainer.epoch_losses.(0) -. 0.3)

let test_finetune_approximate_forward () =
  (* Train float briefly, transform with a coarse multiplier, then
     fine-tune with the emulated forward pass: emulated accuracy must
     improve — the paper's retraining workflow end to end. *)
  let g = learnable_graph ~seed:27 in
  let data = Cifar.normalize (Cifar.generate ~seed:28 ~n:40 ()) in
  let pre_config =
    { Trainer.default_config with Trainer.epochs = 10; learning_rate = 0.1; batch_size = 10 }
  in
  ignore (Trainer.train pre_config g data);
  let approx = Tfapprox.Emulator.approximate_model ~multiplier:"mul8s_trunc6" g in
  let before = Trainer.evaluate approx data in
  let tune_config =
    { pre_config with Trainer.epochs = 3; learning_rate = 0.03 }
  in
  let history = Trainer.train tune_config approx data in
  let after = Trainer.evaluate approx data in
  check_bool
    (Printf.sprintf "fine-tuning helps or holds (%.2f -> %.2f)" before after)
    true
    (after >= before);
  check_bool "losses finite" true
    (Array.for_all Float.is_finite history.Trainer.epoch_losses)

let test_backprop_requires_softmax_output () =
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let relu = Graph.add b ~name:"relu" Graph.Relu [ input ] in
  let g = Graph.finalize b ~output:relu in
  let x = random_input ~seed:1 (Shape.make ~n:1 ~h:2 ~w:2 ~c:1) in
  Alcotest.check_raises "non-softmax output"
    (Invalid_argument "Backprop: graph output must be Softmax") (fun () ->
      ignore (Backprop.loss_and_gradients g ~input:x ~labels:[| 0 |]))

let () =
  Alcotest.run "ax_train"
    [
      ( "gradcheck",
        [
          Alcotest.test_case "conv/gap/dense" `Quick
            test_gradcheck_conv_gap_dense;
          Alcotest.test_case "bn/maxpool/strided conv" `Quick
            test_gradcheck_bn_maxpool_strided_conv;
          Alcotest.test_case "residual ResNet-8" `Slow
            test_gradcheck_residual_and_shortcut;
          Alcotest.test_case "depthwise MobileNet" `Slow
            test_gradcheck_depthwise;
          Alcotest.test_case "straight-through approx" `Quick
            test_straight_through_matches_float_gradient;
        ] );
      ( "optimizer",
        [
          Alcotest.test_case "sgd reduces loss" `Quick test_sgd_reduces_loss;
          Alcotest.test_case "weight decay" `Quick
            test_weight_decay_shrinks_weights;
          Alcotest.test_case "validation" `Quick test_optimizer_validation;
        ] );
      ( "trainer",
        [
          Alcotest.test_case "learns synthetic classes" `Slow
            test_training_learns_synthetic_classes;
          Alcotest.test_case "fine-tune approximate forward" `Slow
            test_finetune_approximate_forward;
          Alcotest.test_case "requires softmax output" `Quick
            test_backprop_requires_softmax_output;
        ] );
    ]
