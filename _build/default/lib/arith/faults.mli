(** Fault-injection wrappers over multiplier functions.

    Used to model manufacturing defects or aggressive voltage scaling in
    an otherwise exact datapath, and to stress error-resilience
    experiments: the emulator must keep running (and the network keep
    classifying) whatever garbage the multiplier returns. *)

val stuck_at :
  bit:int -> value:bool -> (int -> int -> int) -> int -> int -> int
(** Force product bit [bit] to [value]. *)

val bit_flip : bit:int -> (int -> int -> int) -> int -> int -> int
(** Invert product bit [bit] unconditionally. *)

val random_flip :
  probability:float -> seed:int -> bits:int -> (int -> int -> int) ->
  int -> int -> int
(** Flip each product bit independently with the given probability.  The
    decision depends deterministically on [(seed, a, b, bit)], so the
    fault pattern is a reproducible function of the operands — i.e. it
    behaves like a faulty LUT, which is exactly how the emulator would
    see it. *)
