(** Backward passes (vector-Jacobian products) for every layer of the
    graph IR — the substrate of the fine-tuning / retraining workflow
    the paper motivates ("determining a suitable approximate
    implementation ... requires performing additional parameter
    fine-tuning (i.e. re-training)", Sec. I).

    All functions take the layer's forward input (or output where that
    is cheaper) and the gradient of the loss with respect to the layer
    output, and return input gradients plus flat parameter gradients in
    the same memory layout as the live parameters. *)

val conv_backward :
  input:Ax_tensor.Tensor.t ->
  filter:Ax_nn.Filter.t ->
  spec:Ax_nn.Conv_spec.t ->
  dout:Ax_tensor.Tensor.t ->
  Ax_tensor.Tensor.t * float array * float array
(** [(dinput, dfilter, dbias)]; [dfilter] is HWCK-flat like
    {!Ax_nn.Filter.raw_data}, [dbias] has [out_c] entries. *)

val depthwise_backward :
  input:Ax_tensor.Tensor.t ->
  filter:Ax_nn.Filter.t ->
  spec:Ax_nn.Conv_spec.t ->
  dout:Ax_tensor.Tensor.t ->
  Ax_tensor.Tensor.t * float array * float array
(** Same contract; [dbias] has [in_c * multiplier] entries. *)

val dense_backward :
  input:Ax_tensor.Tensor.t ->
  weights:Ax_tensor.Matrix.t ->
  dout:Ax_tensor.Tensor.t ->
  Ax_tensor.Tensor.t * float array * float array

val relu_backward :
  output:Ax_tensor.Tensor.t -> dout:Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t
(** Uses the forward output: gradient passes where [output > 0]. *)

val batch_norm_backward :
  input:Ax_tensor.Tensor.t ->
  scale:float array ->
  dout:Ax_tensor.Tensor.t ->
  Ax_tensor.Tensor.t * float array * float array
(** Folded-affine batch norm: [(dinput, dscale, dshift)]. *)

val max_pool_backward :
  input:Ax_tensor.Tensor.t -> size:int -> stride:int ->
  dout:Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t
(** Routes gradient to the arg-max cell of each window (ties go to the
    first maximum in scan order, matching the forward). *)

val global_avg_pool_backward :
  input_shape:Ax_tensor.Shape.t -> dout:Ax_tensor.Tensor.t ->
  Ax_tensor.Tensor.t

val shortcut_pad_backward :
  input_shape:Ax_tensor.Shape.t -> stride:int -> dout:Ax_tensor.Tensor.t ->
  Ax_tensor.Tensor.t

val softmax_backward :
  output:Ax_tensor.Tensor.t -> dout:Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t
(** General softmax VJP: [dx = p * (dp - sum(dp * p))] per position. *)

val softmax_cross_entropy :
  probs:Ax_tensor.Tensor.t -> labels:int array -> float * Ax_tensor.Tensor.t
(** Mean cross-entropy of softmax [probs] (Nx1x1xC) against integer
    labels, and the fused gradient with respect to the {e logits}
    (the softmax input): [(p - onehot) / N]. *)
