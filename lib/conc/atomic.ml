(* Checked drop-in for Stdlib.Atomic.  Atomics synchronize: every
   operation joins the per-atomic sync clock into the thread's clock
   and publishes back, so values passed through an atomic establish
   happens-before for the race detector (matching the release/acquire
   semantics OCaml atomics actually have). *)

type 'a t = {
  a : 'a Stdlib.Atomic.t;
  id : int;
  name : string;
}

let make ~name v = { a = Stdlib.Atomic.make v; id = Conc.fresh_id (); name }
let name t = t.name

let sync t =
  if Conc.enabled () then
    match Conc.explore_for_me () with
    | Some h -> h.Conc.x_sync ~id:t.id
    | None -> if Conc.tracking () then Conc.on_sync ~id:t.id

let get t =
  sync t;
  Stdlib.Atomic.get t.a

let set t v =
  sync t;
  Stdlib.Atomic.set t.a v

let exchange t v =
  sync t;
  Stdlib.Atomic.exchange t.a v

let compare_and_set t seen v =
  sync t;
  Stdlib.Atomic.compare_and_set t.a seen v

let fetch_and_add t n =
  sync t;
  Stdlib.Atomic.fetch_and_add t.a n

let incr t = ignore (fetch_and_add t 1)
let decr t = ignore (fetch_and_add t (-1))
