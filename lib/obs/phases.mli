(** Named wall-clock phase accounting with partition semantics.

    A generalization of the Fig. 2 accumulator: phases are identified by
    string and the timed totals always partition real elapsed time —
    a nested {!time} charges the inner phase and refunds the outer one,
    so no second is counted twice.  {!Ax_nn.Profile} layers its
    four-phase view on top of this module. *)

type t

val create : unit -> t
val reset : t -> unit

val time : t -> string -> (unit -> 'a) -> 'a
(** Charge a thunk's wall-clock time to a phase; nested calls charge
    the inner phase and subtract the same amount from the outer one. *)

val add_seconds : t -> string -> float -> unit
(** Charge externally measured time.  Negative values are accepted (the
    refund path uses them); consumers that render shares clamp at 0. *)

val seconds : t -> string -> float
(** [0.] for a phase never charged. *)

val total : t -> float
(** Sum over all phases (refunds included, so this tracks real elapsed
    time of the outermost [time] calls). *)

val names : t -> string list
(** Phases ever charged, sorted. *)

val to_json : t -> Json.t
(** [{"<phase>": seconds, ...}], sorted by phase name. *)
