lib/data/cifar.ml: Array Ax_tensor Dataset Float List
