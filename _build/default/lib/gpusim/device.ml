type t = {
  name : string;
  sm_count : int;
  cores_per_sm : int;
  clock_ghz : float;
  mem_bandwidth_gbps : float;
  pcie_bandwidth_gbps : float;
  tex_cache_bytes : int;
  tex_cache_line_bytes : int;
  tex_cache_ways : int;
  tex_lookups_per_sm_per_cycle : float;
  tex_miss_penalty_factor : float;
  kernel_launch_overhead_s : float;
  context_setup_s : float;
  gemm_efficiency : float;
  elementwise_efficiency : float;
}

let gtx_1080 =
  {
    name = "gtx-1080";
    sm_count = 20;
    cores_per_sm = 128;
    clock_ghz = 1.73;
    mem_bandwidth_gbps = 320.;
    pcie_bandwidth_gbps = 12.;
    tex_cache_bytes = 48 * 1024;
    tex_cache_line_bytes = 32;
    tex_cache_ways = 4;
    tex_lookups_per_sm_per_cycle = 8.;
    tex_miss_penalty_factor = 6.;
    kernel_launch_overhead_s = 8e-6;
    context_setup_s = 1.7;
    gemm_efficiency = 0.25;
    elementwise_efficiency = 0.04;
  }

let jetson_class =
  {
    name = "jetson-class";
    sm_count = 2;
    cores_per_sm = 128;
    clock_ghz = 0.92;
    mem_bandwidth_gbps = 25.;
    pcie_bandwidth_gbps = 4.;
    tex_cache_bytes = 32 * 1024;
    tex_cache_line_bytes = 32;
    tex_cache_ways = 4;
    tex_lookups_per_sm_per_cycle = 4.;
    tex_miss_penalty_factor = 8.;
    kernel_launch_overhead_s = 15e-6;
    context_setup_s = 2.5;
    gemm_efficiency = 0.2;
    elementwise_efficiency = 0.05;
  }

let datacenter_class =
  {
    name = "datacenter-class";
    sm_count = 80;
    cores_per_sm = 64;
    clock_ghz = 1.38;
    mem_bandwidth_gbps = 900.;
    pcie_bandwidth_gbps = 16.;
    tex_cache_bytes = 128 * 1024;
    tex_cache_line_bytes = 32;
    tex_cache_ways = 4;
    tex_lookups_per_sm_per_cycle = 8.;
    tex_miss_penalty_factor = 5.;
    kernel_launch_overhead_s = 6e-6;
    context_setup_s = 2.0;
    gemm_efficiency = 0.35;
    elementwise_efficiency = 0.06;
  }

let peak_flops d =
  float_of_int (d.sm_count * d.cores_per_sm) *. d.clock_ghz *. 1e9

let peak_lut_rate d =
  float_of_int d.sm_count *. d.tex_lookups_per_sm_per_cycle *. d.clock_ghz
  *. 1e9

let pp ppf d =
  Format.fprintf ppf "%s (%d SMs @ %.2f GHz, %.0f GB/s, %d kB tex$/SM)"
    d.name d.sm_count d.clock_ghz d.mem_bandwidth_gbps
    (d.tex_cache_bytes / 1024)
