(* Checked drop-in for Stdlib.Mutex.  Passthrough when the layer is
   off; in record mode every acquisition feeds the per-thread held
   stack, the lock-order graph and the vector clocks; under an active
   exploration the operation is rerouted to the cooperative scheduler
   and the real mutex is never touched. *)

type t = {
  m : Stdlib.Mutex.t;
  id : int;
  name : string;
  order : int option;
}

let create ?order ~name () =
  { m = Stdlib.Mutex.create (); id = Conc.fresh_id (); name; order }

let name t = t.name
let real t = t.m
let id t = t.id

let lock_aux ~protected t =
  if not (Conc.enabled ()) then Stdlib.Mutex.lock t.m
  else
    match Conc.explore_for_me () with
    | Some h -> h.Conc.x_lock ~id:t.id ~name:t.name
    | None ->
      if Conc.tracking () then begin
        Conc.on_pre_acquire ~id:t.id ~name:t.name ~order:t.order ~protected;
        Stdlib.Mutex.lock t.m;
        Conc.on_acquire ~id:t.id ~name:t.name ~order:t.order ~protected
      end
      else Stdlib.Mutex.lock t.m

let lock t = lock_aux ~protected:false t

let unlock t =
  if not (Conc.enabled ()) then Stdlib.Mutex.unlock t.m
  else
    match Conc.explore_for_me () with
    | Some h -> h.Conc.x_unlock ~id:t.id ~name:t.name
    | None ->
      if Conc.tracking () then begin
        (* record while still holding: the release updates the lock's
           clock from the releasing thread's *)
        Conc.on_release ~id:t.id ~name:t.name;
        Stdlib.Mutex.unlock t.m
      end
      else Stdlib.Mutex.unlock t.m

let with_lock t f =
  lock_aux ~protected:true t;
  Fun.protect ~finally:(fun () -> unlock t) f
