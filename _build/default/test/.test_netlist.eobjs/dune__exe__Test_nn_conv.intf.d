test/test_nn_conv.mli:
