lib/netlist/verilog.mli: Circuit Multipliers
