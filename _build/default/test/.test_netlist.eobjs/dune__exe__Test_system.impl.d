test/test_system.ml: Alcotest Array Ax_data Ax_gpusim Ax_models Ax_netlist Ax_nn Ax_tensor Ax_train Float Lazy Printf Tfapprox
