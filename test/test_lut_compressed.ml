(* Locks down PR "dynamic scheduling + compressed cache-resident LUT":
   the compression side.

   - exhaustive 65,536-entry equivalence of the compressed accessor
     against the raw table, for every multiplier in the registry, plus
     mode/size expectations (every truncation-style design must land in
     the 16 kB budget);
   - synthetic tables hitting the encodings the catalogue happens to
     miss (Masked, non-symmetric Sparse) and pinning the sign-symmetry
     halving on a table built to be symmetric;
   - a 50-shape differential conv sweep asserting the compressed kernel
     is bit-identical to the raw-table tiled kernel for every
     accumulator model;
   - memoisation by physical table identity. *)

module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Rng = Ax_tensor.Rng
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec
module Axconv = Ax_nn.Axconv
module Accumulator = Ax_nn.Accumulator
module Range = Ax_quant.Range
module Lc = Ax_quant.Lut_compressed
module S = Ax_arith.Signedness
module Lut = Ax_arith.Lut
module Registry = Ax_arith.Registry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Exhaustive equivalence: every code pair, compressed vs raw. *)
let assert_equivalent ~name c =
  let lut = Lc.lut c in
  let bad = ref 0 in
  for ca = 0 to 255 do
    for cb = 0 to 255 do
      if Lc.lookup_code c ca cb <> Lut.lookup_code lut ca cb then incr bad
    done
  done;
  check_int (Printf.sprintf "%s: compressed == raw over 65536 entries" name)
    0 !bad

(* --- every registry multiplier --- *)

let test_registry_exhaustive () =
  List.iter
    (fun entry ->
      let name = entry.Registry.name in
      let c = Lc.of_lut (Registry.lut entry) in
      assert_equivalent ~name c;
      (* Structural invariants of the encoding report. *)
      let bytes = Lc.bytes c in
      (match Lc.mode c with
      | Lc.Raw ->
        check_int (name ^ ": raw bytes = table size") Lut.size_bytes bytes
      | Lc.Exact_product -> check_int (name ^ ": exact is free") 0 bytes
      | Lc.Masked _ | Lc.Low_factored _ | Lc.Split_factored _
      | Lc.Nibble_split | Lc.Sparse _ ->
        check_bool
          (Printf.sprintf "%s: %s (%d B) within budget" name (Lc.mode_name c)
             bytes)
          true
          (bytes > 0 && bytes <= Lc.budget_bytes));
      check_bool (name ^ ": ratio consistent") true
        (abs_float
           (Lc.ratio c
           -. (float_of_int Lut.size_bytes /. float_of_int (max 1 bytes)))
        < 1e-9))
    (Registry.all ())

(* The acceptance bar names truncation-style designs: all of them must
   actually compress (no Raw fallback), inside the cache budget.  The
   expected encodings are pinned so a regression in the candidate
   lattice (e.g. split-factored silently losing to raw) fails loudly,
   with the observed mode in the message. *)
let test_trunc_style_budget () =
  List.iter
    (fun (name, want_mode) ->
      let c = Lc.of_lut (Registry.lut (Registry.find_exn name)) in
      check_bool
        (Printf.sprintf "%s: got %s (%d B), want %s within %d B" name
           (Lc.mode_name c) (Lc.bytes c) want_mode Lc.budget_bytes)
        true
        (Lc.mode_name c = want_mode && Lc.bytes c <= Lc.budget_bytes))
    [
      ("mul8u_trunc4", "low-factored");
      ("mul8u_trunc6", "split-factored");
      ("mul8u_trunc8", "split-factored");
      ("mul8u_trunc10", "nibble-split");
      ("mul8u_bam_h2_v6", "split-factored");
      ("mul8u_bam_h3_v8", "split-factored");
      ("mul8u_nl_trunc8", "split-factored");
      ("mul8u_nl_bam_h2_v6", "split-factored");
      ("mul8u_kulkarni", "nibble-split");
      ("mul8u_flip14_1e-3", "sparse");
      ("mul8u_exact", "exact");
      ("mul8s_exact", "exact");
      ("mul8u_nl_exact", "exact");
      ("mul8s_nl_exact", "exact");
    ]

(* --- synthetic tables for the modes the catalogue misses --- *)

let test_masked () =
  let mask = 0xFF80 in
  let lut = Lut.make ~signedness:S.Unsigned (fun a b -> a * b land mask) in
  let c = Lc.of_lut lut in
  check_bool
    (Printf.sprintf "masked table detected (got %s)" (Lc.mode_name c))
    true
    (match Lc.mode c with Lc.Masked m -> m = mask | _ -> false);
  check_int "masked payload is one int16" 2 (Lc.bytes c);
  assert_equivalent ~name:"masked" c

let test_sparse_symmetric () =
  (* Two defective entries placed at code pairs that are images of each
     other under negating both operands: (1,1) and (255,255).  The
     sign-symmetry test must hold and halve the correction storage. *)
  let f a b =
    if (a = 1 && b = 1) || (a = 255 && b = 255) then (a * b) + 3 else a * b
  in
  let c = Lc.of_lut (Lut.make ~signedness:S.Unsigned f) in
  check_bool
    (Printf.sprintf "symmetric sparse detected (got %s)" (Lc.mode_name c))
    true
    (match Lc.mode c with Lc.Sparse { sym; _ } -> sym | _ -> false);
  check_bool "sparse fits the budget" true (Lc.bytes c <= Lc.budget_bytes);
  assert_equivalent ~name:"sparse-sym" c

let test_sparse_asymmetric () =
  (* One defective entry whose negated-pair image is clean: symmetry
     must NOT be claimed, and decode must still be exact. *)
  let f a b = if a = 3 && b = 5 then (a * b) + 7 else a * b in
  let c = Lc.of_lut (Lut.make ~signedness:S.Unsigned f) in
  check_bool
    (Printf.sprintf "asymmetric sparse detected (got %s)" (Lc.mode_name c))
    true
    (match Lc.mode c with
    | Lc.Sparse { sym; _ } -> not sym
    | _ -> false);
  assert_equivalent ~name:"sparse-asym" c

let test_raw_fallback () =
  (* A structureless dense delta defeats every encoding; the honest
     answer is the raw table, at full size, decoding exactly. *)
  let f a b =
    (a * b) + ((((a * 2654435761) lxor (b * 40503)) land 0xFF) - 128)
  in
  let c = Lc.of_lut (Lut.make ~signedness:S.Unsigned f) in
  check_bool
    (Printf.sprintf "dense noise stays raw (got %s)" (Lc.mode_name c))
    true
    (Lc.mode c = Lc.Raw);
  check_int "raw keeps full size" Lut.size_bytes (Lc.bytes c);
  assert_equivalent ~name:"raw-fallback" c

let test_memoised () =
  let lut = Registry.lut (Registry.find_exn "mul8u_trunc8") in
  check_bool "same physical table compresses once" true
    (Lc.of_lut lut == Lc.of_lut lut);
  (* A physically distinct copy is a different cache key. *)
  let copy = Lut.copy lut in
  check_bool "a copy is compressed separately" true
    (not (Lc.of_lut copy == Lc.of_lut lut));
  check_bool "but to the same encoding" true
    (Lc.mode (Lc.of_lut copy) = Lc.mode (Lc.of_lut lut))

(* --- differential conv sweep: compressed kernel vs raw-table kernel --- *)

let accumulators =
  [
    Accumulator.Wide;
    Accumulator.Saturating 16;
    Accumulator.Wrapping 16;
    Accumulator.Lower_or { width = 20; approx_low = 4 };
  ]

(* One multiplier per compression mode the kernel specialises on, so
   every decode loop (exact, low-factored, split-factored, nibble-split,
   sparse, and the raw fallback) sees the sweep. *)
let sweep_multipliers =
  [|
    "mul8u_exact";
    "mul8u_trunc4";
    "mul8u_trunc8";
    "mul8u_trunc10";
    "mul8u_flip14_1e-3";
    "mul8u_drum4";
  |]

let test_conv_sweep () =
  let cases = ref 0 in
  for id = 0 to 49 do
    let rng = Rng.create (1000 + id) in
    let pick lo hi = lo + Rng.int rng (hi - lo + 1) in
    let n = pick 1 3 in
    let h = pick 4 10 and w = pick 4 10 in
    let c = pick 1 6 and out_c = pick 1 10 in
    let kh = pick 1 3 and kw = pick 1 3 in
    let stride = pick 1 2 in
    let padding =
      if Rng.int rng 2 = 0 then Conv_spec.Same else Conv_spec.Valid
    in
    let spec = Conv_spec.make ~stride ~padding () in
    let chunk_size = pick 1 n in
    let input = Tensor.create (Shape.make ~n ~h ~w ~c) in
    Tensor.fill_uniform ~lo:(-1.2) ~hi:1.2 rng input;
    let filter = Filter.create ~kh ~kw ~in_c:c ~out_c in
    Filter.fill_he_normal rng filter;
    let input_range = Range.of_tensor input in
    let fmin, fmax = Filter.min_max filter in
    let filter_range = Range.make ~min:fmin ~max:fmax in
    let mul_name = sweep_multipliers.(id mod Array.length sweep_multipliers) in
    let lut = Registry.lut (Registry.find_exn mul_name) in
    let bias =
      if id mod 2 = 0 then
        Some (Array.init out_c (fun k -> 0.01 *. float_of_int k))
      else None
    in
    List.iter
      (fun accumulator ->
        let run compress =
          let config =
            Axconv.make_config ~chunk_size ~accumulator ~compress lut
          in
          Axconv.conv ~config ~input ~input_range ~filter ~filter_range
            ?bias ~spec ()
        in
        let want = run false and got = run true in
        incr cases;
        check_bool
          (Printf.sprintf "case %d (%s, %s): compressed == raw kernel" id
             mul_name
             (Accumulator.to_string accumulator))
          true
          (Tensor.max_abs_diff want got = 0.))
      accumulators
  done;
  check_bool "sweep ran 200 comparisons" true (!cases = 200)

let () =
  Alcotest.run "lut_compressed"
    [
      ( "equivalence",
        [
          Alcotest.test_case
            "every registry multiplier, all 65536 entries" `Quick
            test_registry_exhaustive;
          Alcotest.test_case "truncation-style modes and budget" `Quick
            test_trunc_style_budget;
        ] );
      ( "synthetic",
        [
          Alcotest.test_case "masked" `Quick test_masked;
          Alcotest.test_case "sparse symmetric" `Quick test_sparse_symmetric;
          Alcotest.test_case "sparse asymmetric" `Quick test_sparse_asymmetric;
          Alcotest.test_case "raw fallback" `Quick test_raw_fallback;
          Alcotest.test_case "memoised by table identity" `Quick
            test_memoised;
        ] );
      ( "differential",
        [
          Alcotest.test_case
            "conv sweep: compressed == raw kernel (50 shapes x 4 \
             accumulators)"
            `Quick test_conv_sweep;
        ] );
    ]
