(** Affine quantization (Eq. 1 of the paper): [r = alpha * (q - beta)]
    with scale [alpha > 0] and integer zero-point [beta] chosen so that
    the real value 0 is exactly representable — the property the paper
    singles out as essential for zero padding and ReLU outputs. *)

type coeffs = {
  alpha : float;  (** scale; strictly positive *)
  beta : int;     (** zero-point, within the quantized range *)
}

val compute_coeffs :
  ?symmetric:bool ->
  Ax_arith.Signedness.t -> rmin:float -> rmax:float -> coeffs
(** The [ComputeCoeffs] step of Algorithm 1: derive [alpha], [beta] from
    an observed real range.  The range is first extended to contain 0
    (so the zero-point exists), degenerate ranges ([rmin = rmax = v])
    yield [alpha = max(|v|,1)/qmax]-style safe scales, and [beta] is the
    nudged zero-point clamped into the quantized range.

    With [symmetric:true] (common for weights) the zero-point is pinned:
    [beta = 0] for signed quantization with
    [alpha = max(|rmin|, |rmax|) / qmax], and [beta = qmin] for unsigned
    (where only the non-negative part of the range is representable).
    The Eq. 4 corrections involving [beta2] then vanish. *)

val quantize : coeffs -> Round.t -> Ax_arith.Signedness.t -> float -> int
(** Real value to quantized integer (clamped into range). *)

val dequantize : coeffs -> int -> float
(** [dequantize c q = alpha * (q - beta)]. *)

val quantize_tensor_codes :
  coeffs -> Round.t -> Ax_arith.Signedness.t -> Ax_tensor.Tensor.t -> Bytes.t
(** Quantize a whole tensor into raw 8-bit LUT codes (the [Mp]/filter
    tile representation of Algorithm 1); [Bytes.get_uint8] recovers each
    code. *)

val roundtrip_error_bound : coeffs -> float
(** Worst dequantization error for an in-range value under nearest
    rounding: [alpha / 2]. *)
