(** Static verifier for the dataflow-graph IR.

    Three rule families, all reported through {!Diagnostic}:

    - {b structure} — arity, unknown/forward input references, missing
      or duplicated Input placeholders, nodes unreachable from the
      output, scalar-valued graph outputs;
    - {b shapes} — full shape-and-channel inference (reusing
      {!Ax_nn.Conv_spec.output_shape} / {!Ax_nn.Depthwise.output_shape})
      plus parameter-arity checks (bias lengths, batch-norm vectors,
      dense weight rows, pool windows, residual joins);
    - {b Fig. 1 wiring} — every [Ax_conv2d] / [Ax_depthwise_conv2d]
      scalar input is traced back to a [Min_reduce] / [Max_reduce] over
      the convolution's own data tensor (or an explicit constant), the
      shape the paper's graph transform guarantees.

    A malformed upstream node poisons its consumers: follow-on findings
    that are mere consequences of an already-reported defect are
    suppressed, so one broken edge yields one diagnostic. *)

val check :
  ?input:Ax_tensor.Shape.t -> Ax_nn.Graph.t -> Diagnostic.t list
(** All structural and wiring findings.  Shape inference runs only when
    [input] is given (the placeholder shape is not part of the graph). *)
