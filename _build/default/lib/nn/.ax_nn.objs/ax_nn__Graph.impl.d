lib/nn/graph.ml: Array Ax_tensor Axconv Buffer Conv_spec Depthwise Filter Format List Printf String
