lib/quant/range.mli: Ax_tensor Format
