module Graph = Ax_nn.Graph
module Exec = Ax_nn.Exec
module Axconv = Ax_nn.Axconv
module Tensor = Ax_tensor.Tensor
module Shape = Ax_tensor.Shape
module Range = Ax_quant.Range
module Lut = Ax_arith.Lut

(* Evaluate one AxConv2D twice on recorded activations: once with its
   own LUT, once with the exact LUT of the same signedness.  Returns
   both outputs. *)
let replay_layer ~values node =
  match node.Graph.op with
  | Graph.Ax_conv2d { filter; bias; spec; config } ->
    let tensor_of id =
      match values.(id) with
      | Exec.Tensor t -> t
      | Exec.Scalar _ -> invalid_arg "Calibrate: conv data input is scalar"
    in
    let scalar_of id =
      match values.(id) with
      | Exec.Scalar s -> s
      | Exec.Tensor _ -> invalid_arg "Calibrate: range input is a tensor"
    in
    (match node.Graph.inputs with
    | [ data; in_min; in_max; f_min; f_max ] ->
      let input = tensor_of data in
      let input_range =
        Range.make ~min:(scalar_of in_min) ~max:(scalar_of in_max)
      in
      let filter_range =
        Range.make ~min:(scalar_of f_min) ~max:(scalar_of f_max)
      in
      let run config =
        Axconv.conv ~config ~input ~input_range ~filter ~filter_range ?bias
          ~spec ()
      in
      let exact_config =
        {
          config with
          Axconv.lut = Lut.exact (Lut.signedness config.Axconv.lut);
        }
      in
      Some (run config, run exact_config, filter)
    | _ -> invalid_arg "Calibrate: AxConv2D arity")
  | Graph.Ax_depthwise_conv2d { filter; bias; spec; config } ->
    let tensor_of id =
      match values.(id) with
      | Exec.Tensor t -> t
      | Exec.Scalar _ -> invalid_arg "Calibrate: conv data input is scalar"
    in
    let scalar_of id =
      match values.(id) with
      | Exec.Scalar s -> s
      | Exec.Tensor _ -> invalid_arg "Calibrate: range input is a tensor"
    in
    (match node.Graph.inputs with
    | [ data; in_min; in_max; f_min; f_max ] ->
      let input = tensor_of data in
      let input_range =
        Range.make ~min:(scalar_of in_min) ~max:(scalar_of in_max)
      in
      let filter_range =
        Range.make ~min:(scalar_of f_min) ~max:(scalar_of f_max)
      in
      let run config =
        Ax_nn.Depthwise.approx_conv ~config ~input ~input_range ~filter
          ~filter_range ?bias ~spec ()
      in
      let exact_config =
        {
          config with
          Axconv.lut = Lut.exact (Lut.signedness config.Axconv.lut);
        }
      in
      Some (run config, run exact_config, filter)
    | _ -> invalid_arg "Calibrate: AxDepthwiseConv2D arity")
  | Graph.Input | Graph.Conv2d _ | Graph.Depthwise_conv2d _
  | Graph.Min_reduce | Graph.Max_reduce | Graph.Const_scalar _ | Graph.Relu
  | Graph.Max_pool _ | Graph.Global_avg_pool | Graph.Dense _
  | Graph.Batch_norm _ | Graph.Add | Graph.Softmax | Graph.Shortcut_pad _ ->
    None

let per_channel_mean_diff ~approx ~exact =
  let s = Tensor.shape exact in
  let channels = Shape.(s.c) in
  let sums = Array.make channels 0. in
  let cells = Tensor.num_elements exact / channels in
  let ab = Tensor.buffer approx and eb = Tensor.buffer exact in
  for i = 0 to Tensor.num_elements exact - 1 do
    sums.(i mod channels) <- sums.(i mod channels) +. (eb.{i} -. ab.{i})
  done;
  Array.map (fun v -> v /. float_of_int cells) sums

let bias_correct ~sample g =
  let values = Exec.run_all g ~input:sample in
  let b = Graph.builder () in
  let remap = Array.make (Graph.size g) (-1) in
  Array.iter
    (fun n ->
      let inputs = List.map (fun i -> remap.(i)) n.Graph.inputs in
      let op =
        match replay_layer ~values n with
        | Some (approx_out, exact_out, filter) ->
          let corrections =
            per_channel_mean_diff ~approx:approx_out ~exact:exact_out
          in
          (match n.Graph.op with
          | Graph.Ax_conv2d { filter = _; bias; spec; config } ->
            let out_c = Ax_nn.Filter.out_c filter in
            let base =
              match bias with Some b -> Array.copy b | None -> Array.make out_c 0.
            in
            Array.iteri (fun k d -> base.(k) <- base.(k) +. d) corrections;
            Graph.Ax_conv2d { filter; bias = Some base; spec; config }
          | Graph.Ax_depthwise_conv2d { filter = _; bias; spec; config } ->
            let out_c = Ax_nn.Filter.in_c filter * Ax_nn.Filter.out_c filter in
            let base =
              match bias with Some b -> Array.copy b | None -> Array.make out_c 0.
            in
            Array.iteri (fun k d -> base.(k) <- base.(k) +. d) corrections;
            Graph.Ax_depthwise_conv2d { filter; bias = Some base; spec; config }
          | _ -> assert false)
        | None -> n.Graph.op
      in
      remap.(n.Graph.id) <- Graph.add b ~name:n.Graph.name op inputs)
    (Graph.nodes g);
  Graph.finalize b ~output:remap.(Graph.output g)

let mean_channel_error ~sample g =
  let values = Exec.run_all g ~input:sample in
  Array.to_list (Graph.nodes g)
  |> List.filter_map (fun n ->
         match replay_layer ~values n with
         | Some (approx_out, exact_out, _) ->
           let diffs = per_channel_mean_diff ~approx:approx_out ~exact:exact_out in
           let mean_abs =
             Array.fold_left (fun acc d -> acc +. abs_float d) 0. diffs
             /. float_of_int (Array.length diffs)
           in
           Some (n.Graph.name, mean_abs)
         | None -> None)
