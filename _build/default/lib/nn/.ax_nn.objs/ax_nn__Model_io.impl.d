lib/nn/model_io.ml: Accumulator Array Ax_arith Ax_quant Ax_tensor Axconv Buffer Bytes Char Conv_spec Filter Fun Graph Int64 List Printf String
