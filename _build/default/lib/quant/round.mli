(** Rounding applied during quantization — the "requested round mode"
    input of the paper's approximate layer. *)

type t =
  | Nearest_even   (** ties to even (IEEE default) *)
  | Nearest_away   (** ties away from zero (C's [round]) *)
  | Toward_zero    (** truncation *)
  | Stochastic     (** probability proportional to the fraction; the
                       draw is a deterministic hash of the input bits so
                       runs remain reproducible *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val apply : t -> float -> int
(** Round a finite float to an integer under the given mode. *)
