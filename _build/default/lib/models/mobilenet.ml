module Shape = Ax_tensor.Shape
module Graph = Ax_nn.Graph
module Conv_spec = Ax_nn.Conv_spec

let input_shape ~batch = Shape.make ~n:batch ~h:32 ~w:32 ~c:3

let build ?(seed = 2020) ?(classes = 10) ?(width = 16) ?(blocks = 4) () =
  if width <= 0 || blocks <= 0 then invalid_arg "Mobilenet.build: bad sizes";
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let relu ~name src = Graph.add b ~name Graph.Relu [ src ] in
  (* Stem: ordinary 3x3 convolution. *)
  let stem_filter =
    Weights.conv_filter ~seed ~name:"stem" ~kh:3 ~kw:3 ~in_c:3 ~out_c:width
  in
  let stem =
    Graph.add b ~name:"stem"
      (Graph.Conv2d
         { filter = stem_filter; bias = None; spec = Conv_spec.default })
      [ input ]
  in
  let tip = ref (relu ~name:"stem/relu" stem) in
  let tip_c = ref width in
  for block = 0 to blocks - 1 do
    let prefix = Printf.sprintf "block%d" block in
    let stride = if block mod 2 = 1 then 2 else 1 in
    let out_c = if stride = 2 then !tip_c * 2 else !tip_c in
    (* Depthwise 3x3 (channel multiplier 1). *)
    let dw_filter =
      Weights.conv_filter ~seed ~name:(prefix ^ "/dw") ~kh:3 ~kw:3
        ~in_c:!tip_c ~out_c:1
    in
    let dw =
      Graph.add b ~name:(prefix ^ "/dw")
        (Graph.Depthwise_conv2d
           {
             filter = dw_filter;
             bias = None;
             spec = Conv_spec.make ~stride ~padding:Conv_spec.Same ();
           })
        [ !tip ]
    in
    let dw = relu ~name:(prefix ^ "/dw_relu") dw in
    (* Pointwise 1x1 expansion. *)
    let pw_filter =
      Weights.conv_filter ~seed ~name:(prefix ^ "/pw") ~kh:1 ~kw:1
        ~in_c:!tip_c ~out_c
    in
    let pw =
      Graph.add b ~name:(prefix ^ "/pw")
        (Graph.Conv2d
           { filter = pw_filter; bias = None; spec = Conv_spec.default })
        [ dw ]
    in
    tip := relu ~name:(prefix ^ "/pw_relu") pw;
    tip_c := out_c
  done;
  let pooled = Graph.add b ~name:"avg_pool" Graph.Global_avg_pool [ !tip ] in
  let weights, bias =
    Weights.dense ~seed ~name:"fc" ~inputs:!tip_c ~outputs:classes
  in
  let logits =
    Graph.add b ~name:"fc" (Graph.Dense { weights; bias }) [ pooled ]
  in
  let probs = Graph.add b ~name:"softmax" Graph.Softmax [ logits ] in
  Graph.finalize b ~output:probs

let macs_per_image ?(width = 16) ?(blocks = 4) () =
  let g = build ~width ~blocks () in
  Graph.total_macs g ~input:(input_shape ~batch:1)
