(** A MobileNet-style compact CNN built from depthwise-separable
    convolutions — the workload that exercises the second approximate
    layer type (AxDepthwiseConv2D).

    Architecture (CIFAR-sized inputs): a 3x3 stem, then [blocks]
    depthwise-separable blocks (3x3 depthwise + 1x1 pointwise, ReLU
    after each), channel widths doubling at the stride-2 blocks, global
    average pooling and a dense softmax head. *)

val build :
  ?seed:int -> ?classes:int -> ?width:int -> ?blocks:int -> unit ->
  Ax_nn.Graph.t
(** [width] is the stem channel count (default 16); [blocks] the number
    of separable blocks (default 4, strides 1,2,1,2). *)

val input_shape : batch:int -> Ax_tensor.Shape.t

val macs_per_image : ?width:int -> ?blocks:int -> unit -> int
