lib/quant/round.ml: Float Format Int64
