lib/netlist/multipliers.ml: Adders Array Bus Circuit Lazy Opt Printf Sim
