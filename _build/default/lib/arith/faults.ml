let stuck_at ~bit ~value f a b =
  let p = f a b in
  if value then p lor (1 lsl bit) else p land lnot (1 lsl bit)

let bit_flip ~bit f a b = f a b lxor (1 lsl bit)

(* SplitMix64 finaliser over a mixed key: cheap, deterministic and well
   distributed, so per-(a,b,bit) decisions look independent. *)
let mix64 key =
  let open Int64 in
  let z = add key 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let random_flip ~probability ~seed ~bits f a b =
  if probability < 0. || probability > 1. then
    invalid_arg "Faults.random_flip: probability out of [0,1]";
  let p = ref (f a b) in
  let threshold = Int64.of_float (probability *. 9007199254740992.) in
  for bit = 0 to bits - 1 do
    let key =
      Int64.of_int
        ((seed * 0x3FFFFF) lxor (a lsl 24) lxor (b lsl 8) lxor bit)
    in
    let draw = Int64.shift_right_logical (mix64 key) 11 in
    if Int64.unsigned_compare draw threshold < 0 then p := !p lxor (1 lsl bit)
  done;
  !p
