lib/core/calibrate.mli: Ax_nn Ax_tensor
