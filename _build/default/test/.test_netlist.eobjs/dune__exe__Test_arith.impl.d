test/test_arith.ml: Alcotest Ax_arith Ax_netlist Filename Fun List Option Printf QCheck QCheck_alcotest String Sys
