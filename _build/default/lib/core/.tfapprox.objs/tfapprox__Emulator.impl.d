lib/core/emulator.ml: Array Ax_arith Ax_data Ax_gpusim Ax_nn Ax_tensor List
