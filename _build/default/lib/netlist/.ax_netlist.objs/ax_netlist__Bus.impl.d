lib/netlist/bus.ml: Array Circuit Printf
