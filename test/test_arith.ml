(* Tests for the behavioural multiplier library: signedness codec, the
   multiplier models themselves (against brute-force references), the
   128 kB LUT, error metrics and the registry catalogue. *)

module S = Ax_arith.Signedness
module Exact = Ax_arith.Exact
module Truncation = Ax_arith.Truncation
module Drum = Ax_arith.Drum
module Mitchell = Ax_arith.Mitchell
module Kulkarni = Ax_arith.Kulkarni
module Faults = Ax_arith.Faults
module Lut = Ax_arith.Lut
module Metrics = Ax_arith.Error_metrics
module Registry = Ax_arith.Registry

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- signedness --- *)

let test_code_roundtrip () =
  List.iter
    (fun s ->
      for v = S.min_value s to S.max_value s do
        check_int
          (Printf.sprintf "%s roundtrip %d" (S.to_string s) v)
          v
          (S.value_of_code s (S.code_of_value s v))
      done)
    [ S.Signed; S.Unsigned ]

let test_signed_codes_are_twos_complement () =
  check_int "-1 encodes as 0xff" 0xff (S.code_of_value S.Signed (-1));
  check_int "-128 encodes as 0x80" 0x80 (S.code_of_value S.Signed (-128));
  check_int "127 encodes as 0x7f" 0x7f (S.code_of_value S.Signed 127)

let test_out_of_range_rejected () =
  Alcotest.check_raises "256 unsigned"
    (Invalid_argument "Signedness.code_of_value: 256 out of unsigned range")
    (fun () -> ignore (S.code_of_value S.Unsigned 256));
  Alcotest.check_raises "-1 unsigned"
    (Invalid_argument "Signedness.code_of_value: -1 out of unsigned range")
    (fun () -> ignore (S.code_of_value S.Unsigned (-1)))

let test_clamp () =
  check_int "clamp 400 unsigned" 255 (S.clamp S.Unsigned 400);
  check_int "clamp -7 unsigned" 0 (S.clamp S.Unsigned (-7));
  check_int "clamp 200 signed" 127 (S.clamp S.Signed 200);
  check_int "clamp -200 signed" (-128) (S.clamp S.Signed (-200));
  check_int "clamp in-range" 42 (S.clamp S.Signed 42)

(* --- exact & sign-magnitude adaptor --- *)

let test_signed_of_unsigned_exact () =
  for a = -128 to 127 do
    for b = -128 to 127 do
      check_int
        (Printf.sprintf "sm %d*%d" a b)
        (a * b)
        (Exact.signed_of_unsigned (fun x y -> x * y) a b)
    done
  done

(* --- truncation matches gate level --- *)

let test_truncation_matches_netlist () =
  let netlist = Ax_netlist.Multipliers.truncated ~bits:8 ~cut:7 in
  let gate_fn = Ax_netlist.Multipliers.behavioural netlist in
  let model = Truncation.truncated ~bits:8 ~cut:7 in
  for a = 0 to 255 do
    for b = 0 to 255 do
      if gate_fn a b <> model a b then
        Alcotest.failf "trunc7 mismatch at %d*%d: netlist=%d model=%d" a b
          (gate_fn a b) (model a b)
    done
  done

let test_bam_matches_netlist () =
  let netlist = Ax_netlist.Multipliers.broken_array ~bits:8 ~hbl:2 ~vbl:6 in
  let gate_fn = Ax_netlist.Multipliers.behavioural netlist in
  let model = Truncation.broken_array ~bits:8 ~hbl:2 ~vbl:6 in
  for a = 0 to 255 do
    for b = 0 to 255 do
      if gate_fn a b <> model a b then
        Alcotest.failf "bam mismatch at %d*%d: netlist=%d model=%d" a b
          (gate_fn a b) (model a b)
    done
  done

(* --- DRUM --- *)

let test_drum_small_operands_exact () =
  (* Operands below 2^k are not approximated at all. *)
  for a = 0 to 7 do
    for b = 0 to 7 do
      check_int "drum3 small" (a * b) (Drum.multiply ~k:3 a b)
    done
  done

let test_drum_operand_window () =
  (* 0b11011010 with k=3 keeps bits 7..5 and sets bit 5: 0b11100000. *)
  check_int "window+unbias" 0b11100000
    (Drum.approximate_operand ~k:3 0b11011010);
  (* Already-short operands unchanged. *)
  check_int "short unchanged" 5 (Drum.approximate_operand ~k:3 5)

let test_drum_relative_error_bound () =
  (* DRUM(k) has relative operand error bounded by 2^-(k-1); product
     relative error is therefore below ~2*2^-(k-1) + small. *)
  let k = 4 in
  let bound = 2.2 *. (2. ** float_of_int (-(k - 1))) in
  for a = 1 to 255 do
    for b = 1 to 255 do
      let e = abs (Drum.multiply ~k a b - (a * b)) in
      let rel = float_of_int e /. float_of_int (a * b) in
      if rel > bound then
        Alcotest.failf "drum%d rel error %.3f > %.3f at %d*%d" k rel bound a b
    done
  done

(* --- Mitchell --- *)

let test_mitchell_exact_on_powers_of_two () =
  List.iter
    (fun (a, b) ->
      check_int (Printf.sprintf "mitchell %d*%d" a b) (a * b)
        (Mitchell.multiply a b))
    [ (1, 1); (2, 4); (16, 8); (128, 2); (64, 64); (0, 200); (200, 0) ]

let test_mitchell_always_underestimates () =
  for a = 1 to 255 do
    for b = 1 to 255 do
      let p = Mitchell.multiply a b in
      if p > a * b then
        Alcotest.failf "mitchell overestimates %d*%d: %d" a b p
    done
  done

let test_mitchell_worst_case_bound () =
  (* Classic result: Mitchell's error is at most ~11.1% of the product. *)
  for a = 1 to 255 do
    for b = 1 to 255 do
      let e = (a * b) - Mitchell.multiply a b in
      let rel = float_of_int e /. float_of_int (a * b) in
      if rel > 0.112 then
        Alcotest.failf "mitchell rel error %.4f at %d*%d" rel a b
    done
  done

(* --- Kulkarni --- *)

let test_kulkarni_2x2_table () =
  for a = 0 to 3 do
    for b = 0 to 3 do
      let want = if a = 3 && b = 3 then 7 else a * b in
      check_int (Printf.sprintf "k2x2 %d*%d" a b) want (Kulkarni.mul2x2 a b)
    done
  done

let test_kulkarni_errs_only_with_threes () =
  (* The 8x8 composition is exact unless some 2x2 sub-product hits 3*3. *)
  let has_three_pair a b =
    let rec go a b =
      if a < 4 && b < 4 then a = 3 && b = 3
      else
        let sub bits x = (x land ((1 lsl bits) - 1), x lsr bits) in
        let half = if a < 16 && b < 16 then 2 else if a < 256 && b < 256 then 4 else 8 in
        let al, ah = sub half a and bl, bh = sub half b in
        go al bl || go al bh || go ah bl || go ah bh
    in
    go a b
  in
  for a = 0 to 255 do
    for b = 0 to 255 do
      let approx = Kulkarni.multiply ~bits:8 a b in
      if approx = a * b && has_three_pair a b then ()
        (* fine: an erring block may still cancel nothing — exactness with
           a 3x3 pair cannot happen, assert below *)
      else if approx <> a * b && not (has_three_pair a b) then
        Alcotest.failf "kulkarni errs without a 3*3 pair at %d*%d" a b
    done
  done;
  (* And it always under-estimates (each faulty block loses 2). *)
  for a = 0 to 255 do
    for b = 0 to 255 do
      if Kulkarni.multiply ~bits:8 a b > a * b then
        Alcotest.failf "kulkarni overestimates at %d*%d" a b
    done
  done

(* --- faults --- *)

let test_stuck_at_and_flip () =
  let f = Faults.stuck_at ~bit:0 ~value:true Exact.mul8u in
  check_int "stuck-at-1 forces odd" 13 (f 3 4);
  let g = Faults.bit_flip ~bit:4 Exact.mul8u in
  check_int "flip bit 4" (12 lxor 16) (g 3 4)

let test_random_flip_deterministic () =
  let f = Faults.random_flip ~probability:0.05 ~seed:7 ~bits:16 Exact.mul8u in
  check_int "same inputs, same faults" (f 123 231) (f 123 231);
  let g = Faults.random_flip ~probability:0.05 ~seed:8 ~bits:16 Exact.mul8u in
  check_bool "different seed differs somewhere" true
    (List.exists
       (fun (a, b) -> f a b <> g a b)
       [ (1, 1); (50, 99); (123, 231); (255, 255); (17, 89); (200, 3) ])

let test_random_flip_probability_zero_is_exact () =
  let f = Faults.random_flip ~probability:0. ~seed:1 ~bits:16 Exact.mul8u in
  for a = 0 to 255 do
    check_int "p=0 exact" (a * a) (f a a)
  done

(* --- LUT --- *)

let test_lut_is_128kb () =
  check_int "entries" 65536 Lut.entries;
  check_int "payload bytes" 131072 Lut.size_bytes

let test_lut_reproduces_function () =
  let lut = Lut.exact S.Unsigned in
  for a = 0 to 255 do
    for b = 0 to 255 do
      check_int "lut(a,b)=a*b" (a * b) (Lut.lookup_value lut a b)
    done
  done

let test_lut_signed_reproduces_function () =
  let lut = Lut.exact S.Signed in
  for a = -128 to 127 do
    for b = -128 to 127 do
      if Lut.lookup_value lut a b <> a * b then
        Alcotest.failf "signed lut %d*%d: %d" a b (Lut.lookup_value lut a b)
    done
  done

let test_lut_code_and_value_paths_agree () =
  let lut = Lut.exact S.Signed in
  for a = -128 to 127 do
    let ca = S.code_of_value S.Signed a in
    check_int "code path" (Lut.lookup_value lut a (-3))
      (Lut.lookup_code lut ca (S.code_of_value S.Signed (-3)))
  done

let test_lut_saturation () =
  (* A function overflowing 16 bits must saturate, not wrap. *)
  let lut = Lut.make ~signedness:S.Unsigned (fun _ _ -> 1_000_000) in
  check_int "unsigned saturates to 65535" 65535 (Lut.lookup_value lut 1 1);
  let lut = Lut.make ~signedness:S.Signed (fun _ _ -> -1_000_000) in
  check_int "signed saturates to -32768" (-32768) (Lut.lookup_value lut 1 1)

let test_lut_save_load_roundtrip () =
  let entry = Registry.find_exn "mul8u_trunc8" in
  let lut = Registry.lut entry in
  let path = Filename.temp_file "axlut" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lut.save path lut;
      let loaded = Lut.load path in
      check_bool "roundtrip equal" true (Lut.equal lut loaded);
      (* File is header + 128 kB payload + CRC-32 trailer. *)
      let ic = open_in_bin path in
      let size = in_channel_length ic in
      close_in ic;
      check_int "file size" Lut.serialized_bytes size;
      check_int "file size constant" (6 + 1 + 131072 + 4) size)

let test_lut_load_rejects_garbage () =
  let path = Filename.temp_file "axlut" ".bin" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "NOTALUT-and-some-padding";
      close_out oc;
      (match Lut.load_result path with
      | Error (Ax_arith.Load_error.Bad_magic _) -> ()
      | Error e ->
        Alcotest.failf "expected Bad_magic, got %s"
          (Ax_arith.Load_error.to_string e)
      | Ok _ -> Alcotest.fail "garbage accepted");
      match Lut.load path with
      | exception Ax_arith.Load_error.Error (Ax_arith.Load_error.Bad_magic _)
        -> ()
      | exception e -> Alcotest.failf "wrong exception %s" (Printexc.to_string e)
      | _ -> Alcotest.fail "garbage accepted by raising API")

let test_lut_load_detects_bit_flip () =
  let lut = Registry.lut (Registry.find_exn "mul8u_trunc8") in
  let bytes = Lut.to_bytes lut in
  (* Flip one payload bit: the CRC must catch it. *)
  let pos = 7 + 1234 in
  Bytes.set bytes pos (Char.chr (Char.code (Bytes.get bytes pos) lxor 0x10));
  match Lut.of_bytes_result bytes ~pos:0 with
  | Error (Ax_arith.Load_error.Bad_checksum _) -> ()
  | Error e ->
    Alcotest.failf "expected Bad_checksum, got %s"
      (Ax_arith.Load_error.to_string e)
  | Ok _ -> Alcotest.fail "corrupted table accepted"

(* --- error metrics --- *)

let test_metrics_exact_multiplier () =
  let m = Metrics.compute S.Unsigned Exact.mul8u in
  check_bool "exact is exact" true (Metrics.is_exact m);
  Alcotest.(check (float 1e-12)) "mae 0" 0. m.Metrics.mae;
  Alcotest.(check (float 1e-12)) "ep 0" 0. m.Metrics.error_probability

let test_metrics_truncation_underestimates () =
  let m = Metrics.compute S.Unsigned (Truncation.truncated ~bits:8 ~cut:8) in
  check_bool "negative bias" true (m.Metrics.bias < 0.);
  check_bool "nonzero mae" true (m.Metrics.mae > 0.);
  check_bool "wce positive" true (m.Metrics.wce > 0);
  check_bool "mae <= wce" true (m.Metrics.mae <= float_of_int m.Metrics.wce)

let test_metrics_monotone_in_cut () =
  let mae cut =
    (Metrics.compute S.Unsigned (Truncation.truncated ~bits:8 ~cut)).Metrics.mae
  in
  check_bool "mae grows with cut" true (mae 4 < mae 6 && mae 6 < mae 8)

(* --- registry --- *)

let test_registry_has_core_entries () =
  List.iter
    (fun n ->
      check_bool (Printf.sprintf "has %s" n) true
        (Option.is_some (Registry.find n)))
    [
      "mul8u_exact"; "mul8s_exact"; "mul8u_trunc8"; "mul8u_drum4";
      "mul8u_mitchell"; "mul8u_kulkarni"; "mul8u_nl_exact"; "mul8s_nl_exact";
    ]

let test_registry_names_unique () =
  let names = Registry.names () in
  let sorted = List.sort_uniq compare names in
  check_int "no duplicate names" (List.length names) (List.length sorted)

let test_registry_find_exn_message () =
  match Registry.find_exn "no_such_multiplier" with
  | exception Failure msg ->
    check_bool "message mentions the name" true
      (String.length msg > 0
      && String.sub msg 0 17 = "Registry.find_exn")
  | _ -> Alcotest.fail "expected Failure"

let test_registry_netlist_matches_behavioural () =
  let nl = Registry.find_exn "mul8u_nl_exact" in
  for a = 0 to 255 do
    let b = (a * 131 + 7) land 255 in
    check_int "netlist exact = a*b" (a * b) (nl.Registry.multiply a b)
  done

let test_registry_signed_netlist () =
  let nl = Registry.find_exn "mul8s_nl_exact" in
  for a = -128 to 127 do
    let b = ((a * 37) mod 128 + 128) mod 128 - 64 in
    check_int "BW netlist signed" (a * b) (nl.Registry.multiply a b)
  done

let test_registry_lut_cache () =
  let e = Registry.find_exn "mul8u_trunc6" in
  let l1 = Registry.lut e and l2 = Registry.lut e in
  check_bool "same physical table" true (l1 == l2)

let test_register_user_entry () =
  let entry =
    {
      Registry.name = "mul8u_test_registered";
      description = "unit-test entry";
      signedness = S.Unsigned;
      provenance = Registry.Behavioural;
      multiply = (fun a b -> a * b);
      netlist = None;
    }
  in
  Registry.register entry;
  check_bool "findable after register" true
    (Option.is_some (Registry.find "mul8u_test_registered"));
  check_int "usable via lut" 42
    (Lut.lookup_value (Registry.lut (Registry.find_exn "mul8u_test_registered")) 6 7);
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Registry.register: duplicate name mul8u_test_registered")
    (fun () -> Registry.register entry)

let test_exact_for () =
  check_bool "unsigned" true
    ((Registry.exact_for S.Unsigned).Registry.name = "mul8u_exact");
  check_bool "signed" true
    ((Registry.exact_for S.Signed).Registry.name = "mul8s_exact")

(* --- qcheck properties --- *)

let signed_pair =
  QCheck.(pair (int_range (-128) 127) (int_range (-128) 127))

let unsigned_pair = QCheck.(pair (int_bound 255) (int_bound 255))

let prop_all_unsigned_entries_in_product_range =
  QCheck.Test.make ~name:"every unsigned entry stays in [0, 65535+eps]"
    ~count:500 unsigned_pair (fun (a, b) ->
      List.for_all
        (fun e ->
          match e.Registry.signedness with
          | S.Unsigned ->
            let lut = Registry.lut e in
            let p = Lut.lookup_value lut a b in
            p >= 0 && p <= 65535
          | S.Signed -> true)
        (Registry.all ()))

let prop_signed_entries_respect_sign_symmetry =
  QCheck.Test.make
    ~name:"sign-magnitude entries are odd in each argument" ~count:500
    signed_pair (fun (a, b) ->
      let e = Registry.find_exn "mul8s_drum4" in
      if a = -128 || b = -128 then true
      else e.Registry.multiply (-a) b = -e.Registry.multiply a b)

let prop_lut_agrees_with_function =
  QCheck.Test.make ~name:"LUT lookup equals direct evaluation" ~count:500
    unsigned_pair (fun (a, b) ->
      let e = Registry.find_exn "mul8u_drum3" in
      Lut.lookup_value (Registry.lut e) a b = e.Registry.multiply a b)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_all_unsigned_entries_in_product_range;
        prop_signed_entries_respect_sign_symmetry;
        prop_lut_agrees_with_function;
      ]
  in
  Alcotest.run "ax_arith"
    [
      ( "signedness",
        [
          Alcotest.test_case "code roundtrip" `Quick test_code_roundtrip;
          Alcotest.test_case "two's complement codes" `Quick
            test_signed_codes_are_twos_complement;
          Alcotest.test_case "out of range rejected" `Quick
            test_out_of_range_rejected;
          Alcotest.test_case "clamp" `Quick test_clamp;
        ] );
      ( "exact",
        [
          Alcotest.test_case "sign-magnitude adaptor" `Slow
            test_signed_of_unsigned_exact;
        ] );
      ( "truncation",
        [
          Alcotest.test_case "matches netlist (trunc)" `Slow
            test_truncation_matches_netlist;
          Alcotest.test_case "matches netlist (bam)" `Slow
            test_bam_matches_netlist;
        ] );
      ( "drum",
        [
          Alcotest.test_case "small operands exact" `Quick
            test_drum_small_operands_exact;
          Alcotest.test_case "operand window" `Quick test_drum_operand_window;
          Alcotest.test_case "relative error bound" `Slow
            test_drum_relative_error_bound;
        ] );
      ( "mitchell",
        [
          Alcotest.test_case "exact on powers of two" `Quick
            test_mitchell_exact_on_powers_of_two;
          Alcotest.test_case "always underestimates" `Slow
            test_mitchell_always_underestimates;
          Alcotest.test_case "worst-case bound" `Slow
            test_mitchell_worst_case_bound;
        ] );
      ( "kulkarni",
        [
          Alcotest.test_case "2x2 table" `Quick test_kulkarni_2x2_table;
          Alcotest.test_case "errs only with 3*3 blocks" `Slow
            test_kulkarni_errs_only_with_threes;
        ] );
      ( "faults",
        [
          Alcotest.test_case "stuck-at and flip" `Quick test_stuck_at_and_flip;
          Alcotest.test_case "random flip deterministic" `Quick
            test_random_flip_deterministic;
          Alcotest.test_case "p=0 exact" `Quick
            test_random_flip_probability_zero_is_exact;
        ] );
      ( "lut",
        [
          Alcotest.test_case "is 128 kB" `Quick test_lut_is_128kb;
          Alcotest.test_case "reproduces unsigned function" `Slow
            test_lut_reproduces_function;
          Alcotest.test_case "reproduces signed function" `Slow
            test_lut_signed_reproduces_function;
          Alcotest.test_case "code/value paths agree" `Quick
            test_lut_code_and_value_paths_agree;
          Alcotest.test_case "saturation" `Quick test_lut_saturation;
          Alcotest.test_case "save/load roundtrip" `Quick
            test_lut_save_load_roundtrip;
          Alcotest.test_case "load rejects garbage" `Quick
            test_lut_load_rejects_garbage;
          Alcotest.test_case "load detects bit flip" `Quick
            test_lut_load_detects_bit_flip;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "exact multiplier" `Quick
            test_metrics_exact_multiplier;
          Alcotest.test_case "truncation underestimates" `Quick
            test_metrics_truncation_underestimates;
          Alcotest.test_case "mae monotone in cut" `Quick
            test_metrics_monotone_in_cut;
        ] );
      ( "registry",
        [
          Alcotest.test_case "core entries present" `Quick
            test_registry_has_core_entries;
          Alcotest.test_case "names unique" `Quick test_registry_names_unique;
          Alcotest.test_case "find_exn message" `Quick
            test_registry_find_exn_message;
          Alcotest.test_case "netlist matches behavioural" `Slow
            test_registry_netlist_matches_behavioural;
          Alcotest.test_case "signed netlist" `Slow
            test_registry_signed_netlist;
          Alcotest.test_case "lut cache" `Quick test_registry_lut_cache;
          Alcotest.test_case "register user entry" `Quick
            test_register_user_entry;
          Alcotest.test_case "exact_for" `Quick test_exact_for;
        ] );
      ("properties", qsuite);
    ]
