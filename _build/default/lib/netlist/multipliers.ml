type t = {
  circuit : Circuit.t;
  width_a : int;
  width_b : int;
  product_bits : int;
  signed : bool;
}

let partial_product_columns c a b ~bits ~keep =
  let columns = Array.make (2 * bits) [] in
  for i = 0 to bits - 1 do
    for j = 0 to bits - 1 do
      if keep i j then begin
        let pp = Circuit.and_ c a.(i) b.(j) in
        columns.(i + j) <- pp :: columns.(i + j)
      end
    done
  done;
  columns

let pruned ~bits ~keep ~name =
  let c = Circuit.create ~name () in
  let a = Bus.input c "a" bits in
  let b = Bus.input c "b" bits in
  let columns = partial_product_columns c a b ~bits ~keep in
  let product = Adders.carry_save_reduce c ~width:(2 * bits) columns in
  Bus.output c "p" product;
  (* The compression tree discards its final carry-out; strip that dead
     cone so the hardware metrics reflect logic a synthesiser would
     actually emit. *)
  let c = Opt.strip_dead c in
  { circuit = c; width_a = bits; width_b = bits;
    product_bits = 2 * bits; signed = false }

let unsigned_array ~bits =
  pruned ~bits ~keep:(fun _ _ -> true)
    ~name:(Printf.sprintf "mul%du_exact" bits)

let truncated ~bits ~cut =
  if cut < 0 || cut > 2 * bits then
    invalid_arg "Multipliers.truncated: cut out of range";
  pruned ~bits
    ~keep:(fun i j -> i + j >= cut)
    ~name:(Printf.sprintf "mul%du_trunc%d" bits cut)

let broken_array ~bits ~hbl ~vbl =
  if hbl < 0 || hbl > bits then
    invalid_arg "Multipliers.broken_array: hbl out of range";
  if vbl < 0 || vbl > 2 * bits then
    invalid_arg "Multipliers.broken_array: vbl out of range";
  let m =
    pruned ~bits
      ~keep:(fun i j -> i + j >= vbl && j >= hbl)
      ~name:(Printf.sprintf "mul%du_bam_h%d_v%d" bits hbl vbl)
  in
  m

(* Modified Baugh-Wooley: invert the partial products involving exactly
   one sign bit, add 1 at columns [bits] and [2*bits-1]. *)
let baugh_wooley_signed ~bits =
  let c = Circuit.create ~name:(Printf.sprintf "mul%ds_exact" bits) () in
  let a = Bus.input c "a" bits in
  let b = Bus.input c "b" bits in
  let columns = Array.make (2 * bits) [] in
  let msb = bits - 1 in
  for i = 0 to bits - 1 do
    for j = 0 to bits - 1 do
      let pp = Circuit.and_ c a.(i) b.(j) in
      let pp =
        if (i = msb) <> (j = msb) then Circuit.not_ c pp else pp
      in
      columns.(i + j) <- pp :: columns.(i + j)
    done
  done;
  let one = Circuit.const c true in
  columns.(bits) <- one :: columns.(bits);
  columns.(2 * bits - 1) <- one :: columns.(2 * bits - 1);
  let product = Adders.carry_save_reduce c ~width:(2 * bits) columns in
  Bus.output c "p" product;
  let c = Opt.strip_dead c in
  { circuit = c; width_a = bits; width_b = bits;
    product_bits = 2 * bits; signed = true }

let behavioural m =
  let table =
    lazy (Sim.truth_table_2x m.circuit ~width_a:m.width_a ~width_b:m.width_b)
  in
  fun a b -> (Lazy.force table) a b
