(** CRC-32 integrity checks for the binary artefact formats.

    The LUT is literal hardware state — 128 kB of texture memory — and
    the model file embeds it verbatim, so artefact corruption (a flipped
    bit on disk, a truncated download) must be {e detected} on load
    rather than silently turned into garbage inference.  Both "AXLUT1"
    and "AXMDL1" append the CRC-32 (IEEE 802.3) of everything that
    precedes it, little-endian. *)

val of_bytes : Bytes.t -> pos:int -> len:int -> int
(** CRC-32 of [len] bytes starting at [pos]; the result is in
    [0, 0xFFFFFFFF].  Raises [Invalid_argument] when the range exceeds
    the buffer. *)

val of_string : string -> int

val append_u32_le : Buffer.t -> int -> unit
(** Append a 32-bit value little-endian (the artefact trailer layout). *)

val write_u32_le : Bytes.t -> pos:int -> int -> unit
val read_u32_le : Bytes.t -> pos:int -> int
