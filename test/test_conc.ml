(* The concurrency correctness layer, pinned:

   - [Vclock]: vector-clock algebra and the FastTrack cell state
     machine (ordered accesses stay silent, unordered ones race);
   - record-mode discipline: lock-order cycles (positive AND negative
     golden), relock, unlock of an unheld mutex, bare critical
     sections, declared-rank violations, [with_lock] exception safety,
     and the race detector over [Race] cells (racy vs locked);
   - [Explore]: the pre-fix PR-8 [run_slots] coordinator race is
     found, the fixed protocol explores clean, opposite-order lock
     acquisition deadlocks, violations replay deterministically from
     their schedule, and schedule strings round-trip;
   - a qcheck property: the real admission queue preserves per-model
     FIFO and never exceeds capacity under every explored bounded
     interleaving of submitters and a batcher;
   - [check --suite concurrency] end-to-end: every pool-side and
     serve-side unit reports zero error findings — the seeded-defect
     self-tests inside the suite fail it (via conc/blind-detector) if
     a detector ever goes blind, so this one assertion also pins
     detector liveness. *)

module Conc = Ax_conc.Conc
module Cmutex = Ax_conc.Mutex
module Ccond = Ax_conc.Condition
module Race = Ax_conc.Race
module Vclock = Ax_conc.Vclock
module Explore = Ax_conc.Explore
module D = Ax_analysis.Diagnostic
module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Admission = Ax_serve.Admission
module Store = Ax_serve.Store

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run [f] in record mode on a clean slate; return collected findings
   with mode and state restored either way. *)
let record f =
  let saved = Conc.mode () in
  Conc.reset ();
  Conc.set_mode Conc.Record;
  Fun.protect
    ~finally:(fun () ->
      Conc.set_mode saved;
      Conc.reset ())
    (fun () ->
      f ();
      Conc.collect ())

let has code findings =
  List.exists (fun (f : Conc.finding) -> f.Conc.code = code) findings

(* --- Vclock --- *)

let test_vclock_algebra () =
  let c = Vclock.empty in
  check_int "empty reads 0" 0 (Vclock.get c 7);
  let c1 = Vclock.tick (Vclock.tick c 7) 7 in
  check_int "tick twice" 2 (Vclock.get c1 7);
  let c2 = Vclock.tick c 9 in
  let j = Vclock.join c1 c2 in
  check_int "join keeps 7" 2 (Vclock.get j 7);
  check_int "join keeps 9" 1 (Vclock.get j 9)

let test_vclock_fasttrack () =
  (* unordered write-write: second writer's clock does not include the
     first writer's epoch *)
  let cell = Vclock.cell () in
  let c1 = Vclock.tick Vclock.empty 1 in
  check_bool "first write silent" true
    (Vclock.access cell ~tid:1 ~clock:c1 Vclock.Write = None);
  let c2 = Vclock.tick Vclock.empty 2 in
  check_bool "unordered write races" true
    (Vclock.access cell ~tid:2 ~clock:c2 Vclock.Write <> None);
  (* ordered via join: no race *)
  let cell2 = Vclock.cell () in
  let c1 = Vclock.tick Vclock.empty 1 in
  ignore (Vclock.access cell2 ~tid:1 ~clock:c1 Vclock.Write);
  let c2 = Vclock.join (Vclock.tick Vclock.empty 2) c1 in
  check_bool "ordered write silent" true
    (Vclock.access cell2 ~tid:2 ~clock:c2 Vclock.Write = None)

(* --- record-mode discipline goldens --- *)

let test_lock_cycle_positive () =
  let findings =
    record (fun () ->
        let a = Cmutex.create ~name:"t.A" () in
        let b = Cmutex.create ~name:"t.B" () in
        Cmutex.with_lock a (fun () -> Cmutex.with_lock b (fun () -> ()));
        Cmutex.with_lock b (fun () -> Cmutex.with_lock a (fun () -> ())))
  in
  check_bool "A->B / B->A is a cycle" true (has "lock-cycle" findings)

let test_lock_cycle_negative () =
  let findings =
    record (fun () ->
        let a = Cmutex.create ~name:"t.A" () in
        let b = Cmutex.create ~name:"t.B" () in
        for _ = 1 to 3 do
          Cmutex.with_lock a (fun () -> Cmutex.with_lock b (fun () -> ()))
        done)
  in
  check_bool "consistent A->B is not a cycle" false (has "lock-cycle" findings);
  check_bool "and nothing else" true (findings = [])

let test_relock () =
  let findings =
    record (fun () ->
        let m = Cmutex.create ~name:"t.relock" () in
        Cmutex.lock m;
        (* the shim reports first; the real errorcheck mutex then raises *)
        (try Cmutex.lock m with Sys_error _ -> ());
        Cmutex.unlock m)
  in
  check_bool "relock flagged" true (has "relock" findings)

let test_unlock_unheld () =
  let findings =
    record (fun () ->
        let m = Cmutex.create ~name:"t.unheld" () in
        try Cmutex.unlock m with Sys_error _ -> ())
  in
  check_bool "unlock of unheld mutex flagged" true
    (has "unlock-unheld" findings)

let test_bare_section () =
  let findings =
    record (fun () ->
        let m = Cmutex.create ~name:"t.bare" () in
        Cmutex.lock m;
        Cmutex.unlock m)
  in
  check_bool "bare lock/unlock flagged" true (has "bare-section" findings);
  let clean =
    record (fun () ->
        let m = Cmutex.create ~name:"t.protected" () in
        Cmutex.with_lock m (fun () -> ()))
  in
  check_bool "with_lock is not bare" false (has "bare-section" clean)

let test_rank_violation () =
  let findings =
    record (fun () ->
        let hi = Cmutex.create ~order:20 ~name:"t.rank-hi" () in
        let lo = Cmutex.create ~order:10 ~name:"t.rank-lo" () in
        Cmutex.with_lock hi (fun () -> Cmutex.with_lock lo (fun () -> ())))
  in
  check_bool "descending ranks flagged" true (has "rank-violation" findings);
  let clean =
    record (fun () ->
        let hi = Cmutex.create ~order:20 ~name:"t.rank-hi" () in
        let lo = Cmutex.create ~order:10 ~name:"t.rank-lo" () in
        Cmutex.with_lock lo (fun () -> Cmutex.with_lock hi (fun () -> ())))
  in
  check_bool "ascending ranks clean" false (has "rank-violation" clean)

let test_with_lock_exception_safety () =
  let m = Cmutex.create ~name:"t.exn" () in
  let findings =
    record (fun () ->
        (try Cmutex.with_lock m (fun () -> failwith "boom")
         with Failure _ -> ());
        (* the lock was released on the exception path: this would
           self-deadlock otherwise *)
        Cmutex.with_lock m (fun () -> ()))
  in
  check_bool "no findings after exception" true (findings = [])

let test_race_detected () =
  let findings =
    record (fun () ->
        let cell = Race.cell "t.counter" in
        let n = ref 0 in
        let bump () =
          for _ = 1 to 8 do
            Race.write cell;
            incr n
          done
        in
        let t1 = Thread.create bump () in
        let t2 = Thread.create bump () in
        Thread.join t1;
        Thread.join t2)
  in
  check_bool "unsynchronized writes race" true (has "data-race" findings)

let test_race_absent_when_locked () =
  let findings =
    record (fun () ->
        let cell = Race.cell "t.counter" in
        let m = Cmutex.create ~name:"t.counter-lock" () in
        let n = ref 0 in
        let bump () =
          for _ = 1 to 8 do
            Cmutex.with_lock m (fun () ->
                Race.write cell;
                incr n)
          done
        in
        let t1 = Thread.create bump () in
        let t2 = Thread.create bump () in
        Thread.join t1;
        Thread.join t2)
  in
  check_bool "lock-ordered writes do not race" false (has "data-race" findings)

let test_off_mode_is_silent () =
  let saved = Conc.mode () in
  Conc.reset ();
  Conc.set_mode Conc.Off;
  Fun.protect
    ~finally:(fun () ->
      Conc.set_mode saved;
      Conc.reset ())
    (fun () ->
      let m = Cmutex.create ~name:"t.off" () in
      Cmutex.lock m;
      Cmutex.unlock m;
      check_bool "off mode records nothing" true (Conc.collect () = []);
      check_int "off mode counts nothing" 0 (Conc.ops ()))

(* --- Explore: the pinned PR-8 run_slots regression --- *)

let prefix_coordinator () =
  let active = Explore.var ~track:false ~name:"pool.active" false in
  let coordinators = ref 0 in
  let body () =
    if not (Explore.get active) then begin
      Explore.set active true;
      incr coordinators;
      Explore.check (!coordinators <= 1) "two coordinators";
      Explore.set active false;
      decr coordinators
    end
  in
  [ body; body ]

let fixed_coordinator () =
  let m = Cmutex.create ~name:"pool.mutex-model" () in
  let active = Explore.var ~track:false ~name:"pool.active" false in
  let coordinators = ref 0 in
  let body () =
    let got =
      Cmutex.with_lock m (fun () ->
          if not (Explore.get active) then begin
            Explore.set active true;
            true
          end
          else false)
    in
    if got then begin
      incr coordinators;
      Explore.check (!coordinators <= 1) "two coordinators";
      Explore.yield ();
      decr coordinators;
      Cmutex.with_lock m (fun () -> Explore.set active false)
    end
  in
  [ body; body ]

let test_prefix_run_slots_race_found () =
  match Explore.explore prefix_coordinator with
  | Explore.Violation _ -> ()
  | Explore.No_violation _ ->
    Alcotest.fail "pre-fix run_slots coordinator race not found"

let test_fixed_run_slots_clean () =
  match Explore.explore fixed_coordinator with
  | Explore.No_violation { complete; _ } ->
    check_bool "state space exhausted" true complete
  | Explore.Violation { message; _ } ->
    Alcotest.fail ("fixed coordinator protocol violated: " ^ message)

let test_explore_deadlock () =
  let scenario () =
    let a = Cmutex.create ~name:"x.A" () in
    let b = Cmutex.create ~name:"x.B" () in
    let t1 () = Cmutex.with_lock a (fun () -> Cmutex.with_lock b ignore) in
    let t2 () = Cmutex.with_lock b (fun () -> Cmutex.with_lock a ignore) in
    [ t1; t2 ]
  in
  match Explore.explore scenario with
  | Explore.Violation { message; _ } ->
    check_bool "reported as deadlock" true
      (String.length message >= 8 && String.sub message 0 8 = "deadlock")
  | Explore.No_violation _ ->
    Alcotest.fail "opposite-order lock acquisition did not deadlock"

let test_replay_reproduces () =
  match Explore.explore prefix_coordinator with
  | Explore.No_violation _ -> Alcotest.fail "no violation to replay"
  | Explore.Violation { schedule; message } -> (
    match Explore.replay ~schedule prefix_coordinator with
    | Explore.Violation { message = m2; _ } ->
      Alcotest.(check string) "same violation" message m2
    | Explore.No_violation _ ->
      Alcotest.fail "replay of a violating schedule found no violation")

let test_schedule_roundtrip () =
  List.iter
    (fun s ->
      Alcotest.(check (list int))
        "round-trip" s
        (Explore.schedule_of_string (Explore.schedule_to_string s)))
    [ []; [ 0 ]; [ 0; 1; 2; 1; 0 ] ]

let test_explore_deterministic () =
  let once () = Explore.outcome_to_string (Explore.explore prefix_coordinator) in
  Alcotest.(check string) "same outcome twice" (once ()) (once ())

(* --- qcheck: admission FIFO + capacity under explored interleavings --- *)

let job ~model ~seq =
  {
    Admission.model;
    input = Tensor.create (Shape.make ~n:1 ~h:1 ~w:1 ~c:1);
    images = seq;
    enqueued = 0.;
    deadline = None;
    deliver = ignore;
  }

(* One submitter per model plus a batcher, under bounded-preemption
   exploration; the after-check asserts per-model FIFO, the capacity
   bound on max_depth, and job conservation. *)
let admission_property capacity jobs_a jobs_b =
  let after_hook = ref (fun () -> ()) in
  let outcome =
    Explore.explore ~max_preemptions:2 ~max_schedules:300
      ~after:(fun () -> !after_hook ())
      (fun () ->
        let adm =
          Admission.create ~now:(fun () -> 0.) ~capacity ~max_batch:2 ()
        in
        let batched = ref [] in
        let accepted = ref 0 in
        let submitter m n () =
          for i = 1 to n do
            match Admission.submit adm (job ~model:m ~seq:i) with
            | Ok () -> incr accepted
            | Error _ -> ()
          done
        in
        let batcher () =
          match Admission.wait_ready adm with
          | `Closed -> ()
          | `Ready -> (
            match Admission.form_batch adm with
            | `Empty -> ()
            | `Batch (model, jobs) ->
              batched :=
                !batched
                @ List.map (fun (j : Admission.job) -> (model, j.images)) jobs)
        in
        (after_hook :=
           fun () ->
             Explore.check
               ((Admission.stats adm).Admission.max_depth <= capacity)
               "capacity exceeded";
             let seen = Hashtbl.create 4 in
             List.iter
               (fun (m, seq) ->
                 let last =
                   match Hashtbl.find_opt seen m with Some s -> s | None -> 0
                 in
                 Explore.check (seq > last) "FIFO order broken";
                 Hashtbl.replace seen m seq)
               !batched;
             Explore.check
               (List.length !batched + Admission.depth adm = !accepted)
               "jobs lost");
        [ submitter "a" jobs_a; submitter "b" jobs_b; batcher ])
  in
  match outcome with
  | Explore.No_violation _ -> true
  | Explore.Violation { message; schedule } ->
    QCheck.Test.fail_reportf "admission violation: %s under %s" message
      (Explore.schedule_to_string schedule)

let qcheck_admission =
  QCheck.Test.make ~name:"admission FIFO/capacity under exploration" ~count:25
    QCheck.(
      triple (int_range 1 3) (int_range 1 3) (int_range 0 2))
    (fun (capacity, jobs_a, jobs_b) ->
      admission_property capacity jobs_a jobs_b)

(* --- store hit counters --- *)

let test_store_hit_counts () =
  let store = Store.load [ Store.parse_spec "m=test_conc_missing.axmdl" ] in
  check_bool "entry addressable" true (Store.find store "m" <> None);
  check_bool "absent is absent" true (Store.find store "absent" = None);
  ignore (Store.find store "m");
  Alcotest.(check (list (pair string int)))
    "two hits counted" [ ("m", 2) ] (Store.hit_counts store)

(* --- the full suite reports zero errors --- *)

let test_suite_zero_errors () =
  List.iter
    (fun (name, ds) ->
      check_int (name ^ " has no error findings") 0 (List.length (D.errors ds)))
    (Ax_analysis.Conc_check.suite () @ Ax_serve.Conc_scenarios.suite ())

let () =
  Alcotest.run "conc"
    [
      ( "vclock",
        [
          Alcotest.test_case "algebra" `Quick test_vclock_algebra;
          Alcotest.test_case "fasttrack" `Quick test_vclock_fasttrack;
        ] );
      ( "discipline",
        [
          Alcotest.test_case "lock cycle positive" `Quick
            test_lock_cycle_positive;
          Alcotest.test_case "lock cycle negative" `Quick
            test_lock_cycle_negative;
          Alcotest.test_case "relock" `Quick test_relock;
          Alcotest.test_case "unlock unheld" `Quick test_unlock_unheld;
          Alcotest.test_case "bare section" `Quick test_bare_section;
          Alcotest.test_case "rank violation" `Quick test_rank_violation;
          Alcotest.test_case "with_lock exception safety" `Quick
            test_with_lock_exception_safety;
          Alcotest.test_case "race detected" `Quick test_race_detected;
          Alcotest.test_case "race absent when locked" `Quick
            test_race_absent_when_locked;
          Alcotest.test_case "off mode silent" `Quick test_off_mode_is_silent;
        ] );
      ( "explore",
        [
          Alcotest.test_case "pre-fix run_slots race found" `Quick
            test_prefix_run_slots_race_found;
          Alcotest.test_case "fixed run_slots clean" `Quick
            test_fixed_run_slots_clean;
          Alcotest.test_case "deadlock detected" `Quick test_explore_deadlock;
          Alcotest.test_case "replay reproduces" `Quick test_replay_reproduces;
          Alcotest.test_case "schedule round-trip" `Quick
            test_schedule_roundtrip;
          Alcotest.test_case "deterministic" `Quick test_explore_deterministic;
        ] );
      ( "admission",
        [ QCheck_alcotest.to_alcotest qcheck_admission ] );
      ( "store",
        [ Alcotest.test_case "hit counts" `Quick test_store_hit_counts ] );
      ( "suite",
        [
          Alcotest.test_case "check --suite concurrency is clean" `Slow
            test_suite_zero_errors;
        ] );
    ]
