(** Analytical execution-time model of the CUDA kernels of Sec. III.

    For each convolution layer the model counts exactly the work the
    real kernels perform — element-wise quantization traffic, patch
    matrix construction, tiled-GEMM tile traffic, one LUT fetch per MAC
    through the texture cache, accumulator arithmetic, dequantization
    with the Eq. 4 corrections, kernel launches, and host-device
    transfers — and converts the counts to seconds using the
    {!Device.t} throughput constants.  Phase attribution follows Fig. 2:
    initialization / quantization / LUT lookups / rest.

    The model's absolute numbers are GTX-1080-class estimates, not
    measurements; EXPERIMENTS.md compares their *shape* against
    Table I. *)

type conv_workload = {
  label : string;          (** layer name (graph node name or "conv") *)
  images : int;            (** dataset size the layer processes *)
  rows_per_image : int;    (** output positions per image *)
  taps : int;              (** reduction length kh*kw*in_c *)
  out_c : int;
  in_elems_per_image : int;
  out_elems_per_image : int;
  filter_elems : int;
}

val workload :
  ?label:string ->
  input:Ax_tensor.Shape.t -> filter:Ax_nn.Filter.t ->
  spec:Ax_nn.Conv_spec.t -> images:int -> unit -> conv_workload
(** Geometry of one layer.  [input]'s batch dimension is ignored in
    favour of [images]. *)

val workloads_of_graph :
  Ax_nn.Graph.t -> input:Ax_tensor.Shape.t -> images:int ->
  conv_workload list
(** One workload per convolution layer ([Conv2d] or [Ax_conv2d]),
    propagating shapes through the graph. *)

val lut_lookups : conv_workload -> float
(** MACs = LUT fetches for the layer: images*rows*taps*out_c. *)

val total_macs : conv_workload list -> float

type phases = {
  init_s : float;
  quantization_s : float;
  lut_s : float;
  other_s : float;
}

val total : phases -> float
val add : phases -> phases -> phases
val breakdown : phases -> Ax_nn.Profile.breakdown

val transfer_init :
  Device.t -> dataset_bytes:float -> weight_bytes:float -> phases
(** One-time context creation plus host-to-device copies (the paper's
    [t_init], ~1.8-2.3 s on the GTX 1080). *)

val accurate_network :
  Device.t -> conv_workload list -> phases
(** cuDNN-style float GEMM convolution: no quantization, no LUT. *)

val approx_network :
  Device.t -> ?lut_hit_rate:float -> chunk_size:int ->
  conv_workload list -> phases
(** The AxConv2D kernel pipeline of Algorithm 1.  [lut_hit_rate]
    defaults to [0.9]; obtain a workload-specific value with
    {!measure_hit_rate}. *)

val per_layer :
  Device.t -> ?lut_hit_rate:float -> chunk_size:int ->
  conv_workload list -> (string * phases) list
(** Where the modelled time goes, layer by layer (kernel phases only;
    transfers are network-global).  Labels come from the workloads. *)

val measure_hit_rate :
  ?metrics:Ax_obs.Metrics.t ->
  Device.t -> mp:Bytes.t -> mf_t:Bytes.t -> rows:int -> taps:int ->
  out_c:int -> sample_rows:int -> float
(** Replay the tiled-GEMM access order of a real quantized patch matrix
    [mp] (rows x taps codes) against filter codes [mf_t] (out_c x taps)
    through the device's texture cache and return the observed hit rate.
    Only the first [sample_rows] rows are replayed.  When [metrics] is
    given, the cache {!Texcache.publish}es its counters there. *)
