(** Accelerator energy model — the quantity the whole exercise is about.

    The paper's opening motivation: "a significant power consumption
    reduction of the DNN hardware accelerator can be obtained by
    introducing ... approximate arithmetic circuits".  The emulator
    measures the *accuracy* side of that trade; this module supplies the
    energy side, from the same unit-gate circuit metrics that
    {!Ax_netlist.Power} produces, so error/energy Pareto fronts close
    end to end.

    Units are relative (normalised to the exact 8x8 multiplier MAC);
    the literature's comparisons are relative too. *)

type mac_profile = {
  multiplier_energy : float;  (** switching-power proxy of the multiplier *)
  accumulator_energy : float; (** adder share of one MAC *)
}

val exact_mac : mac_profile Lazy.t
(** The reference MAC: exact carry-save array multiplier + exact 32-bit
    ripple accumulator slice. *)

val mac_of_circuit : Ax_netlist.Circuit.t -> mac_profile
(** A MAC built around the given multiplier circuit (accumulator share
    taken from the exact reference). *)

val total : mac_profile -> float
(** [multiplier_energy + accumulator_energy]. *)

val relative_mac_energy : mac_profile -> float
(** Energy of one MAC relative to {!exact_mac} (1.0 = no saving).
    Always finite: a profile with a NaN, infinite or negative component
    raises [Invalid_argument] instead of leaking a NaN into Pareto
    dominance comparisons.  A degenerate all-Buf/Const multiplier is
    {e not} an error — its multiplier energy is 0 and the accumulator
    share keeps the ratio positive. *)

val network_energy :
  mac_profile -> macs:float -> float
(** Total relative datapath energy for a workload of [macs]
    multiply-accumulates (normalised so the exact MAC costs 1 per op). *)

val savings_percent : mac_profile -> float
(** [100 * (1 - relative_mac_energy)] — the headline number a candidate
    multiplier buys, before accuracy is considered. *)
