lib/nn/transform.ml: Array Filter Graph List Printf
