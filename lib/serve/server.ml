module Emulator = Tfapprox.Emulator
module Tensor = Ax_tensor.Tensor
module Shape = Ax_tensor.Shape
module Metrics = Ax_obs.Metrics
module Trace = Ax_obs.Trace
module Log = Ax_obs.Log
module Json = Ax_obs.Json
module Load_error = Ax_arith.Load_error

type address = Unix_sock of string | Tcp of string * int

let address_to_string = function
  | Unix_sock path -> "unix:" ^ path
  | Tcp (host, port) -> Printf.sprintf "tcp:%s:%d" host port

let parse_address text =
  let bad () =
    failwith
      (Printf.sprintf
         "address %S: expected unix:PATH, tcp:HOST:PORT or a socket path" text)
  in
  match String.index_opt text ':' with
  | None -> if text = "" then bad () else Unix_sock text
  | Some i -> (
    let scheme = String.sub text 0 i in
    let rest = String.sub text (i + 1) (String.length text - i - 1) in
    match scheme with
    | "unix" -> if rest = "" then bad () else Unix_sock rest
    | "tcp" -> (
      match String.rindex_opt rest ':' with
      | None -> bad ()
      | Some j -> (
        let host = String.sub rest 0 j in
        let port = String.sub rest (j + 1) (String.length rest - j - 1) in
        match int_of_string_opt port with
        | Some p when p >= 0 && p < 65536 && host <> "" -> Tcp (host, p)
        | _ -> bad ()))
    | _ -> bad ())

type config = {
  address : address;
  store : Store.t;
  backend : Emulator.backend;
  domains : int;
  queue_capacity : int;
  max_batch : int;
  linger : float;
  retry_after_ms : int;
  max_connections : int;
  idle_timeout : float;
  metrics : Metrics.t;
  trace : Trace.t option;
}

let default_config ~store ~address () =
  {
    address;
    store;
    backend = Emulator.Cpu_gemm;
    domains = 1;
    queue_capacity = 64;
    max_batch = 8;
    linger = 0.002;
    retry_after_ms = 50;
    max_connections = 256;
    idle_timeout = 300.;
    metrics = Metrics.create ();
    trace = None;
  }

(* Every mutable field is guarded by [write_lock].  The fd's lifetime
   is the subtle part: the reader thread exiting must NOT close it
   while admission jobs still hold [deliver] closures for this
   connection — a closed fd number is recycled by [accept], so a late
   write would land in another client's stream.  Instead the reader
   marks [reader_done] (+ [peer_gone]: an EOF'd peer gets no further
   responses) and the fd closes only when [inflight] drains to zero,
   with the [peer_gone]/[closed] checks and the close itself serialized
   under [write_lock]. *)
type conn = {
  conn_id : int;
  fd : Unix.file_descr;
  write_lock : Ax_conc.Mutex.t;
  (* race-detector annotations: [peer_cell] covers the lifecycle flags
     ([peer_gone]/[reader_done]/[closed]), [inflight_cell] the job
     counter — every access below must hold [write_lock], which is
     exactly what the annotations let the detector verify *)
  peer_cell : Ax_conc.Race.cell;
  inflight_cell : Ax_conc.Race.cell;
  mutable peer_gone : bool;  (** no further writes (EOF'd or write failed) *)
  mutable inflight : int;  (** admission jobs holding [deliver] for us *)
  mutable reader_done : bool;  (** the connection thread's read loop exited *)
  mutable closed : bool;  (** [fd] actually closed; never reached again *)
}

type t = {
  config : config;
  listen_fd : Unix.file_descr;
  bound : address;
  adm : Admission.t;
  (* wake pipe: [stop] writes one byte so the accept loop's select
     returns without racing a close against a blocking accept *)
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  lock : Ax_conc.Mutex.t;
  mutable running : bool;  (** accepting + scheduling *)
  stop_requested : bool Atomic.t;
      (** a client sent [Shutdown] / a signal.  A plain [Stdlib.Atomic]
          rather than the checked shim on purpose: {!request_stop} must
          stay callable from a signal handler, so it cannot risk taking
          the checker's internal lock in record mode. *)
  mutable stopped : bool;  (** fully shut down *)
  mutable conns : conn list;
  (* conn_id -> thread, self-reaped: each connection thread removes its
     own entry on exit (under [lock]), so the table tracks live threads
     instead of growing monotonically under connection churn.  [dead]
     marks ids whose thread finished before the accept loop registered
     it (the registration then drops the stale entry). *)
  conn_threads : (int, Thread.t) Hashtbl.t;
  dead_conn_ids : (int, unit) Hashtbl.t;
  mutable next_conn_id : int;
  mutable accept_thread : Thread.t option;
  mutable scheduler_thread : Thread.t option;
}

let locked t f = Ax_conc.Mutex.with_lock t.lock f

let count t name = Metrics.add t.config.metrics name 1

(* ------------------------------------------------------------------ *)
(* Responses                                                           *)
(* ------------------------------------------------------------------ *)

(* Must be called with [conn.write_lock] held. *)
let conn_close_if_idle conn =
  Ax_conc.Race.read conn.inflight_cell;
  if conn.reader_done && conn.inflight = 0 && not conn.closed then begin
    Ax_conc.Race.write conn.peer_cell;
    conn.closed <- true;
    try Unix.close conn.fd with Unix.Unix_error _ -> ()
  end

(* Bracket an admission job's lifetime: the fd stays open (and its
   number un-recyclable) until every outstanding [deliver] has run. *)
let conn_job_begin conn =
  Ax_conc.Mutex.with_lock conn.write_lock (fun () ->
      Ax_conc.Race.write conn.inflight_cell;
      conn.inflight <- conn.inflight + 1)

let conn_job_end conn =
  Ax_conc.Mutex.with_lock conn.write_lock (fun () ->
      Ax_conc.Race.write conn.inflight_cell;
      conn.inflight <- conn.inflight - 1;
      conn_close_if_idle conn)

(* Best-effort: a client that vanished mid-response costs a counter and
   a debug line, never an exception escaping a server thread.  The
   [peer_gone]/[closed] check and the write happen under [write_lock] —
   the same lock serializing the close — so a delivery can never write
   to a closed (possibly recycled) fd. *)
let send t conn response =
  let payload = Protocol.encode_response response in
  let result =
    Ax_conc.Mutex.with_lock conn.write_lock (fun () ->
        Ax_conc.Race.read conn.peer_cell;
        if conn.peer_gone || conn.closed then Ok ()
        else
          match Protocol.write_frame conn.fd payload with
          | () -> Ok ()
          | exception e ->
            Ax_conc.Race.write conn.peer_cell;
            conn.peer_gone <- true;
            Result.error e)
  in
  match result with
  | Ok () -> ()
  | Error e ->
    count t "serve_dropped_responses";
    if Log.enabled Log.Debug then
      Log.debug
        ~fields:
          [
            ("conn", Json.Int conn.conn_id);
            ("error", Json.String (Printexc.to_string e));
          ]
        "serve: client gone mid-response"

let error_response ?id ?(retry_after_ms = 0) code message =
  Protocol.Error { id; code; retry_after_ms; message }

let outcome_response ~id = function
  | Admission.Done classes -> Protocol.Predictions { id; classes }
  | Admission.Expired ->
    error_response ~id Protocol.Deadline_exceeded
      "deadline expired before the request reached the scheduler"
  | Admission.Failed msg ->
    error_response ~id Protocol.Internal ("execution failed: " ^ msg)
  | Admission.Cancelled ->
    error_response ~id Protocol.Shutting_down "daemon shutting down"

(* ------------------------------------------------------------------ *)
(* Batch scheduler                                                     *)
(* ------------------------------------------------------------------ *)

let split_predictions jobs classes =
  let rec go offset = function
    | [] -> []
    | (job : Admission.job) :: rest ->
      Array.sub classes offset job.images :: go (offset + job.images) rest
  in
  go 0 jobs

let deliver_all t jobs outcomes =
  let metrics = t.config.metrics in
  List.iter2
    (fun (job : Admission.job) outcome ->
      let latency = Admission.now t.adm -. job.enqueued in
      Metrics.observe_named metrics "serve_request_seconds" latency;
      let record () = job.deliver outcome in
      match t.config.trace with
      | None -> record ()
      | Some tr ->
        Trace.with_span tr ~name:"serve.request"
          ~attrs:
            [
              ("model", job.model);
              ("images", string_of_int job.images);
              ("latency_s", Printf.sprintf "%.6f" latency);
              ( "outcome",
                match outcome with
                | Admission.Done _ -> "ok"
                | Admission.Expired -> "expired"
                | Admission.Failed _ -> "failed"
                | Admission.Cancelled -> "cancelled" );
            ]
          record)
    jobs outcomes

let execute_batch t model jobs =
  let metrics = t.config.metrics in
  let run () =
    let started = Unix.gettimeofday () in
    let outcomes =
      match Store.find t.config.store model with
      | Some { status = Store.Ready ready; _ } -> (
        let inputs = List.map (fun (j : Admission.job) -> j.input) jobs in
        let batch =
          match inputs with [ one ] -> one | many -> Tensor.concat_batch many
        in
        (* Per-image sharding (any domains >= 1) quantizes each image
           against its own range, so every request's classes are
           bit-identical to a one-shot run of that request alone —
           verified at load, so no per-batch analyzer pass. *)
        match
          Emulator.predictions ~verify:false ~domains:t.config.domains
            ready.Store.graph ~backend:t.config.backend batch
        with
        | classes ->
          List.map (fun c -> Admission.Done c) (split_predictions jobs classes)
        | exception e ->
          count t "serve_internal_errors";
          Log.error
            ~fields:
              [
                ("model", Json.String model);
                ("error", Json.String (Printexc.to_string e));
              ]
            "serve: batch execution failed; daemon continues";
          List.map (fun _ -> Admission.Failed (Printexc.to_string e)) jobs)
      | Some _ | None ->
        (* submit-time validation makes this unreachable for a live
           store; answered typed anyway rather than trusted *)
        List.map (fun _ -> Admission.Failed ("model not servable: " ^ model)) jobs
    in
    Metrics.observe_named metrics "serve_batch_seconds"
      (Unix.gettimeofday () -. started);
    deliver_all t jobs outcomes
  in
  match t.config.trace with
  | None -> run ()
  | Some tr ->
    Trace.with_span tr ~name:"serve.batch"
      ~attrs:
        [
          ("model", model);
          ("requests", string_of_int (List.length jobs));
          ( "images",
            string_of_int
              (List.fold_left
                 (fun acc (j : Admission.job) -> acc + j.images)
                 0 jobs) );
        ]
      run

let scheduler_loop t =
  let rec go () =
    match Admission.wait_ready t.adm with
    | `Closed -> ()
    | `Ready ->
      if locked t (fun () -> t.running) then begin
        if t.config.linger > 0. then Thread.delay t.config.linger;
        (match Admission.form_batch t.adm with
        | `Empty -> ()
        | `Batch (model, jobs) -> execute_batch t model jobs);
        go ()
      end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

let handle_infer t conn ~id ~model ~deadline_ms input =
  let shape = Tensor.shape input in
  match Store.find t.config.store model with
  | None ->
    send t conn
      (error_response ~id Protocol.Unknown_model
         (Printf.sprintf "unknown model %S (serving: %s)" model
            (String.concat ", "
               (List.map
                  (fun (e : Store.entry) -> e.Store.spec.Store.name)
                  (Store.list t.config.store)))))
  | Some { status = Store.Unavailable reason; _ } ->
    send t conn
      (error_response ~id Protocol.Model_unavailable
         (Printf.sprintf "model %S unavailable: %s" model reason))
  | Some { status = Store.Ready ready; _ }
    when shape.Shape.h <> ready.Store.input.Shape.h
         || shape.Shape.w <> ready.Store.input.Shape.w
         || shape.Shape.c <> ready.Store.input.Shape.c ->
    send t conn
      (error_response ~id Protocol.Bad_request
         (Printf.sprintf "input %s does not match model geometry %s"
            (Shape.to_string shape)
            (Shape.to_string ready.Store.input)))
  | Some { status = Store.Ready _; _ } ->
    let now = Admission.now t.adm in
    let job =
      {
        Admission.model;
        input;
        images = shape.Shape.n;
        enqueued = now;
        deadline =
          Option.map (fun ms -> now +. (float_of_int ms /. 1000.)) deadline_ms;
        deliver =
          (fun outcome ->
            send t conn (outcome_response ~id outcome);
            conn_job_end conn);
      }
    in
    conn_job_begin conn;
    (match Admission.submit t.adm job with
    | Ok () -> ()
    | Error (Admission.Queue_full { retry_after_ms }) ->
      conn_job_end conn;
      send t conn
        (error_response ~id ~retry_after_ms Protocol.Overloaded
           (Printf.sprintf "admission queue full (capacity %d); retry in %d ms"
              t.config.queue_capacity retry_after_ms))
    | Error Admission.Closed ->
      conn_job_end conn;
      send t conn
        (error_response ~id Protocol.Shutting_down "daemon shutting down"))

(* Lock-free on purpose: callable from a signal handler (the CLI's
   SIGINT/SIGTERM hooks) as well as from connection threads.  [wait]
   polls the flag. *)
let request_stop t = Atomic.set t.stop_requested true

let metrics_dump t =
  let metrics = t.config.metrics in
  Metrics.set_gauge metrics "serve_queue_depth"
    (float_of_int (Admission.depth t.adm));
  Metrics.set_gauge metrics "serve_connections"
    (float_of_int (locked t (fun () -> List.length t.conns)));
  Metrics.observe_gc metrics;
  Metrics.to_prometheus (Metrics.snapshot metrics)

(* One request; [`Continue] unless the connection must wind down. *)
let handle_request t conn = function
  | Protocol.Ping ->
    send t conn Protocol.Pong;
    `Continue
  | Protocol.List_models ->
    send t conn (Protocol.Models (Store.statuses t.config.store));
    `Continue
  | Protocol.Metrics ->
    send t conn (Protocol.Metrics_dump (metrics_dump t));
    `Continue
  | Protocol.Shutdown ->
    send t conn Protocol.Shutdown_ack;
    request_stop t;
    `Close
  | Protocol.Infer { id; model; deadline_ms; input } ->
    handle_infer t conn ~id ~model ~deadline_ms input;
    `Continue

let conn_loop t conn =
  let rec go () =
    match Protocol.read_frame conn.fd with
    | `Eof -> ()
    | `Timeout ->
      (* [idle_timeout] expired with no (complete) frame: a silent or
         stalled peer must not pin this thread forever.  Treated as a
         desync-close — mid-frame the stream position is unknowable
         anyway. *)
      count t "serve_read_timeouts";
      if Log.enabled Log.Debug then
        Log.debug
          ~fields:[ ("conn", Json.Int conn.conn_id) ]
          "serve: connection idle/stalled past the read timeout; closing"
    | `Err e when Protocol.recoverable e ->
      (* the length prefix walked the stream past the damaged payload:
         answer typed and keep serving this connection *)
      count t "serve_protocol_errors";
      send t conn
        (error_response Protocol.Bad_request (Load_error.to_string e));
      go ()
    | `Err e ->
      (* framing desync (bad magic / oversized / truncated): answer
         typed best-effort, then close — the stream position is
         unknowable, but the daemon and every other connection live on *)
      count t "serve_protocol_errors";
      send t conn
        (error_response Protocol.Bad_request (Load_error.to_string e))
    | `Payload payload -> (
      count t "serve_requests";
      match Protocol.decode_request payload with
      | Error e ->
        (* well-framed but malformed payload: typed error, stream still
           in sync, connection survives *)
        count t "serve_protocol_errors";
        send t conn
          (error_response Protocol.Bad_request (Load_error.to_string e));
        go ()
      | Ok req -> (
        match handle_request t conn req with
        | `Continue -> go ()
        | `Close -> ()))
  in
  Fun.protect
    ~finally:(fun () ->
      locked t (fun () ->
          t.conns <- List.filter (fun c -> c != conn) t.conns;
          (* self-reap: this thread's registry entry dies with it; the
             tombstone covers losing the race against registration *)
          if not (Hashtbl.mem t.conn_threads conn.conn_id) then
            Hashtbl.replace t.dead_conn_ids conn.conn_id ();
          Hashtbl.remove t.conn_threads conn.conn_id);
      Metrics.set_gauge t.config.metrics "serve_connections"
        (float_of_int (locked t (fun () -> List.length t.conns)));
      (* the reader is done: no more responses for this peer, shut the
         socket down now — but only [conn_close_if_idle] may close the
         fd, once no in-flight job holds a [deliver] for it, so the fd
         number cannot be recycled under a pending delivery *)
      Ax_conc.Mutex.with_lock conn.write_lock (fun () ->
          Ax_conc.Race.write conn.peer_cell;
          conn.reader_done <- true;
          conn.peer_gone <- true;
          if not conn.closed then begin
            try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
            with Unix.Unix_error _ -> ()
          end;
          conn_close_if_idle conn))
    (fun () ->
      try go ()
      with e ->
        (* a connection thread must never take the daemon down *)
        count t "serve_internal_errors";
        Log.error
          ~fields:
            [
              ("conn", Json.Int conn.conn_id);
              ("error", Json.String (Printexc.to_string e));
            ]
          "serve: connection handler failed; connection dropped")

let accept_loop t =
  let rec go () =
    let continue_ = locked t (fun () -> t.running) in
    if continue_ then begin
      match Unix.select [ t.listen_fd; t.stop_r ] [] [] (-1.0) with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | readable, _, _ ->
        if List.mem t.stop_r readable then ()
        else begin
          (match Unix.accept t.listen_fd with
          | exception Unix.Unix_error _ -> ()
          | fd, _peer ->
            count t "serve_connections_total";
            let at_cap =
              locked t (fun () ->
                  List.length t.conns >= t.config.max_connections)
            in
            if at_cap then begin
              (* bounded thread count under connection churn: refuse
                 typed (best effort — the tiny frame fits the socket
                 buffer) and hang up without spawning a thread *)
              count t "serve_connections_refused";
              (try
                 Protocol.write_frame fd
                   (Protocol.encode_response
                      (error_response
                         ~retry_after_ms:t.config.retry_after_ms
                         Protocol.Overloaded
                         (Printf.sprintf
                            "connection limit reached (%d); retry in %d ms"
                            t.config.max_connections t.config.retry_after_ms)))
               with _ -> ());
              try Unix.close fd with Unix.Unix_error _ -> ()
            end
            else begin
              (* a silent/stalled peer surfaces as [`Timeout] in the
                 read loop instead of pinning the thread forever *)
              if t.config.idle_timeout > 0. then begin
                try
                  Unix.setsockopt_float fd Unix.SO_RCVTIMEO
                    t.config.idle_timeout
                with Unix.Unix_error _ -> ()
              end;
              let conn =
                locked t (fun () ->
                    let conn =
                      {
                        conn_id = t.next_conn_id;
                        fd;
                        write_lock =
                          Ax_conc.Mutex.create ~order:60
                            ~name:"serve.conn.write" ();
                        peer_cell = Ax_conc.Race.cell "serve.conn.peer-gone";
                        inflight_cell = Ax_conc.Race.cell "serve.conn.inflight";
                        peer_gone = false;
                        inflight = 0;
                        reader_done = false;
                        closed = false;
                      }
                    in
                    t.next_conn_id <- t.next_conn_id + 1;
                    t.conns <- conn :: t.conns;
                    conn)
              in
              let thread = Thread.create (fun () -> conn_loop t conn) () in
              locked t (fun () ->
                  (* the thread may already have finished and left a
                     tombstone — don't register an entry nobody reaps *)
                  if Hashtbl.mem t.dead_conn_ids conn.conn_id then
                    Hashtbl.remove t.dead_conn_ids conn.conn_id
                  else Hashtbl.replace t.conn_threads conn.conn_id thread)
            end);
          go ()
        end
    end
  in
  go ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let bind_listen address =
  match address with
  | Unix_sock path ->
    if Sys.file_exists path then Sys.remove path;
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.bind fd (Unix.ADDR_UNIX path)
     with e -> (try Unix.close fd with _ -> ()); raise e);
    Unix.listen fd 64;
    (fd, Unix_sock path)
  | Tcp (host, port) ->
    let inet =
      try (Unix.gethostbyname host).Unix.h_addr_list.(0)
      with Not_found -> Unix.inet_addr_of_string host
    in
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.setsockopt fd Unix.SO_REUSEADDR true;
    (try
       Unix.bind fd (Unix.ADDR_INET (inet, port));
       Unix.listen fd 64
     with e -> (try Unix.close fd with _ -> ()); raise e);
    let bound =
      match Unix.getsockname fd with
      | Unix.ADDR_INET (_, p) -> Tcp (host, p)
      | _ -> Tcp (host, port)
    in
    (fd, bound)

let start config =
  if config.domains < 1 then invalid_arg "Server.start: domains must be >= 1";
  if config.max_connections < 1 then
    invalid_arg "Server.start: max_connections must be >= 1";
  (* a client closing mid-write must surface as EPIPE, not kill us *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let listen_fd, bound = bind_listen config.address in
  let stop_r, stop_w = Unix.pipe () in
  let adm =
    Admission.create ~metrics:config.metrics
      ~retry_after_ms:config.retry_after_ms ~capacity:config.queue_capacity
      ~max_batch:config.max_batch ()
  in
  let t =
    {
      config;
      listen_fd;
      bound;
      adm;
      stop_r;
      stop_w;
      lock = Ax_conc.Mutex.create ~order:40 ~name:"serve.server" ();
      running = true;
      stop_requested = Atomic.make false;
      stopped = false;
      conns = [];
      conn_threads = Hashtbl.create 64;
      dead_conn_ids = Hashtbl.create 16;
      next_conn_id = 0;
      accept_thread = None;
      scheduler_thread = None;
    }
  in
  t.scheduler_thread <- Some (Thread.create (fun () -> scheduler_loop t) ());
  t.accept_thread <- Some (Thread.create (fun () -> accept_loop t) ());
  Log.info
    ~fields:
      [
        ("address", Json.String (address_to_string bound));
        ("models", Json.Int (List.length (Store.list config.store)));
        ("capacity", Json.Int config.queue_capacity);
        ("max_batch", Json.Int config.max_batch);
      ]
    "serve: daemon listening";
  t

let bound_address t = t.bound
let admission t = t.adm

let stop t =
  let first =
    locked t (fun () ->
        if t.stopped then false
        else begin
          t.stopped <- true;
          t.running <- false;
          true
        end)
  in
  if first then begin
    (* wake the accept loop, then starve it of new work *)
    (try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error _ -> ());
    Admission.close t.adm;
    (match t.accept_thread with Some th -> Thread.join th | None -> ());
    (match t.scheduler_thread with Some th -> Thread.join th | None -> ());
    (* queued-but-never-scheduled jobs answer Shutting_down *)
    Admission.drain t.adm;
    (* unblock connection readers; each connection's fd closes once its
       reader exited and its in-flight deliveries drained.  The
       shutdown is serialized against sends and the close under
       [write_lock] — never touches a closed (recyclable) fd. *)
    List.iter
      (fun conn ->
        Ax_conc.Mutex.with_lock conn.write_lock (fun () ->
            Ax_conc.Race.read conn.peer_cell;
            if not conn.closed then begin
              try Unix.shutdown conn.fd Unix.SHUTDOWN_ALL
              with Unix.Unix_error _ -> ()
            end))
      (locked t (fun () -> t.conns));
    List.iter Thread.join
      (locked t (fun () ->
           Hashtbl.fold (fun _ th acc -> th :: acc) t.conn_threads []));
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
    (match t.bound with
    | Unix_sock path -> ( try Sys.remove path with Sys_error _ -> ())
    | Tcp _ -> ());
    Log.info "serve: daemon stopped"
  end

let wait t =
  while not (t.stopped || Atomic.get t.stop_requested) do
    Thread.delay 0.05
  done;
  stop t
