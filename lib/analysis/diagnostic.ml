type severity = Info | Warning | Error

type location =
  | Graph_node of { id : int; name : string }
  | Netlist_signal of { index : int; label : string }
  | Artefact of string
  | Global

type t = {
  rule : string;
  severity : severity;
  location : location;
  message : string;
}

exception Rejected of t list

(* The closed catalogue.  Every finding cites one of these ids, so the
   golden tests and the README table can enumerate exactly what the
   analyzers may say. *)
let rules =
  [
    (* graph verifier *)
    ("graph/arity", Error, "node input count differs from the op's arity");
    ("graph/dangling-input", Error, "node references an unknown input id");
    ("graph/dead-node", Warning, "node is unreachable from the graph output");
    ("graph/no-input", Error, "graph has no Input placeholder node");
    ("graph/multi-input", Warning, "graph has more than one Input node");
    ( "graph/shape-mismatch",
      Error,
      "static shape inference failed (channels, dense rows, pool window, \
       padding or residual-join mismatch)" );
    ("graph/scalar-as-tensor", Error, "scalar-valued node feeds a tensor port");
    ("graph/tensor-as-scalar", Error, "tensor-valued node feeds a scalar port");
    ("graph/bias-arity", Error, "bias length differs from output channels");
    ("graph/scalar-output", Error, "graph output is scalar-valued");
    (* Fig. 1 wiring lint *)
    ( "ax/min-feed",
      Error,
      "input-range minimum is not a Min reduction over the layer's data \
       tensor (nor a constant)" );
    ( "ax/max-feed",
      Error,
      "input-range maximum is not a Max reduction over the layer's data \
       tensor (nor a constant)" );
    ("ax/swapped-range", Error, "Min and Max range inputs are swapped");
    ( "ax/wrong-tensor",
      Error,
      "range reduction reads a different tensor than the layer it feeds" );
    ( "ax/const-input-range",
      Warning,
      "data range supplied as constants instead of Min/Max reductions \
       (calibrated offline?)" );
    ( "ax/filter-range-stale",
      Warning,
      "constant filter range does not cover the filter bank's actual \
       weight range" );
    ("ax/empty-range", Error, "constant range has min greater than max");
    (* quantization soundness *)
    ( "quant/lut-index",
      Error,
      "a quantized operand code can escape the 8x8 -> 16-bit LUT index \
       space [0, 65535]" );
    ( "quant/product-overflow",
      Info,
      "LUT entries decode outside the exact product range of the \
       table's signedness (expected for overshooting designs such as \
       DRUM; a smell for supposedly-exact ones)" );
    ( "quant/acc-overflow",
      Error,
      "worst-case Eq. 4 accumulation exceeds the signed 32-bit \
       accumulator the paper assumes" );
    ( "quant/acc-saturate",
      Warning,
      "worst-case Eq. 4 accumulation can clip a saturating accumulator" );
    ( "quant/acc-wrap",
      Warning,
      "worst-case Eq. 4 accumulation can wrap the configured \
       narrow-width accumulator" );
    ("quant/chunk-size", Error, "AxConv2D chunk size is not positive");
    ("quant/accumulator-width", Error, "accumulator model width is invalid");
    (* netlist analyzer *)
    ("net/no-outputs", Error, "circuit registers no primary outputs");
    ( "net/fanin-order",
      Error,
      "gate reads a node at or above its own position (not topologically \
       ordered)" );
    ( "net/width-mismatch",
      Error,
      "multiplier interface widths disagree with the declared operand or \
       product widths" );
    ("net/unused-input", Info, "primary input drives no gate");
    ("net/dead-gate", Info, "combinational gate reaches no primary output");
    ( "net/lut-mismatch",
      Error,
      "netlist function differs from the LUT truth table it claims to \
       tabulate" );
    (* artefacts *)
    ("artefact/load", Error, "artefact failed to load (typed loader error)");
    (* concurrency layer (CONC001-CONC009) *)
    ( "conc/lock-cycle",
      Error,
      "CONC001: locks acquired in conflicting orders across the run \
       (deadlock potential)" );
    ( "conc/rank-violation",
      Error,
      "CONC002: lock acquired while holding a lock of equal or higher \
       declared rank (hierarchy in DESIGN §5g)" );
    ( "conc/relock",
      Error,
      "CONC003: mutex re-acquired by the thread already holding it \
       (self-deadlock)" );
    ( "conc/unlock-unheld",
      Error,
      "CONC004: mutex released by a thread that does not hold it" );
    ( "conc/bare-section",
      Warning,
      "CONC005: critical section entered via bare lock/unlock instead of \
       with_lock (an exception inside the section leaks the lock)" );
    ( "conc/data-race",
      Error,
      "CONC006: conflicting unsynchronized accesses to an annotated \
       shared cell (FastTrack happens-before violation)" );
    ( "conc/explore-deadlock",
      Error,
      "CONC007: deterministic exploration found a schedule under which \
       no thread can make progress" );
    ( "conc/explore-violation",
      Error,
      "CONC008: deterministic exploration found a schedule violating a \
       scenario invariant (race, lost update, failed check)" );
    ( "conc/blind-detector",
      Error,
      "CONC009: a seeded-defect self-test fixture was NOT flagged — the \
       concurrency checkers have gone blind" );
  ]

let severity_of_rule rule =
  match List.find_opt (fun (id, _, _) -> id = rule) rules with
  | Some (_, sev, _) -> sev
  | None -> invalid_arg (Printf.sprintf "Diagnostic: unknown rule %s" rule)

let make ~rule ?(location = Global) message =
  { rule; severity = severity_of_rule rule; location; message }

let severity_to_string = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let location_to_string = function
  | Graph_node { id; name } -> Printf.sprintf "node %d (%s)" id name
  | Netlist_signal { index; label } ->
    if label = "" then Printf.sprintf "signal %d" index
    else Printf.sprintf "signal %d (%s)" index label
  | Artefact path -> path
  | Global -> "-"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  let c = Int.compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.rule b.rule in
    if c <> 0 then c
    else
      String.compare (location_to_string a.location)
        (location_to_string b.location)

let errors ds = List.filter (fun d -> d.severity = Error) ds
let warnings ds = List.filter (fun d -> d.severity = Warning) ds
let has_errors ds = List.exists (fun d -> d.severity = Error) ds
let sort ds = List.stable_sort compare ds

let pp ppf d =
  Format.fprintf ppf "%-7s %-24s %-28s %s"
    (severity_to_string d.severity)
    d.rule
    (location_to_string d.location)
    d.message

let to_string d = Format.asprintf "%a" pp d

let pp_report ppf ds =
  let ds = sort ds in
  List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  Format.fprintf ppf "%d error(s), %d warning(s), %d info@." (count Error)
    (count Warning) (count Info)

let to_json ds =
  let ds = sort ds in
  let finding d =
    Ax_obs.Json.Obj
      [
        ("rule", Ax_obs.Json.String d.rule);
        ("severity", Ax_obs.Json.String (severity_to_string d.severity));
        ("location", Ax_obs.Json.String (location_to_string d.location));
        ("message", Ax_obs.Json.String d.message);
      ]
  in
  let count sev = List.length (List.filter (fun d -> d.severity = sev) ds) in
  Ax_obs.Json.Obj
    [
      ("findings", Ax_obs.Json.List (List.map finding ds));
      ("errors", Ax_obs.Json.Int (count Error));
      ("warnings", Ax_obs.Json.Int (count Warning));
      ("infos", Ax_obs.Json.Int (count Info));
    ]
