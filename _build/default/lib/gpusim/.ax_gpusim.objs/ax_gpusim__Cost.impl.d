lib/gpusim/cost.ml: Array Ax_arith Ax_nn Ax_tensor Bytes Device Float List Texcache
