lib/models/resnet.ml: Ax_nn Ax_tensor List Printf Weights
