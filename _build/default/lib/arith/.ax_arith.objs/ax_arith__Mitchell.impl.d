lib/arith/mitchell.ml:
