(** Drivers that regenerate the paper's evaluation artefacts.

    CPU columns are {e measured} on this host: a sample of
    [images_measured] images is timed end-to-end and scaled linearly to
    [dataset_images] (legitimate because Table I's t_comp is linear in
    the work; the sample factor is reported alongside).  GPU columns
    come from the {!Ax_gpusim} execution model with the LUT hit rate
    measured by replaying real quantized codes of the first layer
    through the simulated texture cache.  EXPERIMENTS.md records the
    paper-vs-ours comparison. *)

type timing = { t_init : float; t_comp : float }

type table1_row = {
  depth : int;
  layers : int;                 (** Table I's L *)
  macs_per_image : int;
  cpu_accurate : timing;
  gpu_accurate : timing;
  cpu_approx : timing;
  gpu_approx : timing;
  approx_overhead_cpu : float;  (** t(approx) - t(accurate), seconds *)
  approx_overhead_gpu : float;
  speedup_accurate : float;     (** CPU/GPU total-time ratio *)
  speedup_approx : float;
  lut_hit_rate : float;         (** measured on the texture-cache model *)
}

val table1 :
  ?device:Ax_gpusim.Device.t ->
  ?multiplier:string ->
  ?depths:int list ->
  ?images_measured:int ->
  ?dataset_images:int ->
  unit ->
  table1_row list
(** Defaults: GTX-1080 model, [mul8u_trunc8], all ten Table I depths,
    4 images timed, scaled to the paper's 10 000-image dataset. *)

type fig2_config = { label : string; depth : int }

type fig2_row = {
  config : fig2_config;
  cpu : Ax_nn.Profile.breakdown;   (** measured, direct CPU baseline *)
  gpu : Ax_nn.Profile.breakdown;   (** modelled AxConv2D pipeline *)
}

val fig2 :
  ?trace:Ax_obs.Trace.t ->
  ?device:Ax_gpusim.Device.t ->
  ?multiplier:string ->
  ?depths:int list ->
  ?images_measured:int ->
  ?dataset_images:int ->
  unit ->
  fig2_row list
(** Time-distribution breakdowns for the Fig. 2 configurations
    (ResNet-8/32/50/62 by default).  [trace] attaches a tracer to the
    measured CPU runs, so the Fig. 2 numbers can be cross-checked
    against a Chrome trace of the same inferences. *)

val measured_lut_hit_rate :
  ?metrics:Ax_obs.Metrics.t ->
  device:Ax_gpusim.Device.t ->
  graph:Ax_nn.Graph.t ->
  sample:Ax_tensor.Tensor.t ->
  unit ->
  float
(** Replay the first convolution layer's quantized codes (GEMM access
    order) through the device texture cache.  [metrics] receives the
    cache's hit/miss counters via {!Ax_gpusim.Texcache.publish}. *)

type accuracy_row = {
  multiplier : string;
  emulated_accuracy : float;
  fidelity : float;       (** agreement with the accurate model *)
  lut_mae : float;        (** multiplier quality, for the Pareto view *)
}

val accuracy_sweep :
  ?depth:int ->
  ?images:int ->
  ?multipliers:string list ->
  unit ->
  accuracy_row list
(** The Sec. V use-case: evaluate many candidate multipliers quickly.
    Uses the synthetic dataset and signed multipliers by default. *)
