#!/usr/bin/env bash
# End-to-end smoke of the serving stack: one daemon, concurrent scripted
# clients (one of them spraying garbage), predictions checked
# bit-identical against the one-shot emulator path (--check-local), a
# Prometheus metrics scrape, and a graceful client-initiated shutdown.
# Any failure — daemon crash, non-zero client exit, missing metric —
# fails the script.
set -euo pipefail

cd "$(dirname "$0")/.."

CLI="${CLI:-_build/default/bin/tfapprox_cli.exe}"
if [ ! -x "$CLI" ]; then
  dune build bin/tfapprox_cli.exe
fi

SOCK="${TMPDIR:-/tmp}/tfapprox_smoke_$$.sock"
LOG="${TMPDIR:-/tmp}/tfapprox_smoke_$$.log"

cleanup() {
  [ -n "${SERVE_PID:-}" ] && kill "$SERVE_PID" 2>/dev/null || true
  rm -f "$SOCK" "$LOG"
}
trap cleanup EXIT

"$CLI" serve --listen "unix:$SOCK" \
  --model resnet8=resnet8+mul8u_trunc8 --model lenet=lenet+mul8u_trunc8 \
  --queue-capacity 16 --max-batch 4 >"$LOG" 2>&1 &
SERVE_PID=$!

for _ in $(seq 1 100); do
  [ -S "$SOCK" ] && break
  if ! kill -0 "$SERVE_PID" 2>/dev/null; then
    echo "daemon died at startup:" >&2
    cat "$LOG" >&2
    exit 1
  fi
  sleep 0.1
done
[ -S "$SOCK" ] || { echo "socket never appeared" >&2; cat "$LOG" >&2; exit 1; }

"$CLI" client ping --connect "unix:$SOCK"
"$CLI" client models --connect "unix:$SOCK"

# Concurrent clients: two checked inference workers (one per model,
# retrying on typed Overloaded refusals), one unchecked load generator,
# and one garbage sender — all against the same daemon at once.
pids=()
"$CLI" client infer --connect "unix:$SOCK" --model resnet8 --images 2 \
  --count 3 --retries 10 --check-local resnet8+mul8u_trunc8 &
pids+=($!)
"$CLI" client infer --connect "unix:$SOCK" --model lenet --input mnist \
  --images 2 --count 3 --retries 10 --check-local lenet+mul8u_trunc8 &
pids+=($!)
"$CLI" client infer --connect "unix:$SOCK" --model resnet8 --images 1 \
  --seed 9 --count 3 --retries 10 &
pids+=($!)
"$CLI" client garbage --connect "unix:$SOCK" &
pids+=($!)
for pid in "${pids[@]}"; do wait "$pid"; done

# The daemon survived and accounted for the traffic.
metrics="$("$CLI" client metrics --connect "unix:$SOCK")"
for metric in tfapprox_serve_requests tfapprox_serve_protocol_errors \
  tfapprox_serve_request_seconds_count tfapprox_serve_queue_capacity; do
  echo "$metrics" | grep -q "^$metric" || {
    echo "metrics scrape missing $metric" >&2
    exit 1
  }
done

"$CLI" client shutdown --connect "unix:$SOCK"
wait "$SERVE_PID"
SERVE_PID=""
echo "serve smoke: ok"
