(** Pareto bookkeeping for the accuracy/energy trade-off.

    Two objectives, following the paper's framing: end-to-end top-1
    accuracy (maximise) and MAC energy relative to the exact multiplier
    (minimise).  Every comparison is NaN-safe by construction: a point
    with a non-finite objective can neither dominate nor survive into a
    front — a single poisoned score must not silently eat the archive
    (the failure mode the {!Ax_gpusim.Energy} guard closes from the
    other side). *)

type point = {
  name : string;
  generation : int;
  accuracy : float;       (** top-1 accuracy in [0, 1] — maximised *)
  energy : float;         (** relative MAC energy — minimised *)
  area : float;
  delay : float;
  power : float;
  pdp : float;
  gates : int;
  mae : float;
  wce : int;
  certified : bool;       (** BDD-certified against its tabulated LUT *)
}

val finite : point -> bool
(** Both objectives are finite floats. *)

val dominates : point -> point -> bool
(** [dominates a b]: [a] is at least as good on both objectives and
    strictly better on one.  [false] whenever either point has a
    non-finite objective. *)

val compare_points : point -> point -> int
(** Deterministic display order: energy ascending, then accuracy
    descending, then name. *)

val front : point list -> point list
(** Non-dominated subset of the finite points, in {!compare_points}
    order (duplicates under that order collapsed). *)
