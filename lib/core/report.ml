let seconds s =
  if s < 0.01 then Printf.sprintf "%.4f s" s
  else if s < 10. then Printf.sprintf "%.2f s" s
  else if s < 100. then Printf.sprintf "%.1f s" s
  else Printf.sprintf "%.0f s" s

let timing t =
  Printf.sprintf "%s + %s"
    (seconds t.Experiments.t_init)
    (seconds t.Experiments.t_comp)

let print_table1 ppf rows =
  Format.fprintf ppf
    "@[<v>Table I — time to process the dataset (t_init + t_comp)@,";
  Format.fprintf ppf
    "%-10s %3s %9s | %-22s %-22s | %-22s %-22s | %-11s %-11s | %-9s %-9s@,"
    "DNN" "L" "MACs/img" "Accurate CPU" "Accurate GPU" "Approx CPU"
    "Approx GPU" "Ovh CPU" "Ovh GPU" "Spd acc" "Spd apx";
  List.iter
    (fun (r : Experiments.table1_row) ->
      Format.fprintf ppf
        "%-10s %3d %8.0fM | %-22s %-22s | %-22s %-22s | %-11s %-11s | %7.1fx %7.1fx@,"
        (Printf.sprintf "ResNet-%d" r.Experiments.depth)
        r.Experiments.layers
        (float_of_int r.Experiments.macs_per_image /. 1e6)
        (timing r.Experiments.cpu_accurate)
        (timing r.Experiments.gpu_accurate)
        (timing r.Experiments.cpu_approx)
        (timing r.Experiments.gpu_approx)
        (seconds r.Experiments.approx_overhead_cpu)
        (seconds r.Experiments.approx_overhead_gpu)
        r.Experiments.speedup_accurate r.Experiments.speedup_approx)
    rows;
  Format.fprintf ppf "@]@."

let bar ppf (b : Ax_nn.Profile.breakdown) =
  Format.fprintf ppf
    "init %5.1f%% | quant %5.1f%% | LUT %5.1f%% | rest %5.1f%%"
    b.Ax_nn.Profile.init_pct b.Ax_nn.Profile.quantization_pct
    b.Ax_nn.Profile.lut_pct b.Ax_nn.Profile.other_pct

let print_fig2 ppf rows =
  Format.fprintf ppf
    "@[<v>Fig. 2 — distribution of the total computational time@,";
  List.iter
    (fun (r : Experiments.fig2_row) ->
      Format.fprintf ppf "%-10s CPU: %a@," r.Experiments.config.Experiments.label
        bar r.Experiments.cpu;
      Format.fprintf ppf "%-10s GPU: %a@," r.Experiments.config.Experiments.label
        bar r.Experiments.gpu)
    rows;
  Format.fprintf ppf "@]@."

let print_accuracy_sweep ppf rows =
  Format.fprintf ppf
    "@[<v>Accuracy sweep — candidate multipliers on one model@,";
  Format.fprintf ppf "%-18s %10s %10s %12s@," "multiplier" "accuracy"
    "fidelity" "LUT MAE";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-18s %9.1f%% %9.1f%% %12.2f@,"
        r.Experiments.multiplier
        (100. *. r.Experiments.emulated_accuracy)
        (100. *. r.Experiments.fidelity)
        r.Experiments.lut_mae)
    rows;
  Format.fprintf ppf "@]@."

(* RFC-4180-ish quoting: only fields that need it are quoted, so the
   common numeric case stays byte-stable for golden tests. *)
let csv_field s =
  if String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') s
  then
    "\""
    ^ String.concat "\"\"" (String.split_on_char '"' s)
    ^ "\""
  else s

let csv_table ~header rows =
  let buf = Buffer.create 1024 in
  let line cells =
    Buffer.add_string buf (String.concat "," (List.map csv_field cells));
    Buffer.add_char buf '\n'
  in
  line header;
  List.iter line rows;
  Buffer.contents buf

let table1_csv rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    "dnn,layers,macs_per_image,cpu_acc_init,cpu_acc_comp,gpu_acc_init,gpu_acc_comp,cpu_apx_init,cpu_apx_comp,gpu_apx_init,gpu_apx_comp,overhead_cpu,overhead_gpu,speedup_acc,speedup_apx,lut_hit_rate\n";
  List.iter
    (fun (r : Experiments.table1_row) ->
      Buffer.add_string buf
        (Printf.sprintf
           "ResNet-%d,%d,%d,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.4f,%.2f,%.2f,%.4f\n"
           r.Experiments.depth r.Experiments.layers
           r.Experiments.macs_per_image
           r.Experiments.cpu_accurate.Experiments.t_init
           r.Experiments.cpu_accurate.Experiments.t_comp
           r.Experiments.gpu_accurate.Experiments.t_init
           r.Experiments.gpu_accurate.Experiments.t_comp
           r.Experiments.cpu_approx.Experiments.t_init
           r.Experiments.cpu_approx.Experiments.t_comp
           r.Experiments.gpu_approx.Experiments.t_init
           r.Experiments.gpu_approx.Experiments.t_comp
           r.Experiments.approx_overhead_cpu r.Experiments.approx_overhead_gpu
           r.Experiments.speedup_accurate r.Experiments.speedup_approx
           r.Experiments.lut_hit_rate))
    rows;
  Buffer.contents buf

let fig2_csv rows =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "config,implementation,init,quantization,lut,rest\n";
  List.iter
    (fun (r : Experiments.fig2_row) ->
      let line impl (b : Ax_nn.Profile.breakdown) =
        Buffer.add_string buf
          (Printf.sprintf "%s,%s,%.2f,%.2f,%.2f,%.2f\n"
             r.Experiments.config.Experiments.label impl
             b.Ax_nn.Profile.init_pct b.Ax_nn.Profile.quantization_pct
             b.Ax_nn.Profile.lut_pct b.Ax_nn.Profile.other_pct)
      in
      line "cpu" r.Experiments.cpu;
      line "gpu" r.Experiments.gpu)
    rows;
  Buffer.contents buf
