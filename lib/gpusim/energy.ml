module Power = Ax_netlist.Power
module Multipliers = Ax_netlist.Multipliers

type mac_profile = {
  multiplier_energy : float;
  accumulator_energy : float;
}

(* A 32-bit accumulate costs roughly four 8-bit ripple slices of
   switching power; estimate one slice from an actual adder netlist. *)
let accumulator_share =
  lazy
    (let c = Ax_netlist.Circuit.create ~name:"acc_slice" () in
     let a = Ax_netlist.Bus.input c "a" 8 in
     let b = Ax_netlist.Bus.input c "b" 8 in
     let sum, carry = Ax_netlist.Adders.ripple_carry c a b in
     Ax_netlist.Bus.output c "s" sum;
     Ax_netlist.Circuit.output c "cout" carry;
     4. *. (Power.analyze c).Power.power)

let mac_of_circuit circuit =
  {
    multiplier_energy = (Power.analyze circuit).Power.power;
    accumulator_energy = Lazy.force accumulator_share;
  }

let exact_mac =
  lazy
    (mac_of_circuit
       (Multipliers.unsigned_array ~bits:8).Multipliers.circuit)

let total p = p.multiplier_energy +. p.accumulator_energy

(* A degenerate mutant (all Buf/Const logic) legitimately reaches
   multiplier_energy = 0 — the accumulator share keeps the MAC total
   positive — but a hand-built or corrupted profile can carry NaN or a
   negative component, and NaN silently poisons every downstream Pareto
   dominance comparison.  Reject those profiles with a typed error at
   the division instead. *)
let check_profile ~what p =
  if
    (not (Float.is_finite p.multiplier_energy))
    || (not (Float.is_finite p.accumulator_energy))
    || p.multiplier_energy < 0.
    || p.accumulator_energy < 0.
  then
    invalid_arg
      (Printf.sprintf
         "Energy.relative_mac_energy: %s profile is not finite and \
          non-negative (multiplier=%h accumulator=%h)"
         what p.multiplier_energy p.accumulator_energy)

let relative_mac_energy p =
  check_profile ~what:"candidate" p;
  let reference = Lazy.force exact_mac in
  check_profile ~what:"reference" reference;
  let denominator = total reference in
  if denominator <= 0. then
    invalid_arg "Energy.relative_mac_energy: exact reference MAC has no energy";
  total p /. denominator

let network_energy p ~macs =
  if macs < 0. then invalid_arg "Energy.network_energy: negative macs";
  relative_mac_energy p *. macs

let savings_percent p = 100. *. (1. -. relative_mac_energy p)
