lib/train/grad.mli: Ax_nn Ax_tensor
