(* One end-to-end system test: the full adoption path a downstream user
   walks, in a single scenario — build a model, transform it with a
   catalogue multiplier, run every backend, estimate GPU time and
   energy, calibrate, fine-tune, serialize, reload, and check the whole
   chain stays consistent. *)

module Tensor = Ax_tensor.Tensor
module Graph = Ax_nn.Graph
module Exec = Ax_nn.Exec
module Cifar = Ax_data.Cifar
module Resnet = Ax_models.Resnet
module Emulator = Tfapprox.Emulator
module Energy = Ax_gpusim.Energy
module Cost = Ax_gpusim.Cost
module Trainer = Ax_train.Trainer

let check_bool = Alcotest.(check bool)

let test_full_pipeline () =
  (* 1. model + data *)
  let graph = Resnet.build ~depth:8 () in
  let dataset = Cifar.generate ~n:8 () in
  let images = dataset.Cifar.images in
  let reference = Emulator.predictions graph ~backend:Emulator.Cpu_accurate images in

  (* 2. pick a multiplier, check its hardware story *)
  let multiplier = "mul8u_trunc8" in
  let netlist = Ax_netlist.Multipliers.truncated ~bits:8 ~cut:8 in
  let mac = Energy.mac_of_circuit netlist.Ax_netlist.Multipliers.circuit in
  let savings = Energy.savings_percent mac in
  check_bool
    (Printf.sprintf "truncation saves energy (%.1f%%)" savings)
    true
    (savings > 5. && savings < 90.);

  (* 3. transform and emulate on both CPU strategies *)
  let approx = Emulator.approximate_model ~multiplier graph in
  let gemm = Emulator.run ~backend:Emulator.Cpu_gemm approx images in
  let direct = Emulator.run ~backend:Emulator.Cpu_direct approx images in
  check_bool "strategies bit-identical" true (Tensor.max_abs_diff gemm direct = 0.);
  let preds = Ax_nn.Layers.argmax_channels gemm in
  let fidelity = Emulator.agreement reference preds in
  check_bool (Printf.sprintf "fidelity sane (%.2f)" fidelity) true
    (fidelity >= 0. && fidelity <= 1.);

  (* 4. GPU estimate: approximate pipeline slower than accurate, both
     positive; energy scales with MACs *)
  let input_shape = Resnet.input_shape ~batch:1 in
  let acc_kernels, _ =
    Emulator.estimate_gpu_time ~graph ~input:input_shape ~images:10_000 ()
  in
  let apx_kernels, init =
    Emulator.estimate_gpu_time ~graph:approx ~input:input_shape
      ~images:10_000 ()
  in
  let seconds = function `Accurate p | `Approximate p -> Cost.total p in
  check_bool "emulation overhead on GPU" true
    (seconds apx_kernels > seconds acc_kernels);
  check_bool "init positive" true (init.Cost.init_s > 0.);
  let macs = float_of_int (Resnet.macs_per_image ~depth:8) *. 10_000. in
  check_bool "network energy positive and sub-exact" true
    (Energy.network_energy mac ~macs < macs
    && Energy.network_energy mac ~macs > 0.);

  (* 5. calibrate, then serialize the calibrated model and reload *)
  let calibrated =
    Tfapprox.Calibrate.bias_correct ~sample:images approx
  in
  let bytes = Ax_nn.Model_io.to_bytes calibrated in
  let reloaded = Ax_nn.Model_io.of_bytes bytes in
  check_bool "calibrated model roundtrips bit-exactly" true
    (Tensor.max_abs_diff
       (Exec.run calibrated ~input:images)
       (Exec.run reloaded ~input:images)
    = 0.);

  (* 6. one epoch of straight-through fine-tuning must leave the model
     runnable and finite *)
  let config =
    { Trainer.default_config with Trainer.epochs = 1; batch_size = 4;
      learning_rate = 0.01 }
  in
  let history =
    Trainer.train config reloaded (Cifar.normalize dataset)
  in
  check_bool "training loss finite" true
    (Array.for_all Float.is_finite history.Trainer.epoch_losses);
  let out = Exec.run reloaded ~input:images in
  Tensor.iteri_flat
    (fun _ v -> if not (Float.is_finite v) then Alcotest.fail "non-finite")
    out

let test_energy_ordering () =
  (* Deeper truncation => more energy saved, monotonically. *)
  let saving cut =
    Energy.savings_percent
      (Energy.mac_of_circuit
         (Ax_netlist.Multipliers.truncated ~bits:8 ~cut)
           .Ax_netlist.Multipliers.circuit)
  in
  let s0 = saving 0 and s6 = saving 6 and s10 = saving 10 in
  check_bool
    (Printf.sprintf "monotone savings (%.1f < %.1f < %.1f)" s0 s6 s10)
    true
    (s0 < s6 && s6 < s10);
  check_bool "exact saves ~nothing" true (abs_float s0 < 1e-6);
  (* Relative MAC energy of the exact profile is exactly 1. *)
  Alcotest.(check (float 1e-9)) "exact = 1" 1.
    (Energy.relative_mac_energy (Lazy.force Energy.exact_mac))

let () =
  Alcotest.run "ax_system"
    [
      ( "system",
        [
          Alcotest.test_case "full adoption pipeline" `Slow
            test_full_pipeline;
          Alcotest.test_case "energy ordering" `Quick test_energy_ordering;
        ] );
    ]
