lib/netlist/opt.mli: Circuit
