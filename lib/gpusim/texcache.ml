type t = {
  sets : int;
  ways : int;
  line_bytes : int;
  (* tags.(set * ways + way) = line tag, or -1 when invalid *)
  tags : int array;
  (* age.(set * ways + way): higher = more recently used *)
  age : int array;
  mutable clock : int;
  mutable n_access : int;
  mutable n_hit : int;
  (* counts already pushed to a metrics registry, so repeated publishes
     only add the delta *)
  mutable pub_access : int;
  mutable pub_hit : int;
}

let is_power_of_two x = x > 0 && x land (x - 1) = 0

let create ~size_bytes ~line_bytes ~ways =
  if size_bytes < 0 then invalid_arg "Texcache.create: negative size";
  if size_bytes = 0 then
    { sets = 0; ways = 0; line_bytes = 1; tags = [||]; age = [||];
      clock = 0; n_access = 0; n_hit = 0; pub_access = 0; pub_hit = 0 }
  else begin
    if not (is_power_of_two line_bytes) then
      invalid_arg "Texcache.create: line size must be a power of two";
    if ways <= 0 then invalid_arg "Texcache.create: ways";
    if size_bytes mod (line_bytes * ways) <> 0 then
      invalid_arg "Texcache.create: size not divisible by line*ways";
    let sets = size_bytes / (line_bytes * ways) in
    {
      sets;
      ways;
      line_bytes;
      tags = Array.make (sets * ways) (-1);
      age = Array.make (sets * ways) 0;
      clock = 0;
      n_access = 0;
      n_hit = 0;
      pub_access = 0;
      pub_hit = 0;
    }
  end

let of_device d =
  create ~size_bytes:d.Device.tex_cache_bytes
    ~line_bytes:d.Device.tex_cache_line_bytes ~ways:d.Device.tex_cache_ways

let access t addr =
  if addr < 0 then invalid_arg "Texcache.access: negative address";
  t.n_access <- t.n_access + 1;
  if t.sets = 0 then false
  else begin
    t.clock <- t.clock + 1;
    let line = addr / t.line_bytes in
    let set = line mod t.sets in
    let base = set * t.ways in
    let rec find way =
      if way >= t.ways then None
      else if t.tags.(base + way) = line then Some way
      else find (way + 1)
    in
    match find 0 with
    | Some way ->
      t.age.(base + way) <- t.clock;
      t.n_hit <- t.n_hit + 1;
      true
    | None ->
      (* Evict the least recently used way. *)
      let victim = ref 0 in
      for way = 1 to t.ways - 1 do
        if t.age.(base + way) < t.age.(base + !victim) then victim := way
      done;
      t.tags.(base + !victim) <- line;
      t.age.(base + !victim) <- t.clock;
      false
  end

let accesses t = t.n_access
let hits t = t.n_hit

let hit_rate t =
  if t.n_access = 0 then 0. else float_of_int t.n_hit /. float_of_int t.n_access

let reset_stats t =
  t.n_access <- 0;
  t.n_hit <- 0;
  t.pub_access <- 0;
  t.pub_hit <- 0

let publish t metrics =
  let d_access = max 0 (t.n_access - t.pub_access) in
  let d_hit = max 0 (t.n_hit - t.pub_hit) in
  Ax_obs.Metrics.add metrics "texcache_accesses" d_access;
  Ax_obs.Metrics.add metrics "texcache_hits" d_hit;
  Ax_obs.Metrics.add metrics "texcache_misses" (max 0 (d_access - d_hit));
  Ax_obs.Metrics.set_gauge metrics "texcache_hit_rate" (hit_rate t);
  t.pub_access <- t.n_access;
  t.pub_hit <- t.n_hit

let flush t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.age 0 (Array.length t.age) 0;
  t.clock <- 0;
  reset_stats t

let lut_address ca cb = 2 * (((ca land 0xff) lsl 8) lor (cb land 0xff))

let simulate_lut_stream t pairs =
  reset_stats t;
  Array.iter (fun (ca, cb) -> ignore (access t (lut_address ca cb))) pairs;
  hit_rate t
