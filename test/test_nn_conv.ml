(* Convolution-path invariants:
   - float GEMM conv == float direct conv across geometries;
   - AxConv2D with the exact LUT == an independently-coded
     quantize/multiply/dequantize reference (the paper's Sec. II claim);
   - GEMM emulator strategy == direct-loop baseline strategy, bit-exact,
     for any LUT;
   - Eq. 4 correction-term algebra. *)

module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Rng = Ax_tensor.Rng
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec
module Conv_float = Ax_nn.Conv_float
module Axconv = Ax_nn.Axconv
module Conv_direct = Ax_nn.Conv_direct
module Im2col = Ax_nn.Im2col
module Q = Ax_quant.Quantization
module Round = Ax_quant.Round
module Range = Ax_quant.Range
module S = Ax_arith.Signedness
module Lut = Ax_arith.Lut
module Registry = Ax_arith.Registry

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let random_input ~seed shape =
  let t = Tensor.create shape in
  Tensor.fill_uniform ~lo:(-1.2) ~hi:1.7 (Rng.create seed) t;
  t

let random_filter ~seed ~kh ~kw ~in_c ~out_c =
  let f = Filter.create ~kh ~kw ~in_c ~out_c in
  let rng = Rng.create seed in
  Filter.fill_he_normal rng f;
  f

let specs_under_test =
  [
    Conv_spec.make ~padding:Conv_spec.Same ();
    Conv_spec.make ~padding:Conv_spec.Valid ();
    Conv_spec.make ~stride:2 ~padding:Conv_spec.Same ();
    Conv_spec.make ~stride:2 ~padding:Conv_spec.Valid ();
    Conv_spec.make ~dilation:2 ~padding:Conv_spec.Same ();
    Conv_spec.make ~stride:2 ~dilation:2 ~padding:Conv_spec.Same ();
  ]

(* --- float paths agree --- *)

let test_gemm_equals_direct_float () =
  List.iteri
    (fun i spec ->
      let input = random_input ~seed:(100 + i) (Shape.make ~n:2 ~h:9 ~w:9 ~c:3) in
      let filter = random_filter ~seed:(200 + i) ~kh:3 ~kw:3 ~in_c:3 ~out_c:4 in
      let bias = Array.init 4 (fun k -> 0.1 *. float_of_int k) in
      let a = Conv_float.direct ~input ~filter ~bias ~spec () in
      let b = Conv_float.gemm ~input ~filter ~bias ~spec () in
      check_bool
        (Printf.sprintf "gemm = direct (spec %d), diff %g" i
           (Tensor.max_abs_diff a b))
        true
        (Tensor.approx_equal ~tolerance:1e-4 a b))
    specs_under_test

let test_gemm_1x1_conv () =
  let input = random_input ~seed:1 (Shape.make ~n:1 ~h:5 ~w:5 ~c:8) in
  let filter = random_filter ~seed:2 ~kh:1 ~kw:1 ~in_c:8 ~out_c:3 in
  let spec = Conv_spec.make ~padding:Conv_spec.Valid () in
  let a = Conv_float.direct ~input ~filter ~spec () in
  let b = Conv_float.gemm ~input ~filter ~spec () in
  check_bool "1x1 conv" true (Tensor.approx_equal ~tolerance:1e-5 a b)

(* --- quantize/multiply/dequantize reference --- *)

(* Independent implementation: quantize both operands, run an integer
   direct convolution with an arbitrary integer multiplier, dequantize
   with the naive (non-Eq.4) formula sum alpha1(q1-b1)*alpha2(q2-b2). *)
let reference_conv ~multiply ~signedness ~round_mode ~input ~input_range
    ~filter ~filter_range ~spec =
  let c1 =
    Q.compute_coeffs signedness ~rmin:input_range.Range.min
      ~rmax:input_range.Range.max
  in
  let c2 =
    Q.compute_coeffs signedness ~rmin:filter_range.Range.min
      ~rmax:filter_range.Range.max
  in
  let s = Tensor.shape input in
  let plan =
    Im2col.make s ~kh:(Filter.kh filter) ~kw:(Filter.kw filter) ~spec
  in
  let out_shape = Conv_spec.output_shape spec s filter in
  let out = Tensor.create out_shape in
  let q_input v = Q.quantize c1 round_mode signedness v in
  let q_filter v = Q.quantize c2 round_mode signedness v in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to plan.Im2col.out_h - 1 do
      for ow = 0 to plan.Im2col.out_w - 1 do
        for k = 0 to Filter.out_c filter - 1 do
          let acc = ref 0 in
          let base_h = (oh * spec.Conv_spec.stride) - plan.Im2col.pad_top in
          let base_w = (ow * spec.Conv_spec.stride) - plan.Im2col.pad_left in
          for dh = 0 to Filter.kh filter - 1 do
            for dw = 0 to Filter.kw filter - 1 do
              let h = base_h + (dh * spec.Conv_spec.dilation) in
              let w = base_w + (dw * spec.Conv_spec.dilation) in
              for c = 0 to Shape.(s.c) - 1 do
                let x =
                  if h >= 0 && h < Shape.(s.h) && w >= 0 && w < Shape.(s.w)
                  then Tensor.get input ~n ~h ~w ~c
                  else 0.
                in
                let q1 = q_input x in
                let q2 = q_filter (Filter.get filter ~h:dh ~w:dw ~c ~k) in
                (* naive dequantized accumulation via Eq. 3 expansion *)
                acc :=
                  !acc + multiply q1 q2 - (c2.Q.beta * q1) - (c1.Q.beta * q2)
                  + (c1.Q.beta * c2.Q.beta)
              done
            done
          done;
          Tensor.set out ~n ~h:oh ~w:ow ~c:k
            (c1.Q.alpha *. c2.Q.alpha *. float_of_int !acc)
        done
      done
    done
  done;
  out

let run_axconv ?(strategy = `Gemm) ~entry ~chunk_size ~input ~filter ~spec ()
    =
  let lut = Registry.lut entry in
  let config = Axconv.make_config ~chunk_size lut in
  let input_range = Range.of_tensor input in
  let fmin, fmax = Filter.min_max filter in
  let filter_range = Range.make ~min:fmin ~max:fmax in
  let conv ~config ~input ~input_range ~filter ~filter_range ~spec () =
    match strategy with
    | `Gemm ->
      Axconv.conv ~config ~input ~input_range ~filter ~filter_range ~spec ()
    | `Direct ->
      Conv_direct.conv ~config ~input ~input_range ~filter ~filter_range ~spec
        ()
  in
  conv ~config ~input ~input_range ~filter ~filter_range ~spec ()

let test_axconv_matches_reference entry_name =
  let entry = Registry.find_exn entry_name in
  List.iteri
    (fun i spec ->
      let input =
        random_input ~seed:(300 + i) (Shape.make ~n:2 ~h:8 ~w:8 ~c:3)
      in
      let filter =
        random_filter ~seed:(400 + i) ~kh:3 ~kw:3 ~in_c:3 ~out_c:5
      in
      let input_range = Range.of_tensor input in
      let fmin, fmax = Filter.min_max filter in
      let filter_range = Range.make ~min:fmin ~max:fmax in
      let want =
        reference_conv ~multiply:entry.Registry.multiply
          ~signedness:entry.Registry.signedness ~round_mode:Round.Nearest_even
          ~input ~input_range ~filter ~filter_range ~spec
      in
      let got = run_axconv ~entry ~chunk_size:1 ~input ~filter ~spec () in
      check_bool
        (Printf.sprintf "axconv(%s) = reference (spec %d), diff %g" entry_name
           i
           (Tensor.max_abs_diff want got))
        true
        (Tensor.approx_equal ~tolerance:1e-4 want got))
    specs_under_test

let test_axconv_exact_lut_reference () = test_axconv_matches_reference "mul8s_exact"
let test_axconv_trunc_lut_reference () = test_axconv_matches_reference "mul8s_trunc6"

let test_axconv_unsigned_lut_reference () =
  (* Unsigned quantization of signed data: clamping makes this the
     stress case for the zero-point logic. *)
  test_axconv_matches_reference "mul8u_exact"

let test_axconv_exact_close_to_float () =
  (* With the exact LUT the only deviation from the float conv is
     quantization noise, bounded by the scales. *)
  let input = random_input ~seed:7 (Shape.make ~n:1 ~h:10 ~w:10 ~c:3) in
  let filter = random_filter ~seed:8 ~kh:3 ~kw:3 ~in_c:3 ~out_c:4 in
  let spec = Conv_spec.default in
  let float_out = Conv_float.gemm ~input ~filter ~spec () in
  let entry = Registry.find_exn "mul8s_exact" in
  let got = run_axconv ~entry ~chunk_size:4 ~input ~filter ~spec () in
  let diff = Tensor.max_abs_diff float_out got in
  (* 27 taps, per-product error ~ alpha1*|q2|max/2 + alpha2*|q1|max/2. *)
  check_bool (Printf.sprintf "quantization noise only (%g)" diff) true
    (diff < 0.3)

let test_gemm_strategy_equals_direct_strategy () =
  List.iter
    (fun entry_name ->
      let entry = Registry.find_exn entry_name in
      List.iteri
        (fun i spec ->
          let input =
            random_input ~seed:(500 + i) (Shape.make ~n:3 ~h:7 ~w:7 ~c:2)
          in
          let filter =
            random_filter ~seed:(600 + i) ~kh:3 ~kw:3 ~in_c:2 ~out_c:3
          in
          let a = run_axconv ~strategy:`Gemm ~entry ~chunk_size:2 ~input ~filter ~spec () in
          let b = run_axconv ~strategy:`Direct ~entry ~chunk_size:2 ~input ~filter ~spec () in
          check_bool
            (Printf.sprintf "strategies agree (%s, spec %d)" entry_name i)
            true
            (Tensor.max_abs_diff a b = 0.))
        specs_under_test)
    [ "mul8s_exact"; "mul8s_trunc6"; "mul8u_drum4" ]

let test_chunking_invariance () =
  (* Algorithm 1 splits the batch into chunks; results must not depend
     on the chunk size. *)
  let input = random_input ~seed:9 (Shape.make ~n:7 ~h:6 ~w:6 ~c:3) in
  let filter = random_filter ~seed:10 ~kh:3 ~kw:3 ~in_c:3 ~out_c:4 in
  let spec = Conv_spec.default in
  let entry = Registry.find_exn "mul8s_trunc6" in
  let base = run_axconv ~entry ~chunk_size:7 ~input ~filter ~spec () in
  List.iter
    (fun chunk_size ->
      let got = run_axconv ~entry ~chunk_size ~input ~filter ~spec () in
      check_bool
        (Printf.sprintf "chunk size %d" chunk_size)
        true
        (Tensor.max_abs_diff base got = 0.))
    [ 1; 2; 3; 4; 250 ]

let test_bias_applied () =
  let input = random_input ~seed:11 (Shape.make ~n:1 ~h:4 ~w:4 ~c:1) in
  let filter = random_filter ~seed:12 ~kh:1 ~kw:1 ~in_c:1 ~out_c:2 in
  let spec = Conv_spec.default in
  let entry = Registry.find_exn "mul8s_exact" in
  let lut = Registry.lut entry in
  let config = Axconv.make_config lut in
  let input_range = Range.of_tensor input in
  let fmin, fmax = Filter.min_max filter in
  let filter_range = Range.make ~min:fmin ~max:fmax in
  let without =
    Axconv.conv ~config ~input ~input_range ~filter ~filter_range ~spec ()
  in
  let bias = [| 1.5; -0.5 |] in
  let with_bias =
    Axconv.conv ~config ~input ~input_range ~filter ~filter_range ~bias ~spec
      ()
  in
  let d0 =
    Tensor.get with_bias ~n:0 ~h:0 ~w:0 ~c:0
    -. Tensor.get without ~n:0 ~h:0 ~w:0 ~c:0
  in
  let d1 =
    Tensor.get with_bias ~n:0 ~h:2 ~w:3 ~c:1
    -. Tensor.get without ~n:0 ~h:2 ~w:3 ~c:1
  in
  Alcotest.(check (float 1e-5)) "bias channel 0" 1.5 d0;
  Alcotest.(check (float 1e-5)) "bias channel 1" (-0.5) d1

let test_bad_bias_rejected () =
  let input = random_input ~seed:13 (Shape.make ~n:1 ~h:4 ~w:4 ~c:1) in
  let filter = random_filter ~seed:14 ~kh:1 ~kw:1 ~in_c:1 ~out_c:2 in
  let entry = Registry.find_exn "mul8s_exact" in
  let lut = Registry.lut entry in
  let config = Axconv.make_config lut in
  let input_range = Range.of_tensor input in
  let filter_range = Range.make ~min:(-1.) ~max:1. in
  Alcotest.check_raises "bias mismatch"
    (Invalid_argument "Axconv.conv: bias length differs from filter count")
    (fun () ->
      ignore
        (Axconv.conv ~config ~input ~input_range ~filter ~filter_range
           ~bias:[| 1. |] ~spec:Conv_spec.default ()))

(* --- per-channel filter quantization --- *)

(* A filter bank whose output channels live on very different scales:
   the per-tensor scheme wastes almost all codes on the large channel. *)
let scale_skewed_filter ~seed ~out_c =
  let f = random_filter ~seed ~kh:3 ~kw:3 ~in_c:3 ~out_c in
  let data = Filter.raw_data f in
  Filter.iter f (fun ~h ~w ~c ~k _ ->
      let idx = ((((h * 3) + w) * 3 + c) * out_c) + k in
      let scale = if k = 0 then 0.01 else 1.0 in
      data.(idx) <- data.(idx) *. scale);
  f

let run_axconv_granularity ~granularity ~entry ~input ~filter ~spec =
  let lut = Registry.lut entry in
  let config = Axconv.make_config ~granularity lut in
  let input_range = Range.of_tensor input in
  let fmin, fmax = Filter.min_max filter in
  let filter_range = Range.make ~min:fmin ~max:fmax in
  Axconv.conv ~config ~input ~input_range ~filter ~filter_range ~spec ()

let test_per_channel_coeffs () =
  let filter = scale_skewed_filter ~seed:31 ~out_c:3 in
  let fmin, fmax = Filter.min_max filter in
  let range = Range.make ~min:fmin ~max:fmax in
  let per_tensor =
    Axconv.filter_coeffs Axconv.Per_tensor S.Signed filter range
  in
  let per_channel =
    Axconv.filter_coeffs Axconv.Per_channel S.Signed filter range
  in
  check_int "per-tensor entries" 3 (Array.length per_tensor);
  check_bool "per-tensor all equal" true
    (per_tensor.(0) = per_tensor.(1) && per_tensor.(1) = per_tensor.(2));
  check_bool "small channel gets finer scale" true
    (per_channel.(0).Ax_quant.Quantization.alpha
    < 0.5 *. per_channel.(1).Ax_quant.Quantization.alpha)

let test_per_channel_more_accurate_on_skewed_filters () =
  let input = random_input ~seed:32 (Shape.make ~n:1 ~h:8 ~w:8 ~c:3) in
  let filter = scale_skewed_filter ~seed:33 ~out_c:3 in
  let spec = Conv_spec.default in
  let float_out = Conv_float.gemm ~input ~filter ~spec () in
  let entry = Registry.find_exn "mul8s_exact" in
  let per_tensor =
    run_axconv_granularity ~granularity:Axconv.Per_tensor ~entry ~input
      ~filter ~spec
  in
  let per_channel =
    run_axconv_granularity ~granularity:Axconv.Per_channel ~entry ~input
      ~filter ~spec
  in
  (* Compare error restricted to the small-scale channel, where the
     per-tensor scheme loses nearly all resolution. *)
  let channel_error out =
    let worst = ref 0. in
    let s = Tensor.shape out in
    for n = 0 to Shape.(s.n) - 1 do
      for h = 0 to Shape.(s.h) - 1 do
        for w = 0 to Shape.(s.w) - 1 do
          let d =
            abs_float
              (Tensor.get out ~n ~h ~w ~c:0 -. Tensor.get float_out ~n ~h ~w ~c:0)
          in
          if d > !worst then worst := d
        done
      done
    done;
    !worst
  in
  let pt = channel_error per_tensor and pc = channel_error per_channel in
  check_bool
    (Printf.sprintf "per-channel sharper on small channel (%.5f < %.5f)" pc pt)
    true
    (pc < 0.5 *. pt)

let test_per_channel_strategies_agree () =
  let input = random_input ~seed:34 (Shape.make ~n:2 ~h:6 ~w:6 ~c:3) in
  let filter = scale_skewed_filter ~seed:35 ~out_c:4 in
  let entry = Registry.find_exn "mul8s_trunc6" in
  let lut = Registry.lut entry in
  let config = Axconv.make_config ~granularity:Axconv.Per_channel lut in
  let input_range = Range.of_tensor input in
  let fmin, fmax = Filter.min_max filter in
  let filter_range = Range.make ~min:fmin ~max:fmax in
  let spec = Conv_spec.default in
  let a =
    Axconv.conv ~config ~input ~input_range ~filter ~filter_range ~spec ()
  in
  let b =
    Conv_direct.conv ~config ~input ~input_range ~filter ~filter_range ~spec
      ()
  in
  check_bool "per-channel strategies bit-identical" true
    (Tensor.max_abs_diff a b = 0.)

let test_per_channel_exact_lut_reference () =
  (* Per-channel with exact LUT: channel k must match a quantize/
     dequantize reference built with that channel's own coefficients. *)
  let input = random_input ~seed:36 (Shape.make ~n:1 ~h:6 ~w:6 ~c:2) in
  (* 2-in/2-out filter with channel 0 two orders of magnitude smaller. *)
  let filter =
    let f = random_filter ~seed:37 ~kh:3 ~kw:3 ~in_c:2 ~out_c:2 in
    let data = Filter.raw_data f in
    Array.iteri (fun i v -> if i mod 2 = 0 then data.(i) <- v *. 0.01) data;
    f
  in
  let spec = Conv_spec.default in
  let entry = Registry.find_exn "mul8s_exact" in
  let got =
    run_axconv_granularity ~granularity:Axconv.Per_channel ~entry ~input
      ~filter ~spec
  in
  (* Reference: float conv on dequantized (per-channel) operands. *)
  let signedness = S.Signed in
  let mn, mx = Tensor.min_max input in
  let c1 = Q.compute_coeffs signedness ~rmin:mn ~rmax:mx in
  let fmin, fmax = Filter.min_max filter in
  let coeffs2 =
    Axconv.filter_coeffs Axconv.Per_channel signedness filter
      (Range.make ~min:fmin ~max:fmax)
  in
  let dq_input =
    Tensor.map
      (fun v ->
        Q.dequantize c1 (Q.quantize c1 Round.Nearest_even signedness v))
      input
  in
  let dq_filter = Filter.create ~kh:3 ~kw:3 ~in_c:2 ~out_c:2 in
  Filter.iter filter (fun ~h ~w ~c ~k v ->
      Filter.set dq_filter ~h ~w ~c ~k
        (Q.dequantize coeffs2.(k)
           (Q.quantize coeffs2.(k) Round.Nearest_even signedness v)));
  let want = Conv_float.direct ~input:dq_input ~filter:dq_filter ~spec () in
  check_bool
    (Printf.sprintf "per-channel matches dequantized reference (%g)"
       (Tensor.max_abs_diff want got))
    true
    (Tensor.approx_equal ~tolerance:1e-4 want got)

(* --- accumulator models --- *)

let test_accumulator_unit_semantics () =
  let module A = Ax_nn.Accumulator in
  check_int "wide" 100 (A.add A.Wide 70 30);
  check_int "sat hi" 127 (A.add (A.Saturating 8) 120 30);
  check_int "sat lo" (-128) (A.add (A.Saturating 8) (-120) (-30));
  check_int "sat inside" 50 (A.add (A.Saturating 8) 20 30);
  check_int "wrap" (-106) (A.add (A.Wrapping 8) 120 30);
  check_int "wrap inside" 50 (A.add (A.Wrapping 8) 20 30);
  Alcotest.check_raises "width range"
    (Invalid_argument "Accumulator: width must be in 2..62") (fun () ->
      A.validate (A.Saturating 1))

let run_axconv_acc ~accumulator ~entry ~input ~filter ~spec ~strategy =
  let lut = Registry.lut entry in
  let config = Axconv.make_config ~accumulator lut in
  let input_range = Range.of_tensor input in
  let fmin, fmax = Filter.min_max filter in
  let filter_range = Range.make ~min:fmin ~max:fmax in
  let conv ~config ~input ~input_range ~filter ~filter_range ~spec () =
    match strategy with
    | `Gemm ->
      Axconv.conv ~config ~input ~input_range ~filter ~filter_range ~spec ()
    | `Direct ->
      Conv_direct.conv ~config ~input ~input_range ~filter ~filter_range ~spec
        ()
  in
  conv ~config ~input ~input_range ~filter ~filter_range ~spec ()

let test_wide_equals_sat32 () =
  (* The paper's 32-bit accumulator never saturates at these sizes. *)
  let input = random_input ~seed:41 (Shape.make ~n:1 ~h:8 ~w:8 ~c:3) in
  let filter = random_filter ~seed:42 ~kh:3 ~kw:3 ~in_c:3 ~out_c:4 in
  let entry = Registry.find_exn "mul8s_exact" in
  let spec = Conv_spec.default in
  let wide =
    run_axconv_acc ~accumulator:Ax_nn.Accumulator.Wide ~entry ~input ~filter
      ~spec ~strategy:`Gemm
  in
  let sat32 =
    run_axconv_acc ~accumulator:(Ax_nn.Accumulator.Saturating 32) ~entry
      ~input ~filter ~spec ~strategy:`Gemm
  in
  check_bool "32-bit never saturates here" true
    (Tensor.max_abs_diff wide sat32 = 0.)

let test_narrow_accumulator_deviates_and_strategies_agree () =
  let input = random_input ~seed:43 (Shape.make ~n:1 ~h:8 ~w:8 ~c:3) in
  let filter = random_filter ~seed:44 ~kh:3 ~kw:3 ~in_c:3 ~out_c:4 in
  let entry = Registry.find_exn "mul8s_exact" in
  let spec = Conv_spec.default in
  let wide =
    run_axconv_acc ~accumulator:Ax_nn.Accumulator.Wide ~entry ~input ~filter
      ~spec ~strategy:`Gemm
  in
  let narrow =
    run_axconv_acc ~accumulator:(Ax_nn.Accumulator.Saturating 12) ~entry
      ~input ~filter ~spec ~strategy:`Gemm
  in
  check_bool "12-bit accumulator changes results" true
    (Tensor.max_abs_diff wide narrow > 0.);
  let narrow_direct =
    run_axconv_acc ~accumulator:(Ax_nn.Accumulator.Saturating 12) ~entry
      ~input ~filter ~spec ~strategy:`Direct
  in
  check_bool "strategies agree under saturation" true
    (Tensor.max_abs_diff narrow narrow_direct = 0.)

let test_saturating_less_destructive_than_wrapping () =
  (* Classic result: on overflow, saturation degrades gracefully while
     wrap-around is catastrophic. *)
  let input = random_input ~seed:45 (Shape.make ~n:1 ~h:8 ~w:8 ~c:3) in
  let filter = random_filter ~seed:46 ~kh:3 ~kw:3 ~in_c:3 ~out_c:4 in
  let entry = Registry.find_exn "mul8s_exact" in
  let spec = Conv_spec.default in
  let reference =
    run_axconv_acc ~accumulator:Ax_nn.Accumulator.Wide ~entry ~input ~filter
      ~spec ~strategy:`Gemm
  in
  let err accumulator =
    let out =
      run_axconv_acc ~accumulator ~entry ~input ~filter ~spec ~strategy:`Gemm
    in
    Tensor.max_abs_diff reference out
  in
  let sat = err (Ax_nn.Accumulator.Saturating 11) in
  let wrap = err (Ax_nn.Accumulator.Wrapping 11) in
  check_bool
    (Printf.sprintf "saturating (%.3f) <= wrapping (%.3f)" sat wrap)
    true (sat <= wrap)

let test_lower_or_accumulator_semantics () =
  let module A = Ax_nn.Accumulator in
  (* approx_low = 0 degenerates to plain wrapping. *)
  for a = -40 to 40 do
    for b = -40 to 40 do
      check_int "loa(w,0) = wrap w"
        (A.add (A.Wrapping 8) a b)
        (A.add (A.Lower_or { width = 8; approx_low = 0 }) a b)
    done
  done;
  (* The LOA error per step is bounded by 2^approx_low. *)
  for a = 0 to 60 do
    for b = 0 to 60 do
      let approx = A.add (A.Lower_or { width = 8; approx_low = 3 }) a b in
      check_bool "LOA error bound" true (abs (approx - (a + b)) < 8)
    done
  done;
  Alcotest.check_raises "approx_low bound"
    (Invalid_argument "Accumulator: approx_low must be below the width")
    (fun () -> A.validate (A.Lower_or { width = 8; approx_low = 8 }))

let test_lower_or_accumulator_in_conv () =
  let input = random_input ~seed:47 (Shape.make ~n:1 ~h:6 ~w:6 ~c:2) in
  let filter = random_filter ~seed:48 ~kh:3 ~kw:3 ~in_c:2 ~out_c:3 in
  let entry = Registry.find_exn "mul8s_exact" in
  let spec = Conv_spec.default in
  let out =
    run_axconv_acc
      ~accumulator:(Ax_nn.Accumulator.Lower_or { width = 20; approx_low = 4 })
      ~entry ~input ~filter ~spec ~strategy:`Gemm
  in
  Tensor.iteri_flat
    (fun _ v -> if not (Float.is_finite v) then Alcotest.fail "non-finite")
    out;
  let direct =
    run_axconv_acc
      ~accumulator:(Ax_nn.Accumulator.Lower_or { width = 20; approx_low = 4 })
      ~entry ~input ~filter ~spec ~strategy:`Direct
  in
  check_bool "strategies agree under LOA" true
    (Tensor.max_abs_diff out direct = 0.)

(* --- round modes --- *)

let test_round_mode_effect_on_conv () =
  let input = random_input ~seed:61 (Shape.make ~n:1 ~h:8 ~w:8 ~c:3) in
  let filter = random_filter ~seed:62 ~kh:3 ~kw:3 ~in_c:3 ~out_c:4 in
  let spec = Conv_spec.default in
  let float_out = Conv_float.gemm ~input ~filter ~spec () in
  let lut = Registry.lut (Registry.find_exn "mul8s_exact") in
  let err round_mode =
    let config = Axconv.make_config ~round_mode lut in
    let input_range = Range.of_tensor input in
    let fmin, fmax = Filter.min_max filter in
    let filter_range = Range.make ~min:fmin ~max:fmax in
    Tensor.max_abs_diff float_out
      (Axconv.conv ~config ~input ~input_range ~filter ~filter_range ~spec ())
  in
  let nearest = err Round.Nearest_even in
  let trunc = err Round.Toward_zero in
  check_bool
    (Printf.sprintf "truncation rounding hurts more (%.4f vs %.4f)" trunc
       nearest)
    true (trunc > nearest);
  (* Stochastic rounding is deterministic per input (hash-based). *)
  check_bool "stochastic reproducible" true
    (err Round.Stochastic = err Round.Stochastic)

(* --- domain parallelism --- *)

let test_domains_bit_identical () =
  let input = random_input ~seed:51 (Shape.make ~n:3 ~h:12 ~w:12 ~c:3) in
  let filter = random_filter ~seed:52 ~kh:3 ~kw:3 ~in_c:3 ~out_c:8 in
  let entry = Registry.find_exn "mul8s_trunc6" in
  let spec = Conv_spec.default in
  let run domains =
    let config = Axconv.make_config ~domains (Registry.lut entry) in
    let input_range = Range.of_tensor input in
    let fmin, fmax = Filter.min_max filter in
    let filter_range = Range.make ~min:fmin ~max:fmax in
    Axconv.conv ~config ~input ~input_range ~filter ~filter_range ~spec ()
  in
  let single = run 1 in
  List.iter
    (fun domains ->
      check_bool
        (Printf.sprintf "%d domains bit-identical" domains)
        true
        (Tensor.max_abs_diff single (run domains) = 0.))
    [ 2; 3; 4; 7 ]

let test_domains_validation () =
  let entry = Registry.find_exn "mul8s_exact" in
  Alcotest.check_raises "zero domains"
    (Invalid_argument "Axconv.make_config: domains must be in 1..64")
    (fun () ->
      ignore (Axconv.make_config ~domains:0 (Registry.lut entry)))

(* --- Eq. 4 algebra --- *)

let test_eq4_correction_algebra () =
  (* sum (q1-b1)(q2-b2) = sum q1 q2 - b2 S1 - b1 S2 + N b1 b2 for random
     integer vectors: the identity Algorithm 1's corrections rely on. *)
  let rng = Rng.create 99 in
  for _ = 1 to 100 do
    let n = 1 + Rng.int rng 64 in
    let q1 = Array.init n (fun _ -> Rng.int rng 256 - 128) in
    let q2 = Array.init n (fun _ -> Rng.int rng 256 - 128) in
    let b1 = Rng.int rng 256 - 128 and b2 = Rng.int rng 256 - 128 in
    let lhs = ref 0 and sqq = ref 0 and s1 = ref 0 and s2 = ref 0 in
    for i = 0 to n - 1 do
      lhs := !lhs + ((q1.(i) - b1) * (q2.(i) - b2));
      sqq := !sqq + (q1.(i) * q2.(i));
      s1 := !s1 + q1.(i);
      s2 := !s2 + q2.(i)
    done;
    let rhs = !sqq - (b2 * !s1) - (b1 * !s2) + (n * b1 * b2) in
    check_int "Eq.4 identity" !lhs rhs
  done

(* --- quantize_filters --- *)

let test_quantize_filters_sums () =
  let filter = random_filter ~seed:15 ~kh:3 ~kw:3 ~in_c:2 ~out_c:3 in
  let fmin, fmax = Filter.min_max filter in
  let c = Q.compute_coeffs S.Signed ~rmin:fmin ~rmax:fmax in
  let mf_t, sf =
    Axconv.quantize_filters S.Signed c Round.Nearest_even filter
  in
  check_int "matrix size" (3 * 18) (Bytes.length mf_t);
  (* Sf must equal the sum of decoded codes per filter. *)
  for k = 0 to 2 do
    let sum = ref 0 in
    for tap = 0 to 17 do
      let code = Bytes.get_uint8 mf_t ((k * 18) + tap) in
      sum := !sum + S.value_of_code S.Signed code
    done;
    check_int (Printf.sprintf "Sf[%d]" k) sf.(k) !sum
  done

(* --- im2col codes --- *)

let test_im2col_padding_uses_zero_point () =
  (* An input whose range excludes zero still pads with quantized 0. *)
  let shape = Shape.make ~n:1 ~h:2 ~w:2 ~c:1 in
  let input = Tensor.of_array shape [| 5.; 6.; 7.; 8. |] in
  let spec = Conv_spec.make ~padding:Conv_spec.Same () in
  let plan = Im2col.make shape ~kh:3 ~kw:3 ~spec in
  let coeffs = Q.compute_coeffs S.Unsigned ~rmin:5. ~rmax:8. in
  let mp, sp =
    Im2col.to_codes plan input ~coeffs ~round_mode:Round.Nearest_even
      ~signedness:S.Unsigned
  in
  (* Top-left output position: 5 of 9 taps are padding. *)
  let zero_code = coeffs.Q.beta land 0xff in
  check_int "corner tap is zero-point" zero_code (Bytes.get_uint8 mp 0);
  (* compute_coeffs extends the range to [0,8], so beta = 0 here and the
     padding contributes 0 to Sp. *)
  check_int "beta is 0 for [0,8]" 0 coeffs.Q.beta;
  check_bool "sp includes only real cells" true (sp.(0) > 0)

let test_im2col_shape_mismatch_rejected () =
  let plan =
    Im2col.make (Shape.make ~n:1 ~h:4 ~w:4 ~c:1) ~kh:3 ~kw:3
      ~spec:Conv_spec.default
  in
  let wrong = Tensor.create (Shape.make ~n:1 ~h:5 ~w:5 ~c:1) in
  Alcotest.check_raises "plan mismatch"
    (Invalid_argument "Im2col.to_matrix: input shape differs from plan")
    (fun () -> ignore (Im2col.to_matrix plan wrong))

(* --- qcheck --- *)

let prop_axconv_strategies_agree =
  QCheck.Test.make ~name:"gemm and direct strategies bit-identical"
    ~count:25
    QCheck.(triple small_int (int_range 1 3) (int_range 1 2))
    (fun (seed, stride, n) ->
      let input =
        random_input ~seed (Shape.make ~n ~h:6 ~w:6 ~c:2)
      in
      let filter =
        random_filter ~seed:(seed + 1000) ~kh:3 ~kw:3 ~in_c:2 ~out_c:2
      in
      let spec = Conv_spec.make ~stride ~padding:Conv_spec.Same () in
      let entry = Registry.find_exn "mul8s_mitchell" in
      let a = run_axconv ~strategy:`Gemm ~entry ~chunk_size:1 ~input ~filter ~spec () in
      let b = run_axconv ~strategy:`Direct ~entry ~chunk_size:1 ~input ~filter ~spec () in
      Tensor.max_abs_diff a b = 0.)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest [ prop_axconv_strategies_agree ] in
  Alcotest.run "ax_nn_conv"
    [
      ( "float",
        [
          Alcotest.test_case "gemm = direct across specs" `Quick
            test_gemm_equals_direct_float;
          Alcotest.test_case "1x1 conv" `Quick test_gemm_1x1_conv;
        ] );
      ( "axconv",
        [
          Alcotest.test_case "exact signed LUT = reference" `Quick
            test_axconv_exact_lut_reference;
          Alcotest.test_case "truncated LUT = reference" `Quick
            test_axconv_trunc_lut_reference;
          Alcotest.test_case "unsigned LUT = reference" `Quick
            test_axconv_unsigned_lut_reference;
          Alcotest.test_case "exact LUT close to float conv" `Quick
            test_axconv_exact_close_to_float;
          Alcotest.test_case "gemm = direct strategy" `Quick
            test_gemm_strategy_equals_direct_strategy;
          Alcotest.test_case "chunking invariance" `Quick
            test_chunking_invariance;
          Alcotest.test_case "bias applied" `Quick test_bias_applied;
          Alcotest.test_case "bad bias rejected" `Quick test_bad_bias_rejected;
        ] );
      ( "per-channel",
        [
          Alcotest.test_case "coefficient derivation" `Quick
            test_per_channel_coeffs;
          Alcotest.test_case "sharper on skewed filters" `Quick
            test_per_channel_more_accurate_on_skewed_filters;
          Alcotest.test_case "strategies agree" `Quick
            test_per_channel_strategies_agree;
          Alcotest.test_case "matches dequantized reference" `Quick
            test_per_channel_exact_lut_reference;
        ] );
      ( "accumulator",
        [
          Alcotest.test_case "unit semantics" `Quick
            test_accumulator_unit_semantics;
          Alcotest.test_case "wide = sat32" `Quick test_wide_equals_sat32;
          Alcotest.test_case "narrow deviates, strategies agree" `Quick
            test_narrow_accumulator_deviates_and_strategies_agree;
          Alcotest.test_case "saturate <= wrap damage" `Quick
            test_saturating_less_destructive_than_wrapping;
          Alcotest.test_case "lower-or semantics" `Quick
            test_lower_or_accumulator_semantics;
          Alcotest.test_case "lower-or in conv" `Quick
            test_lower_or_accumulator_in_conv;
        ] );
      ( "round-modes",
        [
          Alcotest.test_case "truncation vs nearest on conv" `Quick
            test_round_mode_effect_on_conv;
        ] );
      ( "domains",
        [
          Alcotest.test_case "bit-identical across domain counts" `Quick
            test_domains_bit_identical;
          Alcotest.test_case "validation" `Quick test_domains_validation;
        ] );
      ( "algebra",
        [
          Alcotest.test_case "Eq.4 identity" `Quick
            test_eq4_correction_algebra;
          Alcotest.test_case "quantize_filters sums" `Quick
            test_quantize_filters_sums;
        ] );
      ( "im2col",
        [
          Alcotest.test_case "padding uses zero-point" `Quick
            test_im2col_padding_uses_zero_point;
          Alcotest.test_case "shape mismatch rejected" `Quick
            test_im2col_shape_mismatch_rejected;
        ] );
      ("properties", qsuite);
    ]
