(** Run mode, thread keys and the finding registry of the checked
    synchronization layer ([Ax_conc]).

    The shims ({!Mutex}, {!Condition}, {!Atomic}, {!Race}) call into
    this module in [Record] mode; {!Explore} reroutes them through
    {!set_explore} hooks instead.  In [Off] mode (the default, and the
    [TFAPPROX_CONC=off] setting) every shim operation is the underlying
    Stdlib operation behind a single atomic load — the zero-cost
    passthrough contract the gemm bench gates.

    Findings use a small closed code set; {!Ax_analysis.Conc_check}
    maps them onto the CONC rule family of the diagnostics catalogue:
    ["lock-cycle"], ["rank-violation"], ["relock"], ["unlock-unheld"],
    ["bare-section"], ["data-race"]. *)

type mode = Off | Record

val mode_of_env : unit -> mode
(** [TFAPPROX_CONC]: unset/[off]/[0]/[false]/[no] -> [Off], anything
    else ([on], [record], [1]) -> [Record].  Read once at module
    initialization; {!set_mode} overrides at runtime. *)

val set_mode : mode -> unit
val mode : unit -> mode

val enabled : unit -> bool
(** Any slow path active (record mode or explore hooks installed)? *)

val tracking : unit -> bool
(** Record mode specifically. *)

val thread_key : unit -> int
(** Process-unique key of the calling systhread (domain id folded in,
    since [Thread.id] is only unique within one domain). *)

(** {1 Findings} *)

type finding = {
  code : string;  (** closed code set, see module docstring *)
  subject : string;  (** lock or cell name *)
  detail : string;
}

val finding_to_string : finding -> string
val report : code:string -> subject:string -> string -> unit

val findings : unit -> finding list
(** Findings reported so far, oldest first, without running the
    collection-time passes. *)

val collect : unit -> finding list
(** Run the collection-time passes (lock-order cycle detection over the
    acquisition graph, bare-section lint) and return all findings. *)

val reset : unit -> unit
(** Clear findings and all dynamic discipline state (held stacks,
    clocks, the acquisition graph, cells, the op counter).  Call
    between independent checking sections. *)

val ops : unit -> int
(** Shim operations seen in record mode since the last {!reset} — the
    bench runs a workload once under [Record] to count its
    synchronization operations, then multiplies by the microbenchmarked
    per-operation passthrough cost to gate the off-mode overhead. *)

(** {1 Shim hooks (internal)}

    Called by the sibling shim modules in record mode; exposed because
    the library is split across files, not for external use. *)

val fresh_id : unit -> int

val on_pre_acquire :
  id:int -> name:string -> order:int option -> protected:bool -> unit

val on_acquire :
  id:int -> name:string -> order:int option -> protected:bool -> unit

val on_release : id:int -> name:string -> unit
val held_protected : id:int -> bool
val on_sync : id:int -> unit
val on_cell_access : id:int -> name:string -> Vclock.access -> unit

(** {1 Explore rerouting (internal)} *)

type explore_hooks = {
  owner : int;  (** {!thread_key} of the exploring thread *)
  x_lock : id:int -> name:string -> unit;
  x_unlock : id:int -> name:string -> unit;
  x_wait : cond:int -> cname:string -> m:int -> mname:string -> unit;
  x_signal : cond:int -> unit;
  x_broadcast : cond:int -> unit;
  x_cell : id:int -> name:string -> write:bool -> unit;
  x_sync : id:int -> unit;
}

val set_explore : explore_hooks option -> unit

val explore_for_me : unit -> explore_hooks option
(** The installed hooks iff the calling thread installed them — other
    threads (idle pool workers, say) keep their real synchronization
    mid-exploration. *)
