test/test_properties.ml: Alcotest Array Ax_arith Ax_data Ax_models Ax_netlist Ax_nn Ax_quant Ax_tensor Float List QCheck QCheck_alcotest Tfapprox
