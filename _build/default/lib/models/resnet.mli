(** CIFAR-style residual networks (He et al., ref. [13]) — the Table I
    workloads.

    Depth [d] must satisfy [(d - 2) mod 6 = 0]; the network is the
    standard CIFAR ResNet: a 3x3 stem to 16 channels, three stages of
    [(d-2)/6] basic blocks at 16/32/64 channels (spatial downsampling by
    stride-2 at stage boundaries, option-A zero-padded identity
    shortcuts — no projection convolutions, so the convolution count is
    [L = d - 1], matching Table I's [L] column), global average pooling
    and a dense softmax head. *)

val table1_depths : int list
(** The ten depths of Table I: 8, 14, ..., 62. *)

val conv_layer_count : int -> int
(** [conv_layer_count depth = depth - 1]; raises on invalid depth. *)

val build :
  ?seed:int -> ?classes:int -> ?with_batch_norm:bool -> depth:int -> unit ->
  Ax_nn.Graph.t
(** Construct the graph with deterministic synthetic weights.
    [with_batch_norm] defaults to [true]; switch off for pure-conv
    benchmarking graphs.  Raises [Invalid_argument] on invalid depth. *)

val input_shape : batch:int -> Ax_tensor.Shape.t
(** The CIFAR input geometry: [batch x 32 x 32 x 3]. *)

val macs_per_image : depth:int -> int
(** Convolution MACs for one image (Table I's "# MACs" axis — our
    architecture's count; see EXPERIMENTS.md for the offset vs the
    paper's figures). *)
