module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Q = Ax_quant.Quantization
module Round = Ax_quant.Round
module Range = Ax_quant.Range
module Lut = Ax_arith.Lut
module S = Ax_arith.Signedness

let conv ?profile ~config ~input ~input_range ~filter ~filter_range ?bias
    ~spec () =
  (match bias with
  | Some b when Array.length b <> Filter.out_c filter ->
    invalid_arg "Conv_direct.conv: bias length differs from filter count"
  | Some _ | None -> ());
  let charge phase f =
    match profile with Some p -> Profile.time p phase f | None -> f ()
  in
  let lut = config.Axconv.lut in
  let signedness = Lut.signedness lut in
  let out_shape = Conv_spec.output_shape spec (Tensor.shape input) filter in
  let out = charge Profile.Init (fun () -> Tensor.create out_shape) in
  let coeffs1, coeffs2, mf_t, sf =
    charge Profile.Quantization (fun () ->
        let coeffs1 =
          Q.compute_coeffs signedness ~rmin:input_range.Range.min
            ~rmax:input_range.Range.max
        in
        let coeffs2 =
          Axconv.filter_coeffs config.Axconv.granularity signedness filter
            filter_range
        in
        let mf_t, sf =
          Axconv.quantize_filters_per_channel signedness coeffs2
            config.Axconv.round_mode filter
        in
        (coeffs1, coeffs2, mf_t, sf))
  in
  let s = Tensor.shape input in
  let plan =
    Im2col.make s ~kh:(Filter.kh filter) ~kw:(Filter.kw filter) ~spec
  in
  let taps = Filter.taps filter and out_c = Filter.out_c filter in
  let beta1 = coeffs1.Q.beta in
  let alpha12 = Array.map (fun c -> coeffs1.Q.alpha *. c.Q.alpha) coeffs2 in
  let beta2 = Array.map (fun c -> c.Q.beta) coeffs2 in
  let n_beta12 = Array.map (fun b2 -> taps * beta1 * b2) beta2 in
  let inv_alpha1 = 1. /. coeffs1.Q.alpha in
  let beta1f = float_of_int beta1 in
  let buf = Tensor.buffer input in
  let out_buf = Tensor.buffer out in
  let window = Bytes.create taps in
  let zero_code = beta1 land 0xff in
  let in_h = Shape.(s.h) and in_w = Shape.(s.w) and in_c = Shape.(s.c) in
  let row = ref 0 in
  (* The loop nest "directly stems from the definition of the
     convolution" (Sec. III quoting ref. [12]): batch, output pixel,
     output channel — so the input window is re-quantized for every
     output channel, which is why Fig. 2 shows quantization dominating
     this baseline. *)
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to plan.Im2col.out_h - 1 do
      for ow = 0 to plan.Im2col.out_w - 1 do
        let out_base = !row * out_c in
        for k = 0 to out_c - 1 do
          let sp =
            charge Profile.Quantization (fun () ->
                let base_h =
                  (oh * spec.Conv_spec.stride) - plan.Im2col.pad_top
                in
                let base_w =
                  (ow * spec.Conv_spec.stride) - plan.Im2col.pad_left
                in
                let acc = ref 0 and col = ref 0 in
                for dh = 0 to Filter.kh filter - 1 do
                  let h = base_h + (dh * spec.Conv_spec.dilation) in
                  for dw = 0 to Filter.kw filter - 1 do
                    let w = base_w + (dw * spec.Conv_spec.dilation) in
                    if h >= 0 && h < in_h && w >= 0 && w < in_w then begin
                      let off = Shape.unsafe_offset s ~n ~h ~w ~c:0 in
                      for c = 0 to in_c - 1 do
                        let q =
                          S.clamp signedness
                            (Round.apply config.Axconv.round_mode
                               ((buf.{off + c} *. inv_alpha1) +. beta1f))
                        in
                        acc := !acc + q;
                        Bytes.unsafe_set window !col
                          (Char.unsafe_chr (q land 0xff));
                        incr col
                      done
                    end
                    else
                      for _ = 1 to in_c do
                        acc := !acc + beta1;
                        Bytes.unsafe_set window !col
                          (Char.unsafe_chr zero_code);
                        incr col
                      done
                  done
                done;
                !acc)
          in
          charge Profile.Lut (fun () ->
              let mf_base = k * taps in
              let acc = ref 0 in
              for p = 0 to taps - 1 do
                let ca = Char.code (Bytes.unsafe_get window p) in
                let cb = Char.code (Bytes.unsafe_get mf_t (mf_base + p)) in
                acc :=
                  Accumulator.add config.Axconv.accumulator !acc
                    (Lut.lookup_code lut ca cb)
              done;
              let corrected =
                !acc - (beta2.(k) * sp) - (beta1 * sf.(k)) + n_beta12.(k)
              in
              let v = alpha12.(k) *. float_of_int corrected in
              let v = match bias with Some b -> v +. b.(k) | None -> v in
              out_buf.{out_base + k} <- v)
        done;
        incr row
      done
    done
  done;
  (match profile with
  | Some p ->
    let lookups = plan.Im2col.rows * out_c * taps in
    Profile.count_lut_lookups p lookups;
    Profile.count_macs p lookups
  | None -> ());
  out
