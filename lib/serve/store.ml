module Emulator = Tfapprox.Emulator
module Artefact = Ax_resilience.Artefact
module Model_io = Ax_nn.Model_io
module Load_error = Ax_arith.Load_error
module Registry = Ax_arith.Registry
module Check = Ax_analysis.Check
module Diagnostic = Ax_analysis.Diagnostic
module Shape = Ax_tensor.Shape
module Metrics = Ax_obs.Metrics
module Log = Ax_obs.Log
module Json = Ax_obs.Json

type arch = Lenet | Resnet of int | Mobilenet

type source =
  | Builtin of {
      arch : arch;
      multiplier : string option;
      lut_file : string option;
    }
  | Model_file of { path : string; input : Shape.t option }

type spec = { name : string; source : source }

let arch_to_string = function
  | Lenet -> "lenet"
  | Resnet d -> Printf.sprintf "resnet%d" d
  | Mobilenet -> "mobilenet"

let arch_of_string s =
  match s with
  | "lenet" -> Some Lenet
  | "mobilenet" -> Some Mobilenet
  | _ ->
    if String.length s > 6 && String.sub s 0 6 = "resnet" then
      match int_of_string_opt (String.sub s 6 (String.length s - 6)) with
      | Some d when d > 2 -> Some (Resnet d)
      | _ -> None
    else None

let geometry_to_string (s : Shape.t) =
  Printf.sprintf "%dx%dx%d" s.Shape.h s.Shape.w s.Shape.c

let source_to_string = function
  | Model_file { path; input = None } -> path
  | Model_file { path; input = Some s } -> path ^ "@" ^ geometry_to_string s
  | Builtin { arch; multiplier; lut_file } ->
    arch_to_string arch
    ^ (match multiplier with None -> "" | Some m -> "+" ^ m)
    ^ (match lut_file with None -> "" | Some f -> "@" ^ f)

let spec_to_string s =
  if s.name = source_to_string s.source then s.name
  else s.name ^ "=" ^ source_to_string s.source

(* [NAME=WHAT] or bare [WHAT];
   WHAT = path.axmdl[@HxWxC] | ARCH[+MULT][@LUT]. *)
let parse_spec text =
  let bad detail =
    failwith
      (Printf.sprintf
         "model spec %S: %s (expected NAME=ARCH[+MULTIPLIER][@LUTFILE] or \
          NAME=FILE.axmdl[@HxWxC])"
         text detail)
  in
  let parse_geometry g =
    match String.split_on_char 'x' g with
    | [ h; w; c ] -> (
      match (int_of_string_opt h, int_of_string_opt w, int_of_string_opt c) with
      | Some h, Some w, Some c when h > 0 && w > 0 && c > 0 ->
        Shape.make ~n:1 ~h ~w ~c
      | _ -> bad (Printf.sprintf "bad input geometry %S (expected HxWxC)" g))
    | _ -> bad (Printf.sprintf "bad input geometry %S (expected HxWxC)" g)
  in
  let name, what =
    match String.index_opt text '=' with
    | Some i ->
      ( String.sub text 0 i,
        String.sub text (i + 1) (String.length text - i - 1) )
    | None -> ("", text)
  in
  if what = "" then bad "empty source";
  (* a model file's '@' suffix is input geometry, a builtin's is a LUT
     path — disambiguated by the ".axmdl" extension before the '@' *)
  let model_file =
    if Filename.check_suffix what ".axmdl" then Some (what, None)
    else
      match String.rindex_opt what '@' with
      | Some i when Filename.check_suffix (String.sub what 0 i) ".axmdl" ->
        let geom = String.sub what (i + 1) (String.length what - i - 1) in
        Some (String.sub what 0 i, Some (parse_geometry geom))
      | _ -> None
  in
  let source =
    match model_file with
    | Some (path, input) -> Model_file { path; input }
    | None -> begin
      let what, lut_file =
        match String.index_opt what '@' with
        | Some i ->
          ( String.sub what 0 i,
            Some (String.sub what (i + 1) (String.length what - i - 1)) )
        | None -> (what, None)
      in
      let what, multiplier =
        match String.index_opt what '+' with
        | Some i ->
          ( String.sub what 0 i,
            Some (String.sub what (i + 1) (String.length what - i - 1)) )
        | None -> (what, None)
      in
      match arch_of_string what with
      | Some arch -> Builtin { arch; multiplier; lut_file }
      | None -> bad (Printf.sprintf "unknown architecture %S" what)
    end
  in
  let name =
    if name <> "" then name
    else
      match source with
      | Model_file { path; _ } ->
        Filename.remove_extension (Filename.basename path)
      | Builtin _ -> source_to_string source
  in
  { name; source }

type ready = { graph : Ax_nn.Graph.t; input : Shape.t; classes : int }
type status = Ready of ready | Unavailable of string
type entry = { spec : spec; status : status }

type t = {
  entries : entry list;
  by_name : (string, entry) Hashtbl.t;  (** immutable after [load] *)
  (* The hit-count cache is the store's only post-load mutable state:
     connection threads bump it concurrently on every lookup, so it
     gets its own lock — rank 70, the bottom of the hierarchy, since
     [find] is called while serving a request with upper locks long
     released. *)
  cache_lock : Ax_conc.Mutex.t;
  hits : (string, int) Hashtbl.t;
  hits_cell : Ax_conc.Race.cell;
}

let build_arch = function
  | Lenet -> (Ax_models.Lenet.build (), Ax_models.Lenet.input_shape ~batch:1)
  | Resnet depth ->
    (Ax_models.Resnet.build ~depth (), Ax_models.Resnet.input_shape ~batch:1)
  | Mobilenet ->
    (Ax_models.Mobilenet.build (), Ax_models.Mobilenet.input_shape ~batch:1)

let diagnostics_summary ds =
  let errors = Diagnostic.errors ds in
  String.concat "; " (List.map Diagnostic.to_string errors)

(* Pre-flight once at load: a model that would be rejected per-request
   is rejected here instead, so the request path never pays the
   analyzer and a broken artefact cannot produce silently wrong
   predictions. *)
let preflight ~input graph =
  match Check.assert_runnable ~input graph with
  | () -> None
  | exception Diagnostic.Rejected ds -> Some (diagnostics_summary ds)

let load_one ?metrics ?domains spec =
  let count name =
    match metrics with None -> () | Some m -> Metrics.add m name 1
  in
  let unavailable reason =
    Log.warn
      ~fields:
        [
          ("model", Json.String spec.name);
          ("reason", Json.String reason);
        ]
      "serve: model degraded to unavailable";
    { spec; status = Unavailable reason }
  in
  let finish ?(note = "") graph input =
    match preflight ~input graph with
    | Some reason ->
      unavailable ("rejected by static verifier: " ^ reason ^ note)
    | None ->
      let classes = (Ax_nn.Exec.output_shape graph ~input).Shape.c in
      { spec; status = Ready { graph; input; classes } }
  in
  match spec.source with
  | Model_file { path; input } -> (
    match Model_io.load_result path with
    | Ok graph -> (
      (* the AXMDL1 format carries no input geometry; without an
         explicit @HxWxC in the spec we assume the CIFAR default and
         let the pre-flight degrade (never mis-advertise) a model that
         does not actually run on it *)
      match input with
      | Some shape -> finish graph shape
      | None ->
        let assumed = Shape.make ~n:1 ~h:32 ~w:32 ~c:3 in
        finish graph assumed
          ~note:
            (Printf.sprintf
               " (input geometry assumed %s; spec it as NAME=%s@HxWxC)"
               (geometry_to_string assumed) path))
    | Error e -> unavailable (Load_error.to_string e)
    | exception Sys_error msg -> unavailable msg)
  | Builtin { arch; multiplier; lut_file } -> (
    let graph, input = build_arch arch in
    let lut =
      match lut_file with
      | None -> (
        match multiplier with
        | None -> Ok None
        (* a registry typo is a configuration error, not a degradation:
           let the [Failure] listing known names propagate *)
        | Some m -> Ok (Some (Emulator.lut_of_multiplier m)))
      | Some path -> (
        match Artefact.load_lut ?repair_with:multiplier path with
        | Ok (lut, Artefact.Intact) -> Ok (Some lut)
        | Ok (lut, Artefact.Repaired e) ->
          count "serve_lut_repaired";
          Log.warn
            ~fields:
              [
                ("model", Json.String spec.name);
                ("file", Json.String path);
                ("error", Json.String (Load_error.to_string e));
              ]
            "serve: corrupt LUT artefact repaired from registry generator";
          Ok (Some lut)
        | Error e -> Error (Load_error.to_string e)
        | exception Sys_error msg -> Error msg)
    in
    match lut with
    | Error reason -> unavailable reason
    | Ok None -> finish graph input
    | Ok (Some lut) ->
      finish (Emulator.approximate_model ~lut ?domains graph) input)

let publish ?metrics entries =
  match metrics with
  | None -> ()
  | Some m ->
    let ready, down =
      List.partition (fun e -> match e.status with Ready _ -> true | _ -> false)
        entries
    in
    Metrics.set_gauge m "serve_models_ready" (float_of_int (List.length ready));
    Metrics.set_gauge m "serve_models_unavailable"
      (float_of_int (List.length down))

let load ?metrics ?domains specs =
  let by_name = Hashtbl.create 16 in
  let entries =
    List.map
      (fun spec ->
        if Hashtbl.mem by_name spec.name then
          invalid_arg
            (Printf.sprintf "Store.load: duplicate model name %S" spec.name);
        let entry = load_one ?metrics ?domains spec in
        Hashtbl.replace by_name spec.name entry;
        entry)
      specs
  in
  publish ?metrics entries;
  {
    entries;
    by_name;
    cache_lock = Ax_conc.Mutex.create ~order:70 ~name:"serve.store.cache" ();
    hits = Hashtbl.create 16;
    hits_cell = Ax_conc.Race.cell "serve.store.hits";
  }

let find t name =
  match Hashtbl.find_opt t.by_name name with
  | None -> None
  | Some entry ->
    Ax_conc.Mutex.with_lock t.cache_lock (fun () ->
        Ax_conc.Race.write t.hits_cell;
        let n = match Hashtbl.find_opt t.hits name with
          | Some n -> n
          | None -> 0
        in
        Hashtbl.replace t.hits name (n + 1));
    Some entry

let hit_counts t =
  Ax_conc.Mutex.with_lock t.cache_lock (fun () ->
      Ax_conc.Race.read t.hits_cell;
      Hashtbl.fold (fun name n acc -> (name, n) :: acc) t.hits []
      |> List.sort compare)

let list t = t.entries

let statuses t =
  List.map
    (fun e ->
      ( e.spec.name,
        match e.status with
        | Ready _ -> `Ready
        | Unavailable reason -> `Unavailable reason ))
    t.entries
