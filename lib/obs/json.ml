type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let add_escaped buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\b' -> Buffer.add_string buf "\\b"
      | '\012' -> Buffer.add_string buf "\\f"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_float buf f =
  if not (Float.is_finite f) then Buffer.add_string buf "null"
  else begin
    let s = Printf.sprintf "%.12g" f in
    Buffer.add_string buf s;
    (* "%g" drops the fractional part of whole numbers; keep the token a
       JSON number either way. *)
    if String.for_all (fun c -> (c >= '0' && c <= '9') || c = '-') s then
      Buffer.add_string buf ".0"
  end

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> add_escaped buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        add_escaped buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type state = { src : string; mutable pos : int }

let fail st msg =
  raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let skip_ws st =
  while
    st.pos < String.length st.src
    && match st.src.[st.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
  do
    st.pos <- st.pos + 1
  done

let expect st c =
  match peek st with
  | Some got when got = c -> st.pos <- st.pos + 1
  | Some got -> fail st (Printf.sprintf "expected %c, found %c" c got)
  | None -> fail st (Printf.sprintf "expected %c, found end of input" c)

let literal st word value =
  let n = String.length word in
  if
    st.pos + n <= String.length st.src
    && String.sub st.src st.pos n = word
  then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3f)))
  end

let parse_string st =
  expect st '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> st.pos <- st.pos + 1
    | Some '\\' ->
      st.pos <- st.pos + 1;
      (match peek st with
      | None -> fail st "unterminated escape"
      | Some c ->
        st.pos <- st.pos + 1;
        (match c with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if st.pos + 4 > String.length st.src then fail st "truncated \\u";
          let hex = String.sub st.src st.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with Failure _ -> fail st "invalid \\u escape"
          in
          st.pos <- st.pos + 4;
          add_utf8 buf code
        | _ -> fail st "invalid escape"));
      go ()
    | Some c ->
      st.pos <- st.pos + 1;
      Buffer.add_char buf c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while
    st.pos < String.length st.src && is_num_char st.src.[st.pos]
  do
    st.pos <- st.pos + 1
  done;
  let token = String.sub st.src start (st.pos - start) in
  match int_of_string_opt token with
  | Some i -> Int i
  | None ->
    (match float_of_string_opt token with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "invalid number %S" token))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some '{' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some '}' then begin
      st.pos <- st.pos + 1;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws st;
        let key = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          fields ((key, v) :: acc)
        | Some '}' ->
          st.pos <- st.pos + 1;
          List.rev ((key, v) :: acc)
        | _ -> fail st "expected , or } in object"
      in
      Obj (fields [])
    end
  | Some '[' ->
    st.pos <- st.pos + 1;
    skip_ws st;
    if peek st = Some ']' then begin
      st.pos <- st.pos + 1;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          st.pos <- st.pos + 1;
          items (v :: acc)
        | Some ']' ->
          st.pos <- st.pos + 1;
          List.rev (v :: acc)
        | _ -> fail st "expected , or ] in array"
      in
      List (items [])
    end
  | Some '"' -> String (parse_string st)
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some 'n' -> literal st "null" Null
  | Some ('-' | '0' .. '9') -> parse_number st
  | Some c -> fail st (Printf.sprintf "unexpected character %c" c)

let parse src =
  let st = { src; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length src then fail st "trailing garbage";
  v

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None
let get_string = function String s -> Some s | _ -> None
let get_int = function Int i -> Some i | _ -> None

let get_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let get_list = function List l -> Some l | _ -> None
