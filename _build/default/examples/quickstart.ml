(* Quickstart: the whole TFApprox workflow on one convolution.

   1. pick an approximate multiplier and tabulate it into the 128 kB LUT;
   2. build a model graph with an ordinary Conv2D;
   3. apply the Fig. 1 transform (Conv2D -> AxConv2D + Min/Max);
   4. run both graphs and compare outputs.

   Run with: dune exec examples/quickstart.exe *)

module Tensor = Ax_tensor.Tensor
module Shape = Ax_tensor.Shape
module Rng = Ax_tensor.Rng
module Graph = Ax_nn.Graph
module Filter = Ax_nn.Filter

let () =
  (* 1. A truncated array multiplier from the catalogue, as a LUT. *)
  let multiplier = "mul8s_trunc6" in
  let entry = Ax_arith.Registry.find_exn multiplier in
  let metrics = Ax_arith.Error_metrics.compute_lut (Ax_arith.Registry.lut entry) in
  Format.printf "Multiplier %s: %a@.@." multiplier Ax_arith.Error_metrics.pp
    metrics;

  (* 2. A single-conv graph. *)
  let filter = Filter.create ~kh:3 ~kw:3 ~in_c:3 ~out_c:8 in
  Filter.fill_he_normal (Rng.create 42) filter;
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let conv =
    Graph.add b ~name:"conv"
      (Graph.Conv2d { filter; bias = None; spec = Ax_nn.Conv_spec.default })
      [ input ]
  in
  let graph = Graph.finalize b ~output:conv in
  Format.printf "Original graph (Fig. 1, left):@.%a@." Graph.pp_summary graph;

  (* 3. The transform. *)
  let approx = Tfapprox.Emulator.approximate_model ~multiplier graph in
  Format.printf "Transformed graph (Fig. 1, right):@.%a@." Graph.pp_summary
    approx;

  (* 4. Run both on the same data. *)
  let x = Tensor.create (Shape.make ~n:1 ~h:16 ~w:16 ~c:3) in
  Tensor.fill_uniform ~lo:(-1.) ~hi:1. (Rng.create 7) x;
  let exact = Tfapprox.Emulator.run ~backend:Tfapprox.Emulator.Cpu_accurate graph x in
  let emulated = Tfapprox.Emulator.run ~backend:Tfapprox.Emulator.Cpu_gemm approx x in
  Format.printf
    "Output tensor %s; max |accurate - emulated| = %.4f (max |accurate| = %.4f)@."
    (Shape.to_string (Tensor.shape emulated))
    (Tensor.max_abs_diff exact emulated)
    (Tensor.fold (fun acc v -> Float.max acc (abs_float v)) 0. exact);

  (* Same run again with the exact multiplier: only quantization noise. *)
  let faithful = Tfapprox.Emulator.approximate_model ~multiplier:"mul8s_exact" graph in
  let emulated_exact =
    Tfapprox.Emulator.run ~backend:Tfapprox.Emulator.Cpu_gemm faithful x
  in
  Format.printf "With the exact LUT the residual is pure quantization: %.4f@."
    (Tensor.max_abs_diff exact emulated_exact)
