lib/train/backprop.ml: Array Ax_nn Ax_tensor Bigarray Grad List
