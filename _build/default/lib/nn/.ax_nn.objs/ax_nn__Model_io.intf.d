lib/nn/model_io.mli: Bytes Graph
