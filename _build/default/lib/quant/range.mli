(** Real-valued ranges — what the Min/Max nodes inserted by the Fig. 1
    graph transform compute, one pair per input tensor per batch. *)

type t = { min : float; max : float }

val make : min:float -> max:float -> t
(** Raises [Invalid_argument] when [min > max] or either is NaN. *)

val of_tensor : Ax_tensor.Tensor.t -> t
val union : t -> t -> t
val contains : t -> float -> bool
val with_zero : t -> t
(** Extend to include 0 (the quantizer requirement). *)

val span : t -> float
val pp : Format.formatter -> t -> unit
