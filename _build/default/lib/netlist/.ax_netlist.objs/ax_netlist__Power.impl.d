lib/netlist/power.ml: Array Circuit Float Format Gate List
