lib/arith/signedness.ml: Format Printf
