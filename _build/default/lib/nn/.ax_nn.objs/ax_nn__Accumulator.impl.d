lib/nn/accumulator.ml: Format Printf
