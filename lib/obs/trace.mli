(** Span-based tracer with Chrome [trace_event] export.

    Spans are nestable named intervals with string attributes (layer
    name, op kind, shape, chunk index, backend).  Completed spans land
    in a fixed-capacity ring buffer — a long emulation run keeps the
    most recent spans instead of growing without bound — and export as
    Chrome trace JSON (loadable in [chrome://tracing] or Perfetto) or a
    plain-text tree.

    {b Per-domain attribution.}  A tracer is single-writer: exactly one
    domain records into it.  To trace a fan-out, the coordinator makes
    one {!fork} per worker slot (sharing the parent's time origin,
    stamping the slot id as [tid]), each worker writes only its own
    fork, and after the join the coordinator {!merge}s the forks back in
    slot order.  Chrome export places each domain's spans on its own
    [tid] row. *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_us : float;  (** microseconds since the tracer was created *)
  dur_us : float;    (** never 0: floored at 1 ns to survive clock quantization *)
  depth : int;       (** nesting level at the time the span was open *)
  tid : int;         (** recording domain's slot id (0 = coordinator) *)
}

type t

val create : ?capacity:int -> ?tid:int -> unit -> t
(** Ring-buffer capacity in spans, default 65536; [tid] stamps every
    recorded span (default 0).  Raises [Invalid_argument] when
    [capacity < 1]. *)

val fork : ?capacity:int -> t -> tid:int -> t
(** A small tracer (default capacity 4096 spans) sharing [t]'s time
    origin, for one worker slot to record into during a fan-out.  The
    fork is independent — merging it back is explicit via {!merge}. *)

val with_span :
  t -> name:string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
(** Run a thunk inside a named span.  The span is recorded when the
    thunk returns or raises ([Fun.protect] semantics). *)

val spans : t -> span list
(** Retained spans in completion order (children before their parent). *)

val span_count : t -> int

val dropped : t -> int
(** Completed spans evicted by the ring buffer, plus drops inherited
    from {!merge}d forks — if this is non-zero, an exported trace is
    incomplete and should say so. *)

val merge : into:t -> t -> unit
(** [merge ~into src] appends [src]'s retained spans (their [tid]s
    intact) and adds [src]'s {!dropped} count to [into]'s.  Called
    coordinator-side after the join, in slot order, so the merged
    stream is deterministic for a fixed split. *)

val clear : t -> unit
(** Drop retained spans and reset counters (including inherited drops);
    the time origin and open spans are untouched. *)

val to_chrome_json : t -> Json.t
(** [{"traceEvents":[...],"displayTimeUnit":"ms"}] with one complete
    ("ph":"X") event per span, attributes in ["args"], the recording
    domain's slot as ["tid"]. *)

val chrome_json_string : t -> string

val pp_tree : Format.formatter -> t -> unit
(** Indented start-time-ordered rendering with durations, non-zero
    tids, and attributes. *)
