(** GPU device descriptions for the execution-time model.

    This is the repository's substitute for running on real CUDA
    hardware (see DESIGN.md): the constants describe a GTX-1080-class
    part — SM count, clock, DRAM bandwidth, the per-SM texture cache the
    paper routes LUT fetches through — plus empirical efficiency factors
    for the kernel classes involved (tiled GEMM, element-wise
    quantization, im2col).  Efficiencies express the achieved fraction of
    peak for that kernel class; they are the calibration knobs and are
    deliberately explicit rather than buried in formulas. *)

type t = {
  name : string;
  sm_count : int;
  cores_per_sm : int;
  clock_ghz : float;
  mem_bandwidth_gbps : float;  (** DRAM, GB/s *)
  pcie_bandwidth_gbps : float; (** host-device transfers, GB/s *)
  tex_cache_bytes : int;       (** per-SM unified L1/texture cache *)
  tex_cache_line_bytes : int;
  tex_cache_ways : int;
  tex_lookups_per_sm_per_cycle : float;
  tex_miss_penalty_factor : float;
      (** extra cost of a missing lookup, as a multiple of a hit *)
  kernel_launch_overhead_s : float;
  context_setup_s : float;     (** one-time CUDA context + cuDNN init *)
  gemm_efficiency : float;     (** achieved / peak FLOPs for tiled GEMM *)
  elementwise_efficiency : float;
      (** achieved / peak bandwidth for quantize / min-max / scan kernels *)
}

val gtx_1080 : t
(** The paper's evaluation GPU. *)

val jetson_class : t
(** A small embedded part: fewer SMs, less bandwidth, smaller cache —
    used by the device-sweep ablation. *)

val datacenter_class : t
(** A V100-class part for the same ablation. *)

val peak_flops : t -> float
(** [sm_count * cores_per_sm * clock] in FLOP/s (1 MAC = 1 FLOP here). *)

val peak_lut_rate : t -> float
(** Texture-path lookups per second at 100% hit rate. *)

val pp : Format.formatter -> t -> unit
