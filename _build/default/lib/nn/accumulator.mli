(** Accumulator models for the emulated MAC unit.

    The paper's accelerator uses "an 8-bit multiplier and 32-bit
    accumulator" (Sec. II); 32 bits never overflow for realistic layer
    sizes, so the default {!Wide} model (native ints) is faithful.
    Narrower accumulators are a studied approximate-computing knob of
    their own, so the emulator exposes them: every accumulation step
    saturates or wraps to the configured two's-complement width, exactly
    as the hardware adder would. *)

type t =
  | Wide               (** unbounded (the paper's 32-bit unit, in effect) *)
  | Saturating of int  (** clamp each step to [-2^(w-1), 2^(w-1)-1] *)
  | Wrapping of int    (** keep the low [w] bits, two's complement *)
  | Lower_or of { width : int; approx_low : int }
      (** the LOA approximate adder at width [width]: the low
          [approx_low] sum bits are ORs of the operand bits (no carry
          propagation out of them), the rest adds exactly and wraps —
          the gate-level {!Ax_netlist.Adders.lower_or} as an
          accumulator. *)

val validate : t -> unit
(** Raises [Invalid_argument] for widths outside 2..62 or
    [approx_low] outside the width. *)

val add : t -> int -> int -> int
(** [add t acc product] — one MAC accumulation step under the model. *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
