lib/models/mobilenet.ml: Ax_nn Ax_tensor Printf Weights
