module Shape = Ax_tensor.Shape
module Graph = Ax_nn.Graph
module Conv_spec = Ax_nn.Conv_spec

let input_shape ~batch = Shape.make ~n:batch ~h:28 ~w:28 ~c:1

let build ?(seed = 1998) ?(classes = 10) () =
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let conv ~name ~in_c ~out_c ~padding src =
    let filter = Weights.conv_filter ~seed ~name ~kh:5 ~kw:5 ~in_c ~out_c in
    let c =
      Graph.add b ~name
        (Graph.Conv2d
           {
             filter;
             bias = Some (Array.make out_c 0.);
             spec = Conv_spec.make ~padding ();
           })
        [ src ]
    in
    Graph.add b ~name:(name ^ "/relu") Graph.Relu [ c ]
  in
  let dense ~name ~inputs ~outputs ?(relu = true) src =
    let weights, bias = Weights.dense ~seed ~name ~inputs ~outputs in
    let d = Graph.add b ~name (Graph.Dense { weights; bias }) [ src ] in
    if relu then Graph.add b ~name:(name ^ "/relu") Graph.Relu [ d ] else d
  in
  (* 28x28x1 -> 28x28x6 -> 14x14x6 *)
  let c1 = conv ~name:"c1" ~in_c:1 ~out_c:6 ~padding:Conv_spec.Same input in
  let p1 = Graph.add b ~name:"p1" (Graph.Max_pool { size = 2; stride = 2 }) [ c1 ] in
  (* -> 10x10x16 -> 5x5x16 *)
  let c2 = conv ~name:"c2" ~in_c:6 ~out_c:16 ~padding:Conv_spec.Valid p1 in
  let p2 = Graph.add b ~name:"p2" (Graph.Max_pool { size = 2; stride = 2 }) [ c2 ] in
  (* dense head over the flattened 5*5*16 = 400 features *)
  let f1 = dense ~name:"fc1" ~inputs:400 ~outputs:120 p2 in
  let f2 = dense ~name:"fc2" ~inputs:120 ~outputs:84 f1 in
  let logits = dense ~name:"fc3" ~inputs:84 ~outputs:classes ~relu:false f2 in
  let probs = Graph.add b ~name:"softmax" Graph.Softmax [ logits ] in
  Graph.finalize b ~output:probs

let macs_per_image () =
  Graph.total_macs (build ()) ~input:(input_shape ~batch:1)
