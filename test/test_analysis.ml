(* Golden-output tests for the static-analysis layer (lib/analysis):
   seeded-broken graphs, LUTs and netlists must produce exactly the
   documented rule ids, and every registry model / multiplier must
   analyze clean (no errors, no warnings — infos are allowed). *)

module D = Ax_analysis.Diagnostic
module Check = Ax_analysis.Check
module Graph_check = Ax_analysis.Graph_check
module Quant_check = Ax_analysis.Quant_check
module Netlist_check = Ax_analysis.Netlist_check
module Graph = Ax_nn.Graph
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec
module Axconv = Ax_nn.Axconv
module Shape = Ax_tensor.Shape
module Rng = Ax_tensor.Rng
module Registry = Ax_arith.Registry
module Lut = Ax_arith.Lut
module S = Ax_arith.Signedness
module Circuit = Ax_netlist.Circuit
module Bus = Ax_netlist.Bus
module Multipliers = Ax_netlist.Multipliers

let rule_ids ds = List.sort_uniq String.compare (List.map (fun d -> d.D.rule) ds)

let check_rules name expected ds =
  Alcotest.(check (list string)) name
    (List.sort_uniq String.compare expected)
    (rule_ids ds)

let assert_has_rule name rule ds =
  if not (List.mem rule (rule_ids ds)) then
    Alcotest.failf "%s: expected rule %s, got [%s]" name rule
      (String.concat "; " (rule_ids ds))

let assert_clean name ds =
  let noisy = D.errors ds @ D.warnings ds in
  if noisy <> [] then
    Alcotest.failf "%s: expected clean, got:\n%s" name
      (String.concat "\n" (List.map D.to_string noisy))

(* --- fixtures ------------------------------------------------------- *)

let lut = Registry.lut (Registry.find_exn "mul8u_trunc8")

let filter ?(kh = 3) ?(kw = 3) ?(in_c = 3) ?(out_c = 4) () =
  let f = Filter.create ~kh ~kw ~in_c ~out_c in
  Filter.fill_he_normal (Rng.create 7) f;
  f

(* A Fig. 1-shaped Ax_conv2d graph assembled from raw nodes so each test
   can break exactly one edge.  Layout:
     0 Input, 1 Min, 2 Max, 3 Const fmin, 4 Const fmax, 5 Ax_conv2d *)
let ax_graph ?(swap = false) ?config ?f () =
  let f = match f with Some f -> f | None -> filter () in
  let fmin, fmax = Filter.min_max f in
  let config = match config with Some c -> c | None -> Axconv.make_config lut in
  let conv =
    Graph.Ax_conv2d { filter = f; bias = None; spec = Conv_spec.default; config }
  in
  let range = if swap then [ 0; 2; 1; 3; 4 ] else [ 0; 1; 2; 3; 4 ] in
  Graph.of_nodes_unchecked ~output:5
    [
      { Graph.id = 0; name = "input"; op = Graph.Input; inputs = [] };
      { Graph.id = 1; name = "min"; op = Graph.Min_reduce; inputs = [ 0 ] };
      { Graph.id = 2; name = "max"; op = Graph.Max_reduce; inputs = [ 0 ] };
      { Graph.id = 3; name = "fmin"; op = Graph.Const_scalar fmin; inputs = [] };
      { Graph.id = 4; name = "fmax"; op = Graph.Const_scalar fmax; inputs = [] };
      { Graph.id = 5; name = "conv"; op = conv; inputs = range };
    ]

let input_shape = Shape.make ~n:1 ~h:8 ~w:8 ~c:3

(* --- graph verifier goldens ---------------------------------------- *)

let test_well_formed_fixture_is_clean () =
  let ds = Graph_check.check ~input:input_shape (ax_graph ()) in
  check_rules "well-formed Ax graph" [] ds

let test_dangling_input () =
  let g =
    Graph.of_nodes_unchecked ~output:1
      [
        { Graph.id = 0; name = "input"; op = Graph.Input; inputs = [] };
        { Graph.id = 1; name = "r"; op = Graph.Relu; inputs = [ 9 ] };
      ]
  in
  check_rules "unknown input id" [ "graph/dangling-input" ]
    (Graph_check.check g)

let test_poisoning_one_edge_one_finding () =
  (* The broken reference poisons its consumers: the downstream Relu and
     Softmax must not add cascading findings. *)
  let g =
    Graph.of_nodes_unchecked ~output:3
      [
        { Graph.id = 0; name = "input"; op = Graph.Input; inputs = [] };
        { Graph.id = 1; name = "r"; op = Graph.Relu; inputs = [ 9 ] };
        { Graph.id = 2; name = "r2"; op = Graph.Relu; inputs = [ 1 ] };
        { Graph.id = 3; name = "sm"; op = Graph.Softmax; inputs = [ 2 ] };
      ]
  in
  let ds = Graph_check.check ~input:input_shape g in
  check_rules "poisoned consumers stay silent" [ "graph/dangling-input" ] ds;
  Alcotest.(check int) "exactly one finding" 1 (List.length ds)

let test_arity () =
  let g =
    Graph.of_nodes_unchecked ~output:1
      [
        { Graph.id = 0; name = "input"; op = Graph.Input; inputs = [] };
        { Graph.id = 1; name = "r"; op = Graph.Relu; inputs = [ 0; 0 ] };
      ]
  in
  check_rules "wrong arity" [ "graph/arity" ] (Graph_check.check g)

let test_no_input_and_scalar_output () =
  let g =
    Graph.of_nodes_unchecked ~output:0
      [ { Graph.id = 0; name = "c"; op = Graph.Const_scalar 1.; inputs = [] } ]
  in
  check_rules "const-only graph" [ "graph/no-input"; "graph/scalar-output" ]
    (Graph_check.check g)

let test_dead_node () =
  let g =
    Graph.of_nodes_unchecked ~output:1
      [
        { Graph.id = 0; name = "input"; op = Graph.Input; inputs = [] };
        { Graph.id = 1; name = "live"; op = Graph.Relu; inputs = [ 0 ] };
        { Graph.id = 2; name = "dead"; op = Graph.Relu; inputs = [ 0 ] };
      ]
  in
  check_rules "unreachable node" [ "graph/dead-node" ] (Graph_check.check g)

let test_swapped_range () =
  check_rules "min/max swapped" [ "ax/swapped-range" ]
    (Graph_check.check ~input:input_shape (ax_graph ~swap:true ()))

let test_wrong_tensor () =
  (* Min reduces over a Relu of the data while the conv reads the raw
     input — stale range, the Fig. 1 transform never produces this. *)
  let f = filter () in
  let fmin, fmax = Filter.min_max f in
  let conv =
    Graph.Ax_conv2d
      {
        filter = f;
        bias = None;
        spec = Conv_spec.default;
        config = Axconv.make_config lut;
      }
  in
  let g =
    Graph.of_nodes_unchecked ~output:6
      [
        { Graph.id = 0; name = "input"; op = Graph.Input; inputs = [] };
        { Graph.id = 1; name = "relu"; op = Graph.Relu; inputs = [ 0 ] };
        { Graph.id = 2; name = "min"; op = Graph.Min_reduce; inputs = [ 1 ] };
        { Graph.id = 3; name = "max"; op = Graph.Max_reduce; inputs = [ 0 ] };
        { Graph.id = 4; name = "fmin"; op = Graph.Const_scalar fmin; inputs = [] };
        { Graph.id = 5; name = "fmax"; op = Graph.Const_scalar fmax; inputs = [] };
        { Graph.id = 6; name = "conv"; op = conv; inputs = [ 0; 2; 3; 4; 5 ] };
      ]
  in
  assert_has_rule "wrong tensor" "ax/wrong-tensor"
    (Graph_check.check ~input:input_shape g)

let test_const_data_range_warns () =
  let f = filter () in
  let fmin, fmax = Filter.min_max f in
  let conv =
    Graph.Ax_conv2d
      {
        filter = f;
        bias = None;
        spec = Conv_spec.default;
        config = Axconv.make_config lut;
      }
  in
  let nodes lo hi =
    [
      { Graph.id = 0; name = "input"; op = Graph.Input; inputs = [] };
      { Graph.id = 1; name = "lo"; op = Graph.Const_scalar lo; inputs = [] };
      { Graph.id = 2; name = "hi"; op = Graph.Const_scalar hi; inputs = [] };
      { Graph.id = 3; name = "fmin"; op = Graph.Const_scalar fmin; inputs = [] };
      { Graph.id = 4; name = "fmax"; op = Graph.Const_scalar fmax; inputs = [] };
      { Graph.id = 5; name = "conv"; op = conv; inputs = [ 0; 1; 2; 3; 4 ] };
    ]
  in
  (* Calibrated-offline constants: a warning, not an error. *)
  let ds =
    Graph_check.check ~input:input_shape
      (Graph.of_nodes_unchecked ~output:5 (nodes (-1.) 1.))
  in
  check_rules "const data range" [ "ax/const-input-range" ] ds;
  Alcotest.(check bool) "warning only" false (D.has_errors ds);
  (* Inverted constants: an empty range is an error. *)
  check_rules "inverted const range" [ "ax/empty-range" ]
    (Graph_check.check ~input:input_shape
       (Graph.of_nodes_unchecked ~output:5 (nodes 1. (-1.))))

let test_tensor_as_scalar () =
  let f = filter () in
  let fmin, fmax = Filter.min_max f in
  let conv =
    Graph.Ax_conv2d
      {
        filter = f;
        bias = None;
        spec = Conv_spec.default;
        config = Axconv.make_config lut;
      }
  in
  let g =
    Graph.of_nodes_unchecked ~output:5
      [
        { Graph.id = 0; name = "input"; op = Graph.Input; inputs = [] };
        { Graph.id = 1; name = "relu"; op = Graph.Relu; inputs = [ 0 ] };
        { Graph.id = 2; name = "max"; op = Graph.Max_reduce; inputs = [ 0 ] };
        { Graph.id = 3; name = "fmin"; op = Graph.Const_scalar fmin; inputs = [] };
        { Graph.id = 4; name = "fmax"; op = Graph.Const_scalar fmax; inputs = [] };
        (* Relu (a tensor) wired into the in_min scalar port. *)
        { Graph.id = 5; name = "conv"; op = conv; inputs = [ 0; 1; 2; 3; 4 ] };
      ]
  in
  assert_has_rule "tensor into scalar port" "graph/tensor-as-scalar"
    (Graph_check.check g)

let test_shape_mismatch () =
  (* Filter wants 3 channels; feed a 1-channel input shape. *)
  let ds =
    Graph_check.check
      ~input:(Shape.make ~n:1 ~h:8 ~w:8 ~c:1)
      (ax_graph ())
  in
  check_rules "channel mismatch" [ "graph/shape-mismatch" ] ds

let test_bias_arity () =
  let f = filter () in
  let g =
    Graph.of_nodes_unchecked ~output:1
      [
        { Graph.id = 0; name = "input"; op = Graph.Input; inputs = [] };
        {
          Graph.id = 1;
          name = "conv";
          op =
            Graph.Conv2d
              { filter = f; bias = Some [| 0. |]; spec = Conv_spec.default };
          inputs = [ 0 ];
        };
      ]
  in
  check_rules "bias length" [ "graph/bias-arity" ]
    (Graph_check.check ~input:input_shape g)

(* --- quantization goldens ------------------------------------------ *)

let test_accumulator_overflow () =
  (* 7x7x1024 reduction: N = 50176 taps; worst-case Eq. 4 interval
     cannot fit a signed 32-bit accumulator. *)
  let f = Filter.create ~kh:7 ~kw:7 ~in_c:1024 ~out_c:1 in
  let g = ax_graph ~f () in
  let ds, layers = Quant_check.check g in
  assert_has_rule "overflow" "quant/acc-overflow" ds;
  Alcotest.(check bool) "error severity" true (D.has_errors ds);
  match layers with
  | [ l ] ->
    Alcotest.(check int) "taps" (7 * 7 * 1024) l.Quant_check.taps;
    Alcotest.(check bool) "negative headroom" true
      (l.Quant_check.headroom_bits < 0)
  | _ -> Alcotest.fail "expected one layer row"

let test_wrapping_accumulator_warns () =
  let config =
    Axconv.make_config ~accumulator:(Ax_nn.Accumulator.Wrapping 16) lut
  in
  let ds, _ = Quant_check.check (ax_graph ~config ()) in
  assert_has_rule "wrap" "quant/acc-wrap" ds;
  Alcotest.(check bool) "warning only" false (D.has_errors ds)

let test_chunk_size_golden () =
  let config = { (Axconv.make_config lut) with Axconv.chunk_size = 0 } in
  let ds, _ = Quant_check.check (ax_graph ~config ()) in
  assert_has_rule "chunk" "quant/chunk-size" ds

let test_drum_lut_overshoot_is_info () =
  let ds = Quant_check.check_lut (Registry.lut (Registry.find_exn "mul8s_drum4")) in
  check_rules "drum overshoot" [ "quant/product-overflow" ] ds;
  assert_clean "info only" ds

let test_resnet8_headroom_golden () =
  let g =
    Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_trunc8"
      (Ax_models.Resnet.build ~depth:8 ())
  in
  let ds, layers = Quant_check.check g in
  assert_clean "resnet-8 quant" ds;
  Alcotest.(check int) "one row per conv"
    (List.length (Graph.conv_layers g))
    (List.length layers);
  (match layers with
  | first :: _ ->
    Alcotest.(check int) "conv0 headroom" 9 first.Quant_check.headroom_bits
  | [] -> Alcotest.fail "no layers");
  let min_headroom =
    List.fold_left
      (fun acc l -> min acc l.Quant_check.headroom_bits)
      max_int layers
  in
  Alcotest.(check int) "tightest layer headroom" 4 min_headroom

(* --- netlist goldens ------------------------------------------------ *)

let test_no_outputs () =
  let c = Circuit.create () in
  let x = Bus.input c "x" 2 in
  ignore (Circuit.and_ c x.(0) x.(1));
  assert_has_rule "no outputs" "net/no-outputs" (Netlist_check.check_circuit c)

let test_unused_input_is_info () =
  let c = Circuit.create () in
  let x = Bus.input c "x" 2 in
  Circuit.output c "y" (Circuit.not_ c x.(0));
  let ds = Netlist_check.check_circuit c in
  check_rules "unused input" [ "net/unused-input" ] ds;
  assert_clean "info only" ds

let test_width_mismatch () =
  let m =
    match (Registry.find_exn "mul8u_nl_exact").Registry.netlist with
    | Some make -> make ()
    | None -> Alcotest.fail "mul8u_nl_exact lost its netlist"
  in
  let broken = { m with Multipliers.width_a = 4 } in
  assert_has_rule "declared width" "net/width-mismatch"
    (Netlist_check.check_multiplier broken)

let test_lut_mismatch_golden () =
  (* The truncated netlist against the exact table: certification must
     refute with net/lut-mismatch. *)
  let m =
    match (Registry.find_exn "mul8u_nl_trunc8").Registry.netlist with
    | Some make -> make ()
    | None -> Alcotest.fail "mul8u_nl_trunc8 lost its netlist"
  in
  let exact = Lut.make ~signedness:S.Unsigned Ax_arith.Exact.mul8u in
  let ds = Netlist_check.certify_lut ~lut:exact m in
  assert_has_rule "refuted" "net/lut-mismatch" ds;
  Alcotest.(check bool) "error severity" true (D.has_errors ds)

(* --- registry sweeps: everything shipped analyzes clean ------------- *)

let test_registry_models_clean () =
  List.iter
    (fun (name, build, shape) ->
      let g = build () in
      let input = shape ~batch:1 in
      assert_clean (name ^ " accurate") (fst (Check.graph ~input g));
      let approx =
        Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_trunc8" g
      in
      assert_clean (name ^ " approximated") (fst (Check.graph ~input approx)))
    [
      ("lenet", (fun () -> Ax_models.Lenet.build ()), Ax_models.Lenet.input_shape);
      ( "mobilenet",
        (fun () -> Ax_models.Mobilenet.build ()),
        Ax_models.Mobilenet.input_shape );
      ( "resnet-8",
        (fun () -> Ax_models.Resnet.build ~depth:8 ()),
        Ax_models.Resnet.input_shape );
    ]

let test_registry_multipliers_clean () =
  List.iter
    (fun e -> assert_clean e.Registry.name (Check.registry_entry e))
    (Registry.all ())

(* --- pre-flight ----------------------------------------------------- *)

let test_assert_runnable_rejects () =
  Alcotest.(check bool) "enabled by default" true (Check.enabled ());
  match Check.assert_runnable ~input:input_shape (ax_graph ~swap:true ()) with
  | () -> Alcotest.fail "expected Rejected"
  | exception D.Rejected ds ->
    assert_has_rule "rejection carries finding" "ax/swapped-range" ds

let test_emulator_preflight () =
  let input = Ax_tensor.Tensor.create input_shape in
  match
    Tfapprox.Emulator.run ~backend:Tfapprox.Emulator.Cpu_gemm
      (ax_graph ~swap:true ()) input
  with
  | _ -> Alcotest.fail "expected Rejected"
  | exception D.Rejected _ -> ()

let test_every_rule_id_is_well_formed () =
  (* The catalogue is the contract: ids are family/slug, descriptions
     non-empty, ids unique, and [make] round-trips each severity. *)
  let ids = List.map (fun (id, _, _) -> id) D.rules in
  Alcotest.(check int) "unique ids" (List.length ids)
    (List.length (List.sort_uniq String.compare ids));
  List.iter
    (fun (id, sev, descr) ->
      Alcotest.(check bool) (id ^ " has family") true (String.contains id '/');
      Alcotest.(check bool) (id ^ " described") true (String.length descr > 0);
      let d = D.make ~rule:id "x" in
      Alcotest.(check string) (id ^ " severity") (D.severity_to_string sev)
        (D.severity_to_string d.D.severity))
    D.rules

let () =
  Alcotest.run "ax_analysis"
    [
      ( "graph goldens",
        [
          Alcotest.test_case "well-formed fixture clean" `Quick
            test_well_formed_fixture_is_clean;
          Alcotest.test_case "dangling input" `Quick test_dangling_input;
          Alcotest.test_case "poisoning: one edge, one finding" `Quick
            test_poisoning_one_edge_one_finding;
          Alcotest.test_case "arity" `Quick test_arity;
          Alcotest.test_case "no input / scalar output" `Quick
            test_no_input_and_scalar_output;
          Alcotest.test_case "dead node" `Quick test_dead_node;
          Alcotest.test_case "swapped range" `Quick test_swapped_range;
          Alcotest.test_case "wrong tensor" `Quick test_wrong_tensor;
          Alcotest.test_case "const data range" `Quick
            test_const_data_range_warns;
          Alcotest.test_case "tensor as scalar" `Quick test_tensor_as_scalar;
          Alcotest.test_case "shape mismatch" `Quick test_shape_mismatch;
          Alcotest.test_case "bias arity" `Quick test_bias_arity;
        ] );
      ( "quantization goldens",
        [
          Alcotest.test_case "accumulator overflow" `Quick
            test_accumulator_overflow;
          Alcotest.test_case "wrapping accumulator warns" `Quick
            test_wrapping_accumulator_warns;
          Alcotest.test_case "chunk size" `Quick test_chunk_size_golden;
          Alcotest.test_case "drum overshoot is info" `Quick
            test_drum_lut_overshoot_is_info;
          Alcotest.test_case "resnet-8 headroom" `Quick
            test_resnet8_headroom_golden;
        ] );
      ( "netlist goldens",
        [
          Alcotest.test_case "no outputs" `Quick test_no_outputs;
          Alcotest.test_case "unused input is info" `Quick
            test_unused_input_is_info;
          Alcotest.test_case "width mismatch" `Quick test_width_mismatch;
          Alcotest.test_case "LUT mismatch refuted" `Quick
            test_lut_mismatch_golden;
        ] );
      ( "registry sweeps",
        [
          Alcotest.test_case "models analyze clean" `Quick
            test_registry_models_clean;
          Alcotest.test_case "multipliers analyze clean" `Slow
            test_registry_multipliers_clean;
        ] );
      ( "pre-flight",
        [
          Alcotest.test_case "assert_runnable rejects" `Quick
            test_assert_runnable_rejects;
          Alcotest.test_case "Emulator.run pre-flight" `Quick
            test_emulator_preflight;
          Alcotest.test_case "rule catalogue well-formed" `Quick
            test_every_rule_id_is_well_formed;
        ] );
    ]
