examples/quickstart.ml: Ax_arith Ax_nn Ax_tensor Float Format Tfapprox
