module Graph = Ax_nn.Graph
module Axconv = Ax_nn.Axconv
module Profile = Ax_nn.Profile
module Lut = Ax_arith.Lut
module Pool = Ax_pool.Pool
module Metrics = Ax_obs.Metrics
module Json = Ax_obs.Json
module Emulator = Tfapprox.Emulator

type trial = { label : string; faults : Fault.t list }

let zero_fault_trial = { label = "fault_free"; faults = [] }

type spec = {
  graph : Graph.t;
  dataset : Ax_data.Cifar.t;
  backend : Emulator.backend;
}

type row = {
  label : string;
  fault_count : int;
  accuracy : float;
  degradation : float;
  top1_flips : int;
}

type report = { baseline_accuracy : float; images : int; rows : row list }

(* {1 Trial builders} *)

let lut_bit_trials ?(kind = Fault.Bit_flip) ~seed ~sites ~bits () =
  List.map
    (fun bit ->
      if bit < 0 || bit > 15 then
        invalid_arg
          (Printf.sprintf "Campaign.lut_bit_trials: bit %d outside 0..15" bit);
      let faults =
        List.init sites (fun i ->
            let index =
              Fault.uniform ~seed [ bit; i ] Lut.entries
            in
            { Fault.site = Fault.Lut_entry { index; bit }; kind })
      in
      { label = Printf.sprintf "lut_bit_%d" bit; faults })
    bits

let lut_rate_trials ~seed ~rates =
  List.map
    (fun rate ->
      let faults = ref [] in
      for index = Lut.entries - 1 downto 0 do
        for bit = 15 downto 0 do
          if Fault.bernoulli ~seed [ index; bit ] rate then
            faults :=
              { Fault.site = Fault.Lut_entry { index; bit };
                kind = Fault.Bit_flip }
              :: !faults
        done
      done;
      { label = Printf.sprintf "lut_rate_%g" rate; faults = !faults })
    rates

let batch_trials ~name ~trials site_list =
  List.init trials (fun t ->
      {
        label = Printf.sprintf "%s_t%d" name t;
        faults =
          List.map
            (fun site -> { Fault.site; kind = Fault.Bit_flip })
            (site_list t);
      })

let weight_trials ~seed ~trials ~sites ~bit g =
  batch_trials ~name:"weights" ~trials (fun t ->
      Fault.random_weight_sites ~seed:(Fault.hash ~seed [ t ]) ~count:sites
        ~bit g)

let activation_trials ~seed ~trials ~sites ~bit g =
  batch_trials ~name:"activations" ~trials (fun t ->
      Fault.random_activation_sites ~seed:(Fault.hash ~seed [ t ])
        ~count:sites ~bit g)

(* {1 Running} *)

(* The LUT is the model of shared texture memory: configs across layers
   hold the same physical table, so a fault corrupts it once and every
   layer reading it sees the damage.  Cache by physical identity. *)
let swap_luts graph faults =
  let cache : (Lut.t * Lut.t) list ref = ref [] in
  let corrupted lut =
    match List.find_opt (fun (orig, _) -> orig == lut) !cache with
    | Some (_, c) -> c
    | None ->
      let c = Fault.corrupt_lut lut faults in
      cache := (lut, c) :: !cache;
      c
  in
  Graph.map_ops
    (fun n ->
      match n.Graph.op with
      | Graph.Ax_conv2d { filter; bias; spec; config } ->
        Graph.Ax_conv2d
          {
            filter;
            bias;
            spec;
            config = { config with Axconv.lut = corrupted config.Axconv.lut };
          }
      | Graph.Ax_depthwise_conv2d { filter; bias; spec; config } ->
        Graph.Ax_depthwise_conv2d
          {
            filter;
            bias;
            spec;
            config = { config with Axconv.lut = corrupted config.Axconv.lut };
          }
      | op -> op)
    graph

let prepare graph trial =
  let has p = List.exists p trial.faults in
  let graph =
    if has (fun f -> match f.Fault.site with Fault.Lut_entry _ -> true | _ -> false)
    then swap_luts graph trial.faults
    else graph
  in
  let graph = Fault.corrupt_graph graph trial.faults in
  let tap =
    if has (fun f ->
           match f.Fault.site with Fault.Activation _ -> true | _ -> false)
    then Some (Fault.tap trial.faults)
    else None
  in
  (graph, tap)

let run ?metrics ?profile ?domains spec ~trials =
  let domains =
    match domains with Some d -> d | None -> Pool.default_size ()
  in
  let span f =
    match profile with
    | Some p ->
      Profile.span p ~name:"resilience.campaign"
        ~attrs:
          [
            ("trials", string_of_int (List.length trials));
            ("backend", Emulator.backend_name spec.backend);
            ("domains", string_of_int domains);
          ]
        f
    | None -> f ()
  in
  span @@ fun () ->
  let images = spec.dataset.Ax_data.Cifar.images in
  let labels = spec.dataset.Ax_data.Cifar.labels in
  let n_images = Array.length labels in
  if n_images = 0 then invalid_arg "Campaign.run: empty dataset";
  let accuracy_of preds =
    let correct = ref 0 in
    Array.iteri (fun i p -> if p = labels.(i) then incr correct) preds;
    float_of_int !correct /. float_of_int n_images
  in
  let baseline = Emulator.predictions spec.graph ~backend:spec.backend images in
  let baseline_accuracy = accuracy_of baseline in
  let trial_arr = Array.of_list trials in
  (* Trials fan out on the persistent pool; each trial is a pure
     function of its fault list, runs un-sharded (nested pool calls are
     inline), and never touches shared metrics — all accounting happens
     below on the coordinator in index order, so the report is
     bit-identical for every domain count. *)
  let pool = Pool.ensure ~domains in
  let preds =
    Pool.map_array pool ~max_domains:domains
      (fun trial ->
        let graph, tap = prepare spec.graph trial in
        Emulator.predictions ?tap graph ~backend:spec.backend images)
      trial_arr
  in
  let rows =
    Array.to_list
      (Array.mapi
         (fun i p ->
           let trial = trial_arr.(i) in
           let accuracy = accuracy_of p in
           let flips = ref 0 in
           Array.iteri (fun j c -> if c <> baseline.(j) then incr flips) p;
           {
             label = trial.label;
             fault_count = List.length trial.faults;
             accuracy;
             degradation = baseline_accuracy -. accuracy;
             top1_flips = !flips;
           })
         preds)
  in
  (match metrics with
  | Some m ->
    Metrics.add m "resilience_trials" (Array.length trial_arr);
    Metrics.add m "resilience_faults_injected"
      (List.fold_left (fun acc r -> acc + r.fault_count) 0 rows);
    Metrics.add m "resilience_top1_flips"
      (List.fold_left (fun acc r -> acc + r.top1_flips) 0 rows)
  | None -> ());
  { baseline_accuracy; images = n_images; rows }

(* {1 Rendering} *)

let csv report =
  let f6 = Printf.sprintf "%.6f" in
  Tfapprox.Report.csv_table
    ~header:[ "label"; "faults"; "accuracy"; "degradation"; "top1_flips" ]
    ([ "baseline"; "0"; f6 report.baseline_accuracy; f6 0.; "0" ]
    :: List.map
         (fun r ->
           [
             r.label;
             string_of_int r.fault_count;
             f6 r.accuracy;
             f6 r.degradation;
             string_of_int r.top1_flips;
           ])
         report.rows)

let to_json report =
  Json.Obj
    [
      ("baseline_accuracy", Json.Float report.baseline_accuracy);
      ("images", Json.Int report.images);
      ( "rows",
        Json.List
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("label", Json.String r.label);
                   ("faults", Json.Int r.fault_count);
                   ("accuracy", Json.Float r.accuracy);
                   ("degradation", Json.Float r.degradation);
                   ("top1_flips", Json.Int r.top1_flips);
                 ])
             report.rows) );
    ]

let pp ppf report =
  Format.fprintf ppf
    "@[<v>fault-injection campaign: %d image(s), baseline accuracy %.2f%%@,"
    report.images
    (100. *. report.baseline_accuracy);
  Format.fprintf ppf "%-18s %7s %9s %12s %11s@," "trial" "faults" "accuracy"
    "degradation" "top-1 flips";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-18s %7d %8.2f%% %+11.2f%% %11d@," r.label
        r.fault_count
        (100. *. r.accuracy)
        ((-100. *. r.degradation) +. 0.) (* +0. folds away IEEE -0.00 *)
        r.top1_flips)
    report.rows;
  Format.fprintf ppf "@]"
