lib/train/backprop.mli: Ax_nn Ax_tensor
