module Circuit = Ax_netlist.Circuit
module Gate = Ax_netlist.Gate
module Sim = Ax_netlist.Sim
module Power = Ax_netlist.Power
module Multipliers = Ax_netlist.Multipliers
module Lut = Ax_arith.Lut
module Signedness = Ax_arith.Signedness
module Error_metrics = Ax_arith.Error_metrics
module Netlist_check = Ax_analysis.Netlist_check
module Diagnostic = Ax_analysis.Diagnostic
module Energy = Ax_gpusim.Energy
module Pool = Ax_pool.Pool
module Emulator = Tfapprox.Emulator

type model = Resnet8 | Lenet

let model_name = function Resnet8 -> "resnet8" | Lenet -> "lenet"

let model_of_string = function
  | "resnet8" -> Resnet8
  | "lenet" -> Lenet
  | other ->
    failwith
      (Printf.sprintf "unknown model %s (have: resnet8, lenet)" other)

type config = {
  seed : int;
  generations : int;
  population : int;
  budget : int;
  images : int;
  model : model;
  mutations : int;
  max_domains : int option;
}

let default_config =
  {
    seed = 1;
    generations = 4;
    population = 8;
    budget = 0;
    images = 32;
    model = Resnet8;
    mutations = 2;
    max_domains = None;
  }

type verdict =
  | Scored of Pareto.point
  | Rejected of { name : string; reason : string }

type result = {
  config : config;
  front : Pareto.point list;
  evaluated : int;
  rejected : int;
  cache_hits : int;
  rejections : (string * string) list;
  wall_seconds : float;
}

let tabulate (m : Multipliers.t) =
  if
    m.Multipliers.width_a <> 8 || m.Multipliers.width_b <> 8
    || m.Multipliers.product_bits <> 16 || m.Multipliers.signed
  then
    invalid_arg
      "Search.tabulate: candidate is not an unsigned 8x8 -> 16-bit multiplier";
  let tt =
    Sim.truth_table_2x m.Multipliers.circuit ~width_a:8 ~width_b:8
  in
  Lut.make ~signedness:Signedness.Unsigned tt

let certify_candidate m ~lut =
  let findings = Netlist_check.check_multiplier ~lut m in
  match Diagnostic.errors findings with
  | [] -> Ok ()
  | d :: _ -> Error d.Diagnostic.rule

(* Canonical structural identity of a candidate after strip_dead: the
   dedup key compares both function (LUT bytes) and structure, because
   two structurally different circuits computing the same function have
   different area/energy and must both be scored. *)
let circuit_dump c =
  let buf = Buffer.create 4096 in
  Circuit.iter_gates c (fun i g ->
      Buffer.add_string buf (string_of_int i);
      Buffer.add_char buf ':';
      (match g with
      | Gate.Input label ->
        Buffer.add_string buf "in:";
        Buffer.add_string buf label
      | Gate.Const b -> Buffer.add_string buf (if b then "c1" else "c0")
      | g ->
        Buffer.add_string buf (Gate.name g);
        List.iter
          (fun j ->
            Buffer.add_char buf ',';
            Buffer.add_string buf (string_of_int j))
          (Gate.fanin g));
      Buffer.add_char buf ';');
  List.iter
    (fun (label, s) ->
      Buffer.add_string buf label;
      Buffer.add_char buf '=';
      Buffer.add_string buf (string_of_int (Circuit.index s));
      Buffer.add_char buf ';')
    (Circuit.outputs c);
  Buffer.contents buf

type job = {
  j_name : string;
  j_generation : int;
  j_genome : Genome.t;
  j_mult : Multipliers.t;
  j_lut : Lut.t;
  j_lut_digest : string;
  j_cached : (float * Error_metrics.t) option;
}

(* Runs on a pool worker: certification, cost model, and (unless the
   LUT was scored in an earlier generation) an end-to-end accuracy run.
   Everything here is pure per job — the shared lazies (exact MAC
   reference, accumulator share) are forced on the coordinator before
   the fan-out. *)
let evaluate ~base_graph ~dataset job =
  match certify_candidate job.j_mult ~lut:job.j_lut with
  | Error rule -> (Rejected { name = job.j_name; reason = rule }, None)
  | Ok () -> (
    let circuit = job.j_mult.Multipliers.circuit in
    match Energy.relative_mac_energy (Energy.mac_of_circuit circuit) with
    | exception Invalid_argument msg ->
      (Rejected { name = job.j_name; reason = msg }, None)
    | energy ->
      let report = Power.analyze circuit in
      let accuracy, err =
        match job.j_cached with
        | Some cached -> cached
        | None ->
          let graph = Emulator.approximate_model ~lut:job.j_lut base_graph in
          let accuracy =
            Emulator.accuracy ~verify:false graph ~backend:Emulator.Cpu_gemm
              dataset
          in
          (accuracy, Error_metrics.compute_lut job.j_lut)
      in
      let point =
        {
          Pareto.name = job.j_name;
          generation = job.j_generation;
          accuracy;
          energy;
          area = report.Power.area;
          delay = report.Power.delay;
          power = report.Power.power;
          pdp = report.Power.pdp;
          gates = report.Power.gates;
          mae = err.Error_metrics.mae;
          wce = err.Error_metrics.wce;
          certified = true;
        }
      in
      if
        Pareto.finite point
        && Float.is_finite point.Pareto.pdp
        && Float.is_finite point.Pareto.area
      then (Scored point, Some (accuracy, err))
      else
        ( Rejected { name = job.j_name; reason = "non-finite score" },
          None ))

let seed_population () =
  [
    ("exact8", Multipliers.unsigned_array ~bits:8);
    ("trunc4", Multipliers.truncated ~bits:8 ~cut:4);
    ("trunc6", Multipliers.truncated ~bits:8 ~cut:6);
    ("trunc8", Multipliers.truncated ~bits:8 ~cut:8);
    ("trunc10", Multipliers.truncated ~bits:8 ~cut:10);
    ("bam_h2v6", Multipliers.broken_array ~bits:8 ~hbl:2 ~vbl:6);
    ("bam_h3v8", Multipliers.broken_array ~bits:8 ~hbl:3 ~vbl:8);
    ("bam_h4v10", Multipliers.broken_array ~bits:8 ~hbl:4 ~vbl:10);
  ]
  |> List.map (fun (name, m) -> (name, Genome.of_multiplier m))

let run ?pool config =
  if config.population <= 0 then
    invalid_arg "Search.run: population must be positive";
  if config.generations < 0 then
    invalid_arg "Search.run: generations must be non-negative";
  if config.images <= 0 then invalid_arg "Search.run: images must be positive";
  if config.mutations <= 0 then
    invalid_arg "Search.run: mutations must be positive";
  Option.iter (Pool.validate_domains ~what:"Search.run") config.max_domains;
  let t0 = Unix.gettimeofday () in
  let pool = match pool with Some p -> p | None -> Pool.default () in
  (* Force the process-wide lazies before fanning out: OCaml lazy
     values must not be forced concurrently from several domains. *)
  ignore (Energy.relative_mac_energy (Lazy.force Energy.exact_mac));
  let base_graph, dataset =
    match config.model with
    | Resnet8 ->
      ( Ax_models.Resnet.build ~depth:8 (),
        Ax_data.Cifar.generate ~n:config.images () )
    | Lenet ->
      (Ax_models.Lenet.build (), Ax_data.Mnist.generate ~n:config.images ())
  in
  let budget =
    if config.budget <= 0 then config.population * (config.generations + 1)
    else config.budget
  in
  let rng = Srng.create config.seed in
  let seen = Hashtbl.create 128 in
  let accuracy_memo = Hashtbl.create 128 in
  let evaluated = ref 0 in
  let rejected = ref 0 in
  let cache_hits = ref 0 in
  let rejections = ref [] in
  let archive = ref [] in
  (* (point, genome), oldest first *)
  let eval_batch ~generation candidates =
    let jobs = ref [] in
    let planned = ref 0 in
    List.iter
      (fun (name, genome) ->
        if !evaluated + !planned < budget then begin
          let m = Genome.to_multiplier ~name genome in
          let lut = tabulate m in
          let lut_digest = Digest.to_hex (Digest.bytes (Lut.to_bytes lut)) in
          let key = lut_digest ^ "|" ^ circuit_dump m.Multipliers.circuit in
          if Hashtbl.mem seen key then incr cache_hits
          else begin
            Hashtbl.replace seen key ();
            incr planned;
            jobs :=
              {
                j_name = name;
                j_generation = generation;
                j_genome = genome;
                j_mult = m;
                j_lut = lut;
                j_lut_digest = lut_digest;
                j_cached = Hashtbl.find_opt accuracy_memo lut_digest;
              }
              :: !jobs
          end
        end)
      candidates;
    let jobs = Array.of_list (List.rev !jobs) in
    let outcomes =
      Pool.map_array pool ?max_domains:config.max_domains
        ~schedule:(Pool.Dynamic { grain = 1 })
        (evaluate ~base_graph ~dataset)
        jobs
    in
    Array.iteri
      (fun i (verdict, memo) ->
        let job = jobs.(i) in
        incr evaluated;
        Option.iter (Hashtbl.replace accuracy_memo job.j_lut_digest) memo;
        match verdict with
        | Scored point -> archive := !archive @ [ (point, job.j_genome) ]
        | Rejected { name; reason } ->
          incr rejected;
          rejections := !rejections @ [ (name, reason) ])
      outcomes
  in
  (* Generation 0: the structural generators, padded with mutants of
     them when the population is larger than the seed set. *)
  let seeds = seed_population () in
  let n_seeds = List.length seeds in
  let initial =
    List.init config.population (fun i ->
        let name, genome = List.nth seeds (i mod n_seeds) in
        if i < n_seeds then (name, genome)
        else
          ( Printf.sprintf "mul8u_evo_s%d_g0_c%d" config.seed i,
            Genome.mutate ~rng ~operations:config.mutations genome ))
  in
  eval_batch ~generation:0 initial;
  let generation = ref 1 in
  while !generation <= config.generations && !evaluated < budget do
    let front = Pareto.front (List.map fst !archive) in
    let parents =
      List.filter_map
        (fun (p : Pareto.point) ->
          List.find_map
            (fun (q, genome) ->
              if q.Pareto.name = p.Pareto.name then Some genome else None)
            !archive)
        front
    in
    let parents = if parents = [] then List.map snd seeds else parents in
    let n_parents = List.length parents in
    let children =
      List.init config.population (fun i ->
          ( Printf.sprintf "mul8u_evo_s%d_g%d_c%d" config.seed !generation i,
            Genome.mutate ~rng ~operations:config.mutations
              (List.nth parents (i mod n_parents)) ))
    in
    eval_batch ~generation:!generation children;
    incr generation
  done;
  {
    config;
    front = Pareto.front (List.map fst !archive);
    evaluated = !evaluated;
    rejected = !rejected;
    cache_hits = !cache_hits;
    rejections = !rejections;
    wall_seconds = Unix.gettimeofday () -. t0;
  }

(* ------------------------------------------------------------------ *)
(* Deterministic renderings (wall_seconds deliberately excluded)       *)
(* ------------------------------------------------------------------ *)

let point_json buf (p : Pareto.point) =
  Printf.bprintf buf
    "{\"name\":%S,\"generation\":%d,\"accuracy\":%.6f,\
     \"relative_mac_energy\":%.6f,\"area\":%.1f,\"delay\":%.1f,\
     \"power\":%.6f,\"pdp\":%.6f,\"gates\":%d,\"mae\":%.6f,\"wce\":%d,\
     \"certified\":%b}"
    p.Pareto.name p.Pareto.generation p.Pareto.accuracy p.Pareto.energy
    p.Pareto.area p.Pareto.delay p.Pareto.power p.Pareto.pdp p.Pareto.gates
    p.Pareto.mae p.Pareto.wce p.Pareto.certified

let front_json_string r =
  let buf = Buffer.create 4096 in
  Printf.bprintf buf
    "{\"seed\":%d,\"model\":%S,\"images\":%d,\"population\":%d,\
     \"generations\":%d,\"mutations\":%d,\"budget\":%d,\"evaluated\":%d,\
     \"rejected\":%d,\"cache_hits\":%d,\"front\":["
    r.config.seed
    (model_name r.config.model)
    r.config.images r.config.population r.config.generations
    r.config.mutations r.config.budget r.evaluated r.rejected r.cache_hits;
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      point_json buf p)
    r.front;
  Buffer.add_string buf "]}\n";
  Buffer.contents buf

let front_csv_string r =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "name,generation,accuracy,relative_mac_energy,area,delay,power,pdp,\
     gates,mae,wce,certified\n";
  List.iter
    (fun (p : Pareto.point) ->
      Printf.bprintf buf "%s,%d,%.6f,%.6f,%.1f,%.1f,%.6f,%.6f,%d,%.6f,%d,%b\n"
        p.Pareto.name p.Pareto.generation p.Pareto.accuracy p.Pareto.energy
        p.Pareto.area p.Pareto.delay p.Pareto.power p.Pareto.pdp
        p.Pareto.gates p.Pareto.mae p.Pareto.wce p.Pareto.certified)
    r.front;
  Buffer.contents buf

let pp_front ppf r =
  Format.fprintf ppf "@[<v>%-22s %4s %9s %9s %8s %7s %9s %6s %11s %6s@,"
    "name" "gen" "accuracy" "rel. MAC" "area" "delay" "pdp" "gates" "mae" "wce";
  List.iter
    (fun (p : Pareto.point) ->
      Format.fprintf ppf "%-22s %4d %9.4f %9.4f %8.0f %7.1f %9.2f %6d %11.2f %6d@,"
        p.Pareto.name p.Pareto.generation p.Pareto.accuracy p.Pareto.energy
        p.Pareto.area p.Pareto.delay p.Pareto.pdp p.Pareto.gates p.Pareto.mae
        p.Pareto.wce)
    r.front;
  Format.fprintf ppf
    "%d evaluated, %d rejected, %d cache hit(s), front size %d@]" r.evaluated
    r.rejected r.cache_hits (List.length r.front)
