module S = Ax_arith.Signedness

type coeffs = { alpha : float; beta : int }

let compute_coeffs ?(symmetric = false) signedness ~rmin ~rmax =
  if Float.is_nan rmin || Float.is_nan rmax then
    invalid_arg "Quantization.compute_coeffs: NaN range";
  if rmin > rmax then
    invalid_arg "Quantization.compute_coeffs: rmin > rmax";
  (* Extend the range to include zero so beta exists. *)
  let rmin = Float.min rmin 0. and rmax = Float.max rmax 0. in
  let qmin = float_of_int (S.min_value signedness) in
  let qmax = float_of_int (S.max_value signedness) in
  if symmetric then begin
    let bound = Float.max (abs_float rmin) (abs_float rmax) in
    let alpha = if bound <= 0. then 1. /. qmax else bound /. qmax in
    { alpha; beta = S.clamp signedness 0 }
  end
  else begin
    let span = rmax -. rmin in
    let alpha =
      if span <= 0. then 1. /. qmax  (* all-zero tensor: any positive scale *)
      else span /. (qmax -. qmin)
    in
    (* Nudge the zero-point to an integer inside the quantized range. *)
    let beta_real = qmin -. (rmin /. alpha) in
    let beta =
      if beta_real <= qmin then S.min_value signedness
      else if beta_real >= qmax then S.max_value signedness
      else Round.apply Round.Nearest_away beta_real
    in
    { alpha; beta }
  end

let quantize c mode signedness r =
  let q = Round.apply mode ((r /. c.alpha) +. float_of_int c.beta) in
  S.clamp signedness q

let dequantize c q = c.alpha *. float_of_int (q - c.beta)

let quantize_tensor_codes c mode signedness tensor =
  let n = Ax_tensor.Tensor.num_elements tensor in
  let out = Bytes.create n in
  let buf = Ax_tensor.Tensor.buffer tensor in
  let inv_alpha = 1. /. c.alpha in
  let betaf = float_of_int c.beta in
  for i = 0 to n - 1 do
    let q = Round.apply mode ((buf.{i} *. inv_alpha) +. betaf) in
    let q = S.clamp signedness q in
    Bytes.unsafe_set out i (Char.unsafe_chr (q land 0xff))
  done;
  out

let roundtrip_error_bound c = c.alpha /. 2.
