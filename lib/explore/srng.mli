(** Seeded deterministic random stream for the evolutionary search.

    splitmix64 over [int64] — every operation is exact 64-bit integer
    arithmetic, so the stream (and therefore a whole seeded search) is
    byte-identical across platforms and word sizes, which the
    determinism contract of {!Search.run} depends on.  Deliberately not
    [Stdlib.Random]: its default state seeding and float path make
    cross-run reproducibility harder to pin down. *)

type t

val create : int -> t
(** A stream determined entirely by the seed (any int, including 0). *)

val int : t -> int -> int
(** [int t bound] is uniform-ish in [0, bound); raises
    [Invalid_argument] when [bound <= 0]. *)

val bool : t -> bool
