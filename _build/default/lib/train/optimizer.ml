module Graph = Ax_nn.Graph
module Filter = Ax_nn.Filter
module Matrix = Ax_tensor.Matrix

type t = {
  mutable learning_rate : float;
  momentum : float;
  weight_decay : float;
  velocity : (int * string, float array) Hashtbl.t;
}

let sgd ?(momentum = 0.9) ?(weight_decay = 0.) ~learning_rate () =
  if learning_rate <= 0. then invalid_arg "Optimizer.sgd: learning_rate";
  if momentum < 0. || momentum >= 1. then invalid_arg "Optimizer.sgd: momentum";
  { learning_rate; momentum; weight_decay; velocity = Hashtbl.create 64 }

let learning_rate t = t.learning_rate

let set_learning_rate t lr =
  if lr <= 0. then invalid_arg "Optimizer.set_learning_rate";
  t.learning_rate <- lr

(* v <- mu*v + (g + wd*p);  p <- p - lr*v.  [decay] lets biases and batch
   norm parameters opt out of weight decay, the usual convention. *)
let step t ~key ~params ~grad ~decay =
  if Array.length params <> Array.length grad then
    invalid_arg "Optimizer.apply: gradient shape mismatch";
  let v =
    match Hashtbl.find_opt t.velocity key with
    | Some v -> v
    | None ->
      let v = Array.make (Array.length params) 0. in
      Hashtbl.add t.velocity key v;
      v
  in
  let wd = if decay then t.weight_decay else 0. in
  for i = 0 to Array.length params - 1 do
    v.(i) <- (t.momentum *. v.(i)) +. grad.(i) +. (wd *. params.(i));
    params.(i) <- params.(i) -. (t.learning_rate *. v.(i))
  done

let apply t g updates =
  List.iter
    (fun (id, pg) ->
      let node = Graph.node g id in
      match (node.Graph.op, pg) with
      | ( ( Graph.Conv2d { filter; bias; _ }
          | Graph.Ax_conv2d { filter; bias; _ }
          | Graph.Depthwise_conv2d { filter; bias; _ }
          | Graph.Ax_depthwise_conv2d { filter; bias; _ } ),
          Backprop.Conv_grad { filter = dfilter; bias = dbias } ) ->
        step t ~key:(id, "filter") ~params:(Filter.raw_data filter)
          ~grad:dfilter ~decay:true;
        (match (bias, dbias) with
        | Some b, Some db ->
          step t ~key:(id, "bias") ~params:b ~grad:db ~decay:false
        | None, None -> ()
        | Some _, None | None, Some _ ->
          invalid_arg "Optimizer.apply: bias gradient mismatch")
      | Graph.Dense { weights; bias }, Backprop.Dense_grad { weights = dw; bias = db }
        ->
        step t ~key:(id, "weights") ~params:weights.Matrix.data ~grad:dw
          ~decay:true;
        step t ~key:(id, "bias") ~params:bias ~grad:db ~decay:false
      | Graph.Batch_norm { scale; shift }, Backprop.Bn_grad { scale = ds; shift = dsh }
        ->
        step t ~key:(id, "scale") ~params:scale ~grad:ds ~decay:false;
        step t ~key:(id, "shift") ~params:shift ~grad:dsh ~decay:false
      | _, (Backprop.Conv_grad _ | Backprop.Dense_grad _ | Backprop.Bn_grad _)
        ->
        invalid_arg
          (Printf.sprintf "Optimizer.apply: gradient kind mismatch at %s"
             node.Graph.name))
    updates
