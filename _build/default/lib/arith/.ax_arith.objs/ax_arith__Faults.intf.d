lib/arith/faults.mli:
