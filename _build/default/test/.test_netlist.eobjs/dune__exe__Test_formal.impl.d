test/test_formal.ml: Alcotest Array Ax_arith Ax_netlist List Printf
