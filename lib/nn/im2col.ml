module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Matrix = Ax_tensor.Matrix
module Q = Ax_quant.Quantization
module S = Ax_arith.Signedness
module Pool = Ax_pool.Pool

type plan = {
  input_shape : Shape.t;
  kh : int;
  kw : int;
  stride : int;
  dilation : int;
  out_h : int;
  out_w : int;
  pad_top : int;
  pad_left : int;
  rows : int;
  patch_len : int;
}

let make input ~kh ~kw ~spec =
  let out_h, out_w, pad_top, pad_left =
    Shape.conv_output_dims input ~kh ~kw ~stride:spec.Conv_spec.stride
      ~dilation:spec.Conv_spec.dilation
      ~padding:(Conv_spec.padding_to_poly spec.Conv_spec.padding)
  in
  {
    input_shape = input;
    kh;
    kw;
    stride = spec.Conv_spec.stride;
    dilation = spec.Conv_spec.dilation;
    out_h;
    out_w;
    pad_top;
    pad_left;
    rows = Shape.(input.n) * out_h * out_w;
    patch_len = kh * kw * Shape.(input.c);
  }

(* Iterate the taps of one patch in HWC order, calling [inside] with the
   flat input offset for real cells and [padded] for out-of-image cells.
   Shared by both lowering flavours so they cannot disagree. *)
let iter_patch plan ~n ~oh ~ow ~inside ~padded =
  let s = plan.input_shape in
  let in_h = Shape.(s.h) and in_w = Shape.(s.w) and in_c = Shape.(s.c) in
  let base_h = (oh * plan.stride) - plan.pad_top in
  let base_w = (ow * plan.stride) - plan.pad_left in
  let col = ref 0 in
  for dh = 0 to plan.kh - 1 do
    let h = base_h + (dh * plan.dilation) in
    for dw = 0 to plan.kw - 1 do
      let w = base_w + (dw * plan.dilation) in
      if h >= 0 && h < in_h && w >= 0 && w < in_w then begin
        let base = Shape.unsafe_offset s ~n ~h ~w ~c:0 in
        for c = 0 to in_c - 1 do
          inside !col (base + c);
          incr col
        done
      end
      else
        for _ = 0 to in_c - 1 do
          padded !col;
          incr col
        done
    done
  done

(* Patch-matrix row [row] corresponds to image [n], output pixel
   [(oh, ow)] — the fixed row order both lowering flavours and the GEMM
   rely on.  Deriving the coordinates from the row index (instead of
   threading a counter through nested loops) is what lets a row range
   be filled by any domain independently. *)
let row_coords plan row =
  let per_image = plan.out_h * plan.out_w in
  let n = row / per_image in
  let rem = row mod per_image in
  (n, rem / plan.out_w, rem mod plan.out_w)

let parallelize ?pool ?(domains = 1) ~rows body =
  match pool with
  | Some p when domains > 1 && rows > 1 ->
    Pool.parallel_for p ~max_domains:domains ~lo:0 ~hi:rows body
  | Some _ | None -> body ~lo:0 ~hi:rows

let to_matrix ?pool ?domains plan input =
  if not (Shape.equal (Tensor.shape input) plan.input_shape) then
    invalid_arg "Im2col.to_matrix: input shape differs from plan";
  let m = Matrix.create ~rows:plan.rows ~cols:plan.patch_len in
  let buf = Tensor.buffer input in
  let fill_rows ~lo ~hi =
    for row = lo to hi - 1 do
      let n, oh, ow = row_coords plan row in
      let row_base = row * plan.patch_len in
      iter_patch plan ~n ~oh ~ow
        ~inside:(fun col off -> m.Matrix.data.(row_base + col) <- buf.{off})
        ~padded:(fun _ -> ())
    done
  in
  parallelize ?pool ?domains ~rows:plan.rows fill_rows;
  m

let to_codes ?pool ?domains plan input ~coeffs ~round_mode ~signedness =
  if not (Shape.equal (Tensor.shape input) plan.input_shape) then
    invalid_arg "Im2col.to_codes: input shape differs from plan";
  let mp = Bytes.create (plan.rows * plan.patch_len) in
  let sp = Array.make plan.rows 0 in
  let buf = Tensor.buffer input in
  let inv_alpha = 1. /. coeffs.Q.alpha in
  let betaf = float_of_int coeffs.Q.beta in
  (* The zero-point code: what a zero-padding cell quantizes to. *)
  let zero_q = coeffs.Q.beta in
  let zero_code = zero_q land 0xff in
  (* Each row writes its own [patch_len] slice of [mp] and its own
     [sp] cell, and quantization (including the hash-based stochastic
     rounding) is a pure function of the input value — so any row split
     produces bit-identical codes. *)
  let fill_rows ~lo ~hi =
    for row = lo to hi - 1 do
      let n, oh, ow = row_coords plan row in
      let row_base = row * plan.patch_len in
      let acc = ref 0 in
      iter_patch plan ~n ~oh ~ow
        ~inside:(fun col off ->
          let q =
            Ax_quant.Round.apply round_mode ((buf.{off} *. inv_alpha) +. betaf)
          in
          let q = S.clamp signedness q in
          acc := !acc + q;
          Bytes.unsafe_set mp (row_base + col) (Char.unsafe_chr (q land 0xff)))
        ~padded:(fun col ->
          acc := !acc + zero_q;
          Bytes.unsafe_set mp (row_base + col) (Char.unsafe_chr zero_code));
      sp.(row) <- !acc
    done
  in
  parallelize ?pool ?domains ~rows:plan.rows fill_rows;
  (mp, sp)
