(** Automated design-space exploration of pruned 8x8 array multipliers —
    the workflow the paper's conclusion points at ("automated design of
    approximate DNN accelerators in which many candidate designs have to
    be quickly evaluated"), and the way multiplier libraries such as
    EvoApprox8b are produced: search over circuit simplifications,
    characterise each candidate's error exhaustively, keep the
    error/hardware Pareto front.

    The design space here is the 64-bit partial-product keep-mask of the
    array multiplier: bit [i*8 + j] keeps the AND term [a_i * b_j].
    Error metrics are exact (full 65 536-pair sweep); hardware cost uses
    a fast transistor-count proxy during search and the gate-level
    unit-gate model of {!Ax_netlist.Power} for finalists. *)

type candidate = {
  mask : bool array;          (** 64 entries, index [i*8 + j] *)
  kept : int;                 (** surviving partial products *)
  metrics : Error_metrics.t;
  area_proxy : float;         (** search-time cost estimate *)
}

val full_mask : unit -> bool array
val truncation_mask : cut:int -> bool array
(** The mask of {!Truncation.truncated} — the hand-designed baseline the
    search competes against. *)

val multiply_of_mask : bool array -> int -> int -> int
(** Behavioural product under a keep-mask. *)

val evaluate : bool array -> candidate
(** Exhaustive error characterisation + proxy cost.  Raises
    [Invalid_argument] unless the mask has exactly 64 entries. *)

val hardware_of : candidate -> Ax_netlist.Power.report
(** Gate-level cost of the candidate (builds and analyses the pruned
    netlist). *)

val netlist_of : candidate -> Ax_netlist.Multipliers.t
(** The synthesisable circuit of a finalist. *)

val greedy_prune :
  ?max_mae:float -> unit -> candidate list
(** Start from the exact multiplier and repeatedly drop the partial
    product whose removal increases MAE least, recording each step,
    until MAE would exceed [max_mae] (default 1000) or nothing remains.
    Returns the trajectory from exact to coarsest, a ready-made
    area/error curve. *)

val pareto_front : candidate list -> candidate list
(** Candidates not dominated in (MAE, area proxy), sorted by area. *)

val random_candidates : ?seed:int -> samples:int -> unit -> candidate list
(** Uniformly random masks (with the always-kept MSB product), for
    comparing the greedy trajectory against blind sampling. *)
