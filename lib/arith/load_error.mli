(** Typed decode errors shared by every binary artefact loader
    ("AXLUT1" LUT files, "AXMDL1" model files).

    Replaces the stringly [failwith] diagnostics so callers can
    distinguish truncation from a bad magic from a failed integrity
    check and react differently — e.g. re-tabulate a checksum-corrupted
    LUT from its registry generator instead of aborting
    ({!Ax_resilience.Artefact} does exactly that). *)

type t =
  | Truncated of { what : string; needed : int; available : int }
      (** Fewer bytes than the format requires.  [needed] is the total
          the decoder wanted at the failing read. *)
  | Bad_magic of { what : string; expected : string; actual : string }
  | Bad_checksum of { what : string; expected : int; actual : int }
      (** The trailing CRC-32 does not match the content: the artefact
          was corrupted after serialisation. *)
  | Bad_tag of { what : string; field : string; tag : int }
      (** An enumeration byte (signedness, op kind, round mode, ...)
          holds a value the format does not define. *)
  | Malformed of { what : string; detail : string }
      (** Structurally invalid content that passed the byte-level
          checks (e.g. a graph node referencing an unknown input). *)

exception Error of t
(** What the thin raising wrappers ([Lut.of_bytes], [Model_io.load],
    ...) throw; registered with [Printexc] so backtraces stay
    readable. *)

val to_string : t -> string
(** One-line human-readable rendering (no newlines — CLI-friendly). *)

val pp : Format.formatter -> t -> unit
