test/test_model_io.ml: Alcotest Array Ax_arith Ax_data Ax_models Ax_nn Ax_quant Ax_tensor Bytes Filename Fun Option Sys Tfapprox
