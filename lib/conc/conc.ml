(* The hub of the checked-synchronization layer: run mode, thread
   keys, the finding registry, and the record-mode bookkeeping that the
   Mutex/Condition/Atomic/Race shims feed (per-thread held-lock stacks,
   the lock-order graph, vector clocks, FastTrack cells).

   Three modes:
   - passthrough ([Off], the default and the [TFAPPROX_CONC=off]
     setting): every shim operation is the underlying Stdlib operation
     plus one atomic load and a branch — the zero-cost contract the
     gemm bench gates at < 2%.
   - [Record]: operations additionally update the global discipline
     state under one internal lock.  This serializes lock operations
     process-wide, which is exactly what a checking mode wants (and
     costs nothing on the hot paths, which take locks per fan-out, not
     per MAC).
   - explore: while {!set_explore} hooks are installed, operations on
     the installing thread are routed to the deterministic scheduler
     instead of touching real synchronization at all. *)

type mode = Off | Record

(* bit 0: record mode; bit 1: explore hooks installed.  One word so the
   passthrough fast path is a single load + compare with 0. *)
let flags = Stdlib.Atomic.make 0

let mode_of_env () =
  match Sys.getenv_opt "TFAPPROX_CONC" with
  | None -> Off
  | Some v -> (
    match String.lowercase_ascii (String.trim v) with
    | "" | "off" | "0" | "false" | "no" -> Off
    | _ -> Record)

let set_mode m =
  let rec update () =
    let cur = Stdlib.Atomic.get flags in
    let next =
      match m with Off -> cur land lnot 1 | Record -> cur lor 1
    in
    if not (Stdlib.Atomic.compare_and_set flags cur next) then update ()
  in
  update ()

let mode () = if Stdlib.Atomic.get flags land 1 <> 0 then Record else Off
let () = set_mode (mode_of_env ())
let enabled () = Stdlib.Atomic.get flags <> 0
let tracking () = Stdlib.Atomic.get flags land 1 <> 0

(* A process-unique key for the current systhread: OCaml 5 runs threads
   inside domains and [Thread.id] is only guaranteed unique within one,
   so fold the domain id in. *)
let thread_key () =
  (((Domain.self () :> int) land 0xffff) lsl 16)
  lor (Thread.id (Thread.self ()) land 0xffff)

(* ------------------------------------------------------------------ *)
(* Explore hooks                                                       *)
(* ------------------------------------------------------------------ *)

type explore_hooks = {
  owner : int;  (** {!thread_key} of the exploring thread *)
  x_lock : id:int -> name:string -> unit;
  x_unlock : id:int -> name:string -> unit;
  x_wait : cond:int -> cname:string -> m:int -> mname:string -> unit;
  x_signal : cond:int -> unit;
  x_broadcast : cond:int -> unit;
  x_cell : id:int -> name:string -> write:bool -> unit;
  x_sync : id:int -> unit;
}

let explore_hooks : explore_hooks option ref = ref None

let set_explore h =
  explore_hooks := h;
  let rec update () =
    let cur = Stdlib.Atomic.get flags in
    let next =
      match h with None -> cur land lnot 2 | Some _ -> cur lor 2
    in
    if not (Stdlib.Atomic.compare_and_set flags cur next) then update ()
  in
  update ()

(* Only the thread that installed the hooks is rerouted: an idle pool
   worker waking up mid-exploration must keep its real mutex. *)
let explore_for_me () =
  match !explore_hooks with
  | Some h when h.owner = thread_key () -> Some h
  | Some _ | None -> None

(* ------------------------------------------------------------------ *)
(* Findings                                                            *)
(* ------------------------------------------------------------------ *)

type finding = { code : string; subject : string; detail : string }

let finding_to_string f =
  Printf.sprintf "[conc/%s] %s: %s" f.code f.subject f.detail

(* ------------------------------------------------------------------ *)
(* Record-mode state (all under [state_lock])                          *)
(* ------------------------------------------------------------------ *)

type held = {
  h_id : int;
  h_name : string;
  h_order : int option;
  h_protected : bool;
}

type thread_state = { mutable tstack : held list; mutable clock : Vclock.t }

let state_lock = Stdlib.Mutex.create ()
let threads : (int, thread_state) Hashtbl.t = Hashtbl.create 64
let lock_clocks : (int, Vclock.t) Hashtbl.t = Hashtbl.create 64
let sync_clocks : (int, Vclock.t) Hashtbl.t = Hashtbl.create 64

(* Lock-order graph over lock NAMES (classes), lockdep-style: an edge
   a -> b whenever b was acquired while a was held, no matter by which
   thread or on which instance.  Cycle detection then covers orderings
   established by different threads at different times. *)
let edges : (string, (string, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 32
let bare_locks : (string, unit) Hashtbl.t = Hashtbl.create 16
let cells : (int, string * Vclock.cell) Hashtbl.t = Hashtbl.create 32
let findings_rev : finding list ref = ref []
let seen : (string * string, unit) Hashtbl.t = Hashtbl.create 32

let next_id = Stdlib.Atomic.make 1
let fresh_id () = Stdlib.Atomic.fetch_and_add next_id 1

(* Shim operations seen in record mode — the gemm bench multiplies this
   count by the microbenchmarked passthrough cost per operation to gate
   the off-mode overhead of a real workload. *)
let op_count = Stdlib.Atomic.make 0
let count_op () = Stdlib.Atomic.incr op_count
let ops () = Stdlib.Atomic.get op_count

let report_unlocked ~code ~subject detail =
  if not (Hashtbl.mem seen (code, subject)) then begin
    Hashtbl.replace seen (code, subject) ();
    findings_rev := { code; subject; detail } :: !findings_rev
  end

let locked f =
  Stdlib.Mutex.lock state_lock;
  Fun.protect ~finally:(fun () -> Stdlib.Mutex.unlock state_lock) f

let report ~code ~subject detail =
  locked (fun () -> report_unlocked ~code ~subject detail)

let thread_state_unlocked key =
  match Hashtbl.find_opt threads key with
  | Some ts -> ts
  | None ->
    (* a fresh component > 0 so this thread's epochs are distinguishable
       from the never-seen time 0 *)
    let ts = { tstack = []; clock = Vclock.tick Vclock.empty key } in
    Hashtbl.replace threads key ts;
    ts

let add_edge from_name to_name =
  if from_name <> to_name then begin
    let tbl =
      match Hashtbl.find_opt edges from_name with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.replace edges from_name t;
        t
    in
    Hashtbl.replace tbl to_name ()
  end

(* Pre-acquire: discipline checks that must run before the real lock
   call (which would raise on a relock before we could say why). *)
let on_pre_acquire ~id ~name ~order ~protected =
  count_op ();
  locked @@ fun () ->
  let ts = thread_state_unlocked (thread_key ()) in
  if List.exists (fun h -> h.h_id = id) ts.tstack then
    report_unlocked ~code:"relock" ~subject:name
      "mutex re-acquired by the thread already holding it (self-deadlock)";
  (match order with
  | Some o ->
    List.iter
      (fun h ->
        match h.h_order with
        | Some ho when ho >= o && h.h_id <> id ->
          report_unlocked ~code:"rank-violation" ~subject:name
            (Printf.sprintf
               "lock '%s' (rank %d) acquired while holding '%s' (rank %d); \
                the declared hierarchy requires strictly increasing ranks"
               name o h.h_name ho)
        | Some _ | None -> ())
      ts.tstack
  | None -> ());
  List.iter (fun h -> add_edge h.h_name name) ts.tstack;
  if not protected then Hashtbl.replace bare_locks name ()

(* Post-acquire: the lock is really held now; pull its clock. *)
let on_acquire ~id ~name ~order ~protected =
  locked @@ fun () ->
  let ts = thread_state_unlocked (thread_key ()) in
  (match Hashtbl.find_opt lock_clocks id with
  | Some lc -> ts.clock <- Vclock.join ts.clock lc
  | None -> ());
  ts.tstack <- { h_id = id; h_name = name; h_order = order; h_protected = protected } :: ts.tstack

let on_release ~id ~name =
  count_op ();
  locked @@ fun () ->
  let key = thread_key () in
  let ts = thread_state_unlocked key in
  if not (List.exists (fun h -> h.h_id = id) ts.tstack) then
    report_unlocked ~code:"unlock-unheld" ~subject:name
      "mutex released by a thread that does not hold it"
  else begin
    ts.tstack <- List.filter (fun h -> h.h_id <> id) ts.tstack;
    Hashtbl.replace lock_clocks id ts.clock;
    ts.clock <- Vclock.tick ts.clock key
  end

(* The protected flag of the held entry for [id] on this thread — a
   Condition.wait reacquire inherits it instead of looking bare. *)
let held_protected ~id =
  locked @@ fun () ->
  let ts = thread_state_unlocked (thread_key ()) in
  match List.find_opt (fun h -> h.h_id = id) ts.tstack with
  | Some h -> h.h_protected
  | None -> true

let on_sync ~id =
  count_op ();
  locked @@ fun () ->
  let key = thread_key () in
  let ts = thread_state_unlocked key in
  (match Hashtbl.find_opt sync_clocks id with
  | Some sc -> ts.clock <- Vclock.join ts.clock sc
  | None -> ());
  Hashtbl.replace sync_clocks id ts.clock;
  ts.clock <- Vclock.tick ts.clock key

let on_cell_access ~id ~name kind =
  count_op ();
  locked @@ fun () ->
  let key = thread_key () in
  let ts = thread_state_unlocked key in
  let cell =
    match Hashtbl.find_opt cells id with
    | Some (_, c) -> c
    | None ->
      let c = Vclock.cell () in
      Hashtbl.replace cells id (name, c);
      c
  in
  match Vclock.access cell ~tid:key ~clock:ts.clock kind with
  | None -> ()
  | Some race ->
    report_unlocked ~code:"data-race" ~subject:name
      (Printf.sprintf "happens-before violation: %s (no synchronization \
                       orders the two accesses)"
         (Vclock.race_to_string race))

(* ------------------------------------------------------------------ *)
(* Collection                                                          *)
(* ------------------------------------------------------------------ *)

(* Cycle detection over the name graph: DFS with a persistent path; a
   back edge to a node on the current path is a cycle.  Each cycle is
   reported once, keyed by its sorted member set. *)
let check_cycles_unlocked () =
  let reported : (string, unit) Hashtbl.t = Hashtbl.create 4 in
  let visiting : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let done_ : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let rec dfs path node =
    if Hashtbl.mem visiting node then begin
      (* the cycle is the path suffix from [node] *)
      let rec suffix = function
        | [] -> []
        | x :: rest -> if x = node then [ x ] else x :: suffix rest
      in
      let cycle = node :: List.rev (suffix path) in
      let key = String.concat "," (List.sort_uniq compare cycle) in
      if not (Hashtbl.mem reported key) then begin
        Hashtbl.replace reported key ();
        report_unlocked ~code:"lock-cycle" ~subject:(List.hd cycle)
          (Printf.sprintf
             "lock-order cycle %s: these locks have been acquired in \
              conflicting orders (deadlock potential)"
             (String.concat " -> " cycle))
      end
    end
    else if not (Hashtbl.mem done_ node) then begin
      Hashtbl.replace visiting node ();
      (match Hashtbl.find_opt edges node with
      | Some succs -> Hashtbl.iter (fun s () -> dfs (node :: path) s) succs
      | None -> ());
      Hashtbl.remove visiting node;
      Hashtbl.replace done_ node ()
    end
  in
  let nodes =
    Hashtbl.fold (fun n _ acc -> n :: acc) edges []
    |> List.sort_uniq compare
  in
  List.iter (fun n -> dfs [] n) nodes

let collect () =
  locked @@ fun () ->
  check_cycles_unlocked ();
  Hashtbl.iter
    (fun name () ->
      report_unlocked ~code:"bare-section" ~subject:name
        "critical section entered via bare lock/unlock instead of \
         with_lock (an exception inside the section leaks the lock)")
    bare_locks;
  List.rev !findings_rev

let findings () = locked (fun () -> List.rev !findings_rev)

let reset () =
  locked @@ fun () ->
  Hashtbl.reset threads;
  Hashtbl.reset lock_clocks;
  Hashtbl.reset sync_clocks;
  Hashtbl.reset edges;
  Hashtbl.reset bare_locks;
  Hashtbl.reset cells;
  Hashtbl.reset seen;
  Stdlib.Atomic.set op_count 0;
  findings_rev := []
