(** Set-associative LRU cache simulator for the texture path.

    The paper's key trick is storing the 128 kB multiplier LUT behind
    the texture cache, "optimized for irregular read-only access".  This
    simulator answers the quantitative side: given a stream of LUT
    accesses (byte addresses derived from stitched operand codes), what
    hit rate does a given cache geometry achieve?  The cost model folds
    that hit rate into the effective lookup throughput. *)

type t

val create : size_bytes:int -> line_bytes:int -> ways:int -> t
(** [size_bytes = 0] models "no cache": every access misses.
    Raises [Invalid_argument] when the geometry is inconsistent
    (non-power-of-two line size, size not divisible by line*ways). *)

val of_device : Device.t -> t

val access : t -> int -> bool
(** [access t byte_addr] returns whether the access hit, updating LRU
    state and statistics. *)

val accesses : t -> int
val hits : t -> int
val hit_rate : t -> float
(** [0.] before any access. *)

val reset_stats : t -> unit
(** Clear counters but keep cache contents (for warmup-then-measure).
    Also forgets what {!publish} already pushed. *)

val publish : t -> Ax_obs.Metrics.t -> unit
(** Push the access/hit/miss counts accumulated since the last publish
    into the registry (counters [texcache_accesses], [texcache_hits],
    [texcache_misses]) and set the [texcache_hit_rate] gauge.
    Idempotent between accesses: publishing twice adds nothing new. *)

val flush : t -> unit
(** Invalidate contents and clear statistics. *)

val lut_address : int -> int -> int
(** [lut_address ca cb] is the byte address of the 16-bit LUT entry for
    operand codes [ca], [cb] — [2 * ((ca << 8) | cb)], matching
    [tex1Dfetch<ushort>] indexing. *)

val simulate_lut_stream : t -> (int * int) array -> float
(** Feed a stream of operand-code pairs through the cache and return the
    hit rate of exactly that stream (statistics are reset first,
    contents are not flushed). *)
