type t = {
  signedness : Signedness.t;
  table : (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t;
}

let entries = 65536
let size_bytes = entries * 2
let raw_index ca cb = ((ca land 0xff) lsl 8) lor (cb land 0xff)

let saturate signedness p =
  match signedness with
  | Signedness.Unsigned -> if p < 0 then 0 else if p > 65535 then 65535 else p
  | Signedness.Signed ->
    if p < -32768 then -32768 else if p > 32767 then 32767 else p

let make ~signedness f =
  let table =
    Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout entries
  in
  for ca = 0 to 255 do
    let va = Signedness.value_of_code signedness ca in
    for cb = 0 to 255 do
      let vb = Signedness.value_of_code signedness cb in
      let p = saturate signedness (f va vb) in
      table.{raw_index ca cb} <- p land 0xffff
    done
  done;
  { signedness; table }

let exact signedness =
  match signedness with
  | Signedness.Unsigned -> make ~signedness Exact.mul8u
  | Signedness.Signed -> make ~signedness Exact.mul8s

let signedness t = t.signedness

let decode_product signedness raw =
  match signedness with
  | Signedness.Unsigned -> raw
  | Signedness.Signed -> if raw >= 32768 then raw - 65536 else raw

let lookup_code t ca cb = decode_product t.signedness t.table.{raw_index ca cb}

let lookup_value t a b =
  lookup_code t
    (Signedness.code_of_value t.signedness a)
    (Signedness.code_of_value t.signedness b)

let to_function t a b = lookup_value t a b

let equal a b =
  Signedness.equal a.signedness b.signedness
  &&
  let rec go i = i >= entries || (a.table.{i} = b.table.{i} && go (i + 1)) in
  go 0

let magic = "AXLUT1"

let to_bytes t =
  let buf = Bytes.create (String.length magic + 1 + size_bytes) in
  Bytes.blit_string magic 0 buf 0 (String.length magic);
  Bytes.set buf (String.length magic)
    (match t.signedness with Signedness.Signed -> 's' | Signedness.Unsigned -> 'u');
  let base = String.length magic + 1 in
  for i = 0 to entries - 1 do
    let v = t.table.{i} in
    Bytes.set buf (base + (2 * i)) (Char.chr (v land 0xff));
    Bytes.set buf (base + (2 * i) + 1) (Char.chr ((v lsr 8) land 0xff))
  done;
  buf

let of_bytes buf ~pos =
  let mlen = String.length magic in
  if pos + mlen > Bytes.length buf then failwith "Lut.of_bytes: truncated";
  if Bytes.sub_string buf pos mlen <> magic then
    failwith "Lut.load: bad magic";
  if pos + mlen + 1 + size_bytes > Bytes.length buf then
    failwith "Lut.of_bytes: truncated";
  let signedness =
    match Bytes.get buf (pos + mlen) with
    | 's' -> Signedness.Signed
    | 'u' -> Signedness.Unsigned
    | _ -> failwith "Lut.load: bad signedness byte"
  in
  let base = pos + mlen + 1 in
  let table =
    Bigarray.Array1.create Bigarray.int16_unsigned Bigarray.c_layout entries
  in
  for i = 0 to entries - 1 do
    table.{i} <-
      Char.code (Bytes.get buf (base + (2 * i)))
      lor (Char.code (Bytes.get buf (base + (2 * i) + 1)) lsl 8)
  done;
  ({ signedness; table }, base + size_bytes)

let save path t =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes t))

let load path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = Bytes.create len in
      really_input ic buf 0 len;
      fst (of_bytes buf ~pos:0))
