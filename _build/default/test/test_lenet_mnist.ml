(* The second workload domain: seven-segment digit data and the
   LeNet-style model, through inference, transform, and training. *)

module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Graph = Ax_nn.Graph
module Exec = Ax_nn.Exec
module Mnist = Ax_data.Mnist
module Lenet = Ax_models.Lenet
module Trainer = Ax_train.Trainer
module Emulator = Tfapprox.Emulator

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* --- dataset --- *)

let test_mnist_geometry_and_range () =
  let d = Mnist.generate ~n:12 () in
  check_bool "12x28x28x1" true
    (Shape.equal (Tensor.shape d.Mnist.images)
       (Shape.make ~n:12 ~h:28 ~w:28 ~c:1));
  Tensor.iteri_flat
    (fun _ v -> if v < 0. || v > 1. then Alcotest.failf "pixel %g" v)
    d.Mnist.images;
  check_int "labels cycle" 1 d.Mnist.labels.(11)

let test_seven_segment_table () =
  (* 8 lights everything, 1 lights exactly b and c. *)
  check_bool "digit 8" true
    (Array.for_all Fun.id (Mnist.segments_of_digit 8));
  Alcotest.(check (array bool)) "digit 1"
    [| false; true; true; false; false; false; false |]
    (Mnist.segments_of_digit 1);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Mnist.segments_of_digit: 10") (fun () ->
      ignore (Mnist.segments_of_digit 10))

let test_digits_have_distinct_ink () =
  (* Digit 8 lights every segment, digit 1 only two: mean intensity must
     differ clearly. *)
  let d = Mnist.generate ~n:20 () in
  let mean_of label =
    let acc = ref 0. and count = ref 0 in
    Array.iteri
      (fun i l ->
        if l = label then begin
          incr count;
          for px = 0 to (28 * 28) - 1 do
            acc := !acc +. Tensor.get_flat d.Mnist.images ((i * 28 * 28) + px)
          done
        end)
      d.Mnist.labels;
    !acc /. float_of_int (!count * 28 * 28)
  in
  check_bool "8 has more ink than 1" true (mean_of 8 > mean_of 1 +. 0.02)

let test_mnist_deterministic () =
  let a = Mnist.generate ~seed:3 ~n:4 () in
  let b = Mnist.generate ~seed:3 ~n:4 () in
  check_bool "same seed" true
    (Tensor.max_abs_diff a.Mnist.images b.Mnist.images = 0.)

(* --- lenet --- *)

let test_lenet_shapes () =
  let g = Lenet.build () in
  let d = Mnist.generate ~n:3 () in
  let out = Exec.run g ~input:d.Mnist.images in
  check_bool "3x1x1x10 output" true
    (Shape.equal (Tensor.shape out) (Shape.make ~n:3 ~h:1 ~w:1 ~c:10));
  check_int "two conv layers" 2 (List.length (Graph.conv_layers g));
  check_bool "macs positive" true (Lenet.macs_per_image () > 100_000)

let test_lenet_transform_and_emulate () =
  let g = Lenet.build () in
  let approx = Emulator.approximate_model ~multiplier:"mul8s_exact" g in
  let d = Mnist.generate ~n:2 () in
  let want = Exec.run g ~input:d.Mnist.images in
  let got = Exec.run approx ~input:d.Mnist.images in
  check_bool
    (Printf.sprintf "exact LUT close (%g)" (Tensor.max_abs_diff want got))
    true
    (Tensor.max_abs_diff want got < 0.3);
  (* Valid padding + maxpool path also agrees across strategies. *)
  let a = Exec.run ~strategy:Exec.Cpu_gemm approx ~input:d.Mnist.images in
  let b = Exec.run ~strategy:Exec.Cpu_direct approx ~input:d.Mnist.images in
  check_bool "strategies agree" true (Tensor.max_abs_diff a b = 0.)

let test_lenet_learns_digits () =
  let g = Lenet.build ~seed:5 () in
  let data = Mnist.normalize (Mnist.generate ~seed:6 ~n:60 ()) in
  let config =
    {
      Trainer.default_config with
      Trainer.epochs = 8;
      learning_rate = 0.05;
      batch_size = 12;
    }
  in
  let history = Trainer.train config g data in
  let best = Array.fold_left Float.max 0. history.Trainer.epoch_accuracies in
  check_bool
    (Printf.sprintf "digits are learnable (best %.2f)" best)
    true (best > 0.5);
  (* Generalizes to fresh jitter/noise draws. *)
  let held_out = Mnist.normalize (Mnist.generate ~seed:77 ~n:30 ()) in
  let acc = Trainer.evaluate g held_out in
  check_bool (Printf.sprintf "held-out %.2f" acc) true (acc > 0.3)

let () =
  Alcotest.run "ax_lenet_mnist"
    [
      ( "mnist",
        [
          Alcotest.test_case "geometry and range" `Quick
            test_mnist_geometry_and_range;
          Alcotest.test_case "seven-segment table" `Quick
            test_seven_segment_table;
          Alcotest.test_case "distinct ink per digit" `Quick
            test_digits_have_distinct_ink;
          Alcotest.test_case "deterministic" `Quick test_mnist_deterministic;
        ] );
      ( "lenet",
        [
          Alcotest.test_case "shapes" `Quick test_lenet_shapes;
          Alcotest.test_case "transform and emulate" `Quick
            test_lenet_transform_and_emulate;
          Alcotest.test_case "learns digits" `Slow test_lenet_learns_digits;
        ] );
    ]
