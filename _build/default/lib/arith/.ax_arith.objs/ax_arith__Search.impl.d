lib/arith/search.ml: Array Ax_netlist Error_metrics List Printf Signedness
