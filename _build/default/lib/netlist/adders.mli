(** Structural adders used by the multiplier generators. *)

val half_adder :
  Circuit.t -> Circuit.signal -> Circuit.signal ->
  Circuit.signal * Circuit.signal
(** [half_adder c a b] is [(sum, carry)]. *)

val full_adder :
  Circuit.t -> Circuit.signal -> Circuit.signal -> Circuit.signal ->
  Circuit.signal * Circuit.signal
(** [full_adder c a b cin] is [(sum, carry)]. *)

val ripple_carry :
  Circuit.t -> ?carry_in:Circuit.signal -> Bus.t -> Bus.t ->
  Bus.t * Circuit.signal
(** [ripple_carry c a b] adds two equal-width buses; returns the sum bus
    and the carry out.  Raises [Invalid_argument] on width mismatch. *)

val kogge_stone :
  Circuit.t -> ?carry_in:Circuit.signal -> Bus.t -> Bus.t ->
  Bus.t * Circuit.signal
(** Parallel-prefix (Kogge-Stone) adder: same function as
    {!ripple_carry} with O(log n) logic depth instead of O(n) — the
    canonical fast-adder benchmark for the delay model.  Raises
    [Invalid_argument] on width mismatch. *)

val lower_or :
  Circuit.t -> approx_bits:int -> Bus.t -> Bus.t -> Bus.t * Circuit.signal
(** The Lower-part-OR Adder (LOA, Mahdiani et al.): the low
    [approx_bits] sum bits are simple ORs of the operand bits (no carry
    chain), the high part is an exact ripple adder with zero carry-in —
    the classic approximate adder the accumulator-approximation
    literature starts from.  [approx_bits = 0] degenerates to
    {!ripple_carry}.  Raises [Invalid_argument] when [approx_bits]
    exceeds the bus width. *)

val carry_save_reduce :
  Circuit.t -> width:int -> Circuit.signal list array -> Bus.t
(** [carry_save_reduce c ~width columns] sums an arbitrary partial-
    product matrix given as per-column bit lists ([columns.(k)] holds the
    bits of weight [2^k]) using a Dadda-style column compression followed
    by a final ripple-carry adder.  The result is truncated to [width]
    bits (weights [>= 2^width] are discarded, matching a fixed-width
    hardware product register). *)
