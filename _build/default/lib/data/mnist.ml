module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Rng = Ax_tensor.Rng

type t = Dataset.t = { images : Tensor.t; labels : int array }

let classes = 10
let height = 28
let width = 28
let channels = 1

(* Standard seven-segment truth table, segments ordered a b c d e f g:
       aaa
      f   b
       ggg
      e   c
       ddd      *)
let segments_of_digit = function
  | 0 -> [| true; true; true; true; true; true; false |]
  | 1 -> [| false; true; true; false; false; false; false |]
  | 2 -> [| true; true; false; true; true; false; true |]
  | 3 -> [| true; true; true; true; false; false; true |]
  | 4 -> [| false; true; true; false; false; true; true |]
  | 5 -> [| true; false; true; true; false; true; true |]
  | 6 -> [| true; false; true; true; true; true; true |]
  | 7 -> [| true; true; true; false; false; false; false |]
  | 8 -> [| true; true; true; true; true; true; true |]
  | 9 -> [| true; true; true; true; false; true; true |]
  | d -> invalid_arg (Printf.sprintf "Mnist.segments_of_digit: %d" d)

(* Segment geometry on a 16x10 glyph box (row, col ranges), thickness 2. *)
let segment_boxes =
  [|
    (0, 1, 1, 8);    (* a: top bar *)
    (1, 7, 8, 9);    (* b: upper right *)
    (9, 15, 8, 9);   (* c: lower right *)
    (14, 15, 1, 8);  (* d: bottom bar *)
    (9, 15, 0, 1);   (* e: lower left *)
    (1, 7, 0, 1);    (* f: upper left *)
    (7, 8, 1, 8);    (* g: middle bar *)
  |]

let generate ?(seed = 11) ~n () =
  if n <= 0 then invalid_arg "Mnist.generate: n must be positive";
  let images = Tensor.create (Shape.make ~n ~h:height ~w:width ~c:channels) in
  let labels = Array.init n (fun i -> i mod classes) in
  let rng = Rng.create seed in
  for i = 0 to n - 1 do
    let segs = segments_of_digit labels.(i) in
    (* Glyph box top-left with jitter; glyph is 16x10 inside 28x28. *)
    let top = 6 + (Rng.int rng 5 - 2) in
    let left = 9 + (Rng.int rng 5 - 2) in
    let intensity = 0.75 +. (0.2 *. Rng.float rng) in
    for h = 0 to height - 1 do
      for w = 0 to width - 1 do
        let lit = ref false in
        Array.iteri
          (fun s (r0, r1, c0, c1) ->
            if segs.(s) then begin
              let r = h - top and c = w - left in
              if r >= r0 && r <= r1 && c >= c0 && c <= c1 then lit := true
            end)
          segment_boxes;
        let v =
          (if !lit then intensity else 0.05) +. (0.05 *. Rng.gaussian rng)
        in
        Tensor.set images ~n:i ~h ~w ~c:0 (Float.max 0. (Float.min 1. v))
      done
    done
  done;
  { images; labels }

let normalize t =
  { t with images = Tensor.map (fun v -> (v -. 0.2) /. 0.3) t.images }
