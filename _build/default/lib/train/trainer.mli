(** Minibatch training loop.

    With an untransformed graph this is ordinary float training; with a
    transformed graph the forward pass emulates the approximate
    accelerator while gradients flow straight-through — i.e. the
    approximate-hardware-aware fine-tuning workflow the paper's
    introduction motivates. *)

type config = {
  learning_rate : float;
  momentum : float;
  weight_decay : float;
  batch_size : int;
  epochs : int;
  strategy : Ax_nn.Exec.strategy;  (** forward-pass flavour *)
  shuffle_seed : int;
}

val default_config : config
(** lr 0.05, momentum 0.9, no decay, batch 16, 5 epochs, GEMM strategy. *)

type history = {
  epoch_losses : float array;
  epoch_accuracies : float array;  (** training accuracy after the epoch *)
}

val train :
  ?log:(epoch:int -> loss:float -> accuracy:float -> unit) ->
  config ->
  Ax_nn.Graph.t ->
  Ax_data.Cifar.t ->
  history
(** Mutates the graph's parameters in place and returns the learning
    curve.  Raises [Invalid_argument] on empty datasets or non-softmax
    outputs. *)

val evaluate : Ax_nn.Graph.t -> ?strategy:Ax_nn.Exec.strategy ->
  Ax_data.Cifar.t -> float
(** Top-1 accuracy. *)
