(** Wire protocol of the inference daemon: length-prefixed, CRC-trailered
    binary frames over a byte stream (Unix or TCP socket).

    {b Framing.}  Every message travels as one frame:

    {v
      offset  size  field
      0       4     magic "AXS1"
      4       4     payload length N, u32 little-endian (N <= 16 MiB)
      8       N     payload (one encoded request or response)
      8+N     4     CRC-32 (IEEE 802.3) of the payload, little-endian
    v}

    The CRC makes in-flight corruption {e detectable}: a frame whose
    header parsed but whose payload was damaged yields
    {!Ax_arith.Load_error.Bad_checksum} — and because the length prefix
    was intact the stream is still in sync, so the connection survives
    ({!recoverable}).  A damaged {e header} (bad magic, oversized or
    truncated length) loses framing sync, so the only safe reaction is
    closing the connection — but never crashing the daemon.  Every
    decode failure, at either layer, is a typed
    {!Ax_arith.Load_error.t}; the fuzz suite ([test/test_serve.ml])
    pins totality the same way [test_loader_fuzz.ml] does for the
    artefact loaders.

    {b Idempotent retries.}  Inference is a pure function of the model
    artefact and the input tensor, and the server holds no per-request
    state once it has responded, so a client that times out may simply
    resend the same [Infer] (same [id] or not) — at-least-once retries
    can only cost duplicate work, never wrong answers. *)

val magic : string
(** ["AXS1"]. *)

val max_payload_bytes : int
(** Hard ceiling on the payload length field (16 MiB).  A frame
    announcing more is rejected before any allocation — a 4-byte
    corruption must not become a multi-gigabyte [Bytes.create]. *)

val header_bytes : int
(** Bytes before the payload: magic + length prefix (8). *)

(** {1 Messages} *)

(** Why a request was refused.  Wire-stable one-byte codes. *)
type error_code =
  | Bad_request        (** malformed payload, shape mismatch, ... *)
  | Unknown_model      (** no model of that name is served *)
  | Model_unavailable  (** the model failed to load / degrade-repaired *)
  | Overloaded         (** admission queue full — retry after the hint *)
  | Deadline_exceeded  (** expired in the queue; never reached the scheduler *)
  | Internal           (** the executor raised; the daemon survived *)
  | Shutting_down      (** graceful shutdown in progress *)

val error_code_name : error_code -> string

type request =
  | Ping
  | List_models
  | Infer of {
      id : int;
          (** client-chosen echo token, [0 .. 2{^32}-2]; [0xFFFFFFFF]
              is the reserved on-wire [None] of the optional response
              id, so {!encode_request} raises [Invalid_argument] on it
              and {!decode_request} rejects it as a typed error — the
              codec stays a bijection at the sentinel boundary *)
      model : string;
      deadline_ms : int option;
          (** relative time budget, [0 .. 2{^32}-2] ([0xFFFFFFFF] is the
              on-wire [None] and reserved, as for [id]); expired
              requests are answered [Deadline_exceeded] at the next
              batch boundary instead of being scheduled *)
      input : Ax_tensor.Tensor.t;  (** NHWC, n >= 1 images *)
    }
  | Metrics  (** Prometheus text dump of the daemon's registry *)
  | Shutdown  (** graceful stop (ack'd before the daemon exits) *)

type response =
  | Pong
  | Models of (string * [ `Ready | `Unavailable of string ]) list
  | Predictions of { id : int; classes : int array }
  | Metrics_dump of string
  | Shutdown_ack
  | Error of {
      id : int option;  (** echo of the [Infer] id when request-bound *)
      code : error_code;
      retry_after_ms : int;  (** meaningful for [Overloaded]; else 0 *)
      message : string;
    }

val request_equal : request -> request -> bool
(** Structural equality (tensors compared element-wise) — the
    round-trip oracle of the property tests. *)

val response_equal : response -> response -> bool

(** {1 Payload codec} *)

val encode_request : request -> Bytes.t
(** Raises [Invalid_argument] when an [Infer] id or deadline lies
    outside [0 .. 2{^32}-2] — [0xFFFFFFFF] encodes the absent option and
    may not be supplied as a value. *)

val encode_response : response -> Bytes.t
(** Same reservation for [Error.id]; [Invalid_argument] past it. *)

val decode_request : Bytes.t -> (request, Ax_arith.Load_error.t) result
(** Total over arbitrary byte strings: truncated, bit-flipped and
    garbage payloads all map to [Error], never to an unchecked
    exception or a silently wrong message. *)

val decode_response : Bytes.t -> (response, Ax_arith.Load_error.t) result

(** {1 Framing} *)

val frame : Bytes.t -> Bytes.t
(** Wrap a payload into a complete frame.  Raises [Invalid_argument]
    past {!max_payload_bytes}. *)

val parse_frame : Bytes.t -> (Bytes.t, Ax_arith.Load_error.t) result
(** Strict whole-buffer deframe (trailing bytes are a [Malformed]
    error) — the in-memory counterpart of {!read_frame} the fuzz tests
    drive. *)

val recoverable : Ax_arith.Load_error.t -> bool
(** Whether a connection that produced this {e framing} error is still
    in sync and may keep serving ([Bad_checksum]: yes — the length
    prefix already walked the stream past the damaged payload;
    everything else: no). *)

(** {1 Blocking I/O} *)

val read_frame :
  Unix.file_descr ->
  [ `Payload of Bytes.t | `Eof | `Err of Ax_arith.Load_error.t | `Timeout ]
(** Read one frame.  [`Eof] on a clean end-of-stream between frames; a
    mid-frame end-of-stream is [`Err (Truncated _)]; an expired
    [SO_RCVTIMEO] ([EAGAIN]/[EWOULDBLOCK]) is [`Timeout] — the daemon
    treats it as a desync-close so a stalled or silent peer cannot pin a
    connection thread forever, and the client surfaces it as
    [Timed_out].  Never raises on malformed input (other I/O errors
    still raise [Unix.Unix_error]). *)

val write_frame : Unix.file_descr -> Bytes.t -> unit
(** Frame and send a payload ([single_write] until done).  Raises
    [Unix.Unix_error] when the peer is gone ([EPIPE] — the daemon
    ignores SIGPIPE so a dead client is an exception, not a death). *)
