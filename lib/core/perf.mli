(** Benchmark trajectory tracking and the regression gate.

    [bench -- gemm] writes a [BENCH_gemm.json] snapshot per run; this
    module parses those snapshots, appends them (labelled with a UTC
    timestamp) to a JSON-lines history file, and compares the current
    run against the {e best} value each metric ever reached — the CI
    gate behind [bench -- history] and the [perf] CLI subcommand.
    Throughput regresses when it falls below [1 - threshold] of the
    baseline; ns/MAC when it rises above [1 + threshold]. *)

type sample = { domains : int; seconds : float; images_per_sec : float }

type compression = {
  multiplier : string;  (** registry name the kernel ran with *)
  comp_mode : string;   (** [Ax_quant.Lut_compressed.mode_name] label *)
  comp_bytes : int;     (** encoded working set in bytes *)
  comp_ratio : float;   (** 131072 / bytes *)
}

type record = {
  label : string;
  bench : string;
      (** which benchmark produced the record ([default_bench] = "gemm",
          or "explore"); the regression gate only compares records of
          the same kind *)
  images : int;
  throughput : sample list;
  ns_per_mac : float option;
  lut_compression : compression option;
      (** how compressed the benchmarked multiplier's LUT was — absent
          in pre-compression history lines, which still parse *)
}

val default_bench : string
(** ["gemm"] — the benchmark kind assumed for history lines written
    before records carried a [bench] member. *)

val record_of_json : ?label:string -> Ax_obs.Json.t -> record
(** Parse a [BENCH_gemm.json]-shaped document ([throughput] sample list
    plus [micro.ns_per_mac]); missing fields degrade to empty/[None].
    [label] is the fallback when the document carries none; a missing
    [bench] member parses as {!default_bench}. *)

val record_to_json : record -> Ax_obs.Json.t

val of_file : string -> record
(** Parse one snapshot file; the file name becomes the fallback label.
    Raises [Sys_error] / [Ax_obs.Json.Parse_error]. *)

val load_history : string -> record list
(** Parse a JSON-lines history file in order; a missing file is an
    empty history, unparseable lines are skipped (a truncated final
    line from a killed run must not wedge later gates). *)

val append_history : string -> record -> unit
(** Append one record as a single JSON line (creates the file). *)

val utc_label : unit -> string
(** Current time as ["YYYY-MM-DDTHH:MM:SSZ"] — the label
    [append_history] callers stamp records with. *)

val throughput_of : record -> int -> float option
(** Images/sec at a given domain count, when recorded. *)

(** {1 Regression gate} *)

type verdict = {
  metric : string;   (** [images_per_sec_d<n>] or [ns_per_mac] *)
  baseline : float;
  current : float;
  ratio : float;     (** current / baseline *)
  regressed : bool;
}

val default_threshold : float
(** [0.35] — generous because CI wall-clock is noisy; tighten locally
    via {!threshold_env_var}. *)

val threshold_env_var : string
(** ["TFAPPROX_PERF_THRESHOLD"]. *)

val threshold_from_env : unit -> float
(** The env override when set to a positive float, else
    {!default_threshold}. *)

val compare_records : threshold:float -> baseline:record -> current:record -> verdict list
(** One verdict per metric present in both records; zero or missing
    baselines are skipped. *)

val best_of : record list -> record option
(** Per-metric best over a history (max throughput per domain count,
    min ns/MAC); [None] on an empty history. *)

val gate : threshold:float -> history:record list -> current:record -> verdict list
(** [compare_records] against {!best_of} of the history records whose
    [bench] matches [current.bench] — the shared JSON-lines file can
    interleave gemm and explore records without either poisoning the
    other's baseline.  An empty (filtered) history yields no verdicts
    (first run of a kind always passes). *)

val regressed : verdict list -> bool

val verdict_to_json : verdict -> Ax_obs.Json.t
val report_to_json : threshold:float -> verdict list -> Ax_obs.Json.t

val pp_verdicts : Format.formatter -> verdict list -> unit
val pp_history : Format.formatter -> record list -> unit
