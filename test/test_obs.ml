(* The observability layer: JSON round-trips, metrics snapshots, span
   tracing, phase partitioning, and the guarantee that instrumentation
   never changes emulator results. *)

module Json = Ax_obs.Json
module Metrics = Ax_obs.Metrics
module Trace = Ax_obs.Trace
module Phases = Ax_obs.Phases
module Profile = Ax_nn.Profile
module Emulator = Tfapprox.Emulator
module Resnet = Ax_models.Resnet
module Cifar = Ax_data.Cifar
module Tensor = Ax_tensor.Tensor

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* --- json --- *)

let test_json_round_trip () =
  let v =
    Json.Obj
      [
        ("name", Json.String "conv1 \"quoted\"\n\ttab");
        ("count", Json.Int 42);
        ("neg", Json.Int (-7));
        ("ok", Json.Bool true);
        ("nothing", Json.Null);
        ("items", Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
        ("nested", Json.Obj [ ("empty_list", Json.List []) ]);
      ]
  in
  Alcotest.(check bool) "round trip" true (Json.parse (Json.to_string v) = v)

let test_json_floats () =
  let v = Json.List [ Json.Float 1.5; Json.Float 3.0; Json.Float nan ] in
  let s = Json.to_string v in
  check_string "floats stay JSON numbers" "[1.5,3.0,null]" s;
  match Json.parse s with
  | Json.List [ a; b; Json.Null ] ->
    check_bool "1.5 back" true (Json.get_float a = Some 1.5);
    check_bool "3.0 back" true (Json.get_float b = Some 3.0)
  | _ -> Alcotest.fail "expected a 3-element list"

let test_json_parse_errors () =
  let rejects s =
    match Json.parse s with
    | exception Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  List.iter rejects [ "{"; "[1,]"; "\"open"; "1 2"; ""; "{'a':1}"; "nul" ]

let test_json_escapes () =
  match Json.parse {|{"s":"aA\n\\"}|} with
  | v ->
    check_bool "escape decoding" true
      (Option.bind (Json.member "s" v) Json.get_string = Some "aA\n\\")

(* --- metrics --- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m "lut_lookups" in
  Metrics.incr c 5;
  Metrics.incr c 7;
  check_int "accumulates" 12 (Metrics.value c);
  check_bool "same handle" true (Metrics.counter m "lut_lookups" == c);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Metrics.incr: negative increment") (fun () ->
      Metrics.incr c (-1));
  Metrics.add m "macs" 3;
  let s = Metrics.snapshot m in
  check_bool "snapshot lists both" true
    (Metrics.find_counter s "lut_lookups" = Some 12
    && Metrics.find_counter s "macs" = Some 3)

let test_metrics_snapshot_diff () =
  let m = Metrics.create () in
  Metrics.add m "lut_lookups" 100;
  Metrics.set_gauge m "hit_rate" 0.5;
  let before = Metrics.snapshot m in
  Metrics.add m "lut_lookups" 23;
  Metrics.add m "chunks" 2;
  Metrics.set_gauge m "hit_rate" 0.75;
  let d = Metrics.diff ~before ~after:(Metrics.snapshot m) in
  check_bool "existing counter diffed" true
    (Metrics.find_counter d "lut_lookups" = Some 23);
  check_bool "new counter full" true (Metrics.find_counter d "chunks" = Some 2);
  check_bool "gauge keeps after value" true
    (Metrics.find_gauge d "hit_rate" = Some 0.75)

let test_metrics_json_round_trip () =
  let m = Metrics.create () in
  Metrics.add m "lut_lookups" 9;
  Metrics.set_gauge m "images_per_sec" 4.5;
  let json = Metrics.to_json (Metrics.snapshot m) in
  let parsed = Json.parse (Json.to_string json) in
  let counter name =
    Option.bind (Json.member "counters" parsed) (fun c ->
        Option.bind (Json.member name c) Json.get_int)
  in
  let gauge name =
    Option.bind (Json.member "gauges" parsed) (fun g ->
        Option.bind (Json.member name g) Json.get_float)
  in
  check_bool "counter exported" true (counter "lut_lookups" = Some 9);
  check_bool "gauge exported" true (gauge "images_per_sec" = Some 4.5)

let test_metrics_prometheus () =
  let m = Metrics.create () in
  Metrics.add m "lut lookups/total" 3;
  Metrics.set_gauge m "hit_rate" 0.9;
  let text = Metrics.to_prometheus (Metrics.snapshot m) in
  let has needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i =
      i + nl <= hl && (String.sub text i nl = needle || go (i + 1))
    in
    go 0
  in
  check_bool "counter type line" true
    (has "# TYPE tfapprox_lut_lookups_total counter");
  check_bool "sanitized sample" true (has "tfapprox_lut_lookups_total 3");
  check_bool "gauge line" true (has "# TYPE tfapprox_hit_rate gauge")

let test_metrics_reset () =
  let m = Metrics.create () in
  let c = Metrics.counter m "macs" in
  Metrics.incr c 4;
  Metrics.set_gauge m "hit_rate" 0.3;
  Metrics.reset m;
  check_int "counter zeroed" 0 (Metrics.value c);
  check_bool "gauge zeroed" true
    (Metrics.gauge_value (Metrics.gauge m "hit_rate") = 0.)

(* --- histograms --- *)

let test_hist_bucket_geometry () =
  check_int "nan lands in bucket 0" 0 (Metrics.bucket_index nan);
  check_int "infinity lands in bucket 0" 0 (Metrics.bucket_index infinity);
  check_int "zero lands in bucket 0" 0 (Metrics.bucket_index 0.);
  check_int "negative lands in bucket 0" 0 (Metrics.bucket_index (-3.));
  check_int "overflow clamps to last"
    (Metrics.hist_bucket_count - 1)
    (Metrics.bucket_index 1e60);
  (* Indexing is monotone and bounds bracket their bucket. *)
  let prev = ref (-1) in
  List.iter
    (fun v ->
      let i = Metrics.bucket_index v in
      check_bool (Printf.sprintf "monotone at %g" v) true (i >= !prev);
      prev := i;
      if i > 0 && i < Metrics.hist_bucket_count - 1 then begin
        check_bool
          (Printf.sprintf "lower bound < %g" v)
          true
          (Metrics.bucket_lower_bound i < v);
        check_bool
          (Printf.sprintf "%g <= upper bound" v)
          true
          (v <= Metrics.bucket_upper_bound i)
      end)
    [ 1e-9; 3e-9; 1e-6; 1e-3; 0.5; 1.0; 2.0; 100.; 1e4 ]

let test_hist_observe_and_quantiles () =
  let m = Metrics.create () in
  let h = Metrics.histogram m "lat" in
  check_int "fresh histogram empty" 0 (Metrics.h_count h);
  check_bool "empty quantile is nan" true
    (Float.is_nan (Metrics.quantile h 0.5));
  List.iter (Metrics.observe h) [ 0.001; 0.002; 0.004; 0.008; 0.1 ];
  check_int "count" 5 (Metrics.h_count h);
  check_bool "sum" true (abs_float (Metrics.h_sum h -. 0.115) < 1e-12);
  (* Nearest-rank p50 of 5 samples is the 3rd (0.004); the estimate is
     the geometric bucket midpoint, so within one bucket width. *)
  let p50 = Metrics.quantile h 0.5 in
  check_bool
    (Printf.sprintf "p50 %.6f within a bucket of 0.004" p50)
    true
    (p50 >= 0.004 /. 1.2 && p50 <= 0.004 *. 1.2);
  (* Quantiles clamp to the observed extremes. *)
  check_bool "p0 >= min" true (Metrics.quantile h 0. >= 0.001);
  check_bool "p100 <= max" true (Metrics.quantile h 1. <= 0.1);
  check_bool "same handle" true (Metrics.histogram m "lat" == h);
  Metrics.observe_named m "lat" 0.2;
  check_int "observe_named shares the cell" 6 (Metrics.h_count h)

(* Nearest-rank with the same rank the implementation uses. *)
let empirical_rank values q =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = max 0 (int_of_float (ceil (q *. float_of_int n)) - 1) in
  List.nth sorted (min rank (n - 1))

let prop_hist_quantiles =
  QCheck.Test.make ~count:100 ~name:"histogram quantiles ordered and bracket"
    QCheck.(list_of_size Gen.(1 -- 80) (float_range 1e-8 1e3))
    (fun values ->
      let m = Metrics.create () in
      let h = Metrics.histogram m "q" in
      List.iter (Metrics.observe h) values;
      let p50 = Metrics.quantile h 0.5
      and p90 = Metrics.quantile h 0.9
      and p99 = Metrics.quantile h 0.99 in
      let lo = List.fold_left min infinity values
      and hi = List.fold_left max neg_infinity values in
      let median = empirical_rank values 0.5 in
      p50 <= p90 && p90 <= p99
      && lo <= p50 && p99 <= hi
      && p50 >= median /. 1.2
      && p50 <= median *. 1.2)

let test_hist_snapshot_and_diff () =
  let m = Metrics.create () in
  List.iter (Metrics.observe_named m "lat") [ 0.01; 0.02 ];
  let before = Metrics.snapshot m in
  List.iter (Metrics.observe_named m "lat") [ 1.0; 2.0; 4.0 ];
  let after = Metrics.snapshot m in
  (match Metrics.find_histogram after "lat" with
  | Some h ->
    check_int "cumulative count" 5 h.Metrics.count;
    check_bool "min tracked" true (h.Metrics.min = 0.01);
    check_bool "max tracked" true (h.Metrics.max = 4.0)
  | None -> Alcotest.fail "histogram missing from snapshot");
  let d = Metrics.diff ~before ~after in
  match Metrics.find_histogram d "lat" with
  | Some h ->
    check_int "diff counts only the region" 3 h.Metrics.count;
    check_bool "diff sum" true (abs_float (h.Metrics.sum -. 7.0) < 1e-9);
    (* Quantiles are recomputed from the diffed buckets: the region's
       median is 2.0, far from the cumulative median. *)
    check_bool
      (Printf.sprintf "diff p50 %.3f reflects the region" h.Metrics.p50)
      true
      (h.Metrics.p50 >= 2.0 /. 1.2 && h.Metrics.p50 <= 2.0 *. 1.2)
  | None -> Alcotest.fail "histogram missing from diff"

let test_hist_merge () =
  let shard = Metrics.create () in
  List.iter (Metrics.observe_named shard "lat") [ 0.5; 1.0 ];
  let into = Metrics.create () in
  Metrics.observe_named into "lat" 2.0;
  let snap = Metrics.snapshot shard in
  (match Metrics.find_histogram snap "lat" with
  | Some h ->
    Metrics.merge_histogram into "lat" h;
    (* Merging an empty snapshot must not disturb min/max. *)
    Metrics.merge_histogram into "lat"
      { h with Metrics.count = 0; buckets = []; sum = 0. }
  | None -> Alcotest.fail "shard histogram missing");
  match Metrics.find_histogram (Metrics.snapshot into) "lat" with
  | Some h ->
    check_int "counts summed" 3 h.Metrics.count;
    check_bool "sum summed" true (abs_float (h.Metrics.sum -. 3.5) < 1e-9);
    check_bool "min crosses shards" true (h.Metrics.min = 0.5);
    check_bool "max crosses shards" true (h.Metrics.max = 2.0)
  | None -> Alcotest.fail "merged histogram missing"

let has_sub text needle =
  let nl = String.length needle and hl = String.length text in
  let rec go i = i + nl <= hl && (String.sub text i nl = needle || go (i + 1)) in
  go 0

let test_prometheus_collision_dedupe () =
  let m = Metrics.create () in
  Metrics.add m "lut.hits" 1;
  Metrics.add m "lut/hits" 2;
  let text = Metrics.to_prometheus (Metrics.snapshot m) in
  (* Raw names sort "lut.hits" < "lut/hits", so the dot variant keeps
     the base exposition name and the slash variant gets _2. *)
  check_bool "first family keeps the base name" true
    (has_sub text "# HELP tfapprox_lut_hits lut.hits");
  check_bool "first sample" true (has_sub text "\ntfapprox_lut_hits 1\n");
  check_bool "collision suffixed deterministically" true
    (has_sub text "# HELP tfapprox_lut_hits_2 lut/hits");
  check_bool "second sample" true (has_sub text "\ntfapprox_lut_hits_2 2\n")

let test_prometheus_histogram_render () =
  let m = Metrics.create () in
  List.iter (Metrics.observe_named m "gemm_chunk_seconds") [ 0.001; 0.01; 0.01 ];
  let text = Metrics.to_prometheus (Metrics.snapshot m) in
  check_bool "histogram type line" true
    (has_sub text "# TYPE tfapprox_gemm_chunk_seconds histogram");
  check_bool "cumulative buckets" true
    (has_sub text "tfapprox_gemm_chunk_seconds_bucket{le=\"");
  check_bool "+Inf bucket carries the count" true
    (has_sub text "tfapprox_gemm_chunk_seconds_bucket{le=\"+Inf\"} 3");
  check_bool "sum sample" true (has_sub text "tfapprox_gemm_chunk_seconds_sum");
  check_bool "count sample" true
    (has_sub text "tfapprox_gemm_chunk_seconds_count 3")

let test_hist_json_round_trip () =
  let m = Metrics.create () in
  List.iter (Metrics.observe_named m "lat") [ 0.25; 0.5 ];
  let parsed = Json.parse (Json.to_string (Metrics.to_json (Metrics.snapshot m))) in
  let field name =
    Option.bind (Json.member "histograms" parsed) (fun h ->
        Option.bind (Json.member "lat" h) (Json.member name))
  in
  check_bool "count exported" true
    (Option.bind (field "count") Json.get_int = Some 2);
  check_bool "sum exported" true
    (Option.bind (field "sum") Json.get_float = Some 0.75);
  check_bool "p50 numeric" true
    (match Option.bind (field "p50") Json.get_float with
    | Some v -> v > 0.
    | None -> false)

(* --- structured log --- *)

module Log = Ax_obs.Log

(* Capture events in-process; always restore the global logger state. *)
let with_log_capture f =
  let events = ref [] in
  let old_threshold = Log.get_threshold () in
  Log.set_sink (fun e -> events := e :: !events);
  Fun.protect
    ~finally:(fun () ->
      Log.set_sink (Log.text_sink ());
      Log.set_threshold old_threshold)
    (fun () -> f events)

let test_log_threshold_filters () =
  with_log_capture (fun events ->
      Log.set_threshold (Some Log.Info);
      Log.debug "too quiet";
      Log.info ~fields:[ ("k", Json.Int 1) ] "hello";
      Log.warn "watch out";
      check_int "debug filtered at info" 2 (List.length !events);
      check_bool "enabled agrees" true
        (Log.enabled Log.Warn && not (Log.enabled Log.Debug));
      Log.set_threshold (Some Log.Warn);
      Log.info "dropped";
      check_int "info filtered at warn" 2 (List.length !events);
      Log.set_threshold None;
      Log.error "silenced";
      check_int "None silences everything" 2 (List.length !events);
      match List.rev !events with
      | [ i; w ] ->
        check_string "info message" "hello" i.Log.message;
        check_bool "fields kept" true (i.Log.fields = [ ("k", Json.Int 1) ]);
        check_string "warn level" "warn" (Log.level_name w.Log.level)
      | _ -> Alcotest.fail "expected two captured events")

let test_log_configure_spec () =
  with_log_capture (fun _ ->
      Log.configure "debug";
      check_bool "debug level" true (Log.get_threshold () = Some Log.Debug);
      Log.configure "off";
      check_bool "off silences" true (Log.get_threshold () = None);
      Log.configure "warn,bogus-token";
      check_bool "unknown tokens ignored" true
        (Log.get_threshold () = Some Log.Warn))

let test_log_event_json () =
  let e =
    {
      Log.level = Log.Warn;
      message = "boom";
      fields = [ ("file", Json.String "x.json") ];
      time = 12.5;
    }
  in
  let parsed = Json.parse (Json.to_string (Log.event_to_json e)) in
  check_bool "level exported" true
    (Option.bind (Json.member "level" parsed) Json.get_string = Some "warn");
  check_bool "message exported" true
    (Option.bind (Json.member "msg" parsed) Json.get_string = Some "boom");
  check_bool "fields inlined" true
    (Option.bind (Json.member "file" parsed) Json.get_string = Some "x.json")

(* --- trace --- *)

let test_span_nesting_and_order () =
  let t = Trace.create () in
  let r =
    Trace.with_span t ~name:"outer" ~attrs:[ ("k", "v") ] (fun () ->
        Trace.with_span t ~name:"inner" (fun () -> 21 * 2))
  in
  check_int "result threaded" 42 r;
  match Trace.spans t with
  | [ inner; outer ] ->
    (* completion order: children land in the ring before parents *)
    check_string "inner first" "inner" inner.Trace.name;
    check_string "outer second" "outer" outer.Trace.name;
    check_int "inner depth" 1 inner.Trace.depth;
    check_int "outer depth" 0 outer.Trace.depth;
    check_bool "durations positive" true
      (inner.Trace.dur_us > 0. && outer.Trace.dur_us > 0.);
    check_bool "inner starts inside outer" true
      (inner.Trace.start_us >= outer.Trace.start_us);
    check_bool "inner ends inside outer" true
      (inner.Trace.start_us +. inner.Trace.dur_us
      <= outer.Trace.start_us +. outer.Trace.dur_us +. 1.);
    check_bool "outer keeps attrs" true (outer.Trace.attrs = [ ("k", "v") ])
  | spans -> Alcotest.failf "expected 2 spans, got %d" (List.length spans)

let test_span_recorded_on_raise () =
  let t = Trace.create () in
  (try
     Trace.with_span t ~name:"boom" (fun () -> failwith "expected")
   with Failure _ -> ());
  check_int "span survives the exception" 1 (Trace.span_count t);
  check_bool "depth unwound" true
    (Trace.with_span t ~name:"after" (fun () -> ());
     match Trace.spans t with
     | [ _; after ] -> after.Trace.depth = 0
     | _ -> false)

let test_ring_buffer_eviction () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 10 do
    Trace.with_span t ~name:(Printf.sprintf "s%d" i) (fun () -> ())
  done;
  check_int "capacity bounds retention" 4 (Trace.span_count t);
  check_int "dropped counted" 6 (Trace.dropped t);
  check_bool "newest retained" true
    (List.map (fun s -> s.Trace.name) (Trace.spans t)
    = [ "s7"; "s8"; "s9"; "s10" ]);
  Trace.clear t;
  check_int "clear empties" 0 (Trace.span_count t);
  check_int "clear resets dropped" 0 (Trace.dropped t)

let test_chrome_export_well_formed () =
  let t = Trace.create () in
  Trace.with_span t ~name:"parent" ~attrs:[ ("layer", "conv1") ] (fun () ->
      Trace.with_span t ~name:"child" (fun () -> ()));
  let parsed = Json.parse (Trace.chrome_json_string t) in
  match Option.bind (Json.member "traceEvents" parsed) Json.get_list with
  | None -> Alcotest.fail "traceEvents missing"
  | Some events ->
    check_int "one event per span" 2 (List.length events);
    List.iter
      (fun e ->
        check_bool "complete event" true
          (Option.bind (Json.member "ph" e) Json.get_string = Some "X");
        check_bool "has name" true
          (Option.bind (Json.member "name" e) Json.get_string <> None);
        check_bool "nonzero duration" true
          (match Option.bind (Json.member "dur" e) Json.get_float with
          | Some d -> d > 0.
          | None -> false);
        check_bool "has timestamp" true
          (Option.bind (Json.member "ts" e) Json.get_float <> None))
      events;
    let parent =
      List.find
        (fun e ->
          Option.bind (Json.member "name" e) Json.get_string = Some "parent")
        events
    in
    check_bool "attrs exported as args" true
      (Option.bind (Json.member "args" parent) (fun a ->
           Option.bind (Json.member "layer" a) Json.get_string)
      = Some "conv1")

let test_tree_rendering () =
  let t = Trace.create () in
  Trace.with_span t ~name:"outer" (fun () ->
      Trace.with_span t ~name:"inner" ~attrs:[ ("x", "1") ] (fun () -> ()));
  let text = Format.asprintf "%a" Trace.pp_tree t in
  let has needle =
    let nl = String.length needle and hl = String.length text in
    let rec go i =
      i + nl <= hl && (String.sub text i nl = needle || go (i + 1))
    in
    go 0
  in
  check_bool "outer listed" true (has "outer");
  check_bool "inner indented" true (has "  inner");
  check_bool "attrs printed" true (has "x=1")

let test_fork_merge_and_tids () =
  let parent = Trace.create () in
  Trace.with_span parent ~name:"coordinator" (fun () -> ());
  let fork1 = Trace.fork parent ~tid:1 in
  let fork2 = Trace.fork parent ~tid:2 in
  Trace.with_span fork1 ~name:"task-a" (fun () -> ());
  Trace.with_span fork2 ~name:"task-b" (fun () -> ());
  Trace.merge ~into:parent fork1;
  Trace.merge ~into:parent fork2;
  let tid_of name =
    List.find_map
      (fun (s : Trace.span) -> if s.Trace.name = name then Some s.Trace.tid else None)
      (Trace.spans parent)
  in
  check_int "all spans merged" 3 (Trace.span_count parent);
  check_bool "coordinator on tid 0" true (tid_of "coordinator" = Some 0);
  check_bool "fork 1 stamped" true (tid_of "task-a" = Some 1);
  check_bool "fork 2 stamped" true (tid_of "task-b" = Some 2);
  (* Chrome export carries the tid per event. *)
  let parsed = Json.parse (Trace.chrome_json_string parent) in
  (match Option.bind (Json.member "traceEvents" parsed) Json.get_list with
  | Some events ->
    let tids =
      List.sort_uniq compare
        (List.filter_map
           (fun e -> Option.bind (Json.member "tid" e) Json.get_int)
           events)
    in
    check_bool "distinct tid rows exported" true (tids = [ 0; 1; 2 ])
  | None -> Alcotest.fail "traceEvents missing");
  (* Drops travel with the merge: a tiny fork that evicted spans makes
     the merged trace admit incompleteness. *)
  let lossy = Trace.fork ~capacity:2 parent ~tid:3 in
  for i = 1 to 5 do
    Trace.with_span lossy ~name:(Printf.sprintf "l%d" i) (fun () -> ())
  done;
  check_int "fork drops counted" 3 (Trace.dropped lossy);
  Trace.merge ~into:parent lossy;
  check_int "drops inherited by the sink" 3 (Trace.dropped parent);
  Trace.clear parent;
  check_int "clear resets inherited drops" 0 (Trace.dropped parent)

(* --- phases --- *)

let busy () =
  let acc = ref 0 in
  for i = 1 to 200_000 do
    acc := !acc + i
  done;
  ignore !acc

let test_phases_partition () =
  let p = Phases.create () in
  let start = Unix.gettimeofday () in
  Phases.time p "outer" (fun () ->
      busy ();
      Phases.time p "inner" busy;
      busy ());
  let elapsed = Unix.gettimeofday () -. start in
  check_bool "both phases charged" true
    (Phases.seconds p "inner" > 0. && Phases.seconds p "outer" >= 0.);
  check_bool "phases partition elapsed time" true
    (abs_float (Phases.total p -. elapsed) < 1e-3)

let test_phases_json_and_names () =
  let p = Phases.create () in
  Phases.add_seconds p "lut" 1.5;
  Phases.add_seconds p "init" 0.5;
  check_bool "names sorted" true (Phases.names p = [ "init"; "lut" ]);
  let parsed = Json.parse (Json.to_string (Phases.to_json p)) in
  check_bool "phase exported" true
    (Option.bind (Json.member "lut" parsed) Json.get_float = Some 1.5)

let allocate () =
  (* Enough boxed floats to guarantee minor-heap traffic. *)
  let l = List.init 50_000 (fun i -> float_of_int i +. 0.5) in
  ignore (List.fold_left ( +. ) 0. l)

let test_phases_gc_attribution () =
  let p = Phases.create () in
  Phases.time p "outer" (fun () ->
      Phases.time p "alloc" allocate);
  let inner = Phases.gc_delta p "alloc" in
  check_bool "allocation charged to the allocating phase" true
    (inner.Phases.minor_words > 0.);
  (* Partition semantics: the outer phase is refunded, so the total
     equals what one flat measurement would have seen. *)
  let total = Phases.gc_total p in
  let outer = Phases.gc_delta p "outer" in
  check_bool "outer + inner = total" true
    (abs_float
       (outer.Phases.minor_words +. inner.Phases.minor_words
       -. total.Phases.minor_words)
    < 1.);
  check_bool "never-charged phase reads zero" true
    (Phases.gc_delta p "nope" = Phases.gc_zero);
  let sum = Phases.gc_add inner Phases.gc_zero in
  check_bool "gc_add identity" true (sum = inner);
  (* External charging (the shard-merge path). *)
  let q = Phases.create () in
  Phases.add_gc q "alloc" inner;
  check_bool "add_gc folds in" true
    ((Phases.gc_delta q "alloc").Phases.minor_words
    = inner.Phases.minor_words)

let test_phases_gc_json_and_publish () =
  let p = Phases.create () in
  Phases.time p "alloc" allocate;
  let parsed = Json.parse (Json.to_string (Phases.gc_to_json p)) in
  check_bool "phase gc exported" true
    (match
       Option.bind (Json.member "alloc" parsed) (fun o ->
           Option.bind (Json.member "minor_words" o) Json.get_float)
     with
    | Some v -> v > 0.
    | None -> false);
  let m = Metrics.create () in
  Phases.publish_gc p m;
  let snap = Metrics.snapshot m in
  check_bool "per-phase gauge published" true
    (match Metrics.find_gauge snap "phase_alloc_minor_words" with
    | Some v -> v > 0.
    | None -> false);
  (* Process-lifetime readings are one observe_gc away. *)
  Metrics.observe_gc m;
  let snap = Metrics.snapshot m in
  check_bool "gc_minor_words gauge" true
    (match Metrics.find_gauge snap "gc_minor_words" with
    | Some v -> v > 0.
    | None -> false);
  check_bool "gc_heap_words gauge" true
    (Metrics.find_gauge snap "gc_heap_words" <> None)

(* --- profile regression (the Fig. 2 view) --- *)

let test_profile_nested_time_partitions () =
  let p = Profile.create () in
  let start = Unix.gettimeofday () in
  Profile.time p Profile.Other (fun () ->
      busy ();
      Profile.time p Profile.Lut busy;
      busy ())
  |> ignore;
  let elapsed = Unix.gettimeofday () -. start in
  let lut = Profile.seconds p Profile.Lut
  and other = Profile.seconds p Profile.Other in
  check_bool "inner charged" true (lut > 0.);
  check_bool "outer refunded, not double-charged" true (other >= -1e-9);
  check_bool
    (Printf.sprintf "partition exact (%.6f vs %.6f)" (lut +. other) elapsed)
    true
    (abs_float (lut +. other -. elapsed) < 1e-3);
  check_bool "total matches the partition" true
    (abs_float (Profile.total_seconds p -. (lut +. other)) < 1e-9)

let test_profile_negative_add_seconds_clamped () =
  let p = Profile.create () in
  Profile.add_seconds p Profile.Init (-5.);
  Profile.add_seconds p Profile.Lut 1.;
  let b = Profile.breakdown p in
  check_bool "negative phase clamped to zero share" true
    (b.Profile.init_pct = 0.);
  check_bool "remaining shares renormalized" true
    (abs_float (b.Profile.lut_pct -. 100.) < 1e-9);
  check_bool "seconds still reports the raw refund" true
    (Profile.seconds p Profile.Init = -5.)

let test_profile_counters_and_reset () =
  let tracer = Trace.create () in
  let p = Profile.create ~trace:tracer () in
  Profile.count_lut_lookups p 10;
  Profile.count_macs p 20;
  Profile.count p "im2col_bytes" 30;
  Profile.span p ~name:"x" (fun () -> ());
  check_int "lookups" 10 (Profile.lut_lookups p);
  check_int "macs" 20 (Profile.macs p);
  check_bool "custom counter in registry" true
    (Metrics.find_counter (Metrics.snapshot (Profile.metrics p)) "im2col_bytes"
    = Some 30);
  check_int "span recorded" 1 (Trace.span_count tracer);
  Profile.reset p;
  check_int "reset zeroes lookups" 0 (Profile.lut_lookups p);
  check_int "reset clears tracer" 0 (Trace.span_count tracer)

(* --- instrumented emulation --- *)

let approx_resnet8 () =
  Emulator.approximate_model ~multiplier:"mul8u_trunc8"
    (Resnet.build ~depth:8 ())

let test_instrumentation_is_behavior_neutral () =
  let graph = approx_resnet8 () in
  let data = (Cifar.generate ~n:2 ()).Cifar.images in
  let plain = Emulator.run ~backend:Emulator.Cpu_gemm graph data in
  let profile = Profile.create ~trace:(Trace.create ()) () in
  let traced = Emulator.run ~profile ~backend:Emulator.Cpu_gemm graph data in
  check_bool "bit-identical outputs" true
    (Tensor.max_abs_diff plain traced = 0.)

let test_traced_run_spans_and_counters () =
  let graph = approx_resnet8 () in
  let data = (Cifar.generate ~n:2 ()).Cifar.images in
  let tracer = Trace.create () in
  let profile = Profile.create ~trace:tracer () in
  ignore (Emulator.run ~profile ~backend:Emulator.Cpu_gemm graph data);
  let names =
    List.sort_uniq compare
      (List.map (fun s -> s.Trace.name) (Trace.spans tracer))
  in
  check_bool
    (Printf.sprintf "distinct span names (%d)" (List.length names))
    true
    (List.length names >= 3);
  check_bool "emulator span present" true (List.mem "emulator.run" names);
  check_bool "node spans present" true (List.mem "AxConv2D" names);
  check_bool "chunk spans present" true (List.mem "axconv.chunk" names);
  List.iter
    (fun (s : Trace.span) ->
      check_bool (s.Trace.name ^ " has nonzero duration") true
        (s.Trace.dur_us > 0.))
    (Trace.spans tracer);
  (* The metrics registry and the legacy accessors must agree. *)
  let snap = Metrics.snapshot (Profile.metrics profile) in
  check_bool "lut_lookups counter = Profile.lut_lookups" true
    (Metrics.find_counter snap "lut_lookups"
    = Some (Profile.lut_lookups profile));
  check_bool "lookups happened" true (Profile.lut_lookups profile > 0);
  check_bool "chunk counter" true
    (match Metrics.find_counter snap "chunks" with
    | Some n -> n > 0
    | None -> false);
  check_bool "im2col bytes counted" true
    (match Metrics.find_counter snap "im2col_bytes" with
    | Some n -> n > 0
    | None -> false);
  check_bool "images_per_sec gauge set" true
    (match Metrics.find_gauge snap "images_per_sec" with
    | Some v -> v > 0.
    | None -> false);
  (* Latency distributions: per-chunk GEMM, per-node Exec, and the whole
     run, each as a histogram with plausible quantiles. *)
  List.iter
    (fun name ->
      match Metrics.find_histogram snap name with
      | Some h ->
        check_bool (name ^ " populated") true (h.Metrics.count > 0);
        check_bool (name ^ " quantiles ordered") true
          (h.Metrics.p50 <= h.Metrics.p90 && h.Metrics.p90 <= h.Metrics.p99)
      | None -> Alcotest.failf "%s histogram missing" name)
    [ "gemm_chunk_seconds"; "exec_node_seconds"; "emulator_run_seconds" ];
  (* GC telemetry rides along on every profiled run. *)
  check_bool "phase gc gauges published" true
    (List.exists
       (fun (n, _) ->
         String.length n > 6 && String.sub n 0 6 = "phase_")
       snap.Metrics.gauges);
  (* Chrome export of the real run parses back. *)
  let parsed = Json.parse (Trace.chrome_json_string tracer) in
  match Option.bind (Json.member "traceEvents" parsed) Json.get_list with
  | Some events ->
    check_int "every span exported" (Trace.span_count tracer)
      (List.length events)
  | None -> Alcotest.fail "traceEvents missing"

let test_texcache_publish () =
  let cache =
    Ax_gpusim.Texcache.create ~size_bytes:1024 ~line_bytes:32 ~ways:2
  in
  for i = 0 to 99 do
    ignore (Ax_gpusim.Texcache.access cache (i mod 8 * 32))
  done;
  let m = Metrics.create () in
  Ax_gpusim.Texcache.publish cache m;
  let snap = Metrics.snapshot m in
  check_bool "accesses published" true
    (Metrics.find_counter snap "texcache_accesses" = Some 100);
  check_bool "hits + misses = accesses" true
    (match
       ( Metrics.find_counter snap "texcache_hits",
         Metrics.find_counter snap "texcache_misses" )
     with
    | Some h, Some miss -> h + miss = 100
    | _ -> false);
  (* Publishing again without new accesses must add nothing. *)
  Ax_gpusim.Texcache.publish cache m;
  check_bool "idempotent publish" true
    (Metrics.find_counter (Metrics.snapshot m) "texcache_accesses" = Some 100);
  check_bool "hit rate gauge" true
    (match Metrics.find_gauge snap "texcache_hit_rate" with
    | Some r -> r > 0. && r <= 1.
    | None -> false)

let test_fig2_accepts_tracer () =
  let tracer = Trace.create () in
  let rows =
    Tfapprox.Experiments.fig2 ~trace:tracer ~depths:[ 8 ] ~images_measured:1 ()
  in
  check_int "one row" 1 (List.length rows);
  check_bool "fig2 run produced spans" true (Trace.span_count tracer > 0)

let () =
  Alcotest.run "tfapprox_obs"
    [
      ( "json",
        [
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "floats" `Quick test_json_floats;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "snapshot diff" `Quick test_metrics_snapshot_diff;
          Alcotest.test_case "json round trip" `Quick
            test_metrics_json_round_trip;
          Alcotest.test_case "prometheus" `Quick test_metrics_prometheus;
          Alcotest.test_case "reset" `Quick test_metrics_reset;
        ] );
      ( "histograms",
        [
          Alcotest.test_case "bucket geometry" `Quick test_hist_bucket_geometry;
          Alcotest.test_case "observe and quantiles" `Quick
            test_hist_observe_and_quantiles;
          Alcotest.test_case "snapshot and diff" `Quick
            test_hist_snapshot_and_diff;
          Alcotest.test_case "merge" `Quick test_hist_merge;
          Alcotest.test_case "prometheus collision dedupe" `Quick
            test_prometheus_collision_dedupe;
          Alcotest.test_case "prometheus histogram render" `Quick
            test_prometheus_histogram_render;
          Alcotest.test_case "json round trip" `Quick test_hist_json_round_trip;
          QCheck_alcotest.to_alcotest ~long:false prop_hist_quantiles;
        ] );
      ( "log",
        [
          Alcotest.test_case "threshold filters" `Quick
            test_log_threshold_filters;
          Alcotest.test_case "configure spec" `Quick test_log_configure_spec;
          Alcotest.test_case "event json" `Quick test_log_event_json;
        ] );
      ( "trace",
        [
          Alcotest.test_case "nesting and order" `Quick
            test_span_nesting_and_order;
          Alcotest.test_case "recorded on raise" `Quick
            test_span_recorded_on_raise;
          Alcotest.test_case "ring eviction" `Quick test_ring_buffer_eviction;
          Alcotest.test_case "chrome export" `Quick
            test_chrome_export_well_formed;
          Alcotest.test_case "tree rendering" `Quick test_tree_rendering;
          Alcotest.test_case "fork, merge and tids" `Quick
            test_fork_merge_and_tids;
        ] );
      ( "phases",
        [
          Alcotest.test_case "partition" `Quick test_phases_partition;
          Alcotest.test_case "json and names" `Quick
            test_phases_json_and_names;
          Alcotest.test_case "gc attribution" `Quick test_phases_gc_attribution;
          Alcotest.test_case "gc json and publish" `Quick
            test_phases_gc_json_and_publish;
        ] );
      ( "profile",
        [
          Alcotest.test_case "nested time partitions" `Quick
            test_profile_nested_time_partitions;
          Alcotest.test_case "negative add_seconds clamped" `Quick
            test_profile_negative_add_seconds_clamped;
          Alcotest.test_case "counters and reset" `Quick
            test_profile_counters_and_reset;
        ] );
      ( "emulator",
        [
          Alcotest.test_case "behavior neutral" `Quick
            test_instrumentation_is_behavior_neutral;
          Alcotest.test_case "spans and counters" `Quick
            test_traced_run_spans_and_counters;
          Alcotest.test_case "texcache publish" `Quick test_texcache_publish;
          Alcotest.test_case "fig2 tracer" `Quick test_fig2_accepts_tracer;
        ] );
    ]
