(* Tests for the gate-level netlist substrate: builder invariants,
   simulators, adders, multiplier generators, hardware cost model and
   Verilog export. *)

module Circuit = Ax_netlist.Circuit
module Gate = Ax_netlist.Gate
module Sim = Ax_netlist.Sim
module Bus = Ax_netlist.Bus
module Adders = Ax_netlist.Adders
module Multipliers = Ax_netlist.Multipliers
module Power = Ax_netlist.Power
module Verilog = Ax_netlist.Verilog
module Opt = Ax_netlist.Opt
module Bdd = Ax_netlist.Bdd

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* --- builder --- *)

let test_structural_hashing () =
  let c = Circuit.create () in
  let a = Circuit.input c "a" and b = Circuit.input c "b" in
  let x = Circuit.and_ c a b in
  let y = Circuit.and_ c b a in
  check_int "AND(a,b) and AND(b,a) share one node" (Circuit.index x)
    (Circuit.index y);
  let n = Circuit.node_count c in
  let _ = Circuit.and_ c a b in
  check_int "no new node for duplicate gate" n (Circuit.node_count c)

let test_constant_folding () =
  let c = Circuit.create () in
  let a = Circuit.input c "a" in
  let f = Circuit.const c false and t = Circuit.const c true in
  check_int "a AND 0 = 0" (Circuit.index f) (Circuit.index (Circuit.and_ c a f));
  check_int "a AND 1 = a" (Circuit.index a) (Circuit.index (Circuit.and_ c a t));
  check_int "a OR 1 = 1" (Circuit.index t) (Circuit.index (Circuit.or_ c a t));
  check_int "a OR 0 = a" (Circuit.index a) (Circuit.index (Circuit.or_ c a f));
  check_int "a XOR 0 = a" (Circuit.index a) (Circuit.index (Circuit.xor_ c a f));
  check_int "a XOR a = 0" (Circuit.index f) (Circuit.index (Circuit.xor_ c a a));
  check_int "NOT NOT a = a" (Circuit.index a)
    (Circuit.index (Circuit.not_ c (Circuit.not_ c a)))

let test_duplicate_output_rejected () =
  let c = Circuit.create () in
  let a = Circuit.input c "a" in
  Circuit.output c "y" a;
  Alcotest.check_raises "duplicate output label"
    (Invalid_argument "Circuit.output: duplicate label y") (fun () ->
      Circuit.output c "y" a)

let test_levelize () =
  let c = Circuit.create () in
  let a = Circuit.input c "a" and b = Circuit.input c "b" in
  let x = Circuit.xor_ c a b in
  let y = Circuit.and_ c x b in
  let levels = Circuit.levelize c in
  check_int "input level" 0 levels.(Circuit.index a);
  check_int "first gate level" 1 levels.(Circuit.index x);
  check_int "second gate level" 2 levels.(Circuit.index y)

(* --- simulators --- *)

let xor_circuit () =
  let c = Circuit.create () in
  let a = Circuit.input c "a" and b = Circuit.input c "b" in
  Circuit.output c "y" (Circuit.xor_ c a b);
  c

let test_eval_truth_table () =
  let c = xor_circuit () in
  List.iter
    (fun (a, b, want) ->
      let out = Sim.eval c [| a; b |] in
      check_bool (Printf.sprintf "xor %b %b" a b) want out.(0))
    [ (false, false, false); (true, false, true); (false, true, true);
      (true, true, false) ]

let test_eval_wrong_arity () =
  let c = xor_circuit () in
  Alcotest.check_raises "wrong input count"
    (Invalid_argument "Sim.eval: 1 inputs given, circuit has 2") (fun () ->
      ignore (Sim.eval c [| true |]))

let test_eval_words_matches_eval () =
  let c = xor_circuit () in
  (* lanes 0..3 carry the four input combinations *)
  let a = 0b0101L and b = 0b0011L in
  let outs = Sim.eval_words c [| a; b |] in
  check_int "bit-parallel xor" 0b0110
    (Int64.to_int (Int64.logand outs.(0) 0xFL))

let test_eval_unsigned () =
  let c = Circuit.create () in
  let a = Bus.input c "a" 4 and b = Bus.input c "b" 4 in
  let sum, carry = Adders.ripple_carry c a b in
  Bus.output c "s" sum;
  Circuit.output c "cout" carry;
  for x = 0 to 15 do
    for y = 0 to 15 do
      let encoded = x lor (y lsl 4) in
      let got = Sim.eval_unsigned c ~input_bits:[ 4; 4 ] encoded in
      check_int (Printf.sprintf "%d+%d" x y) (x + y) got
    done
  done

(* --- adders --- *)

let test_full_adder_exhaustive () =
  let c = Circuit.create () in
  let a = Circuit.input c "a" and b = Circuit.input c "b" in
  let cin = Circuit.input c "cin" in
  let s, co = Adders.full_adder c a b cin in
  Circuit.output c "s" s;
  Circuit.output c "co" co;
  for v = 0 to 7 do
    let bit k = (v lsr k) land 1 = 1 in
    let out = Sim.eval c [| bit 0; bit 1; bit 2 |] in
    let expect = (v land 1) + ((v lsr 1) land 1) + ((v lsr 2) land 1) in
    check_bool "sum" (expect land 1 = 1) out.(0);
    check_bool "carry" (expect lsr 1 = 1) out.(1)
  done

let test_carry_save_reduce_constants () =
  (* Sum three constant 4-bit rows: 5 + 9 + 14 = 28 = 0b11100. *)
  let c = Circuit.create () in
  let rows = List.map (fun v -> Bus.of_int c ~width:5 v) [ 5; 9; 14 ] in
  let columns = Array.make 5 [] in
  List.iter
    (fun row ->
      Array.iteri (fun k s -> columns.(k) <- s :: columns.(k)) row)
    rows;
  let sum = Adders.carry_save_reduce c ~width:5 columns in
  Bus.output c "s" sum;
  let got = Sim.eval_unsigned c ~input_bits:[] 0 in
  check_int "carry-save constant sum" 28 got

let test_kogge_stone_exhaustive () =
  let c = Circuit.create () in
  let a = Bus.input c "a" 8 and b = Bus.input c "b" 8 in
  let cin = Circuit.input c "cin" in
  let sum, carry = Adders.kogge_stone c ~carry_in:cin a b in
  Bus.output c "s" sum;
  Circuit.output c "cout" carry;
  for x = 0 to 255 do
    for y = 0 to 255 do
      for ci = 0 to 1 do
        let encoded = x lor (y lsl 8) lor (ci lsl 16) in
        let got = Sim.eval_unsigned c ~input_bits:[ 8; 8; 1 ] encoded in
        if got <> x + y + ci then
          Alcotest.failf "KS %d+%d+%d: got %d" x y ci got
      done
    done
  done

let test_kogge_stone_shallower_than_ripple () =
  (* The point of the parallel prefix: logarithmic logic depth.  The
     unit-delay model must see it. *)
  let delay_of build =
    let c = Circuit.create () in
    let a = Bus.input c "a" 16 and b = Bus.input c "b" 16 in
    let sum, carry = build c a b in
    Bus.output c "s" sum;
    Circuit.output c "cout" carry;
    (Power.analyze c).Power.delay
  in
  let ripple = delay_of (fun c a b -> Adders.ripple_carry c a b) in
  let ks = delay_of (fun c a b -> Adders.kogge_stone c a b) in
  check_bool
    (Printf.sprintf "KS (%.1f) much shallower than ripple (%.1f)" ks ripple)
    true
    (ks < 0.6 *. ripple)

let test_lower_or_adder () =
  (* Gate-level LOA vs the behavioural accumulator model, exhaustive on
     8-bit operands. *)
  let approx_bits = 3 in
  let c = Circuit.create () in
  let a = Bus.input c "a" 8 and b = Bus.input c "b" 8 in
  let sum, _carry = Adders.lower_or c ~approx_bits a b in
  Bus.output c "s" sum;
  let module Acc = Ax_nn.Accumulator in
  let model = Acc.Lower_or { width = 8; approx_low = approx_bits } in
  for x = 0 to 255 do
    for y = 0 to 255 do
      let got = Sim.eval_unsigned c ~input_bits:[ 8; 8 ] (x lor (y lsl 8)) in
      (* The accumulator decodes two's complement; re-encode to compare
         raw 8-bit patterns. *)
      let want = Acc.add model x y land 0xff in
      if got <> want then
        Alcotest.failf "LOA %d+%d: netlist %d model %d" x y got want
    done
  done

let test_lower_or_zero_is_exact () =
  let c = Circuit.create () in
  let a = Bus.input c "a" 6 and b = Bus.input c "b" 6 in
  let sum, carry = Adders.lower_or c ~approx_bits:0 a b in
  Bus.output c "s" sum;
  Circuit.output c "cout" carry;
  for x = 0 to 63 do
    for y = 0 to 63 do
      let got = Sim.eval_unsigned c ~input_bits:[ 6; 6 ] (x lor (y lsl 6)) in
      check_int (Printf.sprintf "%d+%d" x y) (x + y) got
    done
  done

let test_lower_or_cheaper_than_exact () =
  let cost approx_bits =
    let c = Circuit.create () in
    let a = Bus.input c "a" 8 and b = Bus.input c "b" 8 in
    let sum, _ = Adders.lower_or c ~approx_bits a b in
    Bus.output c "s" sum;
    (Power.analyze c).Power.area
  in
  check_bool "LOA cuts area" true (cost 4 < cost 0)

(* --- multipliers --- *)

let test_unsigned_array_exhaustive () =
  let m = Multipliers.unsigned_array ~bits:8 in
  let f = Multipliers.behavioural m in
  for a = 0 to 255 do
    for b = 0 to 255 do
      if f a b <> a * b then
        Alcotest.failf "mul8u %d*%d: got %d want %d" a b (f a b) (a * b)
    done
  done

let test_baugh_wooley_exhaustive () =
  let m = Multipliers.baugh_wooley_signed ~bits:8 in
  let f = Multipliers.behavioural m in
  let to_signed8 v = if v >= 128 then v - 256 else v in
  let to_signed16 v = if v >= 32768 then v - 65536 else v in
  for a = 0 to 255 do
    for b = 0 to 255 do
      let want = to_signed8 a * to_signed8 b in
      let got = to_signed16 (f a b) in
      if got <> want then
        Alcotest.failf "mul8s %d*%d: got %d want %d" (to_signed8 a)
          (to_signed8 b) got want
    done
  done

let test_truncated_properties () =
  let cut = 8 in
  let m = Multipliers.truncated ~bits:8 ~cut in
  let f = Multipliers.behavioural m in
  (* Truncation only ever under-estimates, by less than the sum of all
     dropped partial products. *)
  for a = 0 to 255 do
    for b = 0 to 255 do
      let dropped = ref 0 in
      for i = 0 to 7 do
        for j = 0 to 7 do
          if i + j < cut then
            dropped :=
              !dropped + (((a lsr i) land 1) * ((b lsr j) land 1) lsl (i + j))
        done
      done;
      let want = (a * b) - !dropped in
      if f a b <> want then
        Alcotest.failf "trunc %d*%d: got %d want %d" a b (f a b) want
    done
  done

let test_truncated_cut0_is_exact () =
  let m = Multipliers.truncated ~bits:8 ~cut:0 in
  let f = Multipliers.behavioural m in
  for a = 0 to 255 do
    let b = (a * 37) land 255 in
    check_int "cut=0 exact" (a * b) (f a b)
  done

let test_broken_array_zero_breaks_is_exact () =
  let m = Multipliers.broken_array ~bits:8 ~hbl:0 ~vbl:0 in
  let f = Multipliers.behavioural m in
  for a = 0 to 255 do
    let b = (a * 91 + 13) land 255 in
    check_int "bam(0,0) exact" (a * b) (f a b)
  done

let test_broken_array_smaller_area () =
  let exact = Multipliers.unsigned_array ~bits:8 in
  let bam = Multipliers.broken_array ~bits:8 ~hbl:2 ~vbl:6 in
  let ra = (Power.analyze exact.Multipliers.circuit).Power.area in
  let rb = (Power.analyze bam.Multipliers.circuit).Power.area in
  check_bool "pruning reduces area" true (rb < ra)

let test_bad_parameters_rejected () =
  Alcotest.check_raises "cut range"
    (Invalid_argument "Multipliers.truncated: cut out of range") (fun () ->
      ignore (Multipliers.truncated ~bits:8 ~cut:17));
  Alcotest.check_raises "hbl range"
    (Invalid_argument "Multipliers.broken_array: hbl out of range") (fun () ->
      ignore (Multipliers.broken_array ~bits:8 ~hbl:9 ~vbl:0))

(* --- power model --- *)

let test_power_report_sane () =
  let m = Multipliers.unsigned_array ~bits:4 in
  let r = Power.analyze m.Multipliers.circuit in
  check_bool "positive area" true (r.Power.area > 0.);
  check_bool "positive delay" true (r.Power.delay > 0.);
  check_bool "positive power" true (r.Power.power > 0.);
  check_bool "gates counted" true (r.Power.gates > 0);
  check_bool "pdp consistent" true
    (abs_float (r.Power.pdp -. (r.Power.power *. r.Power.delay)) < 1e-9)

let test_signal_probabilities () =
  let c = Circuit.create () in
  let a = Circuit.input c "a" and b = Circuit.input c "b" in
  let y = Circuit.and_ c a b in
  let n = Circuit.nor_ c a b in
  let p = Power.signal_probabilities c in
  Alcotest.(check (float 1e-9)) "p(and)" 0.25 p.(Circuit.index y);
  Alcotest.(check (float 1e-9)) "p(nor)" 0.25 p.(Circuit.index n)

let test_delay_monotone_in_depth () =
  let shallow = Multipliers.unsigned_array ~bits:4 in
  let deep = Multipliers.unsigned_array ~bits:8 in
  let rs = Power.analyze shallow.Multipliers.circuit in
  let rd = Power.analyze deep.Multipliers.circuit in
  check_bool "wider multiplier is slower" true (rd.Power.delay > rs.Power.delay)

(* --- dead-logic sweep --- *)

let strip_subjects () =
  [
    ("mul8u_exact", Multipliers.unsigned_array ~bits:8);
    ("mul8u_trunc4", Multipliers.truncated ~bits:8 ~cut:4);
    ("mul8u_trunc8", Multipliers.truncated ~bits:8 ~cut:8);
    ("mul8u_bam_h3v8", Multipliers.broken_array ~bits:8 ~hbl:3 ~vbl:8);
    ("mul8s_bw", Multipliers.baugh_wooley_signed ~bits:8);
  ]

(* The contract every explore candidate (and the LUT extraction path)
   leans on: strip_dead keeps primary inputs and registered outputs in
   their original order — downstream code addresses operand bits by
   creation order — and the swept circuit is BDD-equivalent to the
   original, proven per output over all input assignments. *)
let test_strip_dead_interface_and_equivalence () =
  let interface c =
    ( List.map fst (Circuit.inputs c),
      List.map fst (Circuit.outputs c) )
  in
  List.iter
    (fun (name, m) ->
      let c = m.Multipliers.circuit in
      let c' = Opt.strip_dead c in
      check_bool (name ^ ": interface order preserved") true
        (interface c = interface c');
      check_bool (name ^ ": no growth") true
        (Circuit.node_count c' <= Circuit.node_count c);
      check_bool (name ^ ": BDD-equivalent") true (Bdd.equivalent c c');
      check_bool (name ^ ": idempotent") true
        (Circuit.node_count (Opt.strip_dead c') = Circuit.node_count c'))
    (strip_subjects ())

(* Synthetic fixture with a deep dead cone and an input that drives
   only dead logic: the cone goes, the input interface stays intact. *)
let test_strip_dead_fixture () =
  let c = Circuit.create () in
  let a = Circuit.input c "a" in
  let b = Circuit.input c "b" in
  let u = Circuit.input c "u" in
  let live = Circuit.xor_ c a b in
  let dead1 = Circuit.nand_ c live u in
  let dead2 = Circuit.or_ c dead1 u in
  ignore (Circuit.xnor_ c dead2 a);
  Circuit.output c "y" live;
  let c' = Opt.strip_dead c in
  Alcotest.(check (list string))
    "inputs preserved, including the dead-cone-only one" [ "a"; "b"; "u" ]
    (List.map fst (Circuit.inputs c'));
  Alcotest.(check (list string))
    "outputs preserved" [ "y" ]
    (List.map fst (Circuit.outputs c'));
  check_bool "dead cone removed" true
    (Circuit.node_count c' < Circuit.node_count c);
  check_int "only the live gate survives" 1 (Circuit.gate_count c');
  check_bool "function preserved" true (Bdd.equivalent c c')

(* --- power cross-checks --- *)

(* The textbook reconvergent-fanout counterexample: under the analytic
   independence approximation p(x AND NOT x) = 0.25, while the true
   probability is 0.  The exact and Monte-Carlo estimators must both
   get this right — it is the error that motivated replacing the
   analytic default in Power.analyze. *)
let test_power_reconvergent_fanout () =
  let c = Circuit.create () in
  let x = Circuit.input c "x" in
  let nx = Circuit.not_ c x in
  let y = Circuit.and_ c x nx in
  Circuit.output c "y" y;
  let i = Circuit.index y in
  let analytic = Power.signal_probabilities c in
  let exact = Power.exact_signal_probabilities c in
  let mc = Power.monte_carlo_signal_probabilities ~seed:1 ~samples:4096 c in
  Alcotest.(check (float 1e-9)) "analytic foil gets 0.25" 0.25 analytic.(i);
  Alcotest.(check (float 1e-9)) "exact gets 0" 0.0 exact.(i);
  Alcotest.(check (float 1e-9)) "monte-carlo gets 0" 0.0 mc.(i)

(* Monte-Carlo vs exhaustive cross-check over the multiplier generators.
   Tolerance: 16384 Bernoulli samples give a standard error of at most
   0.5/sqrt(16384) ~ 0.004 per node; 0.02 is 5 sigma.  Measured drift
   on these circuits is <= 0.011.  The analytic estimator, by contrast,
   must sit well outside that band somewhere on every multiplier (they
   all reconverge) — pinning both sides keeps the cross-check honest. *)
let test_power_monte_carlo_cross_check () =
  let max_diff a b =
    let d = ref 0. in
    Array.iteri (fun i x -> d := max !d (abs_float (x -. b.(i)))) a;
    !d
  in
  List.iter
    (fun (name, m) ->
      let c = m.Multipliers.circuit in
      let exact = Power.exact_signal_probabilities c in
      let mc =
        Power.monte_carlo_signal_probabilities ~seed:42 ~samples:16384 c
      in
      let analytic = Power.signal_probabilities c in
      check_bool (name ^ ": MC within 0.02 of exact") true
        (max_diff exact mc <= 0.02);
      check_bool (name ^ ": analytic diverges beyond the MC band") true
        (max_diff exact analytic > 0.05))
    (strip_subjects ())

(* The figure of merit the explore scorer ranks candidates by.  Deeper
   truncation must cost strictly less PDP, and the ranking (plus the
   values, within 1%) must be identical whether switching activity
   comes from the exhaustive or the Monte-Carlo estimator. *)
let test_power_pdp_ranking_pinned () =
  let pdp probabilities c = (Power.analyze ~probabilities c).Power.pdp in
  let measure m =
    let c = m.Multipliers.circuit in
    ( pdp (Power.exact_signal_probabilities c) c,
      pdp (Power.monte_carlo_signal_probabilities ~seed:7 ~samples:16384 c) c
    )
  in
  let e_exact, m_exact = measure (Multipliers.unsigned_array ~bits:8) in
  let e_t6, m_t6 = measure (Multipliers.truncated ~bits:8 ~cut:6) in
  let e_t8, m_t8 = measure (Multipliers.truncated ~bits:8 ~cut:8) in
  check_bool "exact > trunc6 > trunc8 (exhaustive)" true
    (e_exact > e_t6 && e_t6 > e_t8);
  check_bool "exact > trunc6 > trunc8 (monte-carlo)" true
    (m_exact > m_t6 && m_t6 > m_t8);
  List.iter
    (fun (e, m) ->
      check_bool "MC PDP within 1% of exhaustive" true
        (abs_float (m -. e) /. e < 0.01))
    [ (e_exact, m_exact); (e_t6, m_t6); (e_t8, m_t8) ]

let test_power_analyze_guards () =
  let m = Multipliers.unsigned_array ~bits:4 in
  Alcotest.check_raises "probability vector length checked"
    (Invalid_argument "Power.analyze: probabilities length <> node count")
    (fun () ->
      ignore (Power.analyze ~probabilities:[| 0.5 |] m.Multipliers.circuit));
  (* The default estimator for a small circuit is the exact one: the
     report must match an explicit exact-probability analysis. *)
  let r = Power.analyze m.Multipliers.circuit in
  let r' =
    Power.analyze
      ~probabilities:(Power.exact_signal_probabilities m.Multipliers.circuit)
      m.Multipliers.circuit
  in
  check_bool "analyze defaults to exact probabilities" true (r = r')

(* --- verilog --- *)

let test_verilog_structure () =
  let m = Multipliers.unsigned_array ~bits:2 in
  let v = Verilog.to_string m.Multipliers.circuit in
  let contains needle =
    let nl = String.length needle and hl = String.length v in
    let rec go i = i + nl <= hl && (String.sub v i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "module header" true (contains "module mul2u_exact(");
  check_bool "declares input a_0" true (contains "input a_0;");
  check_bool "declares output p_3" true (contains "output p_3;");
  check_bool "has assigns" true (contains "assign");
  check_bool "endmodule" true (contains "endmodule")

let test_verilog_simulation_consistency () =
  (* The Verilog text is not executed here, but every output must be
     driven: check each declared output appears on an assign LHS. *)
  let m = Multipliers.truncated ~bits:4 ~cut:3 in
  let v = Verilog.to_string m.Multipliers.circuit in
  List.iter
    (fun (label, _) ->
      let needle = Printf.sprintf "assign %s =" label in
      let nl = String.length needle and hl = String.length v in
      let rec go i =
        i + nl <= hl && (String.sub v i nl = needle || go (i + 1))
      in
      if not (go 0) then Alcotest.failf "output %s is not driven" label)
    (Circuit.outputs m.Multipliers.circuit)

let test_testbench_generation () =
  let m = Multipliers.truncated ~bits:4 ~cut:3 in
  let reference = Multipliers.behavioural m in
  let tb = Verilog.testbench ~vectors:16 ~seed:3 ~reference m in
  let contains needle =
    let nl = String.length needle and hl = String.length tb in
    let rec go i = i + nl <= hl && (String.sub tb i nl = needle || go (i + 1)) in
    go 0
  in
  check_bool "module header" true (contains "module mul4u_trunc3_tb;");
  check_bool "instantiates dut" true (contains "mul4u_trunc3 dut");
  check_bool "pass message" true (contains "PASS: 16 vectors");
  check_bool "self-checking" true (contains "if (p !== expect_v)");
  (* 16 check() calls with correct expected values: spot-check one. *)
  let count_checks = ref 0 in
  String.split_on_char '\n' tb
  |> List.iter (fun line ->
         if String.length line > 9 && String.sub line 4 6 = "check(" then
           incr count_checks);
  check_int "vector count" 16 !count_checks;
  check_bool "deterministic" true
    (tb = Verilog.testbench ~vectors:16 ~seed:3 ~reference m)

(* --- qcheck properties --- *)

let prop_pruned_le_exact =
  QCheck.Test.make ~name:"pruned array multiplier never exceeds exact"
    ~count:200
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let m = Multipliers.truncated ~bits:8 ~cut:6 in
      let f = Multipliers.behavioural m in
      f a b <= a * b)

let prop_mul_commutative_exact =
  QCheck.Test.make ~name:"exact netlist multiplier is commutative" ~count:200
    QCheck.(pair (int_bound 255) (int_bound 255))
    (fun (a, b) ->
      let m = Multipliers.unsigned_array ~bits:8 in
      let f = Multipliers.behavioural m in
      f a b = f b a)

let () =
  let qsuite = List.map QCheck_alcotest.to_alcotest
      [ prop_pruned_le_exact; prop_mul_commutative_exact ]
  in
  Alcotest.run "ax_netlist"
    [
      ( "circuit",
        [
          Alcotest.test_case "structural hashing" `Quick
            test_structural_hashing;
          Alcotest.test_case "constant folding" `Quick test_constant_folding;
          Alcotest.test_case "duplicate output rejected" `Quick
            test_duplicate_output_rejected;
          Alcotest.test_case "levelize" `Quick test_levelize;
        ] );
      ( "sim",
        [
          Alcotest.test_case "eval truth table" `Quick test_eval_truth_table;
          Alcotest.test_case "eval wrong arity" `Quick test_eval_wrong_arity;
          Alcotest.test_case "eval_words matches eval" `Quick
            test_eval_words_matches_eval;
          Alcotest.test_case "eval_unsigned adder" `Quick test_eval_unsigned;
        ] );
      ( "adders",
        [
          Alcotest.test_case "full adder exhaustive" `Quick
            test_full_adder_exhaustive;
          Alcotest.test_case "carry-save constants" `Quick
            test_carry_save_reduce_constants;
          Alcotest.test_case "kogge-stone exhaustive" `Slow
            test_kogge_stone_exhaustive;
          Alcotest.test_case "kogge-stone depth" `Quick
            test_kogge_stone_shallower_than_ripple;
          Alcotest.test_case "lower-or adder exhaustive" `Slow
            test_lower_or_adder;
          Alcotest.test_case "lower-or with 0 approx bits" `Quick
            test_lower_or_zero_is_exact;
          Alcotest.test_case "lower-or cuts area" `Quick
            test_lower_or_cheaper_than_exact;
        ] );
      ( "multipliers",
        [
          Alcotest.test_case "mul8u exhaustive" `Slow
            test_unsigned_array_exhaustive;
          Alcotest.test_case "mul8s Baugh-Wooley exhaustive" `Slow
            test_baugh_wooley_exhaustive;
          Alcotest.test_case "truncation error model" `Slow
            test_truncated_properties;
          Alcotest.test_case "cut=0 is exact" `Quick
            test_truncated_cut0_is_exact;
          Alcotest.test_case "bam(0,0) is exact" `Quick
            test_broken_array_zero_breaks_is_exact;
          Alcotest.test_case "bam reduces area" `Quick
            test_broken_array_smaller_area;
          Alcotest.test_case "bad parameters rejected" `Quick
            test_bad_parameters_rejected;
        ] );
      ( "power",
        [
          Alcotest.test_case "report sane" `Quick test_power_report_sane;
          Alcotest.test_case "signal probabilities" `Quick
            test_signal_probabilities;
          Alcotest.test_case "delay monotone in width" `Quick
            test_delay_monotone_in_depth;
          Alcotest.test_case "reconvergent fanout" `Quick
            test_power_reconvergent_fanout;
          Alcotest.test_case "monte-carlo cross-check" `Slow
            test_power_monte_carlo_cross_check;
          Alcotest.test_case "pdp ranking pinned" `Slow
            test_power_pdp_ranking_pinned;
          Alcotest.test_case "analyze guards" `Quick
            test_power_analyze_guards;
        ] );
      ( "opt",
        [
          Alcotest.test_case "strip_dead interface & equivalence" `Slow
            test_strip_dead_interface_and_equivalence;
          Alcotest.test_case "strip_dead dead-cone fixture" `Quick
            test_strip_dead_fixture;
        ] );
      ( "verilog",
        [
          Alcotest.test_case "structure" `Quick test_verilog_structure;
          Alcotest.test_case "outputs driven" `Quick
            test_verilog_simulation_consistency;
          Alcotest.test_case "testbench generation" `Quick
            test_testbench_generation;
        ] );
      ("properties", qsuite);
    ]
