(** Synthetic CIFAR-10-like data.

    The paper evaluates on the real CIFAR-10 test set (10 000 images of
    32x32x3, processed as 10 batches of 1000); the dataset is not
    shipped in this container, and only the tensor geometry, value range
    and batch structure affect the emulator, so this module generates a
    deterministic stand-in: each of the 10 classes is a distinct
    low-frequency pattern plus per-image phase jitter and pixel noise,
    values in [0, 1].  Labels are the generating class, which gives the
    accuracy examples a non-trivial (if synthetic) classification
    problem. *)

type t = Dataset.t = { images : Ax_tensor.Tensor.t; labels : int array }

val classes : int
(** 10 *)

val height : int
val width : int
val channels : int

val image_bytes : int
(** Size of one image in float32 bytes (for transfer-cost modelling). *)

val generate : ?seed:int -> n:int -> unit -> t
(** [n] images with labels cycling through the classes.  [n = 0] yields
    an empty dataset (empty-batch plumbing is exercisable end to end);
    negative [n] raises [Invalid_argument]. *)

val batches : ?seed:int -> total:int -> batch_size:int -> unit -> t list
(** The paper's evaluation layout ([total = 10_000],
    [batch_size = 1000]); the last batch may be smaller when
    [batch_size] does not divide [total]. *)

val normalize : t -> t
(** Standard training preprocessing: pixels mapped from [0, 1] to
    zero-mean unit-ish scale, [(v - 0.5) / 0.25].  Inference-only
    experiments use raw pixels (any affine preprocessing is absorbed by
    the quantization ranges anyway); gradient-based training needs the
    centred version to be well-conditioned. *)
