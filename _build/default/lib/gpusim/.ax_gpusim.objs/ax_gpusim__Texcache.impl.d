lib/gpusim/texcache.ml: Array Device
