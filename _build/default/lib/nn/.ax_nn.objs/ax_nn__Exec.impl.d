lib/nn/exec.ml: Array Ax_quant Ax_tensor Axconv Conv_direct Conv_float Depthwise Graph Layers List Printf Profile
