lib/nn/im2col.ml: Array Ax_arith Ax_quant Ax_tensor Bigarray Bytes Char Conv_spec
