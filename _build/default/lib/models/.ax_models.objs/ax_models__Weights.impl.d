lib/models/weights.ml: Array Ax_nn Ax_tensor Char String
