(** Unit-gate hardware cost model.

    Area is reported in transistor-count equivalents of standard static
    CMOS cells, delay as a unit-delay critical path weighted by per-gate
    logical effort, and dynamic power as the sum over gates of switching
    activity times input capacitance, under the standard zero-delay /
    spatial-independence signal-probability model with uniform random
    primary inputs.  These are relative figures of merit for comparing
    approximate-circuit candidates, not absolute silicon numbers — which
    is also how the approximate-computing literature uses them. *)

type report = {
  area : float;       (** transistor-equivalent area *)
  delay : float;      (** critical path, unit-delay-per-effort *)
  power : float;      (** relative dynamic (switching) power *)
  gates : int;        (** combinational gate count *)
  pdp : float;        (** power-delay product *)
}

val area_of_gate : Gate.t -> float
val delay_of_gate : Gate.t -> float

val signal_probabilities : Circuit.t -> float array
(** Probability of each node being logic-1 under independent uniform
    inputs, by closed-form propagation (independence approximation:
    {e wrong} at reconvergent fan-out — e.g. [x AND (NOT x)] propagates
    to 0.25 instead of 0).  Kept as the cheap width-independent
    estimator and as the documented foil the formal tests measure. *)

val exact_inputs_limit : int
(** [20] — the widest circuit {!exact_signal_probabilities} accepts
    (2{^20} patterns, 16 384 bit-parallel sweeps). *)

val exact_signal_probabilities : Circuit.t -> float array
(** Exact per-node signal probabilities by exhaustive bit-parallel
    simulation of all [2^inputs] patterns.  No independence
    approximation; this is what {!analyze} uses for circuits of at most
    {!exact_inputs_limit} inputs.  Raises [Invalid_argument] on wider
    circuits. *)

val monte_carlo_signal_probabilities :
  seed:int -> samples:int -> Circuit.t -> float array
(** Per-node probabilities estimated from [samples] seeded uniform
    random vectors through the bit-parallel simulator (rounded up to a
    multiple of 64) — the independent cross-check the switching-activity
    tests compare {!exact_signal_probabilities} and
    {!signal_probabilities} against.  Deterministic per [seed]. *)

val analyze : ?probabilities:float array -> Circuit.t -> report
(** Cost report.  Switching activity is computed from per-node signal
    probabilities: by default {!exact_signal_probabilities} when the
    circuit has at most {!exact_inputs_limit} inputs (so the power and
    PDP figures the explore scorer ranks by are free of the
    reconvergent-fanout error), else {!signal_probabilities}.
    [probabilities] overrides the estimate (length-checked). *)

val pp_report : Format.formatter -> report -> unit
