(* Formal-verification substrate: BDDs (construction, operations,
   model counting), circuit equivalence checking, the dead-logic
   stripping pass, and the multiplier design-space search. *)

module Circuit = Ax_netlist.Circuit
module Bdd = Ax_netlist.Bdd
module Opt = Ax_netlist.Opt
module Multipliers = Ax_netlist.Multipliers
module Power = Ax_netlist.Power
module Bus = Ax_netlist.Bus
module Adders = Ax_netlist.Adders
module Sim = Ax_netlist.Sim
module Search = Ax_arith.Search
module Metrics = Ax_arith.Error_metrics
module Truncation = Ax_arith.Truncation

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* --- bdd core --- *)

let test_bdd_terminals_and_vars () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  check_bool "x /= y" true (x <> y);
  check_int "var is canonical" x (Bdd.var m 0);
  check_bool "x and 0" true (Bdd.and_ m x Bdd.zero = Bdd.zero);
  check_bool "x or 1" true (Bdd.or_ m x Bdd.one = Bdd.one);
  check_bool "x xor x" true (Bdd.xor_ m x x = Bdd.zero);
  check_bool "not not x" true (Bdd.not_ m (Bdd.not_ m x) = x);
  check_bool "demorgan" true
    (Bdd.not_ m (Bdd.and_ m x y)
    = Bdd.or_ m (Bdd.not_ m x) (Bdd.not_ m y))

let test_bdd_canonicity_xor () =
  (* Two structurally different constructions of the same function must
     produce the same node. *)
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 in
  let direct = Bdd.xor_ m x y in
  let expanded =
    Bdd.or_ m
      (Bdd.and_ m x (Bdd.not_ m y))
      (Bdd.and_ m (Bdd.not_ m x) y)
  in
  check_int "canonical xor" direct expanded

let test_bdd_satisfy_count () =
  let m = Bdd.manager () in
  let x = Bdd.var m 0 and y = Bdd.var m 1 and z = Bdd.var m 2 in
  check_float "count(x) over 3 vars" 4. (Bdd.satisfy_count m ~vars:3 x);
  check_float "count(x and y)" 2.
    (Bdd.satisfy_count m ~vars:3 (Bdd.and_ m x y));
  check_float "count(x or y or z)" 7.
    (Bdd.satisfy_count m ~vars:3 (Bdd.or_ m x (Bdd.or_ m y z)));
  check_float "count(1)" 8. (Bdd.satisfy_count m ~vars:3 Bdd.one);
  check_float "count(0)" 0. (Bdd.satisfy_count m ~vars:3 Bdd.zero);
  check_float "probability" 0.25
    (Bdd.probability_one m ~vars:3 (Bdd.and_ m x y))

let test_bdd_probability_matches_exhaustive () =
  (* Exact signal probability of a full adder's carry: 4/8. *)
  let c = Circuit.create () in
  let a = Circuit.input c "a" and b = Circuit.input c "b" in
  let cin = Circuit.input c "cin" in
  let _, carry = Adders.full_adder c a b cin in
  Circuit.output c "carry" carry;
  let m = Bdd.manager () in
  let outs = Bdd.of_circuit m c in
  check_float "P(carry)" 0.5
    (Bdd.probability_one m ~vars:3 (List.assoc "carry" outs))

let test_bdd_exposes_independence_approximation_error () =
  (* Power.signal_probabilities assumes independent fan-ins; at a
     reconvergent node (x AND x built via two paths) the approximation
     errs while the BDD is exact.  y = (x OR x') AND x where x' = NOT
     NOT x would be folded by the builder, so use y = (a AND b) OR
     (a AND NOT b) = a: approximation gives 0.25+0.25=0.4375, exact 0.5. *)
  let c = Circuit.create () in
  let a = Circuit.input c "a" and b = Circuit.input c "b" in
  let left = Circuit.and_ c a b in
  let right = Circuit.and_ c a (Circuit.not_ c b) in
  let y = Circuit.or_ c left right in
  Circuit.output c "y" y;
  let approx = (Power.signal_probabilities c).(Circuit.index y) in
  let m = Bdd.manager () in
  let exact =
    Bdd.probability_one m ~vars:2 (List.assoc "y" (Bdd.of_circuit m c))
  in
  check_float "exact is 1/2" 0.5 exact;
  check_bool "approximation differs at reconvergence" true
    (abs_float (approx -. exact) > 0.05)

(* --- equivalence checking --- *)

let ripple_adder_circuit ~name ~bits =
  let c = Circuit.create ~name () in
  let a = Bus.input c "a" bits and b = Bus.input c "b" bits in
  let sum, carry = Adders.ripple_carry c a b in
  Bus.output c "s" sum;
  Circuit.output c "cout" carry;
  c

let test_equivalent_same_structure () =
  let a = ripple_adder_circuit ~name:"a" ~bits:4 in
  let b = ripple_adder_circuit ~name:"b" ~bits:4 in
  check_bool "identical adders" true (Bdd.equivalent a b)

let test_equivalent_detects_difference () =
  let a = ripple_adder_circuit ~name:"a" ~bits:4 in
  (* An adder whose carry-in is stuck at 1 differs. *)
  let c = Circuit.create ~name:"b" () in
  let x = Bus.input c "a" 4 and y = Bus.input c "b" 4 in
  let sum, carry = Adders.ripple_carry c ~carry_in:(Circuit.const c true) x y in
  Bus.output c "s" sum;
  Circuit.output c "cout" carry;
  check_bool "stuck carry detected" false (Bdd.equivalent a c)

let test_equivalent_multipliers () =
  (* The 4-bit exact multiplier equals itself and differs from the
     truncated one — checked formally, not by simulation. *)
  let exact1 = Multipliers.unsigned_array ~bits:4 in
  let exact2 = Multipliers.unsigned_array ~bits:4 in
  check_bool "exact = exact" true
    (Bdd.equivalent exact1.Multipliers.circuit exact2.Multipliers.circuit);
  let trunc = Multipliers.truncated ~bits:4 ~cut:3 in
  (* Same interface labels (a_i, b_i, p_i), different function. *)
  check_bool "exact /= truncated" false
    (Bdd.equivalent exact1.Multipliers.circuit trunc.Multipliers.circuit)

let test_equivalent_validates_interfaces () =
  let a = ripple_adder_circuit ~name:"a" ~bits:4 in
  let b = ripple_adder_circuit ~name:"b" ~bits:5 in
  Alcotest.check_raises "input mismatch"
    (Invalid_argument "Bdd.equivalent: input counts differ") (fun () ->
      ignore (Bdd.equivalent a b))

let test_bdd_full_8x8_multiplier_output_bit () =
  (* Build the BDD of the 8x8 multiplier (the classically BDD-hard
     function) and validate one output bit against simulation. *)
  let m8 = Multipliers.unsigned_array ~bits:8 in
  let mgr = Bdd.manager () in
  let outs = Bdd.of_circuit mgr m8.Multipliers.circuit in
  (* P(p_15 = 1) from the BDD must match the exhaustive count. *)
  let exact_count = ref 0 in
  for a = 0 to 255 do
    for b = 0 to 255 do
      if (a * b) lsr 15 land 1 = 1 then incr exact_count
    done
  done;
  let bdd_count =
    Bdd.satisfy_count mgr ~vars:16 (List.assoc "p_15" outs)
  in
  check_float "p_15 model count" (float_of_int !exact_count) bdd_count

(* --- strip_dead --- *)

let test_strip_dead_removes_unused_logic () =
  let c = Circuit.create ~name:"waste" () in
  let a = Circuit.input c "a" and b = Circuit.input c "b" in
  let used = Circuit.and_ c a b in
  (* Unused cone. *)
  let t1 = Circuit.xor_ c a b in
  let _t2 = Circuit.or_ c t1 (Circuit.not_ c a) in
  Circuit.output c "y" used;
  let stripped, stats = Opt.strip_dead_with_stats c in
  check_bool "nodes removed" true
    (stats.Opt.nodes_after < stats.Opt.nodes_before);
  check_int "gates after" 1 (Circuit.gate_count stripped);
  check_int "inputs preserved" 2 (Circuit.input_count stripped);
  check_bool "functionally equal" true (Bdd.equivalent c stripped)

let test_strip_dead_multiplier_and_idempotence () =
  (* Generators pre-strip the discarded final carry-out cone, so a
     second strip is the identity. *)
  let m = Multipliers.unsigned_array ~bits:4 in
  let stripped, stats = Opt.strip_dead_with_stats m.Multipliers.circuit in
  check_int "generators pre-strip" stats.Opt.nodes_before
    stats.Opt.nodes_after;
  check_bool "equivalent" true
    (Bdd.equivalent m.Multipliers.circuit stripped)

let test_strip_dead_after_pruning () =
  (* Pruning partial products can orphan compression-tree logic only if
     built carelessly; our generator never emits it, so stripping is a
     no-op — but the stripped circuit must stay equivalent regardless. *)
  let m = Multipliers.broken_array ~bits:6 ~hbl:2 ~vbl:4 in
  let stripped = Opt.strip_dead m.Multipliers.circuit in
  check_bool "still the same function" true
    (Bdd.equivalent m.Multipliers.circuit stripped);
  (* And simulation agrees with the original behavioural model. *)
  let f = Sim.truth_table_2x stripped ~width_a:6 ~width_b:6 in
  let reference = Truncation.broken_array ~bits:6 ~hbl:2 ~vbl:4 in
  for a = 0 to 63 do
    for b = 0 to 63 do
      if f a b <> reference a b then
        Alcotest.failf "stripped bam differs at %d*%d" a b
    done
  done

(* --- design-space search --- *)

let test_full_mask_is_exact () =
  let c = Search.evaluate (Search.full_mask ()) in
  check_bool "exact" true (Metrics.is_exact c.Search.metrics);
  check_int "64 products" 64 c.Search.kept

let test_truncation_mask_matches_truncation () =
  let mask = Search.truncation_mask ~cut:6 in
  let f = Search.multiply_of_mask mask in
  let reference = Truncation.truncated ~bits:8 ~cut:6 in
  for a = 0 to 255 do
    let b = (a * 59 + 3) land 255 in
    check_int "mask = truncation" (reference a b) (f a b)
  done

let test_greedy_prune_trajectory () =
  let trajectory = Search.greedy_prune ~max_mae:500. () in
  check_bool "starts exact" true
    (Metrics.is_exact (List.hd trajectory).Search.metrics);
  check_bool "several steps" true (List.length trajectory > 5);
  (* MAE non-decreasing, area non-increasing along the trajectory. *)
  let rec walk = function
    | a :: (b :: _ as rest) ->
      check_bool "mae grows" true
        (b.Search.metrics.Metrics.mae >= a.Search.metrics.Metrics.mae);
      check_bool "area shrinks" true (b.Search.area_proxy < a.Search.area_proxy);
      walk rest
    | [ _ ] | [] -> ()
  in
  walk trajectory;
  check_bool "respects max_mae" true
    (List.for_all
       (fun c -> c.Search.metrics.Metrics.mae <= 500.)
       trajectory)

let test_greedy_beats_or_matches_truncation () =
  (* At equal kept-product count, greedy pruning (which always drops the
     lightest product) must be at least as accurate as plain truncation. *)
  let trajectory = Search.greedy_prune ~max_mae:2000. () in
  List.iter
    (fun cut ->
      let trunc = Search.evaluate (Search.truncation_mask ~cut) in
      match
        List.find_opt (fun c -> c.Search.kept = trunc.Search.kept) trajectory
      with
      | Some greedy ->
        check_bool
          (Printf.sprintf "cut=%d: greedy %.2f <= trunc %.2f" cut
             greedy.Search.metrics.Metrics.mae trunc.Search.metrics.Metrics.mae)
          true
          (greedy.Search.metrics.Metrics.mae
           <= trunc.Search.metrics.Metrics.mae +. 1e-9)
      | None -> ())
    [ 4; 6 ]

let test_pareto_front () =
  let candidates =
    Search.random_candidates ~seed:5 ~samples:30 ()
    @ [ Search.evaluate (Search.full_mask ()) ]
  in
  let front = Search.pareto_front candidates in
  check_bool "front not empty" true (List.length front > 0);
  (* No member dominated by any candidate. *)
  List.iter
    (fun f ->
      List.iter
        (fun c ->
          if
            c.Search.metrics.Metrics.mae < f.Search.metrics.Metrics.mae
            && c.Search.area_proxy < f.Search.area_proxy
          then Alcotest.fail "dominated member on front")
        candidates)
    front;
  (* Exact multiplier (mae 0) is always on the front. *)
  check_bool "exact on front" true
    (List.exists (fun c -> Metrics.is_exact c.Search.metrics) front)

let test_searched_candidate_netlist_consistent () =
  let trajectory = Search.greedy_prune ~max_mae:100. () in
  let last = List.nth trajectory (List.length trajectory - 1) in
  let netlist = Search.netlist_of last in
  let gate_fn = Multipliers.behavioural netlist in
  let model = Search.multiply_of_mask last.Search.mask in
  for a = 0 to 255 do
    let b = (a * 17 + 11) land 255 in
    check_int "netlist = mask model" (model a b) (gate_fn a b)
  done;
  let report = Search.hardware_of last in
  let exact_report =
    Power.analyze (Multipliers.unsigned_array ~bits:8).Multipliers.circuit
  in
  check_bool "pruned candidate is smaller" true
    (report.Power.area < exact_report.Power.area)

let () =
  Alcotest.run "ax_formal"
    [
      ( "bdd",
        [
          Alcotest.test_case "terminals and vars" `Quick
            test_bdd_terminals_and_vars;
          Alcotest.test_case "canonicity" `Quick test_bdd_canonicity_xor;
          Alcotest.test_case "model counting" `Quick test_bdd_satisfy_count;
          Alcotest.test_case "probability vs exhaustive" `Quick
            test_bdd_probability_matches_exhaustive;
          Alcotest.test_case "independence approximation error" `Quick
            test_bdd_exposes_independence_approximation_error;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "same structure" `Quick
            test_equivalent_same_structure;
          Alcotest.test_case "detects difference" `Quick
            test_equivalent_detects_difference;
          Alcotest.test_case "multipliers" `Quick test_equivalent_multipliers;
          Alcotest.test_case "validates interfaces" `Quick
            test_equivalent_validates_interfaces;
          Alcotest.test_case "8x8 multiplier bit (model count)" `Slow
            test_bdd_full_8x8_multiplier_output_bit;
        ] );
      ( "opt",
        [
          Alcotest.test_case "removes unused logic" `Quick
            test_strip_dead_removes_unused_logic;
          Alcotest.test_case "multiplier + idempotence" `Quick
            test_strip_dead_multiplier_and_idempotence;
          Alcotest.test_case "after pruning" `Quick test_strip_dead_after_pruning;
        ] );
      ( "search",
        [
          Alcotest.test_case "full mask exact" `Quick test_full_mask_is_exact;
          Alcotest.test_case "truncation mask" `Quick
            test_truncation_mask_matches_truncation;
          Alcotest.test_case "greedy trajectory" `Slow
            test_greedy_prune_trajectory;
          Alcotest.test_case "greedy >= truncation" `Slow
            test_greedy_beats_or_matches_truncation;
          Alcotest.test_case "pareto front" `Slow test_pareto_front;
          Alcotest.test_case "finalist netlist consistent" `Slow
            test_searched_candidate_netlist_consistent;
        ] );
    ]
