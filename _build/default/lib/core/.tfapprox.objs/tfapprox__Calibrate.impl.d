lib/core/calibrate.ml: Array Ax_arith Ax_nn Ax_quant Ax_tensor Bigarray List
