test/test_depthwise.ml: Alcotest Array Ax_arith Ax_data Ax_models Ax_nn Ax_quant Ax_tensor List Option Printf Tfapprox
