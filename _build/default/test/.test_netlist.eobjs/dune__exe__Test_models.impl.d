test/test_models.ml: Alcotest Array Ax_data Ax_models Ax_nn Ax_tensor List Printf
