module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Rng = Ax_tensor.Rng

type t = Dataset.t = { images : Tensor.t; labels : int array }

let classes = 10
let height = 32
let width = 32
let channels = 3
let image_bytes = height * width * channels * 4

(* Each class combines a per-channel colour signature (CIFAR classes
   differ strongly in colour statistics, and it keeps the classes
   linearly separable under average pooling) with a class-dependent
   spatial frequency pattern; phase jitter and noise are per-image. *)
let class_pattern ~label ~phase ~h ~w ~c =
  let colour =
    0.14
    *. cos
         ((2. *. Float.pi *. float_of_int label /. 10.)
         +. (2.1 *. float_of_int c))
  in
  let fh = 0.15 +. (0.09 *. float_of_int (label mod 5)) in
  let fw = 0.11 +. (0.07 *. float_of_int (label / 5 * 2)) in
  let chan_shift = 0.8 *. float_of_int c in
  0.5 +. colour
  +. 0.25
     *. sin ((fh *. float_of_int h) +. phase +. chan_shift)
     *. cos ((fw *. float_of_int w) -. (0.5 *. phase))

let generate ?(seed = 7) ~n () =
  if n < 0 then invalid_arg "Cifar.generate: n must be non-negative";
  let images = Tensor.create (Shape.make ~n ~h:height ~w:width ~c:channels) in
  let labels = Array.init n (fun i -> i mod classes) in
  let rng = Rng.create seed in
  for i = 0 to n - 1 do
    let phase = 2. *. Float.pi *. Rng.float rng in
    for h = 0 to height - 1 do
      for w = 0 to width - 1 do
        for c = 0 to channels - 1 do
          let v =
            class_pattern ~label:labels.(i) ~phase ~h ~w ~c
            +. (0.08 *. Rng.gaussian rng)
          in
          let v = Float.max 0. (Float.min 1. v) in
          Tensor.set images ~n:i ~h ~w ~c v
        done
      done
    done
  done;
  { images; labels }

let normalize t =
  {
    t with
    images = Tensor.map (fun v -> (v -. 0.5) /. 0.25) t.images;
  }

let batches ?(seed = 7) ~total ~batch_size () =
  if total <= 0 || batch_size <= 0 then
    invalid_arg "Cifar.batches: non-positive sizes";
  let all = generate ~seed ~n:total () in
  let rec cut start acc =
    if start >= total then List.rev acc
    else begin
      let count = min batch_size (total - start) in
      let piece =
        {
          images = Tensor.slice_batch all.images ~start ~count;
          labels = Array.sub all.labels start count;
        }
      in
      cut (start + count) (piece :: acc)
    end
  in
  cut 0 []
