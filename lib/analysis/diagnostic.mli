(** Shared diagnostics engine of the static-analysis layer.

    Every analyzer (graph verifier, quantization-soundness pass, netlist
    checker) reports findings through one value type: a catalogued rule
    id, a severity, a location (graph node, netlist signal, artefact or
    whole-model) and a human message.  Reports render both as one-line
    human text (the [tfapprox check] output) and as JSON (the [--json]
    machine interface the CI gate consumes). *)

type severity = Info | Warning | Error

type location =
  | Graph_node of { id : int; name : string }
      (** a node of an {!Ax_nn.Graph.t} *)
  | Netlist_signal of { index : int; label : string }
      (** a node/signal of an {!Ax_netlist.Circuit.t}; [label] is the
          circuit name or output label, [""] when unnamed *)
  | Artefact of string  (** an on-disk file (model or LUT) *)
  | Global  (** the whole unit under analysis *)

type t = {
  rule : string;  (** catalogued rule id, e.g. ["ax/wrong-tensor"] *)
  severity : severity;
  location : location;
  message : string;
}

exception Rejected of t list
(** Raised by pre-flight verification ({!Check.assert_runnable}) when
    error-severity findings exist; carries exactly those findings. *)

val make : rule:string -> ?location:location -> string -> t
(** Build one finding at the rule's catalogued severity (default
    location {!Global}).  Raises [Invalid_argument] on a rule id absent
    from {!rules} — the catalogue is closed. *)

val severity_of_rule : string -> severity
(** Catalogued severity; raises [Invalid_argument] on unknown ids. *)

val rules : (string * severity * string) list
(** The closed rule catalogue: id, severity, one-line description —
    the table rendered in README's rule-catalogue section. *)

val severity_to_string : severity -> string
val location_to_string : location -> string

val compare : t -> t -> int
(** Severity-major order (errors first), then rule id, then location —
    the stable order reports are rendered in. *)

(** {1 Reports} *)

val errors : t list -> t list
val warnings : t list -> t list
val has_errors : t list -> bool

val sort : t list -> t list

val pp : Format.formatter -> t -> unit
(** One line: [severity rule location: message]. *)

val pp_report : Format.formatter -> t list -> unit
(** Sorted findings, one per line, then a one-line summary count. *)

val to_json : t list -> Ax_obs.Json.t
(** [{"findings": [...], "errors": n, "warnings": n, "infos": n}]. *)

val to_string : t -> string
