(** NHWC tensor shapes (the layout TensorFlow's Conv2D expects, Sec. III
    of the paper: Batch x Height x Width x Channels, channels
    fastest-varying). *)

type t = { n : int; h : int; w : int; c : int }

val make : n:int -> h:int -> w:int -> c:int -> t
(** Raises [Invalid_argument] on bad extents: [h]/[w]/[c] must be
    positive, [n] non-negative — a zero-image batch is a legal shape
    (the emulator returns an empty output for it), a zero-sized image
    is not. *)

val num_elements : t -> int
val equal : t -> t -> bool
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val offset : t -> n:int -> h:int -> w:int -> c:int -> int
(** Flat row-major NHWC offset; bounds-checked. *)

val unsafe_offset : t -> n:int -> h:int -> w:int -> c:int -> int
(** Unchecked variant for hot loops. *)

val conv_output_dims :
  t -> kh:int -> kw:int -> stride:int -> dilation:int ->
  padding:[ `Same | `Valid ] -> int * int * int * int
(** [(out_h, out_w, pad_top, pad_left)] for a convolution over this
    input shape.  [`Same] pads so that [out = ceil(in / stride)];
    [`Valid] uses no padding.  Raises [Invalid_argument] when the kernel
    does not fit a [`Valid] input. *)
