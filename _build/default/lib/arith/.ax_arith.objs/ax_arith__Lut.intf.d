lib/arith/lut.mli: Bytes Signedness
