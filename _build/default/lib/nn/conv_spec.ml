module Shape = Ax_tensor.Shape

type padding = Same | Valid
type t = { stride : int; dilation : int; padding : padding }

let default = { stride = 1; dilation = 1; padding = Same }

let make ?(stride = 1) ?(dilation = 1) ?(padding = Same) () =
  if stride <= 0 then invalid_arg "Conv_spec.make: stride";
  if dilation <= 0 then invalid_arg "Conv_spec.make: dilation";
  { stride; dilation; padding }

let padding_to_poly = function Same -> `Same | Valid -> `Valid

let output_shape t input filter =
  if Shape.(input.c) <> Filter.in_c filter then
    invalid_arg
      (Printf.sprintf "Conv_spec.output_shape: input has %d channels, filter wants %d"
         Shape.(input.c) (Filter.in_c filter));
  let out_h, out_w, _, _ =
    Shape.conv_output_dims input ~kh:(Filter.kh filter) ~kw:(Filter.kw filter)
      ~stride:t.stride ~dilation:t.dilation
      ~padding:(padding_to_poly t.padding)
  in
  Shape.make ~n:Shape.(input.n) ~h:out_h ~w:out_w ~c:(Filter.out_c filter)

let macs t input filter =
  let out = output_shape t input filter in
  Shape.(out.n) * Shape.(out.h) * Shape.(out.w) * Filter.macs_per_position filter
