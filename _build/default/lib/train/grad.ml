module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Matrix = Ax_tensor.Matrix
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec

let conv_geometry ~spec input filter =
  Shape.conv_output_dims (Tensor.shape input) ~kh:(Filter.kh filter)
    ~kw:(Filter.kw filter) ~stride:spec.Conv_spec.stride
    ~dilation:spec.Conv_spec.dilation
    ~padding:(Conv_spec.padding_to_poly spec.Conv_spec.padding)

(* One fused scatter pass over output positions computes both dX and dW:
   for each in-bounds tap (n, h, w, c) under output (n, oh, ow, k),
     dW[dh,dw,c,k] += X * dY   and   dX += W * dY. *)
let conv_backward ~input ~filter ~spec ~dout =
  let s = Tensor.shape input in
  let out_h, out_w, pad_top, pad_left = conv_geometry ~spec input filter in
  let out_c = Filter.out_c filter in
  let dinput = Tensor.create s in
  let dfilter = Array.make (Filter.num_weights filter) 0. in
  let dbias = Array.make out_c 0. in
  let x = Tensor.buffer input and dx = Tensor.buffer dinput in
  let dy = Tensor.buffer dout in
  let w_data = Filter.raw_data filter in
  let in_c = Shape.(s.c) in
  let row = ref 0 in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to out_h - 1 do
      for ow = 0 to out_w - 1 do
        let dy_base = !row * out_c in
        for k = 0 to out_c - 1 do
          dbias.(k) <- dbias.(k) +. dy.{dy_base + k}
        done;
        let base_h = (oh * spec.Conv_spec.stride) - pad_top in
        let base_w = (ow * spec.Conv_spec.stride) - pad_left in
        for dh = 0 to Filter.kh filter - 1 do
          let h = base_h + (dh * spec.Conv_spec.dilation) in
          if h >= 0 && h < Shape.(s.h) then
            for dw = 0 to Filter.kw filter - 1 do
              let w = base_w + (dw * spec.Conv_spec.dilation) in
              if w >= 0 && w < Shape.(s.w) then begin
                let x_off = Shape.unsafe_offset s ~n ~h ~w ~c:0 in
                for c = 0 to in_c - 1 do
                  let xv = x.{x_off + c} in
                  let w_off =
                    (Filter.tap_index filter ~h:dh ~w:dw ~c) * out_c
                  in
                  let acc = ref 0. in
                  for k = 0 to out_c - 1 do
                    let g = dy.{dy_base + k} in
                    dfilter.(w_off + k) <- dfilter.(w_off + k) +. (xv *. g);
                    acc := !acc +. (w_data.(w_off + k) *. g)
                  done;
                  dx.{x_off + c} <- dx.{x_off + c} +. !acc
                done
              end
            done
        done;
        incr row
      done
    done
  done;
  (dinput, dfilter, dbias)

let depthwise_backward ~input ~filter ~spec ~dout =
  let s = Tensor.shape input in
  let out_h, out_w, pad_top, pad_left = conv_geometry ~spec input filter in
  let mult = Filter.out_c filter in
  let in_c = Shape.(s.c) in
  let out_c_total = in_c * mult in
  let dinput = Tensor.create s in
  let dfilter = Array.make (Filter.num_weights filter) 0. in
  let dbias = Array.make out_c_total 0. in
  let x = Tensor.buffer input and dx = Tensor.buffer dinput in
  let dy = Tensor.buffer dout in
  let w_data = Filter.raw_data filter in
  let row = ref 0 in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to out_h - 1 do
      for ow = 0 to out_w - 1 do
        let dy_base = !row * out_c_total in
        for k = 0 to out_c_total - 1 do
          dbias.(k) <- dbias.(k) +. dy.{dy_base + k}
        done;
        let base_h = (oh * spec.Conv_spec.stride) - pad_top in
        let base_w = (ow * spec.Conv_spec.stride) - pad_left in
        for dh = 0 to Filter.kh filter - 1 do
          let h = base_h + (dh * spec.Conv_spec.dilation) in
          if h >= 0 && h < Shape.(s.h) then
            for dw = 0 to Filter.kw filter - 1 do
              let w = base_w + (dw * spec.Conv_spec.dilation) in
              if w >= 0 && w < Shape.(s.w) then begin
                let x_off = Shape.unsafe_offset s ~n ~h ~w ~c:0 in
                for c = 0 to in_c - 1 do
                  let xv = x.{x_off + c} in
                  let w_off =
                    (Filter.tap_index filter ~h:dh ~w:dw ~c) * mult
                  in
                  let acc = ref 0. in
                  for j = 0 to mult - 1 do
                    let g = dy.{dy_base + (c * mult) + j} in
                    dfilter.(w_off + j) <- dfilter.(w_off + j) +. (xv *. g);
                    acc := !acc +. (w_data.(w_off + j) *. g)
                  done;
                  dx.{x_off + c} <- dx.{x_off + c} +. !acc
                done
              end
            done
        done;
        incr row
      done
    done
  done;
  (dinput, dfilter, dbias)

let dense_backward ~input ~weights ~dout =
  let s = Tensor.shape input in
  let features = Shape.(s.h) * Shape.(s.w) * Shape.(s.c) in
  let classes = weights.Matrix.cols in
  if weights.Matrix.rows <> features then
    invalid_arg "Grad.dense_backward: feature mismatch";
  let dinput = Tensor.create s in
  let dweights = Array.make (features * classes) 0. in
  let dbias = Array.make classes 0. in
  let x = Tensor.buffer input and dx = Tensor.buffer dinput in
  let dy = Tensor.buffer dout in
  for n = 0 to Shape.(s.n) - 1 do
    let x_base = n * features and y_base = n * classes in
    for k = 0 to classes - 1 do
      dbias.(k) <- dbias.(k) +. dy.{y_base + k}
    done;
    for f = 0 to features - 1 do
      let xv = x.{x_base + f} in
      let w_base = f * classes in
      let acc = ref 0. in
      for k = 0 to classes - 1 do
        let g = dy.{y_base + k} in
        dweights.(w_base + k) <- dweights.(w_base + k) +. (xv *. g);
        acc := !acc +. (weights.Matrix.data.(w_base + k) *. g)
      done;
      dx.{x_base + f} <- !acc
    done
  done;
  (dinput, dweights, dbias)

let relu_backward ~output ~dout =
  if not (Shape.equal (Tensor.shape output) (Tensor.shape dout)) then
    invalid_arg "Grad.relu_backward: shape mismatch";
  let dinput = Tensor.copy dout in
  let o = Tensor.buffer output and d = Tensor.buffer dinput in
  for i = 0 to Tensor.num_elements output - 1 do
    if o.{i} <= 0. then d.{i} <- 0.
  done;
  dinput

let batch_norm_backward ~input ~scale ~dout =
  let s = Tensor.shape input in
  let channels = Shape.(s.c) in
  if Array.length scale <> channels then
    invalid_arg "Grad.batch_norm_backward: scale length";
  let dinput = Tensor.create s in
  let dscale = Array.make channels 0. in
  let dshift = Array.make channels 0. in
  let x = Tensor.buffer input and dx = Tensor.buffer dinput in
  let dy = Tensor.buffer dout in
  for i = 0 to Tensor.num_elements input - 1 do
    let c = i mod channels in
    let g = dy.{i} in
    dscale.(c) <- dscale.(c) +. (g *. x.{i});
    dshift.(c) <- dshift.(c) +. g;
    dx.{i} <- g *. scale.(c)
  done;
  (dinput, dscale, dshift)

let max_pool_backward ~input ~size ~stride ~dout =
  let s = Tensor.shape input in
  let out_h = ((Shape.(s.h) - size) / stride) + 1 in
  let out_w = ((Shape.(s.w) - size) / stride) + 1 in
  let dinput = Tensor.create s in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to out_h - 1 do
      for ow = 0 to out_w - 1 do
        for c = 0 to Shape.(s.c) - 1 do
          (* Recompute the arg-max of the window (first max wins). *)
          let best_h = ref (oh * stride) and best_w = ref (ow * stride) in
          let best = ref (Tensor.get input ~n ~h:!best_h ~w:!best_w ~c) in
          for dh = 0 to size - 1 do
            for dw = 0 to size - 1 do
              let h = (oh * stride) + dh and w = (ow * stride) + dw in
              let v = Tensor.get input ~n ~h ~w ~c in
              if v > !best then begin
                best := v;
                best_h := h;
                best_w := w
              end
            done
          done;
          let g = Tensor.get dout ~n ~h:oh ~w:ow ~c in
          Tensor.set dinput ~n ~h:!best_h ~w:!best_w ~c
            (Tensor.get dinput ~n ~h:!best_h ~w:!best_w ~c +. g)
        done
      done
    done
  done;
  dinput

let global_avg_pool_backward ~input_shape ~dout =
  let s = input_shape in
  let dinput = Tensor.create s in
  let cells = float_of_int (Shape.(s.h) * Shape.(s.w)) in
  for n = 0 to Shape.(s.n) - 1 do
    for c = 0 to Shape.(s.c) - 1 do
      let g = Tensor.get dout ~n ~h:0 ~w:0 ~c /. cells in
      for h = 0 to Shape.(s.h) - 1 do
        for w = 0 to Shape.(s.w) - 1 do
          Tensor.set dinput ~n ~h ~w ~c g
        done
      done
    done
  done;
  dinput

let shortcut_pad_backward ~input_shape ~stride ~dout =
  let s = input_shape in
  let dinput = Tensor.create s in
  let ds = Tensor.shape dout in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to Shape.(ds.h) - 1 do
      for ow = 0 to Shape.(ds.w) - 1 do
        for c = 0 to Shape.(s.c) - 1 do
          Tensor.set dinput ~n ~h:(oh * stride) ~w:(ow * stride) ~c
            (Tensor.get dout ~n ~h:oh ~w:ow ~c)
        done
      done
    done
  done;
  dinput

let softmax_backward ~output ~dout =
  let s = Tensor.shape output in
  let channels = Shape.(s.c) in
  let dinput = Tensor.create s in
  let p = Tensor.buffer output and dp = Tensor.buffer dout in
  let dx = Tensor.buffer dinput in
  let positions = Tensor.num_elements output / channels in
  for pos = 0 to positions - 1 do
    let base = pos * channels in
    let dot = ref 0. in
    for c = 0 to channels - 1 do
      dot := !dot +. (dp.{base + c} *. p.{base + c})
    done;
    for c = 0 to channels - 1 do
      dx.{base + c} <- p.{base + c} *. (dp.{base + c} -. !dot)
    done
  done;
  dinput

let softmax_cross_entropy ~probs ~labels =
  let s = Tensor.shape probs in
  if Shape.(s.h) <> 1 || Shape.(s.w) <> 1 then
    invalid_arg "Grad.softmax_cross_entropy: expected Nx1x1xC probs";
  if Array.length labels <> Shape.(s.n) then
    invalid_arg "Grad.softmax_cross_entropy: label count";
  let classes = Shape.(s.c) in
  let batch = Shape.(s.n) in
  let dlogits = Tensor.create s in
  let p = Tensor.buffer probs and d = Tensor.buffer dlogits in
  let loss = ref 0. in
  let inv_n = 1. /. float_of_int batch in
  for n = 0 to batch - 1 do
    let label = labels.(n) in
    if label < 0 || label >= classes then
      invalid_arg "Grad.softmax_cross_entropy: label out of range";
    let base = n * classes in
    loss := !loss -. log (Float.max 1e-12 p.{base + label});
    for c = 0 to classes - 1 do
      let target = if c = label then 1. else 0. in
      d.{base + c} <- (p.{base + c} -. target) *. inv_n
    done
  done;
  (!loss *. inv_n, dlogits)
