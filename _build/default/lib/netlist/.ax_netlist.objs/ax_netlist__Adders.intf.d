lib/netlist/adders.mli: Bus Circuit
