lib/tensor/tensor.ml: Array Bigarray List Printf Rng Shape
