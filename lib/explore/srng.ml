type t = { mutable state : int64 }

let create seed = { state = Int64.logxor (Int64.of_int seed) 0x9E3779B97F4A7C15L }

let next t =
  t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L
  in
  let z =
    Int64.mul
      (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL
  in
  Int64.logxor z (Int64.shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Srng.int: bound must be positive";
  (* Top bit dropped so the value is non-negative on conversion; modulo
     bias is irrelevant for mutation-operator selection. *)
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

let bool t = Int64.logand (next t) 1L = 1L
