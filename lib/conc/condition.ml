(* Checked drop-in for Stdlib.Condition, paired with Ax_conc.Mutex.
   In record mode a wait is modelled as release + reacquire of the
   mutex (which is what it is), keeping the held stack truthful and
   giving the wakeup a happens-before edge through the mutex clock.
   Under exploration the whole operation goes to the scheduler. *)

type t = {
  c : Stdlib.Condition.t;
  id : int;
  name : string;
}

let create ~name () =
  { c = Stdlib.Condition.create (); id = Conc.fresh_id (); name }

let name t = t.name

let wait t (m : Mutex.t) =
  if not (Conc.enabled ()) then Stdlib.Condition.wait t.c (Mutex.real m)
  else
    match Conc.explore_for_me () with
    | Some h ->
      h.Conc.x_wait ~cond:t.id ~cname:t.name ~m:(Mutex.id m)
        ~mname:(Mutex.name m)
    | None ->
      if Conc.tracking () then begin
        (* The reacquire inherits the protection of the original
           acquisition: a with_lock body that waits is still covered. *)
        let protected = Conc.held_protected ~id:(Mutex.id m) in
        Conc.on_release ~id:(Mutex.id m) ~name:(Mutex.name m);
        Stdlib.Condition.wait t.c (Mutex.real m);
        Conc.on_acquire ~id:(Mutex.id m) ~name:(Mutex.name m) ~order:None
          ~protected
      end
      else Stdlib.Condition.wait t.c (Mutex.real m)

let signal t =
  (if Conc.enabled () then
     match Conc.explore_for_me () with
     | Some h -> h.Conc.x_signal ~cond:t.id
     | None -> Stdlib.Condition.signal t.c
   else Stdlib.Condition.signal t.c)

let broadcast t =
  (if Conc.enabled () then
     match Conc.explore_for_me () with
     | Some h -> h.Conc.x_broadcast ~cond:t.id
     | None -> Stdlib.Condition.broadcast t.c
   else Stdlib.Condition.broadcast t.c)
