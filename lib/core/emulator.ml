module Registry = Ax_arith.Registry
module Graph = Ax_nn.Graph
module Exec = Ax_nn.Exec
module Axconv = Ax_nn.Axconv
module Transform = Ax_nn.Transform
module Layers = Ax_nn.Layers

let lut_of_multiplier name = Registry.lut (Registry.find_exn name)

let approximate_model ?multiplier ?lut ?round_mode ?chunk_size g =
  let lut =
    match (multiplier, lut) with
    | Some name, None -> lut_of_multiplier name
    | None, Some lut -> lut
    | Some _, Some _ ->
      invalid_arg "Emulator.approximate_model: both multiplier and lut given"
    | None, None ->
      invalid_arg "Emulator.approximate_model: need a multiplier or a lut"
  in
  let config = Axconv.make_config ?round_mode ?chunk_size lut in
  Transform.approximate ~config g

type backend = Cpu_accurate | Cpu_direct | Cpu_gemm

let strategy_of_backend = function
  | Cpu_accurate | Cpu_gemm -> Exec.Cpu_gemm
  | Cpu_direct -> Exec.Cpu_direct

let backend_name = function
  | Cpu_accurate -> "cpu-accurate"
  | Cpu_direct -> "cpu-direct"
  | Cpu_gemm -> "cpu-gemm"

let run ?profile ~backend g input =
  let strategy = strategy_of_backend backend in
  match profile with
  | None -> Exec.run ~strategy g ~input
  | Some p ->
    let images = Ax_tensor.Shape.((Ax_tensor.Tensor.shape input).n) in
    let start = Unix.gettimeofday () in
    let out =
      Ax_nn.Profile.span p ~name:"emulator.run"
        ~attrs:
          [
            ("backend", backend_name backend);
            ("images", string_of_int images);
          ]
        (fun () -> Exec.run ~profile:p ~strategy g ~input)
    in
    let elapsed = Unix.gettimeofday () -. start in
    if elapsed > 0. then
      Ax_obs.Metrics.set_gauge
        (Ax_nn.Profile.metrics p)
        "images_per_sec"
        (float_of_int images /. elapsed);
    out

let predictions ?profile g ~backend input =
  Layers.argmax_channels (run ?profile ~backend g input)

let accuracy ?profile g ~backend dataset =
  let batch () =
    predictions ?profile g ~backend dataset.Ax_data.Cifar.images
  in
  let preds =
    match profile with
    | Some p ->
      Ax_nn.Profile.span p ~name:"emulator.accuracy"
        ~attrs:
          [
            ( "images",
              string_of_int
                (Array.length dataset.Ax_data.Cifar.labels) );
          ]
        batch
    | None -> batch ()
  in
  let labels = dataset.Ax_data.Cifar.labels in
  if Array.length preds <> Array.length labels then
    invalid_arg "Emulator.accuracy: prediction/label count mismatch";
  let correct = ref 0 in
  Array.iteri (fun i p -> if p = labels.(i) then incr correct) preds;
  float_of_int !correct /. float_of_int (Array.length labels)

let agreement a b =
  if Array.length a <> Array.length b then
    invalid_arg "Emulator.agreement: length mismatch";
  if Array.length a = 0 then invalid_arg "Emulator.agreement: empty";
  let same = ref 0 in
  Array.iteri (fun i p -> if p = b.(i) then incr same) a;
  float_of_int !same /. float_of_int (Array.length a)

let estimate_gpu_time ?(device = Ax_gpusim.Device.gtx_1080)
    ?(lut_hit_rate = 0.9) ~graph ~input ~images () =
  let workloads = Ax_gpusim.Cost.workloads_of_graph graph ~input ~images in
  let dataset_bytes =
    4. *. float_of_int images
    *. float_of_int
         Ax_tensor.Shape.(input.h * input.w * input.c)
  in
  let weight_bytes =
    float_of_int
      (List.fold_left
         (fun acc w -> acc + (w.Ax_gpusim.Cost.filter_elems * 4))
         0 workloads)
  in
  let init =
    Ax_gpusim.Cost.transfer_init device ~dataset_bytes ~weight_bytes
  in
  let ax_chunk =
    List.find_map
      (fun n ->
        match n.Graph.op with
        | Graph.Ax_conv2d { config; _ }
        | Graph.Ax_depthwise_conv2d { config; _ } ->
          Some config.Axconv.chunk_size
        | _ -> None)
      (Array.to_list (Graph.nodes graph))
  in
  let kernels =
    match ax_chunk with
    | Some chunk_size ->
      `Approximate
        (Ax_gpusim.Cost.approx_network device ~lut_hit_rate ~chunk_size
           workloads)
    | None -> `Accurate (Ax_gpusim.Cost.accurate_network device workloads)
  in
  (kernels, init)
