lib/core/version.ml:
