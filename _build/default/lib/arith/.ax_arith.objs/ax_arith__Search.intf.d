lib/arith/search.mli: Ax_netlist Error_metrics
