lib/nn/im2col.mli: Ax_arith Ax_quant Ax_tensor Bytes Conv_spec
