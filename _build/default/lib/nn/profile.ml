type phase = Init | Quantization | Lut | Other

type t = {
  mutable init_s : float;
  mutable quant_s : float;
  mutable lut_s : float;
  mutable other_s : float;
  mutable lookups : int;
  mutable mac_count : int;
  mutable active : phase option;  (* innermost running phase *)
}

let create () =
  {
    init_s = 0.;
    quant_s = 0.;
    lut_s = 0.;
    other_s = 0.;
    lookups = 0;
    mac_count = 0;
    active = None;
  }

let reset t =
  t.init_s <- 0.;
  t.quant_s <- 0.;
  t.lut_s <- 0.;
  t.other_s <- 0.;
  t.lookups <- 0;
  t.mac_count <- 0;
  t.active <- None

let add_seconds t phase s =
  match phase with
  | Init -> t.init_s <- t.init_s +. s
  | Quantization -> t.quant_s <- t.quant_s +. s
  | Lut -> t.lut_s <- t.lut_s +. s
  | Other -> t.other_s <- t.other_s +. s

(* Charging the inner phase and refunding the outer keeps the phase
   totals a partition of real elapsed time. *)
let time t phase f =
  let outer = t.active in
  t.active <- Some phase;
  let start = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      let elapsed = Unix.gettimeofday () -. start in
      add_seconds t phase elapsed;
      (match outer with
      | Some p -> add_seconds t p (-.elapsed)
      | None -> ());
      t.active <- outer)
    f

let count_lut_lookups t n = t.lookups <- t.lookups + n
let count_macs t n = t.mac_count <- t.mac_count + n

let seconds t = function
  | Init -> t.init_s
  | Quantization -> t.quant_s
  | Lut -> t.lut_s
  | Other -> t.other_s

let total_seconds t = t.init_s +. t.quant_s +. t.lut_s +. t.other_s
let lut_lookups t = t.lookups
let macs t = t.mac_count

type breakdown = {
  init_pct : float;
  quantization_pct : float;
  lut_pct : float;
  other_pct : float;
}

let breakdown t =
  let total = total_seconds t in
  if total <= 0. then
    { init_pct = 0.; quantization_pct = 0.; lut_pct = 0.; other_pct = 0. }
  else
    {
      init_pct = 100. *. t.init_s /. total;
      quantization_pct = 100. *. t.quant_s /. total;
      lut_pct = 100. *. t.lut_s /. total;
      other_pct = 100. *. t.other_s /. total;
    }

let pp_breakdown ppf b =
  Format.fprintf ppf "init=%.1f%% quant=%.1f%% lut=%.1f%% other=%.1f%%"
    b.init_pct b.quantization_pct b.lut_pct b.other_pct
