lib/arith/registry.mli: Lut Signedness
