(** Little-endian signal buses (bit 0 first) and word-level helpers used
    by the arithmetic generators. *)

type t = Circuit.signal array
(** [t.(0)] is the least-significant bit. *)

val input : Circuit.t -> string -> int -> t
(** [input c label n] creates [n] primary inputs named [label_0..]. *)

val of_int : Circuit.t -> width:int -> int -> t
(** Constant bus holding the low [width] bits of the integer. *)

val output : Circuit.t -> string -> t -> unit
(** Register every bit as output [label_i]. *)

val width : t -> int

val zero_extend : Circuit.t -> t -> int -> t
(** Pad with constant-0 bits up to the requested width (identity when
    already wide enough). *)

val sign_extend : Circuit.t -> t -> int -> t
(** Replicate the MSB up to the requested width. *)

val slice : t -> lo:int -> hi:int -> t
(** Bits [lo..hi] inclusive; raises [Invalid_argument] on bad range. *)

val concat_lsb_first : t list -> t
(** First list element provides the least-significant bits. *)
