(** Deterministic synthetic parameters.

    The paper evaluates pre-trained CIFAR-10 ResNets but notes the LUT
    content (and hence the weights) does not affect execution time; this
    module provides reproducible He-style weights so every layer's
    numeric ranges look like a trained network's without shipping
    checkpoints.  Each layer derives its own RNG from a global seed and
    the layer name, so adding layers never reshuffles existing ones. *)

val rng_for : seed:int -> name:string -> Ax_tensor.Rng.t

val conv_filter :
  seed:int -> name:string -> kh:int -> kw:int -> in_c:int -> out_c:int ->
  Ax_nn.Filter.t

val dense :
  seed:int -> name:string -> inputs:int -> outputs:int ->
  Ax_tensor.Matrix.t * float array
(** He-initialised weight matrix and zero bias. *)

val batch_norm :
  seed:int -> name:string -> channels:int -> float array * float array
(** Folded (scale, shift): scale around 1, shift around 0, mimicking a
    trained, folded batch-norm layer. *)
