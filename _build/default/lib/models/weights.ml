module Rng = Ax_tensor.Rng
module Matrix = Ax_tensor.Matrix

(* FNV-1a over the layer name, folded into the global seed. *)
let hash_name name =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land 0x3FFFFFFF)
    name;
  !h

let rng_for ~seed ~name = Rng.create (seed lxor hash_name name)

let conv_filter ~seed ~name ~kh ~kw ~in_c ~out_c =
  let filter = Ax_nn.Filter.create ~kh ~kw ~in_c ~out_c in
  Ax_nn.Filter.fill_he_normal (rng_for ~seed ~name) filter;
  filter

let dense ~seed ~name ~inputs ~outputs =
  let rng = rng_for ~seed ~name in
  let stddev = sqrt (2. /. float_of_int inputs) in
  let weights = Matrix.create ~rows:inputs ~cols:outputs in
  for i = 0 to inputs - 1 do
    for j = 0 to outputs - 1 do
      Matrix.set weights i j (stddev *. Rng.gaussian rng)
    done
  done;
  (weights, Array.make outputs 0.)

let batch_norm ~seed ~name ~channels =
  let rng = rng_for ~seed ~name in
  let scale = Array.init channels (fun _ -> 1. +. (0.15 *. Rng.gaussian rng)) in
  let shift = Array.init channels (fun _ -> 0.05 *. Rng.gaussian rng) in
  (scale, shift)
