lib/tensor/tensor.mli: Bigarray Rng Shape
