(** A LeNet-style network for the 28x28x1 synthetic digit workload:
    5x5 convolutions with max pooling and a small dense head — the
    classic architecture the early approximate-DNN literature
    evaluates, and a second (single-channel, Valid-padded, maxpool-
    heavy) exercise path for the emulator. *)

val build : ?seed:int -> ?classes:int -> unit -> Ax_nn.Graph.t
(** conv5x5(6, Same) + relu + maxpool2 -> conv5x5(16, Valid) + relu +
    maxpool2 -> dense 120 -> relu -> dense 84 -> relu -> dense classes
    -> softmax. *)

val input_shape : batch:int -> Ax_tensor.Shape.t
val macs_per_image : unit -> int
