let leading_one_position x =
  (* Position of the most significant set bit; -1 for zero. *)
  let rec go pos = if pos < 0 then -1 else if (x lsr pos) land 1 = 1 then pos else go (pos - 1) in
  go 62

let approximate_operand ~k x =
  if k < 2 then invalid_arg "Drum.approximate_operand: k must be >= 2";
  if x < 0 then invalid_arg "Drum.approximate_operand: negative operand";
  let l = leading_one_position x in
  if l < k then x
  else begin
    let shift = l - k + 1 in
    let window = (x lsr shift) lor 1 in
    window lsl shift
  end

let multiply ~k a b =
  let a' = approximate_operand ~k a and b' = approximate_operand ~k b in
  a' * b'
