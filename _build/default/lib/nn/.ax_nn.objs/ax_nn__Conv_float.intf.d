lib/nn/conv_float.mli: Ax_tensor Conv_spec Filter Profile
