lib/arith/drum.mli:
