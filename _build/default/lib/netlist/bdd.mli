(** Reduced ordered binary decision diagrams.

    The formal-verification companion to the netlist substrate: checking
    that a generated (or hand-optimised) approximate multiplier is
    exactly the function it claims to be, without relying on the same
    simulator that produced it.  Variables are ordered by primary-input
    creation index.

    The manager owns the unique-node table and the operation caches;
    nodes are plain integers, so BDDs from different managers must not
    be mixed (checked where cheap, undefined otherwise). *)

type manager
type node = int

val manager : unit -> manager

val zero : node
val one : node

val var : manager -> int -> node
(** [var m i] is the function of primary-input variable [i]. *)

val not_ : manager -> node -> node
val and_ : manager -> node -> node -> node
val or_ : manager -> node -> node -> node
val xor_ : manager -> node -> node -> node

val node_count : manager -> int
(** Live unique nodes (diagnostic). *)

val of_circuit : manager -> Circuit.t -> (string * node) list
(** One BDD per primary output, labelled. *)

val equivalent : Circuit.t -> Circuit.t -> bool
(** [equivalent a b] — same number of primary inputs (matched by
    creation order), outputs matched by label; true iff every matched
    output computes the same Boolean function.  Raises
    [Invalid_argument] when inputs or output label sets differ. *)

val satisfy_count : manager -> vars:int -> node -> float
(** Number of satisfying assignments over [vars] variables (float to
    allow wide supports). *)

val probability_one : manager -> vars:int -> node -> float
(** [satisfy_count / 2^vars]: the exact signal probability under
    independent uniform inputs — the reference the approximate
    propagation in {!Power.signal_probabilities} is tested against. *)
