(* The CONC rule family: bridge Ax_conc findings and Explore outcomes
   into catalogued diagnostics, plus the check units behind
   [tfapprox check --suite concurrency].

   Two kinds of unit.  Discipline/exploration of the REAL code (the
   pool under record mode, the coordinator model) must come back
   clean — any finding is reported at its catalogued severity.
   Seeded-defect self-tests (a deliberately racy counter, a deliberate
   lock-order inversion) must be FLAGGED — the expected finding is
   consumed as proof the detector still sees, and its absence is a
   [conc/blind-detector] error, so the suite fails loudly if the
   checkers ever go blind rather than silently passing everything. *)

module D = Diagnostic
module Conc = Ax_conc.Conc
module Cmutex = Ax_conc.Mutex
module Race = Ax_conc.Race
module Explore = Ax_conc.Explore
module Pool = Ax_pool.Pool

let rule_of_code = function
  | "lock-cycle" -> "conc/lock-cycle"
  | "rank-violation" -> "conc/rank-violation"
  | "relock" -> "conc/relock"
  | "unlock-unheld" -> "conc/unlock-unheld"
  | "bare-section" -> "conc/bare-section"
  | "data-race" -> "conc/data-race"
  | _ -> "conc/explore-violation"

let to_diagnostic (f : Conc.finding) =
  D.make ~rule:(rule_of_code f.code) ~location:(D.Artefact f.subject) f.detail

let to_diagnostics fs = List.map to_diagnostic fs

(* Run [f] in record mode on a clean slate and return the collected
   findings; the previous mode is restored and the slate wiped either
   way, so units cannot leak state into each other. *)
let with_record f =
  let saved = Conc.mode () in
  Conc.reset ();
  Conc.set_mode Conc.Record;
  Fun.protect
    ~finally:(fun () ->
      Conc.set_mode saved;
      Conc.reset ())
    (fun () ->
      f ();
      Conc.collect ())

let blind ~subject detail =
  [ D.make ~rule:"conc/blind-detector" ~location:(D.Artefact subject) detail ]

(* An exploration outcome as diagnostics: a reported violation carries
   the schedule so the failure replays deterministically. *)
let diagnostics_of_outcome ~subject = function
  | Explore.No_violation _ -> []
  | Explore.Violation { schedule; message } ->
    let rule =
      if String.length message >= 8 && String.sub message 0 8 = "deadlock" then
        "conc/explore-deadlock"
      else "conc/explore-violation"
    in
    [
      D.make ~rule ~location:(D.Artefact subject)
        (Printf.sprintf "%s [replay schedule %s]" message
           (Explore.schedule_to_string schedule));
    ]

(* ------------------------------------------------------------------ *)
(* Seeded-defect self-tests                                            *)
(* ------------------------------------------------------------------ *)

(* A counter bumped by two systhreads with no synchronization at all:
   no happens-before edge exists whatever the timing, so the detector
   MUST report a race on every run — there is no flaky interleaving to
   miss. *)
let selftest_race () =
  let findings =
    with_record (fun () ->
        let cell = Race.cell "selftest.counter" in
        let counter = ref 0 in
        let bump () =
          for _ = 1 to 16 do
            Race.write cell;
            incr counter
          done
        in
        let t1 = Thread.create bump () in
        let t2 = Thread.create bump () in
        Thread.join t1;
        Thread.join t2)
  in
  let races, rest =
    List.partition (fun (f : Conc.finding) -> f.code = "data-race") findings
  in
  if races = [] then
    blind ~subject:"selftest.counter"
      "the deliberately racy counter produced no conc/data-race finding"
  else to_diagnostics rest

(* Deliberate A->B then B->A acquisition: the name-graph cycle exists
   regardless of concurrency, so one thread suffices and detection is
   deterministic. *)
let selftest_lock_cycle () =
  let findings =
    with_record (fun () ->
        let a = Cmutex.create ~name:"selftest.A" () in
        let b = Cmutex.create ~name:"selftest.B" () in
        Cmutex.with_lock a (fun () -> Cmutex.with_lock b (fun () -> ()));
        Cmutex.with_lock b (fun () -> Cmutex.with_lock a (fun () -> ())))
  in
  let cycles, rest =
    List.partition (fun (f : Conc.finding) -> f.code = "lock-cycle") findings
  in
  if cycles = [] then
    blind ~subject:"selftest.A"
      "a deliberate A->B / B->A lock-order inversion produced no \
       conc/lock-cycle finding"
  else to_diagnostics rest

(* Negative golden: a consistent A->B order twice over must NOT be
   called a cycle — a false positive here surfaces as the (error-
   severity) spurious finding itself. *)
let selftest_lock_order_clean () =
  to_diagnostics
    (with_record (fun () ->
         let a = Cmutex.create ~name:"selftest.A" () in
         let b = Cmutex.create ~name:"selftest.B" () in
         Cmutex.with_lock a (fun () -> Cmutex.with_lock b (fun () -> ()));
         Cmutex.with_lock a (fun () -> Cmutex.with_lock b (fun () -> ()))))

(* The pre-fix [Pool.run_slots] coordinator acquisition, as an Explore
   model: test [active], then set it, with no lock — two fan-outs can
   both become coordinator.  The tracked variant must surface as a data
   race; the invariant variant (race detection off) must surface as a
   failed two-coordinators check.  Both pin the PR-8 regression. *)
let prefix_coordinator_model ~tracked () =
  let active = Explore.var ~track:tracked ~name:"pool.active" false in
  let coordinators = ref 0 in
  let body () =
    if not (Explore.get active) then begin
      Explore.set active true;
      incr coordinators;
      Explore.check (!coordinators <= 1)
        "two coordinators installed the pool job concurrently";
      Explore.set active false;
      decr coordinators
    end
  in
  [ body; body ]

let selftest_coordinator_race () =
  let invariant = Explore.explore (prefix_coordinator_model ~tracked:false) in
  let race = Explore.explore (prefix_coordinator_model ~tracked:true) in
  let missed = function Explore.Violation _ -> false | _ -> true in
  (if missed invariant then
     blind ~subject:"pool.run_slots"
       "the pre-fix coordinator model (unlocked test-and-set) passed the \
        two-coordinators invariant under every explored schedule"
   else [])
  @
  if missed race then
    blind ~subject:"pool.active"
      "the pre-fix coordinator model produced no data race on the \
       tracked [active] flag"
  else []

(* ------------------------------------------------------------------ *)
(* Real-code units (must be clean)                                     *)
(* ------------------------------------------------------------------ *)

(* The fixed coordinator protocol: test-and-set of [active] under the
   pool mutex.  Exploration must find no schedule with two
   coordinators, no race, no deadlock. *)
let coordinator_fixed () =
  diagnostics_of_outcome ~subject:"pool.run_slots"
    (Explore.explore (fun () ->
         let m = Cmutex.create ~name:"pool.mutex-model" () in
         let active = Explore.var ~track:false ~name:"pool.active" false in
         let coordinators = ref 0 in
         let body () =
           let got =
             Cmutex.with_lock m (fun () ->
                 if not (Explore.get active) then begin
                   Explore.set active true;
                   true
                 end
                 else false)
           in
           if got then begin
             incr coordinators;
             Explore.check (!coordinators <= 1)
               "two coordinators installed the pool job concurrently";
             Explore.yield ();
             decr coordinators;
             Cmutex.with_lock m (fun () -> Explore.set active false)
           end
         in
         [ body; body ]))

(* Record-mode soak of the real pool: static and dynamic fan-outs, a
   reduction, an exception crossing the join, and a stats read, over
   real worker domains.  The migrated pool must come back with zero
   findings. *)
let pool_discipline () =
  to_diagnostics
    (with_record (fun () ->
         Pool.with_pool ~domains:2 (fun p ->
             Pool.parallel_for p ~lo:0 ~hi:64 (fun ~lo:_ ~hi:_ -> ());
             Pool.parallel_for p
               ~schedule:(Pool.dynamic ~grain:4 ())
               ~lo:0 ~hi:64
               (fun ~lo:_ ~hi:_ -> ());
             let total =
               Pool.map_reduce p ~lo:0 ~hi:100
                 ~map:(fun ~lo ~hi -> hi - lo)
                 ~reduce:( + ) 0
             in
             if total <> 100 then
               failwith "conc_check: map_reduce self-check failed";
             (try
                Pool.parallel_for p ~lo:0 ~hi:8 (fun ~lo:_ ~hi:_ ->
                    failwith "boom")
              with Failure _ -> ());
             ignore (Pool.stats p))))

let suite () =
  [
    ("conc.selftest.race", selftest_race ());
    ("conc.selftest.lock-cycle", selftest_lock_cycle ());
    ("conc.selftest.lock-order-clean", selftest_lock_order_clean ());
    ("conc.selftest.coordinator-race", selftest_coordinator_race ());
    ("conc.pool.coordinator-fixed", coordinator_fixed ());
    ("conc.pool.discipline", pool_discipline ());
  ]
