lib/nn/transform.mli: Axconv Graph
