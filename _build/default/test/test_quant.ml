(* Tests for affine quantization: coefficient computation, the
   zero-exactly-representable invariant the paper emphasises, round
   modes, and tensor quantization into LUT codes. *)

module S = Ax_arith.Signedness
module Round = Ax_quant.Round
module Q = Ax_quant.Quantization
module Range = Ax_quant.Range
module Tensor = Ax_tensor.Tensor
module Shape = Ax_tensor.Shape
module Rng = Ax_tensor.Rng

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_float = Alcotest.(check (float 1e-6))

(* --- rounding --- *)

let test_round_nearest_even () =
  check_int "2.5 -> 2" 2 (Round.apply Round.Nearest_even 2.5);
  check_int "3.5 -> 4" 4 (Round.apply Round.Nearest_even 3.5);
  check_int "-2.5 -> -2" (-2) (Round.apply Round.Nearest_even (-2.5));
  check_int "2.4 -> 2" 2 (Round.apply Round.Nearest_even 2.4);
  check_int "2.6 -> 3" 3 (Round.apply Round.Nearest_even 2.6)

let test_round_nearest_away () =
  check_int "2.5 -> 3" 3 (Round.apply Round.Nearest_away 2.5);
  check_int "-2.5 -> -3" (-3) (Round.apply Round.Nearest_away (-2.5));
  check_int "2.4 -> 2" 2 (Round.apply Round.Nearest_away 2.4)

let test_round_toward_zero () =
  check_int "2.9 -> 2" 2 (Round.apply Round.Toward_zero 2.9);
  check_int "-2.9 -> -2" (-2) (Round.apply Round.Toward_zero (-2.9))

let test_round_stochastic_deterministic_and_adjacent () =
  let x = 2.3 in
  check_int "reproducible" (Round.apply Round.Stochastic x)
    (Round.apply Round.Stochastic x);
  for i = 0 to 100 do
    let v = 0.07 *. float_of_int i in
    let r = Round.apply Round.Stochastic v in
    check_bool "adjacent integer" true (r = int_of_float (floor v) || r = int_of_float (ceil v))
  done

let test_round_stochastic_unbiased () =
  (* Mean of stochastic rounding over many distinct inputs near x.25
     should approach .25 fractional mass. *)
  let ups = ref 0 in
  let n = 20000 in
  for i = 0 to n - 1 do
    let v = 5.25 +. (1e-9 *. float_of_int i) in
    if Round.apply Round.Stochastic v = 6 then incr ups
  done;
  let rate = float_of_int !ups /. float_of_int n in
  check_bool "up-rate near 0.25" true (abs_float (rate -. 0.25) < 0.02)

(* --- compute_coeffs --- *)

let test_coeffs_zero_exactly_representable () =
  (* The paper: "The constants are chosen in such a way that the real
     value r = 0 is exactly representable". *)
  List.iter
    (fun (s, rmin, rmax) ->
      let c = Q.compute_coeffs s ~rmin ~rmax in
      let q0 = Q.quantize c Round.Nearest_even s 0. in
      check_float
        (Printf.sprintf "dequant(quant(0)) = 0 for [%g,%g]" rmin rmax)
        0. (Q.dequantize c q0))
    [
      (S.Unsigned, 0., 6.); (S.Unsigned, -1., 5.); (S.Unsigned, 2., 9.);
      (S.Signed, -4., 4.); (S.Signed, -0.1, 8.); (S.Signed, -7., -1.);
      (S.Unsigned, 0., 0.);
    ]

let test_coeffs_alpha_positive () =
  List.iter
    (fun (rmin, rmax) ->
      let c = Q.compute_coeffs S.Signed ~rmin ~rmax in
      check_bool "alpha > 0" true (c.Q.alpha > 0.))
    [ (-1., 1.); (0., 0.); (5., 5.); (-3., -3.); (0., 1e-20) ]

let test_coeffs_beta_in_range () =
  List.iter
    (fun s ->
      List.iter
        (fun (rmin, rmax) ->
          let c = Q.compute_coeffs s ~rmin ~rmax in
          check_bool "beta in range" true (S.in_range s c.Q.beta))
        [ (-100., 0.001); (-0.001, 100.); (-1., 1.); (0., 255.) ])
    [ S.Signed; S.Unsigned ]

let test_coeffs_rejects_bad_range () =
  Alcotest.check_raises "inverted"
    (Invalid_argument "Quantization.compute_coeffs: rmin > rmax") (fun () ->
      ignore (Q.compute_coeffs S.Signed ~rmin:2. ~rmax:1.));
  Alcotest.check_raises "nan"
    (Invalid_argument "Quantization.compute_coeffs: NaN range") (fun () ->
      ignore (Q.compute_coeffs S.Signed ~rmin:Float.nan ~rmax:1.))

let test_symmetric_coeffs () =
  (* Signed symmetric: beta pinned to 0, scale from the magnitude bound. *)
  let c = Q.compute_coeffs ~symmetric:true S.Signed ~rmin:(-3.) ~rmax:1.5 in
  check_int "beta is 0" 0 c.Q.beta;
  check_float "alpha = 3/127" (3. /. 127.) c.Q.alpha;
  check_float "zero representable" 0.
    (Q.dequantize c (Q.quantize c Round.Nearest_even S.Signed 0.));
  (* Symmetric roundtrip bound: alpha/2 within the symmetric range. *)
  let rng = Rng.create 5 in
  for _ = 1 to 500 do
    let r = -3. +. (6. *. Rng.float rng) in
    let q = Q.quantize c Round.Nearest_even S.Signed r in
    check_bool "roundtrip" true
      (abs_float (Q.dequantize c q -. r) <= (c.Q.alpha /. 2.) +. 1e-9)
  done;
  (* Unsigned symmetric pins beta to qmin. *)
  let u = Q.compute_coeffs ~symmetric:true S.Unsigned ~rmin:0. ~rmax:4. in
  check_int "unsigned beta is 0" 0 u.Q.beta;
  (* Degenerate all-zero range stays positive-scaled. *)
  let z = Q.compute_coeffs ~symmetric:true S.Signed ~rmin:0. ~rmax:0. in
  check_bool "alpha positive" true (z.Q.alpha > 0.)

(* --- quantize / dequantize --- *)

let test_roundtrip_error_bound () =
  List.iter
    (fun s ->
      let rmin = -3.7 and rmax = 5.2 in
      let c = Q.compute_coeffs s ~rmin ~rmax in
      let bound = Q.roundtrip_error_bound c +. 1e-9 in
      let rng = Rng.create 77 in
      for _ = 1 to 2000 do
        let r = rmin +. ((rmax -. rmin) *. Rng.float rng) in
        let q = Q.quantize c Round.Nearest_even s r in
        check_bool
          (Printf.sprintf "|dequant(quant(%g)) - %g| <= alpha/2" r r)
          true
          (abs_float (Q.dequantize c q -. r) <= bound)
      done)
    [ S.Signed; S.Unsigned ]

let test_quantize_clamps () =
  let c = Q.compute_coeffs S.Unsigned ~rmin:0. ~rmax:1. in
  check_int "above range clamps to 255" 255
    (Q.quantize c Round.Nearest_even S.Unsigned 100.);
  check_int "below range clamps to 0" 0
    (Q.quantize c Round.Nearest_even S.Unsigned (-100.))

let test_quantize_monotone () =
  let c = Q.compute_coeffs S.Signed ~rmin:(-2.) ~rmax:2. in
  let prev = ref min_int in
  for i = 0 to 100 do
    let r = -2. +. (0.04 *. float_of_int i) in
    let q = Q.quantize c Round.Nearest_even S.Signed r in
    check_bool "monotone" true (q >= !prev);
    prev := q
  done

let test_degenerate_range_quantizes_to_zero () =
  let c = Q.compute_coeffs S.Signed ~rmin:0. ~rmax:0. in
  let q = Q.quantize c Round.Nearest_even S.Signed 0. in
  check_float "all-zero tensor stays zero" 0. (Q.dequantize c q)

(* --- tensor quantization --- *)

let test_quantize_tensor_codes_matches_scalar () =
  let shape = Shape.make ~n:2 ~h:3 ~w:3 ~c:2 in
  let t = Tensor.create shape in
  Tensor.fill_uniform ~lo:(-1.5) ~hi:2.5 (Rng.create 123) t;
  let range = Range.of_tensor t in
  List.iter
    (fun s ->
      let c = Q.compute_coeffs s ~rmin:range.Range.min ~rmax:range.Range.max in
      let codes = Q.quantize_tensor_codes c Round.Nearest_even s t in
      check_int "one code per element" (Tensor.num_elements t)
        (Bytes.length codes);
      Tensor.iteri_flat
        (fun i v ->
          let want =
            S.code_of_value s (Q.quantize c Round.Nearest_even s v)
          in
          check_int "code agrees with scalar path" want
            (Bytes.get_uint8 codes i))
        t)
    [ S.Signed; S.Unsigned ]

(* --- range --- *)

let test_range_of_tensor_and_union () =
  let t =
    Tensor.of_array (Shape.make ~n:1 ~h:1 ~w:4 ~c:1) [| -2.; 0.5; 3.; 1. |]
  in
  let r = Range.of_tensor t in
  check_float "min" (-2.) r.Range.min;
  check_float "max" 3. r.Range.max;
  let u = Range.union r (Range.make ~min:(-5.) ~max:1.) in
  check_float "union min" (-5.) u.Range.min;
  check_float "union max" 3. u.Range.max;
  check_bool "contains" true (Range.contains r 0.);
  check_bool "not contains" false (Range.contains r 4.)

let test_range_with_zero () =
  let r = Range.with_zero (Range.make ~min:2. ~max:5.) in
  check_float "extended to zero" 0. r.Range.min;
  let r = Range.with_zero (Range.make ~min:(-5.) ~max:(-2.)) in
  check_float "extended upward" 0. r.Range.max

let test_range_rejects_bad () =
  Alcotest.check_raises "inverted" (Invalid_argument "Range.make: min > max")
    (fun () -> ignore (Range.make ~min:1. ~max:0.))

(* --- qcheck properties --- *)

let finite_float = QCheck.float_range (-1000.) 1000.

let prop_quantize_in_range =
  QCheck.Test.make ~name:"quantized value always lies in operand range"
    ~count:1000
    QCheck.(triple finite_float finite_float finite_float)
    (fun (a, b, x) ->
      let rmin = Float.min a b and rmax = Float.max a b in
      List.for_all
        (fun s ->
          let c = Q.compute_coeffs s ~rmin ~rmax in
          S.in_range s (Q.quantize c Round.Nearest_even s x))
        [ S.Signed; S.Unsigned ])

let prop_dequantize_zero_point_is_zero =
  QCheck.Test.make ~name:"dequantize beta = 0 exactly" ~count:1000
    QCheck.(pair finite_float finite_float)
    (fun (a, b) ->
      let rmin = Float.min a b and rmax = Float.max a b in
      List.for_all
        (fun s ->
          let c = Q.compute_coeffs s ~rmin ~rmax in
          Q.dequantize c c.Q.beta = 0.)
        [ S.Signed; S.Unsigned ])

let prop_roundtrip_bounded =
  QCheck.Test.make ~name:"roundtrip error bounded by alpha/2 in-range"
    ~count:1000
    QCheck.(triple finite_float finite_float (float_range 0. 1.))
    (fun (a, b, frac) ->
      let rmin = Float.min a b and rmax = Float.max a b in
      let x = rmin +. (frac *. (rmax -. rmin)) in
      List.for_all
        (fun s ->
          let c = Q.compute_coeffs s ~rmin ~rmax in
          let q = Q.quantize c Round.Nearest_even s x in
          abs_float (Q.dequantize c q -. x)
          <= Q.roundtrip_error_bound c +. 1e-9)
        [ S.Signed; S.Unsigned ])

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_quantize_in_range; prop_dequantize_zero_point_is_zero;
        prop_roundtrip_bounded;
      ]
  in
  Alcotest.run "ax_quant"
    [
      ( "round",
        [
          Alcotest.test_case "nearest even" `Quick test_round_nearest_even;
          Alcotest.test_case "nearest away" `Quick test_round_nearest_away;
          Alcotest.test_case "toward zero" `Quick test_round_toward_zero;
          Alcotest.test_case "stochastic deterministic" `Quick
            test_round_stochastic_deterministic_and_adjacent;
          Alcotest.test_case "stochastic unbiased" `Quick
            test_round_stochastic_unbiased;
        ] );
      ( "coeffs",
        [
          Alcotest.test_case "zero exactly representable" `Quick
            test_coeffs_zero_exactly_representable;
          Alcotest.test_case "alpha positive" `Quick test_coeffs_alpha_positive;
          Alcotest.test_case "beta in range" `Quick test_coeffs_beta_in_range;
          Alcotest.test_case "rejects bad ranges" `Quick
            test_coeffs_rejects_bad_range;
        ] );
      ( "symmetric",
        [ Alcotest.test_case "pinned zero-point" `Quick test_symmetric_coeffs ] );
      ( "quantize",
        [
          Alcotest.test_case "roundtrip bound" `Quick
            test_roundtrip_error_bound;
          Alcotest.test_case "clamps" `Quick test_quantize_clamps;
          Alcotest.test_case "monotone" `Quick test_quantize_monotone;
          Alcotest.test_case "degenerate range" `Quick
            test_degenerate_range_quantizes_to_zero;
          Alcotest.test_case "tensor codes match scalar" `Quick
            test_quantize_tensor_codes_matches_scalar;
        ] );
      ( "range",
        [
          Alcotest.test_case "of_tensor/union" `Quick
            test_range_of_tensor_and_union;
          Alcotest.test_case "with_zero" `Quick test_range_with_zero;
          Alcotest.test_case "rejects bad" `Quick test_range_rejects_bad;
        ] );
      ("properties", qsuite);
    ]
