module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Matrix = Ax_tensor.Matrix
module Q = Ax_quant.Quantization
module S = Ax_arith.Signedness
module Pool = Ax_pool.Pool

type plan = {
  input_shape : Shape.t;
  kh : int;
  kw : int;
  stride : int;
  dilation : int;
  out_h : int;
  out_w : int;
  pad_top : int;
  pad_left : int;
  rows : int;
  patch_len : int;
}

let make input ~kh ~kw ~spec =
  let out_h, out_w, pad_top, pad_left =
    Shape.conv_output_dims input ~kh ~kw ~stride:spec.Conv_spec.stride
      ~dilation:spec.Conv_spec.dilation
      ~padding:(Conv_spec.padding_to_poly spec.Conv_spec.padding)
  in
  {
    input_shape = input;
    kh;
    kw;
    stride = spec.Conv_spec.stride;
    dilation = spec.Conv_spec.dilation;
    out_h;
    out_w;
    pad_top;
    pad_left;
    rows = Shape.(input.n) * out_h * out_w;
    patch_len = kh * kw * Shape.(input.c);
  }

(* Iterate the taps of one patch in HWC order, calling [inside] with the
   flat input offset for real cells and [padded] for out-of-image cells.
   Shared by both lowering flavours so they cannot disagree. *)
let iter_patch plan ~n ~oh ~ow ~inside ~padded =
  let s = plan.input_shape in
  let in_h = Shape.(s.h) and in_w = Shape.(s.w) and in_c = Shape.(s.c) in
  let base_h = (oh * plan.stride) - plan.pad_top in
  let base_w = (ow * plan.stride) - plan.pad_left in
  let col = ref 0 in
  for dh = 0 to plan.kh - 1 do
    let h = base_h + (dh * plan.dilation) in
    for dw = 0 to plan.kw - 1 do
      let w = base_w + (dw * plan.dilation) in
      if h >= 0 && h < in_h && w >= 0 && w < in_w then begin
        let base = Shape.unsafe_offset s ~n ~h ~w ~c:0 in
        for c = 0 to in_c - 1 do
          inside !col (base + c);
          incr col
        done
      end
      else
        for _ = 0 to in_c - 1 do
          padded !col;
          incr col
        done
    done
  done

(* Patch-matrix row [row] corresponds to image [row / (out_h * out_w)],
   output pixel [(rem / out_w, rem mod out_w)] — the fixed row order
   both lowering flavours and the GEMM rely on.  Deriving the
   coordinates from the row index (instead of threading a counter
   through nested loops) is what lets a row range be filled by any
   domain independently; the fill loops inline the division to avoid a
   per-row coordinate tuple. *)

let parallelize ?pool ?(domains = 1) ?schedule ~lo ~hi body =
  match pool with
  | Some p when domains > 1 && hi - lo > 1 ->
    Pool.parallel_for p ~max_domains:domains ?schedule ~lo ~hi body
  | Some _ | None -> if lo < hi then body ~lo ~hi

let to_matrix ?pool ?domains ?schedule ?scratch plan input =
  if not (Shape.equal (Tensor.shape input) plan.input_shape) then
    invalid_arg "Im2col.to_matrix: input shape differs from plan";
  let m =
    match scratch with
    | None -> Matrix.create ~rows:plan.rows ~cols:plan.patch_len
    | Some s ->
      (* Scratch-backed matrix: the data array is oversized and reused,
         so the padding cells (the only ones [fill_rows] skips) must be
         re-zeroed explicitly. *)
      let len = plan.rows * plan.patch_len in
      let data = Scratch.fm s len in
      Array.fill data 0 len 0.;
      { Matrix.rows = plan.rows; cols = plan.patch_len; data }
  in
  let buf = Tensor.buffer input in
  let fill_rows ~lo ~hi =
    (* Closures and the row cursor live outside the row loop — one
       allocation per sub-range, not per row — so scratch-backed reuse
       really is allocation-free in steady state. *)
    let row_base = ref 0 in
    let inside col off = m.Matrix.data.(!row_base + col) <- buf.{off} in
    let padded _ = () in
    let per_image = plan.out_h * plan.out_w in
    for row = lo to hi - 1 do
      let n = row / per_image in
      let rem = row mod per_image in
      row_base := row * plan.patch_len;
      iter_patch plan ~n ~oh:(rem / plan.out_w) ~ow:(rem mod plan.out_w)
        ~inside ~padded
    done
  in
  parallelize ?pool ?domains ?schedule ~lo:0 ~hi:plan.rows fill_rows;
  m

(* Quantize rows [row_lo, row_hi) of the plan into [mp]/[sp], row [r]
   landing at buffer row [r - row_lo].  Each row writes its own
   [patch_len] slice of [mp] and its own [sp] cell, and quantization
   (including the hash-based stochastic rounding) is a pure function of
   the input value — so any row split, and any chunking of the full row
   range, produces bit-identical codes. *)
let fill_codes ?pool ?domains ?schedule plan input mp sp ~row_lo ~row_hi
    ~coeffs ~round_mode ~signedness =
  let buf = Tensor.buffer input in
  let inv_alpha = 1. /. coeffs.Q.alpha in
  let betaf = float_of_int coeffs.Q.beta in
  (* The zero-point code: what a zero-padding cell quantizes to. *)
  let zero_q = coeffs.Q.beta in
  let zero_code = zero_q land 0xff in
  let clamp_lo = S.min_value signedness and clamp_hi = S.max_value signedness in
  let fill_rows ~lo ~hi =
    (* Hot-path discipline, enforced by the `bench -- gemm` allocation
       gate: closures and refs are created once per sub-range (not per
       row), the row cursor and the Sp accumulator are shared mutable
       state, and the rounding arithmetic is unrolled inline because a
       cross-module [Round.apply] call would box its float argument on
       every tap.  The unrolled branches mirror [Round.apply] literally;
       the qcheck suite pins both to the same rational reference.
       [Stochastic] keeps the library call (and its boxing) — the hash
       is not worth duplicating and that mode is off the default path. *)
    let row_base = ref 0 in
    let acc = ref 0 in
    let inside col off =
      let x = (buf.{off} *. inv_alpha) +. betaf in
      let q =
        match round_mode with
        | Ax_quant.Round.Nearest_even ->
          let f = floor x in
          let frac = x -. f in
          if frac > 0.5 then int_of_float f + 1
          else if frac < 0.5 then int_of_float f
          else begin
            let lo = int_of_float f in
            if lo mod 2 = 0 then lo else lo + 1
          end
        | Ax_quant.Round.Nearest_away -> int_of_float (Float.round x)
        | Ax_quant.Round.Toward_zero -> int_of_float (Float.trunc x)
        | Ax_quant.Round.Stochastic ->
          Ax_quant.Round.apply Ax_quant.Round.Stochastic x
      in
      let q =
        if q < clamp_lo then clamp_lo else if q > clamp_hi then clamp_hi else q
      in
      acc := !acc + q;
      Bytes.unsafe_set mp (!row_base + col) (Char.unsafe_chr (q land 0xff))
    in
    let padded col =
      acc := !acc + zero_q;
      Bytes.unsafe_set mp (!row_base + col) (Char.unsafe_chr zero_code)
    in
    let per_image = plan.out_h * plan.out_w in
    for row = lo to hi - 1 do
      let n = row / per_image in
      let rem = row mod per_image in
      row_base := (row - row_lo) * plan.patch_len;
      acc := 0;
      iter_patch plan ~n ~oh:(rem / plan.out_w) ~ow:(rem mod plan.out_w)
        ~inside ~padded;
      sp.(row - row_lo) <- !acc
    done
  in
  parallelize ?pool ?domains ?schedule ~lo:row_lo ~hi:row_hi fill_rows

let to_codes ?pool ?domains ?schedule ?scratch plan input ~coeffs ~round_mode
    ~signedness =
  if not (Shape.equal (Tensor.shape input) plan.input_shape) then
    invalid_arg "Im2col.to_codes: input shape differs from plan";
  let mp, sp =
    match scratch with
    | None -> (Bytes.create (plan.rows * plan.patch_len), Array.make plan.rows 0)
    | Some s -> (Scratch.mp s (plan.rows * plan.patch_len), Scratch.sp s plan.rows)
  in
  fill_codes ?pool ?domains ?schedule plan input mp sp ~row_lo:0
    ~row_hi:plan.rows ~coeffs ~round_mode ~signedness;
  (mp, sp)

let to_codes_range ?pool ?domains ?schedule ~scratch plan input ~row_lo
    ~row_hi ~coeffs ~round_mode ~signedness =
  if not (Shape.equal (Tensor.shape input) plan.input_shape) then
    invalid_arg "Im2col.to_codes_range: input shape differs from plan";
  if row_lo < 0 || row_hi < row_lo || row_hi > plan.rows then
    invalid_arg "Im2col.to_codes_range: row range out of bounds";
  let rows = row_hi - row_lo in
  let mp = Scratch.mp scratch (rows * plan.patch_len) in
  let sp = Scratch.sp scratch rows in
  fill_codes ?pool ?domains ?schedule plan input mp sp ~row_lo ~row_hi
    ~coeffs ~round_mode ~signedness;
  (mp, sp)
