(** Graceful degradation for on-disk artefacts.

    Both artefact formats ("AXLUT1" truth tables, "AXMDL1" models) carry
    CRC-32 checksums, so corruption is {e detected} at load time
    ({!Ax_arith.Load_error}).  This module adds the {e recovery} policy:
    a truth table is derivable from its generator, so a corrupted LUT
    artefact can be repaired by re-tabulating the named
    {!Ax_arith.Registry} multiplier; model weights are not derivable, so
    a corrupted model is rejected with the typed error. *)

type outcome =
  | Intact               (** artefact loaded and verified clean *)
  | Repaired of Ax_arith.Load_error.t
      (** artefact was damaged (the carried error says how); the
          returned table was re-tabulated from the registry generator *)

val load_lut :
  ?repair_with:string ->
  ?on_warning:(string -> unit) ->
  string ->
  (Ax_arith.Lut.t * outcome, Ax_arith.Load_error.t) result
(** [load_lut ?repair_with path] loads an "AXLUT1" artefact.  On any
    typed load failure: with [repair_with] naming a known registry
    multiplier, re-tabulates it, best-effort rewrites the artefact in
    place, reports through [on_warning] (default: one line on stderr)
    and returns [Ok (lut, Repaired err)]; otherwise (or when the name is
    unknown) returns the original [Error].  Missing files raise
    [Sys_error] as usual. *)

val load_model : string -> (Ax_nn.Graph.t, Ax_arith.Load_error.t) result
(** Detect-and-reject loading of "AXMDL1" artefacts (weights cannot be
    re-derived); alias of {!Ax_nn.Model_io.load_result}, re-exported so
    resilience tooling has one artefact entry point. *)
