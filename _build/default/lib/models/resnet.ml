module Shape = Ax_tensor.Shape
module Graph = Ax_nn.Graph
module Conv_spec = Ax_nn.Conv_spec

let table1_depths = [ 8; 14; 20; 26; 32; 38; 44; 50; 56; 62 ]

let check_depth depth =
  if depth < 8 || (depth - 2) mod 6 <> 0 then
    invalid_arg
      (Printf.sprintf "Resnet: depth %d invalid ((d-2) mod 6 <> 0)" depth)

let conv_layer_count depth =
  check_depth depth;
  depth - 1

let input_shape ~batch = Shape.make ~n:batch ~h:32 ~w:32 ~c:3

let build ?(seed = 2020) ?(classes = 10) ?(with_batch_norm = true) ~depth () =
  check_depth depth;
  let blocks_per_stage = (depth - 2) / 6 in
  let b = Graph.builder () in
  let input = Graph.add b ~name:"input" Graph.Input [] in
  let conv ~name ~in_c ~out_c ~stride src =
    let filter =
      Weights.conv_filter ~seed ~name ~kh:3 ~kw:3 ~in_c ~out_c
    in
    let spec = Conv_spec.make ~stride ~padding:Conv_spec.Same () in
    Graph.add b ~name (Graph.Conv2d { filter; bias = None; spec }) [ src ]
  in
  let bn ~name ~channels src =
    if with_batch_norm then begin
      let scale, shift = Weights.batch_norm ~seed ~name ~channels in
      Graph.add b ~name (Graph.Batch_norm { scale; shift }) [ src ]
    end
    else src
  in
  let relu ~name src = Graph.add b ~name Graph.Relu [ src ] in
  (* Stem: 3x3 conv to 16 channels. *)
  let stem = conv ~name:"conv0" ~in_c:3 ~out_c:16 ~stride:1 input in
  let stem = bn ~name:"conv0/bn" ~channels:16 stem in
  let stem = relu ~name:"conv0/relu" stem in
  let tip = ref stem and tip_c = ref 16 in
  List.iteri
    (fun stage channels ->
      for block = 0 to blocks_per_stage - 1 do
        let prefix = Printf.sprintf "stage%d/block%d" stage block in
        let stride = if stage > 0 && block = 0 then 2 else 1 in
        let x = !tip in
        let c1 =
          conv ~name:(prefix ^ "/conv1") ~in_c:!tip_c ~out_c:channels ~stride
            x
        in
        let c1 = bn ~name:(prefix ^ "/bn1") ~channels c1 in
        let c1 = relu ~name:(prefix ^ "/relu1") c1 in
        let c2 =
          conv ~name:(prefix ^ "/conv2") ~in_c:channels ~out_c:channels
            ~stride:1 c1
        in
        let c2 = bn ~name:(prefix ^ "/bn2") ~channels c2 in
        (* Option-A shortcut: identity, or subsample + zero-pad when the
           shape changes. *)
        let shortcut =
          if stride = 1 && !tip_c = channels then x
          else
            Graph.add b ~name:(prefix ^ "/shortcut")
              (Graph.Shortcut_pad { stride; out_c = channels })
              [ x ]
        in
        let joined = Graph.add b ~name:(prefix ^ "/add") Graph.Add [ c2; shortcut ] in
        tip := relu ~name:(prefix ^ "/relu2") joined;
        tip_c := channels
      done)
    [ 16; 32; 64 ];
  let pooled = Graph.add b ~name:"avg_pool" Graph.Global_avg_pool [ !tip ] in
  let weights, bias =
    Weights.dense ~seed ~name:"fc" ~inputs:64 ~outputs:classes
  in
  let logits = Graph.add b ~name:"fc" (Graph.Dense { weights; bias }) [ pooled ] in
  let probs = Graph.add b ~name:"softmax" Graph.Softmax [ logits ] in
  Graph.finalize b ~output:probs

let macs_per_image ~depth =
  let g = build ~with_batch_norm:false ~depth () in
  Graph.total_macs g ~input:(input_shape ~batch:1)
