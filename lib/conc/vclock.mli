(** Vector clocks and the FastTrack-style per-cell access state.

    Pure epoch algebra shared by the two race-detection worlds: the
    record-mode detector ({!Race}, over real systhreads and domains)
    and the deterministic explorer ({!Explore}, over cooperative
    threads).  A race means the same thing in both: two accesses to the
    same cell, at least one a write, with neither epoch
    happened-before the other thread's clock. *)

type t
(** A vector clock: thread key -> logical time. *)

val empty : t
val get : t -> int -> int
val tick : t -> int -> t
val join : t -> t -> t

val epoch_leq : tid:int -> time:int -> t -> bool
(** Did epoch [(tid, time)] happen before the observer clock? *)

type access = Read | Write

val access_to_string : access -> string

type cell
(** Per-cell detector state: last write epoch + reads since. *)

val cell : unit -> cell

type race = {
  access : access;  (** the access that completed the race *)
  tid : int;
  prev_access : access;
  prev_tid : int;
}

val race_to_string : race -> string

val access : cell -> tid:int -> clock:t -> access -> race option
(** Check one access against the cell state and fold it in.  Returns
    the first race this access completes, if any; state updates either
    way so one broken pair does not cascade. *)
