test/test_nn_graph.mli:
