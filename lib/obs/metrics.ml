type counter = { mutable count : int }
type gauge = { mutable level : float }

(* ------------------------------------------------------------------ *)
(* Log-bucketed histograms                                             *)
(* ------------------------------------------------------------------ *)

(* One fixed bucket geometry for every histogram: [hist_buckets] log
   buckets, [hist_per_octave] per factor of two, spanning [hist_lo] (a
   nanosecond, when observations are seconds) up to ~1.8e4.  A shared
   geometry is what makes {!diff} and {!merge_histogram} well-defined
   bucket-by-bucket. *)
let hist_lo = 1e-9
let hist_per_octave = 4
let hist_buckets = 176
let hist_bucket_count = hist_buckets

let bucket_index v =
  if not (Float.is_finite v) || v <= hist_lo then 0
  else
    let i =
      int_of_float (Float.log2 (v /. hist_lo) *. float_of_int hist_per_octave)
    in
    if i < 0 then 0 else if i >= hist_buckets then hist_buckets - 1 else i

let bucket_upper_bound i =
  if i >= hist_buckets - 1 then infinity
  else hist_lo *. Float.pow 2. (float_of_int (i + 1) /. float_of_int hist_per_octave)

let bucket_lower_bound i =
  if i <= 0 then 0.
  else hist_lo *. Float.pow 2. (float_of_int i /. float_of_int hist_per_octave)

(* Geometric midpoint of bucket [i] — the quantile estimate for a rank
   that lands in it, before clamping to the observed min/max. *)
let bucket_mid i =
  hist_lo *. Float.pow 2. ((float_of_int i +. 0.5) /. float_of_int hist_per_octave)

type histogram = {
  mutable h_count : int;
  mutable h_sum : float;
  mutable h_min : float;  (* infinity when empty *)
  mutable h_max : float;  (* neg_infinity when empty *)
  h_bucket : int array;
}

let observe h v =
  h.h_count <- h.h_count + 1;
  h.h_sum <- h.h_sum +. v;
  if v < h.h_min then h.h_min <- v;
  if v > h.h_max then h.h_max <- v;
  let i = bucket_index v in
  h.h_bucket.(i) <- h.h_bucket.(i) + 1

let h_count h = h.h_count
let h_sum h = h.h_sum

(* Nearest-rank quantile over the buckets: the estimate is the
   geometric midpoint of the bucket holding the rank-[ceil(q*n)]
   smallest observation, clamped to the observed [min, max] — so it is
   always within one bucket width (a factor of 2^(1/4)) of the
   empirical nearest-rank quantile. *)
let quantile_of_buckets ~count ~minv ~maxv bucket q =
  if count = 0 then nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = max 0 (int_of_float (Float.ceil (q *. float_of_int count)) - 1) in
    let i = ref 0 and cum = ref 0 in
    (try
       for j = 0 to hist_buckets - 1 do
         cum := !cum + bucket.(j);
         if !cum > rank then begin
           i := j;
           raise Exit
         end
       done;
       i := hist_buckets - 1
     with Exit -> ());
    let est = bucket_mid !i in
    let est = if Float.is_finite minv then Float.max est minv else est in
    let est = if Float.is_finite maxv then Float.min est maxv else est in
    est
  end

let quantile h q =
  quantile_of_buckets ~count:h.h_count ~minv:h.h_min ~maxv:h.h_max h.h_bucket q

type t = {
  counters : (string, counter) Hashtbl.t;
  gauges : (string, gauge) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () =
  {
    counters = Hashtbl.create 16;
    gauges = Hashtbl.create 16;
    histograms = Hashtbl.create 8;
  }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { count = 0 } in
    Hashtbl.add t.counters name c;
    c

let incr c n =
  if n < 0 then invalid_arg "Metrics.incr: negative increment";
  c.count <- c.count + n

let value c = c.count
let add t name n = incr (counter t name) n

let gauge t name =
  match Hashtbl.find_opt t.gauges name with
  | Some g -> g
  | None ->
    let g = { level = 0. } in
    Hashtbl.add t.gauges name g;
    g

let set g v = g.level <- v
let gauge_value g = g.level
let set_gauge t name v = set (gauge t name) v

let histogram t name =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let h =
      {
        h_count = 0;
        h_sum = 0.;
        h_min = infinity;
        h_max = neg_infinity;
        h_bucket = Array.make hist_buckets 0;
      }
    in
    Hashtbl.add t.histograms name h;
    h

let observe_named t name v = observe (histogram t name) v

let reset t =
  Hashtbl.iter (fun _ c -> c.count <- 0) t.counters;
  Hashtbl.iter (fun _ g -> g.level <- 0.) t.gauges;
  Hashtbl.iter
    (fun _ h ->
      h.h_count <- 0;
      h.h_sum <- 0.;
      h.h_min <- infinity;
      h.h_max <- neg_infinity;
      Array.fill h.h_bucket 0 hist_buckets 0)
    t.histograms

(* Process-wide GC gauges — the always-on view of what PR 5's one-off
   allocation gate measures.  Gauges, so repeated publication is
   idempotent. *)
let observe_gc t =
  let s = Gc.quick_stat () in
  set_gauge t "gc_minor_words" s.Gc.minor_words;
  set_gauge t "gc_promoted_words" s.Gc.promoted_words;
  set_gauge t "gc_major_words" s.Gc.major_words;
  set_gauge t "gc_minor_collections" (float_of_int s.Gc.minor_collections);
  set_gauge t "gc_major_collections" (float_of_int s.Gc.major_collections);
  set_gauge t "gc_compactions" (float_of_int s.Gc.compactions);
  set_gauge t "gc_heap_words" (float_of_int s.Gc.heap_words)

(* ------------------------------------------------------------------ *)
(* Snapshots                                                           *)
(* ------------------------------------------------------------------ *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;  (* nan when empty *)
  max : float;  (* nan when empty *)
  p50 : float;  (* nan when empty *)
  p90 : float;
  p99 : float;
  buckets : (int * int) list;  (* (bucket index, count), non-empty only *)
}

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist_snapshot) list;
}

let sorted_bindings table value =
  Hashtbl.fold (fun name cell acc -> (name, value cell) :: acc) table []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let hist_snapshot_of_buckets ~count ~sum ~minv ~maxv buckets =
  let bucket = Array.make hist_buckets 0 in
  List.iter (fun (i, c) -> bucket.(i) <- c) buckets;
  let q p = quantile_of_buckets ~count ~minv ~maxv bucket p in
  {
    count;
    sum;
    min = (if count = 0 then nan else minv);
    max = (if count = 0 then nan else maxv);
    p50 = q 0.50;
    p90 = q 0.90;
    p99 = q 0.99;
    buckets;
  }

let snapshot_histogram h =
  let buckets = ref [] in
  for i = hist_buckets - 1 downto 0 do
    if h.h_bucket.(i) > 0 then buckets := (i, h.h_bucket.(i)) :: !buckets
  done;
  hist_snapshot_of_buckets ~count:h.h_count ~sum:h.h_sum ~minv:h.h_min
    ~maxv:h.h_max !buckets

let snapshot (t : t) =
  {
    counters = sorted_bindings t.counters (fun c -> c.count);
    gauges = sorted_bindings t.gauges (fun g -> g.level);
    histograms = sorted_bindings t.histograms snapshot_histogram;
  }

let diff ~before ~after =
  let diff_hist name (h : hist_snapshot) =
    match List.assoc_opt name before.histograms with
    | None -> h
    | Some prior ->
      let bucket = Array.make hist_buckets 0 in
      List.iter (fun (i, c) -> bucket.(i) <- c) h.buckets;
      List.iter (fun (i, c) -> bucket.(i) <- max 0 (bucket.(i) - c)) prior.buckets;
      let buckets = ref [] in
      for i = hist_buckets - 1 downto 0 do
        if bucket.(i) > 0 then buckets := (i, bucket.(i)) :: !buckets
      done;
      let count = max 0 (h.count - prior.count) in
      (* The region's min/max are unrecoverable from two cumulative
         snapshots; keep the [after] extremes, like gauges. *)
      hist_snapshot_of_buckets ~count
        ~sum:(Float.max 0. (h.sum -. prior.sum))
        ~minv:h.min ~maxv:h.max !buckets
  in
  {
    counters =
      List.map
        (fun (name, v) ->
          let prior =
            match List.assoc_opt name before.counters with
            | Some p -> p
            | None -> 0
          in
          (name, max 0 (v - prior)))
        after.counters;
    gauges = after.gauges;
    histograms = List.map (fun (name, h) -> (name, diff_hist name h)) after.histograms;
  }

(* Fold a histogram snapshot (a worker shard's, typically) into a live
   registry.  Bucket counts are integer sums, so merging shards in
   index order keeps the merged histogram bit-identical across pool
   sizes; [sum] is a float sum in the caller's merge order. *)
let merge_histogram t name (hs : hist_snapshot) =
  if hs.count > 0 then begin
    let h = histogram t name in
    h.h_count <- h.h_count + hs.count;
    h.h_sum <- h.h_sum +. hs.sum;
    if hs.min < h.h_min then h.h_min <- hs.min;
    if hs.max > h.h_max then h.h_max <- hs.max;
    List.iter (fun (i, c) -> h.h_bucket.(i) <- h.h_bucket.(i) + c) hs.buckets
  end

let find_counter s name = List.assoc_opt name s.counters
let find_gauge s name = List.assoc_opt name s.gauges
let find_histogram s name = List.assoc_opt name s.histograms

let hist_to_json (h : hist_snapshot) =
  Json.Obj
    [
      ("count", Json.Int h.count);
      ("sum", Json.Float h.sum);
      ("min", Json.Float h.min);
      ("max", Json.Float h.max);
      ("p50", Json.Float h.p50);
      ("p90", Json.Float h.p90);
      ("p99", Json.Float h.p99);
    ]

let to_json s =
  Json.Obj
    [
      ("counters", Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) s.counters));
      ("gauges", Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) s.gauges));
      ( "histograms",
        Json.Obj (List.map (fun (k, h) -> (k, hist_to_json h)) s.histograms) );
    ]

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
      | _ -> '_')
    name

let escape_help text =
  let buf = Buffer.create (String.length text) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    text;
  Buffer.contents buf

let to_prometheus ?(namespace = "tfapprox") s =
  let buf = Buffer.create 512 in
  (* Families sorted by raw name; sanitization can collide distinct raw
     names (lut.hits vs lut/hits), so exposition names are picked
     first-come over that sorted order — deterministic — with _2, _3,
     ... suffixes for the collisions. *)
  let families =
    List.map (fun (n, v) -> (n, `Counter v)) s.counters
    @ List.map (fun (n, v) -> (n, `Gauge v)) s.gauges
    @ List.map (fun (n, h) -> (n, `Histogram h)) s.histograms
  in
  let families = List.sort (fun (a, _) (b, _) -> compare a b) families in
  let taken = Hashtbl.create 16 in
  let resolve raw =
    let base = sanitize (namespace ^ "_" ^ raw) in
    let rec pick i =
      let cand = if i = 1 then base else Printf.sprintf "%s_%d" base i in
      if Hashtbl.mem taken cand then pick (i + 1)
      else begin
        Hashtbl.add taken cand ();
        cand
      end
    in
    pick 1
  in
  let line fmt = Printf.ksprintf (fun l -> Buffer.add_string buf (l ^ "\n")) fmt in
  List.iter
    (fun (raw, family) ->
      let name = resolve raw in
      line "# HELP %s %s" name (escape_help raw);
      (match family with
      | `Counter v ->
        line "# TYPE %s counter" name;
        line "%s %d" name v
      | `Gauge v ->
        line "# TYPE %s gauge" name;
        line "%s %.9g" name v
      | `Histogram (h : hist_snapshot) ->
        line "# TYPE %s histogram" name;
        let cum = ref 0 in
        List.iter
          (fun (i, c) ->
            cum := !cum + c;
            (* The last bucket's upper bound is infinite — the +Inf
               sample below already carries its cumulative count. *)
            if i < hist_buckets - 1 then
              line "%s_bucket{le=\"%.9g\"} %d" name (bucket_upper_bound i) !cum)
          h.buckets;
        line "%s_bucket{le=\"+Inf\"} %d" name h.count;
        line "%s_sum %.9g" name h.sum;
        line "%s_count %d" name h.count))
    families;
  Buffer.contents buf

let pp ppf s =
  Format.fprintf ppf "@[<v>";
  List.iter (fun (name, v) -> Format.fprintf ppf "%-24s %d@," name v) s.counters;
  List.iter (fun (name, v) -> Format.fprintf ppf "%-24s %.4g@," name v) s.gauges;
  List.iter
    (fun (name, (h : hist_snapshot)) ->
      Format.fprintf ppf "%-24s n=%d p50=%.3g p90=%.3g p99=%.3g@," name h.count
        h.p50 h.p90 h.p99)
    s.histograms;
  Format.fprintf ppf "@]"
