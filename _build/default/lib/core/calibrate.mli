(** Post-transform bias calibration — the ALWANN-style (ref. [12])
    "adaptation without retraining" extension the paper's conclusions
    point at.

    Approximate multipliers with a systematic bias (Mitchell always
    under-estimates, truncation drops mass) shift every convolution
    output by a roughly input-independent per-channel offset.  Running a
    calibration batch through the transformed network, comparing each
    AxConv2D's output against the same layer evaluated with the exact
    LUT {e on the same inputs}, and folding the mean per-channel
    difference into the layer bias removes that shift — no retraining,
    no weight updates. *)

val bias_correct :
  sample:Ax_tensor.Tensor.t -> Ax_nn.Graph.t -> Ax_nn.Graph.t
(** [bias_correct ~sample g] returns a copy of [g] where every
    [Ax_conv2d] node's bias absorbs the layer's mean per-channel error,
    measured on [sample] with activations taken from the approximate
    forward pass.  Graphs without [Ax_conv2d] nodes are returned
    unchanged (structurally rebuilt). *)

val mean_channel_error :
  sample:Ax_tensor.Tensor.t -> Ax_nn.Graph.t -> (string * float) list
(** Diagnostic: per-layer mean absolute output error (approximate vs
    exact LUT on identical inputs), keyed by node name. *)
