lib/data/dataset.mli: Ax_tensor
