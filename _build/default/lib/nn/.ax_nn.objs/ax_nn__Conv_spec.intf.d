lib/nn/conv_spec.mli: Ax_tensor Filter
