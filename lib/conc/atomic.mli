(** Checked drop-in for [Stdlib.Atomic].  Operations are synchronizing
    for the race detector: each joins the per-atomic clock into the
    thread's clock and publishes back, mirroring the release/acquire
    semantics OCaml atomics provide. *)

type 'a t

val make : name:string -> 'a -> 'a t
val name : 'a t -> string
val get : 'a t -> 'a
val set : 'a t -> 'a -> unit
val exchange : 'a t -> 'a -> 'a
val compare_and_set : 'a t -> 'a -> 'a -> bool
val fetch_and_add : int t -> int -> int
val incr : int t -> unit
val decr : int t -> unit
