module Power = Ax_netlist.Power
module Multipliers = Ax_netlist.Multipliers

type mac_profile = {
  multiplier_energy : float;
  accumulator_energy : float;
}

(* A 32-bit accumulate costs roughly four 8-bit ripple slices of
   switching power; estimate one slice from an actual adder netlist. *)
let accumulator_share =
  lazy
    (let c = Ax_netlist.Circuit.create ~name:"acc_slice" () in
     let a = Ax_netlist.Bus.input c "a" 8 in
     let b = Ax_netlist.Bus.input c "b" 8 in
     let sum, carry = Ax_netlist.Adders.ripple_carry c a b in
     Ax_netlist.Bus.output c "s" sum;
     Ax_netlist.Circuit.output c "cout" carry;
     4. *. (Power.analyze c).Power.power)

let mac_of_circuit circuit =
  {
    multiplier_energy = (Power.analyze circuit).Power.power;
    accumulator_energy = Lazy.force accumulator_share;
  }

let exact_mac =
  lazy
    (mac_of_circuit
       (Multipliers.unsigned_array ~bits:8).Multipliers.circuit)

let total p = p.multiplier_energy +. p.accumulator_energy

let relative_mac_energy p = total p /. total (Lazy.force exact_mac)

let network_energy p ~macs =
  if macs < 0. then invalid_arg "Energy.network_energy: negative macs";
  relative_mac_energy p *. macs

let savings_percent p = 100. *. (1. -. relative_mac_energy p)
