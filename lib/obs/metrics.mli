(** Named counters, gauges and latency histograms for the emulator hot
    paths.

    Counters are monotonic integers (LUT lookups, MACs, im2col bytes,
    texture-cache hits); gauges are instantaneous floats (images/sec,
    hit rate); histograms are log-bucketed latency distributions
    (per-chunk GEMM seconds, per-image emulator seconds) with
    p50/p90/p99 estimation.  Handles returned by {!counter} / {!gauge} /
    {!histogram} are plain mutable cells, so hot-path updates cost a few
    arithmetic ops and no hashing.  {!snapshot} / {!diff} give a
    before/after view of a region of interest; snapshots render to JSON
    and Prometheus text.

    Cells are {e not} thread-safe: all accounting happens on the
    coordinator domain, worker results being folded in post-join
    ({!merge_histogram} and the counter merges in
    [Emulator.merge_shard_profile]). *)

type t
type counter
type gauge
type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Find-or-create; fresh counters start at 0. *)

val incr : counter -> int -> unit
(** Raises [Invalid_argument] on a negative increment — counters are
    monotonic by contract. *)

val value : counter -> int

val add : t -> string -> int -> unit
(** [add t name n] = [incr (counter t name) n] — for cold call sites. *)

val gauge : t -> string -> gauge
(** Find-or-create; fresh gauges read 0. *)

val set : gauge -> float -> unit
val gauge_value : gauge -> float

val set_gauge : t -> string -> float -> unit
(** [set_gauge t name v] = [set (gauge t name) v]. *)

(** {1 Histograms}

    Every histogram shares one fixed geometry: {!hist_bucket_count} log
    buckets with {!hist_per_octave} buckets per factor of two, spanning
    {!hist_lo} up to ~1.8e4 (nanoseconds to hours, when observations
    are seconds).  Quantile estimates are the geometric midpoint of the
    nearest-rank bucket, clamped to the observed min/max, so the
    relative error is bounded by one bucket width — a factor of
    2{^ 1/4} ≈ 1.19.  The shared geometry is what makes {!diff} and
    {!merge_histogram} exact bucket-by-bucket. *)

val hist_lo : float
val hist_per_octave : int
val hist_bucket_count : int

val bucket_index : float -> int
(** The bucket an observation falls into (non-finite and sub-{!hist_lo}
    values land in bucket 0; overflow clamps to the last bucket). *)

val bucket_lower_bound : int -> float
(** Exclusive lower bound of bucket [i]; 0 for bucket 0. *)

val bucket_upper_bound : int -> float
(** Inclusive upper bound of bucket [i]; [infinity] for the last. *)

val histogram : t -> string -> histogram
(** Find-or-create; fresh histograms are empty. *)

val observe : histogram -> float -> unit
(** Record one observation: O(1), allocation-free. *)

val observe_named : t -> string -> float -> unit
(** [observe_named t name v] = [observe (histogram t name) v] — for
    cold call sites. *)

val h_count : histogram -> int
val h_sum : histogram -> float

val quantile : histogram -> float -> float
(** [quantile h q] for [q] in [0, 1] (clamped); [nan] when empty. *)

val reset : t -> unit
(** Zero every counter, gauge and histogram (handles stay valid). *)

val observe_gc : t -> unit
(** Publish process-lifetime [Gc.quick_stat] readings as gauges:
    [gc_minor_words], [gc_promoted_words], [gc_major_words],
    [gc_minor_collections], [gc_major_collections], [gc_compactions],
    [gc_heap_words].  Gauges, so repeated publication is idempotent;
    per-phase deltas live in {!Phases}. *)

(** {1 Snapshots} *)

type hist_snapshot = {
  count : int;
  sum : float;
  min : float;  (** [nan] when empty *)
  max : float;  (** [nan] when empty *)
  p50 : float;  (** [nan] when empty *)
  p90 : float;
  p99 : float;
  buckets : (int * int) list;
      (** [(bucket index, count)], ascending, non-empty buckets only *)
}

type snapshot = {
  counters : (string * int) list;   (** sorted by name *)
  gauges : (string * float) list;   (** sorted by name *)
  histograms : (string * hist_snapshot) list;  (** sorted by name *)
}

val snapshot : t -> snapshot

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter values and histogram buckets become [after - before] (0
    floor for cells that vanished across a reset); gauges keep their
    [after] reading.  Diffed histogram quantiles are recomputed from the
    diffed buckets; min/max keep the [after] extremes (the region's own
    extremes are unrecoverable from cumulative snapshots). *)

val merge_histogram : t -> string -> hist_snapshot -> unit
(** Fold a snapshot histogram into a live registry — the coordinator's
    post-join shard merge.  Bucket counts are integer sums, so merging
    shards in index order is bit-identical across pool sizes.  Empty
    snapshots are a no-op. *)

val find_counter : snapshot -> string -> int option
val find_gauge : snapshot -> string -> float option
val find_histogram : snapshot -> string -> hist_snapshot option

val to_json : snapshot -> Json.t
(** [{"counters":{...},"gauges":{...},"histograms":{...}}]; histogram
    entries carry count/sum/min/max/p50/p90/p99 (empty quantiles render
    as [null]). *)

val to_prometheus : ?namespace:string -> snapshot -> string
(** Prometheus text exposition format; metric names are prefixed with
    [namespace] (default ["tfapprox"]) and sanitized to [[a-zA-Z0-9_]].
    Every family gets [# HELP] (carrying the raw name) and [# TYPE]
    lines; distinct raw names that sanitize to the same exposition name
    (e.g. [lut.hits] vs [lut/hits]) are deduped deterministically with
    [_2], [_3], ... suffixes in sorted raw-name order.  Histograms emit
    cumulative [_bucket{le="..."}] samples plus [+Inf], [_sum] and
    [_count]. *)

val pp : Format.formatter -> snapshot -> unit
