type t = Circuit.signal array

let input c label n =
  Array.init n (fun i -> Circuit.input c (Printf.sprintf "%s_%d" label i))

let of_int c ~width v =
  Array.init width (fun i -> Circuit.const c ((v lsr i) land 1 = 1))

let output c label bus =
  Array.iteri
    (fun i s -> Circuit.output c (Printf.sprintf "%s_%d" label i) s)
    bus

let width = Array.length

let zero_extend c bus w =
  if width bus >= w then bus
  else
    Array.init w (fun i ->
        if i < width bus then bus.(i) else Circuit.const c false)

let sign_extend c bus w =
  if width bus = 0 then invalid_arg "Bus.sign_extend: empty bus";
  if width bus >= w then bus
  else
    let msb = bus.(width bus - 1) in
    ignore c;
    Array.init w (fun i -> if i < width bus then bus.(i) else msb)

let slice bus ~lo ~hi =
  if lo < 0 || hi >= width bus || lo > hi then
    invalid_arg "Bus.slice: bad range";
  Array.sub bus lo (hi - lo + 1)

let concat_lsb_first parts = Array.concat parts
