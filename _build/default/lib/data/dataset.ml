type t = { images : Ax_tensor.Tensor.t; labels : int array }

let size t =
  let n = (Ax_tensor.Tensor.shape t.images).Ax_tensor.Shape.n in
  if n <> Array.length t.labels then
    invalid_arg "Dataset.size: image/label count mismatch";
  n
