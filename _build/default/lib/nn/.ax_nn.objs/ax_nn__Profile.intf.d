lib/nn/profile.mli: Format
