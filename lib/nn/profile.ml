module Phases = Ax_obs.Phases
module Metrics = Ax_obs.Metrics
module Trace = Ax_obs.Trace

type phase = Init | Quantization | Lut | Other

let phase_name = function
  | Init -> "init"
  | Quantization -> "quantization"
  | Lut -> "lut"
  | Other -> "other"

type t = {
  phases : Phases.t;
  metrics : Metrics.t;
  lookups : Metrics.counter;
  mac_counter : Metrics.counter;
  mutable tracer : Trace.t option;
}

let create ?trace () =
  let metrics = Metrics.create () in
  {
    phases = Phases.create ();
    metrics;
    lookups = Metrics.counter metrics "lut_lookups";
    mac_counter = Metrics.counter metrics "macs";
    tracer = trace;
  }

let reset t =
  Phases.reset t.phases;
  Metrics.reset t.metrics;
  Option.iter Trace.clear t.tracer

let add_seconds t phase s = Phases.add_seconds t.phases (phase_name phase) s
let time t phase f = Phases.time t.phases (phase_name phase) f
let count_lut_lookups t n = Metrics.incr t.lookups n
let count_macs t n = Metrics.incr t.mac_counter n
let count t name n = Metrics.add t.metrics name n
let observe t name v = Metrics.observe_named t.metrics name v
let seconds t phase = Phases.seconds t.phases (phase_name phase)
let phases t = t.phases

let publish_gc t =
  Phases.publish_gc t.phases t.metrics;
  Metrics.observe_gc t.metrics

let total_seconds t =
  seconds t Init +. seconds t Quantization +. seconds t Lut +. seconds t Other

let lut_lookups t = Metrics.value t.lookups
let macs t = Metrics.value t.mac_counter
let metrics t = t.metrics
let trace t = t.tracer
let set_trace t tracer = t.tracer <- Some tracer

let span t ~name ?(attrs = []) f =
  match t.tracer with
  | Some tracer -> Trace.with_span tracer ~name ~attrs f
  | None -> f ()

type breakdown = {
  init_pct : float;
  quantization_pct : float;
  lut_pct : float;
  other_pct : float;
}

let breakdown t =
  (* add_seconds accepts refunds, so a phase total can go negative;
     shares are computed over the clamped partition. *)
  let clamped phase = Float.max 0. (seconds t phase) in
  let init = clamped Init
  and quant = clamped Quantization
  and lut = clamped Lut
  and other = clamped Other in
  let total = init +. quant +. lut +. other in
  if total <= 0. then
    { init_pct = 0.; quantization_pct = 0.; lut_pct = 0.; other_pct = 0. }
  else
    {
      init_pct = 100. *. init /. total;
      quantization_pct = 100. *. quant /. total;
      lut_pct = 100. *. lut /. total;
      other_pct = 100. *. other /. total;
    }

let pp_breakdown ppf b =
  Format.fprintf ppf "init=%.1f%% quant=%.1f%% lut=%.1f%% other=%.1f%%"
    b.init_pct b.quantization_pct b.lut_pct b.other_pct
