(** Fault-injection campaign runner.

    A campaign takes a (typically approximate) model plus a labelled
    dataset and measures how injected memory faults ({!Fault}) move
    top-1 accuracy: one baseline inference, then one inference per
    trial, each trial a named list of faults.  Trials fan out across the
    persistent {!Ax_pool.Pool} and all accounting is done on the
    coordinating domain in trial order, so a report is a pure function
    of [(spec, trials)] — bit-identical for every domain count, the
    property the determinism tests pin down. *)

type trial = { label : string; faults : Fault.t list }

val zero_fault_trial : trial
(** The control row: no faults, labelled ["fault_free"].  Its row must
    reproduce the baseline bit-for-bit (zero degradation, zero flips). *)

type spec = {
  graph : Ax_nn.Graph.t;     (** model under test, usually transformed *)
  dataset : Ax_data.Cifar.t; (** images + labels the accuracy is over *)
  backend : Tfapprox.Emulator.backend;
}

type row = {
  label : string;
  fault_count : int;
  accuracy : float;     (** top-1 accuracy under fault, in [0, 1] *)
  degradation : float;  (** baseline accuracy minus [accuracy] *)
  top1_flips : int;     (** predictions that changed vs the baseline *)
}

type report = { baseline_accuracy : float; images : int; rows : row list }

(** {1 Trial builders}

    All seeded and pure — the same arguments always denote the same
    fault sites. *)

val lut_bit_trials :
  ?kind:Fault.kind -> seed:int -> sites:int -> bits:int list -> unit ->
  trial list
(** One trial per entry of [bits]: [sites] uniformly chosen truth-table
    entries, all faulted at that bit position (default {!Fault.Bit_flip})
    — the "which product bit matters" sensitivity sweep.  Raises
    [Invalid_argument] on a bit outside 0..15. *)

val lut_rate_trials : seed:int -> rates:float list -> trial list
(** One trial per rate: every table bit flipped independently with that
    probability (so a trial's fault count is ~[rate * entries * 16]). *)

val weight_trials :
  seed:int -> trials:int -> sites:int -> bit:int -> Ax_nn.Graph.t ->
  trial list
(** [trials] independent repetitions of [sites] uniform weight upsets at
    float32 bit [bit]. *)

val activation_trials :
  seed:int -> trials:int -> sites:int -> bit:int -> Ax_nn.Graph.t ->
  trial list
(** Like {!weight_trials} for persistent activation-buffer cells. *)

(** {1 Running} *)

val run :
  ?metrics:Ax_obs.Metrics.t ->
  ?profile:Ax_nn.Profile.t ->
  ?domains:int ->
  spec ->
  trials:trial list ->
  report
(** Execute the campaign.  [domains] (default: the process-wide pool
    size) parallelises {e across trials}; each trial's inference runs
    un-sharded inside its pool task.  With [profile] the campaign is
    wrapped in a ["resilience.campaign"] span; with [metrics] the
    [resilience_trials], [resilience_faults_injected] and
    [resilience_top1_flips] counters are bumped — both touched only on
    the coordinating domain.  Raises [Invalid_argument] on an empty
    dataset. *)

(** {1 Rendering} *)

val csv : report -> string
(** Header plus a leading ["baseline"] row, then one row per trial — the
    format the sensitivity tables in EXPERIMENTS.md are generated
    from. *)

val to_json : report -> Ax_obs.Json.t

val pp : Format.formatter -> report -> unit
(** Human-readable table (accuracies in percent). *)
