lib/nn/conv_direct.mli: Ax_quant Ax_tensor Axconv Conv_spec Filter Profile
