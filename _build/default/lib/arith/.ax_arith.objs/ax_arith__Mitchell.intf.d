lib/arith/mitchell.mli:
