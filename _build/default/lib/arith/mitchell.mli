(** Mitchell's logarithmic multiplier (1962).

    Approximates [a*b] as [antilog2 (log2 a + log2 b)] where the
    logarithm of [x = 2^l * (1 + f)] is linearly interpolated as
    [l + f].  Implemented in fixed point so results are deterministic
    across platforms.  The classic design always under-estimates. *)

val multiply : int -> int -> int
(** [multiply a b] for unsigned operands; [0] when either operand is 0. *)

val log2_fixed : int -> int
(** Fixed-point ([{!fraction_bits}] fractional bits) linear-interpolated
    base-2 logarithm of a positive integer (exposed for tests). *)

val fraction_bits : int
