let sanitize label =
  String.map
    (fun ch ->
      match ch with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> ch
      | _ -> '_')
    label

let wire_name c i =
  match Circuit.gate_at c i with
  | Gate.Input s -> sanitize s
  | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.And2 _
  | Gate.Or2 _ | Gate.Xor2 _ | Gate.Nand2 _ | Gate.Nor2 _ | Gate.Xnor2 _ ->
    Printf.sprintf "n%d" i

let to_buffer c =
  let buf = Buffer.create 4096 in
  let ins = Circuit.inputs c and outs = Circuit.outputs c in
  let ports =
    List.map (fun (l, _) -> sanitize l) ins
    @ List.map (fun (l, _) -> sanitize l) outs
  in
  Buffer.add_string buf
    (Printf.sprintf "module %s(%s);\n" (sanitize (Circuit.name c))
       (String.concat ", " ports));
  List.iter
    (fun (l, _) -> Buffer.add_string buf (Printf.sprintf "  input %s;\n" (sanitize l)))
    ins;
  List.iter
    (fun (l, _) -> Buffer.add_string buf (Printf.sprintf "  output %s;\n" (sanitize l)))
    outs;
  let wname i = wire_name c i in
  Circuit.iter_gates c (fun i g ->
      match g with
      | Gate.Input _ -> ()
      | Gate.Const _ | Gate.Buf _ | Gate.Not _ | Gate.And2 _ | Gate.Or2 _
      | Gate.Xor2 _ | Gate.Nand2 _ | Gate.Nor2 _ | Gate.Xnor2 _ ->
        Buffer.add_string buf (Printf.sprintf "  wire %s;\n" (wname i)));
  Circuit.iter_gates c (fun i g ->
      let assign rhs =
        Buffer.add_string buf
          (Printf.sprintf "  assign %s = %s;\n" (wname i) rhs)
      in
      match g with
      | Gate.Input _ -> ()
      | Gate.Const b -> assign (if b then "1'b1" else "1'b0")
      | Gate.Buf a -> assign (wname a)
      | Gate.Not a -> assign (Printf.sprintf "~%s" (wname a))
      | Gate.And2 (a, b) -> assign (Printf.sprintf "%s & %s" (wname a) (wname b))
      | Gate.Or2 (a, b) -> assign (Printf.sprintf "%s | %s" (wname a) (wname b))
      | Gate.Xor2 (a, b) -> assign (Printf.sprintf "%s ^ %s" (wname a) (wname b))
      | Gate.Nand2 (a, b) ->
        assign (Printf.sprintf "~(%s & %s)" (wname a) (wname b))
      | Gate.Nor2 (a, b) ->
        assign (Printf.sprintf "~(%s | %s)" (wname a) (wname b))
      | Gate.Xnor2 (a, b) ->
        assign (Printf.sprintf "~(%s ^ %s)" (wname a) (wname b)));
  List.iter
    (fun (l, s) ->
      Buffer.add_string buf
        (Printf.sprintf "  assign %s = %s;\n" (sanitize l)
           (wname (Circuit.index s))))
    outs;
  Buffer.add_string buf "endmodule\n";
  buf

let to_string c = Buffer.contents (to_buffer c)
let to_channel oc c = Buffer.output_buffer oc (to_buffer c)

(* Cheap deterministic xorshift for vector generation. *)
let next_state s =
  let s = s lxor (s lsl 13) in
  let s = s lxor (s lsr 7) in
  (s lxor (s lsl 17)) land max_int

let testbench ?(vectors = 64) ?(seed = 1) ~reference m =
  if vectors <= 0 then invalid_arg "Verilog.testbench: vectors";
  let c = m.Multipliers.circuit in
  let wa = m.Multipliers.width_a and wb = m.Multipliers.width_b in
  let wp = m.Multipliers.product_bits in
  let name = sanitize (Circuit.name c) in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "`timescale 1ns/1ps\n";
  add "module %s_tb;\n" name;
  add "  reg [%d:0] a;\n  reg [%d:0] b;\n  wire [%d:0] p;\n" (wa - 1)
    (wb - 1) (wp - 1);
  add "  integer errors;\n";
  let a_ports =
    String.concat ", "
      (List.init wa (fun i -> Printf.sprintf ".a_%d(a[%d])" i i))
  in
  let b_ports =
    String.concat ", "
      (List.init wb (fun i -> Printf.sprintf ".b_%d(b[%d])" i i))
  in
  let p_ports =
    String.concat ", "
      (List.init wp (fun i -> Printf.sprintf ".p_%d(p[%d])" i i))
  in
  add "  %s dut (%s, %s, %s);\n" name a_ports b_ports p_ports;
  add "  task check(input [%d:0] av, input [%d:0] bv, input [%d:0] expect_v);\n"
    (wa - 1) (wb - 1) (wp - 1);
  add "    begin\n      a = av; b = bv; #1;\n";
  add "      if (p !== expect_v) begin\n";
  add "        errors = errors + 1;\n";
  add
    "        $display(\"FAIL: %%0d * %%0d = %%0d (expected %%0d)\", av, bv, p, expect_v);\n";
  add "      end\n    end\n  endtask\n";
  add "  initial begin\n    errors = 0;\n";
  let state = ref (if seed = 0 then 0x2545F491 else seed) in
  for _ = 1 to vectors do
    state := next_state !state;
    let a = !state land ((1 lsl wa) - 1) in
    state := next_state !state;
    let b = !state land ((1 lsl wb) - 1) in
    add "    check(%d'd%d, %d'd%d, %d'd%d);\n" wa a wb b wp (reference a b)
  done;
  add "    if (errors == 0) $display(\"PASS: %d vectors\");\n" vectors;
  add "    else $display(\"%%0d ERRORS\", errors);\n";
  add "    $finish;\n  end\nendmodule\n";
  Buffer.contents buf
