let pruned ~bits ~keep a b =
  let acc = ref 0 in
  for i = 0 to bits - 1 do
    if (a lsr i) land 1 = 1 then
      for j = 0 to bits - 1 do
        if (b lsr j) land 1 = 1 && keep i j then
          acc := !acc + (1 lsl (i + j))
      done
  done;
  !acc land ((1 lsl (2 * bits)) - 1)

let truncated ~bits ~cut a b = pruned ~bits ~keep:(fun i j -> i + j >= cut) a b

let broken_array ~bits ~hbl ~vbl a b =
  pruned ~bits ~keep:(fun i j -> i + j >= vbl && j >= hbl) a b
