lib/arith/drum.ml:
