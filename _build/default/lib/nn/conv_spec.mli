(** Static description of one 2D convolution: geometry shared by the
    float reference, the CPU-direct baseline, the GEMM emulator and the
    GPU cost model. *)

type padding = Same | Valid

type t = { stride : int; dilation : int; padding : padding }

val default : t
(** stride 1, dilation 1, [Same] padding. *)

val make : ?stride:int -> ?dilation:int -> ?padding:padding -> unit -> t

val output_shape :
  t -> Ax_tensor.Shape.t -> Filter.t -> Ax_tensor.Shape.t
(** Shape of the convolution result for a given input and filter bank.
    Raises [Invalid_argument] when the input channel count does not
    match the filter. *)

val padding_to_poly : padding -> [ `Same | `Valid ]

val macs : t -> Ax_tensor.Shape.t -> Filter.t -> int
(** Total 8-bit multiplications for the whole batch (the paper's
    "# MACs" axis of Table I counts per-image MACs; divide by N). *)
