(* Vector clocks and the FastTrack-style per-cell access state.  Pure
   and storage-agnostic: the record-mode detector (Race, over real
   systhreads/domains) and the deterministic explorer (Explore, over
   cooperative threads) both drive the same epoch algebra, so a race is
   defined identically in both worlds. *)

module Imap = Map.Make (Int)

type t = int Imap.t

let empty = Imap.empty
let get vc tid = match Imap.find_opt tid vc with Some n -> n | None -> 0
let tick vc tid = Imap.add tid (get vc tid + 1) vc

let join a b =
  Imap.union (fun _ x y -> Some (max x y)) a b

(* An epoch (tid, time) happened-before the observer iff the observer's
   clock has advanced at least to [time] in component [tid]. *)
let epoch_leq ~tid ~time vc = time <= get vc tid

type access = Read | Write

let access_to_string = function Read -> "read" | Write -> "write"

(* FastTrack cell state: the last write epoch plus the set of reads
   since that write.  Reads are kept as a full map rather than the
   FastTrack single-epoch fast path — cells are annotations on a
   handful of shared fields, not every memory access, so clarity wins
   over the O(1) trick. *)
type cell = {
  mutable write : (int * int) option;  (** last write epoch (tid, time) *)
  mutable reads : int Imap.t;  (** tid -> time of reads since that write *)
}

let cell () = { write = None; reads = Imap.empty }

type race = {
  access : access;  (** the access that completed the race *)
  tid : int;
  prev_access : access;
  prev_tid : int;
}

let race_to_string r =
  Printf.sprintf "%s by thread %d races with earlier %s by thread %d"
    (access_to_string r.access) r.tid
    (access_to_string r.prev_access)
    r.prev_tid

(* Check one access and fold it into the cell state.  [clock] is the
   accessing thread's vector clock; the access's own epoch is
   [(tid, get clock tid)].  Returns the first race found (if any); the
   state is updated either way so one broken pair does not cascade into
   a finding per subsequent access. *)
let access cell ~tid ~clock kind =
  let stale_write =
    match cell.write with
    | Some (wt, wk) when wt <> tid && not (epoch_leq ~tid:wt ~time:wk clock) ->
      Some (wt, Write)
    | _ -> None
  in
  let race =
    match kind with
    | Read -> (
      match stale_write with
      | Some (pt, pa) -> Some { access = Read; tid; prev_access = pa; prev_tid = pt }
      | None -> None)
    | Write -> (
      match stale_write with
      | Some (pt, pa) ->
        Some { access = Write; tid; prev_access = pa; prev_tid = pt }
      | None -> (
        (* write-read race: any read since the last write that the
           writer has not observed *)
        let stale_read =
          Imap.fold
            (fun rt rk acc ->
              match acc with
              | Some _ -> acc
              | None ->
                if rt <> tid && not (epoch_leq ~tid:rt ~time:rk clock) then
                  Some rt
                else None)
            cell.reads None
        in
        match stale_read with
        | Some rt -> Some { access = Write; tid; prev_access = Read; prev_tid = rt }
        | None -> None))
  in
  (match kind with
  | Read -> cell.reads <- Imap.add tid (get clock tid) cell.reads
  | Write ->
    cell.write <- Some (tid, get clock tid);
    cell.reads <- Imap.empty);
  race
