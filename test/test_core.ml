(* The tfapprox facade: emulator pipeline, experiment drivers, report
   rendering. *)

module Emulator = Tfapprox.Emulator
module Experiments = Tfapprox.Experiments
module Report = Tfapprox.Report
module Graph = Ax_nn.Graph
module Profile = Ax_nn.Profile
module Resnet = Ax_models.Resnet
module Cifar = Ax_data.Cifar
module Tensor = Ax_tensor.Tensor
module Device = Ax_gpusim.Device

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_lut_of_multiplier () =
  let lut = Emulator.lut_of_multiplier "mul8u_exact" in
  check_int "exact lut" 36 (Ax_arith.Lut.lookup_value lut 4 9);
  match Emulator.lut_of_multiplier "typo" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "unknown multiplier must fail"

let test_approximate_model_arguments () =
  let g = Resnet.build ~depth:8 () in
  Alcotest.check_raises "neither"
    (Invalid_argument "Emulator.approximate_model: need a multiplier or a lut")
    (fun () -> ignore (Emulator.approximate_model g));
  Alcotest.check_raises "both"
    (Invalid_argument
       "Emulator.approximate_model: both multiplier and lut given")
    (fun () ->
      ignore
        (Emulator.approximate_model ~multiplier:"mul8u_exact"
           ~lut:(Emulator.lut_of_multiplier "mul8u_exact") g))

let test_full_pipeline_accuracy_and_fidelity () =
  let g = Resnet.build ~depth:8 () in
  let dataset = Cifar.generate ~n:10 () in
  let reference =
    Emulator.predictions g ~backend:Emulator.Cpu_accurate dataset.Cifar.images
  in
  check_int "ten predictions" 10 (Array.length reference);
  (* Exact LUT: fidelity should be at or near 1 (only quantization
     noise can flip a prediction). *)
  let approx = Emulator.approximate_model ~multiplier:"mul8s_exact" g in
  let preds =
    Emulator.predictions approx ~backend:Emulator.Cpu_gemm dataset.Cifar.images
  in
  let fidelity = Emulator.agreement reference preds in
  check_bool (Printf.sprintf "high fidelity (%.2f)" fidelity) true
    (fidelity >= 0.8);
  (* A brutal multiplier should disturb predictions more than exact. *)
  let rough = Emulator.approximate_model ~multiplier:"mul8s_mitchell" g in
  let rough_preds =
    Emulator.predictions rough ~backend:Emulator.Cpu_gemm dataset.Cifar.images
  in
  check_bool "agreement defined" true
    (Emulator.agreement reference rough_preds <= 1.)

let test_accuracy_bounds () =
  let g = Resnet.build ~depth:8 () in
  let dataset = Cifar.generate ~n:10 () in
  let a = Emulator.accuracy g ~backend:Emulator.Cpu_accurate dataset in
  check_bool "accuracy in [0,1]" true (a >= 0. && a <= 1.)

let test_agreement_validation () =
  Alcotest.check_raises "length" (Invalid_argument "Emulator.agreement: length mismatch")
    (fun () -> ignore (Emulator.agreement [| 1 |] [| 1; 2 |]));
  Alcotest.(check (float 1e-9)) "identical" 1. (Emulator.agreement [| 1; 2 |] [| 1; 2 |]);
  Alcotest.(check (float 1e-9)) "half" 0.5 (Emulator.agreement [| 1; 2 |] [| 1; 3 |])

(* --- experiments --- *)

let tiny_table1 () =
  Experiments.table1 ~depths:[ 8 ] ~images_measured:1 ~dataset_images:1000 ()

let test_table1_row_sanity () =
  match tiny_table1 () with
  | [ r ] ->
    check_int "depth" 8 r.Experiments.depth;
    check_int "layers" 7 r.Experiments.layers;
    check_bool "cpu approx slower than accurate" true
      (r.Experiments.cpu_approx.Experiments.t_comp
       > r.Experiments.cpu_accurate.Experiments.t_comp);
    check_bool "gpu approx slower than gpu accurate" true
      (r.Experiments.gpu_approx.Experiments.t_comp
       > r.Experiments.gpu_accurate.Experiments.t_comp);
    check_bool "gpu much faster than cpu for emulation" true
      (r.Experiments.speedup_approx > 10.);
    check_bool "overheads positive" true
      (r.Experiments.approx_overhead_cpu > 0.
      && r.Experiments.approx_overhead_gpu > 0.);
    check_bool "hit rate sane" true
      (r.Experiments.lut_hit_rate > 0.3 && r.Experiments.lut_hit_rate <= 1.)
  | rows -> Alcotest.failf "expected 1 row, got %d" (List.length rows)

let test_table1_speedup_grows_with_depth () =
  (* Table I: the approximate speedup grows monotonically with depth
     (init amortises).  Use the model-side times only, via two depths. *)
  match
    Experiments.table1 ~depths:[ 8; 20 ] ~images_measured:1
      ~dataset_images:10_000 ()
  with
  | [ r8; r20 ] ->
    check_bool "monotone gpu t_comp" true
      (r20.Experiments.gpu_approx.Experiments.t_comp
       > r8.Experiments.gpu_approx.Experiments.t_comp)
  | _ -> Alcotest.fail "expected 2 rows"

let test_fig2_breakdowns () =
  match Experiments.fig2 ~depths:[ 8 ] ~images_measured:1 () with
  | [ r ] ->
    let sum (b : Profile.breakdown) =
      b.Profile.init_pct +. b.Profile.quantization_pct +. b.Profile.lut_pct
      +. b.Profile.other_pct
    in
    check_bool "cpu sums to 100" true (abs_float (sum r.Experiments.cpu -. 100.) < 1e-6);
    check_bool "gpu sums to 100" true (abs_float (sum r.Experiments.gpu -. 100.) < 1e-6);
    (* Fig. 2 shapes: quantization dominates the CPU baseline; the GPU
       pipeline spends a visible share in LUT lookups. *)
    check_bool "cpu quantization-dominated" true
      (r.Experiments.cpu.Profile.quantization_pct > 50.);
    check_bool "gpu lut share visible" true
      (r.Experiments.gpu.Profile.lut_pct > 5.)
  | _ -> Alcotest.fail "expected 1 row"

let test_accuracy_sweep_ranks_exact_first () =
  let rows =
    Experiments.accuracy_sweep ~depth:8 ~images:10
      ~multipliers:[ "mul8s_exact"; "mul8s_mitchell" ] ()
  in
  match rows with
  | [ exact; mitchell ] ->
    check_bool "exact fidelity >= mitchell fidelity" true
      (exact.Experiments.fidelity >= mitchell.Experiments.fidelity);
    check_bool "exact mae is 0" true (exact.Experiments.lut_mae = 0.);
    check_bool "mitchell mae positive" true
      (mitchell.Experiments.lut_mae > 0.)
  | _ -> Alcotest.fail "expected 2 rows"

let test_measured_hit_rate () =
  let g = Resnet.build ~depth:8 () in
  let sample = (Cifar.generate ~n:2 ()).Cifar.images in
  let rate =
    Experiments.measured_lut_hit_rate ~device:Device.gtx_1080 ~graph:g ~sample
      ()
  in
  check_bool (Printf.sprintf "hit rate %.3f plausible" rate) true
    (rate > 0.3 && rate <= 1.)

let test_estimate_gpu_time () =
  let g = Resnet.build ~depth:8 () in
  let input = Resnet.input_shape ~batch:1 in
  let kernels, init =
    Emulator.estimate_gpu_time ~graph:g ~input ~images:10_000 ()
  in
  (match kernels with
  | `Accurate phases ->
    check_bool "accurate pipeline positive" true
      (Ax_gpusim.Cost.total phases > 0.)
  | `Approximate _ -> Alcotest.fail "plain graph costed as approximate");
  check_bool "init includes context setup" true (init.Ax_gpusim.Cost.init_s > 1.);
  let approx = Emulator.approximate_model ~multiplier:"mul8u_trunc8" g in
  let kernels, _ =
    Emulator.estimate_gpu_time ~graph:approx ~input ~images:10_000 ()
  in
  match kernels with
  | `Approximate phases ->
    check_bool "approx pipeline has LUT time" true
      (phases.Ax_gpusim.Cost.lut_s > 0.)
  | `Accurate _ -> Alcotest.fail "transformed graph costed as accurate"

(* --- calibration --- *)

let test_run_all_exposes_every_node () =
  let g = Resnet.build ~depth:8 () in
  let sample = (Cifar.generate ~n:2 ()).Cifar.images in
  let values = Ax_nn.Exec.run_all g ~input:sample in
  check_int "one value per node" (Graph.size g) (Array.length values);
  match values.(Graph.output g) with
  | Ax_nn.Exec.Tensor t ->
    check_int "output classes" 10 (Tensor.shape t).Ax_tensor.Shape.c
  | Ax_nn.Exec.Scalar _ -> Alcotest.fail "output is a tensor"

let test_bias_correct_reduces_systematic_error () =
  (* Mitchell's multiplier always under-estimates; bias calibration must
     bring the network output closer to the accurate model. *)
  let g = Resnet.build ~depth:8 () in
  let approx = Emulator.approximate_model ~multiplier:"mul8s_mitchell" g in
  let sample = (Cifar.generate ~n:4 ()).Cifar.images in
  let fixed = Tfapprox.Calibrate.bias_correct ~sample approx in
  let test = (Cifar.generate ~seed:99 ~n:6 ()).Cifar.images in
  let want = Emulator.run ~backend:Emulator.Cpu_accurate g test in
  let before =
    Tensor.max_abs_diff want (Emulator.run ~backend:Emulator.Cpu_gemm approx test)
  in
  let after =
    Tensor.max_abs_diff want (Emulator.run ~backend:Emulator.Cpu_gemm fixed test)
  in
  check_bool
    (Printf.sprintf "calibration helps (%.4f -> %.4f)" before after)
    true (after < before)

let test_bias_correct_noop_on_exact_lut () =
  (* With the exact LUT there is no systematic error to absorb: the
     corrections must be (numerically) zero. *)
  let g = Resnet.build ~depth:8 () in
  let approx = Emulator.approximate_model ~multiplier:"mul8s_exact" g in
  let sample = (Cifar.generate ~n:2 ()).Cifar.images in
  let fixed = Tfapprox.Calibrate.bias_correct ~sample approx in
  let test = (Cifar.generate ~seed:31 ~n:4 ()).Cifar.images in
  let a = Emulator.run ~backend:Emulator.Cpu_gemm approx test in
  let b = Emulator.run ~backend:Emulator.Cpu_gemm fixed test in
  check_bool "exact LUT needs no correction" true
    (Tensor.max_abs_diff a b < 1e-6)

let test_bias_correct_preserves_plain_graphs () =
  let g = Resnet.build ~depth:8 () in
  let sample = (Cifar.generate ~n:2 ()).Cifar.images in
  let rebuilt = Tfapprox.Calibrate.bias_correct ~sample g in
  let test = (Cifar.generate ~seed:5 ~n:2 ()).Cifar.images in
  let a = Emulator.run ~backend:Emulator.Cpu_accurate g test in
  let b = Emulator.run ~backend:Emulator.Cpu_accurate rebuilt test in
  check_bool "no Ax layers: graph unchanged" true
    (Tensor.max_abs_diff a b = 0.)

let test_mean_channel_error_reports_layers () =
  let g = Resnet.build ~depth:8 () in
  let approx = Emulator.approximate_model ~multiplier:"mul8s_trunc6" g in
  let sample = (Cifar.generate ~n:2 ()).Cifar.images in
  let errs = Tfapprox.Calibrate.mean_channel_error ~sample approx in
  check_int "one entry per conv layer" 7 (List.length errs);
  List.iter
    (fun (name, e) ->
      check_bool (Printf.sprintf "%s finite" name) true (Float.is_finite e))
    errs

(* --- report rendering --- *)

let render f rows =
  let buf = Buffer.create 256 in
  let ppf = Format.formatter_of_buffer buf in
  f ppf rows;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_report_table1 () =
  let out = render Report.print_table1 (tiny_table1 ()) in
  check_bool "mentions ResNet-8" true (contains out "ResNet-8");
  check_bool "mentions speedup header" true (contains out "Spd apx");
  check_bool "t_init + t_comp form" true (contains out " + ")

let test_report_fig2 () =
  let rows = Experiments.fig2 ~depths:[ 8 ] ~images_measured:1 () in
  let out = render Report.print_fig2 rows in
  check_bool "has CPU row" true (contains out "CPU:");
  check_bool "has GPU row" true (contains out "GPU:");
  check_bool "has LUT column" true (contains out "LUT")

let test_csv_outputs () =
  let rows = tiny_table1 () in
  let csv = Report.table1_csv rows in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)
  in
  check_int "header + one row" 2 (List.length lines);
  check_bool "header fields" true
    (contains (List.hd lines) "speedup_apx,lut_hit_rate");
  check_bool "row names the dnn" true (contains csv "ResNet-8,7,");
  let fig2 = Experiments.fig2 ~depths:[ 8 ] ~images_measured:1 () in
  let csv2 = Report.fig2_csv fig2 in
  let lines2 =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' csv2)
  in
  check_int "header + cpu + gpu" 3 (List.length lines2);
  check_bool "cpu row" true (contains csv2 "ResNet-8,cpu,");
  check_bool "gpu row" true (contains csv2 "ResNet-8,gpu,")

(* Golden outputs: hand-built rows pin the exact CSV byte layout, so a
   format change has to be deliberate. *)
let test_table1_csv_golden () =
  let t init comp = { Experiments.t_init = init; t_comp = comp } in
  let row =
    {
      Experiments.depth = 8;
      layers = 7;
      macs_per_image = 12_345_678;
      cpu_accurate = t 0.5 120.25;
      gpu_accurate = t 0.125 2.5;
      cpu_approx = t 0.75 150.5;
      gpu_approx = t 0.25 3.125;
      approx_overhead_cpu = 30.5;
      approx_overhead_gpu = 0.75;
      speedup_accurate = 46.0;
      speedup_approx = 45.5;
      lut_hit_rate = 0.9875;
    }
  in
  let expected =
    "dnn,layers,macs_per_image,cpu_acc_init,cpu_acc_comp,gpu_acc_init,gpu_acc_comp,cpu_apx_init,cpu_apx_comp,gpu_apx_init,gpu_apx_comp,overhead_cpu,overhead_gpu,speedup_acc,speedup_apx,lut_hit_rate\n\
     ResNet-8,7,12345678,0.5000,120.2500,0.1250,2.5000,0.7500,150.5000,0.2500,3.1250,30.5000,0.7500,46.00,45.50,0.9875\n"
  in
  Alcotest.(check string) "table1 csv golden" expected
    (Report.table1_csv [ row ])

let test_fig2_csv_golden () =
  let breakdown i q l o =
    {
      Ax_nn.Profile.init_pct = i;
      quantization_pct = q;
      lut_pct = l;
      other_pct = o;
    }
  in
  let row =
    {
      Experiments.config = { Experiments.label = "ResNet-8"; depth = 8 };
      cpu = breakdown 10. 20. 30. 40.;
      gpu = breakdown 5.25 15.75 60.5 18.5;
    }
  in
  let expected =
    "config,implementation,init,quantization,lut,rest\n\
     ResNet-8,cpu,10.00,20.00,30.00,40.00\n\
     ResNet-8,gpu,5.25,15.75,60.50,18.50\n"
  in
  Alcotest.(check string) "fig2 csv golden" expected (Report.fig2_csv [ row ])

let test_report_seconds () =
  Alcotest.(check string) "small" "0.0010 s" (Report.seconds 0.001);
  Alcotest.(check string) "medium" "5.00 s" (Report.seconds 5.);
  Alcotest.(check string) "large" "3796 s" (Report.seconds 3796.)

let () =
  Alcotest.run "tfapprox_core"
    [
      ( "emulator",
        [
          Alcotest.test_case "lut_of_multiplier" `Quick test_lut_of_multiplier;
          Alcotest.test_case "approximate_model arguments" `Quick
            test_approximate_model_arguments;
          Alcotest.test_case "pipeline accuracy/fidelity" `Quick
            test_full_pipeline_accuracy_and_fidelity;
          Alcotest.test_case "accuracy bounds" `Quick test_accuracy_bounds;
          Alcotest.test_case "agreement validation" `Quick
            test_agreement_validation;
        ] );
      ( "experiments",
        [
          Alcotest.test_case "table1 row sanity" `Quick test_table1_row_sanity;
          Alcotest.test_case "gpu time grows with depth" `Quick
            test_table1_speedup_grows_with_depth;
          Alcotest.test_case "fig2 breakdowns" `Quick test_fig2_breakdowns;
          Alcotest.test_case "accuracy sweep" `Quick
            test_accuracy_sweep_ranks_exact_first;
          Alcotest.test_case "measured hit rate" `Quick test_measured_hit_rate;
          Alcotest.test_case "estimate_gpu_time" `Quick test_estimate_gpu_time;
        ] );
      ( "calibrate",
        [
          Alcotest.test_case "run_all exposes nodes" `Quick
            test_run_all_exposes_every_node;
          Alcotest.test_case "reduces systematic error" `Quick
            test_bias_correct_reduces_systematic_error;
          Alcotest.test_case "noop on exact LUT" `Quick
            test_bias_correct_noop_on_exact_lut;
          Alcotest.test_case "plain graphs preserved" `Quick
            test_bias_correct_preserves_plain_graphs;
          Alcotest.test_case "mean channel error" `Quick
            test_mean_channel_error_reports_layers;
        ] );
      ( "report",
        [
          Alcotest.test_case "table1 text" `Quick test_report_table1;
          Alcotest.test_case "fig2 text" `Quick test_report_fig2;
          Alcotest.test_case "seconds" `Quick test_report_seconds;
          Alcotest.test_case "csv outputs" `Quick test_csv_outputs;
          Alcotest.test_case "table1 csv golden" `Quick test_table1_csv_golden;
          Alcotest.test_case "fig2 csv golden" `Quick test_fig2_csv_golden;
        ] );
    ]
