module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Q = Ax_quant.Quantization
module Round = Ax_quant.Round
module Range = Ax_quant.Range
module Lut = Ax_arith.Lut
module S = Ax_arith.Signedness
module Pool = Ax_pool.Pool

type granularity = Per_tensor | Per_channel

type config = {
  lut : Lut.t;
  round_mode : Round.t;
  chunk_size : int;
  granularity : granularity;
  accumulator : Accumulator.t;
  domains : int;
}

let default_chunk_size = 250

let make_config ?(round_mode = Round.Nearest_even)
    ?(chunk_size = default_chunk_size) ?(granularity = Per_tensor)
    ?(accumulator = Accumulator.Wide) ?(domains = 1) lut =
  if chunk_size <= 0 then invalid_arg "Axconv.make_config: chunk_size";
  if domains <= 0 || domains > 64 then
    invalid_arg "Axconv.make_config: domains must be in 1..64";
  Accumulator.validate accumulator;
  { lut; round_mode; chunk_size; granularity; accumulator; domains }

let filter_coeffs granularity signedness filter filter_range =
  let out_c = Filter.out_c filter in
  match granularity with
  | Per_tensor ->
    let c =
      Q.compute_coeffs signedness ~rmin:filter_range.Range.min
        ~rmax:filter_range.Range.max
    in
    Array.make out_c c
  | Per_channel ->
    let mins = Array.make out_c infinity in
    let maxs = Array.make out_c neg_infinity in
    Filter.iter filter (fun ~h:_ ~w:_ ~c:_ ~k v ->
        if v < mins.(k) then mins.(k) <- v;
        if v > maxs.(k) then maxs.(k) <- v);
    Array.init out_c (fun k ->
        Q.compute_coeffs signedness ~rmin:mins.(k) ~rmax:maxs.(k))

let quantize_filters_per_channel signedness coeffs round_mode filter =
  let taps = Filter.taps filter and out_c = Filter.out_c filter in
  if Array.length coeffs <> out_c then
    invalid_arg "Axconv.quantize_filters_per_channel: coeffs length";
  let mf_t = Bytes.create (out_c * taps) in
  let sf = Array.make out_c 0 in
  Filter.iter filter (fun ~h ~w ~c ~k v ->
      let ck = coeffs.(k) in
      let q =
        S.clamp signedness
          (Round.apply round_mode
             ((v /. ck.Q.alpha) +. float_of_int ck.Q.beta))
      in
      sf.(k) <- sf.(k) + q;
      let tap = ((h * Filter.kw filter) + w) * Filter.in_c filter + c in
      Bytes.unsafe_set mf_t ((k * taps) + tap) (Char.unsafe_chr (q land 0xff)));
  (mf_t, sf)

let quantize_filters signedness coeffs round_mode filter =
  quantize_filters_per_channel signedness
    (Array.make (Filter.out_c filter) coeffs)
    round_mode filter

let conv ?profile ?pool ~config ~input ~input_range ~filter ~filter_range
    ?bias ~spec () =
  (match bias with
  | Some b when Array.length b <> Filter.out_c filter ->
    invalid_arg "Axconv.conv: bias length differs from filter count"
  | Some _ | None -> ());
  (* Resolve the worker pool once per conv: an explicit [pool] wins, a
     multi-domain config borrows the process-wide pool, and the
     single-domain default stays entirely pool-free. *)
  let pool =
    match pool with
    | Some _ as p -> p
    | None ->
      if config.domains > 1 then Some (Pool.ensure ~domains:config.domains)
      else None
  in
  let charge phase f =
    match profile with Some p -> Profile.time p phase f | None -> f ()
  in
  let span name attrs f =
    match profile with
    | Some p -> Profile.span p ~name ~attrs f
    | None -> f ()
  in
  let note name n =
    match profile with Some p -> Profile.count p name n | None -> ()
  in
  let lut = config.lut in
  let signedness = Lut.signedness lut in
  let out_shape = Conv_spec.output_shape spec (Tensor.shape input) filter in
  let effective_domains =
    match pool with
    | Some p -> min config.domains (Pool.size p)
    | None -> 1
  in
  span "axconv.conv"
    [
      ( "out_shape",
        Printf.sprintf "%dx%dx%dx%d" out_shape.Shape.n out_shape.Shape.h
          out_shape.Shape.w out_shape.Shape.c );
      ("taps", string_of_int (Filter.taps filter));
      ("out_c", string_of_int (Filter.out_c filter));
      ("chunk_size", string_of_int config.chunk_size);
      ("domains", string_of_int effective_domains);
    ]
  @@ fun () ->
  let out = charge Profile.Init (fun () -> Tensor.create out_shape) in
  (* ComputeCoeffs for both operands, then quantize the filter bank once
     for the whole batch. *)
  let coeffs1, coeffs2, mf_t, sf =
    charge Profile.Quantization (fun () ->
        let coeffs1 =
          Q.compute_coeffs signedness ~rmin:input_range.Range.min
            ~rmax:input_range.Range.max
        in
        let coeffs2 =
          filter_coeffs config.granularity signedness filter filter_range
        in
        let mf_t, sf =
          quantize_filters_per_channel signedness coeffs2 config.round_mode
            filter
        in
        (coeffs1, coeffs2, mf_t, sf))
  in
  let taps = Filter.taps filter and out_c = Filter.out_c filter in
  let beta1 = coeffs1.Q.beta in
  (* Per-channel dequantization constants (all equal when per-tensor). *)
  let alpha12 = Array.map (fun c -> coeffs1.Q.alpha *. c.Q.alpha) coeffs2 in
  let beta2 = Array.map (fun c -> c.Q.beta) coeffs2 in
  let n_beta12 = Array.map (fun b2 -> taps * beta1 * b2) beta2 in
  let in_shape = Tensor.shape input in
  let images = Shape.(in_shape.n) in
  let out_buf = Tensor.buffer out in
  let out_cursor = ref 0 in
  let start = ref 0 in
  let chunk_idx = ref 0 in
  while !start < images do
    let count = min config.chunk_size (images - !start) in
    span "axconv.chunk"
      [
        ("chunk", string_of_int !chunk_idx);
        ("images", string_of_int count);
      ]
    @@ fun () ->
    let chunk =
      charge Profile.Other (fun () ->
          Tensor.slice_batch input ~start:!start ~count)
    in
    let plan =
      Im2col.make (Tensor.shape chunk) ~kh:(Filter.kh filter)
        ~kw:(Filter.kw filter) ~spec
    in
    let mp, sp =
      charge Profile.Quantization (fun () ->
          Im2col.to_codes ?pool ~domains:config.domains plan chunk
            ~coeffs:coeffs1 ~round_mode:config.round_mode ~signedness)
    in
    (* ApproxGEMM: every inner product resolved through the LUT. *)
    let rows = plan.Im2col.rows in
    let accumulator = config.accumulator in
    (* One output row is produced entirely by one worker, so splitting
       the row range across domains cannot change any result bit. *)
    let gemm_rows lo hi =
      let acc_row = Array.make out_c 0 in
      for row = lo to hi - 1 do
        let mp_base = row * taps in
        for k = 0 to out_c - 1 do
          let mf_base = k * taps in
          let acc = ref 0 in
          (match accumulator with
          | Accumulator.Wide ->
            (* Fast path: no per-step clamping. *)
            for p = 0 to taps - 1 do
              let ca = Char.code (Bytes.unsafe_get mp (mp_base + p)) in
              let cb = Char.code (Bytes.unsafe_get mf_t (mf_base + p)) in
              acc := !acc + Lut.lookup_code lut ca cb
            done
          | Accumulator.Saturating _ | Accumulator.Wrapping _
          | Accumulator.Lower_or _ ->
            for p = 0 to taps - 1 do
              let ca = Char.code (Bytes.unsafe_get mp (mp_base + p)) in
              let cb = Char.code (Bytes.unsafe_get mf_t (mf_base + p)) in
              acc :=
                Accumulator.add accumulator !acc
                  (Lut.lookup_code lut ca cb)
            done);
          acc_row.(k) <- !acc
        done;
        (* Dequantize with the Eq. 4 corrections. *)
        let sp_row = sp.(row) in
        let out_base = !out_cursor + (row * out_c) in
        for k = 0 to out_c - 1 do
          let corrected =
            acc_row.(k) - (beta2.(k) * sp_row) - (beta1 * sf.(k))
            + n_beta12.(k)
          in
          let v = alpha12.(k) *. float_of_int corrected in
          let v = match bias with Some b -> v +. b.(k) | None -> v in
          out_buf.{out_base + k} <- v
        done
      done
    in
    charge Profile.Lut (fun () ->
        match pool with
        | Some p ->
          Pool.parallel_for p ~max_domains:config.domains ~lo:0 ~hi:rows
            (fun ~lo ~hi -> gemm_rows lo hi)
        | None -> gemm_rows 0 rows);
    (* Per-chunk accounting runs exactly once per chunk, on the
       coordinating domain, after the parallel region has joined — so a
       multi-chunk batch reports the sum over its chunks no matter how
       the rows were split. *)
    (match profile with
    | Some p ->
      Profile.count_lut_lookups p (rows * out_c * taps);
      Profile.count_macs p (rows * out_c * taps)
    | None -> ());
    note "im2col_bytes" (Bytes.length mp);
    note "chunks" 1;
    out_cursor := !out_cursor + (rows * out_c);
    start := !start + count;
    incr chunk_idx
  done;
  (match (profile, pool) with
  | Some p, Some pl -> Pool.publish pl (Profile.metrics p)
  | (Some _ | None), _ -> ());
  out
