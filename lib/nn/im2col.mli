(** Image-to-columns lowering (phase (i) of Algorithm 1).

    A {!plan} captures the geometry: the patch matrix has one row per
    output position ([n * out_h * out_w] rows) and one column per filter
    tap ([kh * kw * in_c]), so the convolution becomes a plain matrix
    product with the HWCK filter bank.  The same plan drives the float
    reference path and the quantized emulator path; the latter also
    produces the per-patch dequantization sums [Sp] of Eq. 4. *)

type plan = private {
  input_shape : Ax_tensor.Shape.t;
  kh : int;
  kw : int;
  stride : int;
  dilation : int;
  out_h : int;
  out_w : int;
  pad_top : int;
  pad_left : int;
  rows : int;       (** n * out_h * out_w *)
  patch_len : int;  (** kh * kw * in_c *)
}

val make :
  Ax_tensor.Shape.t -> kh:int -> kw:int -> spec:Conv_spec.t -> plan

val to_matrix :
  ?pool:Ax_pool.Pool.t ->
  ?domains:int ->
  ?schedule:Ax_pool.Pool.schedule ->
  ?scratch:Scratch.t ->
  plan ->
  Ax_tensor.Tensor.t ->
  Ax_tensor.Matrix.t
(** Float patch matrix; padding cells hold 0.  With a [pool] and
    [domains > 1] the rows are filled in parallel (each row touches
    disjoint output cells, so the result is bit-identical to the serial
    fill for any split and either schedule; [schedule] defaults to the
    pool's static partitioning).  With [scratch] the matrix data lives in the
    arena's float buffer (oversized; valid cells are
    [rows * patch_len]) instead of a fresh allocation. *)

val to_codes :
  ?pool:Ax_pool.Pool.t ->
  ?domains:int ->
  ?schedule:Ax_pool.Pool.schedule ->
  ?scratch:Scratch.t ->
  plan ->
  Ax_tensor.Tensor.t ->
  coeffs:Ax_quant.Quantization.coeffs ->
  round_mode:Ax_quant.Round.t ->
  signedness:Ax_arith.Signedness.t ->
  Bytes.t * int array
(** [(mp, sp)]: the quantized patch matrix as raw LUT codes (row-major,
    [rows * patch_len]) and the per-row sums of quantized {e values}
    ([Sp] in Algorithm 1).  Padding cells quantize the real value 0 —
    i.e. they hold the zero-point — so they participate in the LUT sum
    and in [Sp] exactly as a hardware zero-padded accelerator would.
    With [scratch] the returned buffers are the arena's (oversized,
    reused across calls); without, they are freshly allocated. *)

val to_codes_range :
  ?pool:Ax_pool.Pool.t ->
  ?domains:int ->
  ?schedule:Ax_pool.Pool.schedule ->
  scratch:Scratch.t ->
  plan ->
  Ax_tensor.Tensor.t ->
  row_lo:int ->
  row_hi:int ->
  coeffs:Ax_quant.Quantization.coeffs ->
  round_mode:Ax_quant.Round.t ->
  signedness:Ax_arith.Signedness.t ->
  Bytes.t * int array
(** {!to_codes} restricted to patch rows [row_lo, row_hi) of the plan,
    written to the arena's buffers indexed from 0 (plan row [r] lands at
    buffer row [r - row_lo]).  This is how the chunked GEMM lowers one
    chunk at a time against the whole-batch plan — no per-chunk batch
    slice, no per-chunk allocation, bit-identical codes for any
    chunking.  Raises [Invalid_argument] if the range leaves the
    plan. *)
