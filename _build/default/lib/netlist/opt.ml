type stats = {
  nodes_before : int;
  nodes_after : int;
  gates_before : int;
  gates_after : int;
}

let strip_dead_with_stats c =
  let n = Circuit.node_count c in
  let live = Array.make n false in
  (* Mark the cone of influence of every output. *)
  let rec mark i =
    if not live.(i) then begin
      live.(i) <- true;
      List.iter mark (Gate.fanin (Circuit.gate_at c i))
    end
  in
  List.iter (fun (_, s) -> mark (Circuit.index s)) (Circuit.outputs c);
  (* Inputs survive unconditionally so the interface is unchanged. *)
  List.iter (fun (_, s) -> live.(Circuit.index s) <- true) (Circuit.inputs c);
  let fresh = Circuit.create ~name:(Circuit.name c) () in
  let remap = Array.make n (-1) in
  Circuit.iter_gates c (fun i g ->
      if live.(i) then begin
        let s i = Circuit.signal_of_index fresh remap.(i) in
        let new_signal =
          match g with
          | Gate.Input label -> Circuit.input fresh label
          | Gate.Const b -> Circuit.const fresh b
          | Gate.Buf a -> Circuit.buf_ fresh (s a)
          | Gate.Not a -> Circuit.not_ fresh (s a)
          | Gate.And2 (a, b) -> Circuit.and_ fresh (s a) (s b)
          | Gate.Or2 (a, b) -> Circuit.or_ fresh (s a) (s b)
          | Gate.Xor2 (a, b) -> Circuit.xor_ fresh (s a) (s b)
          | Gate.Nand2 (a, b) -> Circuit.nand_ fresh (s a) (s b)
          | Gate.Nor2 (a, b) -> Circuit.nor_ fresh (s a) (s b)
          | Gate.Xnor2 (a, b) -> Circuit.xnor_ fresh (s a) (s b)
        in
        remap.(i) <- Circuit.index new_signal
      end);
  List.iter
    (fun (label, s) ->
      Circuit.output fresh label
        (Circuit.signal_of_index fresh remap.(Circuit.index s)))
    (Circuit.outputs c);
  let stats =
    {
      nodes_before = Circuit.node_count c;
      nodes_after = Circuit.node_count fresh;
      gates_before = Circuit.gate_count c;
      gates_after = Circuit.gate_count fresh;
    }
  in
  (fresh, stats)

let strip_dead c = fst (strip_dead_with_stats c)
