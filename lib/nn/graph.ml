module Shape = Ax_tensor.Shape

type node_id = int

type op =
  | Input
  | Conv2d of {
      filter : Filter.t;
      bias : float array option;
      spec : Conv_spec.t;
    }
  | Ax_conv2d of {
      filter : Filter.t;
      bias : float array option;
      spec : Conv_spec.t;
      config : Axconv.config;
    }
  | Depthwise_conv2d of {
      filter : Filter.t;
      bias : float array option;
      spec : Conv_spec.t;
    }
  | Ax_depthwise_conv2d of {
      filter : Filter.t;
      bias : float array option;
      spec : Conv_spec.t;
      config : Axconv.config;
    }
  | Min_reduce
  | Max_reduce
  | Const_scalar of float
  | Relu
  | Max_pool of { size : int; stride : int }
  | Global_avg_pool
  | Dense of { weights : Ax_tensor.Matrix.t; bias : float array }
  | Batch_norm of { scale : float array; shift : float array }
  | Add
  | Softmax
  | Shortcut_pad of { stride : int; out_c : int }

type node = { id : node_id; name : string; op : op; inputs : node_id list }

type t = { all : node array; output_id : node_id }

let arity = function
  | Input | Const_scalar _ -> 0
  | Conv2d _ | Depthwise_conv2d _ | Min_reduce | Max_reduce | Relu
  | Max_pool _ | Global_avg_pool | Dense _ | Batch_norm _ | Softmax
  | Shortcut_pad _ ->
    1
  | Add -> 2
  | Ax_conv2d _ | Ax_depthwise_conv2d _ -> 5

let op_name = function
  | Input -> "Input"
  | Conv2d _ -> "Conv2D"
  | Ax_conv2d _ -> "AxConv2D"
  | Depthwise_conv2d _ -> "DepthwiseConv2D"
  | Ax_depthwise_conv2d _ -> "AxDepthwiseConv2D"
  | Min_reduce -> "Min"
  | Max_reduce -> "Max"
  | Const_scalar _ -> "Const"
  | Relu -> "Relu"
  | Max_pool _ -> "MaxPool"
  | Global_avg_pool -> "GlobalAvgPool"
  | Dense _ -> "Dense"
  | Batch_norm _ -> "BatchNorm"
  | Add -> "Add"
  | Softmax -> "Softmax"
  | Shortcut_pad _ -> "ShortcutPad"

type builder = { mutable rev_nodes : node list; mutable count : int }

let builder () = { rev_nodes = []; count = 0 }

let add b ~name op inputs =
  if List.length inputs <> arity op then
    Nn_error.(error
      (Arity_mismatch
         {
           op = op_name op;
           node = name;
           expected = arity op;
           got = List.length inputs;
         }));
  List.iter
    (fun i ->
      if i < 0 || i >= b.count then
        Nn_error.(error (Unknown_input { op = op_name op; node = name; input = i })))
    inputs;
  let id = b.count in
  b.rev_nodes <- { id; name; op; inputs } :: b.rev_nodes;
  b.count <- b.count + 1;
  id

let finalize b ~output =
  if output < 0 || output >= b.count then
    Nn_error.(error (Unknown_output { output; size = b.count }));
  { all = Array.of_list (List.rev b.rev_nodes); output_id = output }

let of_nodes_unchecked ~output all = { all = Array.of_list all; output_id = output }

let nodes t = t.all
let output t = t.output_id

let node t id =
  if id < 0 || id >= Array.length t.all then
    invalid_arg "Graph.node: unknown id";
  t.all.(id)

let size t = Array.length t.all

let find_by_name t name =
  Array.find_opt (fun n -> n.name = name) t.all

let map_ops f t =
  let all =
    Array.map
      (fun n ->
        let op = f n in
        if arity op <> arity n.op then
          Nn_error.(error
            (Op_rewrite
               { node = n.name; from_op = op_name n.op; to_op = op_name op }));
        { n with op })
      t.all
  in
  { t with all }

let conv_layers t =
  Array.to_list t.all
  |> List.filter (fun n ->
         match n.op with
         | Conv2d _ | Ax_conv2d _ | Depthwise_conv2d _
         | Ax_depthwise_conv2d _ ->
           true
         | Input | Min_reduce | Max_reduce | Const_scalar _ | Relu
         | Max_pool _ | Global_avg_pool | Dense _ | Batch_norm _ | Add
         | Softmax | Shortcut_pad _ ->
           false)

let infer_shapes t ~input =
  let shapes : Shape.t option array = Array.make (size t) None in
  let shape_of id =
    match shapes.(id) with
    | Some s -> s
    | None -> invalid_arg "Graph.infer_shapes: scalar used as tensor"
  in
  Array.iter
    (fun n ->
      let s =
        match n.op with
        | Input -> Some input
        | Const_scalar _ | Min_reduce | Max_reduce -> None
        | Conv2d { filter; spec; _ } ->
          Some (Conv_spec.output_shape spec (shape_of (List.nth n.inputs 0)) filter)
        | Ax_conv2d { filter; spec; _ } ->
          Some (Conv_spec.output_shape spec (shape_of (List.nth n.inputs 0)) filter)
        | Depthwise_conv2d { filter; spec; _ }
        | Ax_depthwise_conv2d { filter; spec; _ } ->
          Some
            (Depthwise.output_shape ~spec (shape_of (List.nth n.inputs 0))
               filter)
        | Relu | Batch_norm _ | Softmax ->
          Some (shape_of (List.nth n.inputs 0))
        | Max_pool { size; stride } ->
          let s = shape_of (List.nth n.inputs 0) in
          Some
            (Shape.make ~n:Shape.(s.n)
               ~h:(((Shape.(s.h) - size) / stride) + 1)
               ~w:(((Shape.(s.w) - size) / stride) + 1)
               ~c:Shape.(s.c))
        | Global_avg_pool ->
          let s = shape_of (List.nth n.inputs 0) in
          Some (Shape.make ~n:Shape.(s.n) ~h:1 ~w:1 ~c:Shape.(s.c))
        | Dense { weights; _ } ->
          let s = shape_of (List.nth n.inputs 0) in
          Some
            (Shape.make ~n:Shape.(s.n) ~h:1 ~w:1
               ~c:weights.Ax_tensor.Matrix.cols)
        | Add -> Some (shape_of (List.nth n.inputs 0))
        | Shortcut_pad { stride; out_c } ->
          let s = shape_of (List.nth n.inputs 0) in
          Some
            (Shape.make ~n:Shape.(s.n)
               ~h:((Shape.(s.h) + stride - 1) / stride)
               ~w:((Shape.(s.w) + stride - 1) / stride)
               ~c:out_c)
      in
      shapes.(n.id) <- s)
    t.all;
  Array.to_list (Array.mapi (fun id s -> (id, s)) shapes)

let total_macs t ~input =
  let shapes = Array.of_list (List.map snd (infer_shapes t ~input)) in
  Array.fold_left
    (fun acc n ->
      match n.op with
      | Conv2d { filter; spec; _ } | Ax_conv2d { filter; spec; _ } ->
        let in_shape =
          match shapes.(List.nth n.inputs 0) with
          | Some s -> s
          | None -> invalid_arg "Graph.total_macs: conv over scalar"
        in
        acc + Conv_spec.macs spec in_shape filter
      | Depthwise_conv2d { filter; spec; _ }
      | Ax_depthwise_conv2d { filter; spec; _ } ->
        let in_shape =
          match shapes.(List.nth n.inputs 0) with
          | Some s -> s
          | None -> invalid_arg "Graph.total_macs: conv over scalar"
        in
        acc + Depthwise.macs ~spec in_shape filter
      | Input | Min_reduce | Max_reduce | Const_scalar _ | Relu | Max_pool _
      | Global_avg_pool | Dense _ | Batch_norm _ | Add | Softmax
      | Shortcut_pad _ ->
        acc)
    0 t.all

let to_dot t =
  let buf = Buffer.create 2048 in
  Buffer.add_string buf "digraph model {\n  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  Array.iter
    (fun n ->
      let shape, fill =
        match n.op with
        | Ax_conv2d _ | Ax_depthwise_conv2d _ -> ("box", "#f4cccc")
        | Conv2d _ | Depthwise_conv2d _ -> ("box", "#cfe2f3")
        | Min_reduce | Max_reduce | Const_scalar _ -> ("ellipse", "#fff2cc")
        | Input -> ("parallelogram", "#d9ead3")
        | Relu | Max_pool _ | Global_avg_pool | Dense _ | Batch_norm _ | Add
        | Softmax | Shortcut_pad _ ->
          ("box", "#ffffff")
      in
      Buffer.add_string buf
        (Printf.sprintf
           "  n%d [label=\"%s\\n%s\", shape=%s, style=filled, fillcolor=\"%s\"%s];\n"
           n.id n.name (op_name n.op) shape fill
           (if n.id = t.output_id then ", penwidth=2" else ""));
      List.iter
        (fun src -> Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" src n.id))
        n.inputs)
    t.all;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let pp_summary ppf t =
  Array.iter
    (fun n ->
      Format.fprintf ppf "%3d %-24s %-13s <- %s@."
        n.id n.name (op_name n.op)
        (String.concat ", " (List.map string_of_int n.inputs)))
    t.all
