type t =
  | Truncated of { what : string; needed : int; available : int }
  | Bad_magic of { what : string; expected : string; actual : string }
  | Bad_checksum of { what : string; expected : int; actual : int }
  | Bad_tag of { what : string; field : string; tag : int }
  | Malformed of { what : string; detail : string }

exception Error of t

let printable s =
  String.map (fun c -> if c >= ' ' && c <= '~' then c else '?') s

let to_string = function
  | Truncated { what; needed; available } ->
    Printf.sprintf "%s: truncated input (need %d bytes, have %d)" what needed
      available
  | Bad_magic { what; expected; actual } ->
    Printf.sprintf "%s: bad magic (expected %S, found %S)" what expected
      (printable actual)
  | Bad_checksum { what; expected; actual } ->
    Printf.sprintf "%s: checksum mismatch (stored 0x%08x, computed 0x%08x)"
      what expected actual
  | Bad_tag { what; field; tag } ->
    Printf.sprintf "%s: bad %s tag %d" what field tag
  | Malformed { what; detail } -> Printf.sprintf "%s: malformed input (%s)" what detail

let pp ppf e = Format.pp_print_string ppf (to_string e)

let () =
  Printexc.register_printer (function
    | Error e -> Some (Printf.sprintf "Ax_arith.Load_error.Error: %s" (to_string e))
    | _ -> None)
