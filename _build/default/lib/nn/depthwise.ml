module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Q = Ax_quant.Quantization
module Round = Ax_quant.Round
module Range = Ax_quant.Range
module Lut = Ax_arith.Lut
module S = Ax_arith.Signedness

let check_bias filter = function
  | None -> ()
  | Some b ->
    if Array.length b <> Filter.in_c filter * Filter.out_c filter then
      invalid_arg "Depthwise: bias length differs from in_c * multiplier"

let output_shape ~spec input filter =
  if Shape.(input.c) <> Filter.in_c filter then
    invalid_arg
      (Printf.sprintf
         "Depthwise.output_shape: input has %d channels, filter wants %d"
         Shape.(input.c) (Filter.in_c filter));
  let out_h, out_w, _, _ =
    Shape.conv_output_dims input ~kh:(Filter.kh filter)
      ~kw:(Filter.kw filter) ~stride:spec.Conv_spec.stride
      ~dilation:spec.Conv_spec.dilation
      ~padding:(Conv_spec.padding_to_poly spec.Conv_spec.padding)
  in
  Shape.make ~n:Shape.(input.n) ~h:out_h ~w:out_w
    ~c:(Filter.in_c filter * Filter.out_c filter)

let macs ~spec input filter =
  let out = output_shape ~spec input filter in
  Shape.(out.n) * Shape.(out.h) * Shape.(out.w) * Shape.(out.c)
  * Filter.kh filter * Filter.kw filter

(* Shared loop skeleton: visits every output position and calls [cell]
   once per (input channel, multiplier) pair with a fold over the
   window taps.  [tap] receives (dh, dw, in-bounds input offset or -1). *)
let geometry ~spec input filter =
  let s = Tensor.shape input in
  Shape.conv_output_dims s ~kh:(Filter.kh filter) ~kw:(Filter.kw filter)
    ~stride:spec.Conv_spec.stride ~dilation:spec.Conv_spec.dilation
    ~padding:(Conv_spec.padding_to_poly spec.Conv_spec.padding)

let float_conv ~input ~filter ?bias ~spec () =
  check_bias filter bias;
  let s = Tensor.shape input in
  let out = Tensor.create (output_shape ~spec s filter) in
  let out_h, out_w, pad_top, pad_left = geometry ~spec input filter in
  let mult = Filter.out_c filter in
  let buf = Tensor.buffer input and out_buf = Tensor.buffer out in
  let in_c = Shape.(s.c) in
  let out_c_total = in_c * mult in
  let row = ref 0 in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to out_h - 1 do
      for ow = 0 to out_w - 1 do
        let base_h = (oh * spec.Conv_spec.stride) - pad_top in
        let base_w = (ow * spec.Conv_spec.stride) - pad_left in
        let out_base = !row * out_c_total in
        for c = 0 to in_c - 1 do
          for j = 0 to mult - 1 do
            let acc = ref 0. in
            for dh = 0 to Filter.kh filter - 1 do
              let h = base_h + (dh * spec.Conv_spec.dilation) in
              if h >= 0 && h < Shape.(s.h) then
                for dw = 0 to Filter.kw filter - 1 do
                  let w = base_w + (dw * spec.Conv_spec.dilation) in
                  if w >= 0 && w < Shape.(s.w) then
                    acc :=
                      !acc
                      +. buf.{Shape.unsafe_offset s ~n ~h ~w ~c}
                         *. Filter.get filter ~h:dh ~w:dw ~c ~k:j
                done
            done;
            let k = (c * mult) + j in
            let v = match bias with Some b -> !acc +. b.(k) | None -> !acc in
            out_buf.{out_base + k} <- v
          done
        done;
        incr row
      done
    done
  done;
  out

let approx_conv ?profile ~config ~input ~input_range ~filter ~filter_range
    ?bias ~spec () =
  check_bias filter bias;
  let charge phase f =
    match profile with Some p -> Profile.time p phase f | None -> f ()
  in
  let lut = config.Axconv.lut in
  let signedness = Lut.signedness lut in
  let s = Tensor.shape input in
  let out = charge Profile.Init (fun () -> Tensor.create (output_shape ~spec s filter)) in
  let coeffs1, coeffs2, qf, sf =
    charge Profile.Quantization (fun () ->
        let coeffs1 =
          Q.compute_coeffs signedness ~rmin:input_range.Range.min
            ~rmax:input_range.Range.max
        in
        let coeffs2 =
          Q.compute_coeffs signedness ~rmin:filter_range.Range.min
            ~rmax:filter_range.Range.max
        in
        (* Quantized filter codes, laid out [c][j][tap] with the per-
           (c, j) sums of quantized values. *)
        let kh = Filter.kh filter and kw = Filter.kw filter in
        let in_c = Filter.in_c filter and mult = Filter.out_c filter in
        let qf = Bytes.create (in_c * mult * kh * kw) in
        let sf = Array.make (in_c * mult) 0 in
        Filter.iter filter (fun ~h ~w ~c ~k v ->
            let q =
              Q.quantize coeffs2 config.Axconv.round_mode signedness v
            in
            let slot = (c * mult) + k in
            sf.(slot) <- sf.(slot) + q;
            Bytes.unsafe_set qf
              ((slot * kh * kw) + (h * kw) + w)
              (Char.unsafe_chr (q land 0xff)));
        (coeffs1, coeffs2, qf, sf))
  in
  let out_h, out_w, pad_top, pad_left = geometry ~spec input filter in
  let kh = Filter.kh filter and kw = Filter.kw filter in
  let in_c = Shape.(s.c) and mult = Filter.out_c filter in
  let taps = kh * kw in
  let alpha12 = coeffs1.Q.alpha *. coeffs2.Q.alpha in
  let beta1 = coeffs1.Q.beta and beta2 = coeffs2.Q.beta in
  let n_beta12 = taps * beta1 * beta2 in
  let inv_alpha1 = 1. /. coeffs1.Q.alpha in
  let beta1f = float_of_int beta1 in
  let zero_code = beta1 land 0xff in
  let buf = Tensor.buffer input and out_buf = Tensor.buffer out in
  let window = Bytes.create taps in
  let out_c_total = in_c * mult in
  let lookups = ref 0 in
  let row = ref 0 in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to out_h - 1 do
      for ow = 0 to out_w - 1 do
        let base_h = (oh * spec.Conv_spec.stride) - pad_top in
        let base_w = (ow * spec.Conv_spec.stride) - pad_left in
        let out_base = !row * out_c_total in
        for c = 0 to in_c - 1 do
          (* Quantize this channel's window once (Sp for the position). *)
          let sp =
            charge Profile.Quantization (fun () ->
                let acc = ref 0 and col = ref 0 in
                for dh = 0 to kh - 1 do
                  let h = base_h + (dh * spec.Conv_spec.dilation) in
                  for dw = 0 to kw - 1 do
                    let w = base_w + (dw * spec.Conv_spec.dilation) in
                    if h >= 0 && h < Shape.(s.h) && w >= 0 && w < Shape.(s.w)
                    then begin
                      let q =
                        S.clamp signedness
                          (Round.apply config.Axconv.round_mode
                             ((buf.{Shape.unsafe_offset s ~n ~h ~w ~c}
                               *. inv_alpha1)
                             +. beta1f))
                      in
                      acc := !acc + q;
                      Bytes.unsafe_set window !col
                        (Char.unsafe_chr (q land 0xff))
                    end
                    else begin
                      acc := !acc + beta1;
                      Bytes.unsafe_set window !col (Char.unsafe_chr zero_code)
                    end;
                    incr col
                  done
                done;
                !acc)
          in
          charge Profile.Lut (fun () ->
              for j = 0 to mult - 1 do
                let slot = (c * mult) + j in
                let qf_base = slot * taps in
                let acc = ref 0 in
                for p = 0 to taps - 1 do
                  let ca = Char.code (Bytes.unsafe_get window p) in
                  let cb = Char.code (Bytes.unsafe_get qf (qf_base + p)) in
                  acc :=
                    Accumulator.add config.Axconv.accumulator !acc
                      (Lut.lookup_code lut ca cb)
                done;
                lookups := !lookups + taps;
                let corrected =
                  !acc - (beta2 * sp) - (beta1 * sf.(slot)) + n_beta12
                in
                let v = alpha12 *. float_of_int corrected in
                let k = slot in
                let v = match bias with Some b -> v +. b.(k) | None -> v in
                out_buf.{out_base + k} <- v
              done)
        done;
        incr row
      done
    done
  done;
  (match profile with
  | Some p ->
    Profile.count_lut_lookups p !lookups;
    Profile.count_macs p !lookups
  | None -> ());
  out
