(** Convolution filter banks in HWCK layout (Height x Width x Channels x
    Count), the second-input format of the paper's Conv2D (Sec. III). *)

type t

val create : kh:int -> kw:int -> in_c:int -> out_c:int -> t
(** Zero-filled bank of [out_c] filters of size [kh*kw*in_c]. *)

val kh : t -> int
val kw : t -> int
val in_c : t -> int
val out_c : t -> int

val taps : t -> int
(** Weights per filter: [kh * kw * in_c] — the reduction length [N] of
    Eq. 2/4. *)

val num_weights : t -> int

val get : t -> h:int -> w:int -> c:int -> k:int -> float
val set : t -> h:int -> w:int -> c:int -> k:int -> float -> unit

val of_array : kh:int -> kw:int -> in_c:int -> out_c:int -> float array -> t
(** Flat HWCK data (K fastest-varying); length-checked. *)

val to_array : t -> float array

val min_max : t -> float * float
(** Weight range used to derive the filter quantization coefficients. *)

val fill_he_normal : Ax_tensor.Rng.t -> t -> unit
(** He-style initialisation: N(0, sqrt(2 / fan_in)). *)

val macs_per_position : t -> int
(** Multiplications per output position: [taps * out_c]. *)

val iter : t -> (h:int -> w:int -> c:int -> k:int -> float -> unit) -> unit

val raw_data : t -> float array
(** The live underlying HWCK buffer (K fastest-varying) — exposed so the
    training optimizer can update weights in place; mutating it is
    visible to every graph node sharing this filter, mirroring how
    TensorFlow variables behave across the Fig. 1 transform. *)

val tap_index : t -> h:int -> w:int -> c:int -> int
(** Row index of a tap in the flattened HWC ordering used by the GEMM
    paths: [((h*kw + w)*in_c + c)]. *)
