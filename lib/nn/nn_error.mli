(** Typed graph-construction errors.

    The builder, the Fig. 1 transform and the serialised-model decoder
    used to reject malformed graphs with stringly [Invalid_argument] /
    [Failure] payloads; callers that want to react (the CLI, the
    pre-flight verifier, the loader fuzz tests) had to pattern-match on
    message text.  Every construction-time rejection now carries one of
    these constructors instead. *)

type t =
  | Unknown_input of { op : string; node : string; input : int }
      (** a node references an input id that does not exist yet *)
  | Arity_mismatch of { op : string; node : string; expected : int; got : int }
  | Unknown_output of { output : int; size : int }
      (** [finalize ~output] names a node outside the graph *)
  | No_such_layer of { context : string; name : string }
      (** a per-layer selector names a node absent from the graph *)
  | Not_a_conv of { context : string; name : string; op : string }
      (** a per-layer selector names a node that is not a convolution *)
  | Op_rewrite of { node : string; from_op : string; to_op : string }
      (** [map_ops] attempted to change a node's arity *)

exception Error of t

val to_string : t -> string
(** Human rendering, e.g.
    ["conv1: AxConv2D takes 5 inputs, 3 given"]. *)

val error : t -> 'a
(** [error e] raises {!Error}[ e]. *)
