(** Accurate (float) 2D convolution — the "accurate Conv2D" column of
    Table I.  Two interchangeable implementations:

    - {!direct}: the textbook nested-loop form, used as an independent
      reference in tests;
    - {!gemm}: im2col followed by a blocked float GEMM, the optimised
      layout production frameworks use and the one the benchmarks time.

    Both accumulate in 64-bit floats and write float32 results. *)

val direct :
  input:Ax_tensor.Tensor.t ->
  filter:Filter.t ->
  ?bias:float array ->
  spec:Conv_spec.t ->
  unit ->
  Ax_tensor.Tensor.t

val gemm :
  ?profile:Profile.t ->
  ?scratch:Scratch.t ->
  input:Ax_tensor.Tensor.t ->
  filter:Filter.t ->
  ?bias:float array ->
  spec:Conv_spec.t ->
  unit ->
  Ax_tensor.Tensor.t
(** With [scratch] the im2col patch matrix is built in the arena's float
    buffer instead of a fresh allocation (the product matrix is still
    allocated — it is the result of {!Ax_tensor.Matrix.matmul}). *)
