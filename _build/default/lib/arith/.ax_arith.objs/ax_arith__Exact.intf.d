lib/arith/exact.mli:
