(** Structural Verilog export.

    Emits a synthesisable flat module using continuous [assign]
    statements over [wire]s, one per netlist node, so generated
    approximate multipliers can be taken to an actual EDA flow. *)

val to_string : Circuit.t -> string
(** [to_string c] renders [c] as a single Verilog module named after
    [Circuit.name c]. *)

val to_channel : out_channel -> Circuit.t -> unit

val testbench :
  ?vectors:int -> ?seed:int -> reference:(int -> int -> int) ->
  Multipliers.t -> string
(** A self-checking Verilog testbench for a generated multiplier:
    [vectors] random operand pairs (default 64, deterministic in
    [seed]) are applied and every product compared against the expected
    value computed by [reference] — so the exported RTL can be validated
    in any simulator against the exact function the emulator used. *)
