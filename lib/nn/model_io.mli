(** Model serialization: the whole graph IR — structure, parameters,
    and, for transformed models, the embedded 128 kB multiplier LUTs —
    in one deterministic binary file, so a transformed accelerator model
    is a distributable artefact (the role a SavedModel plays for the
    original TFApprox).

    Format "AXMDL1": little-endian, length-prefixed strings, float
    parameters as raw IEEE-754 bit patterns (bit-exact roundtrip), and a
    trailing CRC-32 of the whole payload so on-disk corruption is
    detected on load instead of decoded into garbage weights.  Embedded
    LUTs additionally carry their own "AXLUT1" checksums.

    All decode failures are typed ({!Ax_arith.Load_error.t}) so callers
    can distinguish truncation / bad magic / bad checksum; the
    [*_result] variants never raise on malformed content, and the
    historical raising APIs are thin wrappers over them. *)

val to_bytes : Graph.t -> Bytes.t

val of_bytes_result : Bytes.t -> (Graph.t, Ax_arith.Load_error.t) result
(** Total over arbitrary byte strings: truncated, bit-flipped and
    garbage inputs all map to [Error] (fuzzed in
    [test/test_loader_fuzz.ml]), never to an unchecked exception or a
    silently wrong graph. *)

val of_bytes : Bytes.t -> Graph.t
(** Thin wrapper over {!of_bytes_result}; raises
    {!Ax_arith.Load_error.Error}. *)

val save : string -> Graph.t -> unit

val load_result : string -> (Graph.t, Ax_arith.Load_error.t) result
(** I/O failures (missing file) raise [Sys_error]; malformed content is
    a typed error. *)

val load : string -> Graph.t
(** Thin wrapper over {!load_result}; raises {!Ax_arith.Load_error.Error}. *)
