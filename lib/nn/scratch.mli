(** Reusable buffer arena for the AxConv2D hot path.

    Algorithm 1 processes a batch chunk by chunk; without reuse every
    chunk of every layer re-allocates its patch matrix [mp], patch-sum
    vector [sp] and accumulator tile.  An arena owns those buffers
    grow-only: the largest chunk seen sizes them once and steady-state
    chunks allocate nothing (the CI `bench -- gemm` gate enforces
    this).

    Buffers are returned {e oversized} — at least the requested length,
    often longer.  Callers must index by their own geometry and never
    use [Bytes.length]/[Array.length] of a scratch buffer.  Contents
    are unspecified on acquisition except [acc]/[sp], which callers
    overwrite or zero themselves. *)

type t

val create : unit -> t
(** A fresh arena with empty buffers. *)

val mp : t -> int -> Bytes.t
(** Patch-matrix code buffer of at least the given length. *)

val sp : t -> int -> int array
(** Patch-sum buffer of at least the given length. *)

val acc : t -> int -> int array
(** Accumulator-tile buffer of at least the given length. *)

val pf : t -> int -> Bytes.t
(** Tap-major packed filter-code buffer of at least the given length. *)

val fm : t -> int -> float array
(** Float patch-matrix buffer of at least the given length. *)

val domain_local : unit -> t
(** The calling domain's own arena ([Domain.DLS]-backed).  This is what
    the executor and the GEMM workers default to, so multi-domain runs
    stay allocation-free without threading arenas across the pool. *)
