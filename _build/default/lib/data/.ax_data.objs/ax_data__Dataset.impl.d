lib/data/dataset.ml: Array Ax_tensor
