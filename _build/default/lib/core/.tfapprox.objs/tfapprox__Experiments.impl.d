lib/core/experiments.ml: Array Ax_arith Ax_data Ax_gpusim Ax_models Ax_nn Ax_quant Ax_tensor Emulator List Printf Unix
