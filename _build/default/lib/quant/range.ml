type t = { min : float; max : float }

let make ~min ~max =
  if Float.is_nan min || Float.is_nan max then
    invalid_arg "Range.make: NaN bound";
  if min > max then invalid_arg "Range.make: min > max";
  { min; max }

let of_tensor tensor =
  let mn, mx = Ax_tensor.Tensor.min_max tensor in
  make ~min:mn ~max:mx

let union a b = { min = Float.min a.min b.min; max = Float.max a.max b.max }
let contains t v = v >= t.min && v <= t.max
let with_zero t = { min = Float.min t.min 0.; max = Float.max t.max 0. }
let span t = t.max -. t.min
let pp ppf t = Format.fprintf ppf "[%g, %g]" t.min t.max
