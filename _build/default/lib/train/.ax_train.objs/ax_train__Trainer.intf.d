lib/train/trainer.mli: Ax_data Ax_nn
