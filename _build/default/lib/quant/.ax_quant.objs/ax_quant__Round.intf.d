lib/quant/round.mli: Format
