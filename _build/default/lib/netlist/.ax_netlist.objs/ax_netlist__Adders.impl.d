lib/netlist/adders.ml: Array Bus Circuit List
