(** SGD with momentum and weight decay, updating graph parameters in
    place.

    Parameters live inside graph nodes (filters, dense matrices, batch
    norm vectors, biases) and are {e shared} across graphs produced by
    the Fig. 1 transform — updating the approximate graph updates the
    accurate one, exactly like TensorFlow variables.  Momentum state is
    keyed by node id and parameter slot, so one optimizer instance must
    stay with one graph. *)

type t

val sgd :
  ?momentum:float -> ?weight_decay:float -> learning_rate:float -> unit -> t
(** Defaults: momentum 0.9, weight decay 0. *)

val learning_rate : t -> float
val set_learning_rate : t -> float -> unit

val apply :
  t -> Ax_nn.Graph.t -> (Ax_nn.Graph.node_id * Backprop.param_grad) list ->
  unit
(** One update step.  Raises [Invalid_argument] when a gradient's shape
    does not match the node's parameters. *)
