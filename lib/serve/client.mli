(** Minimal blocking client for the inference daemon — the CLI's
    [tfapprox client], the serve bench's load generators and the CI
    smoke script all drive the daemon through this module.

    One request/response exchange at a time per connection; retries are
    safe because the protocol is idempotent (see {!Protocol}). *)

type t

val connect : ?timeout:float -> Server.address -> t
(** Blocking connect.  [timeout] (seconds) bounds each subsequent read
    — a hung daemon surfaces as [Error Timed_out] rather than a client
    stuck forever.  Raises [Unix.Unix_error] when the daemon is not
    there. *)

val close : t -> unit
(** Idempotent. *)

type error =
  | Refused of {
      code : Protocol.error_code;
      retry_after_ms : int;
      message : string;
    }  (** the daemon answered with a typed error *)
  | Protocol_error of Ax_arith.Load_error.t
      (** the daemon's bytes did not decode *)
  | Unexpected of Protocol.response
      (** decoded, but not the response this request awaits — a wrong
          kind, or a [Predictions]/request-bound [Error] echoing a
          different id than the one just sent (a stale frame is never
          silently accepted as the current request's answer) *)
  | Disconnected  (** stream ended mid-exchange *)
  | Timed_out  (** the [connect] read timeout expired mid-exchange *)

val error_to_string : error -> string

val roundtrip : t -> Protocol.request -> (Protocol.response, error) result
(** Send one request, read one response.  Never [Unexpected]. *)

val ping : t -> (unit, error) result
val list_models : t -> ((string * [ `Ready | `Unavailable of string ]) list, error) result

val infer :
  t ->
  ?id:int ->
  ?deadline_ms:int ->
  model:string ->
  Ax_tensor.Tensor.t ->
  (int array, error) result
(** Class ids for each image of the input batch.  The response must
    echo [id] (default 0); a [Predictions] or request-bound [Error]
    carrying any other id is rejected as [Unexpected]. *)

val metrics : t -> (string, error) result
(** Prometheus text dump. *)

val shutdown : t -> (unit, error) result
(** Ask for graceful daemon shutdown (ack'd before the daemon exits). *)

val send_raw : t -> Bytes.t -> unit
(** Write arbitrary bytes on the wire — the misbehaving-client hook the
    robustness tests and the CI smoke's garbage client use. *)

val read_response : t -> (Protocol.response, error) result
(** Read one framed response without sending anything first. *)
