lib/gpusim/device.ml: Format
