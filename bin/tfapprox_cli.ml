(* Command-line front end: run the paper's experiments, explore the
   multiplier catalogue, export gate-level multipliers to Verilog, and
   dump LUT files. *)

open Cmdliner

let depths_arg =
  let parse s =
    try Ok (List.map int_of_string (String.split_on_char ',' s))
    with Failure _ -> Error (`Msg "depths: comma-separated integers expected")
  in
  let print ppf ds =
    Format.pp_print_string ppf (String.concat "," (List.map string_of_int ds))
  in
  Arg.conv (parse, print)

let depths_term =
  Arg.(
    value
    & opt depths_arg Ax_models.Resnet.table1_depths
    & info [ "depths" ] ~docv:"D1,D2,..." ~doc:"ResNet depths to evaluate.")

let images_term =
  Arg.(
    value & opt int 2
    & info [ "images" ]
        ~doc:"Images actually timed on the CPU (scaled to the dataset).")

let dataset_term =
  Arg.(
    value & opt int 10_000
    & info [ "dataset" ] ~doc:"Dataset size the results are scaled to.")

let multiplier_term =
  Arg.(
    value & opt string "mul8u_trunc8"
    & info [ "multiplier"; "m" ] ~doc:"Registry name of the multiplier.")

let domains_term =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ] ~docv:"N"
        ~doc:
          "Worker domains (1-64) for the persistent emulator pool.  \
           Sizes the process-wide pool, parallelizes the AxConv2D \
           Im2Cols/GEMM loops, and shards the batch per image; results \
           are bit-identical for every N.  Defaults to the \
           $(b,TFAPPROX_DOMAINS) environment variable, falling back to \
           the un-sharded single-domain emulator.")

let device_term =
  let parse = function
    | "gtx-1080" -> Ok Ax_gpusim.Device.gtx_1080
    | "jetson" -> Ok Ax_gpusim.Device.jetson_class
    | "datacenter" -> Ok Ax_gpusim.Device.datacenter_class
    | s -> Error (`Msg (Printf.sprintf "unknown device %s" s))
  in
  let print ppf d = Format.pp_print_string ppf d.Ax_gpusim.Device.name in
  Arg.(
    value
    & opt (conv (parse, print)) Ax_gpusim.Device.gtx_1080
    & info [ "device" ] ~doc:"GPU model: gtx-1080, jetson or datacenter.")

let csv_term =
  Arg.(value & flag & info [ "csv" ] ~doc:"Emit CSV instead of the table.")

let trace_file_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace_event JSON of the measured runs to $(docv) \
           (open in chrome://tracing or Perfetto).")

let metrics_file_term =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:"Write a metrics snapshot JSON to $(docv) (\"-\" for stdout).")

(* Operator-error hardening and the exit-code contract (see the README
   table): anything the operator typed wrong — a registry-name typo, a
   malformed comma-separated list, a bad spec — exits 2; anything that
   went wrong at runtime despite a well-formed invocation — a missing
   or corrupt artefact, a graph the verifier rejects, an unreachable
   daemon — exits 1.  Both print one line on stderr, never a backtrace.
   cmdliner's own converter errors exit with its reserved code 124, so
   list parsing happens inside the run functions, under this wrapper. *)
let usage_error msg =
  Format.eprintf "tfapprox: %s@." msg;
  exit 2

let runtime_error msg =
  Format.eprintf "tfapprox: %s@." msg;
  exit 1

let guarded f =
  try f () with
  | Failure msg | Invalid_argument msg -> usage_error msg
  | Sys_error msg -> runtime_error msg
  | Unix.Unix_error (err, fn, arg) ->
    runtime_error
      (Printf.sprintf "%s%s: %s" fn
         (if arg = "" then "" else " " ^ arg)
         (Unix.error_message err))
  | Ax_arith.Load_error.Error e ->
    runtime_error (Ax_arith.Load_error.to_string e)
  | Ax_nn.Nn_error.Error e -> runtime_error (Ax_nn.Nn_error.to_string e)
  | Ax_analysis.Diagnostic.Rejected ds ->
    List.iter
      (fun d -> Format.eprintf "tfapprox: %a@." Ax_analysis.Diagnostic.pp d)
      ds;
    runtime_error "graph rejected by static verification"

let backend_of_string = function
  | "accurate" -> Tfapprox.Emulator.Cpu_accurate
  | "direct" -> Tfapprox.Emulator.Cpu_direct
  | "gemm" -> Tfapprox.Emulator.Cpu_gemm
  | other -> failwith (Printf.sprintf "unknown backend %s" other)

let int_list ~what s =
  try List.map int_of_string (String.split_on_char ',' (String.trim s))
  with Failure _ ->
    failwith (Printf.sprintf "%s: comma-separated integers expected, got %S" what s)

let float_list ~what s =
  try List.map float_of_string (String.split_on_char ',' (String.trim s))
  with Failure _ ->
    failwith (Printf.sprintf "%s: comma-separated numbers expected, got %S" what s)

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

module Log = Ax_obs.Log

(* Progress/diagnostic chatter goes through the structured log (stderr,
   honouring --quiet and $TFAPPROX_LOG); data output — tables, CSV,
   "--json -" dumps — stays on stdout untouched, so pipes keep
   working. *)
let quiet_term =
  Arg.(
    value & flag
    & info [ "quiet"; "q" ]
        ~doc:
          "Suppress informational chatter on stderr (raises the log \
           threshold to warnings; data output on stdout is unaffected).  \
           $(b,TFAPPROX_LOG) offers finer control, e.g. \
           TFAPPROX_LOG=debug,json.")

let apply_quiet quiet = if quiet then Log.set_threshold (Some Log.Warn)

(* Every trace export surfaces ring-buffer eviction: a truncated Chrome
   trace silently missing its earliest spans would mislead a profiling
   session.  The drop count also lands in [metrics] as the
   [trace.dropped] counter when a registry is at hand. *)
let dump_trace ?metrics tracer = function
  | None -> ()
  | Some path ->
    write_file path (Ax_obs.Trace.chrome_json_string tracer);
    let dropped = Ax_obs.Trace.dropped tracer in
    (match metrics with
    | Some m -> Ax_obs.Metrics.add m "trace.dropped" dropped
    | None -> ());
    if dropped > 0 then
      Log.warn
        ~fields:
          [
            ("file", Ax_obs.Json.String path);
            ("dropped", Ax_obs.Json.Int dropped);
          ]
        "trace ring buffer overflowed; the exported trace is incomplete";
    Log.info
      ~fields:[ ("spans", Ax_obs.Json.Int (Ax_obs.Trace.span_count tracer)) ]
      (Printf.sprintf "wrote %s" path)

let dump_metrics metrics = function
  | None -> ()
  | Some path ->
    let text =
      Ax_obs.Json.to_string
        (Ax_obs.Metrics.to_json (Ax_obs.Metrics.snapshot metrics))
    in
    if path = "-" then print_endline text
    else begin
      write_file path text;
      Log.info (Printf.sprintf "wrote %s" path)
    end

let table1_cmd =
  let run device multiplier depths images dataset csv =
    guarded @@ fun () ->
    let rows =
      Tfapprox.Experiments.table1 ~device ~multiplier ~depths
        ~images_measured:images ~dataset_images:dataset ()
    in
    if csv then print_string (Tfapprox.Report.table1_csv rows)
    else Tfapprox.Report.print_table1 Format.std_formatter rows
  in
  Cmd.v (Cmd.info "table1" ~doc:"Regenerate Table I")
    Term.(
      const run $ device_term $ multiplier_term $ depths_term $ images_term
      $ dataset_term $ csv_term)

let fig2_cmd =
  let run device multiplier depths images dataset csv trace_file quiet =
    apply_quiet quiet;
    guarded @@ fun () ->
    let tracer =
      match trace_file with
      | Some _ -> Some (Ax_obs.Trace.create ())
      | None -> None
    in
    let rows =
      Tfapprox.Experiments.fig2 ?trace:tracer ~device ~multiplier ~depths
        ~images_measured:images ~dataset_images:dataset ()
    in
    if csv then print_string (Tfapprox.Report.fig2_csv rows)
    else Tfapprox.Report.print_fig2 Format.std_formatter rows;
    Option.iter (fun tracer -> dump_trace tracer trace_file) tracer
  in
  let depths =
    Arg.(
      value & opt depths_arg [ 8; 32; 50; 62 ]
      & info [ "depths" ] ~docv:"D1,D2,..." ~doc:"Configurations to profile.")
  in
  Cmd.v (Cmd.info "fig2" ~doc:"Regenerate the Fig. 2 time breakdown")
    Term.(
      const run $ device_term $ multiplier_term $ depths $ images_term
      $ dataset_term $ csv_term $ trace_file_term $ quiet_term)

let sweep_cmd =
  let run depth images =
    guarded @@ fun () ->
    let rows = Tfapprox.Experiments.accuracy_sweep ~depth ~images () in
    Tfapprox.Report.print_accuracy_sweep Format.std_formatter rows
  in
  let depth =
    Arg.(value & opt int 8 & info [ "depth" ] ~doc:"ResNet depth.")
  in
  let images =
    Arg.(value & opt int 40 & info [ "images" ] ~doc:"Evaluation images.")
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:"Accuracy/fidelity sweep over candidate multipliers")
    Term.(const run $ depth $ images)

let multipliers_cmd =
  let run verbose =
    guarded @@ fun () ->
    List.iter
      (fun e ->
        if verbose then begin
          let m =
            Ax_arith.Error_metrics.compute_lut (Ax_arith.Registry.lut e)
          in
          Format.printf "%-20s %-8s %a@." e.Ax_arith.Registry.name
            (Ax_arith.Signedness.to_string e.Ax_arith.Registry.signedness)
            Ax_arith.Error_metrics.pp m
        end
        else
          Format.printf "%-20s %-8s %s@." e.Ax_arith.Registry.name
            (Ax_arith.Signedness.to_string e.Ax_arith.Registry.signedness)
            e.Ax_arith.Registry.description)
      (Ax_arith.Registry.all ())
  in
  let verbose =
    Arg.(value & flag & info [ "metrics" ] ~doc:"Print full error metrics.")
  in
  Cmd.v (Cmd.info "multipliers" ~doc:"List the multiplier catalogue")
    Term.(const run $ verbose)

let verilog_cmd =
  let run kind bits cut output quiet =
    apply_quiet quiet;
    guarded @@ fun () ->
    let m =
      match kind with
      | "exact" -> Ax_netlist.Multipliers.unsigned_array ~bits
      | "truncated" -> Ax_netlist.Multipliers.truncated ~bits ~cut
      | "bam" -> Ax_netlist.Multipliers.broken_array ~bits ~hbl:2 ~vbl:cut
      | "signed" -> Ax_netlist.Multipliers.baugh_wooley_signed ~bits
      | other -> failwith (Printf.sprintf "unknown kind %s" other)
    in
    let text = Ax_netlist.Verilog.to_string m.Ax_netlist.Multipliers.circuit in
    (match output with
    | None -> print_string text
    | Some path ->
      let oc = open_out path in
      output_string oc text;
      close_out oc);
    if Log.enabled Log.Info then begin
      let r = Ax_netlist.Power.analyze m.Ax_netlist.Multipliers.circuit in
      Format.eprintf "%a@." Ax_netlist.Power.pp_report r
    end
  in
  let kind =
    Arg.(
      value & opt string "exact"
      & info [ "kind" ] ~doc:"exact, truncated, bam or signed.")
  in
  let bits = Arg.(value & opt int 8 & info [ "bits" ] ~doc:"Operand width.") in
  let cut =
    Arg.(value & opt int 8 & info [ "cut" ] ~doc:"Truncation / break level.")
  in
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~doc:"Output file (stdout otherwise).")
  in
  Cmd.v
    (Cmd.info "verilog" ~doc:"Export a gate-level multiplier to Verilog")
    Term.(const run $ kind $ bits $ cut $ output $ quiet_term)

let lut_cmd =
  let run name output quiet =
    apply_quiet quiet;
    guarded @@ fun () ->
    let lut = Tfapprox.Emulator.lut_of_multiplier name in
    Ax_arith.Lut.save output lut;
    Log.info
      ~fields:[ ("bytes", Ax_obs.Json.Int Ax_arith.Lut.size_bytes) ]
      (Printf.sprintf "wrote %s" output)
  in
  let mult_name =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"MULTIPLIER" ~doc:"Registry name.")
  in
  let output =
    Arg.(
      value & opt string "multiplier.axlut"
      & info [ "o"; "output" ] ~doc:"Output path.")
  in
  Cmd.v (Cmd.info "lut" ~doc:"Tabulate a multiplier into a 128 kB LUT file")
    Term.(const run $ mult_name $ output $ quiet_term)

let search_cmd =
  let run max_mae =
    guarded @@ fun () ->
    let trajectory = Ax_arith.Search.greedy_prune ~max_mae () in
    Format.printf "%-8s %10s %8s %10s@." "kept" "MAE" "WCE" "area proxy";
    List.iter
      (fun c ->
        Format.printf "%-8d %10.2f %8d %10.0f@." c.Ax_arith.Search.kept
          c.Ax_arith.Search.metrics.Ax_arith.Error_metrics.mae
          c.Ax_arith.Search.metrics.Ax_arith.Error_metrics.wce
          c.Ax_arith.Search.area_proxy)
      trajectory
  in
  let max_mae =
    Arg.(
      value & opt float 1000.
      & info [ "max-mae" ] ~doc:"Stop when MAE would exceed this bound.")
  in
  Cmd.v
    (Cmd.info "search"
       ~doc:"Greedy partial-product pruning over the 8x8 design space")
    Term.(const run $ max_mae)

let model_cmd =
  let run depth multiplier output quiet =
    apply_quiet quiet;
    guarded @@ fun () ->
    let graph = Ax_models.Resnet.build ~depth () in
    let graph =
      match multiplier with
      | None -> graph
      | Some m -> Tfapprox.Emulator.approximate_model ~multiplier:m graph
    in
    Ax_nn.Model_io.save output graph;
    Log.info
      ~fields:[ ("nodes", Ax_obs.Json.Int (Ax_nn.Graph.size graph)) ]
      (Printf.sprintf "wrote %s" output)
  in
  let depth = Arg.(value & opt int 8 & info [ "depth" ] ~doc:"ResNet depth.") in
  let multiplier =
    Arg.(
      value
      & opt (some string) None
      & info [ "multiplier"; "m" ]
          ~doc:"Transform with this multiplier before saving.")
  in
  let output =
    Arg.(value & opt string "model.axmdl" & info [ "o"; "output" ] ~doc:"Path.")
  in
  Cmd.v
    (Cmd.info "save-model"
       ~doc:"Build (and optionally transform) a ResNet and serialize it")
    Term.(const run $ depth $ multiplier $ output $ quiet_term)

(* [--domains N] wins; otherwise an exported TFAPPROX_DOMAINS opts in
   with its (clamped) value; otherwise the legacy un-sharded emulator. *)
let resolve_domains = function
  | Some _ as d -> d
  | None -> (
    match Sys.getenv_opt Ax_pool.Pool.env_var with
    | Some s when String.trim s <> "" -> Some (Ax_pool.Pool.recommended ())
    | Some _ | None -> None)

let trace_cmd =
  let run device depth multiplier images backend domains trace_file
      metrics_file tree prometheus quiet =
    apply_quiet quiet;
    guarded @@ fun () ->
    let backend = backend_of_string backend in
    let domains = resolve_domains domains in
    (match domains with
    | Some d -> Ax_pool.Pool.set_default_size d
    | None -> ());
    let graph =
      Tfapprox.Emulator.approximate_model ~multiplier ?domains
        (Ax_models.Resnet.build ~depth ())
    in
    let data = (Ax_data.Cifar.generate ~n:images ()).Ax_data.Cifar.images in
    let tracer = Ax_obs.Trace.create () in
    let profile = Ax_nn.Profile.create ~trace:tracer () in
    ignore (Tfapprox.Emulator.run ~profile ?domains ~backend graph data);
    let metrics = Ax_nn.Profile.metrics profile in
    (* Hit-rate sampling needs at least one image to stream codes from;
       an empty batch still produces a (trivial) trace. *)
    if images > 0 then
      ignore
        (Tfapprox.Experiments.measured_lut_hit_rate ~metrics ~device ~graph
           ~sample:data ());
    dump_trace ~metrics tracer trace_file;
    dump_metrics metrics metrics_file;
    if tree then Format.printf "%a@." Ax_obs.Trace.pp_tree tracer;
    if prometheus then
      print_string (Ax_obs.Metrics.to_prometheus (Ax_obs.Metrics.snapshot metrics));
    Format.printf "ResNet-%d, %d image(s), %s: %a@." depth images
      (Tfapprox.Emulator.backend_name backend)
      Ax_nn.Profile.pp_breakdown
      (Ax_nn.Profile.breakdown profile);
    (* The emulator sets this gauge on profiled runs; absent for an
       empty batch, which returns without evaluating. *)
    let snap = Ax_obs.Metrics.snapshot metrics in
    match List.assoc_opt "images_per_sec" snap.Ax_obs.Metrics.gauges with
    | Some ips -> Format.printf "throughput: %.2f images/sec@." ips
    | None -> ()
  in
  let depth =
    Arg.(value & opt int 8 & info [ "depth" ] ~doc:"ResNet depth.")
  in
  let images =
    Arg.(value & opt int 2 & info [ "images" ] ~doc:"Images to run.")
  in
  let backend =
    Arg.(
      value & opt string "gemm"
      & info [ "backend" ] ~doc:"accurate, direct or gemm.")
  in
  let tree =
    Arg.(
      value & flag & info [ "tree" ] ~doc:"Print the span tree to stdout.")
  in
  let prometheus =
    Arg.(
      value & flag
      & info [ "prometheus" ]
          ~doc:"Print the metrics in Prometheus text format.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run one instrumented inference and export the span trace and \
          metrics")
    Term.(
      const run $ device_term $ depth $ multiplier_term $ images $ backend
      $ domains_term $ trace_file_term $ metrics_file_term $ tree
      $ prometheus $ quiet_term)

let analyze_cmd =
  let run depth multiplier images =
    guarded @@ fun () ->
    let graph = Ax_models.Resnet.build ~depth () in
    let approx = Tfapprox.Emulator.approximate_model ~multiplier graph in
    let sample =
      (Ax_data.Cifar.generate ~n:images ()).Ax_data.Cifar.images
    in
    let errors = Tfapprox.Calibrate.mean_channel_error ~sample approx in
    Format.printf "per-layer mean |error| vs exact LUT (%s):@." multiplier;
    List.iter
      (fun (name, e) -> Format.printf "  %-28s %.5f@." name e)
      errors
  in
  let depth = Arg.(value & opt int 8 & info [ "depth" ] ~doc:"ResNet depth.") in
  let images =
    Arg.(value & opt int 4 & info [ "images" ] ~doc:"Analysis sample size.")
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Per-layer error introduced by an approximate multiplier")
    Term.(const run $ depth $ multiplier_term $ images)

let check_cmd =
  let module D = Ax_analysis.Diagnostic in
  let module Check = Ax_analysis.Check in
  let run models luts mults suite multiplier input_s headroom json_out =
    guarded @@ fun () ->
    let input =
      match int_list ~what:"--input" input_s with
      | [ n; h; w; c ] -> Ax_tensor.Shape.make ~n ~h ~w ~c
      | _ -> failwith "--input: expected N,H,W,C"
    in
    let explicit = models <> [] || luts <> [] || mults <> [] in
    let do_models, do_mults, do_conc =
      match (explicit, suite) with
      | true, _ -> (false, false, false)
      | false, "models" -> (true, false, false)
      | false, "multipliers" -> (false, true, false)
      | false, "concurrency" -> (false, false, true)
      | false, "all" -> (true, true, false)
      | false, other ->
        failwith
          (Printf.sprintf
             "--suite: expected models, multipliers, concurrency or all, \
              got %s" other)
    in
    (* (unit name, findings, headroom rows) in analysis order *)
    let units = ref [] in
    let add name ds layers = units := (name, ds, layers) :: !units in
    if do_models then
      List.iter
        (fun (name, g, shape) ->
          let ds, layers = Check.graph ~input:shape g in
          add name ds layers;
          let approx =
            Tfapprox.Emulator.approximate_model ~multiplier g
          in
          let ds, layers = Check.graph ~input:shape approx in
          add (name ^ "+" ^ multiplier) ds layers)
        [
          ("lenet", Ax_models.Lenet.build (), Ax_models.Lenet.input_shape ~batch:1);
          ( "mobilenet",
            Ax_models.Mobilenet.build (),
            Ax_models.Mobilenet.input_shape ~batch:1 );
          ( "resnet-8",
            Ax_models.Resnet.build ~depth:8 (),
            Ax_models.Resnet.input_shape ~batch:1 );
        ];
    if do_mults then
      List.iter
        (fun e -> add e.Ax_arith.Registry.name (Check.registry_entry e) [])
        (Ax_arith.Registry.all ());
    if do_conc then
      List.iter
        (fun (name, ds) -> add name ds [])
        (Ax_analysis.Conc_check.suite () @ Ax_serve.Conc_scenarios.suite ());
    List.iter
      (fun path ->
        let g = Ax_nn.Model_io.load path in
        let ds, layers = Check.graph ~input g in
        add path ds layers)
      models;
    List.iter
      (fun path ->
        let lut = Ax_arith.Lut.load path in
        add path
          (Ax_analysis.Quant_check.check_lut ~location:(D.Artefact path) lut)
          [])
      luts;
    List.iter
      (fun name ->
        add name (Check.registry_entry (Ax_arith.Registry.find_exn name)) [])
      mults;
    let units = List.rev !units in
    let all_findings = List.concat_map (fun (_, ds, _) -> ds) units in
    (match json_out with
    | Some path ->
      let json =
        Ax_obs.Json.Obj
          [
            ( "units",
              Ax_obs.Json.List
                (List.map
                   (fun (name, ds, layers) ->
                     Ax_obs.Json.Obj
                       [
                         ("name", Ax_obs.Json.String name);
                         ("report", D.to_json ds);
                         ( "headroom",
                           Ax_analysis.Quant_check.layers_to_json layers );
                       ])
                   units) );
            ( "errors",
              Ax_obs.Json.Int (List.length (D.errors all_findings)) );
          ]
      in
      let text = Ax_obs.Json.to_string json in
      if path = "-" then print_endline text else write_file path text
    | None ->
      List.iter
        (fun (name, ds, layers) ->
          (match ds with
          | [] -> Format.printf "%-28s ok@." name
          | ds ->
            Format.printf "%-28s@." name;
            List.iter (fun d -> Format.printf "  %a@." D.pp d) (D.sort ds));
          if headroom && layers <> [] then
            Ax_analysis.Quant_check.pp_headroom Format.std_formatter layers)
        units;
      let count sel = List.length (sel all_findings) in
      Format.printf "%d unit(s): %d error(s), %d warning(s)@."
        (List.length units) (count D.errors) (count D.warnings));
    if D.has_errors all_findings then exit 1
  in
  let models =
    Arg.(
      value & opt_all string []
      & info [ "model" ] ~docv:"FILE" ~doc:"Check a serialized model file.")
  in
  let luts =
    Arg.(
      value & opt_all string []
      & info [ "lut" ] ~docv:"FILE" ~doc:"Check a LUT file.")
  in
  let mults =
    Arg.(
      value & opt_all string []
      & info [ "multiplier-name" ] ~docv:"NAME"
          ~doc:"Check one registry multiplier (repeatable).")
  in
  let suite =
    Arg.(
      value & opt string "all"
      & info [ "suite" ]
          ~doc:
            "With no explicit unit: which built-in suite to run — \
             $(b,models), $(b,multipliers), $(b,concurrency) (lock \
             discipline, race detection and schedule exploration over \
             the pool and daemon) or $(b,all) (the static suites: \
             models + multipliers).")
  in
  let input =
    Arg.(
      value & opt string "1,32,32,3"
      & info [ "input" ] ~docv:"N,H,W,C"
          ~doc:"Input shape for shape inference over --model files.")
  in
  let headroom =
    Arg.(
      value & flag
      & info [ "headroom" ]
          ~doc:"Print the per-layer accumulator headroom table.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the report as JSON to $(docv) (\"-\" for stdout).")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Static verification: graph structure and Fig. 1 wiring, \
          quantization/accumulator soundness, netlist-vs-LUT equivalence. \
          Exits 1 on error-severity findings.")
    Term.(
      const run $ models $ luts $ mults $ suite $ multiplier_term $ input
      $ headroom $ json_out)

let resilience_cmd =
  let run net depth multiplier lut_file repair_with target bits sites trials
      rates images bit seed domains csv json_file quiet =
    apply_quiet quiet;
    guarded @@ fun () ->
    let domains = resolve_domains domains in
    (match domains with
    | Some d -> Ax_pool.Pool.set_default_size d
    | None -> ());
    let graph, dataset =
      match net with
      | "lenet" ->
        (Ax_models.Lenet.build (), Ax_data.Mnist.generate ~n:images ())
      | "resnet" ->
        (Ax_models.Resnet.build ~depth (), Ax_data.Cifar.generate ~n:images ())
      | "mobilenet" ->
        (Ax_models.Mobilenet.build (), Ax_data.Cifar.generate ~n:images ())
      | other ->
        failwith
          (Printf.sprintf "unknown net %s (lenet, resnet or mobilenet)" other)
    in
    let lut =
      match lut_file with
      | None -> Tfapprox.Emulator.lut_of_multiplier multiplier
      | Some path -> (
        match Ax_resilience.Artefact.load_lut ?repair_with path with
        | Ok (lut, Ax_resilience.Artefact.Intact) ->
          Log.info
            ~fields:[ ("file", Ax_obs.Json.String path) ]
            (Printf.sprintf "loaded %s (checksum ok)" path);
          lut
        | Ok (lut, Ax_resilience.Artefact.Repaired _) ->
          (* the repair itself already warned on stderr *)
          lut
        (* a corrupt artefact is a runtime failure, not a usage error *)
        | Error e -> raise (Ax_arith.Load_error.Error e))
    in
    let graph = Tfapprox.Emulator.approximate_model ~lut ?domains graph in
    let trial_list =
      match target with
      | "lut" -> (
        match rates with
        | Some r ->
          Ax_resilience.Campaign.lut_rate_trials ~seed
            ~rates:(float_list ~what:"--rates" r)
        | None ->
          Ax_resilience.Campaign.lut_bit_trials ~seed ~sites
            ~bits:(int_list ~what:"--bits" bits) ())
      | "weights" ->
        Ax_resilience.Campaign.weight_trials ~seed ~trials ~sites ~bit graph
      | "activations" ->
        Ax_resilience.Campaign.activation_trials ~seed ~trials ~sites ~bit
          graph
      | other ->
        failwith
          (Printf.sprintf "unknown target %s (lut, weights or activations)"
             other)
    in
    let trial_list = Ax_resilience.Campaign.zero_fault_trial :: trial_list in
    let metrics = Ax_obs.Metrics.create () in
    let report =
      Ax_resilience.Campaign.run ~metrics ?domains
        { Ax_resilience.Campaign.graph; dataset;
          backend = Tfapprox.Emulator.Cpu_gemm }
        ~trials:trial_list
    in
    if csv then print_string (Ax_resilience.Campaign.csv report)
    else Format.printf "%a@." Ax_resilience.Campaign.pp report;
    match json_file with
    | None -> ()
    | Some path ->
      let text =
        Ax_obs.Json.to_string (Ax_resilience.Campaign.to_json report)
      in
      if path = "-" then print_endline text
      else begin
        write_file path text;
        Log.info (Printf.sprintf "wrote %s" path)
      end
  in
  let net =
    Arg.(
      value & opt string "resnet"
      & info [ "net" ] ~doc:"Model family: lenet, resnet or mobilenet.")
  in
  let depth =
    Arg.(value & opt int 8 & info [ "depth" ] ~doc:"ResNet depth.")
  in
  let lut_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "lut" ] ~docv:"FILE"
          ~doc:
            "Load the multiplier truth table from an AXLUT1 artefact \
             instead of tabulating $(b,--multiplier); corruption is \
             detected by checksum (see $(b,--repair-with)).")
  in
  let repair_with =
    Arg.(
      value
      & opt (some string) None
      & info [ "repair-with" ] ~docv:"MULTIPLIER"
          ~doc:
            "On a corrupt $(b,--lut) artefact, re-tabulate this registry \
             multiplier and continue instead of failing.")
  in
  let target =
    Arg.(
      value & opt string "lut"
      & info [ "target" ]
          ~doc:
            "Fault target: lut (texture memory), weights (parameter \
             memory) or activations (inter-layer buffers).")
  in
  let bits =
    Arg.(
      value & opt string "0,4,8,12,14,15"
      & info [ "bits" ] ~docv:"B1,B2,..."
          ~doc:"LUT product-bit positions to sweep (target lut).")
  in
  let sites =
    Arg.(
      value & opt int 32
      & info [ "sites" ] ~doc:"Fault sites injected per trial.")
  in
  let trials =
    Arg.(
      value & opt int 3
      & info [ "trials" ]
          ~doc:"Repetitions for weight/activation campaigns.")
  in
  let rates =
    Arg.(
      value
      & opt (some string) None
      & info [ "rates" ] ~docv:"R1,R2,..."
          ~doc:
            "Switch the lut target to a rate sweep: per-bit upset \
             probabilities, e.g. 1e-6,1e-5,1e-4.")
  in
  let images =
    Arg.(value & opt int 16 & info [ "images" ] ~doc:"Evaluation images.")
  in
  let bit =
    Arg.(
      value & opt int 23
      & info [ "bit" ]
          ~doc:
            "float32 bit position for weight/activation faults (23 = \
             lowest exponent bit).")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Campaign seed.")
  in
  let json_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the report as JSON to $(docv) (\"-\" for stdout).")
  in
  Cmd.v
    (Cmd.info "resilience"
       ~doc:
         "Seeded fault-injection campaign (SEU/stuck-at) over LUT, weight \
          or activation memory")
    Term.(
      const run $ net $ depth $ multiplier_term $ lut_file $ repair_with
      $ target $ bits $ sites $ trials $ rates $ images $ bit $ seed
      $ domains_term $ csv_term $ json_file $ quiet_term)

let perf_cmd =
  let module Perf = Tfapprox.Perf in
  let run history_file current_file threshold json_out quiet =
    apply_quiet quiet;
    guarded @@ fun () ->
    let threshold =
      match threshold with
      | Some t when t > 0. -> t
      | Some _ -> failwith "--threshold: expected a positive fraction"
      | None -> Perf.threshold_from_env ()
    in
    let history = Perf.load_history history_file in
    if not (Sys.file_exists current_file) then
      raise
        (Sys_error
           (Printf.sprintf "%s not found — run `dune exec bench -- gemm` first"
              current_file));
    let current = Perf.of_file current_file in
    let verdicts = Perf.gate ~threshold ~history ~current in
    (match json_out with
    | Some path ->
      let text =
        Ax_obs.Json.to_string (Perf.report_to_json ~threshold verdicts)
      in
      if path = "-" then print_endline text
      else begin
        write_file path text;
        Log.info (Printf.sprintf "wrote %s" path)
      end
    | None ->
      if history <> [] then begin
        Format.printf "benchmark history (%s):@." history_file;
        Format.printf "%a@." Perf.pp_history history
      end;
      if verdicts = [] then
        Format.printf
          "no history baseline yet — current run accepted as-is@."
      else begin
        Format.printf "regression gate (threshold %.0f%%):@."
          (100. *. threshold);
        Format.printf "%a@." Perf.pp_verdicts verdicts
      end);
    if Perf.regressed verdicts then exit 1
  in
  let history_file =
    let default =
      Option.value ~default:"BENCH_history.jsonl"
        (Sys.getenv_opt "TFAPPROX_BENCH_HISTORY")
    in
    Arg.(
      value & opt string default
      & info [ "history" ] ~docv:"FILE"
          ~doc:
            "JSON-lines benchmark history to gate against (defaults to \
             $(b,TFAPPROX_BENCH_HISTORY) or BENCH_history.jsonl).")
  in
  let current_file =
    Arg.(
      value & opt string "BENCH_gemm.json"
      & info [ "current" ] ~docv:"FILE"
          ~doc:"Current benchmark snapshot to judge.")
  in
  let threshold =
    Arg.(
      value
      & opt (some float) None
      & info [ "threshold" ] ~docv:"FRAC"
          ~doc:
            "Allowed regression fraction (e.g. 0.35); defaults to \
             $(b,TFAPPROX_PERF_THRESHOLD) or the built-in default.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:"Write the verdicts as JSON to $(docv) (\"-\" for stdout).")
  in
  Cmd.v
    (Cmd.info "perf"
       ~doc:
         "Compare the current benchmark snapshot against the recorded \
          trajectory; exits 1 when throughput or ns/MAC regressed past \
          the threshold")
    Term.(
      const run $ history_file $ current_file $ threshold $ json_out
      $ quiet_term)

let serve_cmd =
  let run listen models backend domains queue_capacity max_batch linger_ms
      retry_after_ms max_connections idle_timeout trace_file metrics_file
      quiet =
    apply_quiet quiet;
    guarded @@ fun () ->
    let address = Ax_serve.Server.parse_address listen in
    let backend = backend_of_string backend in
    let domains = Option.value ~default:1 (resolve_domains domains) in
    Ax_pool.Pool.set_default_size domains;
    if queue_capacity <= 0 then failwith "--queue-capacity: expected > 0";
    if max_batch <= 0 then failwith "--max-batch: expected > 0";
    if linger_ms < 0. then failwith "--linger-ms: expected >= 0";
    if retry_after_ms < 0 then failwith "--retry-after-ms: expected >= 0";
    if max_connections <= 0 then failwith "--max-connections: expected > 0";
    if idle_timeout < 0. then failwith "--idle-timeout: expected >= 0";
    let specs =
      List.map Ax_serve.Store.parse_spec
        (match models with
        | [] -> [ "resnet8=resnet8+mul8u_trunc8" ]
        | ms -> ms)
    in
    let metrics = Ax_obs.Metrics.create () in
    let tracer = Option.map (fun _ -> Ax_obs.Trace.create ()) trace_file in
    let store = Ax_serve.Store.load ~metrics ~domains specs in
    let config =
      {
        (Ax_serve.Server.default_config ~store ~address ()) with
        backend;
        domains;
        queue_capacity;
        max_batch;
        linger = linger_ms /. 1000.;
        retry_after_ms;
        max_connections;
        idle_timeout;
        metrics;
        trace = tracer;
      }
    in
    let server = Ax_serve.Server.start config in
    List.iter
      (fun s ->
        Sys.set_signal s
          (Sys.Signal_handle (fun _ -> Ax_serve.Server.request_stop server)))
      [ Sys.sigint; Sys.sigterm ];
    (* parseable by scripts: resolves an ephemeral tcp port *)
    Printf.printf "listening on %s\n%!"
      (Ax_serve.Server.address_to_string
         (Ax_serve.Server.bound_address server));
    Ax_serve.Server.wait server;
    Option.iter (fun t -> dump_trace ~metrics t trace_file) tracer;
    dump_metrics metrics metrics_file
  in
  let listen =
    Arg.(
      value
      & opt string "unix:/tmp/tfapprox.sock"
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Listen address: unix:PATH, tcp:HOST:PORT (port 0 binds an \
             ephemeral port, echoed on stdout) or a bare socket path.")
  in
  let models =
    Arg.(
      value & opt_all string []
      & info [ "model" ] ~docv:"SPEC"
          ~doc:
            "Model to serve (repeatable): NAME=ARCH[+MULTIPLIER][\\@LUTFILE] \
             with ARCH one of lenet, mobilenet, resnetD — or \
             NAME=FILE.axmdl[\\@HxWxC] (the .axmdl format stores no input \
             geometry; without \\@HxWxC the 32x32x3 CIFAR default is \
             assumed and verified at load).  Defaults to \
             resnet8=resnet8+mul8u_trunc8.")
  in
  let backend =
    Arg.(
      value & opt string "gemm"
      & info [ "backend" ] ~doc:"accurate, direct or gemm.")
  in
  let queue_capacity =
    Arg.(
      value & opt int 64
      & info [ "queue-capacity" ] ~docv:"N"
          ~doc:
            "Admission queue bound; requests beyond it are refused with a \
             typed Overloaded error and a retry hint.")
  in
  let max_batch =
    Arg.(
      value & opt int 8
      & info [ "max-batch" ] ~docv:"N"
          ~doc:"Requests coalesced into one scheduled batch.")
  in
  let linger_ms =
    Arg.(
      value & opt float 2.
      & info [ "linger-ms" ] ~docv:"MS"
          ~doc:
            "How long the scheduler lets concurrent requests coalesce \
             before forming a batch.")
  in
  let retry_after_ms =
    Arg.(
      value & opt int 50
      & info [ "retry-after-ms" ] ~docv:"MS"
          ~doc:"Hint returned with Overloaded refusals.")
  in
  let max_connections =
    Arg.(
      value & opt int 256
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "Concurrent connection cap; accepts past it are refused with \
             a typed Overloaded frame and closed without spawning a \
             thread.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 300.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Close a connection that delivers no complete frame for this \
             long (a stalled or silent peer must not pin a server thread \
             forever); 0 disables.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Long-lived inference daemon: batches concurrent requests over a \
          bounded admission queue; corrupt artefacts degrade single models, \
          malformed frames are typed per-connection errors")
    Term.(
      const run $ listen $ models $ backend $ domains_term $ queue_capacity
      $ max_batch $ linger_ms $ retry_after_ms $ max_connections
      $ idle_timeout $ trace_file_term $ metrics_file_term $ quiet_term)

let client_cmd =
  let run action connect model input_kind images seed count deadline_ms
      retries check_local backend timeout quiet =
    apply_quiet quiet;
    guarded @@ fun () ->
    let address = Ax_serve.Server.parse_address connect in
    let connect () = Ax_serve.Client.connect ~timeout address in
    let fail e = runtime_error (Ax_serve.Client.error_to_string e) in
    match action with
    | "ping" -> (
      let c = connect () in
      match Ax_serve.Client.ping c with
      | Ok () ->
        print_endline "pong";
        Ax_serve.Client.close c
      | Error e -> fail e)
    | "models" -> (
      let c = connect () in
      match Ax_serve.Client.list_models c with
      | Ok models ->
        List.iter
          (fun (name, st) ->
            match st with
            | `Ready -> Printf.printf "%-24s ready\n" name
            | `Unavailable reason ->
              Printf.printf "%-24s unavailable: %s\n" name reason)
          models;
        Ax_serve.Client.close c
      | Error e -> fail e)
    | "metrics" -> (
      let c = connect () in
      match Ax_serve.Client.metrics c with
      | Ok text ->
        print_string text;
        Ax_serve.Client.close c
      | Error e -> fail e)
    | "shutdown" -> (
      let c = connect () in
      match Ax_serve.Client.shutdown c with
      | Ok () ->
        print_endline "daemon stopping";
        Ax_serve.Client.close c
      | Error e -> fail e)
    | "garbage" -> (
      (* Containment probe: pour random bytes down one connection, then
         prove the daemon is still alive from a fresh one. *)
      let c = connect () in
      let st = Random.State.make [| seed; 0x6a72 |] in
      let junk =
        Bytes.init 512 (fun _ -> Char.chr (Random.State.int st 256))
      in
      Ax_serve.Client.send_raw c junk;
      (match Ax_serve.Client.read_response c with
      | _ -> ()
      | exception _ -> ());
      Ax_serve.Client.close c;
      let c2 = connect () in
      match Ax_serve.Client.ping c2 with
      | Ok () ->
        print_endline "daemon survived garbage";
        Ax_serve.Client.close c2
      | Error e -> fail e)
    | "infer" ->
      let data =
        match input_kind with
        | "cifar" ->
          (Ax_data.Cifar.generate ~seed ~n:images ()).Ax_data.Cifar.images
        | "mnist" ->
          (Ax_data.Mnist.generate ~seed ~n:images ()).Ax_data.Mnist.images
        | other ->
          failwith
            (Printf.sprintf "unknown input kind %s (cifar or mnist)" other)
      in
      let c = connect () in
      let infer_once id =
        let rec attempt tries =
          match Ax_serve.Client.infer c ~id ?deadline_ms ~model data with
          | Ok classes -> classes
          | Error
              (Ax_serve.Client.Refused
                { code = Ax_serve.Protocol.Overloaded; retry_after_ms; _ })
            when tries < retries ->
            (* same request id on the wire: inference is stateless, so
               the retry is idempotent by construction *)
            Unix.sleepf (float_of_int (max 1 retry_after_ms) /. 1000.);
            attempt (tries + 1)
          | Error e -> fail e
        in
        attempt 0
      in
      let first = infer_once 0 in
      for id = 1 to count - 1 do
        if infer_once id <> first then
          runtime_error "non-deterministic responses across repeats"
      done;
      Ax_serve.Client.close c;
      print_endline
        (String.concat " " (Array.to_list (Array.map string_of_int first)));
      (match check_local with
      | None -> ()
      | Some spec_text -> (
        let spec = Ax_serve.Store.parse_spec spec_text in
        let store = Ax_serve.Store.load ~domains:1 [ spec ] in
        match Ax_serve.Store.find store spec.Ax_serve.Store.name with
        | Some { status = Ax_serve.Store.Ready ready; _ } ->
          let local =
            Tfapprox.Emulator.predictions ~verify:false ~domains:1
              ready.Ax_serve.Store.graph
              ~backend:(backend_of_string backend)
              data
          in
          if local = first then
            print_endline "check-local: bit-identical to one-shot emulator"
          else
            runtime_error
              "daemon predictions differ from the local one-shot run"
        | Some { status = Ax_serve.Store.Unavailable reason; _ } ->
          runtime_error ("check-local model unavailable: " ^ reason)
        | None -> assert false))
    | other ->
      failwith
        (Printf.sprintf
           "unknown action %s (ping, models, metrics, infer, garbage or \
            shutdown)"
           other)
  in
  let action =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"ACTION"
          ~doc:"ping, models, metrics, infer, garbage or shutdown.")
  in
  let connect =
    Arg.(
      value
      & opt string "unix:/tmp/tfapprox.sock"
      & info [ "connect" ] ~docv:"ADDR"
          ~doc:"Daemon address: unix:PATH, tcp:HOST:PORT or a socket path.")
  in
  let model =
    Arg.(
      value & opt string "resnet8"
      & info [ "model" ] ~docv:"NAME" ~doc:"Served model name for infer.")
  in
  let input_kind =
    Arg.(
      value & opt string "cifar"
      & info [ "input" ] ~doc:"Generated request images: cifar or mnist.")
  in
  let images =
    Arg.(
      value & opt int 1
      & info [ "images" ] ~doc:"Images per inference request.")
  in
  let seed =
    Arg.(
      value & opt int 0
      & info [ "seed" ] ~doc:"Seed for generated images / garbage bytes.")
  in
  let count =
    Arg.(
      value & opt int 1
      & info [ "count" ]
          ~doc:
            "Repeat the identical infer request this many times and verify \
             the responses agree.")
  in
  let deadline_ms =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline-ms" ] ~docv:"MS"
          ~doc:
            "Per-request deadline; expired requests are answered \
             Deadline_exceeded at the batch boundary, never scheduled.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ]
          ~doc:
            "Idempotent retries on a typed Overloaded refusal, sleeping \
             the server's retry hint between attempts.")
  in
  let check_local =
    Arg.(
      value
      & opt (some string) None
      & info [ "check-local" ] ~docv:"SPEC"
          ~doc:
            "Load the same model spec in-process and verify the daemon's \
             predictions are bit-identical to a one-shot emulator run; \
             exits 1 on mismatch.")
  in
  let backend =
    Arg.(
      value & opt string "gemm"
      & info [ "backend" ]
          ~doc:"Backend for the $(b,--check-local) run: accurate, direct \
                or gemm.")
  in
  let timeout =
    Arg.(
      value & opt float 30.
      & info [ "timeout" ] ~docv:"SECONDS" ~doc:"Socket receive timeout.")
  in
  Cmd.v
    (Cmd.info "client"
       ~doc:
         "Talk to a running tfapprox serve daemon over the length-prefixed \
          binary protocol")
    Term.(
      const run $ action $ connect $ model $ input_kind $ images $ seed
      $ count $ deadline_ms $ retries $ check_local $ backend $ timeout
      $ quiet_term)

let explore_cmd =
  let module Search = Ax_explore.Search in
  let run seed generations population budget images model mutations domains
      json_out csv_out quiet =
    apply_quiet quiet;
    guarded @@ fun () ->
    let model = Search.model_of_string model in
    let domains = resolve_domains domains in
    (match domains with
    | Some d -> Ax_pool.Pool.set_default_size d
    | None -> ());
    let config =
      {
        Search.seed;
        generations;
        population;
        budget;
        images;
        model;
        mutations;
        max_domains = domains;
      }
    in
    let result = Search.run config in
    let emit out text =
      match out with
      | None -> ()
      | Some "-" -> print_string text
      | Some path -> write_file path text
    in
    emit json_out (Search.front_json_string result);
    emit csv_out (Search.front_csv_string result);
    Format.printf "%a@." Search.pp_front result;
    (* A search that certified nothing has no usable outcome: that is a
       runtime failure of the run, not an operator typo. *)
    if result.Search.front = [] then
      runtime_error "search produced an empty Pareto front"
  in
  let seed =
    Arg.(
      value & opt int Search.default_config.Search.seed
      & info [ "seed" ] ~doc:"Mutation RNG seed; the run is a pure \
                              function of the flags and this seed.")
  in
  let generations =
    Arg.(
      value & opt int Search.default_config.Search.generations
      & info [ "generations" ]
          ~doc:"Mutation rounds after the seeded generation 0.")
  in
  let population =
    Arg.(
      value & opt int Search.default_config.Search.population
      & info [ "population" ] ~doc:"Candidates per generation.")
  in
  let budget =
    Arg.(
      value & opt int 0
      & info [ "budget" ]
          ~doc:
            "Cap on candidate evaluations across the whole run; 0 means \
             population * (generations + 1).")
  in
  let images =
    Arg.(
      value & opt int Search.default_config.Search.images
      & info [ "images" ] ~doc:"Dataset size for the accuracy objective.")
  in
  let model =
    Arg.(
      value & opt string (Search.model_name Search.default_config.Search.model)
      & info [ "model" ] ~doc:"Scoring network: resnet8 or lenet.")
  in
  let mutations =
    Arg.(
      value & opt int Search.default_config.Search.mutations
      & info [ "mutations" ] ~doc:"Mutation operations applied per child.")
  in
  let json_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write the Pareto front as deterministic JSON to $(docv) \
             (\"-\" for stdout); byte-identical across reruns and \
             $(b,--domains) settings.")
  in
  let csv_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"FILE"
          ~doc:"Write the Pareto front as CSV to $(docv) (\"-\" for stdout).")
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Seeded evolutionary search over certified 8x8 multiplier \
          netlists, Pareto-optimal in accuracy vs relative MAC energy")
    Term.(
      const run $ seed $ generations $ population $ budget $ images $ model
      $ mutations $ domains_term $ json_out $ csv_out $ quiet_term)

let () =
  Log.init_from_env ();
  let doc = "TFApprox-style emulation of approximate DNN accelerators" in
  let info = Cmd.info "tfapprox" ~version:Tfapprox.Version.version ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            table1_cmd; fig2_cmd; sweep_cmd; multipliers_cmd; verilog_cmd;
            lut_cmd; search_cmd; explore_cmd; model_cmd; analyze_cmd;
            trace_cmd; check_cmd; resilience_cmd; perf_cmd; serve_cmd;
            client_cmd;
          ]))
