test/test_core.ml: Alcotest Array Ax_arith Ax_data Ax_gpusim Ax_models Ax_nn Ax_tensor Buffer Float Format List Printf String Tfapprox
