examples/finetune.ml: Array Ax_data Ax_models Ax_nn Ax_train Format Tfapprox
