lib/netlist/multipliers.mli: Circuit
