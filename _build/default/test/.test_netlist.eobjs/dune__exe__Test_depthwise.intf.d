test/test_depthwise.mli:
