(** Gate primitives of the netlist substrate.

    A gate refers to its fan-in signals by node index inside a
    {!Circuit.t}.  Only one- and two-input primitives are provided; wider
    functions are built structurally from these. *)

type t =
  | Input of string  (** primary input with a diagnostic name *)
  | Const of bool    (** constant driver *)
  | Buf of int       (** identity; used to alias signals at outputs *)
  | Not of int
  | And2 of int * int
  | Or2 of int * int
  | Xor2 of int * int
  | Nand2 of int * int
  | Nor2 of int * int
  | Xnor2 of int * int

val fanin : t -> int list
(** [fanin g] lists the node indices [g] reads, in argument order. *)

val is_combinational : t -> bool
(** [is_combinational g] is [false] exactly for [Input] and [Const]
    nodes, which are sources rather than logic. *)

val name : t -> string
(** Short mnemonic used by the Verilog printer and debug dumps. *)

val eval : t -> (int -> bool) -> bool
(** [eval g lookup] computes the Boolean value of [g] given a function
    resolving fan-in indices to values.  [Input] nodes cannot be
    evaluated this way and raise [Invalid_argument]. *)

val eval_word : t -> (int -> int64) -> int64
(** Bit-parallel variant of {!eval}: each of the 64 lanes of the word
    carries an independent evaluation. *)

val pp : Format.formatter -> t -> unit
