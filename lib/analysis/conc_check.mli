(** The CONC rule family: concurrency findings as catalogued
    diagnostics, and the check units behind
    [tfapprox check --suite concurrency].

    Two kinds of unit.  Checks of the {e real} code — the migrated
    pool under record-mode discipline tracking, the fixed coordinator
    protocol under deterministic exploration — must come back clean.
    Seeded-defect self-tests (a deliberately racy counter, a
    deliberate lock-order inversion, the pre-fix [run_slots]
    coordinator race) must be {e flagged}: the expected finding is
    consumed as proof the detector still sees, and a missed one is
    reported as [conc/blind-detector] (CONC009), so a regression in
    the checkers themselves fails the suite instead of silently
    passing everything. *)

val to_diagnostic : Ax_conc.Conc.finding -> Diagnostic.t
(** Map a raw finding onto its CONC catalogue rule (the lock or cell
    name becomes the [Artefact] location). *)

val to_diagnostics : Ax_conc.Conc.finding list -> Diagnostic.t list

val diagnostics_of_outcome :
  subject:string -> Ax_conc.Explore.outcome -> Diagnostic.t list
(** An exploration outcome as diagnostics: no violation is an empty
    report; a violation is a [conc/explore-deadlock] or
    [conc/explore-violation] error carrying the replay schedule. *)

val suite : unit -> (string * Diagnostic.t list) list
(** All pool-side concurrency check units, as [(unit name, findings)]
    pairs — the serve-side units live in [Ax_serve.Conc_scenarios]. *)
