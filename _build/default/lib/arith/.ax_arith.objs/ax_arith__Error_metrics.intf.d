lib/arith/error_metrics.mli: Format Lut Signedness
