lib/arith/exact.ml:
