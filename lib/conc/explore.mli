(** Deterministic cooperative scheduler: model-check small multi-thread
    scenarios by exhaustively (or preemption-boundedly) exploring the
    interleavings of their {!Ax_conc} synchronization operations.

    A scenario is a setup thunk returning the thread bodies:

    {[
      Explore.explore (fun () ->
          let m = Mutex.create ~name:"m" () in
          let hits = Explore.var ~name:"hits" 0 in
          let body () =
            Mutex.with_lock m (fun () ->
                Explore.set hits (Explore.get hits + 1))
          in
          [ body; body ])
    ]}

    The setup thunk and the [?after] checks run directly (no
    interleaving — they are ordered before/after all threads); the
    bodies run as effect-based coroutines on the calling thread, so no
    real threads are involved and every run is deterministic.  Each
    operation on a shim ({!Mutex}, {!Condition}, {!Atomic}, {!Race}) or
    a {!var} is a scheduling point.

    Violations reported: a failed {!check}, a data race on a tracked
    cell/var (FastTrack over {!Vclock}), deadlock, a lock still held at
    scenario end, an uncaught exception in a body, or an invalid
    replay schedule. *)

type outcome =
  | No_violation of { schedules : int; complete : bool }
      (** [complete] is false when the [max_schedules] cap stopped the
          search before exhausting the (bounded) state space. *)
  | Violation of { schedule : int list; message : string }
      (** [schedule] replays the failure deterministically via
          {!replay}. *)

val outcome_to_string : outcome -> string

val explore :
  ?max_preemptions:int ->
  ?max_schedules:int ->
  ?after:(unit -> unit) ->
  (unit -> (unit -> unit) list) ->
  outcome
(** Run the scenario under every schedule (depth-first over choice
    points).  [max_preemptions] bounds the number of context switches
    away from a still-runnable thread (omit for full exploration);
    [max_schedules] caps the number of runs (default 4000).  The
    scenario must be deterministic apart from scheduling. *)

val replay :
  ?after:(unit -> unit) -> schedule:int list -> (unit -> (unit -> unit) list) -> outcome
(** Re-run one specific schedule (e.g. the one a {!Violation}
    reported); policy choices take over past the end of the list. *)

val schedule_to_string : int list -> string

val schedule_of_string : string -> int list
(** Inverse of {!schedule_to_string}; raises [Invalid_argument] on a
    malformed token. *)

(** {1 Scenario-side helpers} *)

type 'a var
(** A shared variable whose accesses are scheduling points; with
    [track] (the default) they also feed the per-run race detector. *)

val var : ?track:bool -> name:string -> 'a -> 'a var
val get : 'a var -> 'a
val set : 'a var -> 'a -> unit

val check : bool -> string -> unit
(** Assert a scenario invariant; a failure is a violation attributed to
    the current schedule.  Usable from bodies and from [?after]. *)

val yield : unit -> unit
(** An explicit scheduling point with no other effect. *)
