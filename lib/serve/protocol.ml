module Load_error = Ax_arith.Load_error
module Checksum = Ax_arith.Checksum
module Tensor = Ax_tensor.Tensor
module Shape = Ax_tensor.Shape

let magic = "AXS1"
let max_payload_bytes = 16 * 1024 * 1024
let header_bytes = 8

(* Dimension sanity bounds: a corrupted shape field must not multiply
   into an overflowing or absurd allocation before the byte-budget
   check ([need]) can catch it. *)
let max_batch_dim = 65_536
let max_spatial_dim = 4_096
let max_string_bytes = 65_536
let max_model_list = 4_096

type error_code =
  | Bad_request
  | Unknown_model
  | Model_unavailable
  | Overloaded
  | Deadline_exceeded
  | Internal
  | Shutting_down

let error_code_name = function
  | Bad_request -> "bad-request"
  | Unknown_model -> "unknown-model"
  | Model_unavailable -> "model-unavailable"
  | Overloaded -> "overloaded"
  | Deadline_exceeded -> "deadline-exceeded"
  | Internal -> "internal"
  | Shutting_down -> "shutting-down"

let error_code_tag = function
  | Bad_request -> 0
  | Unknown_model -> 1
  | Model_unavailable -> 2
  | Overloaded -> 3
  | Deadline_exceeded -> 4
  | Internal -> 5
  | Shutting_down -> 6

let error_code_of_tag = function
  | 0 -> Some Bad_request
  | 1 -> Some Unknown_model
  | 2 -> Some Model_unavailable
  | 3 -> Some Overloaded
  | 4 -> Some Deadline_exceeded
  | 5 -> Some Internal
  | 6 -> Some Shutting_down
  | _ -> None

type request =
  | Ping
  | List_models
  | Infer of {
      id : int;
      model : string;
      deadline_ms : int option;
      input : Tensor.t;
    }
  | Metrics
  | Shutdown

type response =
  | Pong
  | Models of (string * [ `Ready | `Unavailable of string ]) list
  | Predictions of { id : int; classes : int array }
  | Metrics_dump of string
  | Shutdown_ack
  | Error of {
      id : int option;
      code : error_code;
      retry_after_ms : int;
      message : string;
    }

let tensor_equal a b =
  Shape.equal (Tensor.shape a) (Tensor.shape b)
  &&
  let n = Tensor.num_elements a in
  let rec go i =
    i >= n
    || (Float.equal (Tensor.get_flat a i) (Tensor.get_flat b i) && go (i + 1))
  in
  go 0

let request_equal a b =
  match (a, b) with
  | Ping, Ping | List_models, List_models | Metrics, Metrics
  | Shutdown, Shutdown ->
    true
  | Infer a, Infer b ->
    a.id = b.id && a.model = b.model && a.deadline_ms = b.deadline_ms
    && tensor_equal a.input b.input
  | _ -> false

let response_equal a b =
  match (a, b) with
  | Pong, Pong | Shutdown_ack, Shutdown_ack -> true
  | Models a, Models b -> a = b
  | Predictions a, Predictions b -> a.id = b.id && a.classes = b.classes
  | Metrics_dump a, Metrics_dump b -> a = b
  | Error a, Error b ->
    a.id = b.id && a.code = b.code && a.retry_after_ms = b.retry_after_ms
    && a.message = b.message
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let u32_mask = 0xFFFF_FFFF

(* 0xFFFFFFFF is the on-wire [None] for the optional deadline and the
   optional error id.  To keep encode/decode a bijection the sentinel is
   *reserved*: user-supplied values are rejected at encode time and a
   hand-crafted frame carrying it is a typed decode error, so [Some
   0xFFFFFFFF] can never silently turn into [None] on the far side. *)
let no_deadline = u32_mask
let no_id = u32_mask
let max_id = u32_mask - 1

let check_u32 ~what v =
  if v < 0 || v > u32_mask then
    invalid_arg (Printf.sprintf "Protocol: %s %d outside 0..%d" what v u32_mask)

let check_reserved ~what v =
  if v < 0 || v > max_id then
    invalid_arg
      (Printf.sprintf "Protocol: %s %d outside 0..%d (0x%X is reserved)" what v
         max_id u32_mask)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xFF))
let add_u32 b v = Checksum.append_u32_le b (v land u32_mask)

let add_string b s =
  add_u32 b (String.length s);
  Buffer.add_string b s

let add_f32 b v = Buffer.add_int32_le b (Int32.bits_of_float v)

let add_tensor b t =
  let s = Tensor.shape t in
  add_u32 b s.Shape.n;
  add_u32 b s.Shape.h;
  add_u32 b s.Shape.w;
  add_u32 b s.Shape.c;
  let n = Tensor.num_elements t in
  for i = 0 to n - 1 do
    add_f32 b (Tensor.get_flat t i)
  done

let encode_request r =
  let b = Buffer.create 64 in
  (match r with
  | Ping -> add_u8 b 1
  | List_models -> add_u8 b 2
  | Infer { id; model; deadline_ms; input } ->
    add_u8 b 3;
    check_reserved ~what:"Infer id" id;
    Option.iter (check_reserved ~what:"deadline_ms") deadline_ms;
    add_u32 b id;
    add_u32 b (match deadline_ms with None -> no_deadline | Some ms -> ms);
    add_string b model;
    add_tensor b input
  | Metrics -> add_u8 b 4
  | Shutdown -> add_u8 b 5);
  Buffer.to_bytes b

let encode_response r =
  let b = Buffer.create 64 in
  (match r with
  | Pong -> add_u8 b 10
  | Models models ->
    add_u8 b 11;
    add_u32 b (List.length models);
    List.iter
      (fun (name, status) ->
        add_string b name;
        match status with
        | `Ready ->
          add_u8 b 0;
          add_string b ""
        | `Unavailable reason ->
          add_u8 b 1;
          add_string b reason)
      models
  | Predictions { id; classes } ->
    add_u8 b 12;
    check_u32 ~what:"Predictions id" id;
    add_u32 b id;
    add_u32 b (Array.length classes);
    Array.iter (fun c -> add_u32 b c) classes
  | Metrics_dump text ->
    add_u8 b 13;
    add_string b text
  | Shutdown_ack -> add_u8 b 14
  | Error { id; code; retry_after_ms; message } ->
    add_u8 b 15;
    Option.iter (check_reserved ~what:"Error id") id;
    check_u32 ~what:"retry_after_ms" retry_after_ms;
    add_u32 b (match id with None -> no_id | Some id -> id);
    add_u8 b (error_code_tag code);
    add_u32 b retry_after_ms;
    add_string b message);
  Buffer.to_bytes b

(* ------------------------------------------------------------------ *)
(* Decoding                                                            *)
(* ------------------------------------------------------------------ *)

exception Fail of Load_error.t

type cursor = { buf : Bytes.t; mutable pos : int; limit : int }

let need c ~what n =
  if n < 0 || c.pos + n > c.limit then
    raise
      (Fail
         (Load_error.Truncated
            { what; needed = c.pos + n; available = c.limit }))

let malformed ~what detail = raise (Fail (Load_error.Malformed { what; detail }))

let get_u8 c ~what =
  need c ~what 1;
  let v = Char.code (Bytes.get c.buf c.pos) in
  c.pos <- c.pos + 1;
  v

let get_u32 c ~what =
  need c ~what 4;
  let v = Checksum.read_u32_le c.buf ~pos:c.pos in
  c.pos <- c.pos + 4;
  v

let get_bounded_string c ~what ~bound =
  let len = get_u32 c ~what in
  if len > bound then
    malformed ~what (Printf.sprintf "string length %d exceeds %d" len bound);
  need c ~what len;
  let s = Bytes.sub_string c.buf c.pos len in
  c.pos <- c.pos + len;
  s

let get_string c ~what = get_bounded_string c ~what ~bound:max_string_bytes

let get_f32 c ~what =
  need c ~what 4;
  let v = Int32.float_of_bits (Bytes.get_int32_le c.buf c.pos) in
  c.pos <- c.pos + 4;
  v

let get_tensor c ~what =
  let n = get_u32 c ~what in
  let h = get_u32 c ~what in
  let w = get_u32 c ~what in
  let cc = get_u32 c ~what in
  if n < 1 || n > max_batch_dim then
    malformed ~what (Printf.sprintf "batch dimension %d outside 1..%d" n max_batch_dim);
  let dim name v =
    if v < 1 || v > max_spatial_dim then
      malformed ~what
        (Printf.sprintf "%s dimension %d outside 1..%d" name v max_spatial_dim)
  in
  dim "height" h;
  dim "width" w;
  dim "channel" cc;
  let elems = n * h * w * cc in
  need c ~what (4 * elems);
  let t = Tensor.create (Shape.make ~n ~h ~w ~c:cc) in
  for i = 0 to elems - 1 do
    Tensor.set_flat t i (get_f32 c ~what)
  done;
  t

let finish c ~what v =
  if c.pos <> c.limit then
    malformed ~what (Printf.sprintf "%d trailing byte(s)" (c.limit - c.pos))
  else v

let decoding ~what buf go =
  let c = { buf; pos = 0; limit = Bytes.length buf } in
  match finish c ~what (go c) with
  | v -> Ok v
  | exception Fail e -> Stdlib.Error e
  | exception Invalid_argument detail ->
    (* belt and braces: a decoder bug must still surface as a typed
       error, never crash a connection *)
    Stdlib.Error (Load_error.Malformed { what; detail })

let decode_request buf =
  let what = "serve request" in
  decoding ~what buf @@ fun c ->
  match get_u8 c ~what with
  | 1 -> Ping
  | 2 -> List_models
  | 3 ->
    let id = get_u32 c ~what in
    if id = no_id then
      malformed ~what
        (Printf.sprintf "request id 0x%X is reserved" no_id);
    let deadline = get_u32 c ~what in
    let model = get_string c ~what in
    let input = get_tensor c ~what in
    Infer
      {
        id;
        model;
        deadline_ms = (if deadline = no_deadline then None else Some deadline);
        input;
      }
  | 4 -> Metrics
  | 5 -> Shutdown
  | tag -> raise (Fail (Load_error.Bad_tag { what; field = "request kind"; tag }))

let decode_response buf =
  let what = "serve response" in
  decoding ~what buf @@ fun c ->
  match get_u8 c ~what with
  | 10 -> Pong
  | 11 ->
    let count = get_u32 c ~what in
    if count > max_model_list then
      malformed ~what (Printf.sprintf "model count %d exceeds %d" count max_model_list);
    let models =
      List.init count (fun _ ->
          let name = get_string c ~what in
          let status_tag = get_u8 c ~what in
          let detail = get_string c ~what in
          match status_tag with
          | 0 -> (name, `Ready)
          | 1 -> (name, `Unavailable detail)
          | tag ->
            raise
              (Fail (Load_error.Bad_tag { what; field = "model status"; tag })))
    in
    Models models
  | 12 ->
    let id = get_u32 c ~what in
    let count = get_u32 c ~what in
    if count > max_batch_dim then
      malformed ~what (Printf.sprintf "prediction count %d exceeds %d" count max_batch_dim);
    need c ~what (4 * count);
    let classes = Array.init count (fun _ -> get_u32 c ~what) in
    Predictions { id; classes }
  | 13 ->
    (* Prometheus dumps routinely outgrow model-name-sized strings;
       bound them by the frame budget instead. *)
    Metrics_dump (get_bounded_string c ~what ~bound:max_payload_bytes)
  | 14 -> Shutdown_ack
  | 15 ->
    let id = get_u32 c ~what in
    let code_tag = get_u8 c ~what in
    let retry_after_ms = get_u32 c ~what in
    let message = get_string c ~what in
    (match error_code_of_tag code_tag with
    | None ->
      raise (Fail (Load_error.Bad_tag { what; field = "error code"; tag = code_tag }))
    | Some code ->
      Error
        { id = (if id = no_id then None else Some id); code; retry_after_ms; message })
  | tag -> raise (Fail (Load_error.Bad_tag { what; field = "response kind"; tag }))

(* ------------------------------------------------------------------ *)
(* Framing                                                             *)
(* ------------------------------------------------------------------ *)

let frame payload =
  let len = Bytes.length payload in
  if len > max_payload_bytes then
    invalid_arg
      (Printf.sprintf "Protocol.frame: payload %d exceeds %d bytes" len
         max_payload_bytes);
  let out = Bytes.create (header_bytes + len + 4) in
  Bytes.blit_string magic 0 out 0 4;
  Checksum.write_u32_le out ~pos:4 len;
  Bytes.blit payload 0 out header_bytes len;
  Checksum.write_u32_le out ~pos:(header_bytes + len)
    (Checksum.of_bytes payload ~pos:0 ~len);
  out

let what_frame = "serve frame"

let check_header buf =
  let available = Bytes.length buf in
  if available < header_bytes then
    Stdlib.Error
      (Load_error.Truncated { what = what_frame; needed = header_bytes; available })
  else
    let actual = Bytes.sub_string buf 0 4 in
    if actual <> magic then
      Stdlib.Error
        (Load_error.Bad_magic { what = what_frame; expected = magic; actual })
    else
      let len = Checksum.read_u32_le buf ~pos:4 in
      if len > max_payload_bytes then
        Stdlib.Error
          (Load_error.Malformed
             {
               what = what_frame;
               detail =
                 Printf.sprintf "oversized frame: %d > %d payload bytes" len
                   max_payload_bytes;
             })
      else Ok len

let check_crc ~payload ~expected =
  let actual = Checksum.of_bytes payload ~pos:0 ~len:(Bytes.length payload) in
  if actual <> expected then
    Stdlib.Error (Load_error.Bad_checksum { what = what_frame; expected; actual })
  else Ok payload

let parse_frame buf =
  match check_header buf with
  | Error _ as e -> e
  | Ok len ->
    let total = header_bytes + len + 4 in
    let available = Bytes.length buf in
    if available < total then
      Stdlib.Error
        (Load_error.Truncated { what = what_frame; needed = total; available })
    else if available > total then
      Stdlib.Error
        (Load_error.Malformed
           {
             what = what_frame;
             detail = Printf.sprintf "%d trailing byte(s)" (available - total);
           })
    else
      check_crc
        ~payload:(Bytes.sub buf header_bytes len)
        ~expected:(Checksum.read_u32_le buf ~pos:(header_bytes + len))

let recoverable = function Load_error.Bad_checksum _ -> true | _ -> false

(* ------------------------------------------------------------------ *)
(* Blocking I/O                                                        *)
(* ------------------------------------------------------------------ *)

(* A peer that vanishes mid-stream (RST instead of FIN) is the same
   condition as a clean close for framing purposes: the stream ended. *)

(* [SO_RCVTIMEO] expiring surfaces as [EAGAIN]/[EWOULDBLOCK]; the frame
   readers turn it into [`Timeout] so a stalled peer is a policy
   decision of the caller, not a stuck thread. *)
exception Read_timed_out

let rec read_retry fd buf pos len =
  match Unix.read fd buf pos len with
  | n -> n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> read_retry fd buf pos len
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
    raise Read_timed_out
  | exception
      Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE | Unix.ECONNABORTED), _, _)
    -> 0

(* [`All] when [len] bytes arrived, [`Short n] when the stream ended
   after [n] of them. *)
let really_read fd buf ~pos ~len =
  let rec go got =
    if got >= len then `All
    else
      match read_retry fd buf (pos + got) (len - got) with
      | 0 -> `Short got
      | n -> go (got + n)
  in
  go 0

let read_frame_blocking fd =
  let header = Bytes.create header_bytes in
  match really_read fd header ~pos:0 ~len:header_bytes with
  | `Short 0 -> `Eof
  | `Short available ->
    `Err (Load_error.Truncated { what = what_frame; needed = header_bytes; available })
  | `All -> (
    match check_header header with
    | Error e -> `Err e
    | Ok len -> (
      let rest = Bytes.create (len + 4) in
      match really_read fd rest ~pos:0 ~len:(len + 4) with
      | `Short available ->
        `Err
          (Load_error.Truncated
             {
               what = what_frame;
               needed = header_bytes + len + 4;
               available = header_bytes + available;
             })
      | `All -> (
        match
          check_crc
            ~payload:(Bytes.sub rest 0 len)
            ~expected:(Checksum.read_u32_le rest ~pos:len)
        with
        | Ok payload -> `Payload payload
        | Error e -> `Err e)))

let read_frame fd =
  match read_frame_blocking fd with
  | r -> (r :> [ `Payload of Bytes.t | `Eof | `Err of Load_error.t | `Timeout ])
  | exception Read_timed_out -> `Timeout

let write_all fd buf =
  let len = Bytes.length buf in
  let rec go sent =
    if sent < len then
      match Unix.single_write fd buf sent (len - sent) with
      | n -> go (sent + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go sent
  in
  go 0

let write_frame fd payload = write_all fd (frame payload)
