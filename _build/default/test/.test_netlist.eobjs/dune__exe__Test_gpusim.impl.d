test/test_gpusim.ml: Alcotest Array Ax_arith Ax_gpusim Ax_models Ax_nn Ax_quant Ax_tensor List Printf
