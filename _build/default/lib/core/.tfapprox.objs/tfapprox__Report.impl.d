lib/core/report.ml: Ax_nn Buffer Experiments Format List Printf
