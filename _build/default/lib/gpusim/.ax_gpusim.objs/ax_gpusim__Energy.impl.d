lib/gpusim/energy.ml: Ax_netlist Lazy
