test/test_nn_graph.ml: Alcotest Array Ax_arith Ax_nn Ax_tensor List Option Printf String Unix
