(* Cross-module property tests: randomized invariants that tie the
   substrates together (netlist <-> behavioural <-> BDD <-> emulator),
   plus failure-injection scenarios. *)

module Circuit = Ax_netlist.Circuit
module Sim = Ax_netlist.Sim
module Bdd = Ax_netlist.Bdd
module Opt = Ax_netlist.Opt
module Multipliers = Ax_netlist.Multipliers
module Search = Ax_arith.Search
module Lut = Ax_arith.Lut
module S = Ax_arith.Signedness
module Faults = Ax_arith.Faults
module Q = Ax_quant.Quantization
module Round = Ax_quant.Round
module Range = Ax_quant.Range
module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Rng = Ax_tensor.Rng
module Filter = Ax_nn.Filter
module Axconv = Ax_nn.Axconv
module Conv_spec = Ax_nn.Conv_spec
module Graph = Ax_nn.Graph
module Registry = Ax_arith.Registry

(* --- random expression circuits: Sim vs BDD agree --- *)

(* Build a random 4-input circuit from a seed; return it. *)
let random_circuit seed =
  let rng = Rng.create seed in
  let c = Circuit.create () in
  let pool = ref (Array.to_list (Ax_netlist.Bus.input c "x" 4)) in
  for _ = 1 to 8 + Rng.int rng 8 do
    let pick () = List.nth !pool (Rng.int rng (List.length !pool)) in
    let a = pick () and b = pick () in
    let node =
      match Rng.int rng 6 with
      | 0 -> Circuit.and_ c a b
      | 1 -> Circuit.or_ c a b
      | 2 -> Circuit.xor_ c a b
      | 3 -> Circuit.nand_ c a b
      | 4 -> Circuit.nor_ c a b
      | _ -> Circuit.not_ c a
    in
    pool := node :: !pool
  done;
  (match !pool with
  | out :: _ -> Circuit.output c "y" out
  | [] -> assert false);
  c

let prop_sim_and_bdd_agree =
  QCheck.Test.make ~name:"random circuit: simulator and BDD agree on truth table"
    ~count:60 QCheck.small_int (fun seed ->
      let c = random_circuit seed in
      let m = Bdd.manager () in
      let outs = Bdd.of_circuit m c in
      let node = List.assoc "y" outs in
      (* Compare satisfy count against exhaustive simulation. *)
      let sim_count = ref 0 in
      for v = 0 to 15 do
        let out = Sim.eval_unsigned c ~input_bits:[ 1; 1; 1; 1 ] v in
        if out land 1 = 1 then incr sim_count
      done;
      Bdd.satisfy_count m ~vars:4 node = float_of_int !sim_count)

let prop_strip_dead_preserves_function =
  QCheck.Test.make ~name:"strip_dead preserves random circuit functions"
    ~count:40 QCheck.small_int (fun seed ->
      let c = random_circuit seed in
      Bdd.equivalent c (Opt.strip_dead c))

(* --- pruned multipliers: netlist vs behavioural on random masks --- *)

let prop_random_mask_netlist_matches_model =
  QCheck.Test.make
    ~name:"random pruning mask: gate level equals behavioural model"
    ~count:8 QCheck.small_int (fun seed ->
      let mask =
        let rng = Rng.create (seed + 1000) in
        Array.init 16 (fun _ -> Rng.int rng 2 = 1)
      in
      (* 4x4 multiplier keeps the test cheap but exhaustive. *)
      let netlist =
        Multipliers.pruned ~bits:4
          ~keep:(fun i j -> mask.((i * 4) + j))
          ~name:"random_mask"
      in
      let gate_fn = Multipliers.behavioural netlist in
      let model =
        Ax_arith.Truncation.pruned ~bits:4 ~keep:(fun i j -> mask.((i * 4) + j))
      in
      let ok = ref true in
      for a = 0 to 15 do
        for b = 0 to 15 do
          if gate_fn a b <> model a b then ok := false
        done
      done;
      !ok)

let prop_pruning_never_overestimates =
  QCheck.Test.make ~name:"any pruning mask only removes product mass"
    ~count:200
    QCheck.(triple small_int (int_bound 255) (int_bound 255))
    (fun (seed, a, b) ->
      let rng = Rng.create seed in
      let mask = Array.init 64 (fun _ -> Rng.int rng 2 = 1) in
      Search.multiply_of_mask mask a b <= a * b)

(* --- LUT and fault injection --- *)

let prop_faulty_lut_is_still_total =
  (* Whatever garbage the multiplier returns, the LUT pipeline stays
     total: every lookup decodes to a saturated 16-bit value. *)
  QCheck.Test.make ~name:"fault-injected LUTs stay within 16-bit range"
    ~count:100
    QCheck.(triple (int_bound 255) (int_bound 255) (float_range 0. 0.3))
    (fun (a, b, p) ->
      let f = Faults.random_flip ~probability:p ~seed:3 ~bits:16 Ax_arith.Exact.mul8u in
      let lut = Lut.make ~signedness:S.Unsigned f in
      let v = Lut.lookup_value lut a b in
      v >= 0 && v <= 65535)

let prop_lut_roundtrip_bytes =
  QCheck.Test.make ~name:"LUT to_bytes/of_bytes roundtrip" ~count:10
    QCheck.small_int (fun seed ->
      let f =
        Faults.random_flip ~probability:0.01 ~seed ~bits:16
          Ax_arith.Exact.mul8u
      in
      let lut = Lut.make ~signedness:S.Unsigned f in
      let decoded, _ = Lut.of_bytes (Lut.to_bytes lut) ~pos:0 in
      Lut.equal lut decoded)

(* --- emulator invariants under random geometry --- *)

let prop_axconv_batch_permutation_equivariant =
  (* Emulating a permuted batch = permuting the emulated outputs: the
     quantization ranges are batch-global, so this holds exactly. *)
  QCheck.Test.make ~name:"AxConv2D commutes with batch permutation" ~count:20
    QCheck.small_int (fun seed ->
      let rng = Rng.create (seed + 77) in
      let n = 3 + Rng.int rng 3 in
      let input = Tensor.create (Shape.make ~n ~h:6 ~w:6 ~c:2) in
      Tensor.fill_uniform ~lo:(-1.) ~hi:1. (Rng.create seed) input;
      let filter = Filter.create ~kh:3 ~kw:3 ~in_c:2 ~out_c:3 in
      Filter.fill_he_normal (Rng.create (seed + 1)) filter;
      let config =
        Axconv.make_config (Registry.lut (Registry.find_exn "mul8s_trunc6"))
      in
      let input_range = Range.of_tensor input in
      let fmin, fmax = Filter.min_max filter in
      let filter_range = Range.make ~min:fmin ~max:fmax in
      let conv x =
        Axconv.conv ~config ~input:x ~input_range ~filter ~filter_range
          ~spec:Conv_spec.default ()
      in
      (* Rotate the batch by one. *)
      let rotated =
        Tensor.concat_batch
          [
            Tensor.slice_batch input ~start:1 ~count:(n - 1);
            Tensor.slice_batch input ~start:0 ~count:1;
          ]
      in
      let direct = conv rotated in
      let expected =
        let out = conv input in
        Tensor.concat_batch
          [
            Tensor.slice_batch out ~start:1 ~count:(n - 1);
            Tensor.slice_batch out ~start:0 ~count:1;
          ]
      in
      Tensor.max_abs_diff direct expected = 0.)

let prop_transform_node_arithmetic =
  QCheck.Test.make ~name:"transform adds exactly 4 nodes per convolution"
    ~count:20
    QCheck.(int_range 0 4)
    (fun blocks ->
      let g =
        if blocks = 0 then Ax_models.Resnet.build ~depth:8 ()
        else Ax_models.Mobilenet.build ~blocks ()
      in
      let convs = List.length (Graph.conv_layers g) in
      let approx =
        Tfapprox.Emulator.approximate_model ~multiplier:"mul8s_exact" g
      in
      Graph.size approx = Graph.size g + (4 * convs))

let prop_model_io_roundtrip_random_graphs =
  QCheck.Test.make ~name:"model serialization roundtrips random models"
    ~count:6
    QCheck.(pair (int_range 1 3) bool)
    (fun (blocks, transform) ->
      let g = Ax_models.Mobilenet.build ~blocks ~width:4 () in
      let g =
        if transform then
          Tfapprox.Emulator.approximate_model ~multiplier:"mul8u_drum4" g
        else g
      in
      let g' = Ax_nn.Model_io.of_bytes (Ax_nn.Model_io.to_bytes g) in
      let input = (Ax_data.Cifar.generate ~n:1 ()).Ax_data.Cifar.images in
      Tensor.max_abs_diff
        (Ax_nn.Exec.run g ~input)
        (Ax_nn.Exec.run g' ~input)
      = 0.)

(* --- Conv_spec geometry: Valid padding and dilation > 1 --- *)

let eff_kernel k dilation = ((k - 1) * dilation) + 1

let conv_geom =
  QCheck.(quad (int_range 1 14) (int_range 1 4) (int_range 1 3) (int_range 1 3))

let prop_valid_padding_closed_form =
  QCheck.Test.make
    ~name:"Conv_spec Valid: closed form, last window stays in bounds" ~count:300
    conv_geom (fun (h, k, stride, dilation) ->
      QCheck.assume (eff_kernel k dilation <= h);
      let input = Shape.make ~n:1 ~h ~w:h ~c:2 in
      let filter = Filter.create ~kh:k ~kw:k ~in_c:2 ~out_c:3 in
      let spec = Conv_spec.make ~stride ~dilation ~padding:Conv_spec.Valid () in
      let out = Conv_spec.output_shape spec input filter in
      let expect = ((h - eff_kernel k dilation) / stride) + 1 in
      Shape.(out.h) = expect
      && Shape.(out.w) = expect
      && Shape.(out.c) = 3
      && Shape.(out.n) = 1
      && ((Shape.(out.h) - 1) * stride) + eff_kernel k dilation <= h)

let prop_dilation_equals_effective_kernel =
  (* A dilated kernel covers the same receptive field as a dense kernel
     of the effective size, so Valid-padding geometry must agree. *)
  QCheck.Test.make
    ~name:"Conv_spec: dilation d geometry = dense ((k-1)d+1) kernel" ~count:300
    QCheck.(quad (int_range 1 14) (int_range 1 4) (int_range 1 3) (int_range 2 3))
    (fun (h, k, stride, dilation) ->
      QCheck.assume (eff_kernel k dilation <= h);
      let input = Shape.make ~n:2 ~h ~w:h ~c:1 in
      let dilated = Filter.create ~kh:k ~kw:k ~in_c:1 ~out_c:1 in
      let dense =
        Filter.create ~kh:(eff_kernel k dilation) ~kw:(eff_kernel k dilation)
          ~in_c:1 ~out_c:1
      in
      let out_dilated =
        Conv_spec.output_shape
          (Conv_spec.make ~stride ~dilation ~padding:Conv_spec.Valid ())
          input dilated
      in
      let out_dense =
        Conv_spec.output_shape
          (Conv_spec.make ~stride ~padding:Conv_spec.Valid ())
          input dense
      in
      Shape.equal out_dilated out_dense)

let prop_same_padding_ignores_kernel =
  QCheck.Test.make
    ~name:"Conv_spec Same: output is ceil(input/stride), any kernel/dilation"
    ~count:300 conv_geom (fun (h, k, stride, dilation) ->
      let input = Shape.make ~n:1 ~h ~w:h ~c:1 in
      let filter = Filter.create ~kh:k ~kw:k ~in_c:1 ~out_c:1 in
      let spec = Conv_spec.make ~stride ~dilation () in
      let out = Conv_spec.output_shape spec input filter in
      Shape.(out.h) = (h + stride - 1) / stride && Shape.(out.w) = Shape.(out.h))

let prop_macs_counts_taps_per_output_element =
  QCheck.Test.make
    ~name:"Conv_spec.macs = output positions x taps, linear in batch"
    ~count:300 conv_geom (fun (h, k, stride, dilation) ->
      QCheck.assume (eff_kernel k dilation <= h);
      let filter = Filter.create ~kh:k ~kw:k ~in_c:2 ~out_c:3 in
      let per_image = Shape.make ~n:1 ~h ~w:h ~c:2 in
      List.for_all
        (fun padding ->
          let spec = Conv_spec.make ~stride ~dilation ~padding () in
          let out = Conv_spec.output_shape spec per_image filter in
          let expect1 =
            Shape.(out.h) * Shape.(out.w) * Filter.taps filter * 3
          in
          Conv_spec.macs spec per_image filter = expect1
          && Conv_spec.macs spec (Shape.make ~n:4 ~h ~w:h ~c:2) filter
             = 4 * expect1)
        [ Conv_spec.Same; Conv_spec.Valid ])

let prop_output_shape_rejects_channel_mismatch =
  QCheck.Test.make ~name:"Conv_spec.output_shape rejects channel mismatch"
    ~count:50
    QCheck.(pair (int_range 1 4) (int_range 1 4))
    (fun (c_in, c_filter) ->
      QCheck.assume (c_in <> c_filter);
      let input = Shape.make ~n:1 ~h:8 ~w:8 ~c:c_in in
      let filter = Filter.create ~kh:3 ~kw:3 ~in_c:c_filter ~out_c:2 in
      match Conv_spec.output_shape Conv_spec.default input filter with
      | _ -> false
      | exception Invalid_argument _ -> true)

(* --- quantization robustness (failure injection) --- *)

let prop_quantize_total_on_wild_floats =
  QCheck.Test.make ~name:"quantizer is total on wild (finite) floats"
    ~count:500
    QCheck.(pair (float_range (-1e18) 1e18) (float_range 1e-18 1e18))
    (fun (x, span) ->
      let c = Q.compute_coeffs S.Signed ~rmin:(-.span) ~rmax:span in
      let q = Q.quantize c Round.Nearest_even S.Signed x in
      S.in_range S.Signed q)

let test_axconv_with_all_zero_input () =
  (* Degenerate range (all zeros) must not crash or NaN. *)
  let input = Tensor.create (Shape.make ~n:1 ~h:4 ~w:4 ~c:1) in
  let filter = Filter.create ~kh:3 ~kw:3 ~in_c:1 ~out_c:2 in
  Filter.fill_he_normal (Rng.create 1) filter;
  let config = Axconv.make_config (Registry.lut (Registry.find_exn "mul8s_exact")) in
  let input_range = Range.of_tensor input in
  let fmin, fmax = Filter.min_max filter in
  let out =
    Axconv.conv ~config ~input ~input_range ~filter
      ~filter_range:(Range.make ~min:fmin ~max:fmax)
      ~spec:Conv_spec.default ()
  in
  Tensor.iteri_flat
    (fun _ v ->
      if not (Float.is_finite v) then Alcotest.failf "non-finite output %g" v;
      if v <> 0. then Alcotest.failf "zero input must give zero output, got %g" v)
    out

let test_axconv_with_constant_filter () =
  (* All-equal weights: degenerate filter range. *)
  let input = Tensor.create (Shape.make ~n:1 ~h:4 ~w:4 ~c:1) in
  Tensor.fill_uniform (Rng.create 2) input;
  let filter = Filter.create ~kh:3 ~kw:3 ~in_c:1 ~out_c:1 in
  Filter.iter filter (fun ~h ~w ~c ~k _ -> Filter.set filter ~h ~w ~c ~k 0.5);
  let config = Axconv.make_config (Registry.lut (Registry.find_exn "mul8s_exact")) in
  let input_range = Range.of_tensor input in
  let out =
    Axconv.conv ~config ~input ~input_range ~filter
      ~filter_range:(Range.make ~min:0.5 ~max:0.5)
      ~spec:Conv_spec.default ()
  in
  Tensor.iteri_flat
    (fun _ v ->
      if not (Float.is_finite v) then Alcotest.failf "non-finite output %g" v)
    out

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_sim_and_bdd_agree;
        prop_strip_dead_preserves_function;
        prop_random_mask_netlist_matches_model;
        prop_pruning_never_overestimates;
        prop_faulty_lut_is_still_total;
        prop_lut_roundtrip_bytes;
        prop_axconv_batch_permutation_equivariant;
        prop_transform_node_arithmetic;
        prop_model_io_roundtrip_random_graphs;
        prop_valid_padding_closed_form;
        prop_dilation_equals_effective_kernel;
        prop_same_padding_ignores_kernel;
        prop_macs_counts_taps_per_output_element;
        prop_output_shape_rejects_channel_mismatch;
        prop_quantize_total_on_wild_floats;
      ]
  in
  Alcotest.run "ax_properties"
    [
      ("cross-module properties", props);
      ( "degenerate inputs",
        [
          Alcotest.test_case "all-zero input" `Quick
            test_axconv_with_all_zero_input;
          Alcotest.test_case "constant filter" `Quick
            test_axconv_with_constant_filter;
        ] );
    ]
