type signal = int

type t = {
  circuit_name : string;
  mutable nodes : Gate.t array;
  mutable len : int;
  mutable inputs_rev : (string * signal) list;
  mutable outputs_rev : (string * signal) list;
  cse : (Gate.t, signal) Hashtbl.t;
}

let create ?(name = "circuit") () =
  {
    circuit_name = name;
    nodes = Array.make 64 (Gate.Const false);
    len = 0;
    inputs_rev = [];
    outputs_rev = [];
    cse = Hashtbl.create 1024;
  }

let name c = c.circuit_name

let append c g =
  if c.len = Array.length c.nodes then begin
    let bigger = Array.make (2 * c.len) (Gate.Const false) in
    Array.blit c.nodes 0 bigger 0 c.len;
    c.nodes <- bigger
  end;
  c.nodes.(c.len) <- g;
  c.len <- c.len + 1;
  c.len - 1

(* Structural hashing: inputs are never shared, everything else is. *)
let intern c g =
  match Hashtbl.find_opt c.cse g with
  | Some s -> s
  | None ->
    let s = append c g in
    Hashtbl.add c.cse g s;
    s

let input c label =
  let s = append c (Gate.Input label) in
  c.inputs_rev <- (label, s) :: c.inputs_rev;
  s

let const c b = intern c (Gate.Const b)

let gate_at c i =
  if i < 0 || i >= c.len then invalid_arg "Circuit.gate_at: out of range";
  c.nodes.(i)

let const_value c s =
  match gate_at c s with Gate.Const b -> Some b | _ -> None

let buf_ c s = intern c (Gate.Buf s)

let not_ c a =
  match gate_at c a with
  | Gate.Const b -> const c (not b)
  | Gate.Not x -> x
  | _ -> intern c (Gate.Not a)

(* Normalise commutative fan-in order so that hashing catches (a,b)/(b,a). *)
let ordered a b = if a <= b then (a, b) else (b, a)

let and_ c a b =
  let a, b = ordered a b in
  match (const_value c a, const_value c b) with
  | Some false, _ | _, Some false -> const c false
  | Some true, _ -> b
  | _, Some true -> a
  | None, None -> if a = b then a else intern c (Gate.And2 (a, b))

let or_ c a b =
  let a, b = ordered a b in
  match (const_value c a, const_value c b) with
  | Some true, _ | _, Some true -> const c true
  | Some false, _ -> b
  | _, Some false -> a
  | None, None -> if a = b then a else intern c (Gate.Or2 (a, b))

let xor_ c a b =
  let a, b = ordered a b in
  match (const_value c a, const_value c b) with
  | Some x, Some y -> const c (x <> y)
  | Some false, _ -> b
  | _, Some false -> a
  | Some true, _ -> not_ c b
  | _, Some true -> not_ c a
  | None, None -> if a = b then const c false else intern c (Gate.Xor2 (a, b))

let nand_ c a b = not_ c (and_ c a b)
let nor_ c a b = not_ c (or_ c a b)
let xnor_ c a b = not_ c (xor_ c a b)

let mux c ~sel t e =
  (* sel ? t : e  =  (sel AND t) OR (NOT sel AND e) *)
  or_ c (and_ c sel t) (and_ c (not_ c sel) e)

let output c label s =
  if List.mem_assoc label c.outputs_rev then
    invalid_arg ("Circuit.output: duplicate label " ^ label);
  c.outputs_rev <- (label, s) :: c.outputs_rev

let node_count c = c.len

let gate_count c =
  let n = ref 0 in
  for i = 0 to c.len - 1 do
    match c.nodes.(i) with
    | Gate.Input _ | Gate.Const _ | Gate.Buf _ -> ()
    | Gate.Not _ | Gate.And2 _ | Gate.Or2 _ | Gate.Xor2 _ | Gate.Nand2 _
    | Gate.Nor2 _ | Gate.Xnor2 _ ->
      incr n
  done;
  !n

let inputs c = List.rev c.inputs_rev
let outputs c = List.rev c.outputs_rev
let input_count c = List.length c.inputs_rev
let output_count c = List.length c.outputs_rev
let index s = s

let signal_of_index c i =
  if i < 0 || i >= c.len then
    invalid_arg "Circuit.signal_of_index: out of range";
  i

let iter_gates c f =
  for i = 0 to c.len - 1 do
    f i c.nodes.(i)
  done

let levelize c =
  let levels = Array.make c.len 0 in
  iter_gates c (fun i g ->
      let deepest =
        List.fold_left (fun acc j -> max acc levels.(j)) (-1) (Gate.fanin g)
      in
      levels.(i) <- (if deepest < 0 then 0 else deepest + 1));
  levels
