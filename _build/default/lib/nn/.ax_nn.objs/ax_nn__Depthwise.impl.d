lib/nn/depthwise.ml: Accumulator Array Ax_arith Ax_quant Ax_tensor Axconv Bigarray Bytes Char Conv_spec Filter Printf Profile
