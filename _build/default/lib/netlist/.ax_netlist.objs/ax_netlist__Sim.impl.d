lib/netlist/sim.ml: Array Circuit Gate Int64 List Printf
