module Lut = Ax_arith.Lut
module Load_error = Ax_arith.Load_error
module Registry = Ax_arith.Registry

type outcome = Intact | Repaired of Load_error.t

let default_warn msg =
  Ax_obs.Log.warn ~fields:[ ("component", Ax_obs.Json.String "resilience") ] msg

let load_lut ?repair_with ?(on_warning = default_warn) path =
  match Lut.load_result path with
  | Ok lut -> Ok (lut, Intact)
  | Error err -> (
    match repair_with with
    | None -> Error err
    | Some name -> (
      match Registry.find name with
      | None ->
        on_warning
          (Printf.sprintf "%s: %s; cannot repair, unknown multiplier %S" path
             (Load_error.to_string err) name);
        Error err
      | Some entry ->
        let lut = Registry.lut entry in
        let rewrote =
          try
            Lut.save path lut;
            true
          with Sys_error _ -> false
        in
        on_warning
          (Printf.sprintf "%s: %s; re-tabulated from generator %S%s" path
             (Load_error.to_string err) name
             (if rewrote then " and rewrote the artefact"
              else " (artefact not rewritable)"));
        Ok (lut, Repaired err)))

let load_model path = Ax_nn.Model_io.load_result path
