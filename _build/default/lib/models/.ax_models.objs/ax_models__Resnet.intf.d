lib/models/resnet.mli: Ax_nn Ax_tensor
