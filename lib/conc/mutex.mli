(** Checked drop-in for [Stdlib.Mutex].

    [Off] mode: one atomic load + branch, then the real operation.
    [Record] mode: acquisitions feed the lock-order graph, the
    per-thread held stack (relock / unlock-unheld / rank checks) and
    the vector clocks used for race detection.  Under an active
    {!Explore} run, operations on the exploring thread are routed to
    the cooperative scheduler and the real mutex is never touched. *)

type t

val create : ?order:int -> name:string -> unit -> t
(** [order] is the lock's rank in the declared hierarchy (DESIGN §5g);
    when given, acquiring it while holding a lock of equal or higher
    rank is a [conc/rank-violation] finding. *)

val name : t -> string
val id : t -> int

val real : t -> Stdlib.Mutex.t
(** The underlying mutex — needed to pair with [Stdlib.Condition] in
    code not yet migrated; prefer {!Condition}. *)

val lock : t -> unit
val unlock : t -> unit

val with_lock : t -> (unit -> 'a) -> 'a
(** Exception-safe critical section ([Fun.protect]); sections entered
    this way never trip the [conc/bare-section] lint. *)
