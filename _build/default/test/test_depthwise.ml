(* Depthwise convolution (accurate + AxDepthwiseConv2D), transform
   coverage and the MobileNet-style workload. *)

module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Rng = Ax_tensor.Rng
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec
module Depthwise = Ax_nn.Depthwise
module Axconv = Ax_nn.Axconv
module Graph = Ax_nn.Graph
module Exec = Ax_nn.Exec
module Transform = Ax_nn.Transform
module Q = Ax_quant.Quantization
module Round = Ax_quant.Round
module Range = Ax_quant.Range
module Registry = Ax_arith.Registry
module Mobilenet = Ax_models.Mobilenet
module Cifar = Ax_data.Cifar
module Emulator = Tfapprox.Emulator

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let random_input ~seed shape =
  let t = Tensor.create shape in
  Tensor.fill_uniform ~lo:(-1.) ~hi:1.4 (Rng.create seed) t;
  t

let random_filter ~seed ~kh ~kw ~in_c ~mult =
  let f = Filter.create ~kh ~kw ~in_c ~out_c:mult in
  Filter.fill_he_normal (Rng.create seed) f;
  f

(* Independent reference: per-channel scalar loops, no shared helpers. *)
let reference_float ~input ~filter ~spec =
  let s = Tensor.shape input in
  let out_h, out_w, pad_top, pad_left =
    Shape.conv_output_dims s ~kh:(Filter.kh filter) ~kw:(Filter.kw filter)
      ~stride:spec.Conv_spec.stride ~dilation:spec.Conv_spec.dilation
      ~padding:(Conv_spec.padding_to_poly spec.Conv_spec.padding)
  in
  let mult = Filter.out_c filter in
  let out =
    Tensor.create
      (Shape.make ~n:Shape.(s.n) ~h:out_h ~w:out_w ~c:(Shape.(s.c) * mult))
  in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to out_h - 1 do
      for ow = 0 to out_w - 1 do
        for c = 0 to Shape.(s.c) - 1 do
          for j = 0 to mult - 1 do
            let acc = ref 0. in
            for dh = 0 to Filter.kh filter - 1 do
              for dw = 0 to Filter.kw filter - 1 do
                let h = (oh * spec.Conv_spec.stride) - pad_top + (dh * spec.Conv_spec.dilation) in
                let w = (ow * spec.Conv_spec.stride) - pad_left + (dw * spec.Conv_spec.dilation) in
                if h >= 0 && h < Shape.(s.h) && w >= 0 && w < Shape.(s.w) then
                  acc :=
                    !acc
                    +. Tensor.get input ~n ~h ~w ~c
                       *. Filter.get filter ~h:dh ~w:dw ~c ~k:j
              done
            done;
            Tensor.set out ~n ~h:oh ~w:ow ~c:((c * mult) + j) !acc
          done
        done
      done
    done
  done;
  out

let specs =
  [
    Conv_spec.make ~padding:Conv_spec.Same ();
    Conv_spec.make ~padding:Conv_spec.Valid ();
    Conv_spec.make ~stride:2 ~padding:Conv_spec.Same ();
    Conv_spec.make ~dilation:2 ~padding:Conv_spec.Valid ();
  ]

let test_float_matches_reference () =
  List.iteri
    (fun i spec ->
      List.iter
        (fun mult ->
          let input = random_input ~seed:(i + 40) (Shape.make ~n:2 ~h:8 ~w:8 ~c:3) in
          let filter = random_filter ~seed:(i + 50) ~kh:3 ~kw:3 ~in_c:3 ~mult in
          let want = reference_float ~input ~filter ~spec in
          let got = Depthwise.float_conv ~input ~filter ~spec () in
          check_bool
            (Printf.sprintf "spec %d mult %d (diff %g)" i mult
               (Tensor.max_abs_diff want got))
            true
            (Tensor.approx_equal ~tolerance:1e-5 want got))
        [ 1; 2 ])
    specs

let test_output_shape_and_macs () =
  let s = Shape.make ~n:1 ~h:8 ~w:8 ~c:4 in
  let filter = random_filter ~seed:1 ~kh:3 ~kw:3 ~in_c:4 ~mult:2 in
  let spec = Conv_spec.default in
  let out = Depthwise.output_shape ~spec s filter in
  check_bool "shape" true (Shape.equal out (Shape.make ~n:1 ~h:8 ~w:8 ~c:8));
  (* 8*8 positions x 8 output channels x 9 taps *)
  check_int "macs" (8 * 8 * 8 * 9) (Depthwise.macs ~spec s filter)

let test_channel_mismatch_rejected () =
  let s = Shape.make ~n:1 ~h:4 ~w:4 ~c:3 in
  let filter = random_filter ~seed:2 ~kh:3 ~kw:3 ~in_c:4 ~mult:1 in
  Alcotest.check_raises "channels"
    (Invalid_argument
       "Depthwise.output_shape: input has 3 channels, filter wants 4")
    (fun () ->
      ignore
        (Depthwise.output_shape ~spec:Conv_spec.default s filter))

let run_approx ~entry ~input ~filter ~spec =
  let config = Axconv.make_config (Registry.lut entry) in
  let input_range = Range.of_tensor input in
  let fmin, fmax = Filter.min_max filter in
  let filter_range = Range.make ~min:fmin ~max:fmax in
  Depthwise.approx_conv ~config ~input ~input_range ~filter ~filter_range
    ~spec ()

(* Quantize-multiply-dequantize reference in the style of the AxConv2D
   tests: naive Eq. 3 expansion per tap. *)
let reference_approx ~entry ~input ~filter ~spec =
  let signedness = entry.Registry.signedness in
  let input_range = Range.of_tensor input in
  let fmin, fmax = Filter.min_max filter in
  let c1 =
    Q.compute_coeffs signedness ~rmin:input_range.Range.min
      ~rmax:input_range.Range.max
  in
  let c2 = Q.compute_coeffs signedness ~rmin:fmin ~rmax:fmax in
  let s = Tensor.shape input in
  let out_h, out_w, pad_top, pad_left =
    Shape.conv_output_dims s ~kh:(Filter.kh filter) ~kw:(Filter.kw filter)
      ~stride:spec.Conv_spec.stride ~dilation:spec.Conv_spec.dilation
      ~padding:(Conv_spec.padding_to_poly spec.Conv_spec.padding)
  in
  let mult = Filter.out_c filter in
  let out =
    Tensor.create
      (Shape.make ~n:Shape.(s.n) ~h:out_h ~w:out_w ~c:(Shape.(s.c) * mult))
  in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to out_h - 1 do
      for ow = 0 to out_w - 1 do
        for c = 0 to Shape.(s.c) - 1 do
          for j = 0 to mult - 1 do
            let acc = ref 0 in
            for dh = 0 to Filter.kh filter - 1 do
              for dw = 0 to Filter.kw filter - 1 do
                let h = (oh * spec.Conv_spec.stride) - pad_top + (dh * spec.Conv_spec.dilation) in
                let w = (ow * spec.Conv_spec.stride) - pad_left + (dw * spec.Conv_spec.dilation) in
                let x =
                  if h >= 0 && h < Shape.(s.h) && w >= 0 && w < Shape.(s.w)
                  then Tensor.get input ~n ~h ~w ~c
                  else 0.
                in
                let q1 = Q.quantize c1 Round.Nearest_even signedness x in
                let q2 =
                  Q.quantize c2 Round.Nearest_even signedness
                    (Filter.get filter ~h:dh ~w:dw ~c ~k:j)
                in
                acc :=
                  !acc
                  + entry.Registry.multiply q1 q2
                  - (c2.Q.beta * q1) - (c1.Q.beta * q2)
                  + (c1.Q.beta * c2.Q.beta)
              done
            done;
            Tensor.set out ~n ~h:oh ~w:ow ~c:((c * mult) + j)
              (c1.Q.alpha *. c2.Q.alpha *. float_of_int !acc)
          done
        done
      done
    done
  done;
  out

let test_approx_matches_reference () =
  List.iter
    (fun entry_name ->
      let entry = Registry.find_exn entry_name in
      List.iteri
        (fun i spec ->
          let input = random_input ~seed:(i + 60) (Shape.make ~n:2 ~h:7 ~w:7 ~c:3) in
          let filter = random_filter ~seed:(i + 70) ~kh:3 ~kw:3 ~in_c:3 ~mult:2 in
          let want = reference_approx ~entry ~input ~filter ~spec in
          let got = run_approx ~entry ~input ~filter ~spec in
          check_bool
            (Printf.sprintf "%s spec %d (diff %g)" entry_name i
               (Tensor.max_abs_diff want got))
            true
            (Tensor.approx_equal ~tolerance:1e-4 want got))
        specs)
    [ "mul8s_exact"; "mul8s_trunc6"; "mul8u_exact" ]

let test_approx_exact_lut_close_to_float () =
  let input = random_input ~seed:3 (Shape.make ~n:1 ~h:10 ~w:10 ~c:4) in
  let filter = random_filter ~seed:4 ~kh:3 ~kw:3 ~in_c:4 ~mult:1 in
  let spec = Conv_spec.default in
  let want = Depthwise.float_conv ~input ~filter ~spec () in
  let got =
    run_approx ~entry:(Registry.find_exn "mul8s_exact") ~input ~filter ~spec
  in
  let diff = Tensor.max_abs_diff want got in
  check_bool (Printf.sprintf "quantization noise only (%g)" diff) true
    (diff < 0.1)

let test_bias_and_validation () =
  let input = random_input ~seed:5 (Shape.make ~n:1 ~h:4 ~w:4 ~c:2) in
  let filter = random_filter ~seed:6 ~kh:3 ~kw:3 ~in_c:2 ~mult:2 in
  let spec = Conv_spec.default in
  let without = Depthwise.float_conv ~input ~filter ~spec () in
  let bias = [| 1.; 2.; 3.; 4. |] in
  let with_bias = Depthwise.float_conv ~input ~filter ~bias ~spec () in
  Alcotest.(check (float 1e-5)) "bias channel 2" 3.
    (Tensor.get with_bias ~n:0 ~h:1 ~w:1 ~c:2
    -. Tensor.get without ~n:0 ~h:1 ~w:1 ~c:2);
  Alcotest.check_raises "bad bias"
    (Invalid_argument "Depthwise: bias length differs from in_c * multiplier")
    (fun () ->
      ignore (Depthwise.float_conv ~input ~filter ~bias:[| 1. |] ~spec ()))

(* --- graph integration --- *)

let test_transform_covers_depthwise () =
  let g = Mobilenet.build () in
  let approx = Emulator.approximate_model ~multiplier:"mul8s_exact" g in
  let remaining =
    Array.to_list (Graph.nodes approx)
    |> List.filter (fun n ->
           match n.Graph.op with
           | Graph.Conv2d _ | Graph.Depthwise_conv2d _ -> true
           | _ -> false)
  in
  check_int "no accurate convolutions left" 0 (List.length remaining);
  let ax_dw =
    Array.to_list (Graph.nodes approx)
    |> List.filter (fun n ->
           match n.Graph.op with
           | Graph.Ax_depthwise_conv2d _ -> true
           | _ -> false)
  in
  check_int "four AxDepthwiseConv2D blocks" 4 (List.length ax_dw)

let test_mobilenet_runs_and_transform_preserves () =
  let g = Mobilenet.build () in
  let data = (Cifar.generate ~n:4 ()).Cifar.images in
  let want = Exec.run g ~input:data in
  let s = Tensor.shape want in
  check_bool "output shape" true
    (Shape.equal s (Shape.make ~n:4 ~h:1 ~w:1 ~c:10));
  let approx = Emulator.approximate_model ~multiplier:"mul8s_exact" g in
  let got = Exec.run approx ~input:data in
  check_bool
    (Printf.sprintf "exact LUT close (%g)" (Tensor.max_abs_diff want got))
    true
    (Tensor.max_abs_diff want got < 0.25)

let test_mobilenet_macs_positive_and_stable () =
  let m = Mobilenet.macs_per_image () in
  check_bool "macs positive" true (m > 0);
  check_int "deterministic" m (Mobilenet.macs_per_image ());
  (* Depthwise layers contribute: removing them (blocks=0 invalid) —
     compare widths instead. *)
  check_bool "wider is costlier" true
    (Mobilenet.macs_per_image ~width:32 () > m)

let test_per_layer_transform_on_depthwise () =
  let g = Mobilenet.build () in
  let config =
    Axconv.make_config (Registry.lut (Registry.find_exn "mul8s_exact"))
  in
  let approx = Transform.per_layer ~configs:[ ("block0/dw", config) ] g in
  match (Option.get (Graph.find_by_name approx "block0/dw")).Graph.op with
  | Graph.Ax_depthwise_conv2d _ -> ()
  | _ -> Alcotest.fail "block0/dw transformed"

let test_calibration_covers_depthwise () =
  let g = Mobilenet.build ~blocks:2 () in
  let approx = Emulator.approximate_model ~multiplier:"mul8s_mitchell" g in
  let sample = (Cifar.generate ~n:3 ()).Cifar.images in
  let fixed = Tfapprox.Calibrate.bias_correct ~sample approx in
  let test = (Cifar.generate ~seed:77 ~n:4 ()).Cifar.images in
  let want = Exec.run g ~input:test in
  let before = Tensor.max_abs_diff want (Exec.run approx ~input:test) in
  let after = Tensor.max_abs_diff want (Exec.run fixed ~input:test) in
  check_bool
    (Printf.sprintf "calibration helps depthwise nets (%.4f -> %.4f)" before
       after)
    true (after < before)

let () =
  Alcotest.run "ax_depthwise"
    [
      ( "float",
        [
          Alcotest.test_case "matches reference" `Quick
            test_float_matches_reference;
          Alcotest.test_case "shape and macs" `Quick
            test_output_shape_and_macs;
          Alcotest.test_case "channel mismatch" `Quick
            test_channel_mismatch_rejected;
          Alcotest.test_case "bias and validation" `Quick
            test_bias_and_validation;
        ] );
      ( "approx",
        [
          Alcotest.test_case "matches quantized reference" `Quick
            test_approx_matches_reference;
          Alcotest.test_case "exact LUT close to float" `Quick
            test_approx_exact_lut_close_to_float;
        ] );
      ( "graph",
        [
          Alcotest.test_case "transform covers depthwise" `Quick
            test_transform_covers_depthwise;
          Alcotest.test_case "mobilenet runs" `Quick
            test_mobilenet_runs_and_transform_preserves;
          Alcotest.test_case "mobilenet macs" `Quick
            test_mobilenet_macs_positive_and_stable;
          Alcotest.test_case "per-layer transform" `Quick
            test_per_layer_transform_on_depthwise;
          Alcotest.test_case "calibration covers depthwise" `Quick
            test_calibration_covers_depthwise;
        ] );
    ]
