examples/netlist_export.ml: Ax_arith Ax_netlist Filename Format List String Sys
