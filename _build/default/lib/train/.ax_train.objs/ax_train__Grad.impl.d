lib/train/grad.ml: Array Ax_nn Ax_tensor Bigarray Float
