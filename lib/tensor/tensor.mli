(** Dense float32 tensors in NHWC layout, backed by [Bigarray] so large
    batches do not stress the OCaml heap. *)

type t

type buffer =
  (float, Bigarray.float32_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : Shape.t -> t
(** Zero-initialised tensor. *)

val shape : t -> Shape.t
val num_elements : t -> int

val buffer : t -> buffer
(** The underlying flat buffer (row-major NHWC); shared, not copied. *)

val get : t -> n:int -> h:int -> w:int -> c:int -> float
val set : t -> n:int -> h:int -> w:int -> c:int -> float -> unit

val get_flat : t -> int -> float
val set_flat : t -> int -> float -> unit

val fill : t -> float -> unit
val copy : t -> t

val of_array : Shape.t -> float array -> t
(** Raises [Invalid_argument] when the array size does not match. *)

val to_array : t -> float array

val init : Shape.t -> (n:int -> h:int -> w:int -> c:int -> float) -> t

val map : (float -> float) -> t -> t
val map_inplace : (float -> float) -> t -> unit
val iteri_flat : (int -> float -> unit) -> t -> unit
val fold : ('a -> float -> 'a) -> 'a -> t -> 'a

val min_max : t -> float * float
(** The (min, max) pair that the Fig. 1 [Min]/[Max] graph nodes compute.
    Raises [Invalid_argument] on a zero-element tensor (an empty batch
    has no range — the emulator never evaluates range nodes for one). *)

val add : t -> t -> t
(** Elementwise sum; raises [Invalid_argument] on shape mismatch. *)

val approx_equal : ?tolerance:float -> t -> t -> bool
(** Max-absolute-difference comparison. *)

val max_abs_diff : t -> t -> float

val fill_gaussian : ?mean:float -> ?stddev:float -> Rng.t -> t -> unit
val fill_uniform : ?lo:float -> ?hi:float -> Rng.t -> t -> unit

val slice_batch : t -> start:int -> count:int -> t
(** [slice_batch t ~start ~count] copies images [start .. start+count-1]
    into a fresh tensor (the batch-chunking step of Algorithm 1). *)

val concat_batch : t list -> t
(** Inverse of chunking: stack along N.  All pieces must share H, W, C. *)
