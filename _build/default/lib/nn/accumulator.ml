type t =
  | Wide
  | Saturating of int
  | Wrapping of int
  | Lower_or of { width : int; approx_low : int }

let validate = function
  | Wide -> ()
  | Saturating w | Wrapping w ->
    if w < 2 || w > 62 then
      invalid_arg "Accumulator: width must be in 2..62"
  | Lower_or { width; approx_low } ->
    if width < 2 || width > 62 then
      invalid_arg "Accumulator: width must be in 2..62";
    if approx_low < 0 || approx_low >= width then
      invalid_arg "Accumulator: approx_low must be below the width"

let add t acc product =
  match t with
  | Wide -> acc + product
  | Saturating w ->
    let hi = (1 lsl (w - 1)) - 1 in
    let lo = -(1 lsl (w - 1)) in
    let sum = acc + product in
    if sum > hi then hi else if sum < lo then lo else sum
  | Wrapping w ->
    let sum = (acc + product) land ((1 lsl w) - 1) in
    if sum >= 1 lsl (w - 1) then sum - (1 lsl w) else sum
  | Lower_or { width; approx_low } ->
    (* Mirror the gate-level LOA on the two's-complement bit patterns:
       OR the low bits, add the high bits with no carry-in. *)
    let word_mask = (1 lsl width) - 1 in
    let low_mask = (1 lsl approx_low) - 1 in
    let ua = acc land word_mask and ub = product land word_mask in
    let low = (ua lor ub) land low_mask in
    let high =
      ((ua lsr approx_low) + (ub lsr approx_low))
      land ((1 lsl (width - approx_low)) - 1)
    in
    let sum = (high lsl approx_low) lor low in
    if sum >= 1 lsl (width - 1) then sum - (1 lsl width) else sum

let to_string = function
  | Wide -> "wide"
  | Saturating w -> Printf.sprintf "sat%d" w
  | Wrapping w -> Printf.sprintf "wrap%d" w
  | Lower_or { width; approx_low } -> Printf.sprintf "loa%d.%d" width approx_low

let pp ppf t = Format.pp_print_string ppf (to_string t)
