(** Span-based tracer with Chrome [trace_event] export.

    Spans are nestable named intervals with string attributes (layer
    name, op kind, shape, chunk index, backend).  Completed spans land
    in a fixed-capacity ring buffer — a long emulation run keeps the
    most recent spans instead of growing without bound — and export as
    Chrome trace JSON (loadable in [chrome://tracing] or Perfetto) or a
    plain-text tree. *)

type span = {
  name : string;
  attrs : (string * string) list;
  start_us : float;  (** microseconds since the tracer was created *)
  dur_us : float;    (** never 0: floored at 1 ns to survive clock quantization *)
  depth : int;       (** nesting level at the time the span was open *)
}

type t

val create : ?capacity:int -> unit -> t
(** Ring-buffer capacity in spans, default 65536.  Raises
    [Invalid_argument] when [capacity < 1]. *)

val with_span :
  t -> name:string -> ?attrs:(string * string) list -> (unit -> 'a) -> 'a
(** Run a thunk inside a named span.  The span is recorded when the
    thunk returns or raises ([Fun.protect] semantics). *)

val spans : t -> span list
(** Retained spans in completion order (children before their parent). *)

val span_count : t -> int
val dropped : t -> int
(** Completed spans evicted by the ring buffer. *)

val clear : t -> unit
(** Drop retained spans and reset counters; the time origin and open
    spans are untouched. *)

val to_chrome_json : t -> Json.t
(** [{"traceEvents":[...],"displayTimeUnit":"ms"}] with one complete
    ("ph":"X") event per span, attributes in ["args"]. *)

val chrome_json_string : t -> string

val pp_tree : Format.formatter -> t -> unit
(** Indented start-time-ordered rendering with durations and
    attributes. *)
