(** Admission control and batch formation for the inference daemon.

    A bounded FIFO of accepted requests sits between the connection
    threads and the batch scheduler.  Boundedness is the overload
    contract: once [capacity] jobs are queued, {!submit} refuses with
    {!Queue_full} (and a retry-after hint) instead of growing — memory
    stays bounded no matter how many clients pile on, and the refusal
    is explicit so a well-behaved client can back off and retry (the
    protocol is idempotent, see {!Protocol}).

    Deadlines are enforced {e at batch boundaries}: {!form_batch} first
    sweeps expired jobs out of the queue (delivering {!Expired} without
    ever scheduling them — compute is never spent on an answer nobody
    is waiting for), then pops up to [max_batch] same-model jobs in
    FIFO order.

    The clock is injected ([?now]) so overload and deadline behaviour
    are deterministically testable without sleeping; delivery callbacks
    always run outside the internal lock, so they may do I/O or
    re-submit freely. *)

type outcome =
  | Done of int array  (** per-image class ids, in request image order *)
  | Expired  (** deadline passed while queued; never scheduled *)
  | Failed of string  (** the executor raised; the daemon survived *)
  | Cancelled  (** daemon shutting down before the job was scheduled *)

type job = {
  model : string;
  input : Ax_tensor.Tensor.t;
  images : int;  (** batch-dimension size of [input] *)
  enqueued : float;  (** {!now}-clock arrival time *)
  deadline : float option;  (** absolute, same clock *)
  deliver : outcome -> unit;  (** called exactly once, outside the lock *)
}

type rejection =
  | Queue_full of { retry_after_ms : int }
  | Closed

type t

val create :
  ?metrics:Ax_obs.Metrics.t ->
  ?now:(unit -> float) ->
  ?retry_after_ms:int ->
  capacity:int ->
  max_batch:int ->
  unit ->
  t
(** [capacity >= 1] bounds the queue; [max_batch >= 1] caps batch size
    (size it to the GEMM chunk geometry).  [now] defaults to
    [Unix.gettimeofday]; [retry_after_ms] (default 50) scales the
    {!Queue_full} hint.  Raises [Invalid_argument] on a non-positive
    capacity or batch size. *)

val now : t -> float
(** The injected clock, so callers compute deadlines on the same
    timeline. *)

val submit : t -> job -> (unit, rejection) result
(** O(1); never blocks.  On [Ok] the job's [deliver] will be called
    exactly once, eventually. *)

val depth : t -> int

val form_batch : t -> [ `Batch of string * job list | `Empty ]
(** Sweep expired jobs (delivering {!Expired}), then pop up to
    [max_batch] jobs sharing the oldest surviving job's model.  Jobs
    for other models keep their queue positions. *)

val wait_ready : t -> [ `Ready | `Closed ]
(** Block until the queue is non-empty or the admission is closed —
    the scheduler thread's idle wait.  No timeout: {!close} wakes it. *)

val close : t -> unit
(** Refuse further submissions ({!Closed}) and wake {!wait_ready}
    waiters.  Idempotent. *)

val drain : t -> unit
(** Deliver {!Cancelled} to every queued job and empty the queue —
    graceful-shutdown cleanup after {!close}. *)

type stats = {
  submitted : int;  (** accepted jobs *)
  rejected : int;   (** {!Queue_full} refusals *)
  expired : int;    (** deadline sweeps *)
  batches : int;    (** batches formed *)
  batched_jobs : int;  (** jobs scheduled through batches *)
  max_depth : int;  (** high-water queue depth — bounded by capacity *)
}

val stats : t -> stats
(** Also mirrored into the metrics registry when one was given:
    [serve_queue_depth] / [serve_queue_capacity] gauges,
    [serve_accepted] / [serve_rejected] / [serve_expired] counters and
    the [serve_batch_size] histogram. *)
