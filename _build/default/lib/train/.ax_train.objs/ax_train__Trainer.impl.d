lib/train/trainer.ml: Array Ax_data Ax_nn Ax_tensor Backprop Bigarray Optimizer
