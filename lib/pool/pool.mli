(** Persistent worker-domain pool with deterministic work splitting.

    The emulator's hot paths (ApproxGEMM rows, Im2Cols patch rows,
    per-image batch shards) are embarrassingly parallel, but spawning
    fresh domains per chunk — the seed's approach — pays domain start-up
    cost on every convolution and caps parallelism at one layer.  A pool
    is created once per process, its workers block on a condition
    variable between jobs, and every [parallel_for]/[map_reduce] call
    reuses them.

    {b Determinism contract.}  Two schedules share it.  Under
    {!Static} partitioning a range [\[lo, hi)] is cut into at most
    [min size max_domains] contiguous sub-ranges, sub-range [i] is
    executed exactly once by exactly one domain, and reductions combine
    sub-range results in ascending range order.  Under {!Dynamic}
    claiming the range is cut into fixed [grain]-sized claims and idle
    domains race for the next claim off an atomic counter — {e which}
    domain runs a claim varies run to run, but {e what} claim [c]
    covers never does ([lo + c*grain, min hi (lo + (c+1)*grain))), and
    reductions combine per-claim results in ascending claim order.  A
    task never observes which domain runs it, so any function whose
    sub-ranges touch disjoint state produces bit-identical results for
    every pool size, every [max_domains], and either schedule — the
    property the differential test suite pins down.  Exceptions raised
    inside tasks are re-raised exactly once on the calling domain (the
    lowest-indexed failing sub-range/claim wins; claims are handed out
    in ascending order, so every claim below an executed one was
    dispatched and the minimum is well defined — even the error is
    deterministic).

    Nested calls — a task that itself calls into the same pool — run
    their tasks inline on the current domain rather than deadlocking, so
    batch-level sharding can sit above row-level GEMM parallelism.  The
    coordinator role is taken under the pool lock, so two systhreads
    fanning out concurrently never corrupt each other: one wins the
    workers, the loser runs inline.  (Note this makes concurrent calls
    {e safe}, not parallel — and layers above the pool, e.g. the
    {!Ax_nn.Scratch} arenas, are per-domain, so concurrent emulator
    runs from multiple systhreads of one domain are still unsupported;
    serialize at the caller as the serve scheduler does.) *)

type t

val create : ?domains:int -> unit -> t
(** A pool of [domains] workers {e including} the calling domain, so
    [domains - 1] new domains are spawned and [create ~domains:1 ()]
    spawns none (every call runs inline).  Default: {!recommended}.
    Raises [Invalid_argument] unless [1 <= domains <= 64]. *)

val size : t -> int
(** Worker count, including the caller's domain. *)

val shutdown : t -> unit
(** Join all workers.  Idempotent; subsequent job submissions run
    inline on the calling domain. *)

(** How a range is split across domains. *)
type schedule =
  | Static
      (** One contiguous sub-range per participating domain, fixed up
          front.  Lowest overhead; right when per-index cost is uniform. *)
  | Dynamic of { grain : int }
      (** Work stealing: [grain]-sized claims handed out by an atomic
          counter, so slow claims no longer stall the whole fan-out.
          [grain <= 0] means auto (about 4 claims per domain).  Right
          when per-index cost is skewed or unpredictable. *)

val dynamic : ?grain:int -> unit -> schedule
(** [dynamic ()] is [Dynamic { grain = 0 }] (auto grain). *)

val parallel_for :
  t ->
  ?max_domains:int ->
  ?schedule:schedule ->
  lo:int ->
  hi:int ->
  (lo:int -> hi:int -> unit) ->
  unit
(** [parallel_for t ~lo ~hi body] partitions [\[lo, hi)] per [schedule]
    (default {!Static}) and calls [body ~lo ~hi] once per non-empty
    sub-range/claim.  [max_domains] caps the participating-domain count
    (default: pool size).  Empty ranges are a no-op.  The call returns
    when every sub-range has finished. *)

val map_reduce :
  t ->
  ?max_domains:int ->
  ?schedule:schedule ->
  lo:int ->
  hi:int ->
  map:(lo:int -> hi:int -> 'a) ->
  reduce:('a -> 'a -> 'a) ->
  'a ->
  'a
(** [map_reduce t ~lo ~hi ~map ~reduce init] runs [map] per
    sub-range/claim in parallel and folds the results {e in ascending
    range order} (claim order under {!Dynamic}, which is the same
    ascending [lo] order): [reduce (... (reduce init r0) ...) rk].
    With an associative exact [reduce] (integer sums, ordered list
    concatenation) the result is bit-identical for every pool size and
    schedule; floating-point reductions are deterministic for a fixed
    split but may differ across splits. *)

val map_array :
  t -> ?max_domains:int -> ?schedule:schedule -> ('a -> 'b) -> 'a array -> 'b array
(** [map_array t f items] applies [f] to every element in parallel and
    returns results in index order.  Element [i]'s result never depends
    on the split or schedule, so the output is bit-identical for every
    pool size whenever [f] is deterministic per element — the primitive
    backing per-image batch sharding.  [~schedule:(Dynamic {grain = 1})]
    makes it a work queue of single items. *)

val current_slot : t -> int
(** The calling domain's worker slot: worker [i] owns slot [i + 1]; the
    coordinator (or any foreign domain) is slot 0.  Stable for the
    lifetime of the pool — the shard-to-tid mapping trace attribution
    uses. *)

(** {1 Utilization} *)

type stats = {
  parallel_calls : int;  (** calls that fanned out to workers *)
  inline_calls : int;    (** calls run entirely on the calling domain *)
  dynamic_calls : int;   (** fan-outs that used dynamic claiming *)
  claims : int;          (** total claims handed out by dynamic calls *)
  tasks : int;           (** non-empty sub-ranges executed *)
  busy_seconds : float;  (** summed task wall-clock across domains *)
  fanout_wall_seconds : float;
      (** coordinator wall-clock spent inside parallel fan-outs *)
  per_domain_busy_seconds : float array;
      (** task wall-clock per slot (index 0 = coordinator) *)
}

val stats : t -> stats

val imbalance : stats -> float
(** [1 - mean/max] over {!stats.per_domain_busy_seconds}: 0 when every
    domain worked equally, approaching 1 when one domain did all the
    work; 0 when nothing ran. *)

val publish : t -> Ax_obs.Metrics.t -> unit
(** Export utilization as gauges: [pool_domains], [pool_parallel_calls],
    [pool_inline_calls], [pool_dynamic_calls], [pool_claims],
    [pool_tasks], [pool_busy_seconds],
    [pool_fanout_wall_seconds], [pool_imbalance], and per slot [i] the
    [pool_busy_fraction_d<i>] / [pool_idle_fraction_d<i>] pair (busy
    seconds over fan-out wall seconds).  Gauges (not counters) so
    repeated publication is idempotent. *)

(** {1 Per-domain tracing} *)

val set_tracer : t -> Ax_obs.Trace.t option -> unit
(** Attach a sink tracer: every subsequent parallel fan-out records one
    [pool.task] span per slot into a private per-slot fork
    ([Trace.fork], [tid] = slot) and merges the forks back into the sink
    in slot order after the join — single writer per domain, so no
    locking on the record path.  Inline (nested or single-domain) calls
    record nothing.  [None] detaches.  Calls made mid-fan-out or from a
    worker are silently ignored. *)

(** {1 The process-wide default pool} *)

val env_var : string
(** ["TFAPPROX_DOMAINS"] — overrides the default pool size. *)

val validate_domains : what:string -> int -> unit
(** Raise [Invalid_argument "<what>: domains must be in 1..64"] unless
    the count is in range.  The single validator every layer that
    accepts a user-supplied domains count routes through
    ({!create}, {!set_default_size}, [Axconv.make_config],
    [Emulator.run ?domains]) so the accepted range cannot drift. *)

val recommended : unit -> int
(** [$TFAPPROX_DOMAINS] when set (clamped to 1..64), otherwise
    [Domain.recommended_domain_count ()]. *)

val default : unit -> t
(** The process-wide pool, created on first use with {!recommended}
    workers. *)

val ensure : domains:int -> t
(** {!default}, grown to at least [domains] workers.  Growing replaces
    the pool (the old workers are joined first); when called from inside
    a pool task the current pool is returned unchanged, since a resize
    mid-job is impossible. *)

val set_default_size : int -> unit
(** Replace the default pool with one of exactly this size (the CLI's
    [--domains] hook).  Raises [Invalid_argument] outside 1..64. *)

val default_size : unit -> int
(** [size (default ())]. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** A fresh private pool for the call, shut down on exit (also on
    exception) — the harness the property tests use. *)
