(* Differential harness for the approximate-convolution paths.

   Sweeps ~50 seeded random configurations (batch, spatial size,
   channels, kernel, stride, dilation, padding, chunk size) and pins
   down, for every one of them:

   - with the exact LUT, the Algorithm-1 GEMM path ([Axconv.conv]) is
     bit-identical to the nested-loop baseline ([Conv_direct.conv]) and
     matches the float convolution within the analytic quantization
     error bound;
   - with approximate LUTs, the GEMM path is bit-identical to a naive
     per-MAC quantize/multiply/dequantize reference that never heard of
     Eq. 4, im2col or chunking.

   When TFAPPROX_DOMAINS is exported every convolution in the sweep
   additionally runs through the persistent worker pool, so the CI
   multi-domain leg exercises the parallel code paths against the same
   oracles. *)

module Shape = Ax_tensor.Shape
module Tensor = Ax_tensor.Tensor
module Rng = Ax_tensor.Rng
module Filter = Ax_nn.Filter
module Conv_spec = Ax_nn.Conv_spec
module Conv_float = Ax_nn.Conv_float
module Axconv = Ax_nn.Axconv
module Conv_direct = Ax_nn.Conv_direct
module Q = Ax_quant.Quantization
module Round = Ax_quant.Round
module Range = Ax_quant.Range
module S = Ax_arith.Signedness
module Lut = Ax_arith.Lut
module Registry = Ax_arith.Registry
module Pool = Ax_pool.Pool

let check_bool = Alcotest.(check bool)

(* The CI matrix exports TFAPPROX_DOMAINS; without it the sweep runs the
   plain serial paths. *)
let test_domains =
  match Sys.getenv_opt Pool.env_var with
  | Some s when String.trim s <> "" -> Pool.recommended ()
  | Some _ | None -> 1

type case = {
  id : int;
  seed : int;
  n : int;
  h : int;
  w : int;
  c : int;
  out_c : int;
  kh : int;
  kw : int;
  stride : int;
  dilation : int;
  padding : Conv_spec.padding;
  chunk_size : int;
}

let case_count = 50

(* Deterministic sweep: every parameter cycles at a different period so
   the 50 cases cover the cross product reasonably densely.  Spatial
   size is padded past the dilated kernel so Valid configurations stay
   non-degenerate. *)
let cases =
  List.init case_count (fun i ->
      let kh = [| 1; 3; 3; 5 |].(i mod 4) in
      let kw = [| 3; 1; 3; 5 |].((i / 4) mod 4) in
      let dilation = 1 + ((i / 11) mod 2) in
      let eff_kh = 1 + ((kh - 1) * dilation) in
      let eff_kw = 1 + ((kw - 1) * dilation) in
      {
        id = i;
        seed = 7000 + (13 * i);
        n = 1 + (i mod 3);
        h = eff_kh + 1 + (i mod 3);
        w = eff_kw + 1 + ((i / 2) mod 3);
        c = 1 + ((i / 3) mod 4);
        out_c = 1 + ((i / 5) mod 5);
        kh;
        kw;
        stride = 1 + ((i / 7) mod 2);
        dilation;
        padding = (if i mod 2 = 0 then Conv_spec.Same else Conv_spec.Valid);
        chunk_size = [| 1; 2; 3; 250 |].((i / 3) mod 4);
      })

let case_data case =
  let input = Tensor.create (Shape.make ~n:case.n ~h:case.h ~w:case.w ~c:case.c) in
  Tensor.fill_uniform ~lo:(-1.2) ~hi:1.7 (Rng.create case.seed) input;
  let filter =
    Filter.create ~kh:case.kh ~kw:case.kw ~in_c:case.c ~out_c:case.out_c
  in
  Filter.fill_he_normal (Rng.create (case.seed + 1)) filter;
  let spec =
    Conv_spec.make ~stride:case.stride ~dilation:case.dilation
      ~padding:case.padding ()
  in
  let input_range = Range.of_tensor input in
  let fmin, fmax = Filter.min_max filter in
  (input, filter, spec, input_range, Range.make ~min:fmin ~max:fmax)

let label case what = Printf.sprintf "case %d: %s" case.id what

let run_conv ~strategy ~lut case =
  let input, filter, spec, input_range, filter_range = case_data case in
  let config =
    Axconv.make_config ~chunk_size:case.chunk_size ~domains:test_domains lut
  in
  match strategy with
  | `Gemm ->
    Axconv.conv ~config ~input ~input_range ~filter ~filter_range ~spec ()
  | `Direct ->
    Conv_direct.conv ~config ~input ~input_range ~filter ~filter_range ~spec
      ()

(* --- exact LUT: GEMM path == direct-loop baseline, bit for bit --- *)

let exact_lut_for case =
  Registry.lut
    (Registry.find_exn
       (if case.id mod 2 = 0 then "mul8u_exact" else "mul8s_exact"))

let test_exact_gemm_equals_direct () =
  List.iter
    (fun case ->
      let lut = exact_lut_for case in
      let a = run_conv ~strategy:`Gemm ~lut case in
      let b = run_conv ~strategy:`Direct ~lut case in
      check_bool
        (label case
           (Printf.sprintf "gemm == direct, diff %g" (Tensor.max_abs_diff a b)))
        true
        (Tensor.max_abs_diff a b = 0.))
    cases

(* --- exact LUT: within the analytic quantization bound of float --- *)

(* Each operand roundtrips within its [roundtrip_error_bound] (alpha/2
   under nearest rounding), so one product errs by at most
   |x| e2 + |w| e1 + e1 e2 and a patch of [taps] products by [taps]
   times that; 1.5 slack absorbs float evaluation-order noise. *)
let quantization_bound ~taps ~input_range ~filter_range c1 c2 =
  let mag r = Float.max (Float.abs r.Range.min) (Float.abs r.Range.max) in
  let e1 = Q.roundtrip_error_bound c1 and e2 = Q.roundtrip_error_bound c2 in
  let mx = mag input_range and mw = mag filter_range in
  1.5 *. float_of_int taps *. ((mx *. e2) +. (mw *. e1) +. (e1 *. e2))

let test_exact_matches_float () =
  List.iter
    (fun case ->
      let lut = exact_lut_for case in
      let input, filter, spec, input_range, filter_range = case_data case in
      let signedness = Lut.signedness lut in
      let c1 =
        Q.compute_coeffs signedness ~rmin:input_range.Range.min
          ~rmax:input_range.Range.max
      in
      let c2 =
        Q.compute_coeffs signedness ~rmin:filter_range.Range.min
          ~rmax:filter_range.Range.max
      in
      let bound =
        quantization_bound ~taps:(Filter.taps filter) ~input_range
          ~filter_range c1 c2
      in
      let approx = run_conv ~strategy:`Gemm ~lut case in
      let exact = Conv_float.gemm ~input ~filter ~spec () in
      let diff = Tensor.max_abs_diff approx exact in
      check_bool
        (label case (Printf.sprintf "|ax - float| %g <= %g" diff bound))
        true (diff <= bound))
    cases

(* --- approximate LUTs: bit-identical to a naive per-MAC reference --- *)

(* Independent oracle: direct nested loops, one quantize per operand
   per MAC, the LUT applied to quantized values, and the naive Eq. 3
   dequantization expansion — no im2col, no per-patch/per-filter sums,
   no chunking.  Padding contributes the real value 0, exactly like a
   zero-padded hardware accelerator. *)
let reference_conv ~lut case =
  let input, filter, spec, input_range, filter_range = case_data case in
  let signedness = Lut.signedness lut in
  let round_mode = Round.Nearest_even in
  let c1 =
    Q.compute_coeffs signedness ~rmin:input_range.Range.min
      ~rmax:input_range.Range.max
  in
  let c2 =
    Q.compute_coeffs signedness ~rmin:filter_range.Range.min
      ~rmax:filter_range.Range.max
  in
  let s = Tensor.shape input in
  let out_shape = Conv_spec.output_shape spec s filter in
  let out = Tensor.create out_shape in
  let plan =
    Ax_nn.Im2col.make s ~kh:case.kh ~kw:case.kw ~spec
  in
  for n = 0 to Shape.(s.n) - 1 do
    for oh = 0 to Shape.(out_shape.h) - 1 do
      for ow = 0 to Shape.(out_shape.w) - 1 do
        for k = 0 to case.out_c - 1 do
          let acc = ref 0 in
          let base_h = (oh * case.stride) - plan.Ax_nn.Im2col.pad_top in
          let base_w = (ow * case.stride) - plan.Ax_nn.Im2col.pad_left in
          for dh = 0 to case.kh - 1 do
            for dw = 0 to case.kw - 1 do
              let h = base_h + (dh * case.dilation) in
              let w = base_w + (dw * case.dilation) in
              for c = 0 to case.c - 1 do
                let x =
                  if h >= 0 && h < case.h && w >= 0 && w < case.w then
                    Tensor.get input ~n ~h ~w ~c
                  else 0.
                in
                let q1 = Q.quantize c1 round_mode signedness x in
                let q2 =
                  Q.quantize c2 round_mode signedness
                    (Filter.get filter ~h:dh ~w:dw ~c ~k)
                in
                acc :=
                  !acc
                  + Lut.lookup_value lut q1 q2
                  - (c2.Q.beta * q1) - (c1.Q.beta * q2)
                  + (c1.Q.beta * c2.Q.beta)
              done
            done
          done;
          Tensor.set out ~n ~h:oh ~w:ow ~c:k
            (c1.Q.alpha *. c2.Q.alpha *. float_of_int !acc)
        done
      done
    done
  done;
  out

let approx_multipliers =
  [|
    "mul8u_trunc8";
    "mul8s_trunc6";
    "mul8u_drum4";
    "mul8s_drum6";
    "mul8u_mitchell";
    "mul8s_mitchell";
    "mul8u_kulkarni";
  |]

let test_approx_matches_naive_reference () =
  List.iter
    (fun case ->
      let name =
        approx_multipliers.(case.id mod Array.length approx_multipliers)
      in
      let lut = Registry.lut (Registry.find_exn name) in
      let a = run_conv ~strategy:`Gemm ~lut case in
      let b = reference_conv ~lut case in
      check_bool
        (label case
           (Printf.sprintf "%s == naive reference, diff %g" name
              (Tensor.max_abs_diff a b)))
        true
        (Tensor.max_abs_diff a b = 0.))
    cases

let () =
  Alcotest.run "tfapprox_differential"
    [
      ( "exact-lut",
        [
          Alcotest.test_case "gemm == direct over 50 shapes" `Quick
            test_exact_gemm_equals_direct;
          Alcotest.test_case "within quantization bound of float" `Quick
            test_exact_matches_float;
        ] );
      ( "approximate-lut",
        [
          Alcotest.test_case "gemm == naive per-MAC reference" `Quick
            test_approx_matches_naive_reference;
        ] );
    ]
