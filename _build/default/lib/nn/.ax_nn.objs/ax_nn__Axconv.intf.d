lib/nn/axconv.mli: Accumulator Ax_arith Ax_quant Ax_tensor Bytes Conv_spec Filter Profile
