lib/models/lenet.mli: Ax_nn Ax_tensor
