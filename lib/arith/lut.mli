(** The 256x256 look-up table representation of an 8-bit multiplier —
    the paper's central data structure (Sec. II: "The approximate
    multiplication is specified by means of its truth table. ... the
    truth table for an 8-bit multiplier occupies only 128 kB").

    Entries are 16-bit: unsigned products saturate into [0..65535],
    signed products into [-32768..32767] (two's complement), matching a
    16-bit hardware product register.  Lookup is by {e code}: the raw
    8-bit operand patterns stitched into a 16-bit index, exactly the
    [tex1Dfetch<ushort>] indexing scheme of the CUDA implementation. *)

type t

val entries : int
(** Number of table entries: [65536]. *)

val size_bytes : int
(** Payload size in bytes: [131072] (the paper's 128 kB). *)

val make : signedness:Signedness.t -> (int -> int -> int) -> t
(** [make ~signedness f] tabulates [f] over the full operand range.
    [f] receives decoded {e values} (e.g. [-128..127] when signed). *)

val exact : Signedness.t -> t
(** Table of the exact multiplier for the given signedness. *)

val signedness : t -> Signedness.t

val lookup_code : t -> int -> int -> int
(** [lookup_code t ca cb] looks up operand bit patterns (0..255 each) and
    returns the decoded product value.  This is the hot path of the
    emulator; bounds are the caller's responsibility (values are masked
    to 8 bits, never raising). *)

val unsafe_raw : t -> int -> int
(** [unsafe_raw t idx] reads the raw (undecoded) 16-bit entry at the
    stitched index [idx] {e without} a bounds check.  Contract: the
    caller establishes [0 <= idx < entries] once for the whole buffer
    it draws indices from — operand codes stored as bytes are 8-bit by
    construction, so [(ca lsl 8) lor cb] always qualifies.  Decode the
    result branch-free as
    [raw - ((raw lsr 15) * decode_correction t)], which equals
    {!lookup_code} bit for bit. *)

val decode_correction : t -> int
(** [65536] for a signed table, [0] for an unsigned one: the constant
    subtracted from a raw entry with bit 15 set to recover the two's
    complement product value (see {!unsafe_raw}). *)

val table :
  t -> (int, Bigarray.int16_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t
(** The raw 65536-entry table itself, for kernels that hoist it out of
    their inner loop — without cross-module inlining even {!unsafe_raw}
    costs a call per lookup.  The array aliases the LUT's storage:
    reading it is {!unsafe_raw} without the accessor, and writing it is
    {!set_raw} without the range checks — treat it as read-only. *)

val lookup_value : t -> int -> int -> int
(** [lookup_value t a b] converts operand values through
    {!Signedness.code_of_value} first; convenient and checked, but
    slower than {!lookup_code}. *)

val raw_index : int -> int -> int
(** [raw_index ca cb] is the stitched 16-bit index [(ca << 8) | cb]. *)

val to_function : t -> int -> int -> int
(** The table as a value-domain multiplier function. *)

val equal : t -> t -> bool
(** Same signedness and identical entries. *)

(** {1 Raw entry access}

    The table as addressable memory, for fault-injection experiments
    ({!Ax_resilience}): a LUT {e is} the texture-memory state of the
    accelerator, so SEU bit-flips and stuck-at faults are modelled by
    editing raw 16-bit entries of a {!copy}. *)

val get_raw : t -> int -> int
(** Raw (undecoded) 16-bit entry at a stitched index (see {!raw_index}).
    Raises [Invalid_argument] outside [0, entries). *)

val set_raw : t -> int -> int -> unit
(** Overwrite a raw entry (masked to 16 bits) {e in place}.  Mutating a
    shared table is visible to every config holding it — corrupt a
    {!copy} unless that is the point. *)

val copy : t -> t
(** A structurally independent duplicate. *)

(** {1 Serialisation}

    Format "AXLUT1": 6-byte magic, signedness byte, 65 536 little-endian
    16-bit entries, then the CRC-32 of everything preceding it
    (131 083 bytes total).  The checksum makes on-disk corruption of the
    hardware truth table a detected condition instead of silent garbage
    inference. *)

val serialized_bytes : int
(** Total size of {!to_bytes} output: [131083]. *)

val to_bytes : t -> Bytes.t

val of_bytes_result :
  Bytes.t -> pos:int -> (t * int, Load_error.t) result
(** Decode a table from a buffer at [pos]; returns the table and the
    position past it.  Every malformed input — truncation, wrong magic,
    undefined signedness byte, checksum mismatch — maps to a typed
    {!Load_error.t}; this function never raises on bad bytes. *)

val of_bytes : Bytes.t -> pos:int -> t * int
(** Thin wrapper over {!of_bytes_result}; raises {!Load_error.Error}. *)

val save : string -> t -> unit
(** Persist {!to_bytes} to a file. *)

val load_result : string -> (t, Load_error.t) result
(** Inverse of {!save}.  I/O failures (missing file, permissions) raise
    [Sys_error] as usual; malformed {e content} is a typed error. *)

val load : string -> t
(** Thin wrapper over {!load_result}; raises {!Load_error.Error}. *)
