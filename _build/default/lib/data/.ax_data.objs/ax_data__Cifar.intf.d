lib/data/cifar.mli: Ax_tensor Dataset
