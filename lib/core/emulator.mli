(** High-level emulator API — the operations a TFApprox user performs:
    pick a multiplier, transform a model, run inference on a backend,
    measure the accuracy impact. *)

val lut_of_multiplier : string -> Ax_arith.Lut.t
(** Tabulate a multiplier from {!Ax_arith.Registry} by name (raises
    [Failure] listing known names on a typo).  Cached. *)

val approximate_model :
  ?multiplier:string ->
  ?lut:Ax_arith.Lut.t ->
  ?round_mode:Ax_quant.Round.t ->
  ?chunk_size:int ->
  ?domains:int ->
  Ax_nn.Graph.t ->
  Ax_nn.Graph.t
(** The design flow of Sec. II: replace every Conv2D by AxConv2D wired
    to Min/Max range nodes.  Pass either a registry [multiplier] name or
    a prebuilt [lut] (exactly one; raises [Invalid_argument] otherwise).
    [domains] sets the AxConv2D row-level parallelism (see
    {!Ax_nn.Axconv.make_config}). *)

type backend =
  | Cpu_accurate    (** float GEMM convolution, no emulation *)
  | Cpu_direct      (** LUT emulation, nested-loop baseline of ref. [12] *)
  | Cpu_gemm        (** LUT emulation, Algorithm 1 on the CPU *)

val backend_name : backend -> string
(** Stable label used in span attributes and reports. *)

val run :
  ?verify:bool ->
  ?profile:Ax_nn.Profile.t ->
  ?domains:int ->
  ?tap:(Ax_nn.Graph.node -> Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t) ->
  backend:backend ->
  Ax_nn.Graph.t ->
  Ax_tensor.Tensor.t ->
  Ax_tensor.Tensor.t
(** Execute a (possibly transformed) graph.  [Cpu_accurate] on a
    transformed graph still emulates — the backend selects the AxConv2D
    strategy, it does not undo the transform.  With a [profile] the run
    is wrapped in an ["emulator.run"] span (backend and batch size as
    attributes) and the profile's ["images_per_sec"] gauge is set.

    Unless [verify:false] (or the [TFAPPROX_NO_CHECK] environment
    variable) opts out, the graph is first passed through the static
    verifier ({!Ax_analysis.Check.assert_runnable}): error-severity
    findings — miswired Fig. 1 range inputs, shape mismatches,
    accumulator overflow — raise {!Ax_analysis.Diagnostic.Rejected}
    before any tensor is touched.  Verification is cached per graph, so
    repeated runs pay it once.

    Without [domains] the whole batch runs as one graph evaluation, as
    in the original emulator.  With [domains:d] the batch is sharded
    {e per image} on the process-wide {!Ax_pool.Pool} and the shard
    outputs (plus per-shard profile phases and counters) are merged in
    image order.  Shard boundaries never depend on [d], so sharded runs
    are bit-identical for every [d] — including [domains:1], which is
    the reference the determinism tests compare against.  Note the
    per-image Min/Max quantization ranges legitimately differ from the
    un-sharded whole-batch ranges, which is why sharding is opt-in.

    [tap] is forwarded to {!Ax_nn.Exec.run} on every evaluation
    (including each per-image shard) — the activation fault-injection
    hook of {!Ax_resilience}.  A pure tap keeps sharded runs
    deterministic across domain counts.

    [domains] is validated up front ({!Ax_pool.Pool.validate_domains},
    the same 1..64 gate as [Axconv.make_config]) — out-of-range counts
    raise instead of being silently clamped by the pool.  A zero-image
    batch returns the empty tensor of the graph's output shape
    ({!Ax_nn.Exec.output_shape}) without evaluating anything. *)

val predictions : ?verify:bool -> ?profile:Ax_nn.Profile.t -> ?domains:int ->
  ?tap:(Ax_nn.Graph.node -> Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t) ->
  Ax_nn.Graph.t -> backend:backend -> Ax_tensor.Tensor.t -> int array
(** Class ids from the graph's softmax output. *)

val accuracy : ?verify:bool -> ?profile:Ax_nn.Profile.t -> ?domains:int ->
  ?tap:(Ax_nn.Graph.node -> Ax_tensor.Tensor.t -> Ax_tensor.Tensor.t) ->
  Ax_nn.Graph.t -> backend:backend -> Ax_data.Cifar.t -> float
(** Top-1 accuracy against dataset labels, in [0, 1].  [domains] and
    [tap] as in {!run}.  Raises [Invalid_argument] on an empty dataset
    (no accuracy exists over zero labels). *)

val agreement : int array -> int array -> float
(** Fraction of matching predictions — the "classification fidelity"
    metric for approximate-vs-exact comparisons.  Raises on length
    mismatch. *)

val estimate_gpu_time :
  ?device:Ax_gpusim.Device.t ->
  ?lut_hit_rate:float ->
  graph:Ax_nn.Graph.t ->
  input:Ax_tensor.Shape.t ->
  images:int ->
  unit ->
  [ `Accurate of Ax_gpusim.Cost.phases | `Approximate of Ax_gpusim.Cost.phases ]
  * Ax_gpusim.Cost.phases
(** The GPU-backend counterpart of {!run}: predicted execution phases
    for the graph on the device model, as
    [(kernel time tagged by pipeline kind, transfer/init time)].  A
    graph containing any Ax layer is costed as the approximate pipeline
    (chunk size taken from the first Ax layer), otherwise as the
    accurate cuDNN-style pipeline. *)
