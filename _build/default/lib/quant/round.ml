type t = Nearest_even | Nearest_away | Toward_zero | Stochastic

let to_string = function
  | Nearest_even -> "nearest-even"
  | Nearest_away -> "nearest-away"
  | Toward_zero -> "toward-zero"
  | Stochastic -> "stochastic"

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Deterministic uniform draw in [0,1) from the bits of the input, so a
   stochastic-rounding emulation run is reproducible. *)
let hash_unit x =
  let bits = Int64.bits_of_float x in
  let open Int64 in
  let z = add bits 0x9E3779B97F4A7C15L in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = logxor z (shift_right_logical z 27) in
  to_float (shift_right_logical z 11) /. 9007199254740992.

let apply mode x =
  match mode with
  | Nearest_even ->
    let f = floor x in
    let frac = x -. f in
    if frac > 0.5 then int_of_float f + 1
    else if frac < 0.5 then int_of_float f
    else begin
      let lo = int_of_float f in
      if lo mod 2 = 0 then lo else lo + 1
    end
  | Nearest_away -> int_of_float (Float.round x)
  | Toward_zero -> int_of_float (Float.trunc x)
  | Stochastic ->
    let f = floor x in
    let frac = x -. f in
    if hash_unit x < frac then int_of_float f + 1 else int_of_float f
