type t =
  | Input of string
  | Const of bool
  | Buf of int
  | Not of int
  | And2 of int * int
  | Or2 of int * int
  | Xor2 of int * int
  | Nand2 of int * int
  | Nor2 of int * int
  | Xnor2 of int * int

let fanin = function
  | Input _ | Const _ -> []
  | Buf a | Not a -> [ a ]
  | And2 (a, b) | Or2 (a, b) | Xor2 (a, b) | Nand2 (a, b) | Nor2 (a, b)
  | Xnor2 (a, b) ->
    [ a; b ]

let is_combinational = function
  | Input _ | Const _ -> false
  | Buf _ | Not _ | And2 _ | Or2 _ | Xor2 _ | Nand2 _ | Nor2 _ | Xnor2 _ ->
    true

let name = function
  | Input _ -> "input"
  | Const _ -> "const"
  | Buf _ -> "buf"
  | Not _ -> "not"
  | And2 _ -> "and"
  | Or2 _ -> "or"
  | Xor2 _ -> "xor"
  | Nand2 _ -> "nand"
  | Nor2 _ -> "nor"
  | Xnor2 _ -> "xnor"

let eval g look =
  match g with
  | Input s -> invalid_arg ("Gate.eval: unresolved input " ^ s)
  | Const b -> b
  | Buf a -> look a
  | Not a -> not (look a)
  | And2 (a, b) -> look a && look b
  | Or2 (a, b) -> look a || look b
  | Xor2 (a, b) -> look a <> look b
  | Nand2 (a, b) -> not (look a && look b)
  | Nor2 (a, b) -> not (look a || look b)
  | Xnor2 (a, b) -> look a = look b

let eval_word g look =
  let open Int64 in
  match g with
  | Input s -> invalid_arg ("Gate.eval_word: unresolved input " ^ s)
  | Const true -> minus_one
  | Const false -> zero
  | Buf a -> look a
  | Not a -> lognot (look a)
  | And2 (a, b) -> logand (look a) (look b)
  | Or2 (a, b) -> logor (look a) (look b)
  | Xor2 (a, b) -> logxor (look a) (look b)
  | Nand2 (a, b) -> lognot (logand (look a) (look b))
  | Nor2 (a, b) -> lognot (logor (look a) (look b))
  | Xnor2 (a, b) -> lognot (logxor (look a) (look b))

let pp ppf g =
  match g with
  | Input s -> Format.fprintf ppf "input(%s)" s
  | Const b -> Format.fprintf ppf "const(%b)" b
  | Buf a -> Format.fprintf ppf "buf(%d)" a
  | Not a -> Format.fprintf ppf "not(%d)" a
  | And2 (a, b) -> Format.fprintf ppf "and(%d,%d)" a b
  | Or2 (a, b) -> Format.fprintf ppf "or(%d,%d)" a b
  | Xor2 (a, b) -> Format.fprintf ppf "xor(%d,%d)" a b
  | Nand2 (a, b) -> Format.fprintf ppf "nand(%d,%d)" a b
  | Nor2 (a, b) -> Format.fprintf ppf "nor(%d,%d)" a b
  | Xnor2 (a, b) -> Format.fprintf ppf "xnor(%d,%d)" a b
