lib/models/mobilenet.mli: Ax_nn Ax_tensor
