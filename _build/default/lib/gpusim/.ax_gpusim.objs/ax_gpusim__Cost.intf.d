lib/gpusim/cost.mli: Ax_nn Ax_tensor Bytes Device
