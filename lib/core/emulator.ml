module Registry = Ax_arith.Registry
module Graph = Ax_nn.Graph
module Exec = Ax_nn.Exec
module Axconv = Ax_nn.Axconv
module Transform = Ax_nn.Transform
module Layers = Ax_nn.Layers
module Profile = Ax_nn.Profile
module Pool = Ax_pool.Pool
module Tensor = Ax_tensor.Tensor
module Shape = Ax_tensor.Shape

let lut_of_multiplier name = Registry.lut (Registry.find_exn name)

let approximate_model ?multiplier ?lut ?round_mode ?chunk_size ?domains g =
  let lut =
    match (multiplier, lut) with
    | Some name, None -> lut_of_multiplier name
    | None, Some lut -> lut
    | Some _, Some _ ->
      invalid_arg "Emulator.approximate_model: both multiplier and lut given"
    | None, None ->
      invalid_arg "Emulator.approximate_model: need a multiplier or a lut"
  in
  let config = Axconv.make_config ?round_mode ?chunk_size ?domains lut in
  Transform.approximate ~config g

type backend = Cpu_accurate | Cpu_direct | Cpu_gemm

let strategy_of_backend = function
  | Cpu_accurate | Cpu_gemm -> Exec.Cpu_gemm
  | Cpu_direct -> Exec.Cpu_direct

let backend_name = function
  | Cpu_accurate -> "cpu-accurate"
  | Cpu_direct -> "cpu-direct"
  | Cpu_gemm -> "cpu-gemm"

(* Fold one shard's phase seconds, GC deltas, counters and histograms
   into the coordinator's profile.  Phase seconds are float sums,
   counters and histogram buckets integer sums, so merging the shards in
   index order keeps every counter bit-identical across pool sizes (the
   shards themselves never touch the coordinator profile —
   [Ax_obs.Metrics] cells are not thread-safe). *)
let merge_shard_profile ~into part =
  List.iter
    (fun ph ->
      Profile.add_seconds into ph (Profile.seconds part ph);
      let name = Profile.phase_name ph in
      Ax_obs.Phases.add_gc (Profile.phases into) name
        (Ax_obs.Phases.gc_delta (Profile.phases part) name))
    [ Profile.Init; Profile.Quantization; Profile.Lut; Profile.Other ];
  let snap = Ax_obs.Metrics.snapshot (Profile.metrics part) in
  List.iter
    (fun (name, v) -> if v > 0 then Ax_obs.Metrics.add (Profile.metrics into) name v)
    snap.Ax_obs.Metrics.counters;
  List.iter
    (fun (name, h) ->
      Ax_obs.Metrics.merge_histogram (Profile.metrics into) name h)
    snap.Ax_obs.Metrics.histograms

(* Batch-level sharding: one shard per image, regardless of the domain
   count, so the per-shard Min/Max range nodes see exactly the same data
   for every [domains] value — outputs, counters and accuracy are
   bit-identical between [domains:1] and [domains:N].  (Per-image ranges
   do differ from the un-sharded whole-batch run, which is why sharding
   is opt-in.) *)
let run_sharded ?profile ?tap ~domains ~backend g input =
  let strategy = strategy_of_backend backend in
  let images = Shape.((Tensor.shape input).n) in
  let pool = Pool.ensure ~domains in
  let sink_tracer =
    match profile with Some p -> Profile.trace p | None -> None
  in
  let run_shard i =
    let shard = Tensor.slice_batch input ~start:i ~count:1 in
    let shard_profile =
      match profile with Some _ -> Some (Profile.create ()) | None -> None
    in
    (* Each shard records its spans into a private fork stamped with
       the executing domain's slot — single writer per buffer; the
       coordinator merges the forks in shard order after the join. *)
    (match (shard_profile, sink_tracer) with
    | Some sp, Some sink ->
      Profile.set_trace sp (Ax_obs.Trace.fork sink ~tid:(Pool.current_slot pool))
    | (Some _ | None), _ -> ());
    let start = Unix.gettimeofday () in
    let out = Exec.run ?profile:shard_profile ~strategy ?tap g ~input:shard in
    (out, shard_profile, Unix.gettimeofday () -. start)
  in
  let batch () =
    (* Images are claimed dynamically, one per claim: image cost varies
       (cache state, range content), and whichever domain drains its
       image first takes the next.  Shard [i]'s output never depends on
       which domain ran it, and [map_array] returns results in index
       order, so the concatenation is bit-identical to the static
       split. *)
    let results =
      Pool.map_array pool ~max_domains:domains
        ~schedule:(Pool.Dynamic { grain = 1 }) run_shard
        (Array.init images (fun i -> i))
    in
    (match profile with
    | Some p ->
      Array.iter
        (fun (_, sp, dur) ->
          match sp with
          | Some sp ->
            merge_shard_profile ~into:p sp;
            (match (Profile.trace sp, sink_tracer) with
            | Some fork, Some sink -> Ax_obs.Trace.merge ~into:sink fork
            | (Some _ | None), _ -> ());
            Profile.observe p "emulator_image_seconds" dur
          | None -> ())
        results
    | None -> ());
    Tensor.concat_batch
      (Array.to_list (Array.map (fun (out, _, _) -> out) results))
  in
  match profile with
  | None -> batch ()
  | Some p ->
    (* Per-domain pool.task attribution for the batch fan-out; detached
       afterwards so a later untraced run doesn't keep recording. *)
    Pool.set_tracer pool sink_tracer;
    let start = Unix.gettimeofday () in
    let out =
      Fun.protect
        ~finally:(fun () -> Pool.set_tracer pool None)
        (fun () ->
          Profile.span p ~name:"emulator.run"
            ~attrs:
              [
                ("backend", backend_name backend);
                ("images", string_of_int images);
                ("domains", string_of_int domains);
                ("sharding", "per-image");
              ]
            batch)
    in
    let elapsed = Unix.gettimeofday () -. start in
    if elapsed > 0. then
      Ax_obs.Metrics.set_gauge (Profile.metrics p) "images_per_sec"
        (float_of_int images /. elapsed);
    Pool.publish pool (Profile.metrics p);
    Profile.publish_gc p;
    out

let run ?(verify = true) ?profile ?domains ?tap ~backend g input =
  (* The one gate for a user-supplied domain count: [make_config]
     already validates the per-layer count, and this keeps the sharded
     path honest too — previously any value slid through to the pool,
     which silently clamped it to a different parallelism than asked
     for. *)
  (match domains with
  | Some d -> Pool.validate_domains ~what:"Emulator.run" d
  | None -> ());
  if verify then
    Ax_analysis.Check.assert_runnable ~input:(Tensor.shape input) g;
  if Shape.((Tensor.shape input).n) = 0 then
    (* An empty batch has nothing to emulate, but it still has a
       well-defined output shape — answer with the empty tensor instead
       of letting per-image sharding fold over zero shards. *)
    Tensor.create (Exec.output_shape g ~input:(Tensor.shape input))
  else
  match domains with
  | Some d -> run_sharded ?profile ?tap ~domains:d ~backend g input
  | None -> (
    let strategy = strategy_of_backend backend in
    match profile with
    | None -> Exec.run ~strategy ?tap g ~input
    | Some p ->
      let images = Shape.((Tensor.shape input).n) in
      let start = Unix.gettimeofday () in
      let out =
        Profile.span p ~name:"emulator.run"
          ~attrs:
            [
              ("backend", backend_name backend);
              ("images", string_of_int images);
            ]
          (fun () -> Exec.run ~profile:p ~strategy ?tap g ~input)
      in
      let elapsed = Unix.gettimeofday () -. start in
      if elapsed > 0. then
        Ax_obs.Metrics.set_gauge (Profile.metrics p) "images_per_sec"
          (float_of_int images /. elapsed);
      Profile.observe p "emulator_run_seconds" elapsed;
      Profile.publish_gc p;
      out)

let predictions ?verify ?profile ?domains ?tap g ~backend input =
  Layers.argmax_channels (run ?verify ?profile ?domains ?tap ~backend g input)

let accuracy ?verify ?profile ?domains ?tap g ~backend dataset =
  let batch () =
    predictions ?verify ?profile ?domains ?tap g ~backend
      dataset.Ax_data.Cifar.images
  in
  let preds =
    match profile with
    | Some p ->
      Ax_nn.Profile.span p ~name:"emulator.accuracy"
        ~attrs:
          [
            ( "images",
              string_of_int
                (Array.length dataset.Ax_data.Cifar.labels) );
          ]
        batch
    | None -> batch ()
  in
  let labels = dataset.Ax_data.Cifar.labels in
  if Array.length labels = 0 then invalid_arg "Emulator.accuracy: empty dataset";
  if Array.length preds <> Array.length labels then
    invalid_arg "Emulator.accuracy: prediction/label count mismatch";
  let correct = ref 0 in
  Array.iteri (fun i p -> if p = labels.(i) then incr correct) preds;
  float_of_int !correct /. float_of_int (Array.length labels)

let agreement a b =
  if Array.length a <> Array.length b then
    invalid_arg "Emulator.agreement: length mismatch";
  if Array.length a = 0 then invalid_arg "Emulator.agreement: empty";
  let same = ref 0 in
  Array.iteri (fun i p -> if p = b.(i) then incr same) a;
  float_of_int !same /. float_of_int (Array.length a)

let estimate_gpu_time ?(device = Ax_gpusim.Device.gtx_1080)
    ?(lut_hit_rate = 0.9) ~graph ~input ~images () =
  let workloads = Ax_gpusim.Cost.workloads_of_graph graph ~input ~images in
  let dataset_bytes =
    4. *. float_of_int images
    *. float_of_int
         Ax_tensor.Shape.(input.h * input.w * input.c)
  in
  let weight_bytes =
    float_of_int
      (List.fold_left
         (fun acc w -> acc + (w.Ax_gpusim.Cost.filter_elems * 4))
         0 workloads)
  in
  let init =
    Ax_gpusim.Cost.transfer_init device ~dataset_bytes ~weight_bytes
  in
  let ax_chunk =
    List.find_map
      (fun n ->
        match n.Graph.op with
        | Graph.Ax_conv2d { config; _ }
        | Graph.Ax_depthwise_conv2d { config; _ } ->
          Some config.Axconv.chunk_size
        | _ -> None)
      (Array.to_list (Graph.nodes graph))
  in
  let kernels =
    match ax_chunk with
    | Some chunk_size ->
      `Approximate
        (Ax_gpusim.Cost.approx_network device ~lut_hit_rate ~chunk_size
           workloads)
    | None -> `Accurate (Ax_gpusim.Cost.accurate_network device workloads)
  in
  (kernels, init)
