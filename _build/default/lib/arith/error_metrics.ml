type t = {
  mae : float;
  wce : int;
  mre : float;
  error_probability : float;
  mse : float;
  bias : float;
  mae_percent : float;
}

let compute signedness f =
  let lo = Signedness.min_value signedness in
  let hi = Signedness.max_value signedness in
  let pairs = float_of_int ((hi - lo + 1) * (hi - lo + 1)) in
  let abs_sum = ref 0. and sq_sum = ref 0. and signed_sum = ref 0. in
  let rel_sum = ref 0. and wrong = ref 0 and worst = ref 0 in
  for a = lo to hi do
    for b = lo to hi do
      let e = f a b - (a * b) in
      let ae = abs e in
      if e <> 0 then incr wrong;
      if ae > !worst then worst := ae;
      abs_sum := !abs_sum +. float_of_int ae;
      sq_sum := !sq_sum +. (float_of_int e *. float_of_int e);
      signed_sum := !signed_sum +. float_of_int e;
      rel_sum := !rel_sum +. (float_of_int ae /. float_of_int (max 1 (abs (a * b))))
    done
  done;
  let mae = !abs_sum /. pairs in
  {
    mae;
    wce = !worst;
    mre = !rel_sum /. pairs;
    error_probability = float_of_int !wrong /. pairs;
    mse = !sq_sum /. pairs;
    bias = !signed_sum /. pairs;
    mae_percent =
      100. *. mae /. float_of_int (Signedness.max_abs_product signedness);
  }

let compute_lut lut = compute (Lut.signedness lut) (Lut.to_function lut)
let is_exact t = t.wce = 0

let pp ppf t =
  Format.fprintf ppf
    "mae=%.2f wce=%d mre=%.4f ep=%.3f mse=%.1f bias=%.2f mae%%=%.4f" t.mae
    t.wce t.mre t.error_probability t.mse t.bias t.mae_percent
