module Matrix = Ax_tensor.Matrix
module Lut = Ax_arith.Lut
module Load_error = Ax_arith.Load_error
module Checksum = Ax_arith.Checksum

let magic = "AXMDL1"
let what = "AXMDL1"

let truncated ~needed ~available =
  raise (Load_error.Error (Load_error.Truncated { what; needed; available }))

let bad_tag field tag =
  raise (Load_error.Error (Load_error.Bad_tag { what; field; tag }))

let malformed detail =
  raise (Load_error.Error (Load_error.Malformed { what; detail }))

(* ---- primitive writers ---- *)

let w_u8 buf v = Buffer.add_char buf (Char.chr (v land 0xff))

let w_u32 buf v =
  if v < 0 then invalid_arg "Model_io: negative u32";
  w_u8 buf v;
  w_u8 buf (v lsr 8);
  w_u8 buf (v lsr 16);
  w_u8 buf (v lsr 24)

let w_i64 buf v =
  for byte = 0 to 7 do
    w_u8 buf (Int64.to_int (Int64.shift_right_logical v (8 * byte)))
  done

let w_float buf v = w_i64 buf (Int64.bits_of_float v)

let w_string buf s =
  w_u32 buf (String.length s);
  Buffer.add_string buf s

let w_float_array buf a =
  w_u32 buf (Array.length a);
  Array.iter (w_float buf) a

let w_float_array_opt buf = function
  | None -> w_u8 buf 0
  | Some a ->
    w_u8 buf 1;
    w_float_array buf a

(* ---- primitive readers (cursor-passing) ---- *)

(* [limit] excludes the CRC trailer, so a decoder bug that runs past the
   payload is caught as [Truncated] instead of misreading the checksum
   bytes as content. *)
type cursor = { data : Bytes.t; mutable pos : int; limit : int }

let need cur n =
  if n < 0 || cur.pos + n > cur.limit then
    truncated ~needed:(cur.pos + max n 0) ~available:cur.limit

let r_u8 cur =
  need cur 1;
  let v = Char.code (Bytes.get cur.data cur.pos) in
  cur.pos <- cur.pos + 1;
  v

let r_u32 cur =
  let a = r_u8 cur in
  let b = r_u8 cur in
  let c = r_u8 cur in
  let d = r_u8 cur in
  a lor (b lsl 8) lor (c lsl 16) lor (d lsl 24)

let r_i64 cur =
  let v = ref 0L in
  for byte = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (r_u8 cur)) (8 * byte))
  done;
  !v

let r_float cur = Int64.float_of_bits (r_i64 cur)

let r_string cur =
  let len = r_u32 cur in
  need cur len;
  let s = Bytes.sub_string cur.data cur.pos len in
  cur.pos <- cur.pos + len;
  s

let r_float_array cur =
  let n = r_u32 cur in
  (* Bound the length by the remaining bytes before allocating, so a
     corrupted length field cannot trigger a huge allocation. *)
  need cur (8 * n);
  Array.init n (fun _ -> r_float cur)

let r_float_array_opt cur =
  match r_u8 cur with
  | 0 -> None
  | 1 -> Some (r_float_array cur)
  | tag -> bad_tag "option" tag

(* ---- composites ---- *)

let w_spec buf spec =
  w_u8 buf spec.Conv_spec.stride;
  w_u8 buf spec.Conv_spec.dilation;
  w_u8 buf
    (match spec.Conv_spec.padding with Conv_spec.Same -> 0 | Conv_spec.Valid -> 1)

let r_spec cur =
  let stride = r_u8 cur in
  let dilation = r_u8 cur in
  let padding =
    match r_u8 cur with
    | 0 -> Conv_spec.Same
    | 1 -> Conv_spec.Valid
    | tag -> bad_tag "padding" tag
  in
  Conv_spec.make ~stride ~dilation ~padding ()

let w_filter buf f =
  w_u8 buf (Filter.kh f);
  w_u8 buf (Filter.kw f);
  w_u32 buf (Filter.in_c f);
  w_u32 buf (Filter.out_c f);
  w_float_array buf (Filter.to_array f)

let r_filter cur =
  let kh = r_u8 cur in
  let kw = r_u8 cur in
  let in_c = r_u32 cur in
  let out_c = r_u32 cur in
  let data = r_float_array cur in
  Filter.of_array ~kh ~kw ~in_c ~out_c data

let w_config buf config =
  w_u8 buf
    (match config.Axconv.round_mode with
    | Ax_quant.Round.Nearest_even -> 0
    | Ax_quant.Round.Nearest_away -> 1
    | Ax_quant.Round.Toward_zero -> 2
    | Ax_quant.Round.Stochastic -> 3);
  w_u32 buf config.Axconv.chunk_size;
  w_u8 buf
    (match config.Axconv.granularity with
    | Axconv.Per_tensor -> 0
    | Axconv.Per_channel -> 1);
  (match config.Axconv.accumulator with
  | Accumulator.Wide ->
    w_u8 buf 0;
    w_u8 buf 0;
    w_u8 buf 0
  | Accumulator.Saturating w ->
    w_u8 buf 1;
    w_u8 buf w;
    w_u8 buf 0
  | Accumulator.Wrapping w ->
    w_u8 buf 2;
    w_u8 buf w;
    w_u8 buf 0
  | Accumulator.Lower_or { width; approx_low } ->
    w_u8 buf 3;
    w_u8 buf width;
    w_u8 buf approx_low);
  w_u8 buf config.Axconv.domains;
  let lut_bytes = Lut.to_bytes config.Axconv.lut in
  w_u32 buf (Bytes.length lut_bytes);
  Buffer.add_bytes buf lut_bytes

let r_config cur =
  let round_mode =
    match r_u8 cur with
    | 0 -> Ax_quant.Round.Nearest_even
    | 1 -> Ax_quant.Round.Nearest_away
    | 2 -> Ax_quant.Round.Toward_zero
    | 3 -> Ax_quant.Round.Stochastic
    | tag -> bad_tag "round mode" tag
  in
  let chunk_size = r_u32 cur in
  let granularity =
    match r_u8 cur with
    | 0 -> Axconv.Per_tensor
    | 1 -> Axconv.Per_channel
    | tag -> bad_tag "granularity" tag
  in
  let accumulator =
    let tag = r_u8 cur in
    let width = r_u8 cur in
    let approx_low = r_u8 cur in
    match tag with
    | 0 -> Accumulator.Wide
    | 1 -> Accumulator.Saturating width
    | 2 -> Accumulator.Wrapping width
    | 3 -> Accumulator.Lower_or { width; approx_low }
    | _ -> bad_tag "accumulator" tag
  in
  let domains = r_u8 cur in
  let lut_len = r_u32 cur in
  need cur lut_len;
  let lut, consumed = Lut.of_bytes cur.data ~pos:cur.pos in
  if consumed - cur.pos <> lut_len then malformed "embedded LUT length mismatch";
  cur.pos <- consumed;
  Axconv.make_config ~round_mode ~chunk_size ~granularity ~accumulator
    ~domains lut

let w_matrix buf m =
  w_u32 buf m.Matrix.rows;
  w_u32 buf m.Matrix.cols;
  w_float_array buf m.Matrix.data

let r_matrix cur =
  let rows = r_u32 cur in
  let cols = r_u32 cur in
  let data = r_float_array cur in
  if Array.length data <> rows * cols then malformed "matrix size mismatch";
  let m = Matrix.create ~rows ~cols in
  Array.blit data 0 m.Matrix.data 0 (rows * cols);
  m

(* ---- op encoding ---- *)

let w_op buf op =
  match op with
  | Graph.Input -> w_u8 buf 0
  | Graph.Conv2d { filter; bias; spec } ->
    w_u8 buf 1;
    w_filter buf filter;
    w_float_array_opt buf bias;
    w_spec buf spec
  | Graph.Ax_conv2d { filter; bias; spec; config } ->
    w_u8 buf 2;
    w_filter buf filter;
    w_float_array_opt buf bias;
    w_spec buf spec;
    w_config buf config
  | Graph.Depthwise_conv2d { filter; bias; spec } ->
    w_u8 buf 3;
    w_filter buf filter;
    w_float_array_opt buf bias;
    w_spec buf spec
  | Graph.Ax_depthwise_conv2d { filter; bias; spec; config } ->
    w_u8 buf 4;
    w_filter buf filter;
    w_float_array_opt buf bias;
    w_spec buf spec;
    w_config buf config
  | Graph.Min_reduce -> w_u8 buf 5
  | Graph.Max_reduce -> w_u8 buf 6
  | Graph.Const_scalar v ->
    w_u8 buf 7;
    w_float buf v
  | Graph.Relu -> w_u8 buf 8
  | Graph.Max_pool { size; stride } ->
    w_u8 buf 9;
    w_u8 buf size;
    w_u8 buf stride
  | Graph.Global_avg_pool -> w_u8 buf 10
  | Graph.Dense { weights; bias } ->
    w_u8 buf 11;
    w_matrix buf weights;
    w_float_array buf bias
  | Graph.Batch_norm { scale; shift } ->
    w_u8 buf 12;
    w_float_array buf scale;
    w_float_array buf shift
  | Graph.Add -> w_u8 buf 13
  | Graph.Softmax -> w_u8 buf 14
  | Graph.Shortcut_pad { stride; out_c } ->
    w_u8 buf 15;
    w_u8 buf stride;
    w_u32 buf out_c

let r_op cur =
  match r_u8 cur with
  | 0 -> Graph.Input
  | 1 ->
    let filter = r_filter cur in
    let bias = r_float_array_opt cur in
    let spec = r_spec cur in
    Graph.Conv2d { filter; bias; spec }
  | 2 ->
    let filter = r_filter cur in
    let bias = r_float_array_opt cur in
    let spec = r_spec cur in
    let config = r_config cur in
    Graph.Ax_conv2d { filter; bias; spec; config }
  | 3 ->
    let filter = r_filter cur in
    let bias = r_float_array_opt cur in
    let spec = r_spec cur in
    Graph.Depthwise_conv2d { filter; bias; spec }
  | 4 ->
    let filter = r_filter cur in
    let bias = r_float_array_opt cur in
    let spec = r_spec cur in
    let config = r_config cur in
    Graph.Ax_depthwise_conv2d { filter; bias; spec; config }
  | 5 -> Graph.Min_reduce
  | 6 -> Graph.Max_reduce
  | 7 -> Graph.Const_scalar (r_float cur)
  | 8 -> Graph.Relu
  | 9 ->
    let size = r_u8 cur in
    let stride = r_u8 cur in
    Graph.Max_pool { size; stride }
  | 10 -> Graph.Global_avg_pool
  | 11 ->
    let weights = r_matrix cur in
    let bias = r_float_array cur in
    Graph.Dense { weights; bias }
  | 12 ->
    let scale = r_float_array cur in
    let shift = r_float_array cur in
    Graph.Batch_norm { scale; shift }
  | 13 -> Graph.Add
  | 14 -> Graph.Softmax
  | 15 ->
    let stride = r_u8 cur in
    let out_c = r_u32 cur in
    Graph.Shortcut_pad { stride; out_c }
  | tag -> bad_tag "op" tag

(* ---- whole graphs ---- *)

let to_bytes g =
  let buf = Buffer.create (64 * 1024) in
  Buffer.add_string buf magic;
  w_u32 buf (Graph.size g);
  w_u32 buf (Graph.output g);
  Array.iter
    (fun n ->
      w_string buf n.Graph.name;
      w_u8 buf (List.length n.Graph.inputs);
      List.iter (w_u32 buf) n.Graph.inputs;
      w_op buf n.Graph.op)
    (Graph.nodes g);
  Checksum.append_u32_le buf (Checksum.of_string (Buffer.contents buf));
  Buffer.to_bytes buf

let min_bytes = String.length magic + 4 + 4 + 4 (* magic, count, output, CRC *)

let decode_payload data ~limit =
  let cur = { data; pos = String.length magic; limit } in
  let count = r_u32 cur in
  let output = r_u32 cur in
  let b = Graph.builder () in
  for _ = 1 to count do
    let name = r_string cur in
    let arity = r_u8 cur in
    let inputs = List.init arity (fun _ -> r_u32 cur) in
    let op = r_op cur in
    ignore (Graph.add b ~name op inputs)
  done;
  if cur.pos <> limit then malformed "trailing bytes after graph";
  Graph.finalize b ~output

let of_bytes_result data =
  let len = Bytes.length data in
  let mlen = String.length magic in
  if len < mlen then
    Error (Load_error.Truncated { what; needed = min_bytes; available = len })
  else if Bytes.sub_string data 0 mlen <> magic then
    Error
      (Load_error.Bad_magic
         { what; expected = magic; actual = Bytes.sub_string data 0 mlen })
  else if len < min_bytes then
    Error (Load_error.Truncated { what; needed = min_bytes; available = len })
  else begin
    let stored = Checksum.read_u32_le data ~pos:(len - 4) in
    let actual = Checksum.of_bytes data ~pos:0 ~len:(len - 4) in
    if stored <> actual then
      Error (Load_error.Bad_checksum { what; expected = stored; actual })
    else
      (* The CRC only proves the bytes are what the writer produced;
         graph construction can still reject structurally invalid
         content (hand-crafted files with a valid trailer), so map
         those exceptions to typed errors too. *)
      match decode_payload data ~limit:(len - 4) with
      | g -> Ok g
      | exception Load_error.Error e -> Error e
      | exception Nn_error.Error e ->
        Error (Load_error.Malformed { what; detail = Nn_error.to_string e })
      | exception (Invalid_argument detail | Failure detail) ->
        Error (Load_error.Malformed { what; detail })
  end

let of_bytes data =
  match of_bytes_result data with
  | Ok g -> g
  | Error e -> raise (Load_error.Error e)

let save path g =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_bytes oc (to_bytes g))

let load_result path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let data = Bytes.create len in
      really_input ic data 0 len;
      of_bytes_result data)

let load path =
  match load_result path with
  | Ok g -> g
  | Error e -> raise (Load_error.Error e)
