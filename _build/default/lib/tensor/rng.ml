type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  let x = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem x (Int64.of_int bound))

let float t =
  let bits = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float bits /. 9007199254740992.

let gaussian t =
  let rec draw () =
    let u = float t in
    if u <= 1e-12 then draw () else u
  in
  let u1 = draw () and u2 = float t in
  sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2)

let split t = { state = mix (next_int64 t) }
