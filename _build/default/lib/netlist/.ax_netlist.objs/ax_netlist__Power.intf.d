lib/netlist/power.mli: Circuit Format Gate
