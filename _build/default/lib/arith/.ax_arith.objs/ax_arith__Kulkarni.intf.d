lib/arith/kulkarni.mli:
