lib/gpusim/texcache.mli: Device
