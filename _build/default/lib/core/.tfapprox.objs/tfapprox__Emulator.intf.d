lib/core/emulator.mli: Ax_arith Ax_data Ax_gpusim Ax_nn Ax_quant Ax_tensor
