module Graph = Ax_nn.Graph
module Exec = Ax_nn.Exec
module Tensor = Ax_tensor.Tensor
module Shape = Ax_tensor.Shape
module Rng = Ax_tensor.Rng
module Cifar = Ax_data.Cifar

type config = {
  learning_rate : float;
  momentum : float;
  weight_decay : float;
  batch_size : int;
  epochs : int;
  strategy : Exec.strategy;
  shuffle_seed : int;
}

let default_config =
  {
    learning_rate = 0.05;
    momentum = 0.9;
    weight_decay = 0.;
    batch_size = 16;
    epochs = 5;
    strategy = Exec.Cpu_gemm;
    shuffle_seed = 17;
  }

type history = {
  epoch_losses : float array;
  epoch_accuracies : float array;
}

let gather dataset indices =
  let images = dataset.Cifar.images in
  let s = Tensor.shape images in
  let count = Array.length indices in
  let batch =
    Tensor.create (Shape.make ~n:count ~h:Shape.(s.h) ~w:Shape.(s.w) ~c:Shape.(s.c))
  in
  let per_image = Shape.(s.h) * Shape.(s.w) * Shape.(s.c) in
  let src = Tensor.buffer images and dst = Tensor.buffer batch in
  Array.iteri
    (fun slot index ->
      let from = index * per_image and into = slot * per_image in
      for i = 0 to per_image - 1 do
        dst.{into + i} <- src.{from + i}
      done)
    indices;
  (batch, Array.map (fun i -> dataset.Cifar.labels.(i)) indices)

let shuffle rng indices =
  for i = Array.length indices - 1 downto 1 do
    let j = Rng.int rng (i + 1) in
    let tmp = indices.(i) in
    indices.(i) <- indices.(j);
    indices.(j) <- tmp
  done

let evaluate g ?strategy dataset =
  let out = Exec.run ?strategy g ~input:dataset.Cifar.images in
  let preds = Ax_nn.Layers.argmax_channels out in
  let correct = ref 0 in
  Array.iteri
    (fun i p -> if p = dataset.Cifar.labels.(i) then incr correct)
    preds;
  float_of_int !correct /. float_of_int (Array.length preds)

let train ?log config g dataset =
  let n = Array.length dataset.Cifar.labels in
  if n = 0 then invalid_arg "Trainer.train: empty dataset";
  if config.batch_size <= 0 || config.epochs <= 0 then
    invalid_arg "Trainer.train: bad config";
  let optimizer =
    Optimizer.sgd ~momentum:config.momentum
      ~weight_decay:config.weight_decay ~learning_rate:config.learning_rate
      ()
  in
  let rng = Rng.create config.shuffle_seed in
  let indices = Array.init n (fun i -> i) in
  let epoch_losses = Array.make config.epochs 0. in
  let epoch_accuracies = Array.make config.epochs 0. in
  for epoch = 0 to config.epochs - 1 do
    shuffle rng indices;
    let loss_sum = ref 0. and batches = ref 0 in
    let cursor = ref 0 in
    while !cursor < n do
      let count = min config.batch_size (n - !cursor) in
      let batch_idx = Array.sub indices !cursor count in
      let images, labels = gather dataset batch_idx in
      let loss, grads =
        Backprop.loss_and_gradients ~strategy:config.strategy g ~input:images
          ~labels
      in
      Optimizer.apply optimizer g grads;
      loss_sum := !loss_sum +. loss;
      incr batches;
      cursor := !cursor + count
    done;
    let mean_loss = !loss_sum /. float_of_int !batches in
    let accuracy = evaluate g ~strategy:config.strategy dataset in
    epoch_losses.(epoch) <- mean_loss;
    epoch_accuracies.(epoch) <- accuracy;
    match log with
    | Some f -> f ~epoch ~loss:mean_loss ~accuracy
    | None -> ()
  done;
  { epoch_losses; epoch_accuracies }
