lib/nn/graph.mli: Ax_tensor Axconv Conv_spec Filter Format
