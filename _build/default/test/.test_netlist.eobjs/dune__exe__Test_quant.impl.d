test/test_quant.ml: Alcotest Ax_arith Ax_quant Ax_tensor Bytes Float List Printf QCheck QCheck_alcotest
