(* Synchronization goes through the Ax_conc checked shims (lock names
   and ranks per the DESIGN §5g hierarchy); with TFAPPROX_CONC unset
   they are passthrough Stdlib operations. *)
module Cmutex = Ax_conc.Mutex
module Ccond = Ax_conc.Condition
module Catomic = Ax_conc.Atomic

let max_domains_limit = 64

type schedule = Static | Dynamic of { grain : int }

let dynamic ?(grain = 0) () = Dynamic { grain }

type stats = {
  parallel_calls : int;
  inline_calls : int;
  dynamic_calls : int;
  claims : int;
  tasks : int;
  busy_seconds : float;
  fanout_wall_seconds : float;
  per_domain_busy_seconds : float array;
}

type t = {
  size : int;
  mutex : Cmutex.t;
  work_ready : Ccond.t;
  work_done : Ccond.t;
  (* One job at a time: the coordinator installs [job] and bumps
     [generation]; each worker runs the job for its own slot exactly
     once per generation.  Static slot assignment — no queue, no
     stealing — is what makes the execution deterministic. *)
  mutable generation : int;
  mutable job : (int -> unit) option;
  job_cell : Ax_conc.Race.cell;
      (** race-detector annotation on the [job] slot: written by the
          coordinator installing/clearing a job, read by workers *)
  mutable pending : int;
  mutable failure : (int * exn * Printexc.raw_backtrace) option;
  mutable active : bool;  (** coordinator is inside a fan-out *)
  mutable shut_down : bool;
  mutable workers : unit Domain.t array;
  worker_ids : Domain.id array;
  (* Utilization counters, all under [mutex] — they are also bumped by
     concurrent systhread callers taking the inline path. *)
  mutable parallel_calls : int;
  mutable inline_calls : int;
  mutable dynamic_calls : int;
  mutable claims : int;
  mutable tasks : int;
  mutable busy_s : float;
  per_slot_busy : float array;
  mutable fanout_wall_s : float;
  (* Per-domain span attribution: when a sink tracer is attached, each
     fan-out records a pool.task span per slot into that slot's private
     fork (single writer per domain, no locks), and the coordinator
     merges the forks back into [tracer] after the join, in slot
     order — deterministic for a fixed split. *)
  mutable tracer : Ax_obs.Trace.t option;
  mutable forks : Ax_obs.Trace.t array;
}

let size t = t.size

let is_worker t =
  let me = Domain.self () in
  Array.exists (fun id -> id = me) t.worker_ids

(* Worker slot of the calling domain: worker i owns slot i + 1, any
   other domain (the coordinator included) is slot 0. *)
let current_slot t =
  let me = Domain.self () in
  let n = Array.length t.worker_ids in
  let rec find i =
    if i >= n then 0 else if t.worker_ids.(i) = me then i + 1 else find (i + 1)
  in
  find 0

let record_failure t slot e bt =
  match t.failure with
  | Some (s, _, _) when s <= slot -> ()
  | Some _ | None -> t.failure <- Some (slot, e, bt)

let worker_body t slot () =
  let my_gen = ref 0 in
  let continue_ = ref true in
  while !continue_ do
    let action =
      Cmutex.with_lock t.mutex (fun () ->
          while (not t.shut_down) && t.generation = !my_gen do
            Ccond.wait t.work_ready t.mutex
          done;
          if t.shut_down then `Stop
          else begin
            my_gen := t.generation;
            Ax_conc.Race.read t.job_cell;
            let job = match t.job with Some f -> f | None -> fun _ -> () in
            `Run job
          end)
    in
    match action with
    | `Stop -> continue_ := false
    | `Run job ->
      let start = Unix.gettimeofday () in
      let outcome =
        try
          job slot;
          None
        with e -> Some (e, Printexc.get_raw_backtrace ())
      in
      let elapsed = Unix.gettimeofday () -. start in
      Cmutex.with_lock t.mutex (fun () ->
          t.busy_s <- t.busy_s +. elapsed;
          t.per_slot_busy.(slot) <- t.per_slot_busy.(slot) +. elapsed;
          (match outcome with
          | Some (e, bt) -> record_failure t slot e bt
          | None -> ());
          t.pending <- t.pending - 1;
          if t.pending = 0 then Ccond.signal t.work_done)
  done

let env_var = "TFAPPROX_DOMAINS"

let clamp_domains d = max 1 (min max_domains_limit d)

(* The one domains-count validator: every API that accepts a user-given
   count ([Pool.create], [Axconv.make_config], [Emulator.run ?domains])
   routes through here, so the accepted range cannot drift between
   layers.  [clamp_domains] stays for internally derived counts (env
   var, [Domain.recommended_domain_count]). *)
let validate_domains ~what d =
  if d < 1 || d > max_domains_limit then
    invalid_arg
      (Printf.sprintf "%s: domains must be in 1..%d" what max_domains_limit)

let recommended () =
  match Sys.getenv_opt env_var with
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some d -> clamp_domains d
    | None -> clamp_domains (Domain.recommended_domain_count ()))
  | None -> clamp_domains (Domain.recommended_domain_count ())

let create ?domains () =
  let domains =
    match domains with
    | Some d ->
      validate_domains ~what:"Pool.create" d;
      d
    | None -> recommended ()
  in
  let t =
    {
      size = domains;
      mutex = Cmutex.create ~order:20 ~name:"pool.mutex" ();
      work_ready = Ccond.create ~name:"pool.work-ready" ();
      work_done = Ccond.create ~name:"pool.work-done" ();
      generation = 0;
      job = None;
      job_cell = Ax_conc.Race.cell "pool.job";
      pending = 0;
      failure = None;
      active = false;
      shut_down = false;
      workers = [||];
      worker_ids = Array.make (max 0 (domains - 1)) (Domain.self ());
      parallel_calls = 0;
      inline_calls = 0;
      dynamic_calls = 0;
      claims = 0;
      tasks = 0;
      busy_s = 0.;
      per_slot_busy = Array.make domains 0.;
      fanout_wall_s = 0.;
      tracer = None;
      forks = [||];
    }
  in
  t.workers <-
    Array.init (domains - 1) (fun i ->
        let slot = i + 1 in
        let d = Domain.spawn (worker_body t slot) in
        t.worker_ids.(i) <- Domain.get_id d;
        d);
  t

let shutdown t =
  let first =
    Cmutex.with_lock t.mutex (fun () ->
        let first = not t.shut_down in
        if first then begin
          t.shut_down <- true;
          Ccond.broadcast t.work_ready
        end;
        first)
  in
  if first then begin
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end

(* Attach (or detach, with [None]) a sink tracer for per-domain span
   attribution.  Forks are created once per attach and reused across
   fan-outs; a mid-job or on-worker call is a silent no-op — the caller
   (a nested emulator run, say) simply doesn't get pool spans rather
   than corrupting the in-flight fan-out's buffers. *)
let set_tracer t tr =
  if not (t.active || is_worker t) then begin
    t.tracer <- tr;
    t.forks <-
      (match tr with
      | None -> [||]
      | Some sink -> Array.init t.size (fun s -> Ax_obs.Trace.fork sink ~tid:s))
  end

(* Run [task slot] once for each slot in [0 .. slots - 1]: slot 0 on the
   calling domain, the rest on workers.  Falls back to an inline loop
   when the pool cannot fan out (single worker, shut down, or called
   from inside a task of this very pool). *)
let run_slots t ~slots task =
  let inline () =
    Cmutex.with_lock t.mutex (fun () ->
        t.inline_calls <- t.inline_calls + 1;
        t.tasks <- t.tasks + slots);
    for s = 0 to slots - 1 do
      task s
    done
  in
  (* The coordinator role is acquired under [t.mutex]: two systhreads
     fanning out at once would otherwise both observe [active = false]
     and install [t.job] over each other, corrupting both fan-outs.
     The loser of the race simply runs inline, same as a nested call. *)
  let acquired =
    (not (slots <= 1 || t.size = 1 || is_worker t))
    && Cmutex.with_lock t.mutex (fun () ->
           let ok = (not t.active) && not t.shut_down in
           if ok then t.active <- true;
           ok)
  in
  if not acquired then inline ()
  else begin
    (* Only the fan-out path records pool.task spans: each slot writes
       into its own fork, so there is exactly one writer per buffer.
       Inline (nested) calls stay unrecorded — a worker recording into a
       shared sink would race with the other domains. *)
    let task =
      match t.tracer with
      | None -> task
      | Some _ ->
        let forks = t.forks in
        fun s ->
          Ax_obs.Trace.with_span forks.(s) ~name:"pool.task"
            ~attrs:[ ("slot", string_of_int s) ]
            (fun () -> task s)
    in
    Cmutex.with_lock t.mutex (fun () ->
        t.parallel_calls <- t.parallel_calls + 1;
        t.tasks <- t.tasks + slots;
        Ax_conc.Race.write t.job_cell;
        t.job <- Some (fun s -> if s < slots then task s);
        t.generation <- t.generation + 1;
        t.pending <- t.size - 1;
        t.failure <- None;
        Ccond.broadcast t.work_ready);
    let start = Unix.gettimeofday () in
    let own =
      try
        task 0;
        None
      with e -> Some (e, Printexc.get_raw_backtrace ())
    in
    let elapsed = Unix.gettimeofday () -. start in
    let worker_failure =
      Cmutex.with_lock t.mutex (fun () ->
          t.busy_s <- t.busy_s +. elapsed;
          t.per_slot_busy.(0) <- t.per_slot_busy.(0) +. elapsed;
          while t.pending > 0 do
            Ccond.wait t.work_done t.mutex
          done;
          Ax_conc.Race.write t.job_cell;
          t.job <- None;
          let worker_failure = t.failure in
          t.failure <- None;
          worker_failure)
    in
    let wall = Unix.gettimeofday () -. start in
    (* Workers are quiescent again: merge each slot's fork into the sink
       in slot order, so the merged stream is deterministic for a fixed
       split.  Merge even on failure — a trace of the failing fan-out is
       exactly what a debugging session wants.  The coordinator role is
       released only after the merge — a new coordinator writing fresh
       spans into the forks would race it. *)
    (match t.tracer with
    | Some sink ->
      Array.iter
        (fun f ->
          Ax_obs.Trace.merge ~into:sink f;
          Ax_obs.Trace.clear f)
        t.forks
    | None -> ());
    Cmutex.with_lock t.mutex (fun () ->
        t.fanout_wall_s <- t.fanout_wall_s +. wall;
        t.active <- false);
    (* Slot 0 is the lowest index, so the caller's own exception wins;
       otherwise the lowest failing worker slot.  Exactly one re-raise. *)
    match (own, worker_failure) with
    | Some (e, bt), _ -> Printexc.raise_with_backtrace e bt
    | None, Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None, None -> ()
  end

let split_count t ?max_domains n =
  let cap =
    match max_domains with Some m -> max 1 (min m t.size) | None -> t.size
  in
  max 1 (min cap n)

(* Sub-range [s] of the static partition of [lo, hi) into [slots]
   pieces.  ceil-sized so every slot below the tail is full; callers
   skip the (possible) empty tail slots. *)
let slot_range ~lo ~hi ~slots s =
  let n = hi - lo in
  let per = (n + slots - 1) / slots in
  let slo = lo + (s * per) in
  let shi = min hi (slo + per) in
  (slo, shi)

(* A grain of 0 (or below) means "auto": a few claims per slot, so a
   skewed tail can rebalance without paying a claim per index. *)
let resolve_grain ~n ~slots grain =
  if grain >= 1 then grain else max 1 (n / (slots * 4))

(* Dynamic range claiming: the range [lo, hi) is cut into fixed
   [grain]-sized claims and every participating domain grabs the next
   unclaimed one off an atomic counter until none are left.  WHICH
   domain runs a claim varies run to run; WHAT each claim covers never
   does — claim [c] is always [lo + c*grain, min hi (lo + (c+1)*grain)).
   Any task whose claims touch disjoint state is therefore bit-identical
   to the static split, and reductions stay deterministic by combining
   per-claim results in ascending claim order (see [map_reduce]).

   Exceptions: a failing claim is recorded (lowest claim index wins) and
   the counter is short-circuited so no further claims are handed out;
   in-flight claims finish.  Claim hand-out is in ascending order, so
   every claim below a failing one has already been dispatched — the
   minimum over executed failing claims equals the global minimum
   failing claim, and the re-raise is deterministic.  Exactly one
   re-raise, after the join. *)
let run_dynamic t ~slots ~lo ~hi ~grain task =
  let n = hi - lo in
  let claims = (n + grain - 1) / grain in
  let slots = min slots claims in
  Cmutex.with_lock t.mutex (fun () ->
      t.dynamic_calls <- t.dynamic_calls + 1;
      t.claims <- t.claims + claims);
  let fail_mutex = Cmutex.create ~order:30 ~name:"pool.claim-failure" () in
  let failure = ref None in
  let next = Catomic.make ~name:"pool.dynamic-next" 0 in
  let claim_loop _slot =
    let continue_ = ref true in
    while !continue_ do
      let c = Catomic.fetch_and_add next 1 in
      if c >= claims then continue_ := false
      else begin
        let clo = lo + (c * grain) in
        let chi = min hi (clo + grain) in
        try task ~lo:clo ~hi:chi
        with e ->
          let bt = Printexc.get_raw_backtrace () in
          Cmutex.with_lock fail_mutex (fun () ->
              match !failure with
              | Some (c0, _, _) when c0 <= c -> ()
              | Some _ | None -> failure := Some (c, e, bt));
          (* Stop handing out further claims; in-flight ones finish. *)
          let rec drain () =
            let cur = Catomic.get next in
            if cur < claims && not (Catomic.compare_and_set next cur claims)
            then drain ()
          in
          drain ()
      end
    done
  in
  run_slots t ~slots claim_loop;
  match !failure with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

let parallel_for t ?max_domains ?(schedule = Static) ~lo ~hi body =
  let n = hi - lo in
  if n <= 0 then ()
  else begin
    let slots = split_count t ?max_domains n in
    match schedule with
    | Static ->
      run_slots t ~slots (fun s ->
          let slo, shi = slot_range ~lo ~hi ~slots s in
          if slo < shi then body ~lo:slo ~hi:shi)
    | Dynamic { grain } ->
      let grain = resolve_grain ~n ~slots grain in
      run_dynamic t ~slots ~lo ~hi ~grain body
  end

let map_reduce t ?max_domains ?(schedule = Static) ~lo ~hi ~map ~reduce init =
  let n = hi - lo in
  if n <= 0 then init
  else begin
    let slots = split_count t ?max_domains n in
    let fold results =
      Array.fold_left
        (fun acc r -> match r with Some v -> reduce acc v | None -> acc)
        init results
    in
    match schedule with
    | Static ->
      let results = Array.make slots None in
      run_slots t ~slots (fun s ->
          let slo, shi = slot_range ~lo ~hi ~slots s in
          if slo < shi then results.(s) <- Some (map ~lo:slo ~hi:shi));
      fold results
    | Dynamic { grain } ->
      (* Claim [c]'s result always lands in cell [c], so the ascending
         fold is independent of which domain claimed what. *)
      let grain = resolve_grain ~n ~slots grain in
      let claims = (n + grain - 1) / grain in
      let results = Array.make claims None in
      run_dynamic t ~slots ~lo ~hi ~grain (fun ~lo:clo ~hi:chi ->
          results.((clo - lo) / grain) <- Some (map ~lo:clo ~hi:chi));
      fold results
  end

let map_array t ?max_domains ?schedule f items =
  let n = Array.length items in
  if n = 0 then [||]
  else begin
    let results = Array.make n None in
    parallel_for t ?max_domains ?schedule ~lo:0 ~hi:n (fun ~lo ~hi ->
        for i = lo to hi - 1 do
          results.(i) <- Some (f items.(i))
        done);
    Array.map
      (function Some v -> v | None -> assert false (* every index filled *))
      results
  end

let stats t =
  Cmutex.with_lock t.mutex (fun () ->
      {
        parallel_calls = t.parallel_calls;
        inline_calls = t.inline_calls;
        dynamic_calls = t.dynamic_calls;
        claims = t.claims;
        tasks = t.tasks;
        busy_seconds = t.busy_s;
        fanout_wall_seconds = t.fanout_wall_s;
        per_domain_busy_seconds = Array.copy t.per_slot_busy;
      })

(* Busy fraction of a domain: its task seconds over the wall time the
   pool spent inside fan-outs.  The imbalance gauge is 1 - mean/max
   busy — 0 when every domain worked equally, approaching 1 when one
   domain did all the work. *)
let imbalance s =
  let busy = s.per_domain_busy_seconds in
  if Array.length busy = 0 then 0.
  else begin
    let maxv = Array.fold_left Float.max 0. busy in
    if maxv <= 0. then 0.
    else
      let mean =
        Array.fold_left ( +. ) 0. busy /. float_of_int (Array.length busy)
      in
      1. -. (mean /. maxv)
  end

let publish t metrics =
  let s = stats t in
  Ax_obs.Metrics.set_gauge metrics "pool_domains" (float_of_int t.size);
  Ax_obs.Metrics.set_gauge metrics "pool_parallel_calls"
    (float_of_int s.parallel_calls);
  Ax_obs.Metrics.set_gauge metrics "pool_inline_calls"
    (float_of_int s.inline_calls);
  Ax_obs.Metrics.set_gauge metrics "pool_dynamic_calls"
    (float_of_int s.dynamic_calls);
  Ax_obs.Metrics.set_gauge metrics "pool_claims" (float_of_int s.claims);
  Ax_obs.Metrics.set_gauge metrics "pool_tasks" (float_of_int s.tasks);
  Ax_obs.Metrics.set_gauge metrics "pool_busy_seconds" s.busy_seconds;
  Ax_obs.Metrics.set_gauge metrics "pool_fanout_wall_seconds"
    s.fanout_wall_seconds;
  Ax_obs.Metrics.set_gauge metrics "pool_imbalance" (imbalance s);
  let wall = s.fanout_wall_seconds in
  Array.iteri
    (fun i busy ->
      let frac = if wall > 0. then Float.min 1. (busy /. wall) else 0. in
      Ax_obs.Metrics.set_gauge metrics
        (Printf.sprintf "pool_busy_fraction_d%d" i)
        frac;
      Ax_obs.Metrics.set_gauge metrics
        (Printf.sprintf "pool_idle_fraction_d%d" i)
        (1. -. frac))
    s.per_domain_busy_seconds

(* ------------------------------------------------------------------ *)
(* Default process-wide pool                                           *)
(* ------------------------------------------------------------------ *)

(* Rank 10: the registry lock is held while creating/shutting down a
   pool, whose own mutex is rank 20 — registry first, always. *)
let default_mutex = Cmutex.create ~order:10 ~name:"pool.registry" ()
let default_pool : t option ref = ref None
let with_default_lock f = Cmutex.with_lock default_mutex f

let default () =
  with_default_lock (fun () ->
      match !default_pool with
      | Some p -> p
      | None ->
        let p = create ~domains:(recommended ()) () in
        default_pool := Some p;
        p)

let ensure ~domains =
  let domains = clamp_domains domains in
  with_default_lock (fun () ->
      match !default_pool with
      | Some p when p.size >= domains -> p
      | Some p when p.active || is_worker p ->
        (* Mid-job: growing would mean joining workers that are running
           this very job.  The caller's fan-out will run inline. *)
        p
      | (Some _ | None) as existing ->
        Option.iter shutdown existing;
        let p = create ~domains () in
        default_pool := Some p;
        p)

let set_default_size domains =
  validate_domains ~what:"Pool.set_default_size" domains;
  with_default_lock (fun () ->
      (match !default_pool with Some p -> shutdown p | None -> ());
      default_pool := Some (create ~domains ()))

let default_size () = size (default ())

let with_pool ~domains f =
  let p = create ~domains () in
  Fun.protect ~finally:(fun () -> shutdown p) (fun () -> f p)
