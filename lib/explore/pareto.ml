type point = {
  name : string;
  generation : int;
  accuracy : float;
  energy : float;
  area : float;
  delay : float;
  power : float;
  pdp : float;
  gates : int;
  mae : float;
  wce : int;
  certified : bool;
}

let finite p = Float.is_finite p.accuracy && Float.is_finite p.energy

(* Every arm of the comparison is written so a NaN objective yields
   [false]: a non-finite point neither dominates nor blocks anything. *)
let dominates a b =
  finite a && finite b
  && a.accuracy >= b.accuracy
  && a.energy <= b.energy
  && (a.accuracy > b.accuracy || a.energy < b.energy)

let compare_points a b =
  let c = Float.compare a.energy b.energy in
  if c <> 0 then c
  else
    let c = Float.compare b.accuracy a.accuracy in
    if c <> 0 then c else String.compare a.name b.name

let front points =
  let points = List.filter finite points in
  points
  |> List.filter (fun p -> not (List.exists (fun q -> dominates q p) points))
  |> List.sort_uniq compare_points
